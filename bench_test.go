package lscatter

// One benchmark per table and figure of the paper's evaluation, each wrapping
// the corresponding reproduction runner in internal/experiments, plus
// system-level micro-benchmarks of the hot signal path. Run them all with:
//
//	go test -bench=. -benchmem .
//
// The per-artifact benchmarks exist so "regenerate figure X" is a single
// target with tracked cost; the Result they produce is identical to what
// cmd/lscatter-bench prints.

import (
	"context"
	"math"
	"testing"

	"lscatter/internal/channel"
	"lscatter/internal/core"
	"lscatter/internal/enodeb"
	"lscatter/internal/experiments"
	"lscatter/internal/fleet"
	"lscatter/internal/ltephy"
	"lscatter/internal/ue"
)

var benchSink *experiments.Result

func benchArtifact(b *testing.B, id string) {
	b.Helper()
	runner, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("artifact %s not registered", id)
	}
	for i := 0; i < b.N; i++ {
		benchSink = runner(uint64(i) + 1)
	}
	if benchSink == nil || len(benchSink.Rows) == 0 {
		b.Fatalf("artifact %s produced no rows", id)
	}
}

// Table 1: excitation-signal feature matrix.
func BenchmarkTable1Features(b *testing.B) { benchArtifact(b, "T1") }

// Figure 4: the motivating spectrum measurements.
func BenchmarkFig4aWiFiSpectrogram(b *testing.B) { benchArtifact(b, "F4a") }
func BenchmarkFig4bLTESpectrogram(b *testing.B)  { benchArtifact(b, "F4b") }
func BenchmarkFig4cOccupancyCDF(b *testing.B)    { benchArtifact(b, "F4c") }

// Figure 8: synchronization-circuit stage outputs.
func BenchmarkFig8SyncCircuit(b *testing.B) { benchArtifact(b, "F8") }

// Figure 12: constellation rotation from the phase offset.
func BenchmarkFig12PhaseOffset(b *testing.B) { benchArtifact(b, "F12") }

// Figures 16/17: smart-home day.
func BenchmarkFig16SmartHomeDay(b *testing.B)  { benchArtifact(b, "F16") }
func BenchmarkFig17HomeOccupancy(b *testing.B) { benchArtifact(b, "F17") }

// Figure 18: throughput vs LTE bandwidth.
func BenchmarkFig18Bandwidth(b *testing.B) { benchArtifact(b, "F18") }

// Figure 19: home-distance matrix.
func BenchmarkFig19DistanceMatrix(b *testing.B) { benchArtifact(b, "F19") }

// Figures 21/22: shopping mall day.
func BenchmarkFig21MallDay(b *testing.B)       { benchArtifact(b, "F21") }
func BenchmarkFig22MallOccupancy(b *testing.B) { benchArtifact(b, "F22") }

// Figures 23/24: mall distance sweeps.
func BenchmarkFig23MallDistance(b *testing.B) { benchArtifact(b, "F23") }
func BenchmarkFig24MallBER(b *testing.B)      { benchArtifact(b, "F24") }

// Figures 26/27: outdoor day.
func BenchmarkFig26OutdoorDay(b *testing.B)       { benchArtifact(b, "F26") }
func BenchmarkFig27OutdoorOccupancy(b *testing.B) { benchArtifact(b, "F27") }

// Figures 28/29: outdoor distance sweeps.
func BenchmarkFig28OutdoorDistance(b *testing.B) { benchArtifact(b, "F28") }
func BenchmarkFig29OutdoorBER(b *testing.B)      { benchArtifact(b, "F29") }

// Figure 30: 40 dBm range frontier.
func BenchmarkFig30RangeFrontier(b *testing.B) { benchArtifact(b, "F30") }

// Figure 31: synchronization accuracy CDF.
func BenchmarkFig31SyncAccuracy(b *testing.B) { benchArtifact(b, "F31") }

// Figure 32: impact on existing LTE (bit-true chain).
func BenchmarkFig32LTEImpact(b *testing.B) { benchArtifact(b, "F32") }

// Figure 33b: continuous-authentication update rate.
func BenchmarkFig33bAuthUpdateRate(b *testing.B) { benchArtifact(b, "F33b") }

// §4.8: the power budget table.
func BenchmarkPowerBudget(b *testing.B) { benchArtifact(b, "P48") }

// Ablations of the design choices called out in DESIGN.md.
func BenchmarkAblationRefinement(b *testing.B)   { benchArtifact(b, "A1") }
func BenchmarkAblationSideband(b *testing.B)     { benchArtifact(b, "A2") }
func BenchmarkAblationPSSBoost(b *testing.B)     { benchArtifact(b, "A3") }
func BenchmarkAblationOversampling(b *testing.B) { benchArtifact(b, "A4") }
func BenchmarkAblationCoding(b *testing.B)       { benchArtifact(b, "A5") }

// Model-vs-chain cross validation.
func BenchmarkValidationModelVsChain(b *testing.B) { benchArtifact(b, "V1") }

// Extensions: coverage-map analog, interference analysis, multi-tag scaling.
func BenchmarkFig3Coverage(b *testing.B)    { benchArtifact(b, "F3") }
func BenchmarkInterferencePSD(b *testing.B) { benchArtifact(b, "I1") }
func BenchmarkMultiTagScaling(b *testing.B) { benchArtifact(b, "M1") }

// City-scale fleet: 10^6 tags over three venues and four diurnal hours.
func BenchmarkCityScaleFleet(b *testing.B) { benchArtifact(b, "C1") }

// Fleet-engine scaling sweep at fixed aggregate load: the same city demand
// (50 msg/s) spread over ever more parked tags. The event-driven scheduler's
// work is O(events), so ns/op should stay nearly flat from 10^3 to 10^6 tags
// — this sweep, recorded in BENCH_R3.json, is the artifact behind that claim
// (tools/fleetcheck enforces the ratio in `make fleet-check`).

var fleetSink fleet.Report

func benchFleet(b *testing.B, tags int) {
	b.Helper()
	sim := fleet.NewSim(fleet.SimConfig{
		Config:         fleet.Config{MAC: fleet.AlohaCapture, Seed: 1},
		Tags:           tags,
		DurationSec:    30,
		TotalMsgPerSec: 50,
		NoiseW:         1e-13,
		RxPowerW: func(tag int) float64 {
			return 1e-9 * math.Pow(10, -float64(tag%64)/32)
		},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fleetSink = sim.Run(12, 30)
	}
	if fleetSink.Delivered == 0 {
		b.Fatal("fleet benchmark delivered nothing")
	}
}

func BenchmarkFleet1kTags(b *testing.B)   { benchFleet(b, 1_000) }
func BenchmarkFleet10kTags(b *testing.B)  { benchFleet(b, 10_000) }
func BenchmarkFleet100kTags(b *testing.B) { benchFleet(b, 100_000) }
func BenchmarkFleet1MTags(b *testing.B)   { benchFleet(b, 1_000_000) }

// Whole-harness benchmarks: every artifact, sequential vs worker pool. Both
// reset the shared waveform cache each iteration so they measure cold runs
// and stay comparable; the pool's speedup over sequential scales with the
// cores available (on a single-core runner the two are equivalent).

var harnessSink []*experiments.Result

// BenchmarkAllSequential regenerates every artifact on one worker.
func BenchmarkAllSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ltephy.SharedCache.Reset()
		harnessSink = experiments.All(1)
	}
	if len(harnessSink) == 0 {
		b.Fatal("harness produced no results")
	}
}

// BenchmarkAllParallel regenerates every artifact on an 8-worker pool. Its
// output is byte-identical to BenchmarkAllSequential by construction.
func BenchmarkAllParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ltephy.SharedCache.Reset()
		var err error
		harnessSink, err = experiments.RunAll(context.Background(), 1, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(harnessSink) == 0 {
		b.Fatal("harness produced no results")
	}
}

// System micro-benchmarks: the end-to-end chain itself.

var reportSink core.LinkReport

// BenchmarkExactChainSubframe1_4MHz measures the bit-true pipeline: one
// 1.4 MHz subframe through eNodeB -> tag -> channel -> UE (LTE decode,
// reference regeneration, backscatter demodulation).
func BenchmarkExactChainSubframe1_4MHz(b *testing.B) {
	cfg := core.DefaultLinkConfig(ltephy.BW1_4)
	cfg.Mode = core.Exact
	cfg.Subframes = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		reportSink = core.Run(cfg)
	}
}

// BenchmarkExactChainSubframe5MHz is the same chain at 5 MHz.
func BenchmarkExactChainSubframe5MHz(b *testing.B) {
	cfg := core.DefaultLinkConfig(ltephy.BW5)
	cfg.Mode = core.Exact
	cfg.Subframes = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		reportSink = core.Run(cfg)
	}
}

// BenchmarkPipelineExact measures the staged simlink engine end to end: a
// four-subframe exact-mode session (the golden-vector configuration) per
// iteration, covering Session stepping, the tag bank, the two-hop channel,
// the Link combine and the demod sink's bit accounting. Its allocation count
// is the canary for pipeline-layer regressions under `make bench-compare`.
func BenchmarkPipelineExact(b *testing.B) {
	cfg := core.DefaultLinkConfig(ltephy.BW1_4)
	cfg.Mode = core.Exact
	cfg.Subframes = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		reportSink = core.Run(cfg)
	}
}

// BenchmarkSemiAnalyticLink measures the closed-form evaluator used by the
// parameter sweeps.
func BenchmarkSemiAnalyticLink(b *testing.B) {
	cfg := core.DefaultLinkConfig(ltephy.BW20)
	cfg.TagToUEM = channel.FeetToMeters(100)
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		reportSink = core.Run(cfg)
	}
}

// Acquisition micro-benchmarks: blind cell search over a two-subframe
// downlink stream (the UE's cold-start path) and the per-subframe OFDM
// demodulator it hands off to.

// cellSearchStream builds a deterministic two-subframe downlink stream
// (subframes 0 and 1: one PSS/SSS pair plus trailing context) at the given
// bandwidth, enough for CellSearch's stage-1 sweep and SSS resolution.
func cellSearchStream(b *testing.B, bw ltephy.Bandwidth) []complex128 {
	b.Helper()
	enb := enodeb.New(enodeb.DefaultConfig(bw))
	var stream []complex128
	for i := 0; i < 2; i++ {
		stream = append(stream, enb.NextSubframe().Samples...)
	}
	return stream
}

var cellSearchSink *ue.CellSearchResult

func benchCellSearch(b *testing.B, bw ltephy.Bandwidth) {
	b.Helper()
	p := ltephy.DefaultParams(bw)
	stream := cellSearchStream(b, bw)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ue.CellSearch(p.BW, p.Oversample, stream)
		if err != nil {
			b.Fatal(err)
		}
		cellSearchSink = res
	}
}

// BenchmarkCellSearch measures blind PSS/SSS acquisition per bandwidth.
func BenchmarkCellSearch1_4MHz(b *testing.B) { benchCellSearch(b, ltephy.BW1_4) }
func BenchmarkCellSearch5MHz(b *testing.B)   { benchCellSearch(b, ltephy.BW5) }
func BenchmarkCellSearch20MHz(b *testing.B)  { benchCellSearch(b, ltephy.BW20) }

var gridSink *ltephy.Grid

// BenchmarkDemodulate measures the per-subframe OFDM demodulator at 20 MHz
// (14 forward FFTs plus grid extraction) — the front of every receive chain.
func BenchmarkDemodulate(b *testing.B) {
	p := ltephy.DefaultParams(ltephy.BW20)
	enb := enodeb.New(enodeb.DefaultConfig(ltephy.BW20))
	sf := enb.NextSubframe()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := ltephy.Demodulate(p, sf.Samples, sf.Index)
		if err != nil {
			b.Fatal(err)
		}
		gridSink = g
	}
}
