package lscatter

// Golden-stdout smoke tests for the runnable examples. Every example is a
// deterministic program (fixed seeds, no wall-clock input), so its entire
// stdout is a conformance surface: these tests build and run each one with
// `go run` and compare the output byte-for-byte against the committed golden
// transcript under testdata/examples/.
//
// To regenerate after an intentional output change:
//
//	go test -run TestExampleStdout -update .
//
// then review the transcript diffs like any other code change. Run via
// `make examples-check` (part of `make ci`).

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// exampleDirs lists every runnable example; keep in sync with the `examples`
// target in the Makefile.
var exampleDirs = []string{
	"quickstart",
	"smarthome",
	"continuousauth",
	"spectrumsurvey",
	"multitag",
}

// TestExampleStdout runs each example and pins its stdout.
func TestExampleStdout(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs every example binary")
	}
	for _, name := range exampleDirs {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			var out, stderr bytes.Buffer
			cmd.Stdout = &out
			cmd.Stderr = &stderr
			if err := cmd.Run(); err != nil {
				t.Fatalf("go run ./examples/%s: %v\nstderr:\n%s", name, err, stderr.String())
			}
			golden := filepath.Join("testdata", "examples", name+".txt")
			if *update {
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d bytes)", golden, out.Len())
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden transcript (run `go test -run TestExampleStdout -update .` to create it): %v", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("stdout drifted from %s\n--- got ---\n%s\n--- want ---\n%s\n(intentional? regenerate with -update and review the diff)",
					golden, out.String(), want)
			}
		})
	}
}
