// Package lscatter is a from-scratch Go reproduction of "Leveraging Ambient
// LTE Traffic for Ubiquitous Passive Communication" (SIGCOMM 2020): the
// LScatter LTE backscatter system, every substrate it rides on (LTE downlink
// PHY, wireless channel, ambient-traffic models), the baselines it is
// compared against, and a benchmark harness that regenerates every table and
// figure of the paper's evaluation.
//
// Start with the README, then:
//
//   - internal/core — the end-to-end link facade (exact and semi-analytic)
//   - internal/ltephy, internal/enodeb — the LTE downlink substrate
//   - internal/tag, internal/ue — the paper's contribution: sync circuit,
//     basic-timing-unit modulator, and the hybrid-signal demodulator
//   - internal/experiments — per-figure reproduction runners, the
//     deterministic worker pool (RunAll) and per-run metrics
//   - examples/ — runnable demonstrations
//   - docs/ — ARCHITECTURE.md (signal path, cache, pool), BENCHMARKS.md
//     (how to measure, recorded baselines) and PERFORMANCE.md (real-time
//     factor, fixed-point error budget, lane selection)
//
// Regeneration is deterministic: per-artifact seeds derive from the master
// seed, so `lscatter-bench -all` prints byte-identical tables at any
// -parallel worker count. The general waveform chain runs slower than real
// time; the fixed-point transport streamer (internal/simlink, internal/fxp)
// synthesizes the received 20 MHz waveform at 14x real time on one core —
// `lscatter-bench -rtf` measures it. The root-level benchmarks in
// bench_test.go regenerate each paper artifact:
//
//	go test -bench=Fig -benchmem .
package lscatter
