// Package lscatter is a from-scratch Go reproduction of "Leveraging Ambient
// LTE Traffic for Ubiquitous Passive Communication" (SIGCOMM 2020): the
// LScatter LTE backscatter system, every substrate it rides on (LTE downlink
// PHY, wireless channel, ambient-traffic models), the baselines it is
// compared against, and a benchmark harness that regenerates every table and
// figure of the paper's evaluation.
//
// Start with the README, then:
//
//   - internal/core — the end-to-end link facade (exact and semi-analytic)
//   - internal/ltephy, internal/enodeb — the LTE downlink substrate
//   - internal/tag, internal/ue — the paper's contribution: sync circuit,
//     basic-timing-unit modulator, and the hybrid-signal demodulator
//   - internal/experiments — per-figure reproduction runners
//   - examples/ — runnable demonstrations
//
// The root-level benchmarks in bench_test.go regenerate each paper artifact:
//
//	go test -bench=Fig -benchmem .
package lscatter
