package lscatter

// Golden-vector conformance tests. Each vector pins an exact artifact of the
// signal chain — a modulated LTE subframe, the impairment pipeline's output
// for a fixed seed, the end-to-end link report — as a SHA-256 hash (or the
// literal values) committed under testdata/. Any change to the waveform
// math, RNG consumption order or stage sequencing fails these tests loudly.
//
// To regenerate after an intentional change:
//
//	go test -run TestGolden -update .
//
// then review the diff of testdata/*.json like any other code change.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"lscatter/internal/core"
	"lscatter/internal/impair"
	"lscatter/internal/ltephy"
)

var update = flag.Bool("update", false, "rewrite the golden vectors under testdata/")

// quantHash fingerprints a complex waveform. Samples are quantized to 1e-9
// (far below any physical effect the chain models, far above float64
// noise) so the hash is stable across algebraically-equivalent refactors
// only when they are bit-for-bit faithful at nanoscale.
func quantHash(samples []complex128) string {
	h := sha256.New()
	var buf [16]byte
	for _, s := range samples {
		re := int64(math.RoundToEven(real(s) * 1e9))
		im := int64(math.RoundToEven(imag(s) * 1e9))
		binary.LittleEndian.PutUint64(buf[0:8], uint64(re))
		binary.LittleEndian.PutUint64(buf[8:16], uint64(im))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// checkGolden compares got against the JSON vector file, or rewrites the
// file under -update.
func checkGolden(t *testing.T, name string, got map[string]string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d vectors)", path, len(keys))
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden vectors (run `go test -run TestGolden -update .` to create them): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	if len(got) != len(want) {
		t.Errorf("%s: %d vectors computed, %d committed", name, len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("%s: committed vector %q no longer computed", name, k)
			continue
		}
		if g != w {
			t.Errorf("%s: vector %q drifted\n  got  %s\n  want %s\n(intentional? regenerate with -update and review the diff)", name, k, g, w)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: new vector %q not committed (run -update)", name, k)
		}
	}
}

// modulatedSubframe builds and OFDM-modulates one downlink subframe.
func modulatedSubframe(bw ltephy.Bandwidth, sf int) []complex128 {
	g := ltephy.NewGrid(ltephy.DefaultParams(bw), sf)
	g.MapSyncAndRef()
	return ltephy.Modulate(g)
}

// TestGoldenPHYWaveforms pins the modulated PSS/SSS/CRS subframes — the
// excitation signal every other layer rides on — for a sync and a non-sync
// subframe at the two bandwidth extremes.
func TestGoldenPHYWaveforms(t *testing.T) {
	got := map[string]string{}
	for _, bw := range []ltephy.Bandwidth{ltephy.BW1_4, ltephy.BW20} {
		for _, sf := range []int{0, 1} {
			key := fmt.Sprintf("%s/subframe%d", bw, sf)
			got[key] = quantHash(modulatedSubframe(bw, sf))
		}
	}
	checkGolden(t, "golden_phy.json", got)
}

// TestGoldenImpairStages pins the impairment pipeline's output — every stage
// alone and the full chain — over a fixed excitation waveform and seed. This
// is the byte-reproducibility contract of internal/impair: any change to a
// stage's math or its RNG stream consumption shows up here.
func TestGoldenImpairStages(t *testing.T) {
	in := modulatedSubframe(ltephy.BW1_4, 0)
	cfg := impair.Config{
		Seed:         0x5eed,
		SampleRate:   ltephy.DefaultParams(ltephy.BW1_4).SampleRate(),
		Jitter:       impair.JitterConfig{Enabled: true, RMSSamples: 1.5},
		SFO:          impair.SFOConfig{Enabled: true, PPM: 5},
		CFO:          impair.CFOConfig{Enabled: true, OffsetHz: 700, DriftHzPerSec: 300, PhaseNoiseRMSRad: 2e-4},
		Interference: impair.InterferenceConfig{Enabled: true, ImpulsesPerSec: 5000, ImpulseSIRdB: 3, BurstsPerSec: 200, BurstDurationSec: 1e-3, BurstSIRdB: 0},
		ADC:          impair.ADCConfig{Enabled: true, Bits: 10, ClipBackoffDB: 9},
	}
	got := map[string]string{"input": quantHash(in)}
	for _, kind := range impair.DefaultOrder {
		p := impair.NewFor(cfg, kind)
		out := p.Process(append([]complex128(nil), in...))
		got[p.Describe()] = quantHash(out)
	}
	full := impair.New(cfg)
	got["full:"+full.Describe()] = quantHash(full.Process(append([]complex128(nil), in...)))
	checkGolden(t, "golden_impair.json", got)
}

// e2eVector flattens a LinkReport into name→string vectors with full float
// precision.
func e2eVector(prefix string, rep core.LinkReport) map[string]string {
	got := map[string]string{}
	v := reflect.ValueOf(rep)
	for i := 0; i < v.NumField(); i++ {
		f := v.Type().Field(i)
		key := prefix + "/" + f.Name
		switch x := v.Field(i).Interface().(type) {
		case float64:
			got[key] = fmt.Sprintf("%.17g", x)
		default:
			got[key] = fmt.Sprintf("%v", x)
		}
	}
	return got
}

// TestGoldenEndToEnd pins the full exact-mode link report — clean and under
// the severe impairment rung — field by field. This is the outermost
// conformance surface: it moves if anything between the eNodeB modulator and
// the ARQ-facing BER counter moves.
func TestGoldenEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("exact chain run")
	}
	cfg := core.DefaultLinkConfig(ltephy.BW1_4)
	cfg.Mode = core.Exact
	cfg.Subframes = 4
	cfg.Seed = 42
	got := e2eVector("clean", core.Run(cfg))

	imp := cfg
	imp.Impair = &impair.Config{
		Seed: 42,
		CFO:  impair.CFOConfig{Enabled: true, OffsetHz: 900, DriftHzPerSec: 200},
		ADC:  impair.ADCConfig{Enabled: true, Bits: 10},
	}
	for k, v := range e2eVector("impaired", core.Run(imp)) {
		got[k] = v
	}
	checkGolden(t, "golden_e2e.json", got)
}

// TestGoldenHashDetectsPerturbation proves the fingerprint is sharp: a
// one-sample change at the quantization floor flips the hash.
func TestGoldenHashDetectsPerturbation(t *testing.T) {
	in := modulatedSubframe(ltephy.BW1_4, 0)
	ref := quantHash(in)
	mid := len(in) / 2
	in[mid] += complex(2e-9, 0)
	if got := quantHash(in); got == ref {
		t.Fatal("hash unchanged after a one-sample 2e-9 perturbation")
	}
	in[mid] -= complex(2e-9, 0)
	if got := quantHash(in); got != ref {
		t.Fatal("hash not restored after undoing the perturbation")
	}
}
