// Command fleetcheck gates the event-driven fleet engine's scaling claim: at
// fixed aggregate load ("parked-heavy" — the same city demand spread over
// ever more parked tags), wall time must grow sub-linearly in fleet size. It
// times a 10^4-tag and a 10^5-tag semi-analytic run (best of three each) and
// fails when the 10x fleet costs more than the allowed ratio, then smokes the
// exact-mode bank path for basic sanity. This is the check behind
// `make fleet-check`; the full 10^3..10^6 sweep lives in BenchmarkFleet and
// BENCH_R3.json.
//
// Usage: go run ./tools/fleetcheck [-small n] [-big n] [-max-ratio r]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"lscatter/internal/channel"
	"lscatter/internal/fleet"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
	"lscatter/internal/simlink"
	"lscatter/internal/tag"
)

// simConfig is the shared parked-heavy workload: fixed 50 msg/s aggregate
// demand, capture MAC, a 20 dB near/far power spread.
func simConfig(tags int) fleet.SimConfig {
	return fleet.SimConfig{
		Config:         fleet.Config{MAC: fleet.AlohaCapture, Seed: 1},
		Tags:           tags,
		DurationSec:    30,
		TotalMsgPerSec: 50,
		NoiseW:         1e-13,
		RxPowerW: func(tag int) float64 {
			return 1e-9 * math.Pow(10, -float64(tag%64)/32)
		},
	}
}

// bestOf times f repeatedly and returns the fastest run — the usual defense
// against scheduler noise on shared CI machines.
func bestOf(n int, f func()) time.Duration {
	best := time.Duration(math.MaxInt64)
	for i := 0; i < n; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

func main() {
	small := flag.Int("small", 10_000, "small fleet size")
	big := flag.Int("big", 100_000, "big fleet size (the 10x point)")
	maxRatio := flag.Float64("max-ratio", 3, "fail when big/small wall-time ratio exceeds this")
	flag.Parse()

	var repSmall, repBig fleet.Report
	simSmall := fleet.NewSim(simConfig(*small))
	simBig := fleet.NewSim(simConfig(*big))
	// Warm both engines once (array growth, code paths), then time.
	simSmall.Run(12, 30)
	simBig.Run(12, 30)
	tSmall := bestOf(3, func() { repSmall = simSmall.Run(12, 30) })
	tBig := bestOf(3, func() { repBig = simBig.Run(12, 30) })

	fmt.Printf("fleet %7d tags: %8s  events %d  delivered %d\n", *small, tSmall.Round(time.Microsecond), repSmall.Events, repSmall.Delivered)
	fmt.Printf("fleet %7d tags: %8s  events %d  delivered %d\n", *big, tBig.Round(time.Microsecond), repBig.Events, repBig.Delivered)

	fail := false
	if repSmall.Delivered == 0 || repBig.Delivered == 0 {
		fmt.Println("FAIL: a fleet run delivered nothing — the workload is degenerate")
		fail = true
	}
	ratio := float64(tBig) / float64(tSmall)
	fmt.Printf("wall-time ratio for 10x tags at fixed load: %.2fx (limit %.2fx)\n", ratio, *maxRatio)
	if ratio > *maxRatio {
		fmt.Printf("FAIL: the event-driven engine's cost grew super-linearly with parked-tag count\n")
		fail = true
	}

	// Exact-mode smoke: the Bank's TDMA scheduling over a tiny fleet must
	// produce one owner per subframe and a parked aggregate for the rest.
	if err := bankSmoke(); err != nil {
		fmt.Println("FAIL:", err)
		fail = true
	} else {
		fmt.Println("exact-mode bank smoke: ok")
	}

	if fail {
		os.Exit(1)
	}
	fmt.Println("OK: fleet engine scales sub-linearly in parked tags")
}

// bankSmoke exercises the exact-mode Bank over a tiny TDMA fleet: ownership
// must rotate through every tag and the non-owners must fold into a nonzero
// closed-form parked aggregate.
func bankSmoke() error {
	p := ltephy.DefaultParams(ltephy.BW1_4)
	r := rng.New(7)
	pl := channel.PathLoss{FreqHz: 680e6, Exponent: 2}
	const n = 4
	tags := make([]*simlink.Tag, n)
	for i := range tags {
		mod := tag.NewModulator(tag.ModConfig{Params: p, ReflectionLossDB: 6})
		hop := channel.NewHop(r.Fork(uint64(i+1)), pl, 3, 0, 0, nil)
		tags[i] = &simlink.Tag{Mod: mod, Path: hop, Park: true}
	}
	b := fleet.NewBank(tags, fleet.BankConfig{Config: fleet.Config{MAC: fleet.TDMA, Seed: 7}})
	seen := map[int]bool{}
	for sf := 0; sf < 5*n; sf++ {
		plan := b.PlanSubframe(sf, sf%5 == 0)
		if plan.Owner < 0 || plan.Owner >= n {
			return fmt.Errorf("bank smoke: subframe %d has owner %d outside the fleet", sf, plan.Owner)
		}
		seen[plan.Owner] = true
		if plan.ParkScale == 0 {
			return fmt.Errorf("bank smoke: subframe %d lost the parked aggregate", sf)
		}
	}
	if len(seen) != n {
		return fmt.Errorf("bank smoke: TDMA rotation reached %d of %d tags", len(seen), n)
	}
	if st := b.Stats(); st.Deliveries == 0 {
		return fmt.Errorf("bank smoke: no deliveries recorded")
	}
	return nil
}
