// Command benchdiff compares two lscatter-bench -metrics JSON reports and
// fails when the newer one regresses beyond a threshold. It prints a
// per-artifact table of wall-clock, allocated bytes and malloc counts, the
// report totals, and exits nonzero if total alloc_bytes or total wall time
// grew by more than the allowed percentage (allocations are the primary
// budget this repo tracks; wall time is advisory by default).
//
// Usage: go run ./tools/benchdiff [-max-alloc-regress pct] [-max-wall-regress pct] OLD.json NEW.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type artifact struct {
	ID          string  `json:"id"`
	Title       string  `json:"title"`
	WallSeconds float64 `json:"wall_seconds"`
	AllocBytes  uint64  `json:"alloc_bytes"`
	Mallocs     uint64  `json:"mallocs"`
}

type report struct {
	Workers     int        `json:"workers"`
	WallSeconds float64    `json:"wall_seconds"`
	Artifacts   []artifact `json:"artifacts"`
}

func load(path string) (*report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func (r *report) totals() (alloc, mallocs uint64, wall float64) {
	for _, a := range r.Artifacts {
		alloc += a.AllocBytes
		mallocs += a.Mallocs
		wall += a.WallSeconds
	}
	return
}

func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

func mb(b uint64) float64 { return float64(b) / (1 << 20) }

func main() {
	maxAlloc := flag.Float64("max-alloc-regress", 5, "fail if total alloc_bytes grows more than this percent")
	maxWall := flag.Float64("max-wall-regress", -1, "fail if total wall time grows more than this percent (<0 = advisory only)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-alloc-regress pct] [-max-wall-regress pct] OLD.json NEW.json")
		os.Exit(2)
	}
	oldR, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newR, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	oldByID := make(map[string]artifact, len(oldR.Artifacts))
	for _, a := range oldR.Artifacts {
		oldByID[a.ID] = a
	}
	fmt.Printf("%-4s %12s %12s %8s %12s %12s %8s\n",
		"id", "wall(old)", "wall(new)", "Δ%", "alloc(old)", "alloc(new)", "Δ%")
	for _, n := range newR.Artifacts {
		o, ok := oldByID[n.ID]
		if !ok {
			fmt.Printf("%-4s %38s %12.1fMB (new artifact)\n", n.ID, "", mb(n.AllocBytes))
			continue
		}
		fmt.Printf("%-4s %11.3fs %11.3fs %7.1f%% %10.1fMB %10.1fMB %7.1f%%\n",
			n.ID, o.WallSeconds, n.WallSeconds, pct(o.WallSeconds, n.WallSeconds),
			mb(o.AllocBytes), mb(n.AllocBytes), pct(float64(o.AllocBytes), float64(n.AllocBytes)))
	}
	for _, o := range oldR.Artifacts {
		found := false
		for _, n := range newR.Artifacts {
			if n.ID == o.ID {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("%-4s (removed)\n", o.ID)
		}
	}

	oa, om, ow := oldR.totals()
	na, nm, nw := newR.totals()
	allocPct := pct(float64(oa), float64(na))
	wallPct := pct(ow, nw)
	fmt.Printf("\ntotal wall:    %.3fs -> %.3fs (%+.1f%%)\n", ow, nw, wallPct)
	fmt.Printf("total alloc:   %.1fMB -> %.1fMB (%+.1f%%)\n", mb(oa), mb(na), allocPct)
	fmt.Printf("total mallocs: %d -> %d (%+.1f%%)\n", om, nm, pct(float64(om), float64(nm)))

	fail := false
	if allocPct > *maxAlloc {
		fmt.Printf("FAIL: total alloc_bytes regressed %.1f%% (limit %.1f%%)\n", allocPct, *maxAlloc)
		fail = true
	}
	if *maxWall >= 0 && wallPct > *maxWall {
		fmt.Printf("FAIL: total wall time regressed %.1f%% (limit %.1f%%)\n", wallPct, *maxWall)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
	fmt.Println("OK: within regression thresholds")
}
