// Command servedcheck is the make served-check smoke driver: it builds
// nothing itself, but launches an already-built lscatter-served binary on an
// ephemeral port, exercises the service end to end over real TCP (healthz,
// submit, poll, fetch results, metrics), then sends SIGTERM and requires a
// clean graceful exit. It is the one gate that proves the shipped binary —
// flags, listener, signal handling — works outside the httptest harness.
//
// Usage: servedcheck -bin bin/lscatter-served
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"
)

func main() {
	bin := flag.String("bin", "bin/lscatter-served", "path to the lscatter-served binary")
	flag.Parse()
	if err := run(*bin); err != nil {
		fmt.Fprintf(os.Stderr, "servedcheck: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("servedcheck: OK")
}

func run(bin string) error {
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "1", "-drain", "10s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start %s: %w", bin, err)
	}
	defer cmd.Process.Kill()

	// The server prints its bound address as the first stdout line.
	base, err := readBaseURL(stdout)
	if err != nil {
		return err
	}
	go io.Copy(io.Discard, stdout) // keep draining so the server never blocks on stdout

	if err := waitHealthy(base, 5*time.Second); err != nil {
		return err
	}

	// Submit a tiny deterministic run and poll it to completion.
	resp, err := http.Post(base+"/v1/runs", "application/json",
		strings.NewReader(`{"venue":"home","tags":2,"seed":424242}`))
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	var sub struct {
		ID         string `json:"id"`
		ResultsURL string `json:"results_url"`
		StatusURL  string `json:"status_url"`
	}
	if err := decodeInto(resp, http.StatusAccepted, &sub); err != nil {
		return fmt.Errorf("submit: %w", err)
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + sub.StatusURL)
		if err != nil {
			return fmt.Errorf("poll: %w", err)
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := decodeInto(resp, http.StatusOK, &st); err != nil {
			return fmt.Errorf("poll: %w", err)
		}
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "canceled" {
			return fmt.Errorf("run %s ended %s: %s", sub.ID, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("run %s still %s after 15s", sub.ID, st.State)
		}
		time.Sleep(50 * time.Millisecond)
	}

	resp, err = http.Get(base + sub.ResultsURL)
	if err != nil {
		return fmt.Errorf("results: %w", err)
	}
	var doc struct {
		Result struct {
			Tags       int `json:"tags"`
			SyncedTags int `json:"synced_tags"`
		} `json:"result"`
	}
	if err := decodeInto(resp, http.StatusOK, &doc); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	if doc.Result.Tags != 2 {
		return fmt.Errorf("results report %d tags, want 2", doc.Result.Tags)
	}
	fmt.Printf("servedcheck: run %s done, %d/%d tags synced\n",
		sub.ID, doc.Result.SyncedTags, doc.Result.Tags)

	resp, err = http.Get(base + "/metricsz")
	if err != nil {
		return fmt.Errorf("metricsz: %w", err)
	}
	var met struct {
		Jobs struct {
			Submitted int `json:"submitted"`
			Computed  int `json:"computed"`
		} `json:"jobs"`
	}
	if err := decodeInto(resp, http.StatusOK, &met); err != nil {
		return fmt.Errorf("metricsz: %w", err)
	}
	if met.Jobs.Submitted != 1 || met.Jobs.Computed != 1 {
		return fmt.Errorf("metricsz counters: %+v", met.Jobs)
	}

	// Graceful shutdown: SIGTERM must drain and exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("sigterm: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("server exited uncleanly after SIGTERM: %w", err)
		}
	case <-time.After(15 * time.Second):
		return fmt.Errorf("server did not exit within 15s of SIGTERM")
	}
	return nil
}

func readBaseURL(stdout io.Reader) (string, error) {
	sc := bufio.NewScanner(stdout)
	lineCh := make(chan string, 1)
	go func() {
		if sc.Scan() {
			lineCh <- sc.Text()
		}
		close(lineCh)
	}()
	select {
	case line, ok := <-lineCh:
		if !ok {
			return "", fmt.Errorf("server exited before printing its address")
		}
		const marker = "listening on "
		i := strings.Index(line, marker)
		if i < 0 {
			return "", fmt.Errorf("unexpected banner %q", line)
		}
		return strings.TrimSpace(line[i+len(marker):]), nil
	case <-time.After(10 * time.Second):
		return "", fmt.Errorf("server did not print its address within 10s")
	}
}

func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("healthz not ready within %s", timeout)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func decodeInto(resp *http.Response, wantStatus int, v any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != wantStatus {
		return fmt.Errorf("status %d (want %d): %s", resp.StatusCode, wantStatus, body)
	}
	return json.Unmarshal(body, v)
}
