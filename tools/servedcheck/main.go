// Command servedcheck is the make served-check smoke driver: it builds
// nothing itself, but launches an already-built lscatter-served binary on an
// ephemeral port and exercises the service end to end over real TCP. It is
// the one gate that proves the shipped binary — flags, listener, signal
// handling, on-disk state — works outside the httptest harness.
//
// Two phases run back to back:
//
//  1. Graceful: memory-only server; healthz, submit, poll, fetch results,
//     metrics, then SIGTERM must drain and exit 0.
//  2. Durable: server with -artifact-dir; run a spec, SIGKILL the process
//     (the crash), restart over the same directory, and require the
//     resubmission to be a disk-served cache hit with a byte-identical body
//     and zero recompute.
//
// Usage: servedcheck -bin bin/lscatter-served
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"
)

func main() {
	bin := flag.String("bin", "bin/lscatter-served", "path to the lscatter-served binary")
	flag.Parse()
	if err := runGraceful(*bin); err != nil {
		fmt.Fprintf(os.Stderr, "servedcheck: FAIL (graceful): %v\n", err)
		os.Exit(1)
	}
	if err := runDurable(*bin); err != nil {
		fmt.Fprintf(os.Stderr, "servedcheck: FAIL (durable): %v\n", err)
		os.Exit(1)
	}
	fmt.Println("servedcheck: OK")
}

// server is one launched lscatter-served process plus its base URL.
type server struct {
	cmd  *exec.Cmd
	base string
}

// launch starts the binary with the standard smoke flags plus extra, and
// waits for the health endpoint.
func launch(bin string, extra ...string) (*server, error) {
	args := append([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-drain", "10s"}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", bin, err)
	}

	// The server prints its bound address as the first stdout line.
	base, err := readBaseURL(stdout)
	if err != nil {
		cmd.Process.Kill()
		return nil, err
	}
	go io.Copy(io.Discard, stdout) // keep draining so the server never blocks on stdout

	if err := waitHealthy(base, 5*time.Second); err != nil {
		cmd.Process.Kill()
		return nil, err
	}
	return &server{cmd: cmd, base: base}, nil
}

// sigterm sends SIGTERM and requires a clean exit within 15s.
func (s *server) sigterm() error {
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("sigterm: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("server exited uncleanly after SIGTERM: %w", err)
		}
		return nil
	case <-time.After(15 * time.Second):
		return fmt.Errorf("server did not exit within 15s of SIGTERM")
	}
}

// sigkill is the crash: no drain, no goodbye.
func (s *server) sigkill() error {
	if err := s.cmd.Process.Kill(); err != nil {
		return fmt.Errorf("sigkill: %w", err)
	}
	s.cmd.Wait() // reap; a killed process reports an error by design
	return nil
}

// submitDoc is the slice of the POST /v1/runs response the driver needs.
type submitDoc struct {
	ID         string `json:"id"`
	State      string `json:"state"`
	CacheHit   bool   `json:"cache_hit"`
	ResultsURL string `json:"results_url"`
	StatusURL  string `json:"status_url"`
}

func (s *server) submit(spec string) (submitDoc, error) {
	resp, err := http.Post(s.base+"/v1/runs", "application/json", strings.NewReader(spec))
	if err != nil {
		return submitDoc{}, fmt.Errorf("submit: %w", err)
	}
	var sub submitDoc
	if err := decodeInto(resp, http.StatusAccepted, &sub); err != nil {
		return submitDoc{}, fmt.Errorf("submit: %w", err)
	}
	return sub, nil
}

// awaitDone polls a run to completion.
func (s *server) awaitDone(sub submitDoc) error {
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(s.base + sub.StatusURL)
		if err != nil {
			return fmt.Errorf("poll: %w", err)
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := decodeInto(resp, http.StatusOK, &st); err != nil {
			return fmt.Errorf("poll: %w", err)
		}
		if st.State == "done" {
			return nil
		}
		if st.State == "failed" || st.State == "canceled" {
			return fmt.Errorf("run %s ended %s: %s", sub.ID, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("run %s still %s after 15s", sub.ID, st.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// resultsBody fetches the finished result body verbatim.
func (s *server) resultsBody(sub submitDoc) ([]byte, error) {
	resp, err := http.Get(s.base + sub.ResultsURL)
	if err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("results: status %d: %s", resp.StatusCode, body)
	}
	return body, nil
}

// metricsDoc is the slice of /metricsz the driver asserts on.
type metricsDoc struct {
	Jobs struct {
		Submitted int `json:"submitted"`
		Computed  int `json:"computed"`
		DiskHits  int `json:"disk_hits"`
	} `json:"jobs"`
	Disk *struct {
		Hits        int `json:"hits"`
		Quarantined int `json:"quarantined"`
	} `json:"disk"`
}

func (s *server) metrics() (metricsDoc, error) {
	resp, err := http.Get(s.base + "/metricsz")
	if err != nil {
		return metricsDoc{}, fmt.Errorf("metricsz: %w", err)
	}
	var met metricsDoc
	if err := decodeInto(resp, http.StatusOK, &met); err != nil {
		return metricsDoc{}, fmt.Errorf("metricsz: %w", err)
	}
	return met, nil
}

// runGraceful is phase 1: the original memory-only smoke.
func runGraceful(bin string) error {
	srv, err := launch(bin)
	if err != nil {
		return err
	}
	defer srv.cmd.Process.Kill()

	sub, err := srv.submit(`{"venue":"home","tags":2,"seed":424242}`)
	if err != nil {
		return err
	}
	if err := srv.awaitDone(sub); err != nil {
		return err
	}
	body, err := srv.resultsBody(sub)
	if err != nil {
		return err
	}
	var doc struct {
		Result struct {
			Tags       int `json:"tags"`
			SyncedTags int `json:"synced_tags"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	if doc.Result.Tags != 2 {
		return fmt.Errorf("results report %d tags, want 2", doc.Result.Tags)
	}
	fmt.Printf("servedcheck: run %s done, %d/%d tags synced\n",
		sub.ID, doc.Result.SyncedTags, doc.Result.Tags)

	met, err := srv.metrics()
	if err != nil {
		return err
	}
	if met.Jobs.Submitted != 1 || met.Jobs.Computed != 1 {
		return fmt.Errorf("metricsz counters: %+v", met.Jobs)
	}
	if met.Disk != nil {
		return fmt.Errorf("memory-only server reports disk stats: %+v", met.Disk)
	}

	// Graceful shutdown: SIGTERM must drain and exit 0.
	return srv.sigterm()
}

// runDurable is phase 2: crash with SIGKILL, restart over the same artifact
// directory, and require a byte-identical zero-recompute disk hit.
func runDurable(bin string) error {
	dir, err := os.MkdirTemp("", "servedcheck-artifacts-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	const spec = `{"venue":"home","tags":2,"seed":777777}`

	srv1, err := launch(bin, "-artifact-dir", dir)
	if err != nil {
		return err
	}
	defer srv1.cmd.Process.Kill()
	sub1, err := srv1.submit(spec)
	if err != nil {
		return err
	}
	if err := srv1.awaitDone(sub1); err != nil {
		return err
	}
	body1, err := srv1.resultsBody(sub1)
	if err != nil {
		return err
	}
	// The crash. No drain: whatever is durable must already be on disk.
	if err := srv1.sigkill(); err != nil {
		return err
	}
	fmt.Printf("servedcheck: killed pid %d with artifacts in %s\n", srv1.cmd.Process.Pid, dir)

	srv2, err := launch(bin, "-artifact-dir", dir)
	if err != nil {
		return fmt.Errorf("restart over crashed artifact dir: %w", err)
	}
	defer srv2.cmd.Process.Kill()
	sub2, err := srv2.submit(spec)
	if err != nil {
		return err
	}
	if !sub2.CacheHit || sub2.State != "done" {
		return fmt.Errorf("restarted submission not served from disk: %+v", sub2)
	}
	body2, err := srv2.resultsBody(sub2)
	if err != nil {
		return err
	}
	if !bytes.Equal(body1, body2) {
		return fmt.Errorf("restart served different bytes: %d vs %d bytes", len(body1), len(body2))
	}
	met, err := srv2.metrics()
	if err != nil {
		return err
	}
	if met.Jobs.DiskHits < 1 || met.Jobs.Computed != 0 {
		return fmt.Errorf("restart metrics want >=1 disk hit, 0 computed: %+v", met.Jobs)
	}
	if met.Disk == nil || met.Disk.Hits < 1 {
		return fmt.Errorf("restart disk stats: %+v", met.Disk)
	}
	fmt.Printf("servedcheck: restart served run %s byte-identical from disk (0 recomputed)\n", sub2.ID)

	return srv2.sigterm()
}

func readBaseURL(stdout io.Reader) (string, error) {
	sc := bufio.NewScanner(stdout)
	lineCh := make(chan string, 1)
	go func() {
		if sc.Scan() {
			lineCh <- sc.Text()
		}
		close(lineCh)
	}()
	select {
	case line, ok := <-lineCh:
		if !ok {
			return "", fmt.Errorf("server exited before printing its address")
		}
		const marker = "listening on "
		i := strings.Index(line, marker)
		if i < 0 {
			return "", fmt.Errorf("unexpected banner %q", line)
		}
		return strings.TrimSpace(line[i+len(marker):]), nil
	case <-time.After(10 * time.Second):
		return "", fmt.Errorf("server did not print its address within 10s")
	}
}

func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("healthz not ready within %s", timeout)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func decodeInto(resp *http.Response, wantStatus int, v any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != wantStatus {
		return fmt.Errorf("status %d (want %d): %s", resp.StatusCode, wantStatus, body)
	}
	return json.Unmarshal(body, v)
}
