#!/bin/sh
# benchdiff.sh OLD.json NEW.json [benchdiff flags...]
# Compares two `lscatter-bench -metrics` reports (per-artifact wall clock and
# allocation deltas plus totals) and exits nonzero when the newer report
# regresses total alloc_bytes beyond the threshold. Thin wrapper over
# tools/benchdiff so `make bench-compare` and CI share one implementation.
set -e
if [ "$#" -lt 2 ]; then
    echo "usage: $0 OLD.json NEW.json [flags...]" >&2
    exit 2
fi
old="$1"
new="$2"
shift 2
cd "$(dirname "$0")/.."
exec "${GO:-go}" run ./tools/benchdiff "$@" "$old" "$new"
