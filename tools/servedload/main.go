// Command servedload is the make served-load driver: a closed-loop load
// generator for lscatter-served that mixes the access patterns the serving
// layer optimizes for — concurrent identical submissions (coalescing),
// duplicate resubmissions (memory and disk cache hits), unique runs, and a
// cancel fraction — then reports sustained runs/sec and the hit/coalesce
// rates read back from /metricsz.
//
// Two modes:
//
//   - -base http://host:port targets a live server;
//   - -bin bin/lscatter-served launches its own on an ephemeral port with a
//     deliberately tiny memory store (-store 1) over a temporary artifact
//     directory, so duplicate resubmissions of older keys must be served
//     from disk — exercising all three cache tiers in one run.
//
// The -require-coalesce / -require-disk-hits gates turn the report into a
// smoke check: the run fails unless the respective counters moved, which is
// how make ci proves coalescing and durable serving work under real
// concurrency, not just in unit tests.
//
// Usage: servedload -bin bin/lscatter-served -duration 5s -require-coalesce -require-disk-hits
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"
)

func main() {
	var (
		base      = flag.String("base", "", "base URL of a live server (empty: launch -bin)")
		bin       = flag.String("bin", "bin/lscatter-served", "binary to launch when -base is empty")
		duration  = flag.Duration("duration", 5*time.Second, "load duration")
		burst     = flag.Int("burst", 6, "clients per concurrent-identical burst")
		tags      = flag.Int("tags", 300, "fleet size of the burst spec (big enough to stay in flight)")
		cancelMod = flag.Int("cancel-every", 4, "cancel the burst's run every Nth round (0 = never)")
		reqCoal   = flag.Bool("require-coalesce", false, "fail unless coalesced joins occurred")
		reqDisk   = flag.Bool("require-disk-hits", false, "fail unless disk hits occurred")
		minRounds = flag.Int("min-rounds", 2, "fail if fewer full rounds complete")
	)
	flag.Parse()
	if err := run(*base, *bin, *duration, *burst, *tags, *cancelMod, *reqCoal, *reqDisk, *minRounds); err != nil {
		fmt.Fprintf(os.Stderr, "servedload: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("servedload: OK")
}

func run(base, bin string, duration time.Duration, burst, tags, cancelMod int, reqCoal, reqDisk bool, minRounds int) error {
	if base == "" {
		dir, err := os.MkdirTemp("", "servedload-artifacts-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		srv, err := launch(bin, "-workers", "2", "-queue", "256", "-store", "1", "-artifact-dir", dir)
		if err != nil {
			return err
		}
		defer srv.cmd.Process.Kill()
		defer srv.sigterm()
		base = srv.base
	}

	before, err := metrics(base)
	if err != nil {
		return err
	}

	// The workload: rounds of (a) a coalesce burst — `burst` goroutines
	// submit the identical fresh spec concurrently; (b) a duplicate
	// resubmission of the PREVIOUS round's spec, which a -store 1 server can
	// only serve from disk; (c) a unique small run; (d) every cancel-every'th
	// round, the burst run is canceled instead of awaited.
	start := time.Now()
	deadline := start.Add(duration)
	rounds := 0
	var clientErr error
	for round := 0; time.Now().Before(deadline); round++ {
		burstSpec := fmt.Sprintf(`{"tags":%d,"seed":%d}`, tags, 10_000+round)
		cancelRound := cancelMod > 0 && round%cancelMod == cancelMod-1

		var wg sync.WaitGroup
		ids := make([]string, burst)
		errs := make([]error, burst)
		for c := 0; c < burst; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				sub, err := submit(base, burstSpec)
				ids[c], errs[c] = sub.ID, err
			}(c)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				clientErr = err
			}
		}
		if clientErr != nil {
			break
		}

		if cancelRound {
			// One DELETE per distinct job id; coalesced ids alias the same
			// run, so canceling each waiter tears the whole flight down.
			for _, id := range ids {
				cancel(base, id)
			}
		} else if err := awaitDone(base, ids[0], 60*time.Second); err != nil {
			clientErr = err
			break
		}

		prevCanceled := cancelMod > 0 && (round-1)%cancelMod == cancelMod-1
		if round > 0 && !prevCanceled {
			prev := fmt.Sprintf(`{"tags":%d,"seed":%d}`, tags, 10_000+round-1)
			if _, err := submit(base, prev); err != nil {
				clientErr = err
				break
			}
		}
		if _, err := submit(base, fmt.Sprintf(`{"tags":2,"seed":%d}`, 90_000+round)); err != nil {
			clientErr = err
			break
		}
		rounds++
	}
	elapsed := time.Since(start)
	if clientErr != nil {
		return clientErr
	}

	after, err := metrics(base)
	if err != nil {
		return err
	}
	submitted := after.Jobs.Submitted - before.Jobs.Submitted
	computed := after.Jobs.Computed - before.Jobs.Computed
	cacheHits := after.Jobs.CacheHits - before.Jobs.CacheHits
	diskHits := after.Jobs.DiskHits - before.Jobs.DiskHits
	coalesced := after.Jobs.Coalesced - before.Jobs.Coalesced

	rate := func(n int) float64 {
		if submitted == 0 {
			return 0
		}
		return 100 * float64(n) / float64(submitted)
	}
	fmt.Printf("servedload: %d rounds, %d submissions in %.2fs\n", rounds, submitted, elapsed.Seconds())
	fmt.Printf("servedload: %.1f runs/sec sustained (%d computed)\n", float64(computed)/elapsed.Seconds(), computed)
	fmt.Printf("servedload: coalesced %d (%.1f%%), memory hits %d (%.1f%%), disk hits %d (%.1f%%)\n",
		coalesced, rate(coalesced), cacheHits, rate(cacheHits), diskHits, rate(diskHits))

	if rounds < minRounds {
		return fmt.Errorf("only %d full rounds in %s, want >= %d", rounds, duration, minRounds)
	}
	if reqCoal && coalesced == 0 {
		return fmt.Errorf("no coalesced joins under %d-way identical bursts", burst)
	}
	if reqDisk && diskHits == 0 {
		return fmt.Errorf("no disk hits despite -store 1 over an artifact dir")
	}
	return nil
}

type server struct {
	cmd  *exec.Cmd
	base string
}

func launch(bin string, extra ...string) (*server, error) {
	args := append([]string{"-addr", "127.0.0.1:0", "-drain", "10s"}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", bin, err)
	}
	base, err := readBaseURL(stdout)
	if err != nil {
		cmd.Process.Kill()
		return nil, err
	}
	go io.Copy(io.Discard, stdout)
	if err := waitHealthy(base, 5*time.Second); err != nil {
		cmd.Process.Kill()
		return nil, err
	}
	return &server{cmd: cmd, base: base}, nil
}

func (s *server) sigterm() {
	s.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { s.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		s.cmd.Process.Kill()
	}
}

type submitDoc struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	CacheHit  bool   `json:"cache_hit"`
	StatusURL string `json:"status_url"`
}

func submit(base, spec string) (submitDoc, error) {
	resp, err := http.Post(base+"/v1/runs", "application/json", strings.NewReader(spec))
	if err != nil {
		return submitDoc{}, fmt.Errorf("submit: %w", err)
	}
	var sub submitDoc
	if err := decodeInto(resp, http.StatusAccepted, &sub); err != nil {
		return submitDoc{}, fmt.Errorf("submit: %w", err)
	}
	return sub, nil
}

func cancel(base, id string) {
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/runs/"+id, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

func awaitDone(base, id string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/runs/" + id)
		if err != nil {
			return fmt.Errorf("poll: %w", err)
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := decodeInto(resp, http.StatusOK, &st); err != nil {
			return fmt.Errorf("poll: %w", err)
		}
		switch st.State {
		case "done":
			return nil
		case "failed", "canceled":
			return fmt.Errorf("run %s ended %s: %s", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("run %s still %s after %s", id, st.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

type metricsDoc struct {
	Jobs struct {
		Submitted int `json:"submitted"`
		Computed  int `json:"computed"`
		CacheHits int `json:"cache_hits"`
		DiskHits  int `json:"disk_hits"`
		Coalesced int `json:"coalesced"`
		Canceled  int `json:"canceled"`
	} `json:"jobs"`
}

func metrics(base string) (metricsDoc, error) {
	resp, err := http.Get(base + "/metricsz")
	if err != nil {
		return metricsDoc{}, fmt.Errorf("metricsz: %w", err)
	}
	var met metricsDoc
	if err := decodeInto(resp, http.StatusOK, &met); err != nil {
		return metricsDoc{}, fmt.Errorf("metricsz: %w", err)
	}
	return met, nil
}

func readBaseURL(stdout io.Reader) (string, error) {
	sc := bufio.NewScanner(stdout)
	lineCh := make(chan string, 1)
	go func() {
		if sc.Scan() {
			lineCh <- sc.Text()
		}
		close(lineCh)
	}()
	select {
	case line, ok := <-lineCh:
		if !ok {
			return "", fmt.Errorf("server exited before printing its address")
		}
		const marker = "listening on "
		i := strings.Index(line, marker)
		if i < 0 {
			return "", fmt.Errorf("unexpected banner %q", line)
		}
		return strings.TrimSpace(line[i+len(marker):]), nil
	case <-time.After(10 * time.Second):
		return "", fmt.Errorf("server did not print its address within 10s")
	}
}

func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("healthz not ready within %s", timeout)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func decodeInto(resp *http.Response, wantStatus int, v any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != wantStatus {
		return fmt.Errorf("status %d (want %d): %s", resp.StatusCode, wantStatus, body)
	}
	return json.Unmarshal(body, v)
}
