// Command rtfcheck gates the transport real-time factor against a recorded
// baseline. It reads the "rtf" object of a lscatter-bench -metrics report
// (normally BENCH_R2.json), re-measures the fixed-point streamer at the
// baseline's bandwidth on one goroutine, and exits nonzero when the fresh
// measurement falls more than the allowed percentage below the recorded
// headline — the regression gate behind `make rtf-check`. The absolute
// ≥10x-real-time target at 20 MHz is checked too (advisory by default, since
// CI machines differ from the machine the baseline was recorded on; pass
// -require-target to enforce it).
//
// Usage: go run ./tools/rtfcheck [-max-regress pct] [-subframes n] [-require-target] BASELINE.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lscatter/internal/experiments"
	"lscatter/internal/ltephy"
)

// target is the repo's absolute headline: simulated seconds per wall second
// the fixed-point transport must sustain at 20 MHz on one core.
const target = 10.0

func main() {
	maxRegress := flag.Float64("max-regress", 10, "fail if the streamer RTF falls more than this percent below the baseline")
	subframes := flag.Int("subframes", 2000, "timed subframes for the fresh measurement")
	requireTarget := flag.Bool("require-target", false, "also fail if the fresh 20 MHz RTF is below the absolute 10x target")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rtfcheck [-max-regress pct] [-subframes n] [-require-target] BASELINE.json")
		os.Exit(2)
	}

	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtfcheck:", err)
		os.Exit(2)
	}
	var base experiments.Report
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "rtfcheck: %s: %v\n", flag.Arg(0), err)
		os.Exit(2)
	}
	if base.RTF == nil || base.RTF.RTF <= 0 {
		fmt.Fprintf(os.Stderr, "rtfcheck: %s has no rtf baseline — record one with `lscatter-bench -all -rtf -metrics %s`\n",
			flag.Arg(0), flag.Arg(0))
		os.Exit(2)
	}

	// Re-measure at the baseline's bandwidth (the recorded reports use the
	// 20 MHz headline; the name round-trips through ltephy's numerology).
	bw := ltephy.BW20
	for _, b := range ltephy.Bandwidths {
		if b.String() == base.RTF.BW {
			bw = b
			break
		}
	}
	fresh := experiments.RunRTF(experiments.RTFConfig{BW: bw, Subframes: *subframes})
	fmt.Println(fresh.Render())

	delta := (fresh.RTF - base.RTF.RTF) / base.RTF.RTF * 100
	fmt.Printf("\nbaseline transport RTF: %.2fx (%s)\n", base.RTF.RTF, base.RTF.CPU)
	fmt.Printf("fresh    transport RTF: %.2fx (%+.1f%%)\n", fresh.RTF, delta)

	fail := false
	if delta < -*maxRegress {
		fmt.Printf("FAIL: transport RTF regressed %.1f%% (limit %.1f%%)\n", -delta, *maxRegress)
		fail = true
	}
	if fresh.RTF < target && bw == ltephy.BW20 {
		msg := "note"
		if *requireTarget {
			msg = "FAIL"
			fail = true
		}
		fmt.Printf("%s: fresh 20 MHz RTF %.2fx is below the %.0fx real-time target (see docs/PERFORMANCE.md)\n",
			msg, fresh.RTF, target)
	}
	if fail {
		os.Exit(1)
	}
	fmt.Println("OK: real-time factor within thresholds")
}
