#!/bin/sh
# docscheck.sh verifies two invariants of the documentation tree:
#
#   1. Every Go package in the module carries a package doc comment: at least
#      one file per package must open with a "// Package <x>" (libraries) or
#      "// Command <x>" (main packages) comment line.
#   2. Every docs/*.md file is reachable from README.md — mentioned by its
#      "docs/<NAME>.md" path either in the README itself or in another docs
#      page the README reaches, transitively (the repo's docs reference each
#      other by path, in prose or links). An orphaned page is documentation
#      nobody will find.
#
# Usage: sh tools/docscheck.sh   (or: make docs-check)
set -eu

cd "$(dirname "$0")/.."

# One line per package: "<dir>\t<file> <file> ...". The while loop runs in a
# pipeline subshell, so undocumented packages are reported on stdout and
# collected by the $(...) capture instead of a shared variable.
bad=$(
    ${GO:-go} list -f '{{.Dir}}{{"\t"}}{{range .GoFiles}}{{.}} {{end}}' ./... |
    while IFS="$(printf '\t')" read -r dir files; do
        found=0
        for f in $files; do
            if grep -Eq '^// (Package|Command) ' "$dir/$f"; then
                found=1
                break
            fi
        done
        if [ "$found" -eq 0 ]; then
            echo "$dir"
        fi
    done
)

if [ -n "$bad" ]; then
    echo "docscheck: packages without a doc comment:" >&2
    echo "$bad" | sed 's/^/  /' >&2
    echo "docscheck: FAILED — add a '// Package <name> ...' (or '// Command <name> ...') comment" >&2
    exit 1
fi

echo "docscheck: OK — every package documents itself"

# --- docs/*.md reachability ---------------------------------------------
# Breadth-first walk starting from README.md: a docs page counts as reachable
# when some reached page mentions its "docs/<NAME>.md" path (prose mention or
# markdown link — the repo's docs cite each other by path either way).
frontier="README.md"
reached=""
while [ -n "$frontier" ]; do
    next=""
    for page in $frontier; do
        [ -f "$page" ] || continue
        case " $reached " in *" $page "*) continue ;; esac
        reached="$reached $page"
        for t in $(grep -oE 'docs/[A-Za-z0-9_.-]+\.md' "$page" 2>/dev/null | sort -u); do
            [ -f "$t" ] && next="$next $t"
        done
    done
    frontier="$next"
done

orphans=""
for f in docs/*.md; do
    [ -f "$f" ] || continue
    case " $reached " in
        *" $f "*) ;;
        *) orphans="$orphans $f" ;;
    esac
done

if [ -n "$orphans" ]; then
    echo "docscheck: docs pages not reachable from README.md:" >&2
    for f in $orphans; do echo "  $f" >&2; done
    echo "docscheck: FAILED — link each page from README.md or from a page the README links" >&2
    exit 1
fi

echo "docscheck: OK — every docs/*.md page is reachable from README.md"
