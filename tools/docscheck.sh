#!/bin/sh
# docscheck.sh verifies that every Go package in the module carries a package
# doc comment: at least one file per package must open with a "// Package <x>"
# (libraries) or "// Command <x>" (main packages) comment line. This keeps the
# docs tree in docs/ and the in-source documentation from drifting apart.
#
# Usage: sh tools/docscheck.sh   (or: make docs-check)
set -eu

cd "$(dirname "$0")/.."

# One line per package: "<dir>\t<file> <file> ...". The while loop runs in a
# pipeline subshell, so undocumented packages are reported on stdout and
# collected by the $(...) capture instead of a shared variable.
bad=$(
    ${GO:-go} list -f '{{.Dir}}{{"\t"}}{{range .GoFiles}}{{.}} {{end}}' ./... |
    while IFS="$(printf '\t')" read -r dir files; do
        found=0
        for f in $files; do
            if grep -Eq '^// (Package|Command) ' "$dir/$f"; then
                found=1
                break
            fi
        done
        if [ "$found" -eq 0 ]; then
            echo "$dir"
        fi
    done
)

if [ -n "$bad" ]; then
    echo "docscheck: packages without a doc comment:" >&2
    echo "$bad" | sed 's/^/  /' >&2
    echo "docscheck: FAILED — add a '// Package <name> ...' (or '// Command <name> ...') comment" >&2
    exit 1
fi

echo "docscheck: OK — every package documents itself"
