// Command distcheck is the make dist-check smoke driver for the distributed
// execution layer: it launches two real lscatter-worker processes sharing
// one artifact directory, runs a sharded `lscatter-bench -all` sweep against
// them, and proves the two distribution invariants end to end:
//
//  1. Identical output: the sharded sweep's stdout is byte-identical to the
//     local in-process sweep's — the determinism contract survives the wire.
//  2. Zero duplicate computes: summing /statsz across the workers, every
//     artifact computed exactly once (hash-sharding partitions the registry
//     into disjoint per-worker subsets; the shared store would absorb any
//     re-dispatch race, but with both workers alive none may occur).
//
// Usage: distcheck -bench bin/lscatter-bench -worker bin/lscatter-worker
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"time"
)

func main() {
	bench := flag.String("bench", "bin/lscatter-bench", "path to the lscatter-bench binary")
	worker := flag.String("worker", "bin/lscatter-worker", "path to the lscatter-worker binary")
	seed := flag.String("seed", "1", "sweep seed")
	flag.Parse()
	if err := run(*bench, *worker, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "distcheck: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("distcheck: OK")
}

// shard is one launched lscatter-worker process plus its base URL.
type shard struct {
	cmd  *exec.Cmd
	base string
}

// launch starts a worker on an ephemeral port over dir and waits for its
// health endpoint.
func launch(worker, dir string) (*shard, error) {
	cmd := exec.Command(worker, "-addr", "127.0.0.1:0", "-artifact-dir", dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	// The worker prints its bound base URL as the first stdout line.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		_ = cmd.Process.Kill()
		return nil, fmt.Errorf("worker exited before printing its address")
	}
	s := &shard{cmd: cmd, base: strings.TrimSpace(sc.Text())}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(s.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return s, nil
			}
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			return nil, fmt.Errorf("worker %s never became healthy: %v", s.base, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (s *shard) stop() {
	_ = s.cmd.Process.Kill()
	_, _ = s.cmd.Process.Wait()
}

// workerStats mirrors exec.WorkerStats on the wire.
type workerStats struct {
	Served   uint64 `json:"served"`
	Errors   uint64 `json:"errors"`
	Computed uint64 `json:"computed"`
	Restored uint64 `json:"restored"`
}

func (s *shard) stats() (workerStats, error) {
	var st workerStats
	resp, err := http.Get(s.base + "/statsz")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("statsz: %s", resp.Status)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// sweep runs one `lscatter-bench -all` and returns its stdout.
func sweep(bench, seed string, extra ...string) ([]byte, error) {
	args := append([]string{"-all", "-seed", seed, "-parallel", "4"}, extra...)
	cmd := exec.Command(bench, args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("%s %s: %w", bench, strings.Join(args, " "), err)
	}
	return out.Bytes(), nil
}

func run(bench, worker, seed string) error {
	dir, err := os.MkdirTemp("", "distcheck-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// The registry size, from the binary itself so the check cannot drift.
	list := exec.Command(bench, "-list")
	var ids bytes.Buffer
	list.Stdout = &ids
	list.Stderr = os.Stderr
	if err := list.Run(); err != nil {
		return fmt.Errorf("listing artifacts: %w", err)
	}
	n := uint64(len(strings.Fields(ids.String())))
	if n == 0 {
		return fmt.Errorf("artifact registry is empty")
	}

	w1, err := launch(worker, dir)
	if err != nil {
		return err
	}
	defer w1.stop()
	w2, err := launch(worker, dir)
	if err != nil {
		return err
	}
	defer w2.stop()
	fmt.Printf("distcheck: workers %s %s over %s\n", w1.base, w2.base, dir)

	local, err := sweep(bench, seed)
	if err != nil {
		return fmt.Errorf("local sweep: %w", err)
	}
	sharded, err := sweep(bench, seed, "-shard-workers", w1.base+","+w2.base)
	if err != nil {
		return fmt.Errorf("sharded sweep: %w", err)
	}

	if !bytes.Equal(local, sharded) {
		return fmt.Errorf("sharded sweep output differs from local (%d vs %d bytes)", len(local), len(sharded))
	}
	st1, err := w1.stats()
	if err != nil {
		return err
	}
	st2, err := w2.stats()
	if err != nil {
		return err
	}
	fmt.Printf("distcheck: worker stats %+v %+v (registry %d)\n", st1, st2, n)
	if st1.Errors != 0 || st2.Errors != 0 {
		return fmt.Errorf("worker errors: %d + %d", st1.Errors, st2.Errors)
	}
	if got := st1.Computed + st2.Computed; got != n {
		return fmt.Errorf("computed %d artifacts across workers, want exactly %d (duplicates or gaps)", got, n)
	}
	if st1.Restored+st2.Restored != 0 {
		return fmt.Errorf("restored %d artifacts on a cold store, want 0", st1.Restored+st2.Restored)
	}
	if st1.Computed == 0 || st2.Computed == 0 {
		return fmt.Errorf("sharding did not spread work: %d vs %d computes", st1.Computed, st2.Computed)
	}
	fmt.Printf("distcheck: sharded output byte-identical (%d bytes), %d+%d computes, 0 duplicates\n",
		len(sharded), st1.Computed, st2.Computed)
	return nil
}
