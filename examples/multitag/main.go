// Command multitag shows two LScatter tags sharing one LTE excitation by TDMA over 5 ms
// bursts, identifying themselves with distinct preambles. Idle tags park
// their switch, leaving the shifted band clean for the active one — the
// spectrum-sharing direction §6 of the paper sketches.
package main

import (
	"fmt"
	"math"

	"lscatter/internal/bits"
	"lscatter/internal/channel"
	"lscatter/internal/enodeb"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
	"lscatter/internal/tag"
	"lscatter/internal/ue"
)

func main() {
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	enb := enodeb.New(cfg)
	p := cfg.Params

	mods := []*tag.Modulator{
		tag.NewModulator(tag.ModConfig{Params: p, ID: 1, TimingErrorUnits: 3, SampleOffset: 1}),
		tag.NewModulator(tag.ModConfig{Params: p, ID: 2, TimingErrorUnits: -4, SampleOffset: 2}),
	}
	r := rng.New(7)
	sent := make([][]byte, 2)
	for i, m := range mods {
		sent[i] = r.Bits(make([]byte, 60*m.PerSymbolBits()))
		m.QueueBits(sent[i])
	}

	lteRx := ue.NewLTEReceiver(p, cfg.Scheme)
	scfg := ue.DefaultScatterConfig(p)
	scfg.TagIDs = []int{1, 2}
	sc := ue.NewScatterDemod(scfg)

	fmt.Println("two tags, alternating 5 ms bursts, identified by preamble:")
	errsByTag := map[int]int{}
	bitsByTag := map[int]int{}
	startSample := 0
	for sfIdx := 0; sfIdx < 10; sfIdx++ {
		sf := enb.NextSubframe()
		owner := (sfIdx / 5) % 2
		burst := sf.Index == 0 || sf.Index == 5
		paths := [][]complex128{gain(sf.Samples, -40)}
		var recs []tag.SymbolRecord
		for i, m := range mods {
			if i == owner {
				var refl []complex128
				refl, recs = m.ModulateSubframe(sf.Samples, sf.Index, burst)
				paths = append(paths, gain(refl, -68))
			} else {
				paths = append(paths, gain(m.ParkedSubframe(sf.Samples), -68))
			}
		}
		rx := channel.Combine(r, 0, paths...)
		lte, err := lteRx.ReceiveSubframe(rx, sf.Index)
		if err != nil || !lte.OK {
			fmt.Printf("  sf %d: LTE decode failed\n", sfIdx)
			startSample += len(rx)
			continue
		}
		var res *ue.ScatterResult
		if burst {
			sc.Reset()
			res = sc.AcquireBurst(rx, lte.RefSamples, sf.Index, startSample)
			if res.Synced {
				fmt.Printf("  sf %d: burst from tag %d (corr %.2f, offset %+d units)\n",
					sfIdx, res.TagID, res.PreambleCorr, res.OffsetUnits)
				d := sc.DemodSubframe(rx, lte.RefSamples, sf.Index, startSample, true)
				res.Decisions = d.Decisions
			}
		} else {
			res = sc.DemodSubframe(rx, lte.RefSamples, sf.Index, startSample, false)
		}
		startSample += len(rx)
		byBits := map[int][]byte{}
		for _, rec := range recs {
			if rec.Bits != nil && !rec.IsPreamble {
				byBits[rec.Symbol] = rec.Bits
			}
		}
		for _, dec := range res.Decisions {
			if want, ok := byBits[dec.Symbol]; ok {
				errsByTag[owner+1] += bits.CountDiff(dec.Bits, want)
				bitsByTag[owner+1] += len(want)
			}
		}
	}
	fmt.Println()
	for id := 1; id <= 2; id++ {
		fmt.Printf("tag %d: %d bits demodulated, %d errors\n", id, bitsByTag[id], errsByTag[id])
	}
	fmt.Println("\neach tag gets half the 13.68 Mbps raw rate — still thousands of")
	fmt.Println("times a duty-cycled WiFi backscatter deployment")
}

func gain(x []complex128, db float64) []complex128 {
	g := complex(math.Pow(10, db/20), 0)
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = v * g
	}
	return out
}
