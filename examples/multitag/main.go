// Command multitag shows two LScatter tags sharing one LTE excitation by TDMA over 5 ms
// bursts, identifying themselves with distinct preambles. Idle tags park
// their switch, leaving the shifted band clean for the active one — the
// spectrum-sharing direction §6 of the paper sketches.
package main

import (
	"fmt"

	"lscatter/internal/channel"
	"lscatter/internal/enodeb"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
	"lscatter/internal/simlink"
	"lscatter/internal/tag"
	"lscatter/internal/ue"
)

func main() {
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	enb := enodeb.New(cfg)
	p := cfg.Params

	mods := []*tag.Modulator{
		tag.NewModulator(tag.ModConfig{Params: p, ID: 1, TimingErrorUnits: 3, SampleOffset: 1}),
		tag.NewModulator(tag.ModConfig{Params: p, ID: 2, TimingErrorUnits: -4, SampleOffset: 2}),
	}
	r := rng.New(7)
	tags := make([]*simlink.Tag, len(mods))
	for i, m := range mods {
		m.QueueBits(r.Bits(make([]byte, 60*m.PerSymbolBits())))
		tags[i] = &simlink.Tag{Mod: m, Path: simlink.GainDB(-68), Park: true}
	}

	scfg := ue.DefaultScatterConfig(p)
	scfg.TagIDs = []int{1, 2}

	fmt.Println("two tags, alternating 5 ms bursts, identified by preamble:")
	sink := &simlink.DemodSink{
		LTE:            ue.NewLTEReceiver(p, cfg.Scheme),
		Scatter:        ue.NewScatterDemod(scfg),
		ResetEachBurst: true,
		OnLTE: func(f *simlink.Frame, lte *ue.LTEResult, err error) {
			if err != nil || !lte.OK {
				fmt.Printf("  sf %d: LTE decode failed\n", f.N)
			}
		},
		OnSync: func(f *simlink.Frame, res *ue.ScatterResult) {
			fmt.Printf("  sf %d: burst from tag %d (corr %.2f, offset %+d units)\n",
				f.N, res.TagID, res.PreambleCorr, res.OffsetUnits)
		},
	}
	sess := &simlink.Session{
		Source: enb,
		Direct: simlink.GainDB(-40),
		Tags:   tags,
		Owner:  func(n int) int { return (n / 5) % 2 },
		Link:   channel.NewLink(r, 0),
		Sink:   sink,
	}
	sess.Run(10)

	fmt.Println()
	for id := 1; id <= 2; id++ {
		acct := sink.Account(id - 1)
		fmt.Printf("tag %d: %d bits demodulated, %d errors\n", id, acct.Total, acct.Errs)
	}
	fmt.Println("\neach tag gets half the 13.68 Mbps raw rate — still thousands of")
	fmt.Println("times a duty-cycled WiFi backscatter deployment")
}
