// Command continuousauth demonstrates continuous authentication (paper §5):
// an EMG wearable streams muscle
// activity over LScatter; a laptop-side classifier re-authenticates the
// wearer several times per second and locks the session the moment the
// biometrics stop matching.
package main

import (
	"fmt"

	"lscatter/internal/app/auth"
	"lscatter/internal/channel"
)

func main() {
	owner := auth.NewEMGSource(1001)
	clf := auth.Train(owner, 25, 1000)
	fmt.Println("enrolled user 1001 from 25 EMG windows")

	// Session 1: the owner keeps using the laptop.
	ok := 0
	for i := 0; i < 10; i++ {
		w := owner.Window(1000)
		// Transport the window over the link (quantize + CRC frame).
		recovered, delivered := auth.FrameRoundTrip(w, 1.0)
		if !delivered {
			continue
		}
		if clf.Authenticate(auth.Extract(recovered)) {
			ok++
		}
	}
	fmt.Printf("owner session: %d/10 windows authenticated\n", ok)

	// Session 2: someone else takes over.
	intruder := auth.NewEMGSource(2002)
	rejected := 0
	for i := 0; i < 10; i++ {
		recovered, delivered := auth.FrameRoundTrip(intruder.Window(1000), 1.0)
		if delivered && !clf.Authenticate(auth.Extract(recovered)) {
			rejected++
		}
	}
	fmt.Printf("intruder session: %d/10 windows rejected -> lock the screen\n\n", rejected)

	// Figure 33b: how often can we re-authenticate as the wearable moves
	// away from the excitation source?
	cfg := auth.DefaultConfig()
	fmt.Println("update rate vs tag-to-source distance (Fig 33b):")
	for _, ft := range []float64{2, 8, 16, 24, 32, 40} {
		rate := auth.UpdateRate(cfg, channel.FeetToMeters(ft))
		fmt.Printf("  %2.0f ft: %6.1f authentications/s\n", ft, rate)
	}
	fmt.Println("\neven at 40 ft the app re-authenticates several times per second,")
	fmt.Println("at tens of microwatts instead of a radio's tens of milliwatts")
}
