// Command quickstart drives the full bit-true LScatter chain end to end — an eNodeB
// generating continuous LTE downlink, a tag piggybacking a text message by
// basic-timing-unit phase modulation, a two-hop wireless channel, and a UE
// that decodes the LTE transport blocks, regenerates the clean excitation,
// and demodulates the backscatter bits.
package main

import (
	"fmt"

	"lscatter/internal/bits"
	"lscatter/internal/channel"
	"lscatter/internal/enodeb"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
	"lscatter/internal/simlink"
	"lscatter/internal/tag"
	"lscatter/internal/ue"
)

func main() {
	const message = "hello from LScatter: ambient LTE backscatter in pure Go"
	fmt.Printf("sending %q (%d bits)\n\n", message, 8*len(message))

	// 1. The ambient excitation: a 1.4 MHz LTE cell (smallest bandwidth, so
	//    the example runs in milliseconds even on a laptop).
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	enb := enodeb.New(cfg)
	p := cfg.Params

	// 2. The tag: queue the framed message (CRC16-protected). A residual
	//    timing error and sub-unit offset are deliberately injected — the
	//    UE's preamble search and phase-offset elimination must absorb them.
	mod := tag.NewModulator(tag.ModConfig{
		Params:           p,
		TimingErrorUnits: 4,
		SampleOffset:     1,
	})
	payload := bits.AttachCRC16(bits.Unpack([]byte(message), 8*len(message)))
	mod.QueueBits(payload)
	// Pad with idle bits so the final partial symbol still goes out.
	mod.QueueBits(make([]byte, mod.PerSymbolBits()))

	// 3. The channel: direct path and two-hop backscatter path with thermal
	//    noise at a 7 dB noise figure.
	r := rng.New(42)
	pl := channel.PathLoss{FreqHz: 680e6, Exponent: 2.2}
	sr := p.SampleRate()
	direct := channel.NewHop(r.Fork(1), pl, channel.FeetToMeters(5), 8, 0, nil)
	hop1 := channel.NewHop(r.Fork(2), pl, channel.FeetToMeters(3), 8, 0, nil)
	hop2 := channel.NewHop(r.Fork(3), pl, channel.FeetToMeters(3), 4, 0,
		channel.NewMultipath(r.Fork(4), channel.PedestrianProfile, sr))
	occupied := float64(p.BW.Subcarriers()) * ltephy.SubcarrierSpacing
	noise := channel.NoiseFloorW(occupied, 7) * sr / occupied

	// 4. The UE sink: direct-path LTE receiver + backscatter demodulator,
	//    collecting every demodulated bit and narrating the per-subframe
	//    progress.
	sink := &simlink.DemodSink{
		LTE:         ue.NewLTEReceiver(p, cfg.Scheme),
		Scatter:     ue.NewScatterDemod(ue.DefaultScatterConfig(p)),
		CollectBits: true,
		OnLTE: func(f *simlink.Frame, lte *ue.LTEResult, err error) {
			if err != nil || !lte.OK {
				fmt.Printf("subframe %d: LTE decode failed, skipping\n", f.Subframe.Index)
				return
			}
			fmt.Printf("subframe %d: LTE transport block OK (%d bits, EVM %.1f%%)\n",
				f.Subframe.Index, len(lte.Payload), 100*lte.EVM)
		},
		OnSync: func(_ *simlink.Frame, res *ue.ScatterResult) {
			fmt.Printf("  preamble acquired: modulation offset %+d units, correlation %.2f\n",
				res.OffsetUnits, res.PreambleCorr)
		},
	}

	// 5. The session: the shared staged pipeline, run until the message is in.
	sess := &simlink.Session{
		Source: enb,
		Direct: direct,
		Tags:   []*simlink.Tag{{Mod: mod, Path: simlink.Chain(hop1, hop2)}},
		Link:   channel.NewLink(r.Fork(5), noise),
		Sink:   sink,
	}
	sess.RunUntil(4, func() bool { return len(sink.Bits) >= len(payload) })

	if len(sink.Bits) < len(payload) {
		fmt.Println("\nnot enough bits demodulated")
		return
	}
	got, ok := bits.CheckCRC16(sink.Bits[:len(payload)])
	fmt.Printf("\nreceived %d bits, CRC ok: %v\n", len(payload), ok)
	fmt.Printf("message: %q\n", string(bits.Pack(got)))
	fmt.Printf("raw backscatter rate at this bandwidth: %.0f Kbps\n",
		float64(mod.PerSymbolBits()*114)/0.01/1e3)
}
