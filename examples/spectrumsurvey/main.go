// Command spectrumsurvey reproduces the paper's motivating measurement (§2) — a
// week of occupancy statistics for LTE, WiFi and LoRa across venues, plus
// synthesized 20 ms band snapshots showing why bursty spectra starve a
// backscatter tag.
package main

import (
	"fmt"

	"lscatter/internal/stats"
	"lscatter/internal/traffic"
)

func main() {
	fmt.Println("one-week traffic occupancy survey (fraction of airtime occupied)")
	fmt.Println()
	fmt.Printf("%-18s %8s %8s %8s %8s\n", "band/venue", "mean", "p50", "p90", "p(>0.5)")
	survey := []struct {
		tech  traffic.Tech
		venue traffic.Venue
	}{
		{traffic.LTE, traffic.Home},
		{traffic.WiFi, traffic.Office},
		{traffic.WiFi, traffic.Classroom},
		{traffic.WiFi, traffic.Home},
		{traffic.WiFi, traffic.Mall},
		{traffic.WiFi, traffic.Outdoor},
		{traffic.LoRa, traffic.Home},
		{traffic.LoRa, traffic.Office},
	}
	for i, s := range survey {
		m := traffic.NewModel(s.tech, s.venue, uint64(i)+1)
		week := m.WeekSeries(6)
		cdf := stats.NewCDF(week)
		fmt.Printf("%-18s %8.3f %8.3f %8.3f %8.3f\n",
			fmt.Sprintf("%s/%s", s.tech, s.venue),
			stats.Mean(week), cdf.Quantile(0.5), cdf.Quantile(0.9), 1-cdf.At(0.5))
	}

	fmt.Println()
	fmt.Println("synthesized band snapshots (measured frame occupancy over 20-100 ms):")
	wifiOcc := traffic.MeasuredOccupancy(traffic.WiFiBandIQ(1, 20e-3, 20e6), 20e6)
	loraOcc := traffic.MeasuredOccupancy(traffic.LoRaBandIQ(2, 100e-3, 2e6), 2e6)
	fmt.Printf("  2.4 GHz WiFi channel : %.2f (bursty, shared with ZigBee)\n", wifiOcc)
	fmt.Printf("  915 MHz LoRa channel : %.2f (duty-cycled uplinks)\n", loraOcc)
	fmt.Printf("  LTE downlink         : 1.00 (continuous OFDM, PSS every 5 ms)\n")
	fmt.Println()
	fmt.Println("conclusion (Observation 1): only the LTE band gives a backscatter")
	fmt.Println("tag an excitation signal that is ambient, continuous and ubiquitous")
}
