// Command smarthome models a smart home: a suite of battery-free sensors shares one LScatter link by
// TDMA over the continuous LTE excitation, and the same telemetry demand is
// priced against a WiFi-backscatter deployment whose excitation comes and
// goes with the household's WiFi activity.
package main

import (
	"fmt"
	"sort"

	"lscatter/internal/app/sensornet"
	"lscatter/internal/baseline"
	"lscatter/internal/core"
	"lscatter/internal/ltephy"
	"lscatter/internal/traffic"
)

func main() {
	link := core.DefaultLinkConfig(ltephy.BW5)
	rep := core.Run(link)
	fmt.Printf("smart-home LScatter link: %.2f Mbps goodput, BER %.2g\n\n",
		rep.ThroughputBps/1e6, rep.BER)

	sensors := sensornet.DefaultSensors()
	net := sensornet.NewNetwork(link, sensors...)
	res := net.Simulate(30, 7)

	fmt.Println("30 s of telemetry over the shared LTE excitation:")
	names := make([]string, 0, len(res.PerSensor))
	for n := range res.PerSensor {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-12s %6.2f samples/s delivered\n", n, res.PerSensor[n])
	}
	fmt.Printf("mean queueing latency: %.1f ms, link utilization: %.3f%%, drops: %.2f%%\n\n",
		res.MeanLatency*1e3, 100*res.Utilization, 100*res.DropRate)

	// The same home, on WiFi backscatter: availability follows the ambient
	// WiFi activity hour by hour.
	occ := traffic.NewModel(traffic.WiFi, traffic.Home, 7)
	w := baseline.DefaultWiFiBackscatter()
	fmt.Println("WiFi backscatter alternative (goodput by hour):")
	for _, h := range []int{4, 10, 16, 20} {
		var sum float64
		const n = 30
		for i := 0; i < n; i++ {
			sum += w.Evaluate(occ.Sample(float64(h)), occ.WiFiUsableFraction()).ThroughputBps
		}
		fmt.Printf("  %02d:00  %8.1f Kbps\n", h, sum/n/1e3)
	}
	fmt.Println("\nthe LTE excitation never goes away — that is Observation 1 in practice")
}
