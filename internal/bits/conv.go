package bits

import (
	"math"
	"sync"
)

// ConvCode is the LTE tail-biting-style convolutional code reduced to a
// zero-terminated rate-1/3 (optionally punctured to 1/2) code with
// constraint length 7 and the standard generator polynomials
// G0=133, G1=171, G2=165 (octal). Decoding is hard- or soft-decision Viterbi.
type ConvCode struct {
	rate  int // output bits per input bit before puncturing: 3
	gens  []uint32
	punct []bool // puncturing pattern over the rate-3 output, true=keep
	kept  int    // kept bits per pattern period

	// branches[s][in] is the trellis branch leaving state s on input bit in.
	// Built once at construction and read-only after, so a single codec is
	// safe for concurrent decodes.
	branches [numStates][2]branch
}

const constraintLen = 7

const numStates = 1 << (constraintLen - 1) // 64

type branch struct {
	next uint32
	out  []float64 // expected +1/-1 per kept bit (LLR sign convention)
}

// NewConvCodeR13 returns the rate-1/3 K=7 code.
func NewConvCodeR13() *ConvCode {
	c := &ConvCode{rate: 3, gens: []uint32{0o133, 0o171, 0o165}, punct: []bool{true, true, true}, kept: 3}
	c.initBranches()
	return c
}

// NewConvCodeR12 returns the K=7 code punctured to rate 1/2 (keeps G0 and G1
// of every triplet).
func NewConvCodeR12() *ConvCode {
	c := &ConvCode{rate: 3, gens: []uint32{0o133, 0o171, 0o165}, punct: []bool{true, true, false}, kept: 2}
	c.initBranches()
	return c
}

// initBranches precomputes the expected outputs for each (state, input).
func (c *ConvCode) initBranches() {
	for s := uint32(0); s < numStates; s++ {
		for in := uint32(0); in < 2; in++ {
			reg := (s<<1 | in) & 0x7f
			outs := make([]float64, 0, c.kept)
			for g := 0; g < c.rate; g++ {
				if !c.punct[g] {
					continue
				}
				v := reg & c.gens[g]
				v ^= v >> 4
				v ^= v >> 2
				v ^= v >> 1
				if v&1 == 1 {
					outs = append(outs, -1)
				} else {
					outs = append(outs, 1)
				}
			}
			c.branches[s][in] = branch{next: reg & (numStates - 1), out: outs}
		}
	}
}

// Rate returns (input bits, output bits) per pattern period.
func (c *ConvCode) Rate() (in, out int) { return 1, c.kept }

// EncodedLen returns the number of coded bits produced for n input bits
// (including the K-1 zero tail).
func (c *ConvCode) EncodedLen(n int) int { return (n + constraintLen - 1) * c.kept }

// Encode convolutionally encodes b (appending a K-1 zero tail to terminate
// the trellis) and returns the punctured coded bits.
func (c *ConvCode) Encode(b []byte) []byte {
	out := make([]byte, 0, c.EncodedLen(len(b)))
	var state uint32 // shift register, newest bit in LSB position 6..0
	emit := func(bit byte) {
		state = (state<<1 | uint32(bit)) & 0x7f
		for g := 0; g < c.rate; g++ {
			if !c.punct[g] {
				continue
			}
			v := state & c.gens[g]
			// parity of v
			v ^= v >> 4
			v ^= v >> 2
			v ^= v >> 1
			out = append(out, byte(v&1))
		}
	}
	for _, bit := range b {
		emit(bit & 1)
	}
	for i := 0; i < constraintLen-1; i++ {
		emit(0)
	}
	return out
}

// Decode runs hard-decision Viterbi over coded bits produced by Encode and
// returns the recovered n information bits (n = len(coded)/kept - (K-1)).
// Invalid lengths return nil.
func (c *ConvCode) Decode(coded []byte) []byte {
	llr := make([]float64, len(coded))
	for i, b := range coded {
		if b&1 == 1 {
			llr[i] = -1 // bit 1 → negative LLR convention
		} else {
			llr[i] = 1
		}
	}
	return c.DecodeSoft(llr)
}

// viterbiScratch holds the per-decode working set: two metric rows and the
// flat survivor matrix (indexed t*numStates+state). Pooled because the
// receive chain decodes one codeword per subframe per run.
type viterbiScratch struct {
	metric   [numStates]float64
	next     [numStates]float64
	survivor []uint16
}

var viterbiPool = sync.Pool{New: func() any { return new(viterbiScratch) }}

// DecodeSoft runs soft-decision Viterbi decoding. llr[i] > 0 means coded bit
// i is more likely 0; magnitude is confidence. Returns the information bits
// or nil if the length is not a whole number of steps.
func (c *ConvCode) DecodeSoft(llr []float64) []byte {
	if len(llr)%c.kept != 0 {
		return nil
	}
	steps := len(llr) / c.kept
	n := steps - (constraintLen - 1)
	if n <= 0 {
		return nil
	}
	scr := viterbiPool.Get().(*viterbiScratch)
	defer viterbiPool.Put(scr)
	if cap(scr.survivor) < steps*numStates {
		scr.survivor = make([]uint16, steps*numStates)
	}
	// survivor[t*numStates+state] = (prevState<<1)|inputBit
	survivor := scr.survivor[:steps*numStates]
	metric, next := scr.metric[:], scr.next[:]
	neg := math.Inf(-1)
	for i := range metric {
		metric[i] = neg
	}
	metric[0] = 0
	for t := 0; t < steps; t++ {
		for i := range next {
			next[i] = neg
		}
		row := survivor[t*numStates : (t+1)*numStates]
		sym := llr[t*c.kept : (t+1)*c.kept]
		for s := uint32(0); s < numStates; s++ {
			if metric[s] == neg {
				continue
			}
			maxIn := uint32(1)
			if t >= n {
				maxIn = 0 // tail: only zero inputs
			}
			for in := uint32(0); in <= maxIn; in++ {
				br := &c.branches[s][in]
				m := metric[s]
				for k, exp := range br.out {
					m += exp * sym[k]
				}
				if m > next[br.next] {
					next[br.next] = m
					row[br.next] = uint16(s<<1 | in)
				}
			}
		}
		metric, next = next, metric
	}
	// Trellis is zero-terminated: trace back from state 0.
	out := make([]byte, n)
	state := uint32(0)
	for t := steps - 1; t >= 0; t-- {
		sv := survivor[t*numStates+int(state)]
		if t < n {
			out[t] = byte(sv & 1)
		}
		state = uint32(sv >> 1)
	}
	return out
}
