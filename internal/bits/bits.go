// Package bits implements the bit-level machinery shared by the LTE PHY and
// the backscatter link: CRC attachment, pseudo-random bit sequences, the LTE
// Gold scrambling sequence, a convolutional codec with Viterbi decoding, and
// block interleaving.
//
// Bits are represented one-per-byte (values 0 or 1) throughout; pack/unpack
// helpers convert to dense bytes at the application boundary.
package bits

import (
	"fmt"
	"sync"
)

// Pack converts a 0/1-per-byte bit slice into dense bytes, MSB first. The
// final byte is zero-padded on the right.
func Pack(b []byte) []byte {
	out := make([]byte, (len(b)+7)/8)
	for i, v := range b {
		if v > 1 {
			panic(fmt.Sprintf("bits: non-bit value %d at index %d", v, i))
		}
		out[i/8] |= v << (7 - uint(i%8))
	}
	return out
}

// Unpack converts dense bytes into n bits, one per byte, MSB first.
// It panics if n exceeds 8*len(p).
func Unpack(p []byte, n int) []byte {
	if n > 8*len(p) {
		panic("bits: Unpack length exceeds input")
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = (p[i/8] >> (7 - uint(i%8))) & 1
	}
	return out
}

// Xor returns a XOR b element-wise into a fresh slice. Lengths must match.
func Xor(a, b []byte) []byte {
	if len(a) != len(b) {
		panic("bits: Xor length mismatch")
	}
	out := make([]byte, len(a))
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// CountDiff returns the Hamming distance between two equal-length bit slices.
func CountDiff(a, b []byte) int {
	if len(a) != len(b) {
		panic("bits: CountDiff length mismatch")
	}
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}

// CRC16 computes the CRC-16-CCITT (polynomial 0x1021, init 0) over a bit
// slice, returning 16 CRC bits MSB first. This is LTE's CRC16 used for small
// transport blocks.
func CRC16(b []byte) []byte { return crcBits(b, 0x1021, 16) }

// CRC32 computes the IEEE 802 CRC-32 (polynomial 0x04C11DB7, init 0) over a
// bit slice, returning 32 CRC bits MSB first. The 802.11 FCS uses this
// polynomial (with inversions this simplified form omits — both ends here
// use the same convention, which preserves all error-detection properties).
func CRC32(b []byte) []byte { return crcBits(b, 0x04C11DB7, 32) }

// AttachCRC32 returns b with its CRC32 appended.
func AttachCRC32(b []byte) []byte { return append(append([]byte(nil), b...), CRC32(b)...) }

// CheckCRC32 verifies a bit slice with trailing CRC32.
func CheckCRC32(b []byte) (payload []byte, ok bool) {
	if len(b) < 32 {
		return nil, false
	}
	payload = b[:len(b)-32]
	want := CRC32(payload)
	got := b[len(b)-32:]
	for i := range want {
		if want[i] != got[i] {
			return payload, false
		}
	}
	return payload, true
}

// CRC24A computes LTE's CRC24A (polynomial 0x864CFB) over a bit slice,
// returning 24 CRC bits MSB first.
func CRC24A(b []byte) []byte { return crcBits(b, 0x864CFB, 24) }

func crcBits(b []byte, poly uint32, width uint) []byte {
	var reg uint32
	mask := uint32(1)<<width - 1
	for _, bit := range b {
		fb := (reg>>(width-1))&1 ^ uint32(bit)
		reg = (reg << 1) & mask
		if fb == 1 {
			reg ^= poly & mask
		}
	}
	out := make([]byte, width)
	for i := uint(0); i < width; i++ {
		out[i] = byte((reg >> (width - 1 - i)) & 1)
	}
	return out
}

// AttachCRC16 returns b with its CRC16 appended.
func AttachCRC16(b []byte) []byte { return append(append([]byte(nil), b...), CRC16(b)...) }

// CheckCRC16 verifies a bit slice with trailing CRC16 and returns the payload
// and whether the check passed.
func CheckCRC16(b []byte) (payload []byte, ok bool) {
	if len(b) < 16 {
		return nil, false
	}
	payload = b[:len(b)-16]
	want := CRC16(payload)
	got := b[len(b)-16:]
	for i := range want {
		if want[i] != got[i] {
			return payload, false
		}
	}
	return payload, true
}

// PRBS generates n bits of the ITU PRBS-15 sequence (x^15 + x^14 + 1) from a
// nonzero 15-bit seed. It is the payload generator for throughput tests.
func PRBS(seed uint16, n int) []byte {
	state := seed & 0x7fff
	if state == 0 {
		state = 1
	}
	out := make([]byte, n)
	for i := range out {
		bit := (state>>14 ^ state>>13) & 1
		state = state<<1&0x7fff | bit
		out[i] = byte(bit)
	}
	return out
}

// GoldSequence generates n bits of the LTE pseudo-random sequence c(n)
// defined in 3GPP TS 36.211 §7.2: two length-31 m-sequences combined after
// the standard Nc=1600 warm-up, with x2 initialized from cinit. The
// m-sequences run in 31-bit register windows (bit i of the register holds
// x(pos+i)), so the only allocation is the output slice.
func GoldSequence(cinit uint32, n int) []byte {
	const nc = 1600
	// x1 has fixed init: x1(0)=1, rest 0. x1(i+31) = x1(i+3) ^ x1(i);
	// x2(i+31) = x2(i+3) ^ x2(i+2) ^ x2(i+1) ^ x2(i).
	r1 := uint32(1)
	r2 := cinit & 0x7fffffff
	for i := 0; i < nc; i++ {
		r1 = r1>>1 | ((r1>>3^r1)&1)<<30
		r2 = r2>>1 | ((r2>>3^r2>>2^r2>>1^r2)&1)<<30
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = byte((r1 ^ r2) & 1)
		r1 = r1>>1 | ((r1>>3^r1)&1)<<30
		r2 = r2>>1 | ((r2>>3^r2>>2^r2>>1^r2)&1)<<30
	}
	return out
}

// BlockInterleaver permutes bits by writing row-wise into a matrix with the
// given number of columns and reading column-wise. It spreads burst errors
// across the codeword before Viterbi decoding.
type BlockInterleaver struct {
	cols  int
	perms sync.Map // int -> []int, memoized read-only permutations
}

// NewBlockInterleaver builds an interleaver with the given column count.
func NewBlockInterleaver(cols int) *BlockInterleaver {
	if cols < 1 {
		panic("bits: interleaver needs at least one column")
	}
	return &BlockInterleaver{cols: cols}
}

func (bi *BlockInterleaver) perm(n int) []int {
	if v, ok := bi.perms.Load(n); ok {
		return v.([]int)
	}
	rows := (n + bi.cols - 1) / bi.cols
	p := make([]int, 0, n)
	for c := 0; c < bi.cols; c++ {
		for r := 0; r < rows; r++ {
			idx := r*bi.cols + c
			if idx < n {
				p = append(p, idx)
			}
		}
	}
	v, _ := bi.perms.LoadOrStore(n, p)
	return v.([]int)
}

// Permutation returns the source-index permutation for length n:
// Interleave(b)[i] == b[Permutation(n)[i]]. The slice is memoized and shared
// between calls; callers must treat it as read-only.
func (bi *BlockInterleaver) Permutation(n int) []int { return bi.perm(n) }

// Interleave permutes b into a fresh slice.
func (bi *BlockInterleaver) Interleave(b []byte) []byte {
	p := bi.perm(len(b))
	out := make([]byte, len(b))
	for i, src := range p {
		out[i] = b[src]
	}
	return out
}

// Deinterleave inverts Interleave.
func (bi *BlockInterleaver) Deinterleave(b []byte) []byte {
	p := bi.perm(len(b))
	out := make([]byte, len(b))
	for i, dst := range p {
		out[dst] = b[i]
	}
	return out
}
