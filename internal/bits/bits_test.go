package bits

import (
	"testing"
	"testing/quick"

	"lscatter/internal/rng"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(200) + 1
		b := r.Bits(make([]byte, n))
		return CountDiff(Unpack(Pack(b), n), b) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPackMSBFirst(t *testing.T) {
	p := Pack([]byte{1, 0, 0, 0, 0, 0, 0, 1, 1})
	if p[0] != 0x81 || p[1] != 0x80 {
		t.Fatalf("Pack = %x, want 8180", p)
	}
}

func TestPackRejectsNonBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pack accepted value 2")
		}
	}()
	Pack([]byte{2})
}

func TestUnpackBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unpack over-length did not panic")
		}
	}()
	Unpack([]byte{0xff}, 9)
}

func TestXorAndCountDiff(t *testing.T) {
	a := []byte{1, 0, 1, 0}
	b := []byte{1, 1, 0, 0}
	x := Xor(a, b)
	want := []byte{0, 1, 1, 0}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("Xor = %v, want %v", x, want)
		}
	}
	if d := CountDiff(a, b); d != 2 {
		t.Fatalf("CountDiff = %d, want 2", d)
	}
}

func TestCRC16DetectsSingleBitErrors(t *testing.T) {
	r := rng.New(3)
	msg := r.Bits(make([]byte, 120))
	coded := AttachCRC16(msg)
	if _, ok := CheckCRC16(coded); !ok {
		t.Fatal("clean CRC16 failed")
	}
	for i := range coded {
		corrupted := append([]byte(nil), coded...)
		corrupted[i] ^= 1
		if _, ok := CheckCRC16(corrupted); ok {
			t.Fatalf("CRC16 missed single-bit error at %d", i)
		}
	}
}

func TestCRC16DetectsBurstErrors(t *testing.T) {
	r := rng.New(4)
	msg := r.Bits(make([]byte, 200))
	coded := AttachCRC16(msg)
	// All bursts of length <= 16 must be detected.
	for burst := 2; burst <= 16; burst++ {
		for trial := 0; trial < 20; trial++ {
			pos := r.Intn(len(coded) - burst)
			corrupted := append([]byte(nil), coded...)
			for j := 0; j < burst; j++ {
				corrupted[pos+j] ^= 1
			}
			// ensure at least first bit flipped so burst is real
			if _, ok := CheckCRC16(corrupted); ok {
				t.Fatalf("CRC16 missed burst len %d at %d", burst, pos)
			}
		}
	}
}

func TestCheckCRC16ShortInput(t *testing.T) {
	if _, ok := CheckCRC16(make([]byte, 10)); ok {
		t.Fatal("CheckCRC16 accepted input shorter than CRC")
	}
}

func TestCRC24ALength(t *testing.T) {
	c := CRC24A([]byte{1, 0, 1})
	if len(c) != 24 {
		t.Fatalf("CRC24A length %d", len(c))
	}
}

func TestCRC24ADetectsErrors(t *testing.T) {
	r := rng.New(5)
	msg := r.Bits(make([]byte, 64))
	crc := CRC24A(msg)
	for i := 0; i < len(msg); i++ {
		bad := append([]byte(nil), msg...)
		bad[i] ^= 1
		got := CRC24A(bad)
		if CountDiff(got, crc) == 0 {
			t.Fatalf("CRC24A unchanged by flip at %d", i)
		}
	}
}

func TestPRBSBalanceAndPeriodicity(t *testing.T) {
	b := PRBS(0x1234, 1<<16)
	ones := 0
	for _, v := range b {
		ones += int(v)
	}
	// PRBS-15 has period 32767 with 16384 ones per period.
	if ones < 30000 || ones > 35000 {
		t.Fatalf("PRBS ones = %d of %d", ones, len(b))
	}
	// Period check: sequence repeats after 32767.
	for i := 0; i < 1000; i++ {
		if b[i] != b[i+32767] {
			t.Fatalf("PRBS period violated at %d", i)
		}
	}
}

func TestPRBSZeroSeedUsable(t *testing.T) {
	b := PRBS(0, 100)
	allZero := true
	for _, v := range b {
		if v != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("PRBS(0) produced all zeros")
	}
}

func TestGoldSequenceKnownProperties(t *testing.T) {
	// Distinct cinit values give nearly uncorrelated sequences.
	a := GoldSequence(0x1111, 4096)
	b := GoldSequence(0x2222, 4096)
	if CountDiff(a, b) < 1700 || CountDiff(a, b) > 2400 {
		t.Fatalf("gold sequences too correlated: diff=%d of 4096", CountDiff(a, b))
	}
	// Deterministic.
	c := GoldSequence(0x1111, 4096)
	if CountDiff(a, c) != 0 {
		t.Fatal("gold sequence not deterministic")
	}
	// Balanced.
	ones := 0
	for _, v := range a {
		ones += int(v)
	}
	if ones < 1850 || ones > 2250 {
		t.Fatalf("gold sequence imbalance: %d ones of 4096", ones)
	}
}

func TestInterleaverRoundTrip(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		cols := r.Intn(16) + 1
		n := r.Intn(300) + 1
		bi := NewBlockInterleaver(cols)
		b := r.Bits(make([]byte, n))
		return CountDiff(bi.Deinterleave(bi.Interleave(b)), b) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleaverSpreadsBursts(t *testing.T) {
	bi := NewBlockInterleaver(16)
	n := 256
	b := make([]byte, n)
	inter := bi.Interleave(b)
	_ = inter
	// A burst of 8 adjacent errors in the interleaved domain must land at
	// least `cols` apart after deinterleaving... verify spacing.
	errPos := []int{100, 101, 102, 103}
	marked := make([]byte, n)
	for _, p := range errPos {
		marked[p] = 1
	}
	spread := bi.Deinterleave(marked)
	positions := []int{}
	for i, v := range spread {
		if v == 1 {
			positions = append(positions, i)
		}
	}
	for i := 1; i < len(positions); i++ {
		if positions[i]-positions[i-1] < 8 {
			t.Fatalf("burst not spread: positions %v", positions)
		}
	}
}
