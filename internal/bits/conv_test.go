package bits

import (
	"testing"
	"testing/quick"

	"lscatter/internal/rng"
)

func TestConvEncodeLengths(t *testing.T) {
	for _, c := range []*ConvCode{NewConvCodeR13(), NewConvCodeR12()} {
		for _, n := range []int{1, 10, 100} {
			coded := c.Encode(make([]byte, n))
			if len(coded) != c.EncodedLen(n) {
				t.Fatalf("encoded length %d, want %d", len(coded), c.EncodedLen(n))
			}
		}
	}
}

func TestConvRoundTripNoErrors(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(200) + 1
		msg := r.Bits(make([]byte, n))
		for _, c := range []*ConvCode{NewConvCodeR13(), NewConvCodeR12()} {
			dec := c.Decode(c.Encode(msg))
			if dec == nil || CountDiff(dec, msg) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConvCorrectsScatteredErrors(t *testing.T) {
	r := rng.New(7)
	c := NewConvCodeR13()
	msg := r.Bits(make([]byte, 100))
	coded := c.Encode(msg)
	// Flip well-separated bits: rate-1/3 K=7 has free distance 15, so a few
	// scattered errors must be corrected.
	for _, pos := range []int{10, 60, 120, 200, 280} {
		coded[pos] ^= 1
	}
	dec := c.Decode(coded)
	if CountDiff(dec, msg) != 0 {
		t.Fatalf("Viterbi failed to correct scattered errors: %d residual", CountDiff(dec, msg))
	}
}

func TestConvR12CorrectsErrors(t *testing.T) {
	r := rng.New(8)
	c := NewConvCodeR12()
	msg := r.Bits(make([]byte, 100))
	coded := c.Encode(msg)
	for _, pos := range []int{15, 80, 150} {
		coded[pos] ^= 1
	}
	dec := c.Decode(coded)
	if CountDiff(dec, msg) != 0 {
		t.Fatalf("rate-1/2 Viterbi failed: %d residual errors", CountDiff(dec, msg))
	}
}

func TestConvSoftBeatsHardAtLowSNR(t *testing.T) {
	// With Gaussian-corrupted LLRs, soft decoding must recover a codeword
	// whose hard slicing contains errors.
	r := rng.New(9)
	c := NewConvCodeR13()
	msg := r.Bits(make([]byte, 200))
	coded := c.Encode(msg)
	llr := make([]float64, len(coded))
	sigma := 0.9
	hardErrs := 0
	for i, b := range coded {
		v := 1.0
		if b == 1 {
			v = -1
		}
		noisy := v + sigma*r.NormFloat64()
		llr[i] = noisy
		if (noisy < 0) != (b == 1) {
			hardErrs++
		}
	}
	if hardErrs == 0 {
		t.Fatal("test setup produced no raw channel errors")
	}
	dec := c.DecodeSoft(llr)
	if CountDiff(dec, msg) != 0 {
		t.Fatalf("soft Viterbi left %d errors (raw channel had %d)", CountDiff(dec, msg), hardErrs)
	}
}

func TestConvDecodeInvalidLength(t *testing.T) {
	c := NewConvCodeR12()
	if c.Decode(make([]byte, 5)) != nil {
		t.Fatal("Decode accepted length not divisible by rate")
	}
	if c.Decode(make([]byte, 2)) != nil {
		t.Fatal("Decode accepted input shorter than tail")
	}
}

func TestConvRateAccessors(t *testing.T) {
	in, out := NewConvCodeR13().Rate()
	if in != 1 || out != 3 {
		t.Fatalf("R13 rate = %d/%d", in, out)
	}
	in, out = NewConvCodeR12().Rate()
	if in != 1 || out != 2 {
		t.Fatalf("R12 rate = %d/%d", in, out)
	}
}

func BenchmarkViterbiR12Decode1000(b *testing.B) {
	r := rng.New(1)
	c := NewConvCodeR12()
	msg := r.Bits(make([]byte, 1000))
	coded := c.Encode(msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Decode(coded)
	}
}

func BenchmarkConvEncode1000(b *testing.B) {
	r := rng.New(1)
	c := NewConvCodeR12()
	msg := r.Bits(make([]byte, 1000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encode(msg)
	}
}
