package auth

import (
	"math"
	"testing"

	"lscatter/internal/channel"
)

func TestEMGWindowStatistics(t *testing.T) {
	src := NewEMGSource(1)
	w := src.Window(4000)
	if len(w) != 4000 {
		t.Fatalf("window length %d", len(w))
	}
	f := Extract(w)
	if f.RMS <= 0 || f.MAV <= 0 {
		t.Fatalf("degenerate features: %+v", f)
	}
	if f.ZeroCross <= 0.05 || f.ZeroCross >= 0.9 {
		t.Fatalf("zero-crossing rate %v implausible for band-limited noise", f.ZeroCross)
	}
}

func TestClassifierAcceptsOwner(t *testing.T) {
	src := NewEMGSource(42)
	c := Train(src, 20, 1000)
	accepted := 0
	const trials = 40
	for i := 0; i < trials; i++ {
		if c.Authenticate(Extract(src.Window(1000))) {
			accepted++
		}
	}
	if accepted < trials*8/10 {
		t.Fatalf("owner accepted only %d/%d", accepted, trials)
	}
}

func TestClassifierRejectsImpostors(t *testing.T) {
	owner := NewEMGSource(42)
	c := Train(owner, 20, 1000)
	rejected, total := 0, 0
	for id := uint64(100); id < 130; id++ {
		imp := NewEMGSource(id)
		for i := 0; i < 5; i++ {
			total++
			if !c.Authenticate(Extract(imp.Window(1000))) {
				rejected++
			}
		}
	}
	if rejected < total*6/10 {
		t.Fatalf("impostors rejected only %d/%d", rejected, total)
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	src := NewEMGSource(7)
	w := src.Window(256)
	got, ok := FrameRoundTrip(w, 1.0)
	if !ok {
		t.Fatal("CRC failed on a clean frame")
	}
	if len(got) != len(w) {
		t.Fatalf("recovered %d samples of %d", len(got), len(w))
	}
	var maxErr float64
	for i := range w {
		if e := math.Abs(got[i] - w[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1.0/32+1e-9 {
		t.Fatalf("quantization error %v exceeds one LSB", maxErr)
	}
}

func TestUpdateRateMatchesFig33b(t *testing.T) {
	cfg := DefaultConfig()
	// Fig 33b: ~136 sps at 2 ft, down to ~5 sps at 40 ft.
	near := UpdateRate(cfg, channel.FeetToMeters(2))
	if near < 120 || near > 137 {
		t.Fatalf("update rate at 2 ft = %v, want ~136", near)
	}
	far := UpdateRate(cfg, channel.FeetToMeters(40))
	if far < 1 || far > 40 {
		t.Fatalf("update rate at 40 ft = %v, want a few sps", far)
	}
	if far >= near {
		t.Fatal("update rate did not decay with distance")
	}
}

func TestUpdateRateMonotone(t *testing.T) {
	cfg := DefaultConfig()
	prev := math.Inf(1)
	for _, ft := range []float64{2, 8, 16, 24, 32, 40} {
		r := UpdateRate(cfg, channel.FeetToMeters(ft))
		if r > prev+1e-9 {
			t.Fatalf("update rate rose at %v ft", ft)
		}
		prev = r
	}
}
