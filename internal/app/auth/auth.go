// Package auth implements the paper's §5 application: continuous
// authentication from an electromyography (EMG) wearable whose measurements
// ride the LScatter link. It provides a synthetic EMG source (real muscles
// being unavailable to a simulator), window feature extraction, a template
// classifier, and the update-rate accounting of Figure 33b.
package auth

import (
	"math"

	"lscatter/internal/bits"
	"lscatter/internal/channel"
	"lscatter/internal/core"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
)

// EMGSource generates surface-EMG-like waveforms: band-limited noise whose
// envelope follows muscle activation bursts. Per-user parameters (burst rate,
// amplitude, spectral shape) make users distinguishable — the property the
// authenticator keys on.
type EMGSource struct {
	// SampleRate of the EMG ADC in Hz (1 kHz typical).
	SampleRate float64
	// BurstRate is the activation bursts per second.
	BurstRate float64
	// BurstAmp is the activation amplitude relative to tonic level.
	BurstAmp float64
	// Tone is the baseline muscle tone amplitude.
	Tone float64
	// Shape is the per-user spectral shaping coefficient (one-pole).
	Shape float64
	r     *rng.Source
	// filter state for spectral shaping
	lp float64
}

// NewEMGSource builds a user-specific EMG source. Distinct userIDs give
// distinct burst/tone signatures.
func NewEMGSource(userID uint64) *EMGSource {
	r := rng.New(0xE36 ^ userID*0x9e3779b97f4a7c15)
	return &EMGSource{
		SampleRate: 1000,
		BurstRate:  1.2 + 1.8*r.Float64(),
		BurstAmp:   0.6 + 0.8*r.Float64(),
		Tone:       0.08 + 0.12*r.Float64(),
		Shape:      0.15 + 0.55*r.Float64(),
		r:          r,
	}
}

// Window produces n EMG samples.
func (e *EMGSource) Window(n int) []float64 {
	out := make([]float64, n)
	burstLen := int(0.18 * e.SampleRate)
	nextBurst := int(e.r.ExpFloat64() * e.SampleRate / e.BurstRate)
	inBurst := 0
	for i := range out {
		amp := e.Tone
		if inBurst > 0 {
			// Raised-cosine burst envelope.
			frac := 1 - float64(inBurst)/float64(burstLen)
			amp += e.BurstAmp * 0.5 * (1 - math.Cos(2*math.Pi*frac))
			inBurst--
		} else {
			nextBurst--
			if nextBurst <= 0 {
				inBurst = burstLen
				nextBurst = int(e.r.ExpFloat64() * e.SampleRate / e.BurstRate)
			}
		}
		// Band-limited noise carrier (one-pole shaping of white noise).
		w := e.r.NormFloat64()
		e.lp += e.Shape * (w - e.lp)
		out[i] = amp * e.lp
	}
	return out
}

// Feature is the per-window EMG descriptor used for authentication.
type Feature struct {
	// RMS amplitude of the window.
	RMS float64
	// MAV is the mean absolute value.
	MAV float64
	// ZeroCross is the zero-crossing rate (per sample).
	ZeroCross float64
}

// Extract computes features of a window.
func Extract(window []float64) Feature {
	var sq, av float64
	zc := 0
	for i, v := range window {
		sq += v * v
		av += math.Abs(v)
		if i > 0 && (v >= 0) != (window[i-1] >= 0) {
			zc++
		}
	}
	n := float64(len(window))
	return Feature{
		RMS:       math.Sqrt(sq / n),
		MAV:       av / n,
		ZeroCross: float64(zc) / n,
	}
}

// distance is a normalized feature-space distance.
func distance(a, b Feature) float64 {
	// The zero-crossing rate is the most stable per-user signature (it
	// tracks the spectral shape, not the activity level), so it dominates.
	d := 0.15 * sqDiff(a.RMS, b.RMS)
	d += 0.15 * sqDiff(a.MAV, b.MAV)
	d += 0.7 * sqDiff(a.ZeroCross, b.ZeroCross)
	return math.Sqrt(d)
}

func sqDiff(x, y float64) float64 {
	m := (x + y) / 2
	if m == 0 {
		return 0
	}
	d := (x - y) / m
	return d * d
}

// Classifier authenticates EMG windows against an enrolled template.
type Classifier struct {
	template  Feature
	tolerance float64
}

// Train enrolls a user from nWindows windows of windowLen samples.
func Train(src *EMGSource, nWindows, windowLen int) *Classifier {
	var acc Feature
	for i := 0; i < nWindows; i++ {
		f := Extract(src.Window(windowLen))
		acc.RMS += f.RMS
		acc.MAV += f.MAV
		acc.ZeroCross += f.ZeroCross
	}
	n := float64(nWindows)
	return &Classifier{
		template:  Feature{RMS: acc.RMS / n, MAV: acc.MAV / n, ZeroCross: acc.ZeroCross / n},
		tolerance: 0.2,
	}
}

// Authenticate returns true when the window's features match the enrolled
// template.
func (c *Classifier) Authenticate(f Feature) bool {
	return distance(f, c.template) < c.tolerance
}

// QuantizeWindow packs an EMG window into bits for transmission: 8 bits per
// sample, clamped to ±4 sigma of the tone scale.
func QuantizeWindow(window []float64, scale float64) []byte {
	out := make([]byte, 0, len(window)*8)
	for _, v := range window {
		q := int(v/scale*32 + 128)
		if q < 0 {
			q = 0
		}
		if q > 255 {
			q = 255
		}
		for b := 7; b >= 0; b-- {
			out = append(out, byte(q>>b&1))
		}
	}
	return out
}

// DequantizeWindow inverts QuantizeWindow.
func DequantizeWindow(b []byte, scale float64) []float64 {
	n := len(b) / 8
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		q := 0
		for j := 0; j < 8; j++ {
			q = q<<1 | int(b[i*8+j])
		}
		out[i] = (float64(q) - 128) / 32 * scale
	}
	return out
}

// Config describes the wearable deployment of Figure 33b.
type Config struct {
	// Link is the LScatter scenario; ENodeBToTagM is the swept
	// "tag-to-source" distance.
	Link core.LinkConfig
	// BodyLossDB is the extra absorption/detuning loss of an on-body tag
	// antenna.
	BodyLossDB float64
	// FrameBits is one EMG update: a quantized window plus CRC.
	FrameBits int
	// SourceRate is the wearable's maximum updates per second (sensor
	// limited).
	SourceRate float64
}

// DefaultConfig returns the Fig 33b setup: 20 MHz link, UE 3 ft from the
// tag, ~2 kbit frames, 136 updates/s source limit.
func DefaultConfig() Config {
	link := core.DefaultLinkConfig(ltephy.BW20)
	link.TagToUEM = channel.FeetToMeters(3)
	link.ENodeBToUEM = channel.FeetToMeters(6)
	link.PathLossExponent = 2.0
	return Config{
		Link:       link,
		BodyLossDB: 5,
		FrameBits:  1040, // 128 samples x 8 bits + CRC16
		SourceRate: 136,
	}
}

// UpdateRate returns the delivered authentications per second at the given
// tag-to-source (eNodeB) distance: the sensor's attempt rate times the
// frame delivery probability, capped by the link's goodput.
func UpdateRate(cfg Config, tagToSourceM float64) float64 {
	link := cfg.Link
	link.ENodeBToTagM = tagToSourceM
	link.TagLossDB += cfg.BodyLossDB
	rep := core.Run(link)
	if !rep.Synced || !rep.LTEOK || !rep.TagHearsENodeB {
		return 0
	}
	frameOK := math.Pow(1-rep.BER, float64(cfg.FrameBits))
	rate := cfg.SourceRate * frameOK
	if cap := rep.ThroughputBps / float64(cfg.FrameBits); rate > cap {
		rate = cap
	}
	return rate
}

// FrameRoundTrip is a convenience for the examples: quantize a window,
// attach CRC, and (if delivered error-free) recover it.
func FrameRoundTrip(window []float64, scale float64) ([]float64, bool) {
	framed := bits.AttachCRC16(QuantizeWindow(window, scale))
	payload, ok := bits.CheckCRC16(framed)
	if !ok {
		return nil, false
	}
	return DequantizeWindow(payload, scale), true
}
