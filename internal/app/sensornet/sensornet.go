// Package sensornet implements the smart-home telemetry demo: multiple
// LScatter tags (thermostat, lights, motion, air quality...) share the one
// continuous LTE excitation by TDMA over 5 ms half-frame bursts, each tag
// taking the burst after "its" PSS in round-robin order. Because the
// excitation is always on, slots never starve — the property WiFi
// backscatter cannot offer (Figure 1 vs Figure 2).
package sensornet

import (
	"fmt"
	"math"

	"lscatter/internal/core"
	"lscatter/internal/rng"
)

// Sensor is one telemetry source attached to a tag.
type Sensor struct {
	// Name identifies the device.
	Name string
	// RateHz is the sample production rate.
	RateHz float64
	// BitsPerSample is the payload size per sample (header+CRC included).
	BitsPerSample int

	queued     float64 // bits waiting
	delivered  int     // samples delivered
	dropped    int     // samples dropped (queue overflow)
	latencySum float64
	queueCap   float64
	credit     float64 // fractional sample production accumulator
}

// burstPeriod is the TDMA slot period: one 5 ms half-frame per burst.
const burstPeriod = 5e-3

// Report summarizes a simulation.
type Report struct {
	// PerSensor maps sensor name to delivered-sample rate (per second).
	PerSensor map[string]float64
	// MeanLatency is the average sample queueing delay in seconds.
	MeanLatency float64
	// DeliveredBps is the aggregate delivered payload rate.
	DeliveredBps float64
	// Utilization is the fraction of link capacity consumed.
	Utilization float64
	// DropRate is the fraction of produced samples dropped at full queues.
	DropRate float64
}

// Network couples a set of sensors to one LScatter link scenario.
type Network struct {
	// Link is the shared scenario (the tags are assumed co-located at the
	// configured tag position; per-tag variation comes from fading seeds).
	Link core.LinkConfig
	// Sensors share the TDMA schedule round-robin.
	Sensors []*Sensor
	// Reliable enables link-layer retransmission: a frame that fails its
	// delivery lottery stays at the head of its sensor's queue and is
	// retried in the sensor's next slot, trading latency for completeness.
	Reliable bool
}

// NewNetwork builds a network; sensors get a default 2 s queue bound.
func NewNetwork(link core.LinkConfig, sensors ...*Sensor) *Network {
	for _, s := range sensors {
		if s.BitsPerSample <= 0 {
			panic(fmt.Sprintf("sensornet: sensor %q has no payload size", s.Name))
		}
		s.queueCap = 2 * s.RateHz * float64(s.BitsPerSample)
	}
	return &Network{Link: link, Sensors: sensors}
}

// Simulate runs the TDMA schedule for the given duration and returns the
// delivery report. The per-burst capacity comes from the link's goodput;
// per-burst delivery succeeds with the frame success probability implied by
// the link BER.
func (n *Network) Simulate(duration float64, seed uint64) Report {
	rep := core.Run(n.Link)
	r := rng.New(seed)
	bitsPerBurst := rep.ThroughputBps * burstPeriod
	produced := 0
	var totalDelivered float64
	steps := int(duration / burstPeriod)
	for step := 0; step < steps; step++ {
		now := float64(step) * burstPeriod
		// Sample production (deterministic rate accumulator).
		for _, s := range n.Sensors {
			s.credit += s.RateHz * burstPeriod
			for s.credit >= 1 {
				s.credit--
				produced++
				if s.queued+float64(s.BitsPerSample) > s.queueCap {
					s.dropped++
					continue
				}
				s.queued += float64(s.BitsPerSample)
			}
		}
		if bitsPerBurst <= 0 {
			continue
		}
		// This burst belongs to one sensor (round-robin).
		s := n.Sensors[step%len(n.Sensors)]
		budget := bitsPerBurst
		for budget >= float64(s.BitsPerSample) && s.queued >= float64(s.BitsPerSample) {
			// Frame-level delivery odds from the link BER.
			ok := math.Pow(1-rep.BER, float64(s.BitsPerSample)) > r.Float64()
			budget -= float64(s.BitsPerSample)
			if ok {
				s.delivered++
				s.latencySum += burstPeriod * float64(len(n.Sensors)) / 2 // mean slot wait
				totalDelivered += float64(s.BitsPerSample)
				s.queued -= float64(s.BitsPerSample)
				continue
			}
			if !n.Reliable {
				s.queued -= float64(s.BitsPerSample) // lost for good
				continue
			}
			// Reliable mode: the frame stays queued and retries immediately
			// while the slot has budget, then waits for the next turn.
		}
		_ = now
	}
	out := Report{PerSensor: map[string]float64{}}
	delivered := 0
	dropped := 0
	for _, s := range n.Sensors {
		out.PerSensor[s.Name] = float64(s.delivered) / duration
		delivered += s.delivered
		dropped += s.dropped
		out.MeanLatency += s.latencySum
	}
	if delivered > 0 {
		out.MeanLatency /= float64(delivered)
	}
	out.DeliveredBps = totalDelivered / duration
	if rep.ThroughputBps > 0 {
		out.Utilization = out.DeliveredBps / rep.ThroughputBps
	}
	if produced > 0 {
		out.DropRate = float64(dropped) / float64(produced)
	}
	return out
}

// DefaultSensors returns a representative smart-home sensor suite.
func DefaultSensors() []*Sensor {
	return []*Sensor{
		{Name: "thermostat", RateHz: 1, BitsPerSample: 96},
		{Name: "motion", RateHz: 20, BitsPerSample: 64},
		{Name: "air-quality", RateHz: 2, BitsPerSample: 160},
		{Name: "door", RateHz: 0.5, BitsPerSample: 48},
		{Name: "power-meter", RateHz: 10, BitsPerSample: 128},
	}
}
