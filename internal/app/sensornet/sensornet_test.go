package sensornet

import (
	"testing"

	"lscatter/internal/channel"
	"lscatter/internal/core"
	"lscatter/internal/ltephy"
)

func homeLink() core.LinkConfig {
	return core.DefaultLinkConfig(ltephy.BW5)
}

func TestAllSensorsDeliveredAtHomeRange(t *testing.T) {
	n := NewNetwork(homeLink(), DefaultSensors()...)
	rep := n.Simulate(20, 1)
	for name, rate := range rep.PerSensor {
		want := map[string]float64{
			"thermostat": 1, "motion": 20, "air-quality": 2, "door": 0.5, "power-meter": 10,
		}[name]
		if rate < want*0.9 || rate > want*1.1 {
			t.Errorf("%s delivered %v/s, want ~%v", name, rate, want)
		}
	}
	if rep.DropRate > 0.01 {
		t.Fatalf("drop rate %v at close range", rep.DropRate)
	}
}

func TestLatencyBoundedByTDMA(t *testing.T) {
	n := NewNetwork(homeLink(), DefaultSensors()...)
	rep := n.Simulate(20, 2)
	// Mean slot wait ~ (numSensors/2)*5 ms.
	if rep.MeanLatency <= 0 || rep.MeanLatency > 0.1 {
		t.Fatalf("mean latency %v s", rep.MeanLatency)
	}
}

func TestUtilizationTiny(t *testing.T) {
	// A handful of IoT sensors barely scratches a multi-Mbps link — the
	// headroom the paper's throughput buys.
	n := NewNetwork(homeLink(), DefaultSensors()...)
	rep := n.Simulate(20, 3)
	if rep.Utilization > 0.01 {
		t.Fatalf("utilization %v, want ~0", rep.Utilization)
	}
	if rep.DeliveredBps <= 0 {
		t.Fatal("nothing delivered")
	}
}

func TestDeadLinkDeliversNothing(t *testing.T) {
	link := homeLink()
	link.TagToUEM = channel.FeetToMeters(5000)
	link.ENodeBToUEM = channel.FeetToMeters(5003)
	n := NewNetwork(link, DefaultSensors()...)
	rep := n.Simulate(5, 4)
	if rep.DeliveredBps != 0 {
		t.Fatalf("delivered %v bps over a dead link", rep.DeliveredBps)
	}
	if rep.DropRate == 0 {
		t.Fatal("queues never overflowed on a dead link")
	}
}

func TestHighRateSensorSaturatesItsSlots(t *testing.T) {
	// One sensor demanding more than its TDMA share must drop while others
	// still deliver.
	link := homeLink()
	hog := &Sensor{Name: "camera", RateHz: 100000, BitsPerSample: 512}
	slow := &Sensor{Name: "door", RateHz: 1, BitsPerSample: 64}
	n := NewNetwork(link, hog, slow)
	rep := n.Simulate(10, 5)
	if rep.PerSensor["door"] < 0.8 {
		t.Fatalf("door starved: %v/s", rep.PerSensor["door"])
	}
	if rep.DropRate == 0 {
		t.Fatal("overloaded sensor never dropped")
	}
	if rep.Utilization < 0.3 {
		t.Fatalf("utilization %v with a saturating sensor", rep.Utilization)
	}
}

func TestReliableModeRecoversLossyLink(t *testing.T) {
	// At a distance where frame loss is substantial, reliable mode delivers
	// nearly everything while unreliable mode visibly loses samples.
	link := core.DefaultLinkConfig(ltephy.BW5)
	link.TagToUEM = channel.FeetToMeters(150)
	link.ENodeBToUEM = channel.FeetToMeters(153)
	rep := core.Run(link)
	if rep.BER < 3e-3 || rep.BER > 9e-3 {
		t.Skipf("link BER %v outside the lossy test regime", rep.BER)
	}
	sensors := func() []*Sensor {
		return []*Sensor{{Name: "meter", RateHz: 10, BitsPerSample: 512}}
	}
	lossy := NewNetwork(link, sensors()...)
	lr := lossy.Simulate(30, 6)
	reliable := NewNetwork(link, sensors()...)
	reliable.Reliable = true
	rr := reliable.Simulate(30, 6)
	if lr.PerSensor["meter"] > 9.5 {
		t.Fatalf("unreliable link delivered %v/s — not lossy enough to test", lr.PerSensor["meter"])
	}
	if rr.PerSensor["meter"] < 9.5 {
		t.Fatalf("reliable mode delivered only %v/s of 10", rr.PerSensor["meter"])
	}
	if rr.PerSensor["meter"] <= lr.PerSensor["meter"] {
		t.Fatal("reliable mode did not improve delivery")
	}
}

func TestPanicsOnZeroPayload(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero payload accepted")
		}
	}()
	NewNetwork(homeLink(), &Sensor{Name: "bad", RateHz: 1})
}
