package dsp

// Fast cross-correlation engine. The direct O(N*M) form in CrossCorrelate is
// kept as the reference implementation; this file provides the production
// path: FFT overlap-save with cached plans and precomputed reference spectra,
// a one-stream/many-references batch mode (CorrelatorBank) so a cell search
// transforms the sample stream once per block and reuses the stream spectrum
// for every reference, and a benchmark-chosen crossover below which the
// direct form still wins.
//
// Overlap-save block math: for a reference of length M the engine picks a
// power-of-two block L >= overlapSaveFactor*M and precomputes
// S[k] = conj(FFT_L(ref padded to L)). Each block of the stream starting at
// lag p is transformed, multiplied by S, and inverse-transformed; the first
// V = L-M+1 output samples are exact linear correlation values
// c[p+i] = sum_n x[p+i+n]*conj(ref[n]) (the remaining M-1 samples wrap and
// are discarded), so blocks advance by V. Total cost is O(N log M) instead
// of O(N*M).

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// directCrossover is the reference length below which the direct form is
// used: per output lag the direct form costs M multiply-adds against the
// overlap-save amortized cost of ~(2 FFTs + multiply)/V ≈ 2*log2(L)*L/V,
// which is nearly flat in M. BenchmarkCorrelateDirect vs
// BenchmarkCorrelateFFT over a 40960-sample stream place the break-even
// between M=16 (direct 1.9x faster) and M=32 (FFT 1.5x faster).
const directCrossover = 32

// minFFTLags is the minimum number of output lags for the FFT path: with
// only a handful of outputs even a long reference cannot amortize the
// reference-spectrum setup and a whole L-point round trip.
const minFFTLags = 32

// overlapSaveFactor sizes the FFT block as the next power of two at or above
// this multiple of the reference length, trading per-block overhead (the M-1
// wrapped samples recomputed each block) against FFT size.
const overlapSaveFactor = 4

// useDirect reports whether the direct form is expected to beat overlap-save
// for a length-n stream against a length-m reference.
func useDirect(n, m int) bool {
	return m < directCrossover || n-m+1 < minFFTLags
}

// ceilPow2 returns the smallest power of two >= n (n >= 1).
func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// bufPools holds one sync.Pool of []complex128 scratch per power-of-two size
// class. Pooled scratch is what keeps the engine allocation-free on the hot
// path while staying race-free under the parallel experiment harness: every
// worker gets its own buffer for the duration of a call.
var bufPools sync.Map // int (pow2 size class) -> *sync.Pool

func bufPool(class int) *sync.Pool {
	if p, ok := bufPools.Load(class); ok {
		return p.(*sync.Pool)
	}
	p := &sync.Pool{New: func() any {
		b := make([]complex128, class)
		return &b
	}}
	actual, _ := bufPools.LoadOrStore(class, p)
	return actual.(*sync.Pool)
}

// AcquireBuf returns a scratch slice of length exactly n (contents
// undefined) drawn from a per-size-class pool. Pass the returned pointer to
// ReleaseBuf when done; the pointer indirection keeps Get/Put free of
// interface-boxing allocations. Buffers are safe for concurrent use in the
// usual sense: each Acquire hands out a private buffer.
func AcquireBuf(n int) *[]complex128 {
	p := bufPool(ceilPow2(n)).Get().(*[]complex128)
	*p = (*p)[:n]
	return p
}

// ReleaseBuf returns a buffer obtained from AcquireBuf to its pool. The
// caller must not use the slice afterwards.
func ReleaseBuf(p *[]complex128) {
	if p == nil || cap(*p) == 0 {
		return
	}
	// Refile by capacity: the buffer was created at a power-of-two length,
	// so the largest power of two <= cap recovers its size class.
	class := 1 << (bits.Len(uint(cap(*p))) - 1)
	*p = (*p)[:class]
	bufPool(class).Put(p)
}

// Correlator computes cross-correlation against one fixed reference using
// FFT overlap-save, falling back to the direct form below the crossover. The
// reference spectrum and plan are computed once at construction, so repeated
// calls against new streams (the per-subframe acquisition path) do no
// per-call setup. A Correlator is safe for concurrent use: all retained
// state is read-only after construction and scratch comes from the pool.
type Correlator struct {
	m     int
	ref   []complex128 // private copy, for the direct fallback
	refE  float64
	block int          // overlap-save FFT size L (power of two)
	step  int          // valid output lags per block, V = L-M+1
	plan  *Plan
	spec  []complex128 // conj(FFT_L(ref zero-padded to L))
}

// NewCorrelator builds a correlator for the given reference. The reference
// is copied; it panics on an empty reference.
func NewCorrelator(ref []complex128) *Correlator {
	if len(ref) == 0 {
		panic("dsp: NewCorrelator with empty reference")
	}
	m := len(ref)
	c := &Correlator{
		m:     m,
		ref:   append([]complex128(nil), ref...),
		refE:  Energy(ref),
		block: ceilPow2(overlapSaveFactor * m),
	}
	c.step = c.block - m + 1
	c.plan = PlanFor(c.block)
	c.spec = refSpectrum(c.plan, c.block, ref)
	return c
}

// refSpectrum returns conj(FFT_L(ref zero-padded to L)).
func refSpectrum(plan *Plan, block int, ref []complex128) []complex128 {
	spec := make([]complex128, block)
	copy(spec, ref)
	plan.Forward(spec, spec)
	return Conj(spec)
}

// RefLen returns the reference length M.
func (c *Correlator) RefLen() int { return c.m }

// RefEnergy returns the reference energy sum |ref[n]|^2.
func (c *Correlator) RefEnergy() float64 { return c.refE }

// Correlate computes out[lag] = sum_n x[lag+n]*conj(ref[n]) for lag in
// [0, len(x)-M], appending nothing: the result is written into dst (grown if
// needed) and returned. A nil dst allocates. It returns nil when x is
// shorter than the reference, matching CrossCorrelate.
func (c *Correlator) Correlate(dst, x []complex128) []complex128 {
	nOut := len(x) - c.m + 1
	if nOut <= 0 {
		return nil
	}
	if cap(dst) < nOut {
		dst = make([]complex128, nOut)
	}
	dst = dst[:nOut]
	if useDirect(len(x), c.m) {
		directCorrelate(dst, x, c.ref)
		return dst
	}
	c.correlateFFT(dst, x)
	return dst
}

// correlateFFT runs the overlap-save path unconditionally (the crossover
// benchmarks call it directly to measure both sides of the policy).
func (c *Correlator) correlateFFT(dst, x []complex128) {
	work := AcquireBuf(c.block)
	defer ReleaseBuf(work)
	buf := *work
	for pos := 0; pos < len(dst); pos += c.step {
		c.correlateBlock(buf, x, pos)
		cnt := len(dst) - pos
		if cnt > c.step {
			cnt = c.step
		}
		copy(dst[pos:pos+cnt], buf[:cnt])
	}
}

// correlateBlock runs one overlap-save round: load the block at stream
// position pos (zero-padded past the end), transform, multiply by the
// reference spectrum, and inverse-transform in place.
func (c *Correlator) correlateBlock(buf, x []complex128, pos int) {
	avail := len(x) - pos
	if avail > c.block {
		avail = c.block
	}
	copy(buf, x[pos:pos+avail])
	for i := avail; i < c.block; i++ {
		buf[i] = 0
	}
	c.plan.Forward(buf, buf)
	for i, s := range c.spec {
		buf[i] *= s
	}
	c.plan.Inverse(buf, buf)
}

// directCorrelate is the direct form written into dst (the engine-internal
// twin of CrossCorrelate).
func directCorrelate(dst, x, ref []complex128) {
	for lag := range dst {
		var acc complex128
		seg := x[lag : lag+len(ref)]
		for n, r := range ref {
			acc += seg[n] * cmplxConj(r)
		}
		dst[lag] = acc
	}
}

// NormalizedPeak returns the lag and normalized correlation magnitude (0..1)
// of the best match of the reference inside x, equivalent to
// NormalizedCorrPeak but using the engine.
func (c *Correlator) NormalizedPeak(x []complex128) (lag int, peak float64) {
	nOut := len(x) - c.m + 1
	if nOut <= 0 || c.refE == 0 {
		return 0, 0
	}
	corrBuf := AcquireBuf(nOut)
	defer ReleaseBuf(corrBuf)
	corr := c.Correlate(*corrBuf, x)
	return peakOverLags(x, corr, c.m, c.refE)
}

// peakOverLags scans a correlation vector with the running segment-energy
// recurrence of NormalizedCorrPeak (same operation order, so results match
// the reference implementation bit for bit).
func peakOverLags(x, corr []complex128, m int, refE float64) (int, float64) {
	segE := Energy(x[:m])
	best, bestVal := 0, -1.0
	for l := range corr {
		if l > 0 {
			out := x[l-1]
			in := x[l+m-1]
			segE += real(in)*real(in) + imag(in)*imag(in) - real(out)*real(out) - imag(out)*imag(out)
		}
		den := math.Sqrt(segE * refE)
		if den <= 0 {
			continue
		}
		v := cmplx.Abs(corr[l]) / den
		if v > bestVal {
			best, bestVal = l, v
		}
	}
	if bestVal < 0 {
		return 0, 0
	}
	return best, bestVal
}

// CorrPeak is one reference's best normalized match inside a stream.
type CorrPeak struct {
	// Lag is the stream offset of the peak.
	Lag int
	// Peak is the normalized correlation magnitude at the peak (0..1).
	Peak float64
}

// CorrelatorBank correlates one stream against several equal-length
// references at once. The batch win over independent Correlators is that
// each overlap-save block of the stream is transformed a single time and the
// stream spectrum is shared across all references — for the three PSS roots
// of a cell search that removes two of the three forward FFT passes — and
// the segment-energy normalization sweep is likewise shared. A bank is safe
// for concurrent use.
type CorrelatorBank struct {
	m     int
	refs  [][]complex128
	refE  []float64
	block int
	step  int
	plan  *Plan
	specs [][]complex128
}

// NewCorrelatorBank builds a bank over the given references, which must all
// share one length. References are copied. It panics on an empty bank, an
// empty reference, or mismatched lengths.
func NewCorrelatorBank(refs [][]complex128) *CorrelatorBank {
	if len(refs) == 0 || len(refs[0]) == 0 {
		panic("dsp: NewCorrelatorBank needs at least one non-empty reference")
	}
	m := len(refs[0])
	b := &CorrelatorBank{
		m:     m,
		refs:  make([][]complex128, len(refs)),
		refE:  make([]float64, len(refs)),
		block: ceilPow2(overlapSaveFactor * m),
		specs: make([][]complex128, len(refs)),
	}
	b.step = b.block - m + 1
	b.plan = PlanFor(b.block)
	for i, ref := range refs {
		if len(ref) != m {
			panic(fmt.Sprintf("dsp: NewCorrelatorBank reference %d has length %d, want %d", i, len(ref), m))
		}
		b.refs[i] = append([]complex128(nil), ref...)
		b.refE[i] = Energy(ref)
		b.specs[i] = refSpectrum(b.plan, b.block, ref)
	}
	return b
}

// RefLen returns the shared reference length M.
func (b *CorrelatorBank) RefLen() int { return b.m }

// Size returns the number of references in the bank.
func (b *CorrelatorBank) Size() int { return len(b.refs) }

// CorrelateAll correlates x against every reference. dst (or a fresh slice
// per reference when dst is nil or too short) receives one correlation
// vector per reference; it returns nil vectors when x is shorter than the
// references.
func (b *CorrelatorBank) CorrelateAll(dst [][]complex128, x []complex128) [][]complex128 {
	if cap(dst) < len(b.refs) {
		dst = make([][]complex128, len(b.refs))
	}
	dst = dst[:len(b.refs)]
	nOut := len(x) - b.m + 1
	if nOut <= 0 {
		for i := range dst {
			dst[i] = nil
		}
		return dst
	}
	for i := range dst {
		if cap(dst[i]) < nOut {
			dst[i] = make([]complex128, nOut)
		}
		dst[i] = dst[i][:nOut]
	}
	if useDirect(len(x), b.m) {
		for i, ref := range b.refs {
			directCorrelate(dst[i], x, ref)
		}
		return dst
	}
	fxBuf := AcquireBuf(b.block)
	workBuf := AcquireBuf(b.block)
	defer ReleaseBuf(fxBuf)
	defer ReleaseBuf(workBuf)
	fx, work := *fxBuf, *workBuf
	for pos := 0; pos < nOut; pos += b.step {
		// One forward transform of the stream block, shared by every
		// reference in the bank.
		avail := len(x) - pos
		if avail > b.block {
			avail = b.block
		}
		copy(fx, x[pos:pos+avail])
		for i := avail; i < b.block; i++ {
			fx[i] = 0
		}
		b.plan.Forward(fx, fx)
		cnt := nOut - pos
		if cnt > b.step {
			cnt = b.step
		}
		for r, spec := range b.specs {
			for i, s := range spec {
				work[i] = fx[i] * s
			}
			b.plan.Inverse(work, work)
			copy(dst[r][pos:pos+cnt], work[:cnt])
		}
	}
	return dst
}

// NormalizedPeaks returns the best normalized match of every reference
// inside x, sharing one segment-energy sweep across the bank. Peaks are
// computed with the exact normalization of NormalizedCorrPeak; a stream
// shorter than the references yields zero peaks.
func (b *CorrelatorBank) NormalizedPeaks(x []complex128) []CorrPeak {
	peaks := make([]CorrPeak, len(b.refs))
	nOut := len(x) - b.m + 1
	if nOut <= 0 {
		return peaks
	}
	bufs := make([]*[]complex128, len(b.refs))
	corrs := make([][]complex128, len(b.refs))
	for i := range bufs {
		bufs[i] = AcquireBuf(nOut)
		corrs[i] = *bufs[i]
		defer ReleaseBuf(bufs[i])
	}
	b.CorrelateAll(corrs, x)
	// One segment-energy sweep shared by every reference. The recurrence and
	// per-lag normalization are exactly those of NormalizedCorrPeak, so each
	// reference's (lag, peak) matches an independent call bit for bit.
	best := make([]float64, len(b.refs))
	for r := range best {
		best[r] = -1
	}
	segE := Energy(x[:b.m])
	for l := 0; l < nOut; l++ {
		if l > 0 {
			out := x[l-1]
			in := x[l+b.m-1]
			segE += real(in)*real(in) + imag(in)*imag(in) - real(out)*real(out) - imag(out)*imag(out)
		}
		for r := range b.refs {
			den := math.Sqrt(segE * b.refE[r])
			if den <= 0 {
				continue
			}
			v := cmplx.Abs(corrs[r][l]) / den
			if v > best[r] {
				best[r] = v
				peaks[r] = CorrPeak{Lag: l, Peak: v}
			}
		}
	}
	for r := range peaks {
		if best[r] < 0 {
			peaks[r] = CorrPeak{}
		}
	}
	return peaks
}

// Correlate computes the same result as CrossCorrelate via the fastest
// method for the sizes involved: direct form below the crossover, FFT
// overlap-save above it. One-shot callers pay the reference-spectrum setup
// per call; callers that reuse a reference should hold a Correlator.
func Correlate(x, ref []complex128) []complex128 {
	if len(ref) == 0 || len(x) < len(ref) {
		return nil
	}
	if useDirect(len(x), len(ref)) {
		return CrossCorrelate(x, ref)
	}
	return NewCorrelator(ref).Correlate(nil, x)
}
