// Package dsp implements the signal-processing primitives the simulator is
// built on: FFTs for OFDM modulation/demodulation and fast correlation, FIR
// and RC filters for the tag's analog front end, window functions and a
// short-time Fourier transform for the spectrogram figures.
//
// Everything operates on []complex128 baseband samples. Hot paths accept
// destination slices so callers can reuse buffers (gopacket-style zero-copy
// decoding applied to sample streams).
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// Plan holds the precomputed state to transform length-N complex vectors.
// Power-of-two sizes use an iterative radix-2 Cooley-Tukey kernel; any other
// size (LTE's 15 MHz bandwidth needs N=1536) falls back to Bluestein's
// chirp-z algorithm built on a padded power-of-two transform.
//
// A Plan is safe for concurrent use: all retained state is read-only after
// construction and scratch buffers are allocated per call... except the
// scratch-free fast paths, which write only to caller-provided slices.
type Plan struct {
	n       int
	pow2    bool
	logN    uint
	perm    []int        // bit-reversal permutation (pow2 only)
	twiddle []complex128 // stage twiddles, forward direction (pow2 only)
	// Bluestein state (non-pow2 only)
	m     int          // padded size, power of two >= 2n-1
	chirp []complex128 // exp(-i*pi*k^2/n)
	bfft  []complex128 // FFT of the zero-padded conjugate chirp
	sub   *Plan        // power-of-two subplan of size m
}

var (
	planMu    sync.RWMutex
	planCache = map[int]*Plan{}
)

// PlanFor returns a cached Plan for size n, building it on first use. The
// fast path takes only a read lock: with the correlation engine on the
// acquisition path every harness worker hits the cache per subframe, and an
// exclusive lock here serializes them for no reason once the handful of
// distinct sizes exist.
func PlanFor(n int) *Plan {
	planMu.RLock()
	p, ok := planCache[n]
	planMu.RUnlock()
	if ok {
		return p
	}
	planMu.Lock()
	defer planMu.Unlock()
	if p, ok := planCache[n]; ok {
		return p // raced with another builder of the same size
	}
	p = NewPlan(n)
	planCache[n] = p
	return p
}

// NewPlan builds a transform plan for length n. It panics if n < 1.
func NewPlan(n int) *Plan {
	if n < 1 {
		panic(fmt.Sprintf("dsp: invalid FFT size %d", n))
	}
	p := &Plan{n: n}
	if n&(n-1) == 0 {
		p.pow2 = true
		p.logN = uint(bits.TrailingZeros(uint(n)))
		p.perm = bitReversePerm(n)
		p.twiddle = make([]complex128, n/2)
		for k := 0; k < n/2; k++ {
			angle := -2 * math.Pi * float64(k) / float64(n)
			p.twiddle[k] = complex(math.Cos(angle), math.Sin(angle))
		}
		return p
	}
	// Bluestein
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	p.m = m
	p.sub = NewPlan(m)
	p.chirp = make([]complex128, n)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		// Use k^2 mod 2n to avoid float blow-up for large k.
		idx := (int64(k) * int64(k)) % int64(2*n)
		angle := -math.Pi * float64(idx) / float64(n)
		p.chirp[k] = complex(math.Cos(angle), math.Sin(angle))
	}
	b[0] = complex(1, 0)
	for k := 1; k < n; k++ {
		c := cmplxConj(p.chirp[k])
		b[k] = c
		b[m-k] = c
	}
	p.bfft = make([]complex128, m)
	p.sub.forwardPow2(p.bfft, b)
	return p
}

func cmplxConj(c complex128) complex128 { return complex(real(c), -imag(c)) }

func bitReversePerm(n int) []int {
	logN := uint(bits.TrailingZeros(uint(n)))
	perm := make([]int, n)
	for i := 0; i < n; i++ {
		perm[i] = int(bits.Reverse(uint(i)) >> (bits.UintSize - int(logN)))
	}
	return perm
}

// Size returns the transform length.
func (p *Plan) Size() int { return p.n }

// Forward computes the unnormalized DFT of src into dst:
// dst[k] = sum_n src[n] * exp(-2*pi*i*n*k/N). dst and src must both have
// length N; dst may alias src.
func (p *Plan) Forward(dst, src []complex128) {
	p.checkLen(dst, src)
	if p.pow2 {
		p.forwardPow2(dst, src)
		return
	}
	p.bluestein(dst, src, false)
}

// Inverse computes the normalized inverse DFT of src into dst:
// dst[n] = (1/N) * sum_k src[k] * exp(+2*pi*i*n*k/N). dst may alias src.
func (p *Plan) Inverse(dst, src []complex128) {
	p.checkLen(dst, src)
	if p.pow2 {
		// IFFT via conjugation: ifft(x) = conj(fft(conj(x)))/N. dst itself is
		// the workspace (forwardPow2 runs in place), so the path allocates
		// nothing — it runs twice per overlap-save block on the hot path.
		for i, v := range src {
			dst[i] = cmplxConj(v)
		}
		p.forwardPow2(dst, dst)
		scale := 1 / float64(p.n)
		for i, v := range dst {
			dst[i] = complex(real(v)*scale, -imag(v)*scale)
		}
		return
	}
	p.bluestein(dst, src, true)
}

func (p *Plan) checkLen(dst, src []complex128) {
	if len(dst) != p.n || len(src) != p.n {
		panic(fmt.Sprintf("dsp: FFT size mismatch: plan %d, dst %d, src %d", p.n, len(dst), len(src)))
	}
}

// forwardPow2 is the iterative radix-2 kernel. dst may alias src.
func (p *Plan) forwardPow2(dst, src []complex128) {
	n := p.n
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	// Bit-reversal permutation in place.
	for i, j := range p.perm {
		if i < j {
			dst[i], dst[j] = dst[j], dst[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				w := p.twiddle[tw]
				tw += step
				a := dst[k]
				b := dst[k+half] * w
				dst[k] = a + b
				dst[k+half] = a - b
			}
		}
	}
}

// bluestein computes the (possibly inverse) DFT of arbitrary size via the
// chirp-z transform.
func (p *Plan) bluestein(dst, src []complex128, inverse bool) {
	n, m := p.n, p.m
	aBuf := AcquireBuf(m)
	defer ReleaseBuf(aBuf)
	a := *aBuf
	for i := n; i < m; i++ {
		a[i] = 0
	}
	if inverse {
		for k := 0; k < n; k++ {
			a[k] = cmplxConj(src[k]) * p.chirp[k]
		}
	} else {
		for k := 0; k < n; k++ {
			a[k] = src[k] * p.chirp[k]
		}
	}
	p.sub.forwardPow2(a, a)
	for i := range a {
		a[i] *= p.bfft[i]
	}
	// inverse transform of a, unnormalized, using conjugation trick
	for i := range a {
		a[i] = cmplxConj(a[i])
	}
	p.sub.forwardPow2(a, a)
	scale := 1 / float64(m)
	if inverse {
		// conj again and normalize by n for the inverse DFT
		for k := 0; k < n; k++ {
			v := cmplxConj(a[k]) * complex(scale, 0) * p.chirp[k]
			v = cmplxConj(v)
			dst[k] = complex(real(v)/float64(n), imag(v)/float64(n))
		}
		return
	}
	for k := 0; k < n; k++ {
		v := cmplxConj(a[k]) * complex(scale, 0)
		dst[k] = v * p.chirp[k]
	}
}

// FFT returns the unnormalized DFT of x in a fresh slice.
func FFT(x []complex128) []complex128 {
	dst := make([]complex128, len(x))
	PlanFor(len(x)).Forward(dst, x)
	return dst
}

// IFFT returns the normalized inverse DFT of x in a fresh slice.
func IFFT(x []complex128) []complex128 {
	dst := make([]complex128, len(x))
	PlanFor(len(x)).Inverse(dst, x)
	return dst
}

// FFTShift reorders a spectrum so the zero-frequency bin moves to the center,
// returning a fresh slice. For odd lengths the extra bin stays on the left of
// center, matching the usual fftshift convention.
func FFTShift(x []complex128) []complex128 {
	return FFTShiftInto(make([]complex128, len(x)), x)
}

// FFTShiftInto is FFTShift writing into dst, which must have the length of x
// and must not alias it. It returns dst so per-frame loops (the STFT) can
// reuse one buffer.
func FFTShiftInto(dst, x []complex128) []complex128 {
	n := len(x)
	if len(dst) != n {
		panic("dsp: FFTShiftInto length mismatch")
	}
	half := (n + 1) / 2
	copy(dst, x[half:])
	copy(dst[n-half:], x[:half])
	return dst
}
