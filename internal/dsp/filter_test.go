package dsp

import (
	"math"
	"math/cmplx"
	"testing"

	"lscatter/internal/rng"
)

func tone(freq, sampleRate float64, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*freq*float64(i)/sampleRate))
	}
	return x
}

func TestLowPassFIRPassbandAndStopband(t *testing.T) {
	const fs = 1e6
	fir := LowPassFIR(100e3, fs, 101)
	// Passband tone at 20 kHz should pass nearly unattenuated.
	pass := fir.Process(tone(20e3, fs, 4000))
	pb := Power(pass[500:]) // skip transient
	if pb < 0.95 || pb > 1.05 {
		t.Errorf("passband power = %v, want ~1", pb)
	}
	fir.Reset()
	// Stopband tone at 400 kHz should be heavily attenuated.
	stop := fir.Process(tone(400e3, fs, 4000))
	sb := Power(stop[500:])
	if sb > 1e-4 {
		t.Errorf("stopband power = %v, want < 1e-4", sb)
	}
}

func TestLowPassFIRUnitDCGain(t *testing.T) {
	fir := LowPassFIR(0.1e6, 1e6, 63)
	var sum float64
	for _, tap := range fir.Taps() {
		sum += tap
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("tap sum = %v, want 1 (unit DC gain)", sum)
	}
}

func TestFIRImpulseResponseEqualsTaps(t *testing.T) {
	taps := []float64{0.25, 0.5, 0.25}
	fir := NewFIR(taps)
	impulse := make([]complex128, 5)
	impulse[0] = 1
	out := fir.Process(impulse)
	want := []float64{0.25, 0.5, 0.25, 0, 0}
	for i := range want {
		if math.Abs(real(out[i])-want[i]) > 1e-12 || imag(out[i]) != 0 {
			t.Fatalf("impulse response[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestFIRStreamingMatchesBlock(t *testing.T) {
	r := rng.New(8)
	x := randomVector(r, 300)
	a := LowPassFIR(0.2e6, 1e6, 31)
	b := LowPassFIR(0.2e6, 1e6, 31)
	whole := a.Process(x)
	var parts []complex128
	parts = append(parts, b.Process(x[:100])...)
	parts = append(parts, b.Process(x[100:250])...)
	parts = append(parts, b.Process(x[250:])...)
	if e := maxErr(whole, parts); e > 1e-12 {
		t.Fatalf("streaming output differs from block output by %v", e)
	}
}

func TestDecimatePreservesBasebandTone(t *testing.T) {
	const fs = 8e6
	const factor = 4
	x := tone(100e3, fs, 8000)
	y := Decimate(x, factor, fs)
	if len(y) != len(x)/factor {
		t.Fatalf("decimated length = %d, want %d", len(y), len(x)/factor)
	}
	// The tone should appear at the same absolute frequency in the lower-rate
	// stream. Measure via FFT peak.
	seg := y[256:1280]
	spec := FFT(append([]complex128(nil), seg...))
	peak, _ := MaxAbsIndex(spec)
	wantBin := int(100e3 / (fs / factor) * float64(len(seg)))
	if peak != wantBin {
		t.Fatalf("decimated tone at bin %d, want %d", peak, wantBin)
	}
}

func TestDecimateFactorOneCopies(t *testing.T) {
	x := tone(1e3, 1e6, 16)
	y := Decimate(x, 1, 1e6)
	if &y[0] == &x[0] {
		t.Fatal("Decimate(1) aliased its input")
	}
	if e := maxErr(x, y); e != 0 {
		t.Fatalf("Decimate(1) changed data by %v", e)
	}
}

func TestRCStepResponse(t *testing.T) {
	const fs = 1e6
	const tau = 100e-6
	rc := NewRC(tau, fs)
	// After one time constant of a unit step the output is 1-1/e.
	steps := int(tau * fs)
	var y float64
	for i := 0; i < steps; i++ {
		y = rc.ProcessSample(1)
	}
	want := 1 - math.Exp(-1)
	if math.Abs(y-want) > 0.01 {
		t.Fatalf("RC step response after tau = %v, want %v", y, want)
	}
}

func TestRCDCGainIsUnity(t *testing.T) {
	rc := NewRC(10e-6, 1e6)
	var y float64
	for i := 0; i < 200000; i++ {
		y = rc.ProcessSample(2.5)
	}
	if math.Abs(y-2.5) > 1e-6 {
		t.Fatalf("RC settled at %v, want 2.5", y)
	}
}

func TestPeakRCChargesInstantly(t *testing.T) {
	p := NewPeakRC(1e-3, 1e6)
	if y := p.ProcessSample(1.0); y != 1.0 {
		t.Fatalf("peak detector output %v after first peak, want 1", y)
	}
	// Decays when input drops.
	var y float64
	for i := 0; i < 1000; i++ {
		y = p.ProcessSample(0)
	}
	if y >= 1.0 || y <= 0 {
		t.Fatalf("peak detector did not discharge plausibly: %v", y)
	}
	want := math.Exp(-1) // after one tau
	if math.Abs(y-want) > 0.01 {
		t.Fatalf("discharge after tau = %v, want ~%v", y, want)
	}
}

func TestComparatorHysteresis(t *testing.T) {
	c := NewComparator(0.1, 0)
	if c.ProcessSample(1.05, 1.0) {
		t.Fatal("comparator tripped inside hysteresis band")
	}
	if !c.ProcessSample(1.2, 1.0) {
		t.Fatal("comparator failed to trip above band")
	}
	// Once high it stays high until input falls below vref*(1-hyst).
	if !c.ProcessSample(0.95, 1.0) {
		t.Fatal("comparator dropped inside hysteresis band")
	}
	if c.ProcessSample(0.85, 1.0) {
		t.Fatal("comparator failed to drop below band")
	}
}

func TestComparatorDelay(t *testing.T) {
	c := NewComparator(0, 3)
	outs := []bool{
		c.ProcessSample(2, 1),
		c.ProcessSample(2, 1),
		c.ProcessSample(2, 1),
		c.ProcessSample(2, 1),
	}
	want := []bool{false, false, false, true}
	for i := range want {
		if outs[i] != want[i] {
			t.Fatalf("comparator delay outputs = %v, want %v", outs, want)
		}
	}
}

func TestMixShiftsSpectrum(t *testing.T) {
	const fs = 1e6
	x := tone(0, fs, 1024) // DC tone
	Mix(x, 125e3, fs, 0)
	spec := FFT(x)
	peak, _ := MaxAbsIndex(spec)
	want := int(125e3 / fs * 1024)
	if peak != want {
		t.Fatalf("mixed tone at bin %d, want %d", peak, want)
	}
}

func TestMixLongStreamAmplitudeStable(t *testing.T) {
	const fs = 1e6
	x := make([]complex128, 500000)
	for i := range x {
		x[i] = 1
	}
	Mix(x, 333.3, fs, 0.5)
	for i, v := range x {
		if a := cmplx.Abs(v); math.Abs(a-1) > 1e-9 {
			t.Fatalf("amplitude drift at sample %d: %v", i, a)
		}
	}
}

func TestCrossCorrelatePeakAtTrueLag(t *testing.T) {
	r := rng.New(11)
	ref := randomVector(r, 63)
	x := make([]complex128, 400)
	for i := range x {
		x[i] = complex(0.05*r.NormFloat64(), 0.05*r.NormFloat64())
	}
	const trueLag = 137
	for i, v := range ref {
		x[trueLag+i] += v
	}
	lag, peak := NormalizedCorrPeak(x, ref)
	if lag != trueLag {
		t.Fatalf("correlation peak at %d, want %d", lag, trueLag)
	}
	if peak < 0.9 {
		t.Fatalf("normalized peak = %v, want > 0.9", peak)
	}
}

func TestCrossCorrelateDegenerateInputs(t *testing.T) {
	if got := CrossCorrelate(nil, nil); got != nil {
		t.Fatal("CrossCorrelate(nil,nil) != nil")
	}
	if got := CrossCorrelate(make([]complex128, 3), make([]complex128, 5)); got != nil {
		t.Fatal("CrossCorrelate with short x != nil")
	}
}

func TestScaleToSetsPower(t *testing.T) {
	r := rng.New(12)
	x := randomVector(r, 1000)
	ScaleTo(x, 0.25)
	if p := Power(x); math.Abs(p-0.25) > 1e-12 {
		t.Fatalf("ScaleTo power = %v, want 0.25", p)
	}
}

func TestDBRoundTrip(t *testing.T) {
	for _, db := range []float64{-30, -3, 0, 10, 40} {
		if got := DB(FromDB(db)); math.Abs(got-db) > 1e-9 {
			t.Fatalf("DB(FromDB(%v)) = %v", db, got)
		}
	}
}

func BenchmarkFIR63Taps(b *testing.B) {
	fir := LowPassFIR(0.1e6, 1e6, 63)
	x := randomVector(rng.New(1), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fir.ProcessSample(x[0])
	}
}
