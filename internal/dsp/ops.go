package dsp

import (
	"math"
	"math/cmplx"
)

// Energy returns the sum of |x[i]|^2.
func Energy(x []complex128) float64 {
	var e float64
	for _, v := range x {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	return e
}

// Power returns the mean of |x[i]|^2, or 0 for an empty slice.
func Power(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	return Energy(x) / float64(len(x))
}

// DB converts a linear power ratio to decibels.
func DB(ratio float64) float64 { return 10 * math.Log10(ratio) }

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }

// Scale multiplies every sample by the (real) gain g in place and returns x.
func Scale(x []complex128, g float64) []complex128 {
	c := complex(g, 0)
	for i := range x {
		x[i] *= c
	}
	return x
}

// ScaleTo rescales x in place so its mean power equals target and returns x.
// An all-zero input is returned unchanged.
func ScaleTo(x []complex128, target float64) []complex128 {
	p := Power(x)
	if p == 0 {
		return x
	}
	return Scale(x, math.Sqrt(target/p))
}

// Add accumulates src into dst element-wise. The slices must be equal length.
func Add(dst, src []complex128) {
	if len(dst) != len(src) {
		panic("dsp: Add length mismatch")
	}
	for i := range dst {
		dst[i] += src[i]
	}
}

// Mix multiplies x in place by exp(i*(2*pi*freq/sampleRate*n + phase0)),
// shifting its spectrum by +freq Hz, and returns x. The recurrence uses a
// complex phasor multiply per sample with periodic renormalization so long
// streams do not accumulate amplitude drift.
func Mix(x []complex128, freq, sampleRate, phase0 float64) []complex128 {
	step := cmplx.Exp(complex(0, 2*math.Pi*freq/sampleRate))
	ph := cmplx.Exp(complex(0, phase0))
	for i := range x {
		x[i] *= ph
		ph *= step
		if i&0x3ff == 0x3ff {
			// renormalize to unit magnitude
			ph /= complex(cmplx.Abs(ph), 0)
		}
	}
	return x
}

// MaxAbsIndex returns the index and magnitude of the sample with the largest
// absolute value. It panics on an empty slice.
func MaxAbsIndex(x []complex128) (int, float64) {
	if len(x) == 0 {
		panic("dsp: MaxAbsIndex of empty slice")
	}
	best, bestMag := 0, 0.0
	for i, v := range x {
		m := real(v)*real(v) + imag(v)*imag(v)
		if m > bestMag {
			best, bestMag = i, m
		}
	}
	return best, math.Sqrt(bestMag)
}

// CrossCorrelate returns c[lag] = sum_n x[n+lag] * conj(ref[n]) for
// lag in [0, len(x)-len(ref)]. It is the direct O(N*M) form, kept as the
// reference implementation the FFT engine in correlate.go is pinned against
// (and as the production path below the crossover, where it wins on
// constant factors). Hot callers with long references should use Correlate,
// a Correlator, or a CorrelatorBank instead.
func CrossCorrelate(x, ref []complex128) []complex128 {
	if len(ref) == 0 || len(x) < len(ref) {
		return nil
	}
	out := make([]complex128, len(x)-len(ref)+1)
	for lag := range out {
		var acc complex128
		seg := x[lag : lag+len(ref)]
		for n, r := range ref {
			acc += seg[n] * cmplxConj(r)
		}
		out[lag] = acc
	}
	return out
}

// NormalizedCorrPeak returns the lag and the normalized correlation magnitude
// (0..1) of the best match of ref inside x. The normalization divides by the
// local segment energy so amplitude does not bias detection. Correlation runs
// through the adaptive engine (FFT overlap-save above the crossover); callers
// that reuse one reference across streams should hold a Correlator and call
// its NormalizedPeak to skip the per-call reference-spectrum setup.
func NormalizedCorrPeak(x, ref []complex128) (lag int, peak float64) {
	refE := Energy(ref)
	if refE == 0 || len(ref) == 0 || len(x) < len(ref) {
		return 0, 0
	}
	nOut := len(x) - len(ref) + 1
	corrBuf := AcquireBuf(nOut)
	defer ReleaseBuf(corrBuf)
	corr := *corrBuf
	if useDirect(len(x), len(ref)) {
		directCorrelate(corr, x, ref)
	} else {
		NewCorrelator(ref).Correlate(corr, x)
	}
	return peakOverLags(x, corr, len(ref), refE)
}

// Conj conjugates x in place and returns it.
func Conj(x []complex128) []complex128 {
	for i, v := range x {
		x[i] = complex(real(v), -imag(v))
	}
	return x
}

// Magnitudes returns |x[i]| for every sample in a fresh slice.
func Magnitudes(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = cmplx.Abs(v)
	}
	return out
}
