package dsp

import "math"

// Window function names for STFT and filter design.
type Window int

const (
	// Rectangular is the boxcar window.
	Rectangular Window = iota
	// Hann is the raised-cosine window.
	Hann
	// Hamming is the Hamming window.
	Hamming
	// Blackman is the three-term Blackman window.
	Blackman
)

// Coefficients returns the n window coefficients.
func (w Window) Coefficients(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		x := 2 * math.Pi * float64(i) / float64(n-1)
		switch w {
		case Hann:
			out[i] = 0.5 * (1 - math.Cos(x))
		case Hamming:
			out[i] = 0.54 - 0.46*math.Cos(x)
		case Blackman:
			out[i] = 0.42 - 0.5*math.Cos(x) + 0.08*math.Cos(2*x)
		default:
			out[i] = 1
		}
	}
	return out
}

// Spectrogram is a time-frequency magnitude map produced by STFT. Rows index
// time frames, columns index frequency bins after FFT shift (DC centered).
type Spectrogram struct {
	// PowerDB[t][f] is the power of frame t, shifted bin f, in dB relative
	// to 1.0 (full-scale sample power).
	PowerDB [][]float64
	// FrameDur is the time step between rows in seconds.
	FrameDur float64
	// BinHz is the frequency step between columns in Hz.
	BinHz float64
	// SampleRate is the input sample rate in Hz.
	SampleRate float64
}

// STFT computes a short-time Fourier transform of x with the given FFT size,
// hop, and window. Frames that would run past the end of x are dropped.
func STFT(x []complex128, fftSize, hop int, win Window, sampleRate float64) *Spectrogram {
	if fftSize < 2 || hop < 1 {
		panic("dsp: STFT needs fftSize >= 2 and hop >= 1")
	}
	coeffs := win.Coefficients(fftSize)
	plan := PlanFor(fftSize)
	frame := make([]complex128, fftSize)
	spec := make([]complex128, fftSize)
	shifted := make([]complex128, fftSize)
	var rows [][]float64
	for start := 0; start+fftSize <= len(x); start += hop {
		for i := 0; i < fftSize; i++ {
			frame[i] = x[start+i] * complex(coeffs[i], 0)
		}
		plan.Forward(spec, frame)
		FFTShiftInto(shifted, spec)
		row := make([]float64, fftSize)
		for i, v := range shifted {
			p := (real(v)*real(v) + imag(v)*imag(v)) / float64(fftSize*fftSize)
			if p < 1e-20 {
				p = 1e-20
			}
			row[i] = 10 * math.Log10(p)
		}
		rows = append(rows, row)
	}
	return &Spectrogram{
		PowerDB:    rows,
		FrameDur:   float64(hop) / sampleRate,
		BinHz:      sampleRate / float64(fftSize),
		SampleRate: sampleRate,
	}
}

// OccupiedFraction returns, for each time frame, the fraction of bins whose
// power exceeds thresholdDB. The experiment harness uses it to turn
// spectrograms into the traffic-occupancy series of Figure 4.
func (s *Spectrogram) OccupiedFraction(thresholdDB float64) []float64 {
	out := make([]float64, len(s.PowerDB))
	for t, row := range s.PowerDB {
		n := 0
		for _, p := range row {
			if p > thresholdDB {
				n++
			}
		}
		out[t] = float64(n) / float64(len(row))
	}
	return out
}
