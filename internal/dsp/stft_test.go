package dsp

import (
	"math"
	"testing"
)

func TestWindowCoefficients(t *testing.T) {
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman} {
		c := w.Coefficients(64)
		if len(c) != 64 {
			t.Fatalf("window %d: %d coefficients", w, len(c))
		}
		for i, v := range c {
			if v < -1e-12 || v > 1+1e-12 {
				t.Fatalf("window %d coefficient %d out of [0,1]: %v", w, i, v)
			}
		}
	}
	// Hann endpoints are zero; Hamming endpoints are 0.08.
	h := Hann.Coefficients(33)
	if math.Abs(h[0]) > 1e-12 || math.Abs(h[32]) > 1e-12 {
		t.Fatal("Hann endpoints not zero")
	}
	hm := Hamming.Coefficients(33)
	if math.Abs(hm[0]-0.08) > 1e-12 {
		t.Fatalf("Hamming endpoint = %v, want 0.08", hm[0])
	}
	// Symmetry.
	for i := 0; i < 16; i++ {
		if math.Abs(h[i]-h[32-i]) > 1e-12 {
			t.Fatal("Hann window not symmetric")
		}
	}
}

func TestSTFTFrameCountAndShape(t *testing.T) {
	x := make([]complex128, 1000)
	s := STFT(x, 128, 64, Hann, 1e6)
	wantFrames := (1000-128)/64 + 1
	if len(s.PowerDB) != wantFrames {
		t.Fatalf("frames = %d, want %d", len(s.PowerDB), wantFrames)
	}
	for _, row := range s.PowerDB {
		if len(row) != 128 {
			t.Fatalf("row width %d, want 128", len(row))
		}
	}
	if s.BinHz != 1e6/128 {
		t.Fatalf("BinHz = %v", s.BinHz)
	}
	if s.FrameDur != 64/1e6 {
		t.Fatalf("FrameDur = %v", s.FrameDur)
	}
}

func TestSTFTLocalizesTone(t *testing.T) {
	const fs = 1e6
	const freq = 250e3
	x := tone(freq, fs, 4096)
	s := STFT(x, 256, 256, Rectangular, fs)
	// Peak bin after fftshift: center + freq/binHz
	for ti, row := range s.PowerDB {
		best, bestVal := 0, math.Inf(-1)
		for i, p := range row {
			if p > bestVal {
				best, bestVal = i, p
			}
		}
		want := 128 + int(freq/s.BinHz)
		if best != want {
			t.Fatalf("frame %d: peak at bin %d, want %d", ti, best, want)
		}
	}
}

func TestSTFTNegativeFrequencyPlacement(t *testing.T) {
	const fs = 1e6
	x := tone(-125e3, fs, 2048)
	s := STFT(x, 256, 256, Rectangular, fs)
	row := s.PowerDB[0]
	best, bestVal := 0, math.Inf(-1)
	for i, p := range row {
		if p > bestVal {
			best, bestVal = i, p
		}
	}
	want := 128 - int(125e3/s.BinHz)
	if best != want {
		t.Fatalf("negative tone at bin %d, want %d", best, want)
	}
}

func TestOccupiedFraction(t *testing.T) {
	const fs = 1e6
	// Half the time a strong tone, half silence.
	x := append(tone(100e3, fs, 1024), make([]complex128, 1024)...)
	s := STFT(x, 128, 128, Rectangular, fs)
	occ := s.OccupiedFraction(-60)
	half := len(occ) / 2
	for i := 0; i < half; i++ {
		if occ[i] == 0 {
			t.Fatalf("active frame %d reported empty", i)
		}
	}
	for i := half; i < len(occ); i++ {
		if occ[i] != 0 {
			t.Fatalf("silent frame %d reported occupancy %v", i, occ[i])
		}
	}
}

func TestSTFTPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("STFT with hop 0 did not panic")
		}
	}()
	STFT(make([]complex128, 100), 64, 0, Hann, 1)
}
