package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// randIQ returns n deterministic complex samples in the unit square.
func randIQ(rng *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return out
}

// maxAbs returns the largest magnitude in x (0 for empty).
func maxAbs(x []complex128) float64 {
	var m float64
	for _, v := range x {
		if a := cmplx.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// assertCorrEquiv checks got against the direct reference: same length,
// per-lag error within relTol of the vector's peak magnitude, and an
// identical argmax (or a genuine tie within tolerance).
func assertCorrEquiv(t *testing.T, got, want []complex128, relTol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length mismatch: got %d, want %d", len(got), len(want))
	}
	if len(want) == 0 {
		return
	}
	scale := maxAbs(want)
	if scale == 0 {
		scale = 1
	}
	for l := range want {
		if err := cmplx.Abs(got[l] - want[l]); err > relTol*scale {
			t.Fatalf("lag %d: |got-want| = %g exceeds %g (relative %g of peak %g)", l, err, relTol*scale, relTol, scale)
		}
	}
	gi, gm := MaxAbsIndex(got)
	wi, wm := MaxAbsIndex(want)
	if gi != wi && math.Abs(gm-wm) > 2*relTol*scale {
		t.Fatalf("argmax mismatch: got lag %d (%g), want lag %d (%g)", gi, gm, wi, wm)
	}
}

// The table spans both sides of the crossover, single-block and multi-block
// overlap-save, partial tail blocks, and the degenerate single-lag case.
var corrSizes = []struct {
	name string
	n, m int
}{
	{"direct_tiny", 64, 8},
	{"direct_crossover_minus", 4096, directCrossover - 1},
	{"fft_crossover", 4096, directCrossover},
	{"fft_single_block", 1024, 256},
	{"fft_multi_block", 10000, 256},
	{"fft_partial_tail", 2049, 512},
	{"fft_long_ref", 30000, 2048},
	{"single_lag", 512, 512},
	{"few_lags_fallback", 530, 512},
}

func TestCorrelatorMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range corrSizes {
		t.Run(tc.name, func(t *testing.T) {
			x := randIQ(rng, tc.n)
			ref := randIQ(rng, tc.m)
			want := CrossCorrelate(x, ref)
			c := NewCorrelator(ref)
			got := c.Correlate(nil, x)
			assertCorrEquiv(t, got, want, 1e-9)
			// Reusing a destination must give the same answer.
			got2 := c.Correlate(got, x)
			assertCorrEquiv(t, got2, want, 1e-9)
			// The adaptive front door agrees too.
			assertCorrEquiv(t, Correlate(x, ref), want, 1e-9)
		})
	}
}

func TestCorrelatorDegenerate(t *testing.T) {
	x := randIQ(rand.New(rand.NewSource(2)), 32)
	if got := Correlate(x, nil); got != nil {
		t.Fatalf("Correlate with empty ref: got %v, want nil", got)
	}
	if got := Correlate(x[:4], x); got != nil {
		t.Fatalf("Correlate with short stream: got %v, want nil", got)
	}
	c := NewCorrelator(x)
	if got := c.Correlate(nil, x[:4]); got != nil {
		t.Fatalf("Correlator with short stream: got %v, want nil", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewCorrelator(empty) did not panic")
		}
	}()
	NewCorrelator(nil)
}

func TestCorrelatorNormalizedPeak(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range corrSizes {
		t.Run(tc.name, func(t *testing.T) {
			x := randIQ(rng, tc.n)
			ref := randIQ(rng, tc.m)
			// Plant the reference at a known offset so the peak is sharp.
			off := (tc.n - tc.m) / 2
			copy(x[off:], ref)
			wantLag, wantPeak := NormalizedCorrPeak(x, ref)
			if wantLag != off {
				t.Fatalf("planted reference not found by reference impl: lag %d, want %d", wantLag, off)
			}
			c := NewCorrelator(ref)
			gotLag, gotPeak := c.NormalizedPeak(x)
			if gotLag != wantLag {
				t.Fatalf("peak lag: got %d, want %d", gotLag, wantLag)
			}
			if math.Abs(gotPeak-wantPeak) > 1e-9 {
				t.Fatalf("peak value: got %.15g, want %.15g", gotPeak, wantPeak)
			}
		})
	}
}

func TestCorrelatorBankMatchesIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, m := range []int{32, 256, 2048} {
		n := 6*m + 37
		x := randIQ(rng, n)
		refs := [][]complex128{randIQ(rng, m), randIQ(rng, m), randIQ(rng, m)}
		copy(x[2*m:], refs[1]) // plant root 1 so peaks are meaningful
		b := NewCorrelatorBank(refs)
		if b.Size() != 3 || b.RefLen() != m {
			t.Fatalf("bank shape: size %d len %d", b.Size(), b.RefLen())
		}
		all := b.CorrelateAll(nil, x)
		peaks := b.NormalizedPeaks(x)
		for r, ref := range refs {
			want := CrossCorrelate(x, ref)
			assertCorrEquiv(t, all[r], want, 1e-9)
			wantLag, wantPeak := NormalizedCorrPeak(x, ref)
			if peaks[r].Lag != wantLag {
				t.Fatalf("m=%d root %d: bank lag %d, independent %d", m, r, peaks[r].Lag, wantLag)
			}
			if math.Abs(peaks[r].Peak-wantPeak) > 1e-9 {
				t.Fatalf("m=%d root %d: bank peak %.15g, independent %.15g", m, r, peaks[r].Peak, wantPeak)
			}
		}
		if peaks[1].Lag != 2*m {
			t.Fatalf("m=%d: planted root found at %d, want %d", m, peaks[1].Lag, 2*m)
		}
	}
}

func TestCorrelatorBankDegenerate(t *testing.T) {
	refs := [][]complex128{randIQ(rand.New(rand.NewSource(5)), 16)}
	b := NewCorrelatorBank(refs)
	short := refs[0][:4]
	for _, v := range b.CorrelateAll(nil, short) {
		if v != nil {
			t.Fatal("CorrelateAll on short stream must yield nil vectors")
		}
	}
	for _, p := range b.NormalizedPeaks(short) {
		if p.Lag != 0 || p.Peak != 0 {
			t.Fatalf("NormalizedPeaks on short stream: got %+v, want zero", p)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewCorrelatorBank with mismatched lengths did not panic")
		}
	}()
	NewCorrelatorBank([][]complex128{refs[0], refs[0][:8]})
}

func TestAcquireReleaseBuf(t *testing.T) {
	for _, n := range []int{1, 7, 128, 1000, 4096} {
		p := AcquireBuf(n)
		if len(*p) != n {
			t.Fatalf("AcquireBuf(%d): len %d", n, len(*p))
		}
		for i := range *p {
			(*p)[i] = complex(float64(i), 0)
		}
		ReleaseBuf(p)
	}
	ReleaseBuf(nil) // must be a no-op
}

func TestFFTShiftInto(t *testing.T) {
	for _, n := range []int{1, 2, 7, 8, 255} {
		x := randIQ(rand.New(rand.NewSource(int64(n))), n)
		want := FFTShift(x)
		dst := make([]complex128, n)
		got := FFTShiftInto(dst, x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d bin %d: got %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFIRProcessIntoInPlace(t *testing.T) {
	x := randIQ(rand.New(rand.NewSource(6)), 300)
	fresh := NewFIR([]float64{0.25, 0.5, 0.25}).Process(x)
	inPlace := append([]complex128(nil), x...)
	NewFIR([]float64{0.25, 0.5, 0.25}).ProcessInto(inPlace, inPlace)
	for i := range fresh {
		if fresh[i] != inPlace[i] {
			t.Fatalf("sample %d: in-place %v, fresh %v", i, inPlace[i], fresh[i])
		}
	}
}

// bytesToIQ decodes fuzz bytes into complex samples, two bytes per sample
// mapped into [-1, 1).
func bytesToIQ(data []byte) []complex128 {
	out := make([]complex128, len(data)/2)
	for i := range out {
		re := float64(data[2*i])/128 - 1
		im := float64(data[2*i+1])/128 - 1
		out[i] = complex(re, im)
	}
	return out
}

// FuzzCorrelatorEquivalence pins the FFT overlap-save path to the direct
// reference implementation on arbitrary IQ streams and reference lengths:
// per-lag agreement within 1e-9 of the peak magnitude, and agreement of both
// the correlation argmax and the normalized peak (lag and value) up to
// genuine floating-point ties.
func FuzzCorrelatorEquivalence(f *testing.F) {
	rng := rand.New(rand.NewSource(7))
	long := make([]byte, 2048)
	rng.Read(long)
	f.Add(long, 150)       // FFT path, multi-block
	f.Add(long[:600], 260) // single lag beyond crossover? n=300,m=260: few-lags fallback
	f.Add(long[:64], 5)    // direct path
	f.Add([]byte{1, 2, 3, 4}, 0)
	f.Fuzz(func(t *testing.T, data []byte, refLen int) {
		x := bytesToIQ(data)
		if len(x) == 0 {
			return
		}
		m := refLen
		if m < 0 {
			m = -m
		}
		m = 1 + m%len(x)
		ref := x[len(x)-m:]
		want := CrossCorrelate(x, ref)
		got := NewCorrelator(ref).Correlate(nil, x)
		assertCorrEquiv(t, got, want, 1e-9)

		wantLag, wantPeak := NormalizedCorrPeak(x, ref)
		gotLag, gotPeak := NewCorrelator(ref).NormalizedPeak(x)
		if math.Abs(gotPeak-wantPeak) > 1e-9 {
			t.Fatalf("normalized peak: got %.15g, want %.15g", gotPeak, wantPeak)
		}
		if gotLag != wantLag && math.Abs(gotPeak-wantPeak) > 1e-12 {
			t.Fatalf("normalized peak lag: got %d (%.15g), want %d (%.15g)", gotLag, gotPeak, wantLag, wantPeak)
		}
	})
}

// Crossover benchmarks: the direct form against the overlap-save engine
// across reference lengths at a fixed 40960-sample stream (one 1.4 MHz
// subframe's worth at 4x oversampling is 7680; 40960 exercises several
// blocks at every size). The crossover constant in correlate.go is chosen
// from these curves.

const benchStreamLen = 40960

func benchCorrelate(b *testing.B, m int, fft bool) {
	rng := rand.New(rand.NewSource(8))
	x := randIQ(rng, benchStreamLen)
	ref := randIQ(rng, m)
	dst := make([]complex128, benchStreamLen-m+1)
	b.ResetTimer()
	if fft {
		// Bypass the crossover policy so both sides of the break-even are
		// measured with the same destination handling.
		c := NewCorrelator(ref)
		for i := 0; i < b.N; i++ {
			c.correlateFFT(dst, x)
			corrSink = dst
		}
		return
	}
	for i := 0; i < b.N; i++ {
		directCorrelate(dst, x, ref)
		corrSink = dst
	}
}

var corrSink []complex128

func BenchmarkCorrelateDirect(b *testing.B) {
	for _, m := range []int{16, 64, 128, 256, 1024, 2048} {
		b.Run("M="+itoa(m), func(b *testing.B) { benchCorrelate(b, m, false) })
	}
}

func BenchmarkCorrelateFFT(b *testing.B) {
	for _, m := range []int{16, 64, 128, 256, 1024, 2048} {
		b.Run("M="+itoa(m), func(b *testing.B) { benchCorrelate(b, m, true) })
	}
}

// BenchmarkCorrelateBank measures the three-reference batch mode against
// three independent correlators at the cell-search reference length.
func BenchmarkCorrelateBank(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := randIQ(rng, benchStreamLen)
	refs := [][]complex128{randIQ(rng, 2048), randIQ(rng, 2048), randIQ(rng, 2048)}
	bank := NewCorrelatorBank(refs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		peaksSink = bank.NormalizedPeaks(x)
	}
}

var peaksSink []CorrPeak

// itoa avoids importing strconv just for benchmark names.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
