package dsp

import (
	"fmt"
	"math"
)

// FIR is a streaming finite-impulse-response filter over complex samples.
// The zero value is not usable; build one with NewFIR or LowPassFIR.
type FIR struct {
	taps  []float64
	state []complex128 // circular delay line
	pos   int
}

// NewFIR builds a streaming filter from the given real taps.
func NewFIR(taps []float64) *FIR {
	if len(taps) == 0 {
		panic("dsp: FIR with no taps")
	}
	return &FIR{taps: append([]float64(nil), taps...), state: make([]complex128, len(taps))}
}

// LowPassFIR designs a windowed-sinc (Hamming) low-pass filter with the given
// cutoff frequency in Hz at the given sample rate and tap count. The passband
// gain is normalized to 1. Odd tap counts give integer group delay
// (ntaps-1)/2 samples.
func LowPassFIR(cutoff, sampleRate float64, ntaps int) *FIR {
	if ntaps < 3 {
		panic("dsp: LowPassFIR needs at least 3 taps")
	}
	if cutoff <= 0 || cutoff >= sampleRate/2 {
		panic(fmt.Sprintf("dsp: LowPassFIR cutoff %v out of (0, %v)", cutoff, sampleRate/2))
	}
	taps := make([]float64, ntaps)
	fc := cutoff / sampleRate
	mid := float64(ntaps-1) / 2
	var sum float64
	for i := range taps {
		x := float64(i) - mid
		var s float64
		if x == 0 {
			s = 2 * fc
		} else {
			s = math.Sin(2*math.Pi*fc*x) / (math.Pi * x)
		}
		w := 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(ntaps-1))
		taps[i] = s * w
		sum += taps[i]
	}
	for i := range taps {
		taps[i] /= sum
	}
	return NewFIR(taps)
}

// GroupDelay returns the filter's group delay in samples ((ntaps-1)/2 for the
// linear-phase designs used here).
func (f *FIR) GroupDelay() int { return (len(f.taps) - 1) / 2 }

// Taps returns a copy of the filter taps.
func (f *FIR) Taps() []float64 { return append([]float64(nil), f.taps...) }

// Reset clears the delay line.
func (f *FIR) Reset() {
	for i := range f.state {
		f.state[i] = 0
	}
	f.pos = 0
}

// ProcessSample pushes one sample and returns one filtered output sample.
func (f *FIR) ProcessSample(x complex128) complex128 {
	f.state[f.pos] = x
	var acc complex128
	idx := f.pos
	for _, t := range f.taps {
		acc += f.state[idx] * complex(t, 0)
		idx--
		if idx < 0 {
			idx = len(f.state) - 1
		}
	}
	f.pos++
	if f.pos == len(f.state) {
		f.pos = 0
	}
	return acc
}

// Process filters a block, writing len(x) outputs into a fresh slice. The
// delay line persists across calls, so consecutive blocks form one stream.
func (f *FIR) Process(x []complex128) []complex128 {
	return f.ProcessInto(make([]complex128, len(x)), x)
}

// ProcessInto filters a block into dst, which must be at least len(x) long,
// and returns dst[:len(x)]. dst may alias x for in-place filtering (each
// input sample is read before its slot is written). The delay line persists
// across calls, so consecutive blocks form one stream.
func (f *FIR) ProcessInto(dst, x []complex128) []complex128 {
	if len(dst) < len(x) {
		panic("dsp: FIR.ProcessInto dst too short")
	}
	dst = dst[:len(x)]
	for i, v := range x {
		dst[i] = f.ProcessSample(v)
	}
	return dst
}

// Decimate low-pass-filters x (anti-aliasing at sampleRate/(2*factor)*0.8)
// and keeps every factor-th sample, compensating the filter group delay so
// output sample k corresponds to input sample k*factor.
func Decimate(x []complex128, factor int, sampleRate float64) []complex128 {
	if factor < 1 {
		panic("dsp: Decimate factor < 1")
	}
	if factor == 1 {
		return append([]complex128(nil), x...)
	}
	fir := LowPassFIR(0.8*sampleRate/(2*float64(factor)), sampleRate, 63)
	delay := fir.GroupDelay()
	out := make([]complex128, 0, len(x)/factor+1)
	// Feed the block plus `delay` zeros so the delayed response is flushed.
	for i := 0; i < len(x)+delay; i++ {
		var v complex128
		if i < len(x) {
			v = x[i]
		}
		y := fir.ProcessSample(v)
		j := i - delay
		if j >= 0 && j%factor == 0 {
			out = append(out, y)
		}
	}
	return out
}

// RC models a single-pole RC low-pass filter (the tag's envelope smoothing
// and averaging stages) over real-valued samples, discretized with the exact
// zero-order-hold step alpha = 1 - exp(-dt/tau).
type RC struct {
	alpha float64
	y     float64
}

// NewRC builds an RC stage with time constant tau seconds sampled at
// sampleRate Hz.
func NewRC(tau, sampleRate float64) *RC {
	if tau <= 0 || sampleRate <= 0 {
		panic("dsp: RC requires positive tau and sample rate")
	}
	return &RC{alpha: 1 - math.Exp(-1/(tau*sampleRate))}
}

// ProcessSample advances the filter by one input sample and returns the
// capacitor voltage.
func (rc *RC) ProcessSample(x float64) float64 {
	rc.y += rc.alpha * (x - rc.y)
	return rc.y
}

// Output returns the current capacitor voltage without advancing.
func (rc *RC) Output() float64 { return rc.y }

// Reset discharges the capacitor.
func (rc *RC) Reset() { rc.y = 0 }

// PeakRC models the diode-RC envelope detector: it charges instantly on
// rising input (ideal diode) and discharges through R1*C2 otherwise. This is
// the first stage of the paper's synchronization circuit (Figure 7).
type PeakRC struct {
	alpha float64
	y     float64
}

// NewPeakRC builds a peak detector with discharge time constant tau seconds
// at the given sample rate.
func NewPeakRC(tau, sampleRate float64) *PeakRC {
	if tau <= 0 || sampleRate <= 0 {
		panic("dsp: PeakRC requires positive tau and sample rate")
	}
	return &PeakRC{alpha: 1 - math.Exp(-1/(tau*sampleRate))}
}

// ProcessSample advances the detector with the instantaneous input magnitude.
func (p *PeakRC) ProcessSample(mag float64) float64 {
	if mag > p.y {
		p.y = mag // diode conducts: fast charge
	} else {
		p.y -= p.alpha * p.y // discharge through R
	}
	return p.y
}

// Comparator models a voltage comparator with hysteresis and a propagation
// delay measured in samples (the paper uses a MAX931-class part with ~12 us
// propagation delay).
type Comparator struct {
	hysteresis float64
	delay      int
	pending    []bool
	state      bool
}

// NewComparator builds a comparator. hysteresis is the fraction of the
// reference that the positive input must exceed to trip (e.g. 0.05 = 5%).
// delaySamples postpones output transitions to model propagation delay.
func NewComparator(hysteresis float64, delaySamples int) *Comparator {
	if delaySamples < 0 {
		panic("dsp: negative comparator delay")
	}
	return &Comparator{hysteresis: hysteresis, delay: delaySamples, pending: make([]bool, delaySamples)}
}

// ProcessSample compares vin against vref and returns the (delayed) logical
// output.
func (c *Comparator) ProcessSample(vin, vref float64) bool {
	var raw bool
	if c.state {
		raw = vin > vref*(1-c.hysteresis)
	} else {
		raw = vin > vref*(1+c.hysteresis)
	}
	c.state = raw
	if c.delay == 0 {
		return raw
	}
	out := c.pending[0]
	copy(c.pending, c.pending[1:])
	c.pending[c.delay-1] = raw
	return out
}
