package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"lscatter/internal/rng"
)

// naiveDFT is the O(N^2) reference implementation used to validate the fast
// transforms.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for i := 0; i < n; i++ {
			angle := -2 * math.Pi * float64(k) * float64(i) / float64(n)
			acc += x[i] * cmplx.Exp(complex(0, angle))
		}
		out[k] = acc
	}
	return out
}

func randomVector(r *rng.Source, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{1, 2, 4, 8, 16, 64, 128, 256} {
		x := randomVector(r, n)
		fast := FFT(x)
		slow := naiveDFT(x)
		if e := maxErr(fast, slow); e > 1e-8*float64(n) {
			t.Errorf("size %d: FFT differs from naive DFT by %v", n, e)
		}
	}
}

func TestBluesteinMatchesNaiveDFT(t *testing.T) {
	r := rng.New(2)
	// 1536 is the LTE 15 MHz FFT size; the rest stress odd/prime sizes.
	for _, n := range []int{3, 5, 6, 7, 12, 15, 31, 60, 96, 100, 1536} {
		x := randomVector(r, n)
		fast := FFT(x)
		slow := naiveDFT(x)
		if e := maxErr(fast, slow); e > 1e-7*float64(n) {
			t.Errorf("size %d: Bluestein FFT differs from naive DFT by %v", n, e)
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	r := rng.New(3)
	for _, n := range []int{1, 2, 8, 64, 100, 1536, 2048} {
		x := randomVector(r, n)
		round := IFFT(FFT(x))
		if e := maxErr(round, x); e > 1e-8*float64(n) {
			t.Errorf("size %d: IFFT(FFT(x)) differs from x by %v", n, e)
		}
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		sizes := []int{4, 12, 33, 64, 120, 128}
		n := sizes[r.Intn(len(sizes))]
		x := randomVector(r, n)
		return maxErr(IFFT(FFT(x)), x) < 1e-7
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		sizes := []int{8, 60, 64, 100, 256}
		n := sizes[r.Intn(len(sizes))]
		x := randomVector(r, n)
		timeE := Energy(x)
		freqE := Energy(FFT(x)) / float64(n)
		return math.Abs(timeE-freqE) < 1e-6*timeE
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 64
		x := randomVector(r, n)
		y := randomVector(r, n)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = x[i] + 2*y[i]
		}
		fx, fy, fsum := FFT(x), FFT(y), FFT(sum)
		for i := range fsum {
			if cmplx.Abs(fsum[i]-(fx[i]+2*fy[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTImpulseIsFlat(t *testing.T) {
	for _, n := range []int{16, 100} {
		x := make([]complex128, n)
		x[0] = 1
		for k, v := range FFT(x) {
			if cmplx.Abs(v-1) > 1e-9 {
				t.Fatalf("size %d: FFT of impulse bin %d = %v, want 1", n, k, v)
			}
		}
	}
}

func TestFFTOfToneIsSingleBin(t *testing.T) {
	n := 128
	bin := 5
	x := make([]complex128, n)
	for i := range x {
		angle := 2 * math.Pi * float64(bin) * float64(i) / float64(n)
		x[i] = cmplx.Exp(complex(0, angle))
	}
	spec := FFT(x)
	for k, v := range spec {
		mag := cmplx.Abs(v)
		if k == bin {
			if math.Abs(mag-float64(n)) > 1e-8 {
				t.Fatalf("tone bin magnitude = %v, want %d", mag, n)
			}
		} else if mag > 1e-8 {
			t.Fatalf("leakage in bin %d: %v", k, mag)
		}
	}
}

func TestForwardInPlaceAliasing(t *testing.T) {
	r := rng.New(4)
	x := randomVector(r, 256)
	want := FFT(x)
	p := PlanFor(256)
	buf := append([]complex128(nil), x...)
	p.Forward(buf, buf)
	if e := maxErr(buf, want); e > 1e-10 {
		t.Fatalf("in-place forward differs by %v", e)
	}
}

func TestPlanSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	PlanFor(8).Forward(make([]complex128, 4), make([]complex128, 8))
}

func TestNewPlanRejectsZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPlan(0) did not panic")
		}
	}()
	NewPlan(0)
}

func TestFFTShiftEven(t *testing.T) {
	x := []complex128{0, 1, 2, 3}
	want := []complex128{2, 3, 0, 1}
	got := FFTShift(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FFTShift = %v, want %v", got, want)
		}
	}
}

func TestFFTShiftOdd(t *testing.T) {
	x := []complex128{0, 1, 2, 3, 4}
	got := FFTShift(x)
	// DC (index 0) must land at the center position.
	if got[2] != 0 {
		t.Fatalf("FFTShift odd: DC at wrong place: %v", got)
	}
}

func TestPlanForCachesPlans(t *testing.T) {
	if PlanFor(64) != PlanFor(64) {
		t.Fatal("PlanFor did not cache")
	}
}

func BenchmarkFFT2048(b *testing.B) {
	x := randomVector(rng.New(1), 2048)
	dst := make([]complex128, 2048)
	p := PlanFor(2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(dst, x)
	}
}

func BenchmarkFFT8192(b *testing.B) {
	x := randomVector(rng.New(1), 8192)
	dst := make([]complex128, 8192)
	p := PlanFor(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(dst, x)
	}
}

func BenchmarkBluestein1536(b *testing.B) {
	x := randomVector(rng.New(1), 1536)
	dst := make([]complex128, 1536)
	p := PlanFor(1536)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(dst, x)
	}
}
