package core

import (
	"math"
	"testing"

	"lscatter/internal/impair"
	"lscatter/internal/ltephy"
	"lscatter/internal/simlink"
)

// laneBERBudget is the documented dual-lane divergence bound: the Q1.15
// lane must reproduce the float lane's exact-mode BER within this absolute
// difference on the golden end-to-end configurations. The budget's
// derivation (quantization error vs decision margins) is in
// docs/PERFORMANCE.md; widening it requires a documented reason there.
const laneBERBudget = 0.02

// laneConfigs mirrors the golden end-to-end vectors (golden_test.go): the
// clean exact chain and the CFO+ADC impaired rung, both at 1.4 MHz with the
// pinned seed.
func laneConfigs() map[string]LinkConfig {
	clean := DefaultLinkConfig(ltephy.BW1_4)
	clean.Mode = Exact
	clean.Subframes = 4
	clean.Seed = 42

	impaired := clean
	impaired.Impair = &impair.Config{
		Seed: 42,
		CFO:  impair.CFOConfig{Enabled: true, OffsetHz: 900, DriftHzPerSec: 200},
		ADC:  impair.ADCConfig{Enabled: true, Bits: 10},
	}

	long := clean
	long.Subframes = 20

	return map[string]LinkConfig{"clean": clean, "impaired": impaired, "long": long}
}

// TestLaneDifferentialBER pins the fixed-point lane against the float
// conformance reference on the golden end-to-end configurations: the link
// must come up identically (sync, LTE decode, audibility), compare the same
// number of bits, and land within the documented BER budget.
func TestLaneDifferentialBER(t *testing.T) {
	if testing.Short() {
		t.Skip("exact chain runs")
	}
	for name, cfg := range laneConfigs() {
		ref := Run(cfg)

		fxpCfg := cfg
		fxpCfg.Lane = simlink.LaneFixedPoint
		got := Run(fxpCfg)

		if got.Synced != ref.Synced || got.LTEOK != ref.LTEOK || got.TagHearsENodeB != ref.TagHearsENodeB {
			t.Fatalf("%s: link state diverged: fxp{sync %v lte %v hears %v} float{%v %v %v}",
				name, got.Synced, got.LTEOK, got.TagHearsENodeB, ref.Synced, ref.LTEOK, ref.TagHearsENodeB)
		}
		if got.BitsCompared != ref.BitsCompared {
			t.Fatalf("%s: fxp lane compared %d bits, float %d — the lanes must demodulate the same symbols",
				name, got.BitsCompared, ref.BitsCompared)
		}
		if ref.BitsCompared == 0 {
			t.Fatalf("%s: no bits compared — config no longer exercises the chain", name)
		}
		if d := math.Abs(got.BER - ref.BER); d > laneBERBudget {
			t.Fatalf("%s: |BER(fxp) - BER(float)| = %v exceeds the %v budget (fxp %v, float %v over %d bits)",
				name, d, laneBERBudget, got.BER, ref.BER, ref.BitsCompared)
		}
	}
}

// TestLaneFloatIsDefault pins that the zero-value Lane is the float
// conformance reference: the golden vectors must never silently move to the
// fixed-point lane.
func TestLaneFloatIsDefault(t *testing.T) {
	var cfg LinkConfig
	if cfg.Lane != simlink.LaneFloat {
		t.Fatal("zero-value LinkConfig must select the float lane")
	}
}
