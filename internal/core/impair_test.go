package core

import (
	"testing"

	"lscatter/internal/impair"
	"lscatter/internal/ltephy"
)

// exactImpairCfg is the shared base scenario for the fault-injection tests.
func exactImpairCfg() LinkConfig {
	cfg := DefaultLinkConfig(ltephy.BW1_4)
	cfg.Mode = Exact
	cfg.Subframes = 3
	return cfg
}

func TestExactCleanPathUnchangedByImpairWiring(t *testing.T) {
	// The acceptance bar for the whole fault-injection layer: with Impair
	// nil OR set-but-all-disabled, the exact chain must produce the very
	// same report as before the layer existed (same RNG draws, same bits).
	base := exactImpairCfg()
	clean := Run(base)

	withNil := base
	withNil.Impair = nil
	if got := Run(withNil); got != clean {
		t.Fatalf("nil Impair changed the report:\n%+v\n%+v", got, clean)
	}

	disabled := base
	disabled.Impair = &impair.Config{Seed: 99} // all stages off
	if got := Run(disabled); got != clean {
		t.Fatalf("disabled Impair changed the report:\n%+v\n%+v", got, clean)
	}
}

func TestExactWithImpairmentsDeterministic(t *testing.T) {
	cfg := exactImpairCfg()
	cfg.Impair = &impair.Config{
		CFO:    impair.CFOConfig{Enabled: true, OffsetHz: 300, PhaseNoiseRMSRad: 1e-4},
		SFO:    impair.SFOConfig{Enabled: true, PPM: 2},
		Jitter: impair.JitterConfig{Enabled: true, RMSSamples: 1},
	}
	a, b := Run(cfg), Run(cfg)
	if a != b {
		t.Fatalf("impaired exact run not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestExactSurvivesMildImpairments(t *testing.T) {
	// Mild, realistic front-end faults: the tracking receiver must keep the
	// link alive (synced, LTE decoding, low BER) rather than hard-fail.
	cfg := exactImpairCfg()
	cfg.Impair = &impair.Config{
		CFO: impair.CFOConfig{Enabled: true, OffsetHz: 200, DriftHzPerSec: 100},
		ADC: impair.ADCConfig{Enabled: true, Bits: 10},
	}
	rep := Run(cfg)
	if !rep.LTEOK || !rep.Synced {
		t.Fatalf("link fell over under mild impairments: %+v", rep)
	}
	if rep.BER > 0.05 {
		t.Fatalf("BER %v under mild impairments", rep.BER)
	}
	if rep.Reacquisitions != 0 {
		t.Fatalf("%d re-acquisitions under mild impairments, want 0", rep.Reacquisitions)
	}
}

func TestExactImpairmentDegradesLink(t *testing.T) {
	// Severe interference must show up in the metrics — worse BER or lost
	// sync relative to the clean run — or the injection isn't reaching the
	// receiver at all.
	clean := Run(exactImpairCfg())
	cfg := exactImpairCfg()
	cfg.Impair = &impair.Config{
		Interference: impair.InterferenceConfig{
			Enabled:          true,
			BurstsPerSec:     400,
			BurstDurationSec: 1e-3,
			BurstSIRdB:       -10,
		},
	}
	hit := Run(cfg)
	// Degradation shows up as lost sync, failed LTE decodes (fewer bits
	// compared, since bursted subframes are dropped), or a worse BER on the
	// surviving bits.
	degraded := !hit.Synced || !hit.LTEOK ||
		hit.BitsCompared < clean.BitsCompared || hit.BER > clean.BER
	if !degraded {
		t.Fatalf("severe interference left the link untouched:\nclean %+v\nimpaired %+v",
			clean, hit)
	}
}
