// Package core is the LScatter system facade: it wires the eNodeB, tag,
// channel and UE into a single end-to-end link and reports throughput and
// BER for a scenario. Two modes are provided:
//
//   - Exact: bit-true waveform simulation of the full chain (used by the
//     integration tests and the examples at the narrower bandwidths).
//   - SemiAnalytic: the same link budget evaluated in closed form with
//     Monte-Carlo fading, calibrated against the exact chain. The
//     evaluation harness uses it for the wide parameter sweeps of the
//     paper's distance/bandwidth figures, where bit-true simulation of a
//     122.88 Msps waveform per point would be prohibitive.
//
// Throughput follows the paper's definition: correctly demodulated
// backscatter bits per second.
package core

import (
	"math"

	"lscatter/internal/channel"
	"lscatter/internal/enodeb"
	"lscatter/internal/impair"
	"lscatter/internal/ltephy"
	"lscatter/internal/modem"
	"lscatter/internal/rng"
	"lscatter/internal/simlink"
	"lscatter/internal/tag"
	"lscatter/internal/ue"
)

// Auto is the sentinel requesting the documented default for the LinkConfig
// fields where zero is itself a physically meaningful value (TxPowerDBm,
// TagLossDB). DefaultLinkConfig never needs it — it fills every field — but
// a hand-built LinkConfig can set `TxPowerDBm: core.Auto` to mean "the 10 dBm
// USRP default" while `TxPowerDBm: 0` now honestly means 0 dBm.
var Auto = math.NaN()

// Mode selects the evaluation method.
type Mode int

const (
	// SemiAnalytic evaluates the link budget in closed form.
	SemiAnalytic Mode = iota
	// Exact runs the bit-true waveform chain.
	Exact
)

// LinkConfig describes one LScatter deployment scenario.
//
// Defaulting rules: fields where a zero value is physically meaningless
// (CarrierHz, PathLossExponent, NoiseFigureDB, TagSensitivityDBm, Subframes)
// are filled with their documented defaults when left zero. TxPowerDBm and
// TagLossDB are different — 0 dBm transmit power and a 0 dB (lossless) tag
// are legitimate scenarios — so an explicit 0 is honored as 0 and the
// default is requested with the Auto sentinel (NaN) instead. Start from
// DefaultLinkConfig to get every default at once.
type LinkConfig struct {
	// BW is the LTE channel bandwidth.
	BW ltephy.Bandwidth
	// TxPowerDBm is the eNodeB transmit power (10 dBm USRP, 40 dBm with
	// the RF5110 amplifier). Zero means 0 dBm; set Auto for the 10 dBm
	// default.
	TxPowerDBm float64
	// CarrierHz is the downlink carrier (680 MHz white space in the paper).
	CarrierHz float64
	// Geometry in meters.
	ENodeBToTagM, TagToUEM, ENodeBToUEM float64
	// PathLossExponent: ~2.0 outdoor LoS, 2.2-2.5 open indoor, up to 3+ NLoS.
	PathLossExponent float64
	// LoS selects Ricean (true) vs Rayleigh (false) fading statistics.
	LoS bool
	// Indoor selects the rich multipath profile for the exact chain.
	Indoor bool
	// TagLossDB is the tag reflection/conversion loss. Zero means a
	// lossless reflection; set Auto for the measured 4 dB default.
	TagLossDB float64
	// NoiseFigureDB is the UE receiver noise figure (default 7).
	NoiseFigureDB float64
	// Antenna gains in dBi.
	ENodeBAntennaDB, TagAntennaDB, UEAntennaDB float64
	// TagSensitivityDBm is the minimum incident power for the tag's
	// envelope-detector synchronization to function (default -45).
	TagSensitivityDBm float64
	// Mode selects exact or semi-analytic evaluation.
	Mode Mode
	// Subframes is the simulated length in ms for the exact mode
	// (default 5).
	Subframes int
	// Seed drives every random element.
	Seed uint64
	// Impair optionally injects front-end and channel faults into the exact
	// chain (see package impair). nil — or a config with every stage
	// disabled — leaves the chain byte-identical to the clean path: the
	// impairment machinery draws from its own derived RNG streams and is
	// simply absent when off. Impair.SampleRate is filled in from the
	// bandwidth automatically; Impair.Seed defaults to Seed when zero.
	Impair *impair.Config
	// Lane selects the exact chain's sample representation:
	// simlink.LaneFloat (default, the conformance reference pinned by the
	// golden vectors) or simlink.LaneFixedPoint (the Q1.15 hot path; same
	// RNG streams, results within the error budget of docs/PERFORMANCE.md).
	// Ignored in semi-analytic mode.
	Lane simlink.Lane
}

// DefaultLinkConfig returns the smart-home baseline scenario: 3 ft spacings,
// 10 dBm, 680 MHz, indoor.
func DefaultLinkConfig(bw ltephy.Bandwidth) LinkConfig {
	return LinkConfig{
		BW:                bw,
		TxPowerDBm:        10,
		CarrierHz:         680e6,
		ENodeBToTagM:      channel.FeetToMeters(3),
		TagToUEM:          channel.FeetToMeters(3),
		ENodeBToUEM:       channel.FeetToMeters(5),
		PathLossExponent:  2.2,
		LoS:               true,
		Indoor:            true,
		TagLossDB:         4,
		NoiseFigureDB:     7,
		ENodeBAntennaDB:   6,
		TagAntennaDB:      2,
		UEAntennaDB:       2,
		TagSensitivityDBm: -45,
		Mode:              SemiAnalytic,
		Subframes:         5,
		Seed:              1,
	}
}

// LinkReport summarizes one link evaluation.
type LinkReport struct {
	// Synced is true when the UE acquired the tag's preamble.
	Synced bool
	// LTEOK is true when the direct-path LTE decode (needed to regenerate
	// the excitation reference) succeeds.
	LTEOK bool
	// TagHearsENodeB is true when the incident power at the tag exceeds the
	// envelope detector's sensitivity.
	TagHearsENodeB bool
	// BER is the backscatter bit error rate.
	BER float64
	// RawRateBps is the modulated backscatter bit rate.
	RawRateBps float64
	// ThroughputBps is the goodput: correctly demodulated bits per second.
	ThroughputBps float64
	// ScatterSNRdB is the per-unit post-matched-filter SNR.
	ScatterSNRdB float64
	// DirectSNRdB is the direct-path LTE SNR at the UE.
	DirectSNRdB float64
	// BitsCompared is the number of bits measured (exact mode only).
	BitsCompared int
	// Reacquisitions counts how often the UE's carrier-recovery loop lost
	// lock and fell back to re-acquisition (exact mode with impairments;
	// always 0 on the clean path, where the loop is not engaged).
	Reacquisitions int
}

// RawBackscatterRate returns the modulated bit rate for a bandwidth: 1200
// bits per symbol at 20 MHz (12 per RB), 116 modulated symbols per 10 ms
// frame minus one preamble symbol per 5 ms burst.
func RawBackscatterRate(bw ltephy.Bandwidth) float64 {
	perSym := float64(bw.Subcarriers())
	// 12 data symbols per subframe, minus 2 in each sync subframe (2 per
	// frame), minus 2 preamble symbols per frame.
	symbols := 10.0*12 - 4 - 2
	return perSym * symbols / (ltephy.SubframesPerFrame * ltephy.SubframeDuration)
}

// Run evaluates a link configuration.
func Run(cfg LinkConfig) LinkReport {
	applyDefaults(&cfg)
	if cfg.Mode == Exact {
		return runExact(cfg)
	}
	return runSemiAnalytic(cfg)
}

// Samples evaluates n independent realizations of a link configuration,
// returning per-realization throughputs (the paper's box plots are
// distributions over exactly such realizations). The configured Mode is
// honored: SemiAnalytic draws Monte-Carlo fading realizations in closed
// form; Exact runs the bit-true pipeline once per realization, each with an
// independently derived seed.
func Samples(cfg LinkConfig, n int) []float64 {
	applyDefaults(&cfg)
	out := make([]float64, n)
	for i := range out {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*7919
		var r LinkReport
		if cfg.Mode == Exact {
			r = runExact(c)
		} else {
			r = runSemiAnalytic(c)
		}
		out[i] = r.ThroughputBps
	}
	return out
}

// applyDefaults fills unset fields (see the LinkConfig doc for which zero
// values count as "unset" and which are honored literally).
func applyDefaults(cfg *LinkConfig) {
	if cfg.CarrierHz == 0 {
		cfg.CarrierHz = 680e6
	}
	if cfg.PathLossExponent == 0 {
		cfg.PathLossExponent = 2.2
	}
	if math.IsNaN(cfg.TagLossDB) {
		cfg.TagLossDB = 4
	}
	if cfg.NoiseFigureDB == 0 {
		cfg.NoiseFigureDB = 7
	}
	if cfg.TagSensitivityDBm == 0 {
		cfg.TagSensitivityDBm = -45
	}
	if cfg.Subframes == 0 {
		cfg.Subframes = 5
	}
	if math.IsNaN(cfg.TxPowerDBm) {
		cfg.TxPowerDBm = 10
	}
}

// DSBHarmonicLossDB is the power fraction of the square wave's first
// harmonic landing in the used (upper) sideband: (2/pi)^2 per sideband.
const DSBHarmonicLossDB = 3.92

// CleanBinLossDB accounts for the demodulator's clean-bin band limitation
// (roughly 15% of the hybrid energy is masked with the direct path).
const CleanBinLossDB = 0.7

// runSemiAnalytic evaluates the closed-form link budget with Monte-Carlo
// fading.
func runSemiAnalytic(cfg LinkConfig) LinkReport {
	r := rng.New(cfg.Seed)
	pl := channel.PathLoss{FreqHz: cfg.CarrierHz, Exponent: cfg.PathLossExponent}

	// Tag incident power.
	incidentDBm := cfg.TxPowerDBm - pl.LossDB(cfg.ENodeBToTagM) + cfg.ENodeBAntennaDB + cfg.TagAntennaDB
	// Backscatter received power at the UE (before fading).
	scatDBm := incidentDBm - cfg.TagLossDB - pl.LossDB(cfg.TagToUEM) +
		cfg.TagAntennaDB + cfg.UEAntennaDB - DSBHarmonicLossDB - CleanBinLossDB
	// Direct path for the LTE decode.
	directDBm := cfg.TxPowerDBm - pl.LossDB(cfg.ENodeBToUEM) + cfg.ENodeBAntennaDB + cfg.UEAntennaDB

	occupied := float64(cfg.BW.Subcarriers()) * ltephy.SubcarrierSpacing
	noiseW := channel.NoiseFloorW(occupied, cfg.NoiseFigureDB)
	n0 := noiseW / occupied

	p := ltephy.DefaultParams(cfg.BW)
	unitEnergy := channel.DBmToWatts(scatDBm) * p.UnitDuration()
	gammaMean := unitEnergy / n0

	directSNR := channel.DBmToWatts(directDBm) / noiseW

	rep := LinkReport{
		RawRateBps:     RawBackscatterRate(cfg.BW),
		ScatterSNRdB:   10 * math.Log10(math.Max(gammaMean, 1e-30)),
		DirectSNRdB:    10 * math.Log10(math.Max(directSNR, 1e-30)),
		TagHearsENodeB: incidentDBm >= cfg.TagSensitivityDBm,
	}
	// The reference regeneration needs the QPSK rate-1/2 transport block to
	// decode: ~5 dB SNR with margin.
	rep.LTEOK = rep.DirectSNRdB > 5
	if !rep.LTEOK || !rep.TagHearsENodeB {
		rep.BER = 0.5
		return rep
	}
	// Monte-Carlo over fading: per-unit excitation energy is exponential
	// (the OFDM time samples are complex-Gaussian); the link fade is Ricean
	// (LoS) or Rayleigh (NLoS) on top.
	const trials = 4000
	var berSum float64
	var syncOK int
	for i := 0; i < trials; i++ {
		fade := fadePower(r, cfg.LoS)
		g := gammaMean * fade
		// Per-unit exponential energy folded analytically (Rayleigh BPSK).
		berSum += 0.5 * (1 - math.Sqrt(g/(1+g)))
		// Preamble acquisition integrates the full symbol: effectively
		// bandwidth-many units of coherent gain. It fails only deep in the
		// noise.
		if g*float64(cfg.BW.Subcarriers()) > 100 {
			syncOK++
		}
	}
	rep.BER = berSum / trials
	rep.Synced = syncOK > trials/2
	if !rep.Synced {
		rep.BER = 0.5
		return rep
	}
	syncFrac := float64(syncOK) / trials
	rep.ThroughputBps = rep.RawRateBps * (1 - rep.BER) * syncFrac
	return rep
}

// fadePower draws a power fade: Ricean with K=7 dB for LoS, Rayleigh for
// NLoS, unit mean.
func fadePower(r *rng.Source, los bool) float64 {
	if los {
		k := math.Pow(10, 7.0/10)
		s := math.Sqrt(k / (k + 1))
		sigma := math.Sqrt(1 / (2 * (k + 1)))
		re := s + sigma*r.NormFloat64()
		im := sigma * r.NormFloat64()
		return re*re + im*im
	}
	re := r.NormFloat64() / math.Sqrt2
	im := r.NormFloat64() / math.Sqrt2
	return re*re + im*im
}

// runExact evaluates the bit-true chain: it translates the LinkConfig's
// geometry and link budget into simlink pipeline stages and runs a Session
// for the configured number of subframes. The stage wiring — RNG stream
// labels, path order, the stream-position hold on LTE receiver errors — is
// pinned by the golden end-to-end vectors (testdata/golden_e2e.json).
func runExact(cfg LinkConfig) LinkReport {
	r := rng.New(cfg.Seed)
	p := ltephy.DefaultParams(cfg.BW)
	ecfg := enodeb.Config{Params: p, Scheme: modem.QPSK, TxPowerDBm: cfg.TxPowerDBm, Seed: cfg.Seed}
	enb := enodeb.New(ecfg)

	pl := channel.PathLoss{FreqHz: cfg.CarrierHz, Exponent: cfg.PathLossExponent}
	profile := channel.PedestrianProfile
	if cfg.Indoor {
		profile = channel.RichProfile
	}
	if cfg.LoS && !cfg.Indoor {
		profile = channel.FlatProfile
	}
	sr := p.SampleRate()
	directHop := channel.NewHop(r.Fork(1), pl, cfg.ENodeBToUEM,
		cfg.ENodeBAntennaDB+cfg.UEAntennaDB, 0, channel.NewMultipath(r.Fork(2), profile, sr))
	hop1 := channel.NewHop(r.Fork(3), pl, cfg.ENodeBToTagM, cfg.ENodeBAntennaDB+cfg.TagAntennaDB, 0, nil)
	hop2 := channel.NewHop(r.Fork(4), pl, cfg.TagToUEM,
		cfg.TagAntennaDB+cfg.UEAntennaDB, 0, channel.NewMultipath(r.Fork(5), profile, sr))

	// Tag with residual timing error and random sub-unit offset.
	mod := tag.NewModulator(tag.ModConfig{
		Params:           p,
		ReflectionLossDB: cfg.TagLossDB,
		TimingErrorUnits: int(r.NormFloat64() * 3),
		SampleOffset:     r.Intn(p.Oversample),
	})
	payload := r.Fork(6)
	lteRx := ue.NewLTEReceiver(p, modem.QPSK)
	sc := ue.NewScatterDemod(ue.DefaultScatterConfig(p))

	occupied := float64(cfg.BW.Subcarriers()) * ltephy.SubcarrierSpacing
	noisePerSample := channel.NoiseFloorW(occupied, cfg.NoiseFigureDB) * sr / occupied

	incidentDBm := cfg.TxPowerDBm - pl.LossDB(cfg.ENodeBToTagM) + cfg.ENodeBAntennaDB + cfg.TagAntennaDB
	rep := LinkReport{
		RawRateBps:     RawBackscatterRate(cfg.BW),
		TagHearsENodeB: incidentDBm >= cfg.TagSensitivityDBm,
	}
	if !rep.TagHearsENodeB {
		rep.BER = 0.5
		return rep
	}

	noiseRng := r.Fork(7)

	// Fault injection: tag-side timing jitter rides on the modulator (the
	// wander is a property of the tag's clock, in basic-timing units), the
	// remaining stages wrap the receiver input via the Link, and an engaged
	// carrier-recovery loop absorbs CFO/drift with re-acquisition fallback.
	// All of it is absent — not merely inert — when Impair is nil/off, so
	// the clean path stays byte-identical.
	var (
		tagJitter *impair.TimingJitter
		rxPipe    *impair.Pipeline
		tracker   *ue.CFOTracker
	)
	if cfg.Impair != nil && cfg.Impair.Active() {
		ic := *cfg.Impair
		if ic.Seed == 0 {
			ic.Seed = cfg.Seed
		}
		if ic.SampleRate == 0 {
			ic.SampleRate = sr
		}
		tagJitter = impair.NewTimingJitter(ic)
		rxPipe = impair.NewFor(ic, impair.SFO, impair.CFO, impair.Interference, impair.ADC)
		tracker = ue.NewCFOTracker(p, 0, ue.CFOTrackerConfig{})
	}

	sink := &simlink.DemodSink{LTE: lteRx, Scatter: sc, HoldOnLTEError: true}
	sess := &simlink.Session{
		Source: enb,
		Direct: directHop,
		Tags: []*simlink.Tag{{
			Mod:  mod,
			Path: simlink.Chain(hop1, hop2),
			Feed: func(int, *tag.Modulator) {
				mod.QueueBits(payload.Bits(make([]byte, 12*mod.PerSymbolBits())))
			},
			Jitter: tagJitter,
		}},
		Link:    channel.NewLink(noiseRng, noisePerSample, channel.WithImpairment(rxPipe)),
		Tracker: tracker,
		Sink:    sink,
		Lane:    cfg.Lane,
	}
	sess.Run(cfg.Subframes)

	acct := sink.Totals()
	rep.Synced = sink.Synced
	rep.LTEOK = sink.LTEOK > cfg.Subframes/2
	rep.BitsCompared = acct.Total
	if tracker != nil {
		rep.Reacquisitions = tracker.Reacquisitions()
	}
	rep.BER = acct.BER()
	if acct.Total == 0 {
		return rep
	}
	rep.ThroughputBps = rep.RawRateBps * (1 - rep.BER)
	if !rep.Synced {
		rep.ThroughputBps = 0
	}
	return rep
}
