package core

import (
	"math"
	"testing"

	"lscatter/internal/channel"
	"lscatter/internal/ltephy"
	"lscatter/internal/stats"
)

func TestRawBackscatterRateMatchesPaper(t *testing.T) {
	// §4.3.1: the paper reports 13.63 Mbps at 20 MHz; the frame arithmetic
	// (114 payload symbols x 1200 bits per 10 ms) gives 13.68 Mbps.
	r := RawBackscatterRate(ltephy.BW20)
	if r < 13.3e6 || r > 14.0e6 {
		t.Fatalf("20 MHz raw rate = %v, want ~13.68 Mbps", r)
	}
	// 1.4 MHz: the paper reports ~800 Kbps (Fig 18 discussion).
	r = RawBackscatterRate(ltephy.BW1_4)
	if r < 0.7e6 || r > 0.9e6 {
		t.Fatalf("1.4 MHz raw rate = %v, want ~0.82 Mbps", r)
	}
}

func TestRawRateProportionalToBandwidthRBs(t *testing.T) {
	// Fig 18: throughput directly proportional to bandwidth (in RBs).
	base := RawBackscatterRate(ltephy.BW1_4) / 6
	for _, bw := range ltephy.Bandwidths {
		r := RawBackscatterRate(bw) / float64(bw.NRB())
		if math.Abs(r-base) > 1e-9 {
			t.Fatalf("%v: rate per RB %v differs from %v", bw, r, base)
		}
	}
}

func TestSemiAnalyticCloseRange(t *testing.T) {
	cfg := DefaultLinkConfig(ltephy.BW20)
	rep := Run(cfg)
	if !rep.Synced || !rep.LTEOK || !rep.TagHearsENodeB {
		t.Fatalf("close-range link not fully up: %+v", rep)
	}
	if rep.BER > 1e-4 {
		t.Fatalf("close-range BER = %v", rep.BER)
	}
	if rep.ThroughputBps < 13e6 {
		t.Fatalf("close-range throughput = %v, want ~13.6 Mbps", rep.ThroughputBps)
	}
}

func TestSemiAnalyticThroughputDecreasesWithDistance(t *testing.T) {
	prev := math.Inf(1)
	for _, ft := range []float64{10, 40, 80, 160, 320, 640} {
		cfg := DefaultLinkConfig(ltephy.BW20)
		cfg.TagToUEM = channel.FeetToMeters(ft)
		cfg.ENodeBToUEM = channel.FeetToMeters(ft + 3)
		rep := Run(cfg)
		if rep.ThroughputBps > prev+1 {
			t.Fatalf("throughput increased with distance at %v ft", ft)
		}
		prev = rep.ThroughputBps
	}
}

func TestSemiAnalyticBERIncreasesWithDistance(t *testing.T) {
	var last float64
	for _, ft := range []float64{10, 80, 200, 500} {
		cfg := DefaultLinkConfig(ltephy.BW20)
		cfg.TagToUEM = channel.FeetToMeters(ft)
		cfg.ENodeBToUEM = channel.FeetToMeters(ft + 3)
		rep := Run(cfg)
		if rep.BER < last-1e-12 {
			t.Fatalf("BER decreased with distance at %v ft", ft)
		}
		last = rep.BER
	}
}

func TestMallRangeTargets(t *testing.T) {
	// Fig 24: BER < 0.1% within 40 ft, < 1% within 150 ft (tag near the
	// eNodeB, UE moving away). Mall corridors waveguide: measured indoor
	// corridor exponents run 1.6-1.9, which is what lets the paper's link
	// hold to 150+ ft.
	cfg := DefaultLinkConfig(ltephy.BW20)
	cfg.PathLossExponent = 1.8
	cfg.TagToUEM = channel.FeetToMeters(40)
	cfg.ENodeBToUEM = channel.FeetToMeters(43)
	if rep := Run(cfg); rep.BER > 1e-3 {
		t.Fatalf("BER at 40 ft = %v, want < 0.1%%", rep.BER)
	}
	cfg.TagToUEM = channel.FeetToMeters(150)
	cfg.ENodeBToUEM = channel.FeetToMeters(153)
	if rep := Run(cfg); rep.BER > 1e-2 {
		t.Fatalf("BER at 150 ft = %v, want < 1%%", rep.BER)
	}
}

func TestTagSensitivityGatesLink(t *testing.T) {
	cfg := DefaultLinkConfig(ltephy.BW20)
	cfg.ENodeBToTagM = 4000 // tag hears nothing at 4 km from a 10 dBm source
	rep := Run(cfg)
	if rep.TagHearsENodeB {
		t.Fatal("tag reported hearing a 10 dBm eNodeB at 4 km")
	}
	if rep.ThroughputBps != 0 {
		t.Fatal("throughput nonzero with a deaf tag")
	}
}

func TestLTEDecodeGatesLink(t *testing.T) {
	cfg := DefaultLinkConfig(ltephy.BW20)
	cfg.ENodeBToUEM = 60000 // UE cannot decode the direct path
	rep := Run(cfg)
	if rep.LTEOK {
		t.Fatal("LTE decode reported OK at 60 km")
	}
	if rep.ThroughputBps != 0 {
		t.Fatal("throughput nonzero without a reference")
	}
}

func TestAmplifierExtendsRange(t *testing.T) {
	// Fig 30: boosting 10 -> 40 dBm stretches the feasible geometry.
	at := func(pwr float64) float64 {
		cfg := DefaultLinkConfig(ltephy.BW20)
		cfg.TxPowerDBm = pwr
		cfg.PathLossExponent = 2.0
		cfg.Indoor = false
		cfg.ENodeBToTagM = channel.FeetToMeters(24)
		cfg.TagToUEM = channel.FeetToMeters(160)
		cfg.ENodeBToUEM = channel.FeetToMeters(170)
		return Run(cfg).ThroughputBps
	}
	weak, strong := at(10), at(40)
	if strong < 10e6 {
		t.Fatalf("40 dBm at 24/160 ft: throughput %v, want >10 Mbps (Fig 30)", strong)
	}
	if weak >= strong {
		t.Fatalf("amplifier did not help: %v vs %v", weak, strong)
	}
}

func TestNLoSDropsUnder10Percent(t *testing.T) {
	// Fig 18: NLoS costs less than 10% at short range.
	los := DefaultLinkConfig(ltephy.BW20)
	nlos := los
	nlos.LoS = false
	nlos.PathLossExponent = 2.8
	tl, tn := Run(los).ThroughputBps, Run(nlos).ThroughputBps
	if tn > tl {
		t.Fatalf("NLoS throughput above LoS")
	}
	if (tl-tn)/tl > 0.10 {
		t.Fatalf("NLoS drop = %v%%, want < 10%%", 100*(tl-tn)/tl)
	}
}

func TestSamplesDistribution(t *testing.T) {
	cfg := DefaultLinkConfig(ltephy.BW20)
	cfg.TagToUEM = channel.FeetToMeters(100)
	cfg.ENodeBToUEM = channel.FeetToMeters(103)
	xs := Samples(cfg, 50)
	if len(xs) != 50 {
		t.Fatalf("%d samples", len(xs))
	}
	s := stats.Summarize(xs)
	if s.Median <= 0 {
		t.Fatal("median throughput zero at 100 ft")
	}
	if s.Std == 0 {
		t.Fatal("no variation across fading realizations")
	}
}

func TestSamplesExactMode(t *testing.T) {
	// Samples must honor Mode: each Exact realization is the bit-true chain
	// at the derived per-realization seed, reproducible via Run.
	cfg := DefaultLinkConfig(ltephy.BW1_4)
	cfg.Mode = Exact
	cfg.Subframes = 2
	xs := Samples(cfg, 2)
	if len(xs) != 2 {
		t.Fatalf("%d samples", len(xs))
	}
	for i, x := range xs {
		want := cfg
		want.Seed = cfg.Seed + uint64(i)*7919
		if rep := Run(want); rep.ThroughputBps != x {
			t.Fatalf("realization %d = %v, want the exact chain's %v", i, x, rep.ThroughputBps)
		}
	}
}

func TestApplyDefaultsSentinels(t *testing.T) {
	// Auto requests the documented defaults...
	cfg := LinkConfig{TxPowerDBm: Auto, TagLossDB: Auto}
	applyDefaults(&cfg)
	if cfg.TxPowerDBm != 10 {
		t.Fatalf("Auto TxPowerDBm defaulted to %v, want 10", cfg.TxPowerDBm)
	}
	if cfg.TagLossDB != 4 {
		t.Fatalf("Auto TagLossDB defaulted to %v, want 4", cfg.TagLossDB)
	}
	// ...while explicit zeros are honored literally: 0 dBm transmit power
	// and a lossless tag are valid configurations, not requests for the
	// defaults.
	cfg = LinkConfig{}
	applyDefaults(&cfg)
	if cfg.TxPowerDBm != 0 {
		t.Fatalf("explicit TxPowerDBm 0 became %v", cfg.TxPowerDBm)
	}
	if cfg.TagLossDB != 0 {
		t.Fatalf("explicit TagLossDB 0 became %v", cfg.TagLossDB)
	}
	// An explicit 0 dBm link must actually run 10 dB weaker than the
	// default, not silently get promoted back to 10 dBm.
	lo := DefaultLinkConfig(ltephy.BW20)
	lo.TxPowerDBm = 0
	lo.TagToUEM = channel.FeetToMeters(200)
	lo.ENodeBToUEM = channel.FeetToMeters(203)
	hi := lo
	hi.TxPowerDBm = Auto
	if l, h := Run(lo), Run(hi); l.ThroughputBps >= h.ThroughputBps {
		t.Fatalf("0 dBm link (%v bps) not weaker than the 10 dBm default (%v bps)",
			l.ThroughputBps, h.ThroughputBps)
	}
}

func TestExactModeCloseRange(t *testing.T) {
	cfg := DefaultLinkConfig(ltephy.BW1_4)
	cfg.Mode = Exact
	cfg.Subframes = 3
	rep := Run(cfg)
	if !rep.LTEOK {
		t.Fatal("exact: LTE decode failed at close range")
	}
	if !rep.Synced {
		t.Fatal("exact: no preamble sync at close range")
	}
	if rep.BitsCompared == 0 {
		t.Fatal("exact: no bits compared")
	}
	if rep.BER > 0.01 {
		t.Fatalf("exact: close-range BER = %v", rep.BER)
	}
}

func TestExactVsSemiAnalyticAgreement(t *testing.T) {
	// The semi-analytic model must agree with the bit-true chain on link
	// viability across regimes: both excellent at close range, both
	// degraded far out.
	for _, ft := range []float64{5, 600} {
		cfg := DefaultLinkConfig(ltephy.BW1_4)
		cfg.TagToUEM = channel.FeetToMeters(ft)
		cfg.ENodeBToUEM = channel.FeetToMeters(ft + 3)
		cfg.Subframes = 3
		sa := Run(cfg)
		cfg.Mode = Exact
		ex := Run(cfg)
		good := ft < 100
		if good {
			if sa.BER > 1e-3 || ex.BER > 1e-2 {
				t.Fatalf("%v ft: SA %v / exact %v BER, want both near zero", ft, sa.BER, ex.BER)
			}
		} else {
			if sa.BER < 0.02 {
				t.Fatalf("%v ft: semi-analytic BER %v, want degraded", ft, sa.BER)
			}
			if ex.Synced && ex.BER < 0.005 {
				t.Fatalf("%v ft: exact BER %v, want degraded", ft, ex.BER)
			}
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	cfg := DefaultLinkConfig(ltephy.BW20)
	cfg.TagToUEM = channel.FeetToMeters(120)
	a, b := Run(cfg), Run(cfg)
	if a != b {
		t.Fatal("semi-analytic run not deterministic")
	}
}
