package simlink

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"testing"

	"lscatter/internal/channel"
	"lscatter/internal/enodeb"
	"lscatter/internal/impair"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
	"lscatter/internal/tag"
)

// runFingerprint captures everything observable about a session run: a hash
// of every frame's RX samples, the tap waveforms, owners, records and the
// final stream position. Bit-identity between Run and RunParallel is the
// contract, so the comparison is exact, not tolerance-based.
type runFingerprint struct {
	rx       [32]byte
	taps     [32]byte
	owners   []int
	recBits  int
	startEnd int
}

func hashInto(h []byte, x []complex128) [32]byte {
	buf := make([]byte, 16*len(x))
	for i, v := range x {
		binary.LittleEndian.PutUint64(buf[16*i:], math.Float64bits(real(v)))
		binary.LittleEndian.PutUint64(buf[16*i+8:], math.Float64bits(imag(v)))
	}
	return sha256.Sum256(append(h, buf...))
}

// parallelTestSession builds a deliberately awkward chain: two TDMA tags
// (one parked), per-burst jitter, a pure multipath prefix chained into an
// impure fading stage, an opaque PathFunc on the direct path, and an
// impairment pipeline — every classification branch of splitPath at once.
func parallelTestSession(lane Lane, fp *runFingerprint) *Session {
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	cfg.Seed = 5
	p := cfg.Params
	r := rng.New(77)
	mods := []*tag.Modulator{
		tag.NewModulator(tag.ModConfig{Params: p, ID: 1, TimingErrorUnits: 1}),
		tag.NewModulator(tag.ModConfig{Params: p, ID: 2}),
	}
	for _, m := range mods {
		m.QueueBits(r.Bits(make([]byte, 30*m.PerSymbolBits())))
	}
	mp := channel.NewMultipath(r.Fork(2), channel.PedestrianProfile, p.SampleRate())
	fading := channel.NewFadingTrack(r.Fork(3), 0.9)
	jitter := impair.NewTimingJitter(impair.Config{
		Seed:   21,
		Jitter: impair.JitterConfig{Enabled: true, RMSSamples: 1.5},
	})
	pipe := impair.New(impair.Config{
		Seed: 22,
		ADC:  impair.ADCConfig{Enabled: true, Bits: 12},
	})
	// An opaque function stage: conservatively impure, must run in order.
	scale := PathFunc(func(x []complex128) []complex128 {
		out := make([]complex128, len(x))
		for i, v := range x {
			out[i] = v * complex(0.9, 0)
		}
		return out
	})
	noiseW := 0.01 * math.Pow(10, -9)
	return &Session{
		Source: enodeb.New(cfg),
		Direct: Chain(GainDB(-40), scale),
		Tags: []*Tag{
			{Mod: mods[0], Path: Chain(mp, GainDB(-70), fading), Jitter: jitter, Park: true},
			{Mod: mods[1], Path: GainDB(-72)},
		},
		Owner: func(n int) int { return (n / 2) % 2 },
		Link:  channel.NewLink(r.Fork(4), noiseW, channel.WithImpairment(pipe)),
		Lane:  lane,
		Taps: Taps{
			Ambient: func(_ *Frame, x []complex128) {
				fp.taps = hashInto(fp.taps[:], x[:16])
			},
			Reflected: func(_ *Frame, tagIdx int, x []complex128) {
				fp.taps = hashInto(fp.taps[:], x[:16])
			},
		},
		Sink: SinkFunc(func(f *Frame) bool {
			fp.rx = hashInto(fp.rx[:], f.RX)
			fp.owners = append(fp.owners, f.Owner)
			for _, rec := range f.Records {
				fp.recBits += len(rec.Bits)
			}
			return true
		}),
	}
}

// TestRunParallelBitIdentical pins RunParallel's contract: at any worker
// count, in both lanes, the run is bit-identical to the sequential Run —
// same RX streams, same tap waveforms, same records, same RNG consumption.
func TestRunParallelBitIdentical(t *testing.T) {
	const subframes = 8
	for _, lane := range []Lane{LaneFloat, LaneFixedPoint} {
		var ref runFingerprint
		sess := parallelTestSession(lane, &ref)
		sess.Run(subframes)
		ref.startEnd = sess.StartSample()

		for _, workers := range []int{2, 3, 7} {
			var got runFingerprint
			ps := parallelTestSession(lane, &got)
			ps.RunParallel(subframes, workers)
			got.startEnd = ps.StartSample()

			if got.rx != ref.rx {
				t.Fatalf("lane %v workers %d: RX stream diverged from sequential Run", lane, workers)
			}
			if got.taps != ref.taps {
				t.Fatalf("lane %v workers %d: tap waveforms diverged", lane, workers)
			}
			if got.recBits != ref.recBits || got.startEnd != ref.startEnd {
				t.Fatalf("lane %v workers %d: records/position diverged (%d/%d bits, %d/%d samples)",
					lane, workers, got.recBits, ref.recBits, got.startEnd, ref.startEnd)
			}
			for i := range ref.owners {
				if got.owners[i] != ref.owners[i] {
					t.Fatalf("lane %v workers %d: owner schedule diverged at subframe %d", lane, workers, i)
				}
			}
		}
	}
}

// TestRunParallelDegenerate pins the workers<=1 fallthrough to Run.
func TestRunParallelDegenerate(t *testing.T) {
	var a, b runFingerprint
	s1 := parallelTestSession(LaneFloat, &a)
	s1.Run(2)
	s2 := parallelTestSession(LaneFloat, &b)
	s2.RunParallel(2, 1)
	if a.rx != b.rx {
		t.Fatal("RunParallel(n, 1) diverged from Run(n)")
	}
}

// TestSplitPathClassification pins the conservative purity rules splitPath
// builds on: known-pure stages parallelize, anything opaque stays in order.
func TestSplitPathClassification(t *testing.T) {
	r := rng.New(3)
	mp := channel.NewMultipath(r, channel.PedestrianProfile, 1.92e6*4)
	fading := channel.NewFadingTrack(r, 0.5)
	pl := channel.PathLoss{FreqHz: 680e6, Exponent: 2}
	hopPure := channel.NewHop(r, pl, 5, 0, 0, nil)

	if !stagePure(mp) || !stagePure(hopPure) || !stagePure(GainDB(-3)) {
		t.Fatal("known-pure stages classified impure")
	}
	if stagePure(fading) || stagePure(Identity) {
		t.Fatal("stateful or opaque stages classified pure")
	}

	// A chain splits at its first impure stage.
	pure, rest := splitPath(Chain(mp, GainDB(-3), fading, GainDB(-1)))
	if pure == nil || rest == nil {
		t.Fatal("mixed chain must split into prefix and remainder")
	}
	if len(pure.(chainStage)) != 2 || len(rest.(chainStage)) != 2 {
		t.Fatalf("split lengths %d/%d, want 2/2", len(pure.(chainStage)), len(rest.(chainStage)))
	}
	if pure, rest := splitPath(nil); pure != nil || rest != nil {
		t.Fatal("nil path must split into nothing")
	}
	if pure, rest := splitPath(Identity); pure != nil || rest == nil {
		t.Fatal("opaque stage must run entirely in order")
	}
}
