package simlink

import (
	"fmt"
	"math"

	"lscatter/internal/dsp"
	"lscatter/internal/enodeb"
	"lscatter/internal/fxp"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
	"lscatter/internal/tag"
)

// The Streamer is the transport pipeline stripped to what has to happen per
// sample — and then precomputed out of the per-sample loop. It models the
// fixed-gain transport core of a Session: direct path + one DSB tag behind
// fixed gains, path combining and receiver noise. For that chain every
// received sample is one of exactly two values per basic-timing unit — the
// phase-0 composite (direct + reflection) or its phase-pi counterpart
// (direct - reflection) — plus noise. Both composites are quantized,
// offset-binary packed and XOR-differenced once per ambient subframe at
// construction; the steady-state loop then costs, per four samples, one
// select-by-XOR, one carry-free add of pre-drawn noise lanes, and one store
// (fxp.StreamSelectAdd). This is the engine behind the repository's
// real-time-factor headline (docs/PERFORMANCE.md).
//
// Scope, explicitly: the Streamer trades generality for throughput and is a
// transport-rate tool, not a replacement for Session. Its contractual
// simplifications:
//
//   - DSB switching only, zero sub-unit sample offset (whole-unit timing
//     error is supported — it shifts the packed plan).
//   - Fixed scalar path gains (no multipath, fading or impairments).
//   - The ambient excitation is one precomputed radio frame, repeated; LTE
//     payload varies across the frame but not between frames.
//   - Receiver noise comes from a pre-drawn cache-resident ring of clamped
//     Gaussian lanes, reused cyclically — statistically white over a
//     subframe but not freshly drawn per sample.
//
// The noiseless Streamer is sample-exact (within Q1.15 quantization)
// against the float Session over the same ambient frame and payload; the
// conformance tests pin that, and validate the noise ring statistically.
type Streamer struct {
	cfg      StreamConfig
	p        ltephy.Params
	units    int // basic-timing units per subframe
	nBits    int // payload bits per modulated symbol
	scale    float64
	noiseMax int

	ambient [][]complex128 // one precomputed radio frame
	comps   []sfComposite  // per subframe index
	plans   []sfPlan       // per subframe index

	payload *rng.Source
	noise   []uint64
	np      int
	sfn     int

	phase    []uint64 // packed per-unit phase scratch
	out      []uint64 // interleaved I,Q output words (two's-complement mantissas)
	checksum uint64
}

// sfComposite holds one ambient subframe's precomputed selectable words:
// c0 is the phase-0 composite in PackBiased form, d = c0 ^ c1. Layout is
// interleaved per unit: word 2u carries the unit's four I mantissas, word
// 2u+1 its four Q mantissas.
type sfComposite struct {
	c0, d []uint64
}

// sfPlan is one subframe index's packed modulation schedule: the template
// carries the preamble (on burst subframes) with every other unit at phase
// 0; payloadAt lists the unit positions where Next merges fresh payload
// phase bits.
type sfPlan struct {
	template  []uint64
	payloadAt []int
}

// StreamConfig parameterizes a Streamer.
type StreamConfig struct {
	// ENodeB configures the ambient source. Params.Oversample must be 4
	// (the packed-word layout is four samples per word, one unit).
	ENodeB enodeb.Config
	// Tag is the modulator configuration. Mode must be DSB and SampleOffset
	// 0; TimingErrorUnits shifts the packed plan by whole units.
	Tag tag.ModConfig
	// DirectGainDB is the eNodeB->UE direct path power gain (dB).
	DirectGainDB float64
	// TagGainDB is the tag->UE path power gain (dB), applied on top of the
	// tag's reflection loss.
	TagGainDB float64
	// NoisePowerW is the receiver noise power in watts (0 = noiseless).
	NoisePowerW float64
	// Seed drives the payload bits and the noise ring.
	Seed uint64
}

// noiseRingWords is the pre-drawn noise ring length: 32 KiB of packed
// lanes, small enough to stay L1/L2-resident in the hot loop.
const noiseRingWords = 1 << 12

// NewStreamer precomputes the composites, plans and noise ring. It panics
// on configurations outside the Streamer's documented scope.
func NewStreamer(cfg StreamConfig) *Streamer {
	p := cfg.ENodeB.Params
	if cfg.Tag.Mode != tag.DSB {
		panic("simlink: Streamer supports DSB switching only")
	}
	if cfg.Tag.SampleOffset != 0 {
		panic("simlink: Streamer needs SampleOffset 0 (whole-unit timing error only)")
	}
	if p.Oversample != 4 {
		panic(fmt.Sprintf("simlink: Streamer needs Oversample 4 (one packed word per unit), got %d", p.Oversample))
	}
	if cfg.Tag.Params.BW != p.BW || cfg.Tag.Params.Oversample != p.Oversample {
		panic("simlink: Streamer tag numerology must match the eNodeB's")
	}
	st := &Streamer{
		cfg:   cfg,
		p:     p,
		units: p.BW.SamplesPerSubframe(),
		nBits: p.UsefulModulationUnits(),
	}

	// One radio frame of real ambient excitation.
	enb := enodeb.New(cfg.ENodeB)
	st.ambient = make([][]complex128, ltephy.SubframesPerFrame)
	for i := range st.ambient {
		st.ambient[i] = enb.NextSubframe().Samples
	}

	// Composite pair per sample: y0 = gD*amb + gR*amb*w, y1 = gD*amb - gR*amb*w,
	// with w the DSB wave [+,+,-,-] over the unit.
	loss := cfg.Tag.ReflectionLossDB
	if loss == 0 {
		loss = 6 // tag.NewModulator's default
	}
	gD := math.Pow(10, cfg.DirectGainDB/20)
	gR := math.Sqrt(dsp.FromDB(-loss)) * math.Pow(10, cfg.TagGainDB/20)
	n := st.units * p.Oversample
	y0 := make([][]complex128, len(st.ambient))
	y1 := make([][]complex128, len(st.ambient))
	maxAbs := 0.0
	for sf, amb := range st.ambient {
		y0[sf] = make([]complex128, n)
		y1[sf] = make([]complex128, n)
		for s, v := range amb {
			w := 1.0
			if s%p.Oversample >= p.Oversample/2 {
				w = -1
			}
			refl := v * complex(gR*w, 0)
			dir := v * complex(gD, 0)
			y0[sf][s] = dir + refl
			y1[sf][s] = dir - refl
			for _, c := range [2]complex128{y0[sf][s], y1[sf][s]} {
				if a := math.Abs(real(c)); a > maxAbs {
					maxAbs = a
				}
				if a := math.Abs(imag(c)); a > maxAbs {
					maxAbs = a
				}
			}
		}
	}

	// One global block scale: composite mantissas capped at half scale, then
	// coarsened until the +/-4-sigma noise clamp fits in the remaining
	// headroom (the PackBiased carry-free contract).
	sigma := 0.0
	if cfg.NoisePowerW > 0 {
		sigma = math.Sqrt(cfg.NoisePowerW / 2)
	} else if cfg.NoisePowerW < 0 || math.IsNaN(cfg.NoisePowerW) || math.IsInf(cfg.NoisePowerW, 0) {
		panic(fmt.Sprintf("simlink: Streamer noise power %v W must be finite and >= 0", cfg.NoisePowerW))
	}
	scale := 1.0
	if maxAbs > 0 {
		scale = 2 * pow2CeilStream(maxAbs)
	}
	for {
		mantMax := int(math.Ceil(maxAbs / scale * fxp.One))
		clamp := int(math.Ceil(4 * sigma / scale * fxp.One))
		if mantMax+clamp <= fxp.MaxMant {
			st.noiseMax = clamp
			break
		}
		scale *= 2
	}
	st.scale = scale

	// Quantize, pack, difference.
	st.comps = make([]sfComposite, len(st.ambient))
	mant0 := make([]int16, n)
	mant1 := make([]int16, n)
	inv := 1 / scale
	for sf := range st.ambient {
		for s := range y0[sf] {
			mant0[s] = fxp.QuantQ15(real(y0[sf][s]) * inv)
			mant1[s] = fxp.QuantQ15(real(y1[sf][s]) * inv)
		}
		c0 := make([]uint64, 2*st.units)
		c1 := make([]uint64, 2*st.units)
		packInterleavedI := func(dst []uint64, mant []int16) {
			tmp := make([]uint64, st.units)
			fxp.PackBiased(tmp, mant, st.noiseMax)
			for u := 0; u < st.units; u++ {
				dst[2*u] = tmp[u]
			}
		}
		packInterleavedQ := func(dst []uint64, mant []int16) {
			tmp := make([]uint64, st.units)
			fxp.PackBiased(tmp, mant, st.noiseMax)
			for u := 0; u < st.units; u++ {
				dst[2*u+1] = tmp[u]
			}
		}
		packInterleavedI(c0, mant0)
		packInterleavedI(c1, mant1)
		for s := range y0[sf] {
			mant0[s] = fxp.QuantQ15(imag(y0[sf][s]) * inv)
			mant1[s] = fxp.QuantQ15(imag(y1[sf][s]) * inv)
		}
		packInterleavedQ(c0, mant0)
		packInterleavedQ(c1, mant1)
		d := make([]uint64, len(c0))
		for k := range d {
			d[k] = c0[k] ^ c1[k]
		}
		st.comps[sf] = sfComposite{c0: c0, d: d}
	}

	// Packed plans: the schedule is deterministic per subframe index (bursts
	// open in subframes 0 and 5), so the preamble and idle structure bake
	// into a template and only payload words are merged per subframe.
	phaseWords := (st.units + 63) / 64
	st.plans = make([]sfPlan, ltephy.SubframesPerFrame)
	shift := cfg.Tag.TimingErrorUnits
	for sf := range st.plans {
		pl := sfPlan{template: make([]uint64, phaseWords)}
		windows := tag.DataWindows(p, sf)
		burst := IsBurstSubframe(sf)
		for i, w0 := range windows {
			pos := w0 + shift
			if pos < 0 || pos+st.nBits > st.units {
				panic(fmt.Sprintf("simlink: Streamer timing error %d units pushes symbol window [%d,%d) outside the subframe", shift, pos, pos+st.nBits))
			}
			if burst && i == 0 {
				for k, b := range tag.PreambleFor(cfg.Tag.ID, st.nBits) {
					if b == 0 { // data '0' -> phase pi -> packed bit 1
						pl.template[(pos+k)>>6] |= 1 << uint((pos+k)&63)
					}
				}
				continue
			}
			pl.payloadAt = append(pl.payloadAt, pos)
		}
		st.plans[sf] = pl
	}

	base := rng.New(cfg.Seed)
	noiseSrc := base.Fork(1)
	st.payload = base.Fork(2)
	sigmaMant := 0.0
	if sigma > 0 {
		sigmaMant = sigma / scale * fxp.One
	}
	st.noise = fxp.NewNoiseTable(noiseSrc, noiseRingWords, sigmaMant, st.noiseMax)
	st.phase = make([]uint64, phaseWords)
	st.out = make([]uint64, 2*st.units)
	return st
}

// pow2CeilStream returns the smallest power of two >= x (x positive finite).
func pow2CeilStream(x float64) float64 {
	p := math.Ldexp(1, int(math.Ceil(math.Log2(x))))
	for p < x {
		p *= 2
	}
	for p/2 >= x {
		p /= 2
	}
	return p
}

// Scale returns the global Q1.15 block scale of the produced stream.
func (st *Streamer) Scale() float64 { return st.scale }

// SubframeSamples returns the oversampled sample count per subframe.
func (st *Streamer) SubframeSamples() int { return st.units * st.p.Oversample }

// Subframes returns how many subframes the streamer has produced.
func (st *Streamer) Subframes() int { return st.sfn }

// Ambient returns the precomputed ambient excitation of subframe index idx
// (0..9). The slice is owned by the Streamer; treat it as read-only. The
// conformance tests replay it through a float Session.
func (st *Streamer) Ambient(idx int) []complex128 { return st.ambient[idx] }

// Checksum folds a token of every produced subframe, so a benchmark loop
// over Next cannot be optimized away.
func (st *Streamer) Checksum() uint64 { return st.checksum }

// insertBits merges n payload phase bits at packed position pos, drawing
// from src word-wise (each draw fills up to the next word boundary). When
// collect is non-nil the equivalent data bits are appended to it — the
// conformance path; Next passes nil and pays nothing.
func insertBits(dst []uint64, pos, n int, src *rng.Source, collect *[]byte) {
	for n > 0 {
		j := pos >> 6
		s := uint(pos & 63)
		take := 64 - int(s)
		if take > n {
			take = n
		}
		w := src.Uint64()
		if take < 64 {
			w &= 1<<uint(take) - 1
		}
		dst[j] |= w << s
		if collect != nil {
			for k := 0; k < take; k++ {
				// packed bit 1 = phase pi = data bit 0
				*collect = append(*collect, byte(1-(w>>uint(k))&1))
			}
		}
		pos += take
		n -= take
	}
}

// step produces one subframe into st.out (interleaved I,Q mantissa words;
// StreamSelectAdd fuses the unbias, so the words hold plain two's-complement
// mantissas). collectBits, when non-nil, receives the payload data bits
// symbol by symbol.
func (st *Streamer) step(collectBits *[][]byte) int {
	sfIdx := st.sfn % ltephy.SubframesPerFrame
	st.sfn++
	pl := &st.plans[sfIdx]
	copy(st.phase, pl.template)
	for _, pos := range pl.payloadAt {
		var sym *[]byte
		if collectBits != nil {
			*collectBits = append(*collectBits, make([]byte, 0, st.nBits))
			sym = &(*collectBits)[len(*collectBits)-1]
		}
		insertBits(st.phase, pos, st.nBits, st.payload, sym)
	}
	comp := &st.comps[sfIdx]
	// The +1 stride decorrelates the ring phase across subframes (a
	// subframe consumes a multiple of the ring length).
	st.np = fxp.StreamSelectAdd(st.out, comp.c0, comp.d, st.phase, st.noise, st.np) + 1
	st.checksum ^= st.out[0] + 0x9e3779b97f4a7c15*uint64(st.sfn) ^ st.out[len(st.out)-1]
	return sfIdx
}

// Next produces the next subframe and returns its interleaved I,Q packed
// mantissa words (word 2u = I lanes of unit u, word 2u+1 = Q lanes). The
// slice is reused by the following call. This is the timed hot loop of the
// real-time-factor benchmark.
func (st *Streamer) Next() []uint64 {
	st.step(nil)
	return st.out
}

// Materialize produces the next subframe as a Q1.15 buffer plus the payload
// data bits of each modulated symbol (in schedule order, preamble
// excluded). It allocates per call and exists for the conformance tests and
// for feeding the produced stream onward (e.g. into the demodulator); the
// timed loop uses Next.
func (st *Streamer) Materialize() (sfIdx int, rx *fxp.Buf, bits [][]byte) {
	sfIdx = st.step(&bits)
	rx = fxp.New(st.SubframeSamples())
	rx.Scale = st.scale
	iw, qw := rx.IWords(), rx.QWords()
	for u := 0; u < st.units; u++ {
		iw[u] = st.out[2*u]
		qw[u] = st.out[2*u+1]
	}
	return sfIdx, rx, bits
}
