package simlink

import (
	"lscatter/internal/channel"
)

// BankPlan is one subframe's scheduling outcome from a TagBank: which tags
// transmit, which are full-simulated, and the closed-form remainder.
//
// The frame's propagation paths are assembled in a fixed, documented order —
// direct path, then every named tag (Owner, Interferers, ParkFull merged) in
// tag-index order, then one synthetic ambient*ParkScale path — matching the
// built-in stage's summation order for the tags that are full-simulated, so
// a plan that names every tag reproduces the built-in stage bit for bit.
type BankPlan struct {
	// Owner is the index (into Session.Tags) of the tag that modulates
	// payload this subframe; -1 leaves the subframe without a backscatter
	// transmitter (an idle or analytically-resolved collision slot). The
	// owner's symbol records land in Frame.Records exactly as under the
	// built-in TDMA bank.
	Owner int
	// Interferers lists additional tags transmitting concurrently (capture
	// losers under a contention MAC). They are full-simulated — their
	// modulated reflections arrive at the receiver as interference — but
	// their records are not attached to the Frame.
	Interferers []int
	// ParkFull lists parked tags that must still be simulated per sample
	// because their Path does not reduce to one complex gain (multipath,
	// fading). Tags listed here contribute Modulator.ParkedSubframe through
	// their Path, exactly as under the built-in bank.
	ParkFull []int
	// ParkScale is the aggregate parked-echo coefficient of every remaining
	// parked tag, computed in closed form by the bank (per-tag parked gain
	// times the scalar gain of its path, summed). The engine contributes a
	// single ambient*ParkScale path instead of len(parked) per-sample
	// simulations; zero contributes nothing.
	ParkScale complex128
}

// TagBank replaces the Session's built-in TDMA tag stage with an external
// scheduler (internal/fleet): instead of "Owner modulates, everyone else
// parks per sample", the bank decides per subframe which tags transmit and
// hands the engine a closed-form aggregate for the parked rest. That is what
// turns the tag stage's cost from O(all tags) into O(transmitting tags):
// the engine synthesizes waveforms only for the tags the plan names.
//
// PlanSubframe is called exactly once per subframe, in subframe order, on
// the coordinating goroutine (also under RunParallel) — a bank may keep
// per-tag state machines and draw from its own RNG streams and remains
// deterministic. The returned index lists must be deterministic for a given
// call sequence and must not alias bank-internal storage that later calls
// mutate before the subframe is merged.
type TagBank interface {
	PlanSubframe(n int, burst bool) BankPlan
}

// ScalarGain reports whether stage s reduces to a single complex
// amplitude multiply — i.e. applying it to any waveform equals scaling the
// waveform by the returned coefficient — and returns that coefficient.
// Identity/nil stages are scalar with gain 1; fixed gains, fading-free hops
// and chains of scalar stages compose by multiplication. Multipath,
// fading tracks and opaque PathFuncs are not scalar.
//
// The fleet bank uses this to decide, per tag, between the closed-form
// parked-echo aggregate and the per-sample fallback.
func ScalarGain(s PathStage) (complex128, bool) {
	switch v := s.(type) {
	case nil:
		return 1, true
	case gainStage:
		return v.g, true
	case *channel.Hop:
		if v.Fading == nil {
			return v.Gain(), true
		}
	case chainStage:
		g := complex(1, 0)
		for _, c := range v {
			cg, ok := ScalarGain(c)
			if !ok {
				return 0, false
			}
			g *= cg
		}
		return g, true
	}
	return 0, false
}
