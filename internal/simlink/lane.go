package simlink

import (
	"lscatter/internal/fxp"
)

// Lane selects the sample representation the Session's per-sample hot path
// runs in. The float lane (complex128 end to end) is the conformance
// reference; the fixed-point lane carries Q1.15 block-scaled buffers from
// the tag's reflection through the channel, noise and impairments into the
// scatter demodulator's front end, and is what the real-time-factor targets
// in docs/PERFORMANCE.md are measured on.
type Lane int

const (
	// LaneFloat runs the chain on complex128 samples (the default and the
	// conformance reference).
	LaneFloat Lane = iota
	// LaneFixedPoint runs the per-sample chain on Q1.15 SoA buffers. The
	// stages draw the same RNG streams in the same order as the float lane,
	// so the two lanes are sample-comparable; the dual-lane differential
	// tests pin the BER gap within the documented error budget.
	LaneFixedPoint
)

// FxpStage is optionally implemented by PathStages with a native
// fixed-point path. Stages that do not implement it still work in the
// fixed-point lane through a convert/reconvert bridge (at float-lane cost
// for that stage).
type FxpStage interface {
	ApplyFxp(x *fxp.Buf) *fxp.Buf
}

// applyStageFxp runs one PathStage on a Q1.15 block: natively when the
// stage implements FxpStage, otherwise by bridging through its float path.
func applyStageFxp(s PathStage, x *fxp.Buf) *fxp.Buf {
	if fs, ok := s.(FxpStage); ok {
		return fs.ApplyFxp(x)
	}
	return fxp.FromComplex(s.Apply(x.ToComplex(nil)))
}

// ApplyFxp applies the chained stages left to right in the fixed-point
// lane, bridging any stage without a native path.
func (c chainStage) ApplyFxp(x *fxp.Buf) *fxp.Buf {
	for _, s := range c {
		x = applyStageFxp(s, x)
	}
	return x
}

// ApplyFxp absorbs a pure positive real gain into the block scale — a
// zero-cost view, no sample touched. Complex or negative gains fall back to
// a copy-and-rotate.
func (s gainStage) ApplyFxp(x *fxp.Buf) *fxp.Buf {
	if imag(s.g) == 0 && real(s.g) > 0 {
		return x.ScaledView(real(s.g))
	}
	out := fxp.New(x.Len())
	out.CopyFrom(x)
	if s.g == 0 {
		for i := range out.I {
			out.I[i], out.Q[i] = 0, 0
		}
		return out
	}
	out.Rotate(s.g)
	return out
}
