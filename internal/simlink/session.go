package simlink

import (
	"lscatter/internal/channel"
	"lscatter/internal/enodeb"
	"lscatter/internal/fxp"
	"lscatter/internal/impair"
	"lscatter/internal/tag"
	"lscatter/internal/ue"
)

// Tag is one backscatter device in a Session: the modulator plus everything
// that decides what it reflects each subframe.
type Tag struct {
	// Mod is the device's phase modulator (required).
	Mod *tag.Modulator
	// Path is the tag→UE propagation applied to the reflection (often
	// Chain(eNodeBToTagHop, tagToUEHop)); nil passes the reflection through
	// unchanged.
	Path PathStage
	// Feed, when set, is called once per owned subframe before modulation to
	// queue payload bits — the streaming alternative to queueing everything
	// up front. n is the session-relative subframe count.
	Feed func(n int, m *tag.Modulator)
	// Jitter, when set, injects per-burst timing wander: at each burst
	// opening the modulator's residual timing error is re-drawn as the
	// static calibration base plus Jitter.Next() (the tag re-synchronizes on
	// each burst-opening PSS, so the wander holds across a burst's
	// subframes — which is also what the UE's per-burst offset acquisition
	// can absorb).
	Jitter *impair.TimingJitter
	// Park controls what the tag reflects in subframes it does not own:
	// true contributes the parked-switch echo (Modulator.ParkedSubframe),
	// false contributes nothing at all.
	Park bool

	baseTiming int
	baseSet    bool
}

// base returns the tag's static residual timing error, captured on first use
// so burst jitter wanders around the calibration point.
func (t *Tag) base() int {
	if !t.baseSet {
		t.baseTiming = t.Mod.TimingError()
		t.baseSet = true
	}
	return t.baseTiming
}

// Frame is one subframe's trip through the chain, handed to the Sink.
type Frame struct {
	// N is the session-relative subframe count, starting at 0.
	N int
	// Subframe is the Source's output (index, grid, ambient samples,
	// transport-block payload).
	Subframe *enodeb.Subframe
	// Burst reports whether this subframe opens a backscatter burst.
	Burst bool
	// Owner is the index (into Session.Tags) of the tag scheduled to
	// modulate this subframe; -1 when the session has no tags.
	Owner int
	// Records lists what the owning tag embedded into each OFDM symbol
	// (nil when the session has no tags).
	Records []tag.SymbolRecord
	// RX is the waveform at the receiver: all paths combined, noise and
	// impairments applied, carrier tracking (if any) removed. With no
	// channel.Link configured it aliases the ambient samples directly.
	// Always populated, in both lanes.
	RX []complex128
	// RXFxp is the receiver waveform in Q1.15 form, populated only by
	// fixed-point-lane sessions (and cleared when the carrier tracker — a
	// float stage — rewrites RX). Sinks that know the fixed-point front end
	// (DemodSink) consume it; everything else reads RX.
	RXFxp *fxp.Buf
	// Start is the absolute sample position of this subframe in the
	// receiver's stream (the phase anchor for CFO correction and the
	// scatter demodulator).
	Start int
	// Reacquired reports that the carrier-recovery loop lost lock on this
	// subframe and snapped to a new estimate; decision-feedback state that
	// predates the snap (burst sync, channel estimate) is stale.
	Reacquired bool
}

// Sink consumes the received stream. The returned advance flag controls the
// session's stream-position counter: true (the normal case) advances Start
// past this subframe; false holds it (a conformance quirk of the legacy core
// chain, which kept its sample counter frozen across LTE receiver errors —
// see DemodSink.HoldOnLTEError).
type Sink interface {
	Consume(f *Frame) (advance bool)
}

// SinkFunc adapts a plain function to a Sink.
type SinkFunc func(f *Frame) bool

// Consume implements Sink.
func (fn SinkFunc) Consume(f *Frame) bool { return fn(f) }

// Taps observe intermediate waveforms without perturbing the chain. Each tap
// may be nil. Tapped slices are owned by the pipeline: copy before retaining
// past the callback.
type Taps struct {
	// Ambient sees the Source's transmit waveform each subframe.
	Ambient func(f *Frame, x []complex128)
	// Reflected sees each modulating/parked tag's raw reflection (before
	// its Path is applied). tagIdx indexes Session.Tags.
	Reflected func(f *Frame, tagIdx int, x []complex128)
}

// Session wires stages into a runnable end-to-end chain and advances it
// subframe by subframe. The zero value is not usable: Source is required,
// everything else is optional (a Session with only a Source and a Sink is a
// transparent monitor of the downlink).
//
// A Session is single-stream sequential state and is not safe for concurrent
// use; run concurrent scenarios on distinct Sessions (stages included).
type Session struct {
	// Source produces the ambient excitation (required).
	Source Source
	// Direct is the eNodeB→UE direct path; nil omits the direct path from
	// the combine (a receiver in the tag's shadow).
	Direct PathStage
	// Tags are the backscatter devices sharing the excitation.
	Tags []*Tag
	// Owner schedules TDMA ownership: it maps the session-relative subframe
	// count to the index of the tag that modulates. Nil means tag 0 owns
	// every subframe.
	Owner func(n int) int
	// Link is the receiver front end: it combines the arriving paths, adds
	// thermal noise and applies the impairment pipeline. Nil short-circuits
	// the receiver — RX aliases the ambient waveform untouched (for
	// tag-side consumers like the sync circuit, and for taps-only
	// sessions).
	Link *channel.Link
	// Tracker is the optional closed carrier-recovery loop applied to the
	// combined stream before the Sink.
	Tracker *ue.CFOTracker
	// Sink consumes each received Frame; nil discards the stream (the taps
	// still fire).
	Sink Sink
	// Taps optionally observe intermediate waveforms.
	Taps Taps
	// Lane selects the sample representation of the per-sample chain:
	// LaneFloat (default) is the complex128 conformance reference,
	// LaneFixedPoint runs tag reflection, paths, combine, noise and
	// impairments on Q1.15 buffers (same RNG streams, same draw order). See
	// docs/PERFORMANCE.md for when each lane is the right choice.
	Lane Lane

	n     int
	start int
}

// Subframes returns how many subframes the session has advanced.
func (s *Session) Subframes() int { return s.n }

// StartSample returns the receiver stream position (see Frame.Start).
func (s *Session) StartSample() int { return s.start }

// Step advances the chain by one subframe and returns the consumed Frame.
func (s *Session) Step() *Frame {
	if s.Lane == LaneFixedPoint {
		return s.stepFxp()
	}
	sf := s.Source.NextSubframe()
	f := &Frame{
		N:        s.n,
		Subframe: sf,
		Burst:    IsBurstSubframe(sf.Index),
		Owner:    -1,
		Start:    s.start,
	}
	s.n++
	if len(s.Tags) > 0 {
		f.Owner = 0
		if s.Owner != nil {
			f.Owner = s.Owner(f.N)
		}
	}
	if s.Taps.Ambient != nil {
		s.Taps.Ambient(f, sf.Samples)
	}

	// Tag bank: the scheduled owner modulates, parked tags echo weakly.
	// Paths are assembled in a fixed order — direct first, then tags in
	// index order — so the float summation order in the combine is stable.
	var paths [][]complex128
	if s.Direct != nil {
		paths = append(paths, s.Direct.Apply(sf.Samples))
	}
	for i, t := range s.Tags {
		var refl []complex128
		switch {
		case i == f.Owner:
			if t.Feed != nil {
				t.Feed(f.N, t.Mod)
			}
			if t.Jitter != nil && f.Burst {
				t.Mod.SetTimingError(t.base() + t.Jitter.Next())
			}
			var recs []tag.SymbolRecord
			refl, recs = t.Mod.ModulateSubframe(sf.Samples, sf.Index, f.Burst)
			f.Records = recs
		case t.Park:
			refl = t.Mod.ParkedSubframe(sf.Samples)
		default:
			continue
		}
		if s.Taps.Reflected != nil {
			s.Taps.Reflected(f, i, refl)
		}
		if t.Path != nil {
			refl = t.Path.Apply(refl)
		}
		paths = append(paths, refl)
	}

	if s.Link != nil {
		f.RX = s.Link.Receive(paths...)
	} else {
		f.RX = sf.Samples
	}
	if s.Tracker != nil {
		f.RX, f.Reacquired = s.Tracker.Process(f.RX, f.Start)
	}

	advance := true
	if s.Sink != nil {
		advance = s.Sink.Consume(f)
	}
	if advance {
		s.start += len(sf.Samples)
	}
	return f
}

// stepFxp is the fixed-point lane of Step. The stage order, the RNG draw
// order and the Frame contract are identical to the float path; the
// per-sample work runs on Q1.15 buffers. The ambient excitation is
// quantized once per subframe at its natural block scale and shared
// (read-only) by every tag; the carrier tracker, when present, is a float
// stage — the received block is materialized for it and RXFxp is cleared,
// since its output no longer corresponds to a Q1.15 block.
func (s *Session) stepFxp() *Frame {
	sf := s.Source.NextSubframe()
	f := &Frame{
		N:        s.n,
		Subframe: sf,
		Burst:    IsBurstSubframe(sf.Index),
		Owner:    -1,
		Start:    s.start,
	}
	s.n++
	if len(s.Tags) > 0 {
		f.Owner = 0
		if s.Owner != nil {
			f.Owner = s.Owner(f.N)
		}
	}
	if s.Taps.Ambient != nil {
		s.Taps.Ambient(f, sf.Samples)
	}

	amb := fxp.FromComplex(sf.Samples)
	var paths []*fxp.Buf
	if s.Direct != nil {
		paths = append(paths, applyStageFxp(s.Direct, amb))
	}
	for i, t := range s.Tags {
		var refl *fxp.Buf
		switch {
		case i == f.Owner:
			if t.Feed != nil {
				t.Feed(f.N, t.Mod)
			}
			if t.Jitter != nil && f.Burst {
				t.Mod.SetTimingError(t.base() + t.Jitter.Next())
			}
			var recs []tag.SymbolRecord
			refl, recs = t.Mod.ModulateSubframeFxp(amb, sf.Index, f.Burst)
			f.Records = recs
		case t.Park:
			refl = t.Mod.ParkedSubframeFxp(amb)
		default:
			continue
		}
		if s.Taps.Reflected != nil {
			s.Taps.Reflected(f, i, refl.ToComplex(nil))
		}
		if t.Path != nil {
			refl = applyStageFxp(t.Path, refl)
		}
		paths = append(paths, refl)
	}

	if s.Link != nil {
		f.RXFxp = s.Link.ReceiveFxp(paths...)
		f.RX = f.RXFxp.ToComplex(nil)
	} else {
		f.RX = sf.Samples
	}
	if s.Tracker != nil {
		f.RX, f.Reacquired = s.Tracker.Process(f.RX, f.Start)
		f.RXFxp = nil
	}

	advance := true
	if s.Sink != nil {
		advance = s.Sink.Consume(f)
	}
	if advance {
		s.start += len(sf.Samples)
	}
	return f
}

// Run advances the chain n subframes.
func (s *Session) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// RunUntil advances the chain until done reports true or max subframes have
// been consumed, whichever comes first, and returns the number of subframes
// advanced. done is checked before each step.
func (s *Session) RunUntil(max int, done func() bool) int {
	ran := 0
	for ; ran < max && !done(); ran++ {
		s.Step()
	}
	return ran
}
