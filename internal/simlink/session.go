package simlink

import (
	"lscatter/internal/channel"
	"lscatter/internal/enodeb"
	"lscatter/internal/fxp"
	"lscatter/internal/impair"
	"lscatter/internal/tag"
	"lscatter/internal/ue"
)

// Tag is one backscatter device in a Session: the modulator plus everything
// that decides what it reflects each subframe.
type Tag struct {
	// Mod is the device's phase modulator (required).
	Mod *tag.Modulator
	// Path is the tag→UE propagation applied to the reflection (often
	// Chain(eNodeBToTagHop, tagToUEHop)); nil passes the reflection through
	// unchanged.
	Path PathStage
	// Feed, when set, is called once per owned subframe before modulation to
	// queue payload bits — the streaming alternative to queueing everything
	// up front. n is the session-relative subframe count.
	Feed func(n int, m *tag.Modulator)
	// Jitter, when set, injects per-burst timing wander: at each burst
	// opening the modulator's residual timing error is re-drawn as the
	// static calibration base plus Jitter.Next() (the tag re-synchronizes on
	// each burst-opening PSS, so the wander holds across a burst's
	// subframes — which is also what the UE's per-burst offset acquisition
	// can absorb).
	Jitter *impair.TimingJitter
	// Park controls what the tag reflects in subframes it does not own:
	// true contributes the parked-switch echo (Modulator.ParkedSubframe),
	// false contributes nothing at all.
	Park bool

	baseTiming int
	baseSet    bool
}

// base returns the tag's static residual timing error, captured on first use
// so burst jitter wanders around the calibration point.
func (t *Tag) base() int {
	if !t.baseSet {
		t.baseTiming = t.Mod.TimingError()
		t.baseSet = true
	}
	return t.baseTiming
}

// Frame is one subframe's trip through the chain, handed to the Sink.
type Frame struct {
	// N is the session-relative subframe count, starting at 0.
	N int
	// Subframe is the Source's output (index, grid, ambient samples,
	// transport-block payload).
	Subframe *enodeb.Subframe
	// Burst reports whether this subframe opens a backscatter burst.
	Burst bool
	// Owner is the index (into Session.Tags) of the tag scheduled to
	// modulate this subframe; -1 when the session has no tags.
	Owner int
	// Records lists what the owning tag embedded into each OFDM symbol
	// (nil when the session has no tags).
	Records []tag.SymbolRecord
	// RX is the waveform at the receiver: all paths combined, noise and
	// impairments applied, carrier tracking (if any) removed. With no
	// channel.Link configured it aliases the ambient samples directly.
	// Always populated, in both lanes.
	RX []complex128
	// RXFxp is the receiver waveform in Q1.15 form, populated only by
	// fixed-point-lane sessions (and cleared when the carrier tracker — a
	// float stage — rewrites RX). Sinks that know the fixed-point front end
	// (DemodSink) consume it; everything else reads RX.
	RXFxp *fxp.Buf
	// Start is the absolute sample position of this subframe in the
	// receiver's stream (the phase anchor for CFO correction and the
	// scatter demodulator).
	Start int
	// Reacquired reports that the carrier-recovery loop lost lock on this
	// subframe and snapped to a new estimate; decision-feedback state that
	// predates the snap (burst sync, channel estimate) is stale.
	Reacquired bool
}

// Sink consumes the received stream. The returned advance flag controls the
// session's stream-position counter: true (the normal case) advances Start
// past this subframe; false holds it (a conformance quirk of the legacy core
// chain, which kept its sample counter frozen across LTE receiver errors —
// see DemodSink.HoldOnLTEError).
type Sink interface {
	Consume(f *Frame) (advance bool)
}

// SinkFunc adapts a plain function to a Sink.
type SinkFunc func(f *Frame) bool

// Consume implements Sink.
func (fn SinkFunc) Consume(f *Frame) bool { return fn(f) }

// Taps observe intermediate waveforms without perturbing the chain. Each tap
// may be nil. Tapped slices are owned by the pipeline: copy before retaining
// past the callback.
type Taps struct {
	// Ambient sees the Source's transmit waveform each subframe.
	Ambient func(f *Frame, x []complex128)
	// Reflected sees each modulating/parked tag's raw reflection (before
	// its Path is applied). tagIdx indexes Session.Tags.
	Reflected func(f *Frame, tagIdx int, x []complex128)
}

// Session wires stages into a runnable end-to-end chain and advances it
// subframe by subframe. The zero value is not usable: Source is required,
// everything else is optional (a Session with only a Source and a Sink is a
// transparent monitor of the downlink).
//
// A Session is single-stream sequential state and is not safe for concurrent
// use; run concurrent scenarios on distinct Sessions (stages included).
type Session struct {
	// Source produces the ambient excitation (required).
	Source Source
	// Direct is the eNodeB→UE direct path; nil omits the direct path from
	// the combine (a receiver in the tag's shadow).
	Direct PathStage
	// Tags are the backscatter devices sharing the excitation.
	Tags []*Tag
	// Owner schedules TDMA ownership: it maps the session-relative subframe
	// count to the index of the tag that modulates. Nil means tag 0 owns
	// every subframe.
	Owner func(n int) int
	// Link is the receiver front end: it combines the arriving paths, adds
	// thermal noise and applies the impairment pipeline. Nil short-circuits
	// the receiver — RX aliases the ambient waveform untouched (for
	// tag-side consumers like the sync circuit, and for taps-only
	// sessions).
	Link *channel.Link
	// Tracker is the optional closed carrier-recovery loop applied to the
	// combined stream before the Sink.
	Tracker *ue.CFOTracker
	// Sink consumes each received Frame; nil discards the stream (the taps
	// still fire).
	Sink Sink
	// Taps optionally observe intermediate waveforms.
	Taps Taps
	// Lane selects the sample representation of the per-sample chain:
	// LaneFloat (default) is the complex128 conformance reference,
	// LaneFixedPoint runs tag reflection, paths, combine, noise and
	// impairments on Q1.15 buffers (same RNG streams, same draw order). See
	// docs/PERFORMANCE.md for when each lane is the right choice.
	Lane Lane
	// Bank, when set, replaces the built-in TDMA tag stage with an external
	// fleet scheduler: it decides per subframe which tags transmit (and are
	// full-simulated) and hands the engine a closed-form coefficient for
	// the parked rest, making the tag stage O(transmitting tags) instead of
	// O(all tags). Owner and each Tag's Park flag are ignored while a Bank
	// is installed. internal/fleet provides the implementation; see
	// docs/FLEET.md.
	Bank TagBank

	n     int
	start int

	// Cached pure/stateful path splits (see parallel.go). A Session's stage
	// wiring is fixed after construction, so they are computed once on
	// first Step/RunParallel.
	prepared   bool
	directPure PathStage
	directRest PathStage
	tagPure    []PathStage
	tagRest    []PathStage
}

// prepare caches the parallel-safe/stateful split of the direct and per-tag
// paths. Wiring (Direct, Tags and their Paths) must not change once the
// session has started stepping — which the "single-stream sequential state"
// contract already implies.
func (s *Session) prepare() {
	if s.prepared {
		return
	}
	s.directPure, s.directRest = splitPath(s.Direct)
	s.tagPure = make([]PathStage, len(s.Tags))
	s.tagRest = make([]PathStage, len(s.Tags))
	for i, t := range s.Tags {
		s.tagPure[i], s.tagRest[i] = splitPath(t.Path)
	}
	s.prepared = true
}

// Subframes returns how many subframes the session has advanced.
func (s *Session) Subframes() int { return s.n }

// StartSample returns the receiver stream position (see Frame.Start).
func (s *Session) StartSample() int { return s.start }

// Step advances the chain by one subframe and returns the consumed Frame.
// Both lanes run the same three phases the subframe-parallel runner uses —
// stateful planning, pure per-sample work, stateful merge (see parallel.go)
// — so there is exactly one owner/park dispatch loop in the engine and the
// sequential and parallel paths cannot drift apart.
func (s *Session) Step() *Frame {
	s.prepare()
	j := s.planJob()
	s.workJob(j, s.directPure, s.tagPure)
	s.mergeJob(j, s.directRest, s.tagRest)
	return j.f
}

// Run advances the chain n subframes.
func (s *Session) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// RunUntil advances the chain until done reports true or max subframes have
// been consumed, whichever comes first, and returns the number of subframes
// advanced. done is checked before each step.
func (s *Session) RunUntil(max int, done func() bool) int {
	ran := 0
	for ; ran < max && !done(); ran++ {
		s.Step()
	}
	return ran
}
