package simlink

import (
	"sort"
	"sync"

	"lscatter/internal/channel"
	"lscatter/internal/enodeb"
	"lscatter/internal/fxp"
	"lscatter/internal/tag"
)

// Subframe-parallel execution.
//
// A Session's chain has a sharp pure/stateful split. Stateful work — the
// Source's subframe generator, the tags' bit queues and jitter draws, fading
// tracks, receiver noise, impairments, carrier tracking, the Sink — must run
// in subframe order to keep the determinism contract. But the bulk of the
// per-sample cost (tag waveform application, hop rotations, multipath
// convolution, fixed gains) is a pure function of one subframe's inputs.
// RunParallel exploits that: a coordinator performs all stateful planning in
// order, workers fan the pure per-sample work out across subframes, and an
// ordered merge performs the stateful tail — so the RNG streams are consumed
// in exactly the per-subframe order Run would use and the results are
// bit-identical at any worker count.
//
// Stages are classified conservatively: a stage is parallel-safe only when
// it is one of the known pure types (a Hop without fading, a Multipath, a
// fixed gain, a Chain of those). Everything else — including any PathFunc,
// whose body the engine cannot inspect — runs at the merge point. A Chain is
// split at its first stateful stage: the pure prefix runs on workers, the
// remainder in order.

// stagePure reports whether s is one of the known pure (draw-free,
// state-free) stage types.
func stagePure(s PathStage) bool {
	switch v := s.(type) {
	case *channel.Hop:
		return v.Fading == nil
	case *channel.Multipath:
		return true
	case gainStage:
		return true
	case chainStage:
		for _, c := range v {
			if !stagePure(c) {
				return false
			}
		}
		return true
	}
	return false
}

// splitPath splits a path into a parallel-safe prefix and an in-order
// remainder (either may be nil).
func splitPath(s PathStage) (pure, rest PathStage) {
	if s == nil {
		return nil, nil
	}
	if stagePure(s) {
		return s, nil
	}
	if c, ok := s.(chainStage); ok {
		i := 0
		for i < len(c) && stagePure(c[i]) {
			i++
		}
		if i == 0 {
			return nil, c
		}
		return c[:i], c[i:]
	}
	return nil, s
}

// pwave is one propagation product in whichever lane the session runs.
type pwave struct {
	f []complex128
	x *fxp.Buf
}

func (w pwave) applyRest(rest PathStage, lane Lane) pwave {
	if rest == nil {
		return w
	}
	if lane == LaneFixedPoint {
		return pwave{x: applyStageFxp(rest, w.x)}
	}
	return pwave{f: rest.Apply(w.f)}
}

// contribKind says how one entry of a job's contribution list turns into a
// propagation path.
type contribKind uint8

const (
	// contribOwner is the scheduled transmitter: it modulates payload and
	// its symbol records land on the Frame.
	contribOwner contribKind = iota
	// contribInterferer is an additional concurrent transmitter named by a
	// TagBank (a capture loser): modulated per sample, records dropped.
	contribInterferer
	// contribParked is a per-sample parked-switch echo.
	contribParked
	// contribAggregate is the closed-form parked remainder: one
	// ambient*scale path standing in for every analytically-advanced tag.
	contribAggregate
)

// plContrib is one tag's reflection within a job (or, for contribAggregate,
// the whole parked remainder's).
type plContrib struct {
	tagIdx int
	kind   contribKind
	scale  complex128 // contribAggregate only
	plan   tag.Plan   // contribOwner / contribInterferer only
	raw    pwave      // reflection before the tag's path (kept for the tap)
	out    pwave      // reflection after the parallel-safe path prefix
}

// modulates reports whether the contribution runs the tag's modulator.
func (c *plContrib) modulates() bool {
	return c.kind == contribOwner || c.kind == contribInterferer
}

// plJob is one subframe in flight: planned in order, worked on by any
// worker, merged in order. done is non-nil only under RunParallel.
type plJob struct {
	f        *Frame
	sf       *enodeb.Subframe
	contribs []plContrib
	direct   pwave
	done     chan struct{}
}

// planTag performs the stateful per-tag front half for one transmitting tag
// — payload feed, per-burst jitter draw, modulation planning — and appends
// its contribution. Owner records land on the Frame.
func (s *Session) planTag(j *plJob, f *Frame, i int, kind contribKind) {
	t := s.Tags[i]
	if t.Feed != nil {
		t.Feed(f.N, t.Mod)
	}
	if t.Jitter != nil && f.Burst {
		t.Mod.SetTimingError(t.base() + t.Jitter.Next())
	}
	pl := t.Mod.PlanSubframe(j.sf.Index, f.Burst)
	if kind == contribOwner {
		f.Records = pl.Records
	}
	j.contribs = append(j.contribs, plContrib{tagIdx: i, kind: kind, plan: pl})
}

// planJob performs the stateful front half of Step for one subframe: source
// advance, ownership (built-in TDMA or the pluggable TagBank), payload feed,
// jitter draw, modulation planning. It is the single owner/park dispatch
// point shared by Run, RunParallel and the fleet bank.
func (s *Session) planJob() *plJob {
	sf := s.Source.NextSubframe()
	f := &Frame{
		N:        s.n,
		Subframe: sf,
		Burst:    IsBurstSubframe(sf.Index),
		Owner:    -1,
	}
	s.n++
	j := &plJob{f: f, sf: sf}

	if s.Bank != nil {
		bp := s.Bank.PlanSubframe(f.N, f.Burst)
		f.Owner = bp.Owner
		if bp.Owner >= 0 {
			s.planTag(j, f, bp.Owner, contribOwner)
		}
		for _, i := range bp.Interferers {
			s.planTag(j, f, i, contribInterferer)
		}
		for _, i := range bp.ParkFull {
			j.contribs = append(j.contribs, plContrib{tagIdx: i, kind: contribParked})
		}
		// Per-tag contributions combine in tag-index order — the same
		// order the built-in stage uses — so a bank that full-simulates a
		// subset produces the built-in stage's float summation exactly.
		// The closed-form aggregate, standing in for every remaining
		// parked tag, sums last.
		sort.Slice(j.contribs, func(a, b int) bool {
			return j.contribs[a].tagIdx < j.contribs[b].tagIdx
		})
		if bp.ParkScale != 0 {
			j.contribs = append(j.contribs, plContrib{tagIdx: -1, kind: contribAggregate, scale: bp.ParkScale})
		}
		return j
	}

	if len(s.Tags) > 0 {
		f.Owner = 0
		if s.Owner != nil {
			f.Owner = s.Owner(f.N)
		}
	}
	for i, t := range s.Tags {
		switch {
		case i == f.Owner:
			s.planTag(j, f, i, contribOwner)
		case t.Park:
			j.contribs = append(j.contribs, plContrib{tagIdx: i, kind: contribParked})
		}
	}
	return j
}

// workJob performs the pure middle of Step: waveform application and the
// parallel-safe path prefixes. Safe to run concurrently across jobs — it
// reads only construction-time state and the job's own inputs.
func (s *Session) workJob(j *plJob, directPure PathStage, tagPure []PathStage) {
	keepRaw := s.Taps.Reflected != nil
	if s.Lane == LaneFixedPoint {
		amb := fxp.FromComplex(j.sf.Samples)
		if s.Direct != nil {
			d := amb
			if directPure != nil {
				d = applyStageFxp(directPure, d)
			}
			j.direct = pwave{x: d}
		}
		for k := range j.contribs {
			c := &j.contribs[k]
			if c.kind == contribAggregate {
				c.out = pwave{x: gainStage{g: c.scale}.ApplyFxp(amb)}
				continue
			}
			t := s.Tags[c.tagIdx]
			var refl *fxp.Buf
			if c.modulates() {
				refl = t.Mod.ApplyPlanFxp(amb, c.plan)
			} else {
				refl = t.Mod.ParkedSubframeFxp(amb)
			}
			if keepRaw {
				c.raw = pwave{x: refl}
			}
			if p := tagPure[c.tagIdx]; p != nil {
				refl = applyStageFxp(p, refl)
			}
			c.out = pwave{x: refl}
		}
		return
	}
	if s.Direct != nil {
		d := j.sf.Samples
		if directPure != nil {
			d = directPure.Apply(d)
		}
		j.direct = pwave{f: d}
	}
	for k := range j.contribs {
		c := &j.contribs[k]
		if c.kind == contribAggregate {
			c.out = pwave{f: gainStage{g: c.scale}.Apply(j.sf.Samples)}
			continue
		}
		t := s.Tags[c.tagIdx]
		var refl []complex128
		if c.modulates() {
			refl = t.Mod.ApplyPlan(j.sf.Samples, c.plan)
		} else {
			refl = t.Mod.ParkedSubframe(j.sf.Samples)
		}
		if keepRaw {
			c.raw = pwave{f: refl}
		}
		if p := tagPure[c.tagIdx]; p != nil {
			refl = p.Apply(refl)
		}
		c.out = pwave{f: refl}
	}
}

// mergeJob performs the stateful back half of Step, strictly in subframe
// order: taps, the in-order path remainders, the receiver, tracking, the
// Sink, and the stream-position advance.
func (s *Session) mergeJob(j *plJob, directRest PathStage, tagRest []PathStage) {
	f := j.f
	f.Start = s.start
	if s.Taps.Ambient != nil {
		s.Taps.Ambient(f, j.sf.Samples)
	}
	fixedPoint := s.Lane == LaneFixedPoint
	var paths []pwave
	if s.Direct != nil {
		paths = append(paths, j.direct.applyRest(directRest, s.Lane))
	}
	for k := range j.contribs {
		c := &j.contribs[k]
		if c.kind == contribAggregate {
			// The analytic parked remainder belongs to no single tag: its
			// path gains are already folded into the scale, and the
			// per-tag Reflected tap does not see it.
			paths = append(paths, c.out)
			continue
		}
		if s.Taps.Reflected != nil {
			raw := c.raw.f
			if fixedPoint {
				raw = c.raw.x.ToComplex(nil)
			}
			s.Taps.Reflected(f, c.tagIdx, raw)
		}
		paths = append(paths, c.out.applyRest(tagRest[c.tagIdx], s.Lane))
	}

	if s.Link != nil {
		if fixedPoint {
			px := make([]*fxp.Buf, len(paths))
			for i := range paths {
				px[i] = paths[i].x
			}
			f.RXFxp = s.Link.ReceiveFxp(px...)
			f.RX = f.RXFxp.ToComplex(nil)
		} else {
			pf := make([][]complex128, len(paths))
			for i := range paths {
				pf[i] = paths[i].f
			}
			f.RX = s.Link.Receive(pf...)
		}
	} else {
		f.RX = j.sf.Samples
	}
	if s.Tracker != nil {
		f.RX, f.Reacquired = s.Tracker.Process(f.RX, f.Start)
		f.RXFxp = nil
	}

	advance := true
	if s.Sink != nil {
		advance = s.Sink.Consume(f)
	}
	if advance {
		s.start += len(j.sf.Samples)
	}
}

// RunParallel advances the chain n subframes with the pure per-sample work
// fanned out across the given number of workers. Results are bit-identical
// to Run(n) at any worker count: all stateful stages and every RNG draw
// happen in subframe order on the coordinating goroutine. workers <= 1
// degrades to the sequential Run. The number of subframes in flight is
// bounded (2*workers), so memory stays O(workers) subframes.
func (s *Session) RunParallel(n, workers int) {
	if workers <= 1 {
		s.Run(n)
		return
	}
	s.prepare()
	directPure, directRest := s.directPure, s.directRest
	tagPure, tagRest := s.tagPure, s.tagRest

	jobs := make(chan *plJob, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				s.workJob(j, directPure, tagPure)
				close(j.done)
			}
		}()
	}

	var inflight []*plJob
	flush := func(j *plJob) {
		<-j.done
		s.mergeJob(j, directRest, tagRest)
	}
	for i := 0; i < n; i++ {
		j := s.planJob()
		j.done = make(chan struct{})
		jobs <- j
		inflight = append(inflight, j)
		if len(inflight) >= 2*workers {
			flush(inflight[0])
			inflight = inflight[1:]
		}
	}
	close(jobs)
	for _, j := range inflight {
		flush(j)
	}
	wg.Wait()
}
