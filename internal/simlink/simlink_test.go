package simlink

import (
	"math"
	"sync"
	"testing"

	"lscatter/internal/channel"
	"lscatter/internal/enodeb"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
	"lscatter/internal/tag"
	"lscatter/internal/ue"
)

func TestIsBurstSubframe(t *testing.T) {
	for idx := 0; idx < ltephy.SubframesPerFrame; idx++ {
		want := idx == 0 || idx == 5
		if got := IsBurstSubframe(idx); got != want {
			t.Fatalf("IsBurstSubframe(%d) = %v, want %v", idx, got, want)
		}
	}
}

func TestGainDBAmplitude(t *testing.T) {
	in := []complex128{1, 2i, -3}
	out := GainDB(-20).Apply(in)
	g := math.Pow(10, -20.0/20)
	for i, v := range in {
		want := v * complex(g, 0)
		if out[i] != want {
			t.Fatalf("sample %d: %v, want %v", i, out[i], want)
		}
	}
	if &out[0] == &in[0] {
		t.Fatal("GainDB must not write in place")
	}
}

func TestChainComposesLeftToRight(t *testing.T) {
	var order []string
	mk := func(name string) PathStage {
		return PathFunc(func(x []complex128) []complex128 {
			order = append(order, name)
			return x
		})
	}
	Chain(nil, mk("a"), nil, mk("b")).Apply([]complex128{1})
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("stage order %v, want [a b]", order)
	}
	// Chain() and Identity both pass the slice through untouched.
	in := []complex128{1, 2}
	if got := Chain().Apply(in); &got[0] != &in[0] {
		t.Fatal("empty Chain must be the identity")
	}
	if got := Identity.Apply(in); &got[0] != &in[0] {
		t.Fatal("Identity must not copy")
	}
}

func TestSessionWithoutLinkAliasesAmbient(t *testing.T) {
	enb := enodeb.New(enodeb.DefaultConfig(ltephy.BW1_4))
	var seen *Frame
	sess := &Session{Source: enb, Sink: SinkFunc(func(f *Frame) bool {
		seen = f
		return true
	})}
	sess.Run(1)
	if seen == nil {
		t.Fatal("sink never ran")
	}
	if &seen.RX[0] != &seen.Subframe.Samples[0] {
		t.Fatal("with no Link, RX must alias the ambient samples")
	}
	if seen.Owner != -1 {
		t.Fatalf("tagless frame owner = %d, want -1", seen.Owner)
	}
}

func TestSessionOwnershipAndPark(t *testing.T) {
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	enb := enodeb.New(cfg)
	p := cfg.Params
	r := rng.New(11)
	mods := []*tag.Modulator{
		tag.NewModulator(tag.ModConfig{Params: p, ID: 1}),
		tag.NewModulator(tag.ModConfig{Params: p, ID: 2}),
	}
	for _, m := range mods {
		m.QueueBits(r.Bits(make([]byte, 40*m.PerSymbolBits())))
	}
	reflections := map[int]int{} // tagIdx -> times its reflection entered the combine
	var owners []int
	sess := &Session{
		Source: enb,
		Tags: []*Tag{
			{Mod: mods[0], Park: true},
			{Mod: mods[1]}, // no park: silent when not scheduled
		},
		Owner: func(n int) int { return n % 2 },
		Link:  channel.NewLink(r.Fork(1), 0),
		Taps: Taps{Reflected: func(_ *Frame, tagIdx int, _ []complex128) {
			reflections[tagIdx]++
		}},
		Sink: SinkFunc(func(f *Frame) bool {
			owners = append(owners, f.Owner)
			if len(f.Records) == 0 {
				t.Errorf("subframe %d: owner %d produced no symbol records", f.N, f.Owner)
			}
			return true
		}),
	}
	sess.Run(4)
	for i, o := range owners {
		if o != i%2 {
			t.Fatalf("subframe %d owned by %d, want %d", i, o, i%2)
		}
	}
	// Tag 0 parks when not scheduled (4 reflections); tag 1 only reflects the
	// 2 subframes it owns.
	if reflections[0] != 4 || reflections[1] != 2 {
		t.Fatalf("reflection counts %v, want tag0=4 tag1=2", reflections)
	}
}

func TestSessionAdvanceHold(t *testing.T) {
	enb := enodeb.New(enodeb.DefaultConfig(ltephy.BW1_4))
	hold := true
	sess := &Session{Source: enb, Sink: SinkFunc(func(f *Frame) bool { return !hold })}
	f := sess.Step()
	if sess.StartSample() != 0 {
		t.Fatalf("held step advanced the stream position to %d", sess.StartSample())
	}
	hold = false
	sess.Step()
	if want := len(f.Subframe.Samples); sess.StartSample() != want {
		t.Fatalf("stream position %d after one advanced subframe, want %d", sess.StartSample(), want)
	}
	if sess.Subframes() != 2 {
		t.Fatalf("subframe count %d, want 2", sess.Subframes())
	}
}

func TestRunUntil(t *testing.T) {
	enb := enodeb.New(enodeb.DefaultConfig(ltephy.BW1_4))
	sess := &Session{Source: enb}
	if ran := sess.RunUntil(5, func() bool { return true }); ran != 0 {
		t.Fatalf("done-at-start ran %d subframes", ran)
	}
	n := 0
	sess.Sink = SinkFunc(func(*Frame) bool { n++; return true })
	if ran := sess.RunUntil(5, func() bool { return n >= 2 }); ran != 2 {
		t.Fatalf("ran %d subframes, want 2", ran)
	}
}

func TestBitAccount(t *testing.T) {
	if ber := (BitAccount{}).BER(); ber != 0.5 {
		t.Fatalf("empty-account BER = %v, want 0.5 (coin flip)", ber)
	}
	if ber := (BitAccount{Errs: 1, Total: 4}).BER(); ber != 0.25 {
		t.Fatalf("BER = %v, want 0.25", ber)
	}
	k := &DemodSink{}
	k.Account(0).Errs = 1
	k.Account(0).Total = 3
	k.Account(2).Total = 5
	if tot := k.Totals(); tot.Errs != 1 || tot.Total != 8 {
		t.Fatalf("Totals = %+v, want {1 8}", tot)
	}
}

// testChain builds one small end-to-end configuration; both the Session and
// the hand-rolled reference loop below construct it identically so their RNG
// streams line up draw for draw.
func testChain(seed uint64) (*enodeb.ENodeB, *tag.Modulator, *ue.LTEReceiver, *ue.ScatterDemod, *rng.Source, float64) {
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	cfg.Seed = seed
	enb := enodeb.New(cfg)
	p := cfg.Params
	mod := tag.NewModulator(tag.ModConfig{Params: p, TimingErrorUnits: 2, SampleOffset: 1})
	r := rng.New(seed + 13)
	mod.QueueBits(r.Bits(make([]byte, 4*12*mod.PerSymbolBits())))
	lteRx := ue.NewLTEReceiver(p, cfg.Scheme)
	sc := ue.NewScatterDemod(ue.DefaultScatterConfig(p))
	// 20 dB below the backscatter path's received power: decodes cleanly but
	// with enough noise that every stage (noise draws included) is exercised.
	noiseW := 0.01 * math.Pow(10, -70.0/10) * math.Pow(10, -20.0/10)
	return enb, mod, lteRx, sc, r.Fork(1), noiseW
}

// TestSessionMatchesHandRolledLoop pins the engine against a literal
// transliteration of the loop it replaced: same constructions, same RNG
// streams, compared on the per-bit error pattern, sync state and stream
// position after four subframes.
func TestSessionMatchesHandRolledLoop(t *testing.T) {
	const subframes = 4

	// Engine run.
	enb, mod, lteRx, sc, noiseRng, noiseW := testChain(3)
	sink := &DemodSink{LTE: lteRx, Scatter: sc, RecordPattern: true}
	sess := &Session{
		Source: enb,
		Direct: GainDB(-40),
		Tags:   []*Tag{{Mod: mod, Path: GainDB(-70)}},
		Link:   channel.NewLink(noiseRng, noiseW),
		Sink:   sink,
	}
	sess.Run(subframes)

	// Reference loop.
	enb2, mod2, lteRx2, sc2, noiseRng2, noiseW2 := testChain(3)
	direct, scat := GainDB(-40), GainDB(-70)
	var pattern []bool
	synced := false
	startSample := 0
	for i := 0; i < subframes; i++ {
		sf := enb2.NextSubframe()
		burst := sf.Index == 0 || sf.Index == 5
		reflected, recs := mod2.ModulateSubframe(sf.Samples, sf.Index, burst)
		rx := channel.Combine(noiseRng2, noiseW2, direct.Apply(sf.Samples), scat.Apply(reflected))
		lte, err := lteRx2.ReceiveSubframe(rx, sf.Index)
		if err != nil {
			startSample += len(rx)
			continue
		}
		var res *ue.ScatterResult
		if lte.OK {
			if burst {
				res = sc2.AcquireBurst(rx, lte.RefSamples, sf.Index, startSample)
				if res.Synced {
					synced = true
					d := sc2.DemodSubframe(rx, lte.RefSamples, sf.Index, startSample, true)
					res.Decisions = d.Decisions
				}
			} else {
				res = sc2.DemodSubframe(rx, lte.RefSamples, sf.Index, startSample, false)
			}
		}
		startSample += len(rx)
		if res == nil {
			continue
		}
		byBits := map[int][]byte{}
		for _, rec := range recs {
			if rec.Bits != nil && !rec.IsPreamble {
				byBits[rec.Symbol] = rec.Bits
			}
		}
		for _, dec := range res.Decisions {
			if want, ok := byBits[dec.Symbol]; ok && len(want) == len(dec.Bits) {
				for k := range want {
					pattern = append(pattern, want[k] != dec.Bits[k])
				}
			}
		}
	}

	if sink.Synced != synced {
		t.Fatalf("engine synced=%v, reference %v", sink.Synced, synced)
	}
	if sess.StartSample() != startSample {
		t.Fatalf("engine stream position %d, reference %d", sess.StartSample(), startSample)
	}
	if len(sink.Pattern) == 0 {
		t.Fatal("engine compared no bits — chain never came up")
	}
	if len(sink.Pattern) != len(pattern) {
		t.Fatalf("engine compared %d bits, reference %d", len(sink.Pattern), len(pattern))
	}
	for i := range pattern {
		if sink.Pattern[i] != pattern[i] {
			t.Fatalf("error pattern diverges at bit %d", i)
		}
	}
}

// TestSessionsIndependentUnderConcurrency runs distinct Sessions on distinct
// stages concurrently; under -race this pins the documented contract that
// parallelism lives across Sessions, with no hidden shared state inside the
// engine.
func TestSessionsIndependentUnderConcurrency(t *testing.T) {
	results := make([]float64, 4)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			enb, mod, lteRx, sc, noiseRng, noiseW := testChain(3)
			sink := &DemodSink{LTE: lteRx, Scatter: sc}
			sess := &Session{
				Source: enb,
				Direct: GainDB(-40),
				Tags:   []*Tag{{Mod: mod, Path: GainDB(-70)}},
				Link:   channel.NewLink(noiseRng, noiseW),
				Sink:   sink,
			}
			sess.Run(2)
			results[i] = sink.Totals().BER()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("identical sessions diverged: %v", results)
		}
	}
}
