// Package simlink is the staged, streaming link-pipeline engine behind
// every end-to-end LScatter chain in this repository. The paper's system is
// one fixed signal path — eNodeB excitation, tag reflection, two-hop
// channel, noise and front-end impairment, carrier tracking, LTE reference
// regeneration, scatter demodulation — and simlink expresses it as a chain
// of explicit stages advanced subframe-by-subframe by a Session:
//
//	Source ──► [Tag × N] ──► PathStage(s) ──► channel.Link ──► CFOTracker ──► Sink
//	 eNodeB     modulate /     hops, gains,    combine paths     optional        LTE decode +
//	 subframe   park (TDMA)    multipath       + noise (+impair) carrier loop    ScatterDemod +
//	 stream                                                                      bit accounting
//
// core.Run's exact mode, the experiment chains (ablations, LTE-impact,
// interference PSD, sync-accuracy sweeps), the examples and the IQ exporter
// all construct Sessions instead of hand-rolling the loop; they differ only
// in which stages they plug in and which Sink consumes the result.
//
// Three properties are contractual:
//
//   - Determinism. Stages draw randomness only from the rng.Source streams
//     handed to them at construction, in a fixed per-subframe order (tag
//     payload feed, per-burst jitter, path application, receiver noise,
//     impairments). A Session is therefore bit-reproducible — at any level
//     of parallelism: Session.RunParallel fans only the pure per-sample
//     work out to workers, while every stateful stage and every RNG draw
//     runs in subframe order on the coordinating goroutine (see
//     parallel.go), so its results are bit-identical to the sequential Run.
//     Coarser parallelism across independent Sessions remains one level up
//     (internal/experiments' worker pool).
//
//   - Streaming with bounded buffers. A Session holds no history: each Step
//     materializes one subframe's waveforms, hands them to the Sink, and
//     drops them. Memory is O(one subframe) regardless of session length,
//     which is what lets the same engine serve both a 4 ms example and an
//     hours-long trace.
//
//   - Multi-tag TDMA as a first-class concept. A Session owns N Tags and an
//     ownership schedule; the scheduled tag modulates, the others park their
//     switch (tag.Modulator.ParkedSubframe), exactly the §6 spectrum-sharing
//     extension.
//
// The stage taps (Taps) expose intermediate waveforms — the ambient
// excitation, each tag's raw reflection — without perturbing the chain;
// cmd/lscatter-iq and the interference-PSD experiment are tap consumers.
//
// The engine runs in one of two sample lanes (Session.Lane): the complex128
// float lane is the conformance reference, and the Q1.15 fixed-point lane
// (internal/fxp) carries block-scaled int16 buffers through the per-sample
// stages at a fraction of the cost, drawing byte-identical RNG streams so
// the lanes stay directly comparable. The Streamer (stream.go) goes one
// step further for the fixed-gain transport core, precomputing per-unit
// composite words so the steady-state loop is a select-and-add per four
// samples; it is the engine behind the real-time-factor numbers in
// docs/PERFORMANCE.md.
package simlink

import (
	"math"

	"lscatter/internal/enodeb"
	"lscatter/internal/ltephy"
)

// Source produces the ambient excitation stream, one subframe per call.
// *enodeb.ENodeB satisfies it directly; any stand-in (a recorded capture, a
// different radio access technology) can be slotted in.
type Source interface {
	NextSubframe() *enodeb.Subframe
}

// PathStage propagates a waveform segment through one hop of the medium and
// returns the product. Implementations must be deterministic per call (draw
// construction-time randomness only) and must not retain x.
// channel.Hop, channel.Multipath and channel.FadingTrack satisfy PathStage.
type PathStage interface {
	Apply(x []complex128) []complex128
}

// PathFunc adapts a plain function to a PathStage.
type PathFunc func(x []complex128) []complex128

// Apply implements PathStage.
func (f PathFunc) Apply(x []complex128) []complex128 { return f(x) }

// chain applies stages left to right.
type chainStage []PathStage

func (c chainStage) Apply(x []complex128) []complex128 {
	for _, s := range c {
		x = s.Apply(x)
	}
	return x
}

// Chain composes hops into one PathStage applied left to right — e.g. the
// two-hop backscatter path Chain(eNodeBToTag, tagToUE). Nil stages are
// skipped; Chain() is the identity.
func Chain(stages ...PathStage) PathStage {
	out := make(chainStage, 0, len(stages))
	for _, s := range stages {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

// gainStage scales a waveform by a fixed amplitude.
type gainStage struct{ g complex128 }

func (s gainStage) Apply(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = v * s.g
	}
	return out
}

// GainDB is a fixed power gain in dB (negative = loss): the abstract stand-in
// for a propagation path when an experiment pins the link budget directly
// instead of deriving it from geometry.
func GainDB(db float64) PathStage {
	return gainStage{g: complex(math.Pow(10, db/20), 0)}
}

// Identity passes a waveform through untouched (no copy).
var Identity PathStage = PathFunc(func(x []complex128) []complex128 { return x })

// IsBurstSubframe reports whether subframe index idx (0..9) opens a 5 ms
// backscatter burst: the tag re-synchronizes on each PSS, which LTE
// transmits in subframes 0 and 5, and leads the burst with its preamble
// symbol (§3.3.2).
func IsBurstSubframe(idx int) bool {
	return idx == 0 || idx == ltephy.SubframesPerFrame/2
}
