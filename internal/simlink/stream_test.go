package simlink

import (
	"math"
	"testing"

	"lscatter/internal/channel"
	"lscatter/internal/enodeb"
	"lscatter/internal/fxp"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
	"lscatter/internal/tag"
	"lscatter/internal/ue"
)

// replaySource serves a precomputed radio frame cyclically — the Session
// twin of the Streamer's repeated-ambient contract.
type replaySource struct {
	frames [][]complex128
	n      int
}

func (s *replaySource) NextSubframe() *enodeb.Subframe {
	idx := s.n % len(s.frames)
	s.n++
	return &enodeb.Subframe{Index: idx, Samples: s.frames[idx]}
}

func streamTestConfig(noiseW float64, timingUnits int) StreamConfig {
	return StreamConfig{
		ENodeB: enodeb.DefaultConfig(ltephy.BW1_4),
		Tag: tag.ModConfig{
			Params:           ltephy.DefaultParams(ltephy.BW1_4),
			Mode:             tag.DSB,
			TimingErrorUnits: timingUnits,
		},
		DirectGainDB: -40,
		TagGainDB:    -70,
		NoisePowerW:  noiseW,
		Seed:         9,
	}
}

// TestStreamerMatchesFloatSession pins the noiseless Streamer sample-exact
// (within one Q1.15 quantization step) against the float-lane Session run
// over the same ambient frame, gains and payload bits — the conformance
// pre-pass behind the real-time-factor headline (docs/PERFORMANCE.md).
func TestStreamerMatchesFloatSession(t *testing.T) {
	cfg := streamTestConfig(0, 2)
	st := NewStreamer(cfg)
	const subframes = 12 // wraps the radio frame once

	type produced struct {
		idx  int
		rx   *fxp.Buf
		bits [][]byte
	}
	var outs []produced
	for i := 0; i < subframes; i++ {
		idx, rx, bits := st.Materialize()
		outs = append(outs, produced{idx, rx, bits})
	}

	// Float reference: the same chain as a Session, with the Streamer's
	// payload bits queued up front in schedule order.
	mod := tag.NewModulator(cfg.Tag)
	for _, o := range outs {
		for _, sym := range o.bits {
			if len(sym) != mod.PerSymbolBits() {
				t.Fatalf("materialized symbol carries %d bits, want %d", len(sym), mod.PerSymbolBits())
			}
			mod.QueueBits(sym)
		}
	}
	frames := make([][]complex128, ltephy.SubframesPerFrame)
	for i := range frames {
		frames[i] = st.Ambient(i)
	}
	var rxs [][]complex128
	sess := &Session{
		Source: &replaySource{frames: frames},
		Direct: GainDB(cfg.DirectGainDB),
		Tags:   []*Tag{{Mod: mod, Path: GainDB(cfg.TagGainDB)}},
		Link:   channel.NewLink(rng.New(99), 0),
		Sink: SinkFunc(func(f *Frame) bool {
			rxs = append(rxs, append([]complex128(nil), f.RX...))
			return true
		}),
	}
	sess.Run(subframes)

	tol := st.Scale() / 65536 * (1 + 1e-9) // half a mantissa step per component
	for i, o := range outs {
		if o.idx != i%ltephy.SubframesPerFrame {
			t.Fatalf("subframe %d materialized index %d", i, o.idx)
		}
		want := rxs[i]
		if o.rx.Len() != len(want) {
			t.Fatalf("subframe %d: %d samples, want %d", i, o.rx.Len(), len(want))
		}
		for s := range want {
			got := o.rx.At(s)
			if math.Abs(real(got)-real(want[s])) > tol || math.Abs(imag(got)-imag(want[s])) > tol {
				t.Fatalf("subframe %d sample %d: fxp %v, float %v (tol %g)", i, s, got, want[s], tol)
			}
		}
	}
}

// TestStreamerNoiseStatistics validates the pre-drawn noise ring end to end:
// the difference between a noisy and a noiseless stream with the same seed
// (identical payload draws, near-identical quantization) must be zero-mean
// Gaussian at the configured per-component sigma.
func TestStreamerNoiseStatistics(t *testing.T) {
	// Sigma far above a mantissa step so quantization-grid differences
	// between the two streams are invisible next to the noise itself.
	stQuiet := NewStreamer(streamTestConfig(0, 0))
	sigma := stQuiet.Scale() / 64 // mantissa sigma 512
	noiseW := 2 * sigma * sigma
	stNoisy := NewStreamer(streamTestConfig(noiseW, 0))

	var sum, sumSq float64
	n := 0
	for i := 0; i < 4; i++ {
		_, quiet, _ := stQuiet.Materialize()
		_, noisy, _ := stNoisy.Materialize()
		if quiet.Len() != noisy.Len() {
			t.Fatalf("stream lengths diverge: %d vs %d", quiet.Len(), noisy.Len())
		}
		for s := 0; s < quiet.Len(); s++ {
			dq := noisy.At(s) - quiet.At(s)
			for _, d := range [2]float64{real(dq), imag(dq)} {
				sum += d
				sumSq += d * d
				n++
			}
		}
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.05*sigma {
		t.Fatalf("noise mean %g, want |mean| <= %g (sigma %g)", mean, 0.05*sigma, sigma)
	}
	// The ring clamps at 4 sigma (variance loss ~0.1%) and reuses lanes
	// cyclically; 10% tolerance covers both plus finite-sample error.
	if math.Abs(std-sigma)/sigma > 0.10 {
		t.Fatalf("noise std %g, want within 10%% of sigma %g", std, sigma)
	}
}

// TestStreamerDemodulates closes the loop: the materialized noiseless stream
// must acquire and demodulate error-free through the real float receiver,
// with the decisions matching the payload bits the Streamer reported.
func TestStreamerDemodulates(t *testing.T) {
	cfg := streamTestConfig(0, 2)
	st := NewStreamer(cfg)
	p := cfg.ENodeB.Params
	lteRx := ue.NewLTEReceiver(p, cfg.ENodeB.Scheme)
	sc := ue.NewScatterDemod(ue.DefaultScatterConfig(p))

	compared, errs := 0, 0
	start := 0
	synced := false
	for i := 0; i < 10; i++ {
		sfIdx, rxBuf, bits := st.Materialize()
		rx := rxBuf.ToComplex(nil)
		lte, err := lteRx.ReceiveSubframe(rx, sfIdx)
		if err != nil || !lte.OK {
			t.Fatalf("subframe %d: LTE decode failed (err %v, ok %v)", i, err, lte != nil && lte.OK)
		}
		burst := IsBurstSubframe(sfIdx)
		var res *ue.ScatterResult
		if burst {
			res = sc.AcquireBurst(rx, lte.RefSamples, sfIdx, start)
			if !res.Synced {
				t.Fatalf("subframe %d: burst preamble not acquired", i)
			}
			synced = true
			d := sc.DemodSubframe(rx, lte.RefSamples, sfIdx, start, true)
			res.Decisions = d.Decisions
		} else if synced {
			res = sc.DemodSubframe(rx, lte.RefSamples, sfIdx, start, false)
		}
		start += len(rx)
		if res == nil {
			continue
		}
		// Payload symbols in schedule order (preamble excluded) line up with
		// the Streamer's reported bits.
		j := 0
		for _, dec := range res.Decisions {
			if j >= len(bits) {
				break
			}
			if len(dec.Bits) != len(bits[j]) {
				t.Fatalf("subframe %d symbol %d: %d decisions, want %d", i, dec.Symbol, len(dec.Bits), len(bits[j]))
			}
			for k := range dec.Bits {
				compared++
				if dec.Bits[k] != bits[j][k] {
					errs++
				}
			}
			j++
		}
		if j != len(bits) {
			t.Fatalf("subframe %d: demodulated %d payload symbols, streamer reported %d", i, j, len(bits))
		}
	}
	if compared == 0 {
		t.Fatal("no bits compared — the chain never came up")
	}
	if errs != 0 {
		t.Fatalf("%d/%d bit errors on a noiseless stream", errs, compared)
	}
}

// TestStreamerScopePanics pins the documented scope limits.
func TestStreamerScopePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("SSB", func() {
		cfg := streamTestConfig(0, 0)
		cfg.Tag.Mode = tag.SSB
		NewStreamer(cfg)
	})
	mustPanic("SampleOffset", func() {
		cfg := streamTestConfig(0, 0)
		cfg.Tag.SampleOffset = 1
		NewStreamer(cfg)
	})
	mustPanic("Oversample", func() {
		cfg := streamTestConfig(0, 0)
		cfg.ENodeB.Params.Oversample = 2
		cfg.Tag.Params.Oversample = 2
		NewStreamer(cfg)
	})
	mustPanic("negative noise", func() {
		cfg := streamTestConfig(-1, 0)
		NewStreamer(cfg)
	})
}
