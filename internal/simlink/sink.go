package simlink

import (
	"lscatter/internal/ltephy"
	"lscatter/internal/ue"
)

// BitAccount is the sent-vs-decided ledger for one tag: how many data bits
// the receiver compared against the tag's transmit records, and how many of
// them were sliced wrong.
type BitAccount struct {
	// Errs counts mismatched bits.
	Errs int
	// Total counts compared bits.
	Total int
}

// BER returns the measured bit error rate, or 0.5 (coin-flip) when no bits
// were compared — the convention every chain consumer in this repository
// uses for a link that never produced a measurement.
func (a BitAccount) BER() float64 {
	if a.Total == 0 {
		return 0.5
	}
	return float64(a.Errs) / float64(a.Total)
}

// DemodSink is the standard receiver-side Sink: per subframe it runs the
// direct-path LTE receiver, regenerates the clean excitation reference, and
// when the LTE decode succeeds drives the backscatter demodulator — burst
// acquisition on burst subframes, tracked demodulation on the rest — then
// settles the per-tag sent-vs-decided bit accounts against the owning tag's
// symbol records. Every end-to-end consumer (core exact mode, the ablation
// and error-pattern chains, the examples) is this sink under different
// policy knobs.
type DemodSink struct {
	// LTE decodes the direct path and regenerates the reference (required).
	LTE *ue.LTEReceiver
	// Scatter demodulates the hybrid band; nil makes the sink LTE-only
	// (e.g. measuring backscatter's impact on LTE's own throughput).
	Scatter *ue.ScatterDemod

	// HoldOnLTEError freezes the session's stream-position counter when the
	// LTE receiver returns an error (legacy core-chain semantics, pinned by
	// the golden end-to-end vectors). Leave false for new chains: the
	// stream position then tracks the physical sample stream regardless of
	// decode outcomes.
	HoldOnLTEError bool
	// ResetEachBurst drops burst state before every burst acquisition, so
	// each burst is acquired from scratch — required when TDMA hands the
	// channel to a different tag each burst.
	ResetEachBurst bool
	// RecordPattern appends each compared bit's error indicator to Pattern
	// in transmit order (codec ablations replay coded framings over it).
	RecordPattern bool
	// CollectBits appends every demodulated decision bit to Bits, matched
	// or not — the receive path of a real payload transfer.
	CollectBits bool

	// OnLTE fires after the LTE receive of every subframe (res may be nil
	// when err != nil). OnSync fires when a burst preamble is acquired,
	// before the burst subframe is demodulated. OnResult fires on every
	// scatter result that produced decisions. Each may be nil.
	OnLTE    func(f *Frame, res *ue.LTEResult, err error)
	OnSync   func(f *Frame, res *ue.ScatterResult)
	OnResult func(f *Frame, res *ue.ScatterResult)

	// LTEOK counts subframes whose transport block decoded.
	LTEOK int
	// Synced latches once any burst preamble has been acquired.
	Synced bool
	// Accounts holds the per-tag bit ledgers, keyed by the owning tag's
	// index in Session.Tags.
	Accounts map[int]*BitAccount
	// Pattern is the per-bit error indicator stream (RecordPattern).
	Pattern []bool
	// Bits is the raw demodulated bit stream (CollectBits).
	Bits []byte
}

// Account returns the ledger for the given tag index, creating it on first
// use.
func (k *DemodSink) Account(tagIdx int) *BitAccount {
	if k.Accounts == nil {
		k.Accounts = map[int]*BitAccount{}
	}
	a := k.Accounts[tagIdx]
	if a == nil {
		a = &BitAccount{}
		k.Accounts[tagIdx] = a
	}
	return a
}

// Totals sums every tag's ledger into one account.
func (k *DemodSink) Totals() BitAccount {
	var t BitAccount
	for _, a := range k.Accounts {
		t.Errs += a.Errs
		t.Total += a.Total
	}
	return t
}

// Consume implements Sink.
func (k *DemodSink) Consume(f *Frame) bool {
	if f.Reacquired && k.Scatter != nil {
		// The carrier loop lost lock: decision-feedback state (burst sync,
		// channel estimate) predates the frequency snap — drop it and let
		// the next burst re-acquire.
		k.Scatter.Reset()
	}
	lte, err := k.LTE.ReceiveSubframe(f.RX, f.Subframe.Index)
	if k.OnLTE != nil {
		k.OnLTE(f, lte, err)
	}
	if err != nil {
		return !k.HoldOnLTEError
	}
	if lte.OK {
		k.LTEOK++
	}
	var res *ue.ScatterResult
	if k.Scatter != nil && lte.OK {
		if f.Burst {
			if k.ResetEachBurst {
				k.Scatter.Reset()
			}
			res = k.acquireBurst(f, lte.RefSamples)
			if res.Synced {
				k.Synced = true
				if k.OnSync != nil {
					k.OnSync(f, res)
				}
				d := k.demodSubframe(f, lte.RefSamples, true)
				res.Decisions = d.Decisions
			}
		} else {
			res = k.demodSubframe(f, lte.RefSamples, false)
		}
	}
	if res == nil {
		return true
	}
	if k.OnResult != nil {
		k.OnResult(f, res)
	}
	if k.CollectBits {
		for _, dec := range res.Decisions {
			k.Bits = append(k.Bits, dec.Bits...)
		}
	}
	k.settle(f, res)
	return true
}

// acquireBurst runs burst acquisition through the fixed-point front end when
// the frame carries a Q1.15 receive block (a fixed-point-lane session), and
// through the float path otherwise.
func (k *DemodSink) acquireBurst(f *Frame, ref []complex128) *ue.ScatterResult {
	if f.RXFxp != nil {
		return k.Scatter.AcquireBurstFxp(f.RXFxp, ref, f.Subframe.Index, f.Start)
	}
	return k.Scatter.AcquireBurst(f.RX, ref, f.Subframe.Index, f.Start)
}

// demodSubframe is the tracked-demodulation counterpart of acquireBurst.
func (k *DemodSink) demodSubframe(f *Frame, ref []complex128, skipFirst bool) *ue.ScatterResult {
	if f.RXFxp != nil {
		return k.Scatter.DemodSubframeFxp(f.RXFxp, ref, f.Subframe.Index, f.Start, skipFirst)
	}
	return k.Scatter.DemodSubframe(f.RX, ref, f.Subframe.Index, f.Start, skipFirst)
}

// settle compares the demodulated decisions against the owning tag's symbol
// records bit by bit, in transmit order.
func (k *DemodSink) settle(f *Frame, res *ue.ScatterResult) {
	if len(f.Records) == 0 || len(res.Decisions) == 0 {
		return
	}
	var byBits map[int][]byte
	for _, rec := range f.Records {
		if rec.Bits != nil && !rec.IsPreamble {
			if byBits == nil {
				byBits = map[int][]byte{}
			}
			byBits[rec.Symbol] = rec.Bits
		}
	}
	acct := k.Account(f.Owner)
	for _, dec := range res.Decisions {
		want, ok := byBits[dec.Symbol]
		if !ok || len(want) != len(dec.Bits) {
			continue
		}
		for i := range want {
			bad := want[i] != dec.Bits[i]
			if bad {
				acct.Errs++
			}
			acct.Total++
			if k.RecordPattern {
				k.Pattern = append(k.Pattern, bad)
			}
		}
	}
}

// LTESink measures the LTE downlink's own goodput through the chain — the
// receiver's view when it ignores the backscatter band entirely. PerSubframe
// collects delivered transport-block bits per second, one sample per
// subframe (zero when the decode fails).
type LTESink struct {
	// LTE is the direct-path receiver (required).
	LTE *ue.LTEReceiver
	// PerSubframe accumulates the per-subframe goodput samples in bits/s.
	PerSubframe []float64
}

// Consume implements Sink.
func (k *LTESink) Consume(f *Frame) bool {
	res, err := k.LTE.ReceiveSubframe(f.RX, f.Subframe.Index)
	bitsOK := 0.0
	if err == nil && res.OK {
		bitsOK = float64(len(res.Payload))
	}
	k.PerSubframe = append(k.PerSubframe, bitsOK/ltephy.SubframeDuration)
	return true
}
