package tag

import (
	"bytes"
	"math"
	"testing"

	"lscatter/internal/fxp"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
)

// randAmbient synthesizes a bounded random ambient block — the modulator is
// agnostic to the waveform's structure, so white samples exercise it fully.
func randAmbient(r *rng.Source, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = r.Complex(0.2)
	}
	return x
}

// TestModulateSubframeFxpMatchesFloat pins the fixed-point modulator lane
// against the float reference in both switching modes: identical records
// (same bit consumption) and sample agreement within a few mantissa steps.
// The bound breakdown — input quantization, Q1.15 phasor quantization (SSB),
// rotation rounding — is part of the docs/PERFORMANCE.md error budget.
func TestModulateSubframeFxpMatchesFloat(t *testing.T) {
	p := ltephy.DefaultParams(ltephy.BW1_4)
	n := p.Oversample * p.BW.SamplesPerSubframe()
	for _, mode := range []Mode{DSB, SSB} {
		mkMod := func() *Modulator {
			m := NewModulator(ModConfig{Params: p, Mode: mode, ID: 3, TimingErrorUnits: 2, SampleOffset: 1})
			m.QueueBits(rng.New(8).Bits(make([]byte, 40*m.PerSymbolBits())))
			return m
		}
		mf, mx := mkMod(), mkMod()
		r := rng.New(5)
		for sf := 0; sf < 3; sf++ {
			amb := randAmbient(r, n)
			ab := fxp.FromComplex(amb)
			want, recF := mf.ModulateSubframe(amb, sf, sf == 0)
			got, recX := mx.ModulateSubframeFxp(ab, sf, sf == 0)

			if len(recF) != len(recX) {
				t.Fatalf("%v sf %d: %d fxp records, float %d", mode, sf, len(recX), len(recF))
			}
			for i := range recF {
				if recF[i].Symbol != recX[i].Symbol || !bytes.Equal(recF[i].Bits, recX[i].Bits) {
					t.Fatalf("%v sf %d: record %d diverged — the lanes must consume the bit queue identically", mode, sf, i)
				}
			}
			// Input quantization (half a step at the ambient scale) carried
			// through a unit-magnitude switch, plus Q1.15 phasor quantization
			// and rotation rounding in SSB.
			tol := 3 * ab.Scale / 32768
			for s := range want {
				g := got.At(s)
				if math.Abs(real(g)-real(want[s])) > tol || math.Abs(imag(g)-imag(want[s])) > tol {
					t.Fatalf("%v sf %d sample %d: fxp %v, float %v (tol %g)", mode, sf, s, g, want[s], tol)
				}
			}
		}
	}
}

// TestParkedSubframeFxpMatchesFloat pins the parked echo: a pure attenuation
// that the block scale absorbs exactly, so only the ambient quantization
// remains.
func TestParkedSubframeFxpMatchesFloat(t *testing.T) {
	p := ltephy.DefaultParams(ltephy.BW1_4)
	m := NewModulator(ModConfig{Params: p, Mode: DSB})
	amb := randAmbient(rng.New(6), p.Oversample*p.BW.SamplesPerSubframe())
	ab := fxp.FromComplex(amb)
	want := m.ParkedSubframe(amb)
	got := m.ParkedSubframeFxp(ab)
	tol := got.Scale / 32768
	for s := range want {
		g := got.At(s)
		if math.Abs(real(g)-real(want[s])) > tol || math.Abs(imag(g)-imag(want[s])) > tol {
			t.Fatalf("sample %d: fxp %v, float %v (tol %g)", s, g, want[s], tol)
		}
	}
}
