package tag

import (
	"testing"

	"lscatter/internal/enodeb"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
)

func TestDeviceSyncsFromOwnCircuit(t *testing.T) {
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	enb := enodeb.New(cfg)
	dev := NewDevice(cfg.Params, SyncConfig{}, ModConfig{})
	dev.QueueBits(rng.New(1).Bits(make([]byte, 500*72)))
	synced := -1
	for i := 0; i < 30; i++ {
		dev.Process(enb.NextSubframe().Samples)
		if dev.Synced() && synced < 0 {
			synced = i
		}
	}
	if synced < 0 {
		t.Fatal("device never synced in 30 ms")
	}
	// Warmup (10 ms averaging settle) plus two PSS detections.
	if synced < 10 || synced > 26 {
		t.Fatalf("synced at %d ms, want ~15-25", synced)
	}
	if dev.SentBits() == 0 {
		t.Fatal("device never modulated after syncing")
	}
}

func TestDeviceRecordsClearOnRead(t *testing.T) {
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	enb := enodeb.New(cfg)
	dev := NewDevice(cfg.Params, SyncConfig{}, ModConfig{})
	dev.QueueBits(rng.New(2).Bits(make([]byte, 500*72)))
	for i := 0; i < 30; i++ {
		dev.Process(enb.NextSubframe().Samples)
	}
	first := dev.Records()
	if len(first) == 0 {
		t.Fatal("no records accumulated")
	}
	if len(dev.Records()) != 0 {
		t.Fatal("records not cleared by read")
	}
}

func TestDeviceOutputLengthConservation(t *testing.T) {
	// The device may buffer internally, but over the whole stream it must
	// emit exactly as many samples as it consumed (up to the final partial
	// subframe it is still holding).
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	enb := enodeb.New(cfg)
	dev := NewDevice(cfg.Params, SyncConfig{}, ModConfig{})
	in, out := 0, 0
	for i := 0; i < 25; i++ {
		sf := enb.NextSubframe()
		in += len(sf.Samples)
		out += len(dev.Process(sf.Samples))
	}
	sfLen := cfg.Params.Oversample * cfg.Params.BW.SamplesPerSubframe()
	if in-out < 0 || in-out >= sfLen {
		t.Fatalf("consumed %d, emitted %d (lag %d, max %d)", in, out, in-out, sfLen)
	}
}

func TestDeviceSubframeScheduleMod5(t *testing.T) {
	// The device resolves timing to the 5 ms PSS lattice only; its burst
	// subframes must land on the true {0,5} lattice regardless of which
	// PSS it locked to.
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	enb := enodeb.New(cfg)
	dev := NewDevice(cfg.Params, SyncConfig{}, ModConfig{})
	dev.QueueBits(rng.New(3).Bits(make([]byte, 2000*72)))
	for i := 0; i < 40; i++ {
		dev.Process(enb.NextSubframe().Samples)
	}
	sfLen := cfg.Params.Oversample * cfg.Params.BW.SamplesPerSubframe()
	for _, rec := range dev.Records() {
		trueSF := (rec.SubframeStart + sfLen/2) / sfLen % ltephy.SubframesPerFrame
		if rec.Subframe%5 != trueSF%5 {
			t.Fatalf("device subframe %d maps to true %d (mod-5 broken)", rec.Subframe, trueSF)
		}
	}
}
