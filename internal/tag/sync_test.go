package tag

import (
	"math"
	"testing"

	"lscatter/internal/channel"
	"lscatter/internal/enodeb"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
	"lscatter/internal/stats"
)

// truePSSTimes returns the instants (seconds) at which PSS symbols begin in
// a stream of n subframes.
func truePSSTimes(p ltephy.Params, nSubframes int) []float64 {
	var out []float64
	sfDur := ltephy.SubframeDuration
	for sf := 0; sf < nSubframes; sf++ {
		if sf%5 != 0 {
			continue
		}
		off := float64(ltephy.UsefulStart(p, ltephy.PSSSymbolIndex)) / p.SampleRate()
		out = append(out, float64(sf)*sfDur+off)
	}
	return out
}

func runSync(t testing.TB, nSubframes int, noiseW float64, seed uint64) ([]Detection, *SyncCircuit, ltephy.Params) {
	t.Helper()
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	e := enodeb.New(cfg)
	sc := NewSyncCircuit(cfg.Params, SyncConfig{})
	r := rng.New(seed)
	var dets []Detection
	for i := 0; i < nSubframes; i++ {
		sf := e.NextSubframe()
		buf := sf.Samples
		if noiseW > 0 {
			buf = append([]complex128(nil), buf...)
			channel.AWGN(r, buf, noiseW)
		}
		dets = append(dets, sc.Process(buf)...)
	}
	return dets, sc, cfg.Params
}

func TestSyncDetectsPSSPeriodically(t *testing.T) {
	dets, _, _ := runSync(t, 40, 0, 1)
	if len(dets) < 5 {
		t.Fatalf("only %d detections in 40 ms", len(dets))
	}
	// Detections must be ~5 ms apart (the PSS period).
	for i := 1; i < len(dets); i++ {
		gap := dets[i].Time - dets[i-1].Time
		if math.Abs(gap-ltephy.PSSPeriod) > 0.5e-3 {
			t.Fatalf("detection gap %v s, want ~5 ms", gap)
		}
	}
}

func TestSyncErrorDistribution(t *testing.T) {
	// The paper's Fig 31: sync errors (detection latency vs the true PSS
	// time, as an LTE receiver would measure it) concentrate in the tens of
	// microseconds with small jitter.
	dets, sc, p := runSync(t, 60, 0, 2)
	if len(dets) < 8 {
		t.Fatalf("too few detections: %d", len(dets))
	}
	truth := truePSSTimes(p, 60)
	var errors []float64
	for _, d := range dets {
		est := sc.EstimatePSSTime(d)
		// match to nearest true PSS
		best := math.Inf(1)
		for _, tt := range truth {
			if e := est - tt; math.Abs(e) < math.Abs(best) {
				best = e
			}
		}
		errors = append(errors, best*1e6) // us
	}
	mean := stats.Mean(errors)
	std := stats.Std(errors)
	if math.Abs(mean) > 40 {
		t.Fatalf("calibrated sync error mean = %v us, want within ±40", mean)
	}
	if std > 15 {
		t.Fatalf("sync jitter std = %v us, want < 15", std)
	}
}

func TestSyncSurvivesNoise(t *testing.T) {
	// 10 dB in-band SNR: the analog detector must still find the PSS cadence.
	noise := 0.01 * 0.1 // tx power 10 mW, SNR 10 dB over full band
	dets, _, _ := runSync(t, 40, noise, 3)
	if len(dets) < 5 {
		t.Fatalf("only %d detections under noise", len(dets))
	}
	gaps := 0
	for i := 1; i < len(dets); i++ {
		gap := dets[i].Time - dets[i-1].Time
		if math.Abs(gap-ltephy.PSSPeriod) < 0.5e-3 {
			gaps++
		}
	}
	if gaps < (len(dets)-1)*3/4 {
		t.Fatalf("only %d/%d gaps near 5 ms under noise", gaps, len(dets)-1)
	}
}

func TestSyncNoFalseAlarmsWithoutPSSBoost(t *testing.T) {
	// With the PSS boost removed the envelope is nearly flat: the comparator
	// should fire rarely if at all.
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	cfg.Params.PSSBoostDB = 0
	e := enodeb.New(cfg)
	sc := NewSyncCircuit(cfg.Params, SyncConfig{})
	var dets []Detection
	for i := 0; i < 40; i++ {
		dets = append(dets, sc.Process(e.NextSubframe().Samples)...)
	}
	// Allow a few spurious edges but far fewer than the 8 PSS occurrences.
	if len(dets) > 4 {
		t.Fatalf("%d detections with no PSS boost (envelope should be flat)", len(dets))
	}
}

func TestSyncTraceRecordsStages(t *testing.T) {
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	e := enodeb.New(cfg)
	sc := NewSyncCircuit(cfg.Params, SyncConfig{Trace: true})
	for i := 0; i < 20; i++ {
		sc.Process(e.NextSubframe().Samples)
	}
	tr := sc.Trace()
	if tr == nil {
		t.Fatal("no trace recorded")
	}
	want := int(0.020 * tr.SampleRate)
	if len(tr.Envelope) < want-10 || len(tr.Envelope) > want+10 {
		t.Fatalf("trace length %d, want ~%d", len(tr.Envelope), want)
	}
	if len(tr.Average) != len(tr.Envelope) || len(tr.Comparator) != len(tr.Envelope) {
		t.Fatal("stage traces have different lengths")
	}
	// The envelope trace must show the PSS peaks: max over a window around
	// each PSS clearly above the median level.
	med := stats.Median(tr.Envelope[len(tr.Envelope)/2:])
	lo, hi := stats.MinMax(tr.Envelope[len(tr.Envelope)/2:])
	if hi < 1.3*med {
		t.Fatalf("envelope peaks not distinct: max %v vs median %v (min %v)", hi, med, lo)
	}
}

func TestSyncInternalRateReasonable(t *testing.T) {
	for _, bw := range []ltephy.Bandwidth{ltephy.BW1_4, ltephy.BW5, ltephy.BW20} {
		p := ltephy.DefaultParams(bw)
		sc := NewSyncCircuit(p, SyncConfig{})
		r := sc.InternalRate()
		if r < 1.8e6 || r > 4e6 {
			t.Fatalf("%v: internal rate %v, want ~1.92-3.84 MHz", bw, r)
		}
	}
}

func TestNominalDelayPositiveAndSmall(t *testing.T) {
	p := ltephy.DefaultParams(ltephy.BW1_4)
	sc := NewSyncCircuit(p, SyncConfig{})
	d := sc.NominalDelay()
	if d <= 0 || d > 500e-6 {
		t.Fatalf("nominal delay = %v s, want (0, 500us]", d)
	}
}
