// Package tag implements the LScatter backscatter tag: the low-power ambient
// LTE synchronization circuit of §3.1 (narrowband front end, diode-RC
// envelope detector, averaging reference and hysteresis comparator) and the
// basic-timing-unit phase modulator of §3.2 that piggybacks bits on the
// ambient waveform while steering clear of PSS/SSS symbols and the cyclic
// prefix.
package tag

import (
	"math"
	"math/cmplx"

	"lscatter/internal/dsp"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
)

// SyncConfig parameterizes the synchronization circuit. Zero values select
// the defaults from DefaultSyncConfig.
type SyncConfig struct {
	// EnvelopeTau is the R1*C2 time constant of the envelope-smoothing RC
	// (default 25 us — smooths the microsecond-scale narrowband amplitude
	// ripple while responding within one 71 us PSS symbol).
	EnvelopeTau float64
	// AverageTau is the averaging-network time constant feeding the
	// comparator reference (default 4 ms).
	AverageTau float64
	// TripFactor scales the averaged reference at the comparator's negative
	// input (default 1.3): the envelope must exceed TripFactor times the
	// running average to register a PSS.
	TripFactor float64
	// Hysteresis is the comparator hysteresis fraction (default 0.1).
	Hysteresis float64
	// ComparatorDelay is the comparator propagation delay in seconds
	// (default 12 us, MAX931 class).
	ComparatorDelay float64
	// TimingJitterRMS adds a zero-mean Gaussian error of this many seconds
	// RMS to each detection instant, modeling comparator trip-point noise on
	// the envelope ramp (the residual spread Figure 31 measures). 0 disables
	// jitter; draws come from a dedicated stream seeded by JitterSeed, so the
	// rest of the simulation is unaffected.
	TimingJitterRMS float64
	// JitterSeed seeds the jitter stream (only used when TimingJitterRMS > 0).
	JitterSeed uint64
	// Trace records per-stage outputs for the Figure 8 reproduction.
	Trace bool
}

// DefaultSyncConfig returns the circuit constants used throughout the
// evaluation.
func DefaultSyncConfig() SyncConfig {
	return SyncConfig{
		EnvelopeTau:     25e-6,
		AverageTau:      4e-3,
		TripFactor:      1.3,
		Hysteresis:      0.1,
		ComparatorDelay: 12e-6,
	}
}

// Detection is one comparator rising edge: the circuit's belief that a PSS
// just passed.
type Detection struct {
	// SampleIndex is the position in the oversampled input stream at which
	// the comparator tripped.
	SampleIndex int
	// Time is SampleIndex converted to seconds from stream start.
	Time float64
}

// SyncTrace holds the per-stage outputs recorded when SyncConfig.Trace is
// set, at the circuit's internal (decimated) rate.
type SyncTrace struct {
	SampleRate float64
	Envelope   []float64 // RC filter output (Fig 8 black curve)
	Average    []float64 // averaging network output (blue dashed)
	Comparator []byte    // comparator output (red dashed)
}

// SyncCircuit detects the periodic PSS in the ambient LTE stream with analog
// building blocks only — no ADC, correlator or FFT — mirroring Figure 7:
// matching network -> RC envelope -> averaging reference -> comparator.
//
// The front end is modeled as a decimating low-pass chain tuned to the
// central 0.93 MHz where the PSS concentrates boosted cell power for one
// symbol every 5 ms, which is what makes the PSS stand out in the envelope.
type SyncCircuit struct {
	cfg       SyncConfig
	params    ltephy.Params
	decim     []int // cascade of decimation factors
	decimRate float64
	front     *dsp.FIR
	env       *dsp.RC
	avg       *dsp.RC
	comp      *dsp.Comparator
	firs      []*dsp.FIR // cascade anti-alias filters (streaming)
	phase     []int      // per-stage decimation phase counters
	state     bool       // last comparator output (for edge detect)
	samplesIn int        // total oversampled samples consumed
	warmup    int        // decimated samples to ignore while averaging settles
	seen      int        // decimated samples processed
	holdoff   int        // decimated samples to suppress re-triggering
	lastDet   int        // seen-counter at the last detection
	jitter    *rng.Source // detection-instant jitter (nil when disabled)
	trace     *SyncTrace
}

// NewSyncCircuit builds the circuit for the given waveform parameters.
func NewSyncCircuit(p ltephy.Params, cfg SyncConfig) *SyncCircuit {
	def := DefaultSyncConfig()
	if cfg.EnvelopeTau == 0 {
		cfg.EnvelopeTau = def.EnvelopeTau
	}
	if cfg.AverageTau == 0 {
		cfg.AverageTau = def.AverageTau
	}
	if cfg.Hysteresis == 0 {
		cfg.Hysteresis = def.Hysteresis
	}
	if cfg.TripFactor == 0 {
		cfg.TripFactor = def.TripFactor
	}
	if cfg.ComparatorDelay == 0 {
		cfg.ComparatorDelay = def.ComparatorDelay
	}
	s := &SyncCircuit{cfg: cfg, params: p}
	// Decimate the oversampled stream down to ~1.92 Msps in stages of <= 8.
	rate := p.SampleRate()
	target := 1.92e6
	for rate/target >= 2 {
		f := 8
		for float64(f) > rate/target {
			f /= 2
		}
		if f < 2 {
			break
		}
		s.decim = append(s.decim, f)
		cut := 0.8 * rate / (2 * float64(f))
		s.firs = append(s.firs, dsp.LowPassFIR(cut, rate, 63))
		s.phase = append(s.phase, 0)
		rate /= float64(f)
	}
	s.decimRate = rate
	// Matching-network selectivity: pass only the PSS half-bandwidth.
	s.front = dsp.LowPassFIR(ltephy.PSSBandwidth/2, rate, 101)
	s.env = dsp.NewRC(cfg.EnvelopeTau, rate)
	s.avg = dsp.NewRC(cfg.AverageTau, rate)
	s.comp = dsp.NewComparator(cfg.Hysteresis, int(cfg.ComparatorDelay*rate))
	s.warmup = int(2.5 * cfg.AverageTau * rate)
	// Debounce: the FPGA ignores further edges for 2 ms after a detection
	// (well under the 5 ms PSS period) so envelope ripple at the top of a
	// PSS peak cannot double-count.
	s.holdoff = int(2e-3 * rate)
	s.lastDet = -s.holdoff
	if cfg.TimingJitterRMS < 0 {
		panic("tag: sync timing-jitter RMS must be >= 0")
	}
	if cfg.TimingJitterRMS > 0 {
		s.jitter = rng.New(cfg.JitterSeed)
	}
	if cfg.Trace {
		s.trace = &SyncTrace{SampleRate: rate}
	}
	return s
}

// InternalRate returns the circuit's decimated processing rate in Hz.
func (s *SyncCircuit) InternalRate() float64 { return s.decimRate }

// Trace returns the recorded stage outputs (nil unless tracing was enabled).
func (s *SyncCircuit) Trace() *SyncTrace { return s.trace }

// Process feeds oversampled ambient samples through the circuit and returns
// any PSS detections (comparator rising edges) found in this block. The
// circuit keeps state across calls, so consecutive blocks form one stream.
func (s *SyncCircuit) Process(x []complex128) []Detection {
	var dets []Detection
	ratio := int(s.params.SampleRate() / s.decimRate)
	for _, v := range x {
		s.samplesIn++
		// Cascaded decimation.
		keep := true
		for st := range s.firs {
			v = s.firs[st].ProcessSample(v)
			s.phase[st]++
			if s.phase[st] < s.decim[st] {
				keep = false
				break
			}
			s.phase[st] = 0
		}
		if !keep {
			continue
		}
		// Narrowband matching network, envelope, averaging, comparator.
		nb := s.front.ProcessSample(v)
		env := s.env.ProcessSample(cmplx.Abs(nb))
		ref := s.avg.ProcessSample(env)
		out := s.comp.ProcessSample(env, ref*s.cfg.TripFactor)
		s.seen++
		if s.trace != nil {
			s.trace.Envelope = append(s.trace.Envelope, env)
			s.trace.Average = append(s.trace.Average, ref)
			b := byte(0)
			if out {
				b = 1
			}
			s.trace.Comparator = append(s.trace.Comparator, b)
		}
		if out && !s.state && s.seen > s.warmup && s.seen-s.lastDet >= s.holdoff {
			s.lastDet = s.seen
			idx := s.samplesIn - 1
			if s.jitter != nil {
				// Comparator trip-point noise: perturb the reported instant
				// without disturbing the circuit's internal state.
				idx += int(math.Round(s.jitter.NormFloat64() *
					s.cfg.TimingJitterRMS * s.params.SampleRate()))
				if idx < 0 {
					idx = 0
				}
			}
			dets = append(dets, Detection{
				SampleIndex: idx,
				Time:        float64(idx) / s.params.SampleRate(),
			})
		}
		s.state = out
		_ = ratio
	}
	return dets
}

// NominalDelay returns the circuit's expected detection latency in seconds:
// decimation/filter group delays plus envelope charge time plus comparator
// propagation. The tag subtracts this calibration constant when converting a
// detection time into a PSS timing estimate, leaving only jitter
// (Figure 31 measures the residual).
func (s *SyncCircuit) NominalDelay() float64 {
	delay := 0.0
	rate := s.params.SampleRate()
	for st, f := range s.decim {
		delay += float64(s.firs[st].GroupDelay()) / rate
		rate /= float64(f)
	}
	delay += float64(s.front.GroupDelay()) / s.decimRate
	// Threshold-crossing point on the PSS envelope ramp plus the
	// envelope/averaging RC interaction. Calibrated once against an LTE
	// receiver's PSS timing, exactly as the paper's Figure 31 comparison
	// does; the residual jitter is what Fig 31 plots.
	delay += 7e-6
	delay += s.cfg.ComparatorDelay
	return delay
}

// EstimatePSSTime converts a detection into an estimate of the instant the
// PSS symbol began, by subtracting the calibrated nominal delay.
func (s *SyncCircuit) EstimatePSSTime(d Detection) float64 {
	t := d.Time - s.NominalDelay()
	if t < 0 {
		t = 0
	}
	return t
}
