package tag

import (
	"math"

	"lscatter/internal/ltephy"
)

// Device is the complete LScatter tag: the analog synchronization circuit
// feeding the FPGA's timing estimate, and the switch modulator driven by it.
// Unlike the bare Modulator (whose timing error tests inject), a Device
// derives its frame alignment from the PSS detections of its own envelope
// detector — the full closed loop of Figure 5's tag block.
//
// Feed the incident downlink stream chunk by chunk through Process; the
// device returns what its antenna reflects. Before synchronization it parks
// the switch; once it has locked onto the 5 ms PSS lattice it schedules a
// burst per half-frame and modulates queued bits.
type Device struct {
	p    ltephy.Params
	sync *SyncCircuit
	mod  *Modulator

	consumed   int // absolute samples consumed
	synced     bool
	boundary   int // estimated absolute sample index of a subframe-0 boundary
	sfLen      int
	halfFrame  int
	detections int

	buf      []complex128 // residual samples not yet forming a full subframe
	bufStart int          // absolute index of buf[0]
	records  []DeviceRecord
}

// NewDevice builds a tag device. The modulator config's timing fields are
// ignored — alignment comes from the sync circuit.
func NewDevice(p ltephy.Params, syncCfg SyncConfig, modCfg ModConfig) *Device {
	modCfg.Params = p
	modCfg.TimingErrorUnits = 0
	modCfg.SampleOffset = 0
	return &Device{
		p:         p,
		sync:      NewSyncCircuit(p, syncCfg),
		mod:       NewModulator(modCfg),
		sfLen:     p.Oversample * p.BW.SamplesPerSubframe(),
		halfFrame: 5 * p.Oversample * p.BW.SamplesPerSubframe(),
	}
}

// Synced reports whether the device has locked onto the PSS lattice.
func (d *Device) Synced() bool { return d.synced }

// QueueBits hands payload to the underlying modulator.
func (d *Device) QueueBits(b []byte) { d.mod.QueueBits(b) }

// SentBits reports the payload bits modulated so far.
func (d *Device) SentBits() int { return d.mod.SentBits() }

// Records returns and clears the per-symbol modulation log accumulated since
// the last call.
func (d *Device) Records() []DeviceRecord {
	out := d.records
	d.records = nil
	return out
}

// DeviceRecord ties a modulated symbol to its absolute position.
type DeviceRecord struct {
	// SubframeStart is the absolute sample index of the (estimated)
	// subframe the symbol belongs to.
	SubframeStart int
	// Subframe is the estimated subframe index within the radio frame.
	Subframe int
	// SymbolRecord is the modulator's log entry.
	SymbolRecord
}

// Process consumes the next chunk of the incident stream and returns the
// reflected waveform for exactly those samples.
func (d *Device) Process(incident []complex128) []complex128 {
	// The sync circuit always listens.
	dets := d.sync.Process(incident)
	for _, det := range dets {
		d.onDetection(det)
	}
	d.buf = append(d.buf, incident...)
	out := make([]complex128, 0, len(incident))
	for {
		if !d.synced {
			// Park everything buffered: reflect weak static echo.
			out = append(out, d.mod.ParkedSubframe(d.buf)...)
			d.bufStart += len(d.buf)
			d.buf = d.buf[:0]
			break
		}
		// Align the buffer head to the estimated subframe lattice.
		offset := d.bufStart - d.boundary
		mod := ((offset % d.sfLen) + d.sfLen) % d.sfLen
		if mod != 0 {
			// Emit park output until the next estimated boundary.
			skip := d.sfLen - mod
			if skip > len(d.buf) {
				skip = len(d.buf)
			}
			out = append(out, d.mod.ParkedSubframe(d.buf[:skip])...)
			d.buf = d.buf[skip:]
			d.bufStart += skip
			continue
		}
		if len(d.buf) < d.sfLen {
			break
		}
		// One full (estimated) subframe available: modulate it.
		sfIdx := ((d.bufStart - d.boundary) / d.sfLen) % ltephy.SubframesPerFrame
		if sfIdx < 0 {
			sfIdx += ltephy.SubframesPerFrame
		}
		burst := sfIdx == 0 || sfIdx == 5
		reflected, recs := d.mod.ModulateSubframe(d.buf[:d.sfLen], sfIdx, burst)
		for _, rec := range recs {
			d.records = append(d.records, DeviceRecord{
				SubframeStart: d.bufStart,
				Subframe:      sfIdx,
				SymbolRecord:  rec,
			})
		}
		out = append(out, reflected...)
		d.buf = d.buf[d.sfLen:]
		d.bufStart += d.sfLen
	}
	d.consumed += len(incident)
	return out
}

// onDetection updates the lattice estimate from a PSS detection.
func (d *Device) onDetection(det Detection) {
	d.detections++
	est := d.sync.EstimatePSSTime(det)
	// The PSS useful part starts UsefulStart(PSSSymbolIndex) into its
	// subframe; the detected PSS opens a half-frame (subframe 0 or 5 —
	// the device cannot tell which without SSS, and does not need to:
	// a 5 ms ambiguity only swaps which bursts carry which preambles).
	off := float64(ltephy.UsefulStart(d.p, ltephy.PSSSymbolIndex)) / d.p.SampleRate()
	boundary := int(math.Round((est - off) * d.p.SampleRate()))
	if !d.synced {
		if d.detections >= 2 {
			d.synced = true
			d.boundary = boundary
		}
		return
	}
	// Track slowly: snap the lattice phase toward the newest detection.
	diff := boundary - d.boundary
	diff = ((diff % d.halfFrame) + d.halfFrame) % d.halfFrame
	if diff > d.halfFrame/2 {
		diff -= d.halfFrame
	}
	d.boundary += diff / 4 // first-order tracking loop
}
