package tag

import (
	"math"
	"math/cmplx"
	"testing"

	"lscatter/internal/dsp"
	"lscatter/internal/enodeb"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
)

func ambientSubframe(t testing.TB, bw ltephy.Bandwidth, sf int) ([]complex128, ltephy.Params) {
	t.Helper()
	cfg := enodeb.DefaultConfig(bw)
	e := enodeb.New(cfg)
	var s *enodeb.Subframe
	for i := 0; i <= sf; i++ {
		s = e.NextSubframe()
	}
	return s.Samples, cfg.Params
}

func TestDataSymbolsSchedule(t *testing.T) {
	// Non-sync subframes: symbols 2..13.
	ds := DataSymbols(1)
	if len(ds) != 12 || ds[0] != 2 || ds[len(ds)-1] != 13 {
		t.Fatalf("data symbols for sf1 = %v", ds)
	}
	// Sync subframes skip symbols 5 and 6.
	ds = DataSymbols(0)
	if len(ds) != 10 {
		t.Fatalf("data symbols for sf0 = %v", ds)
	}
	for _, l := range ds {
		if l == ltephy.PSSSymbolIndex || l == ltephy.SSSSymbolIndex {
			t.Fatalf("sync symbol %d scheduled for modulation", l)
		}
	}
}

func TestPreambleDeterministic(t *testing.T) {
	a, b := Preamble(1200), Preamble(1200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("preamble not deterministic")
		}
	}
	ones := 0
	for _, v := range a {
		ones += int(v)
	}
	if ones < 450 || ones > 750 {
		t.Fatalf("preamble imbalance: %d ones of 1200", ones)
	}
}

func TestModulatorReflectionLoss(t *testing.T) {
	ambient, p := ambientSubframe(t, ltephy.BW1_4, 1)
	m := NewModulator(ModConfig{Params: p, ReflectionLossDB: 6})
	out, _ := m.ModulateSubframe(ambient, 1, false)
	// |w|=1 switching: output power = ambient power - 6 dB.
	ratio := dsp.Power(out) / dsp.Power(ambient)
	if math.Abs(dsp.DB(ratio)+6) > 0.2 {
		t.Fatalf("reflection ratio = %v dB, want -6", dsp.DB(ratio))
	}
}

func TestModulatorShiftsSpectrumOutOfBand(t *testing.T) {
	// The hybrid signal's energy must sit around ±1/Ts, outside the original
	// LTE band (Eq. 4): the in-band region of the reflected signal must be
	// nearly empty.
	ambient, p := ambientSubframe(t, ltephy.BW1_4, 1)
	m := NewModulator(ModConfig{Params: p})
	out, _ := m.ModulateSubframe(ambient, 1, true)
	n := p.BW.FFTSize() * p.Oversample
	start := ltephy.UsefulStart(p, 3)
	spec := dsp.FFT(append([]complex128(nil), out[start:start+n]...))
	k := p.BW.Subcarriers()
	nn := p.BW.FFTSize()
	var inBand, shifted float64
	for b, v := range spec {
		f := b
		if f > n/2 {
			f -= n
		}
		pw := real(v)*real(v) + imag(v)*imag(v)
		switch {
		case f >= -k/2 && f <= k/2:
			inBand += pw
		case f >= nn-k/2 && f <= nn+k/2:
			shifted += pw
		}
	}
	if inBand > 0.01*shifted {
		t.Fatalf("in-band leakage %v vs shifted %v", inBand, shifted)
	}
}

func TestModulatorPreservesPSSSymbol(t *testing.T) {
	// During PSS/SSS symbols the tag transmits plain (phase-0) square waves:
	// no phase flips may occur inside those symbols.
	ambient, p := ambientSubframe(t, ltephy.BW1_4, 0)
	m := NewModulator(ModConfig{Params: p})
	out, recs := m.ModulateSubframe(ambient, 0, true)
	for _, r := range recs {
		if r.Symbol == ltephy.PSSSymbolIndex || r.Symbol == ltephy.SSSSymbolIndex {
			t.Fatalf("record for sync symbol %d", r.Symbol)
		}
	}
	// Verify waveform: over the PSS symbol the ratio out/ambient must be a
	// pure phase-0 square wave (constant pattern repeated per unit).
	ov := p.Oversample
	start := ltephy.SymbolStart(p, ltephy.PSSSymbolIndex)
	end := start + p.UnitsPerSymbol(ltephy.PSSSymbolIndex%ltephy.SymbolsPerSlot)*ov
	var base []complex128
	for s := start; s < end; s++ {
		if cmplx.Abs(ambient[s]) < 1e-6 {
			continue
		}
		w := out[s] / ambient[s]
		if base == nil {
			base = make([]complex128, ov)
		}
		idx := s % ov
		if base[idx] == 0 {
			base[idx] = w
		} else if cmplx.Abs(base[idx]-w) > 1e-9 {
			t.Fatalf("switch waveform not constant over PSS symbol at sample %d", s)
		}
	}
}

func TestModulatorEmbedsBitsAsPhaseFlips(t *testing.T) {
	ambient, p := ambientSubframe(t, ltephy.BW1_4, 1)
	m := NewModulator(ModConfig{Params: p})
	r := rng.New(7)
	m.QueueBits(r.Bits(make([]byte, 12*p.UsefulModulationUnits())))
	out, recs := m.ModulateSubframe(ambient, 1, false)
	if len(recs) != 12 {
		t.Fatalf("%d records, want 12", len(recs))
	}
	// Pick a data symbol and verify each unit's switch phase matches its bit.
	rec := recs[3]
	if rec.Bits == nil {
		t.Fatal("data symbol carried no bits")
	}
	ov := p.Oversample
	symStartUnit := ltephy.SymbolStart(p, rec.Symbol) / ov
	w0 := symStartUnit + p.BW.CPLen(rec.Symbol%ltephy.SymbolsPerSlot) + (p.BW.FFTSize()-p.UsefulModulationUnits())/2
	for i, b := range rec.Bits {
		u := w0 + i
		s := u * ov // first sample of the unit
		if cmplx.Abs(ambient[s]) < 1e-6 {
			continue
		}
		w := out[s] / ambient[s]
		// Phase 0 (bit 1): first half-period is +; phase pi (bit 0): -.
		positive := real(w) > 0
		if positive != (b == 1) {
			t.Fatalf("unit %d: switch sign %v does not encode bit %d", i, positive, b)
		}
	}
}

func TestModulatorQueueAccounting(t *testing.T) {
	_, p := ambientSubframe(t, ltephy.BW1_4, 1)
	ambient, _ := ambientSubframe(t, ltephy.BW1_4, 1)
	m := NewModulator(ModConfig{Params: p})
	perSym := m.PerSymbolBits()
	m.QueueBits(make([]byte, 3*perSym+10))
	_, recs := m.ModulateSubframe(ambient, 1, false)
	dataSyms := 0
	for _, r := range recs {
		if r.Bits != nil && !r.IsPreamble {
			dataSyms++
		}
	}
	if dataSyms != 3 {
		t.Fatalf("modulated %d data symbols, want 3 (partial symbols wait)", dataSyms)
	}
	if m.QueuedBits() != 10 {
		t.Fatalf("queued remainder = %d, want 10", m.QueuedBits())
	}
	if m.SentBits() != 3*perSym {
		t.Fatalf("sent = %d, want %d", m.SentBits(), 3*perSym)
	}
}

func TestModulatorBurstPreambleFirst(t *testing.T) {
	ambient, p := ambientSubframe(t, ltephy.BW1_4, 0)
	m := NewModulator(ModConfig{Params: p})
	m.QueueBits(make([]byte, 20*p.UsefulModulationUnits()))
	_, recs := m.ModulateSubframe(ambient, 0, true)
	if !recs[0].IsPreamble {
		t.Fatal("burst did not open with a preamble")
	}
	for _, r := range recs[1:] {
		if r.IsPreamble {
			t.Fatal("multiple preambles in one burst")
		}
	}
}

func TestModulatorTimingErrorShiftsWindow(t *testing.T) {
	ambient, p := ambientSubframe(t, ltephy.BW1_4, 1)
	bits := make([]byte, 12*p.UsefulModulationUnits()) // all zeros -> phase pi
	a := NewModulator(ModConfig{Params: p})
	a.QueueBits(bits)
	outA, _ := a.ModulateSubframe(ambient, 1, false)
	b := NewModulator(ModConfig{Params: p, TimingErrorUnits: 4})
	b.QueueBits(append([]byte(nil), bits...))
	outB, _ := b.ModulateSubframe(ambient, 1, false)
	// The waveforms must differ (window moved) ...
	diff := 0
	for i := range outA {
		if outA[i] != outB[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("timing error had no effect")
	}
	// ... by exactly a 4-unit displacement of the phase pattern: outB at
	// sample s equals outA's pattern at s-4*ov (where both are in steady
	// data regions).
	ov := p.Oversample
	shift := 4 * ov
	mismatch := 0
	checked := 0
	start := ltephy.SymbolStart(p, 4)
	endS := ltephy.SymbolStart(p, 5)
	for s := start + shift; s < endS; s++ {
		if cmplx.Abs(ambient[s]) < 1e-6 || cmplx.Abs(ambient[s-shift]) < 1e-6 {
			continue
		}
		wA := outA[s-shift] / ambient[s-shift]
		wB := outB[s] / ambient[s]
		checked++
		if cmplx.Abs(wA-wB) > 1e-9 {
			mismatch++
		}
	}
	if checked == 0 || mismatch > 0 {
		t.Fatalf("shifted waveform mismatch: %d of %d samples", mismatch, checked)
	}
}

func TestSSBModeSingleSideband(t *testing.T) {
	ambient, p := ambientSubframe(t, ltephy.BW1_4, 1)
	m := NewModulator(ModConfig{Params: p, Mode: SSB})
	out, _ := m.ModulateSubframe(ambient, 1, false)
	n := p.BW.FFTSize() * p.Oversample
	start := ltephy.UsefulStart(p, 3)
	spec := dsp.FFT(append([]complex128(nil), out[start:start+n]...))
	k := p.BW.Subcarriers()
	nn := p.BW.FFTSize()
	var upper, lower float64
	for bnum, v := range spec {
		f := bnum
		if f > n/2 {
			f -= n
		}
		pw := real(v)*real(v) + imag(v)*imag(v)
		if f >= nn-k/2 && f <= nn+k/2 {
			upper += pw
		}
		if f >= -nn-k/2 && f <= -nn+k/2 {
			lower += pw
		}
	}
	if lower > 0.01*upper {
		t.Fatalf("SSB image rejection poor: lower %v vs upper %v", lower, upper)
	}
}

func TestNewModulatorRejectsOddOversample(t *testing.T) {
	p := ltephy.DefaultParams(ltephy.BW1_4)
	p.Oversample = 3
	defer func() {
		if recover() == nil {
			t.Fatal("odd oversample accepted")
		}
	}()
	NewModulator(ModConfig{Params: p})
}

func BenchmarkModulateSubframe1_4MHz(b *testing.B) {
	ambient, p := ambientSubframe(b, ltephy.BW1_4, 1)
	m := NewModulator(ModConfig{Params: p})
	m.QueueBits(make([]byte, 100*12*p.UsefulModulationUnits()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ModulateSubframe(ambient, 1, false)
	}
}
