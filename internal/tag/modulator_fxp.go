package tag

import (
	"fmt"
	"math"

	"lscatter/internal/dsp"
	"lscatter/internal/fxp"
)

// ApplyPlanFxp is the fixed-point lane of ApplyPlan: it applies a captured
// Plan's switch waveform to a Q1.15 ambient block. The reflection amplitude
// folds into the output block scale, so the per-sample work is a saturating
// sign flip for DSB (the hot case) or a Q1.15 rotation for SSB. Like
// ApplyPlan it is a pure function of its inputs.
func (m *Modulator) ApplyPlanFxp(ambient *fxp.Buf, pl Plan) *fxp.Buf {
	p := m.cfg.Params
	ov := p.Oversample
	need := ov * p.BW.SamplesPerSubframe()
	if ambient.Len() != need {
		panic(fmt.Sprintf("tag: subframe needs %d samples, got %d", need, ambient.Len()))
	}
	units := p.BW.SamplesPerSubframe()
	out := fxp.New(ambient.Len())
	out.Scale = ambient.Scale * math.Sqrt(dsp.FromDB(-m.cfg.ReflectionLossDB))
	shift := pl.Shift

	switch m.cfg.Mode {
	case DSB:
		// wave[m][0] is +1 for the first half-unit, -1 for the second;
		// phase pi flips it. Negation saturates (-32768 -> 32767), matching
		// the symmetric quantizer.
		for s := 0; s < ambient.Len(); s++ {
			local := s - shift
			var neg bool
			if local < 0 {
				neg = ((local%ov)+ov)%ov >= ov/2
			} else {
				neg = local%ov >= ov/2
				if u := local / ov; u < units && pl.Phase[u] {
					neg = !neg
				}
			}
			if neg {
				out.I[s] = fxp.SatSub(0, ambient.I[s])
				out.Q[s] = fxp.SatSub(0, ambient.Q[s])
			} else {
				out.I[s] = ambient.I[s]
				out.Q[s] = ambient.Q[s]
			}
		}
	case SSB:
		// Quantize the ov unit phasors (and their phase-pi negations) once.
		wave := switchWave(ov, SSB)
		type q15c struct{ re, im int16 }
		tab := make([][2]q15c, ov)
		for mi := 0; mi < ov; mi++ {
			for ph := 0; ph < 2; ph++ {
				w := wave[mi][ph]
				tab[mi][ph] = q15c{fxp.QuantQ15(real(w)), fxp.QuantQ15(imag(w))}
			}
		}
		for s := 0; s < ambient.Len(); s++ {
			local := s - shift
			var c q15c
			if local < 0 {
				c = tab[((local%ov)+ov)%ov][0]
			} else {
				mIdx := local % ov
				ph := 0
				if u := local / ov; u < units && pl.Phase[u] {
					ph = 1
				}
				c = tab[mIdx][ph]
			}
			out.I[s], out.Q[s] = fxp.RotateSample(ambient.I[s], ambient.Q[s], c.re, c.im)
		}
	}
	return out
}

// ModulateSubframeFxp is the fixed-point lane of ModulateSubframe: it
// consumes the same bit queue and produces the same records, applying the
// waveform in Q1.15. Equivalent to PlanSubframe followed by ApplyPlanFxp.
func (m *Modulator) ModulateSubframeFxp(ambient *fxp.Buf, subframe int, startBurst bool) (*fxp.Buf, []SymbolRecord) {
	pl := m.PlanSubframe(subframe, startBurst)
	return m.ApplyPlanFxp(ambient, pl), pl.Records
}

// ParkedSubframeFxp is the fixed-point lane of ParkedSubframe. The parked
// echo is a pure attenuation, which the block-scale representation absorbs
// without touching a sample: the result is a read-only scaled view of the
// ambient block.
func (m *Modulator) ParkedSubframeFxp(ambient *fxp.Buf) *fxp.Buf {
	return ambient.ScaledView(m.ParkedGain())
}
