package tag

import (
	"fmt"
	"math"

	"lscatter/internal/bits"
	"lscatter/internal/dsp"
	"lscatter/internal/ltephy"
)

// Mode selects the switch waveform topology.
type Mode int

const (
	// DSB is plain two-level square-wave switching: both sidebands at
	// fc ± 1/Ts are produced; the receiver uses the upper one.
	DSB Mode = iota
	// SSB is quadrature multi-phase switching (HitchHike-style image
	// rejection): only the upper sideband is produced.
	SSB
)

// PreambleLen is the number of bits in the per-burst preamble: exactly one
// symbol's worth of useful modulation units at 20 MHz. At narrower
// bandwidths the preamble is truncated to the per-symbol bit count.
const PreambleLen = 1200

// Preamble returns the pre-defined preamble bit pattern for n bits: a fixed
// PRBS-15 segment known to both tag and UE (§3.3.2). Equivalent to
// PreambleFor(0, n).
func Preamble(n int) []byte { return PreambleFor(0, n) }

// PreambleFor returns the preamble of the tag with the given ID. Distinct
// IDs select distinct PRBS segments with low cross-correlation, so a
// receiver can tell which of several tags opened a burst (the multi-tag
// extension of §6: tags share the excitation by TDMA and identify
// themselves by preamble).
func PreambleFor(id int, n int) []byte {
	seed := uint16(0x35a1) ^ uint16(id*0x2f1d+id<<7)
	return bits.PRBS(seed, n)
}

// ModConfig parameterizes the modulator.
type ModConfig struct {
	// Params must match the ambient waveform.
	Params ltephy.Params
	// Mode selects DSB or SSB switching.
	Mode Mode
	// ReflectionLossDB is the tag's reflection efficiency (antenna capture,
	// switch insertion loss, harmonic split). Default 6 dB.
	ReflectionLossDB float64
	// TimingErrorUnits is the tag's residual symbol-timing error after
	// calibrated synchronization, in basic-timing units (may be negative).
	// The §3.2.3 slack absorbs |error| up to ~(useful-CP-window)/2 units.
	TimingErrorUnits int
	// SampleOffset is the sub-unit misalignment in oversampled samples
	// [0, Oversample): it produces the common phase offset φ of §3.3.1.
	SampleOffset int
	// ID identifies this tag in multi-tag deployments; it selects the
	// preamble pattern (PreambleFor). Zero is the single-tag default.
	ID int
}

// SymbolRecord logs what the tag embedded into one OFDM symbol.
type SymbolRecord struct {
	// Symbol is the OFDM symbol index within the subframe (0..13).
	Symbol int
	// Bits are the embedded bits (nil for skipped symbols).
	Bits []byte
	// IsPreamble marks the known preamble symbol opening a burst.
	IsPreamble bool
}

// Modulator applies the LScatter switch waveform to ambient samples. It is
// stateful across subframes: a new burst (preamble + data) starts at each
// half-frame boundary, i.e. right after each PSS the sync circuit reports.
type Modulator struct {
	cfg        ModConfig
	perSymBits int
	pending    []byte // bits waiting to be sent
	sent       int    // total data bits modulated
}

// NewModulator builds a modulator. It panics if the oversampling factor is
// odd (the two-level square wave needs an integer half-period).
func NewModulator(cfg ModConfig) *Modulator {
	if err := cfg.Params.Validate(); err != nil {
		panic(err)
	}
	if cfg.Params.Oversample%2 != 0 {
		panic("tag: oversampling factor must be even for square-wave switching")
	}
	if cfg.ReflectionLossDB == 0 {
		cfg.ReflectionLossDB = 6
	}
	if cfg.SampleOffset < 0 || cfg.SampleOffset >= cfg.Params.Oversample {
		panic(fmt.Sprintf("tag: sample offset %d out of [0,%d)", cfg.SampleOffset, cfg.Params.Oversample))
	}
	return &Modulator{
		cfg:        cfg,
		perSymBits: cfg.Params.UsefulModulationUnits(),
	}
}

// PerSymbolBits returns the data bits carried per modulated OFDM symbol.
func (m *Modulator) PerSymbolBits() int { return m.perSymBits }

// TimingError returns the current residual timing error in basic-timing
// units.
func (m *Modulator) TimingError() int { return m.cfg.TimingErrorUnits }

// SetTimingError updates the residual symbol-timing error applied to
// subsequent subframes. The fault-injection chain calls this once per
// subframe to model the wander of the sync circuit's timing estimate
// (impair.JitterConfig); a fixed ModConfig.TimingErrorUnits models only the
// static calibration residual.
func (m *Modulator) SetTimingError(units int) { m.cfg.TimingErrorUnits = units }

// QueueBits appends payload bits to the transmit queue.
func (m *Modulator) QueueBits(b []byte) { m.pending = append(m.pending, b...) }

// QueuedBits returns the number of bits waiting.
func (m *Modulator) QueuedBits() int { return len(m.pending) }

// SentBits returns the total data bits modulated so far.
func (m *Modulator) SentBits() int { return m.sent }

// parkLossDB models the parked antenna's reduced radar cross-section
// relative to the switching state.
const parkLossDB = 10

// ParkedGain returns the amplitude coefficient of the parked-switch echo:
// ParkedSubframe multiplies the ambient waveform by exactly this value. A
// fleet-scale scheduler sums these coefficients (times each tag's scalar
// path gain) to advance thousands of parked tags in closed form instead of
// per sample.
func (m *Modulator) ParkedGain() float64 {
	return math.Sqrt(dsp.FromDB(-m.cfg.ReflectionLossDB - parkLossDB))
}

// ParkedSubframe models a tag that is not scheduled in this TDMA slot: the
// switch is parked (no square-wave toggling), so the reflection is a weak
// static in-band echo — indistinguishable from environmental clutter and,
// crucially, absent from the shifted backscatter band where another tag may
// be transmitting.
func (m *Modulator) ParkedSubframe(ambient []complex128) []complex128 {
	out := make([]complex128, len(ambient))
	amp := complex(m.ParkedGain(), 0)
	for i, v := range ambient {
		out[i] = v * amp
	}
	return out
}

// DataSymbols lists the OFDM symbols of a subframe the tag modulates: the
// PDSCH region (symbols 2..13), excluding PSS/SSS symbols in subframes 0/5
// so the critical sync information passes through unmodified (§3.1). The UE
// demodulator uses the same schedule.
func DataSymbols(subframe int) []int {
	var out []int
	for l := 2; l < ltephy.SymbolsPerSubframe; l++ {
		if (subframe == 0 || subframe == 5) &&
			(l == ltephy.PSSSymbolIndex || l == ltephy.SSSSymbolIndex) {
			continue
		}
		out = append(out, l)
	}
	return out
}

// windowStartUnit returns the first basic-timing unit (within the symbol,
// CP included) of the useful-modulation window: the window is centered in
// the useful part so the §3.2.3 slack is split evenly on both sides.
func windowStartUnit(p ltephy.Params, l int) int {
	cp := p.BW.CPLen(l % ltephy.SymbolsPerSlot)
	useful := p.BW.FFTSize()
	return cp + (useful-p.UsefulModulationUnits())/2
}

// DataWindows returns, for each data symbol of the subframe (in DataSymbols
// order), the first basic-timing unit of its useful-modulation window
// relative to the subframe start. It is PlanSubframe's schedule arithmetic
// exposed for consumers that pack modulation plans without a Modulator (the
// simlink streamer).
func DataWindows(p ltephy.Params, subframe int) []int {
	ov := p.Oversample
	var out []int
	for _, l := range DataSymbols(subframe) {
		out = append(out, ltephy.SymbolStart(p, l)/ov+windowStartUnit(p, l))
	}
	return out
}

// Plan is one subframe's modulation schedule, captured before the waveform
// is touched: the per-unit switch phase, the symbol records, and the timing
// shift in effect at planning time. Splitting planning (which consumes
// payload bits and mutates modulator state) from waveform application
// (which is a pure function of ambient + Plan) is what lets the
// subframe-parallel runner fan the per-sample work out to workers while the
// bit queue advances strictly in order.
type Plan struct {
	// Phase is the per-unit switch phase in the tag's local clock:
	// false = 0, true = pi.
	Phase []bool
	// Records lists what each modulated symbol carried.
	Records []SymbolRecord
	// Shift is the waveform shift in oversampled samples
	// (TimingErrorUnits*Oversample + SampleOffset) captured at plan time.
	Shift int
}

// PlanSubframe builds the modulation schedule for one subframe, consuming
// payload bits from the queue exactly as ModulateSubframe would. startBurst
// begins a new burst: the first modulated symbol carries the preamble.
func (m *Modulator) PlanSubframe(subframe int, startBurst bool) Plan {
	p := m.cfg.Params
	ov := p.Oversample
	// Build the per-unit phase schedule for the whole subframe in the tag's
	// local clock. true switch-phase per unit: false=0, true=pi.
	unitsPerSubframe := p.BW.SamplesPerSubframe()
	phase := make([]bool, unitsPerSubframe)
	var records []SymbolRecord
	preambleNext := startBurst
	for _, l := range DataSymbols(subframe) {
		symStartUnit := ltephy.SymbolStart(p, l) / ov
		w0 := symStartUnit + windowStartUnit(p, l)
		var symBits []byte
		isPre := false
		if preambleNext {
			symBits = PreambleFor(m.cfg.ID, m.perSymBits)
			isPre = true
			preambleNext = false
		} else if len(m.pending) >= m.perSymBits {
			symBits = m.pending[:m.perSymBits]
			m.pending = m.pending[m.perSymBits:]
			m.sent += m.perSymBits
		} else {
			// Not enough payload: leave the symbol as plain square waves
			// (all bits '1' = phase 0, per §3.2.3).
			records = append(records, SymbolRecord{Symbol: l})
			continue
		}
		for i, b := range symBits {
			u := w0 + i
			if u >= 0 && u < unitsPerSubframe {
				// Paper convention: data '1' -> phase 0, '0' -> phase pi.
				phase[u] = b == 0
			}
		}
		records = append(records, SymbolRecord{Symbol: l, Bits: symBits, IsPreamble: isPre})
	}
	return Plan{
		Phase:   phase,
		Records: records,
		Shift:   m.cfg.TimingErrorUnits*ov + m.cfg.SampleOffset,
	}
}

// ApplyPlan applies the switch waveform of a captured Plan to one subframe
// of ambient samples: a pure function of its inputs, safe to run
// concurrently with planning of later subframes.
func (m *Modulator) ApplyPlan(ambient []complex128, pl Plan) []complex128 {
	p := m.cfg.Params
	ov := p.Oversample
	need := ov * p.BW.SamplesPerSubframe()
	if len(ambient) != need {
		panic(fmt.Sprintf("tag: subframe needs %d samples, got %d", need, len(ambient)))
	}
	unitsPerSubframe := p.BW.SamplesPerSubframe()
	out := make([]complex128, len(ambient))
	ampA := complex(math.Sqrt(dsp.FromDB(-m.cfg.ReflectionLossDB)), 0)
	shift := pl.Shift
	wave := switchWave(p.Oversample, m.cfg.Mode)
	for s := range ambient {
		local := s - shift
		var w complex128
		if local < 0 {
			// Before the tag's clock started: plain phase-0 wave.
			w = wave[((local%ov)+ov)%ov][0]
		} else {
			u := local / ov
			mIdx := local % ov
			ph := 0
			if u < unitsPerSubframe && pl.Phase[u] {
				ph = 1
			}
			w = wave[mIdx][ph]
		}
		out[s] = ambient[s] * w * ampA
	}
	return out
}

// ModulateSubframe reflects one subframe of ambient samples. ambient must be
// aligned to the true subframe boundary and hold exactly one subframe. The
// tag's own timing error is applied internally. startBurst begins a new
// burst: the first modulated symbol carries the preamble. The returned
// records list what each symbol carried. Equivalent to PlanSubframe followed
// by ApplyPlan.
func (m *Modulator) ModulateSubframe(ambient []complex128, subframe int, startBurst bool) ([]complex128, []SymbolRecord) {
	p := m.cfg.Params
	need := p.Oversample * p.BW.SamplesPerSubframe()
	if len(ambient) != need {
		panic(fmt.Sprintf("tag: subframe needs %d samples, got %d", need, len(ambient)))
	}
	pl := m.PlanSubframe(subframe, startBurst)
	return m.ApplyPlan(ambient, pl), pl.Records
}

// switchWave precomputes the switch waveform over one unit period:
// wave[m][phase] for phase 0 and pi.
func switchWave(ov int, mode Mode) [][2]complex128 {
	w := make([][2]complex128, ov)
	for m := 0; m < ov; m++ {
		switch mode {
		case DSB:
			v := complex(1, 0)
			if m >= ov/2 {
				v = -1
			}
			w[m][0] = v
			w[m][1] = -v
		case SSB:
			// Quadrature multi-phase switching: e^{j 2 pi m / ov}.
			a := 2 * math.Pi * float64(m) / float64(ov)
			w[m][0] = complex(math.Cos(a), math.Sin(a))
			w[m][1] = -w[m][0]
		}
	}
	return w
}
