package power

import (
	"strings"
	"testing"

	"lscatter/internal/ltephy"
)

func TestBudgetMatchesPaperNumbers(t *testing.T) {
	b := TagBudget(ltephy.BW20, CrystalOscillator)
	if b.SyncComparator != 10e-6 {
		t.Fatalf("comparator = %v, want 10 uW", b.SyncComparator)
	}
	if b.RFSwitch < 56.9e-6 || b.RFSwitch > 57.1e-6 {
		t.Fatalf("switch at 20 MHz = %v, want 57 uW", b.RFSwitch)
	}
	if b.Baseband != 82e-6 {
		t.Fatalf("baseband = %v, want 82 uW", b.Baseband)
	}
	if b.Clock < 4.4e-3 || b.Clock > 4.6e-3 {
		t.Fatalf("30.72 MHz crystal = %v, want ~4.5 mW", b.Clock)
	}
}

func TestClockAnchors(t *testing.T) {
	// §4.8: a 1.4 MHz tag uses a 1.92 MHz clock at 588 uW.
	b := TagBudget(ltephy.BW1_4, CrystalOscillator)
	if b.Clock < 580e-6 || b.Clock > 600e-6 {
		t.Fatalf("1.92 MHz crystal = %v, want 588 uW", b.Clock)
	}
}

func TestRingOscillatorMicrowatts(t *testing.T) {
	// §4.8: ring oscillators bring the 30 MHz clock to ~4 uW, making the
	// whole tag tens of microwatts.
	b := TagBudget(ltephy.BW20, RingOscillator)
	if b.Clock > 6e-6 {
		t.Fatalf("ring oscillator = %v, want ~4 uW", b.Clock)
	}
	if tot := b.Total(); tot > 200e-6 {
		t.Fatalf("IC-design total = %v, want well under 200 uW", tot)
	}
}

func TestSwitchScalesWithBandwidth(t *testing.T) {
	prev := 0.0
	for _, bw := range ltephy.Bandwidths {
		b := TagBudget(bw, RingOscillator)
		if b.RFSwitch <= prev {
			t.Fatalf("%v: switch power %v not increasing", bw, b.RFSwitch)
		}
		prev = b.RFSwitch
	}
}

func TestOrdersOfMagnitudeBelowActiveRadios(t *testing.T) {
	tag := TagBudget(ltephy.BW20, RingOscillator).Total()
	for _, radio := range []string{"wifi", "ble", "zigbee"} {
		if ActiveRadioPower(radio) < 100*tag {
			t.Fatalf("%s (%v W) not >=100x tag (%v W)", radio, ActiveRadioPower(radio), tag)
		}
	}
}

func TestBudgetString(t *testing.T) {
	s := TagBudget(ltephy.BW5, RingOscillator).String()
	if !strings.Contains(s, "total=") {
		t.Fatalf("budget string %q", s)
	}
}
