// Package power implements the tag power-consumption accounting of §4.8:
// the synchronization comparator, the reflective RF switch (consumption
// proportional to channel bandwidth), the Flash-Freeze FPGA baseband, and
// the clock source, with both crystal-oscillator and ring-oscillator
// options.
package power

import (
	"fmt"

	"lscatter/internal/ltephy"
)

// ClockSource selects the tag clock implementation.
type ClockSource int

const (
	// CrystalOscillator is the COTS option: LTC6990 at 1.92 MHz (588 uW)
	// up to CSX-252F at 30.72 MHz (4.5 mW).
	CrystalOscillator ClockSource = iota
	// RingOscillator is the IC-design option used by HitchHike and
	// Interscatter: ~4 uW at 30 MHz, ~9.7 uW at 35.75 MHz.
	RingOscillator
)

// Budget itemizes the tag's power draw in watts.
type Budget struct {
	// SyncComparator is the MAX931-class comparator of the sync circuit.
	SyncComparator float64
	// RFSwitch is the ADG902 reflective switch.
	RFSwitch float64
	// Baseband is the Igloo Nano FPGA with Flash-Freeze on 80% of flash.
	Baseband float64
	// Clock is the oscillator.
	Clock float64
}

// Total returns the summed draw in watts.
func (b Budget) Total() float64 {
	return b.SyncComparator + b.RFSwitch + b.Baseband + b.Clock
}

// String formats the budget in microwatts.
func (b Budget) String() string {
	return fmt.Sprintf("sync=%.1fuW switch=%.1fuW baseband=%.1fuW clock=%.1fuW total=%.1fuW",
		b.SyncComparator*1e6, b.RFSwitch*1e6, b.Baseband*1e6, b.Clock*1e6, b.Total()*1e6)
}

// Component constants from the paper's datasheet accounting.
const (
	// comparatorPower: MAX931-class ultra-low-power comparator (~10 uW).
	comparatorPower = 10e-6
	// switchPowerAt20MHz: ADG902 at the maximum 20 MHz channel (~57 uW);
	// consumption scales linearly with bandwidth (§4.8 / FS-Backscatter).
	switchPowerAt20MHz = 57e-6
	// basebandPower: AGLN250 with 80% Flash-Freeze (~82 uW).
	basebandPower = 82e-6
)

// clockPower returns the oscillator draw for the clock rate the given
// bandwidth requires (the LTE oversampling ratio means the clock runs at
// FFTSize * 15 kHz, above the occupied bandwidth).
func clockPower(bw ltephy.Bandwidth, src ClockSource) float64 {
	rate := bw.SampleRate() // 1.92 MHz .. 30.72 MHz
	switch src {
	case CrystalOscillator:
		// Interpolate between the two datasheet anchor points:
		// LTC6990 at 1.92 MHz = 588 uW, CSX-252F at 30.72 MHz = 4.5 mW.
		lo, hi := 588e-6, 4.5e-3
		frac := (rate - 1.92e6) / (30.72e6 - 1.92e6)
		return lo + frac*(hi-lo)
	case RingOscillator:
		// ~4 uW at 30 MHz, scaling linearly with frequency.
		return 4e-6 * rate / 30e6
	}
	panic("power: unknown clock source")
}

// TagBudget returns the itemized power budget for a tag operating at the
// given bandwidth with the given clock source.
func TagBudget(bw ltephy.Bandwidth, clock ClockSource) Budget {
	return Budget{
		SyncComparator: comparatorPower,
		RFSwitch:       switchPowerAt20MHz * bw.MHz() / 20,
		Baseband:       basebandPower,
		Clock:          clockPower(bw, clock),
	}
}

// ActiveRadioPower returns the typical transmit power draw of a conventional
// active radio for comparison (the §5 motivation: tens to hundreds of mW for
// WiFi/BLE/ZigBee wearables).
func ActiveRadioPower(radio string) float64 {
	switch radio {
	case "wifi":
		return 210e-3
	case "ble":
		return 18e-3
	case "zigbee":
		return 35e-3
	}
	return 100e-3
}
