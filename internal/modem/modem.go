// Package modem implements the digital constellations used by the LTE PHY
// (QPSK, 16-QAM, 64-QAM per 3GPP TS 36.211 §7.1) and the binary phase
// alphabet of the backscatter link, with hard and soft demapping and EVM
// measurement.
package modem

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Scheme identifies a constellation.
type Scheme int

const (
	// BPSK maps 0 -> +1, 1 -> -1.
	BPSK Scheme = iota
	// QPSK is the LTE Gray-coded QPSK.
	QPSK
	// QAM16 is the LTE 16-QAM.
	QAM16
	// QAM64 is the LTE 64-QAM.
	QAM64
)

// String returns the scheme name.
func (s Scheme) String() string {
	switch s {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16QAM"
	case QAM64:
		return "64QAM"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// BitsPerSymbol returns the number of bits carried by one symbol.
func (s Scheme) BitsPerSymbol() int {
	switch s {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	}
	panic("modem: unknown scheme")
}

// lteAmplitude returns the per-axis levels for the LTE QAM constellations,
// normalized to unit average symbol energy. TS 36.211 defines 16-QAM levels
// {±1, ±3}/sqrt(10) and 64-QAM levels {±1,±3,±5,±7}/sqrt(42).
func axisLevel16(b0, b1 byte) float64 {
	// TS 36.211 Table 7.1.3-1: bit pattern (b0,b1) per axis ->
	// 00:1, 01:3 ... with sign from b0: 0=+, 1=-
	mag := 1.0
	if b1 == 1 {
		mag = 3.0
	}
	v := mag / math.Sqrt(10)
	if b0 == 1 {
		v = -v
	}
	return v
}

func axisLevel64(b0, b1, b2 byte) float64 {
	// TS 36.211 Table 7.1.4-1 axis magnitudes by (b1,b2): 00:3,01:1,10:5,11:7
	var mag float64
	switch b1<<1 | b2 {
	case 0b00:
		mag = 3
	case 0b01:
		mag = 1
	case 0b10:
		mag = 5
	case 0b11:
		mag = 7
	}
	v := mag / math.Sqrt(42)
	if b0 == 1 {
		v = -v
	}
	return v
}

// Map modulates a bit slice into symbols. The bit count must be a multiple
// of BitsPerSymbol.
func Map(s Scheme, b []byte) []complex128 {
	bps := s.BitsPerSymbol()
	if len(b)%bps != 0 {
		panic(fmt.Sprintf("modem: %d bits not a multiple of %d", len(b), bps))
	}
	out := make([]complex128, len(b)/bps)
	for i := range out {
		out[i] = MapSymbol(s, b[i*bps:(i+1)*bps])
	}
	return out
}

// MapSymbol modulates exactly BitsPerSymbol bits into one symbol.
func MapSymbol(s Scheme, b []byte) complex128 {
	switch s {
	case BPSK:
		if b[0] == 0 {
			return 1
		}
		return -1
	case QPSK:
		// TS 36.211: I from b0, Q from b1, each (1-2b)/sqrt(2)
		return complex((1-2*float64(b[0]))/math.Sqrt2, (1-2*float64(b[1]))/math.Sqrt2)
	case QAM16:
		return complex(axisLevel16(b[0], b[2]), axisLevel16(b[1], b[3]))
	case QAM64:
		return complex(axisLevel64(b[0], b[2], b[4]), axisLevel64(b[1], b[3], b[5]))
	}
	panic("modem: unknown scheme")
}

// Demap hard-slices symbols back to bits (minimum Euclidean distance).
func Demap(s Scheme, syms []complex128) []byte {
	bps := s.BitsPerSymbol()
	out := make([]byte, 0, len(syms)*bps)
	for _, sym := range syms {
		out = append(out, DemapSymbol(s, sym)...)
	}
	return out
}

// DemapSymbol hard-slices one symbol.
func DemapSymbol(s Scheme, sym complex128) []byte {
	switch s {
	case BPSK:
		if real(sym) >= 0 {
			return []byte{0}
		}
		return []byte{1}
	case QPSK:
		return []byte{signBit(real(sym)), signBit(imag(sym))}
	case QAM16:
		i0, i1 := slice16(real(sym))
		q0, q1 := slice16(imag(sym))
		return []byte{i0, q0, i1, q1}
	case QAM64:
		i0, i1, i2 := slice64(real(sym))
		q0, q1, q2 := slice64(imag(sym))
		return []byte{i0, q0, i1, q1, i2, q2}
	}
	panic("modem: unknown scheme")
}

func signBit(v float64) byte {
	if v < 0 {
		return 1
	}
	return 0
}

func slice16(v float64) (b0, b1 byte) {
	b0 = signBit(v)
	if math.Abs(v) > 2/math.Sqrt(10) {
		b1 = 1
	}
	return b0, b1
}

func slice64(v float64) (b0, b1, b2 byte) {
	b0 = signBit(v)
	a := math.Abs(v) * math.Sqrt(42)
	// Axis magnitudes: b1b2 -> 01:1, 00:3, 10:5, 11:7; thresholds 2,4,6.
	switch {
	case a < 2:
		b1, b2 = 0, 1
	case a < 4:
		b1, b2 = 0, 0
	case a < 6:
		b1, b2 = 1, 0
	default:
		b1, b2 = 1, 1
	}
	return b0, b1, b2
}

// DemapSoft produces per-bit LLRs (positive = bit 0 likely) using the
// max-log approximation with the given noise variance.
func DemapSoft(s Scheme, syms []complex128, noiseVar float64) []float64 {
	if noiseVar <= 0 {
		noiseVar = 1e-12
	}
	bps := s.BitsPerSymbol()
	points, bitsOf := constellationTable(s)
	out := make([]float64, 0, len(syms)*bps)
	for _, y := range syms {
		for bit := 0; bit < bps; bit++ {
			best0, best1 := math.Inf(1), math.Inf(1)
			for pi, p := range points {
				d := y - p
				dist := real(d)*real(d) + imag(d)*imag(d)
				if bitsOf[pi][bit] == 0 {
					if dist < best0 {
						best0 = dist
					}
				} else if dist < best1 {
					best1 = dist
				}
			}
			out = append(out, (best1-best0)/noiseVar)
		}
	}
	return out
}

// constellationTable enumerates every point of the scheme with its bits.
func constellationTable(s Scheme) ([]complex128, [][]byte) {
	bps := s.BitsPerSymbol()
	n := 1 << bps
	points := make([]complex128, n)
	bitsOf := make([][]byte, n)
	for v := 0; v < n; v++ {
		b := make([]byte, bps)
		for i := range b {
			b[i] = byte(v >> (bps - 1 - i) & 1)
		}
		points[v] = MapSymbol(s, b)
		bitsOf[v] = b
	}
	return points, bitsOf
}

// EVM returns the root-mean-square error-vector magnitude (as a fraction of
// the RMS reference amplitude) between received and reference symbols.
func EVM(received, reference []complex128) float64 {
	if len(received) != len(reference) || len(received) == 0 {
		panic("modem: EVM needs equal non-empty slices")
	}
	var errP, refP float64
	for i := range received {
		d := received[i] - reference[i]
		errP += real(d)*real(d) + imag(d)*imag(d)
		refP += real(reference[i])*real(reference[i]) + imag(reference[i])*imag(reference[i])
	}
	if refP == 0 {
		return math.Inf(1)
	}
	return math.Sqrt(errP / refP)
}

// SNRFromEVM converts an EVM fraction to the equivalent linear SNR.
func SNRFromEVM(evm float64) float64 {
	if evm <= 0 {
		return math.Inf(1)
	}
	return 1 / (evm * evm)
}

// PhaseOf returns the principal argument of a symbol in radians.
func PhaseOf(sym complex128) float64 { return cmplx.Phase(sym) }
