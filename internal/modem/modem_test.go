package modem

import (
	"math"
	"testing"
	"testing/quick"

	"lscatter/internal/bits"
	"lscatter/internal/rng"
)

func TestBitsPerSymbol(t *testing.T) {
	cases := map[Scheme]int{BPSK: 1, QPSK: 2, QAM16: 4, QAM64: 6}
	for s, want := range cases {
		if got := s.BitsPerSymbol(); got != want {
			t.Errorf("%v.BitsPerSymbol = %d, want %d", s, got, want)
		}
	}
}

func TestMapDemapRoundTrip(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		for _, s := range []Scheme{BPSK, QPSK, QAM16, QAM64} {
			n := (r.Intn(50) + 1) * s.BitsPerSymbol()
			b := r.Bits(make([]byte, n))
			if bits.CountDiff(Demap(s, Map(s, b)), b) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestUnitAveragePower(t *testing.T) {
	for _, s := range []Scheme{BPSK, QPSK, QAM16, QAM64} {
		pts, _ := constellationTable(s)
		var p float64
		for _, c := range pts {
			p += real(c)*real(c) + imag(c)*imag(c)
		}
		p /= float64(len(pts))
		if math.Abs(p-1) > 1e-12 {
			t.Errorf("%v average power = %v, want 1", s, p)
		}
	}
}

func TestQPSKMatchesLTETable(t *testing.T) {
	inv := 1 / math.Sqrt2
	cases := []struct {
		b    []byte
		want complex128
	}{
		{[]byte{0, 0}, complex(inv, inv)},
		{[]byte{0, 1}, complex(inv, -inv)},
		{[]byte{1, 0}, complex(-inv, inv)},
		{[]byte{1, 1}, complex(-inv, -inv)},
	}
	for _, c := range cases {
		got := MapSymbol(QPSK, c.b)
		if math.Abs(real(got)-real(c.want)) > 1e-12 || math.Abs(imag(got)-imag(c.want)) > 1e-12 {
			t.Errorf("QPSK %v = %v, want %v", c.b, got, c.want)
		}
	}
}

func TestQAM16MatchesLTETable(t *testing.T) {
	// TS 36.211 Table 7.1.3-1 spot checks.
	s10 := math.Sqrt(10)
	cases := []struct {
		b    []byte
		want complex128
	}{
		{[]byte{0, 0, 0, 0}, complex(1/s10, 1/s10)},
		{[]byte{0, 0, 1, 1}, complex(3/s10, 3/s10)},
		{[]byte{1, 1, 1, 1}, complex(-3/s10, -3/s10)},
		{[]byte{1, 0, 0, 1}, complex(-1/s10, 3/s10)},
	}
	for _, c := range cases {
		got := MapSymbol(QAM16, c.b)
		if math.Abs(real(got)-real(c.want)) > 1e-12 || math.Abs(imag(got)-imag(c.want)) > 1e-12 {
			t.Errorf("16QAM %v = %v, want %v", c.b, got, c.want)
		}
	}
}

func TestGrayPropertyNeighborsDifferByOneBit(t *testing.T) {
	// For 64-QAM, horizontally adjacent points must differ in exactly one bit
	// (Gray mapping) — the property that bounds bit errors per symbol error.
	pts, bts := constellationTable(QAM64)
	s42 := math.Sqrt(42)
	for i, p := range pts {
		for j, q := range pts {
			if i == j {
				continue
			}
			dx := math.Abs(real(p)-real(q)) * s42
			dy := math.Abs(imag(p)-imag(q)) * s42
			if dx < 2.1 && dy < 0.1 || dy < 2.1 && dx < 0.1 {
				if dx+dy > 0.1 && bits.CountDiff(bts[i], bts[j]) != 1 {
					t.Fatalf("adjacent 64QAM points %v,%v differ by %d bits", p, q, bits.CountDiff(bts[i], bts[j]))
				}
			}
		}
	}
}

func TestDemapNoisyStillCorrect(t *testing.T) {
	r := rng.New(10)
	for _, s := range []Scheme{QPSK, QAM16} {
		b := r.Bits(make([]byte, 400*s.BitsPerSymbol()))
		syms := Map(s, b)
		for i := range syms {
			syms[i] += r.Complex(0.02) // tiny noise
		}
		if bits.CountDiff(Demap(s, syms), b) != 0 {
			t.Errorf("%v: tiny noise caused bit errors", s)
		}
	}
}

func TestDemapSoftSignsMatchHard(t *testing.T) {
	r := rng.New(11)
	for _, s := range []Scheme{BPSK, QPSK, QAM16, QAM64} {
		b := r.Bits(make([]byte, 60*s.BitsPerSymbol()))
		syms := Map(s, b)
		llr := DemapSoft(s, syms, 0.1)
		hard := Demap(s, syms)
		for i := range hard {
			var soft byte
			if llr[i] < 0 {
				soft = 1
			}
			if soft != hard[i] {
				t.Fatalf("%v: soft/hard disagreement at clean bit %d", s, i)
			}
		}
	}
}

func TestDemapSoftConfidenceScalesWithNoiseVar(t *testing.T) {
	sym := []complex128{MapSymbol(QPSK, []byte{0, 0})}
	low := DemapSoft(QPSK, sym, 0.01)
	high := DemapSoft(QPSK, sym, 1.0)
	if math.Abs(low[0]) <= math.Abs(high[0]) {
		t.Fatal("LLR magnitude did not grow with lower noise variance")
	}
}

func TestEVMZeroForIdentical(t *testing.T) {
	r := rng.New(12)
	syms := Map(QPSK, r.Bits(make([]byte, 100)))
	if e := EVM(syms, syms); e != 0 {
		t.Fatalf("EVM of identical = %v", e)
	}
}

func TestEVMKnownOffset(t *testing.T) {
	ref := []complex128{1, 1, 1, 1}
	rx := []complex128{1.1, 1.1, 1.1, 1.1}
	if e := EVM(rx, ref); math.Abs(e-0.1) > 1e-12 {
		t.Fatalf("EVM = %v, want 0.1", e)
	}
}

func TestSNRFromEVM(t *testing.T) {
	if s := SNRFromEVM(0.1); math.Abs(s-100) > 1e-9 {
		t.Fatalf("SNR from EVM 0.1 = %v, want 100", s)
	}
	if !math.IsInf(SNRFromEVM(0), 1) {
		t.Fatal("SNR from zero EVM not +inf")
	}
}

func TestMapPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Map accepted misaligned bit count")
		}
	}()
	Map(QPSK, []byte{1})
}

func TestSchemeString(t *testing.T) {
	if QAM64.String() != "64QAM" || BPSK.String() != "BPSK" {
		t.Fatal("scheme names wrong")
	}
}

func BenchmarkMapQAM64(b *testing.B) {
	r := rng.New(1)
	bitsIn := r.Bits(make([]byte, 6000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Map(QAM64, bitsIn)
	}
}

func BenchmarkDemapSoftQAM16(b *testing.B) {
	r := rng.New(1)
	syms := Map(QAM16, r.Bits(make([]byte, 4000)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DemapSoft(QAM16, syms, 0.1)
	}
}
