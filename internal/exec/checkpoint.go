package exec

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sync/atomic"

	"lscatter/internal/store"
)

// Checkpointed wraps any executor with a durable content-addressed store:
// every computed artifact is recorded under the job's store key, and — when
// Resume is set — a job whose artifact is already in the store is answered
// from it without recompute. A sweep killed after K of N artifacts and
// restarted over the same directory therefore recomputes exactly N−K.
//
// Correctness rests on the determinism contract: the stored bytes for a key
// are the bytes any executor would produce for that job, so restoring is
// indistinguishable from recomputing. The store itself guards against
// torn or corrupt checkpoints (atomic writes, checksummed reads), and its
// advisory lock makes the directory safe to share with sibling processes —
// workers checkpointing into the directory a later resume reads is the
// multi-process sharing path.
type Checkpointed struct {
	// Inner computes artifacts the store does not hold; required.
	Inner Executor
	// Store is the durable artifact store; required.
	Store *store.DiskStore
	// Resume enables read-before-compute. Without it the executor only
	// records checkpoints — the cold-sweep mode, which never serves stale
	// state no matter what the directory holds.
	Resume bool
	// Key maps a job to its store key; nil selects DefaultKey.
	Key func(Job) store.Key

	computed, restored atomic.Uint64
}

// DefaultKey derives a store key from the job alone: a SHA-256 of the job
// ID (namespaced so generic exec keys cannot collide with serve's
// spec-hash keys) plus the seed verbatim.
func DefaultKey(job Job) store.Key {
	sum := sha256.Sum256([]byte("lscatter-exec:" + job.ID))
	return store.Key{SpecHash: hex.EncodeToString(sum[:]), Seed: job.Seed}
}

func (c *Checkpointed) key(job Job) store.Key {
	if c.Key != nil {
		return c.Key(job)
	}
	return DefaultKey(job)
}

// Submit answers from the store when resuming, otherwise computes through
// the inner executor and checkpoints the result. A failed computation is
// never checkpointed.
func (c *Checkpointed) Submit(ctx context.Context, job Job) ([]byte, error) {
	k := c.key(job)
	if c.Resume {
		if body, ok := c.Store.Get(k); ok {
			c.restored.Add(1)
			return body, nil
		}
	}
	body, err := c.Inner.Submit(ctx, job)
	if err != nil {
		return nil, err
	}
	c.Store.Put(k, body)
	c.computed.Add(1)
	return body, nil
}

// Stats reports how many submissions this executor computed versus restored
// from the store — the observability behind "exactly N−K recomputes".
func (c *Checkpointed) Stats() (computed, restored uint64) {
	return c.computed.Load(), c.restored.Load()
}
