package exec

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Sharded fans jobs out to lscatter-worker HTTP processes. Each job is
// hash-sharded by its ID onto one worker, so a sweep's jobs partition into
// disjoint per-worker subsets — zero duplicate computes when every worker is
// alive. When a worker dies (transport error: refused connection, reset,
// mid-response EOF), it is marked dead and the job re-dispatches to the next
// worker in the ring, so a sweep survives worker loss at the cost of a
// rebalanced shard. Workers sharing one artifact directory (the intended
// deployment) also deduplicate any re-dispatch races through the store.
//
// Determinism is untouched by sharding: the job carries its seed, every
// worker runs the same pure runner, and the bytes on the wire are the bytes
// a Local executor would have produced.
type Sharded struct {
	workers []string
	client  *http.Client
	dead    []atomic.Bool

	redispatched atomic.Uint64
}

// NewSharded builds a sharded executor over worker base URLs (e.g.
// "http://127.0.0.1:9301"). client nil selects a default with a generous
// per-job timeout.
func NewSharded(workers []string, client *http.Client) *Sharded {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Minute}
	}
	trimmed := make([]string, len(workers))
	for i, w := range workers {
		trimmed[i] = strings.TrimRight(w, "/")
	}
	return &Sharded{
		workers: trimmed,
		client:  client,
		dead:    make([]atomic.Bool, len(workers)),
	}
}

// shardOf maps a job ID to its home worker: FNV-1a over the ID, mod the
// ring size. Stable across processes, so every participant agrees on the
// partition without coordination.
func shardOf(id string, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// Redispatched reports how many submissions had to leave their home shard
// because a worker died.
func (s *Sharded) Redispatched() uint64 { return s.redispatched.Load() }

// Submit posts the job to its home worker, walking the ring past dead
// workers. A worker-side computation error (HTTP error status) propagates
// to the caller — rerunning a deterministic failure elsewhere cannot
// succeed — while transport failures mark the worker dead and re-dispatch.
func (s *Sharded) Submit(ctx context.Context, job Job) ([]byte, error) {
	n := len(s.workers)
	if n == 0 {
		return nil, fmt.Errorf("exec: sharded executor has no workers")
	}
	home := shardOf(job.ID, n)
	var lastErr error
	for i := 0; i < n; i++ {
		w := (home + i) % n
		if s.dead[w].Load() {
			continue
		}
		if i > 0 {
			s.redispatched.Add(1)
		}
		body, err, transport := s.post(ctx, s.workers[w], job)
		if err == nil {
			return body, nil
		}
		if !transport {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		s.dead[w].Store(true)
		lastErr = err
	}
	return nil, fmt.Errorf("exec: every worker failed for job %s: %w", job.ID, lastErr)
}

// post performs one worker round-trip. The third return distinguishes
// transport failures (retry elsewhere) from definitive worker answers.
func (s *Sharded) post(ctx context.Context, base string, job Job) ([]byte, error, bool) {
	payload, err := json.Marshal(job)
	if err != nil {
		return nil, err, false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(payload))
	if err != nil {
		return nil, err, false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("exec: worker %s: %w", base, err), true
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		// The worker died mid-response; the partial body is garbage.
		return nil, fmt.Errorf("exec: worker %s: %w", base, err), true
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("exec: worker %s: %s: %s", base, resp.Status, strings.TrimSpace(string(body))), false
	}
	return body, nil, false
}
