// Package exec is the shared execution layer under every artifact-producing
// surface of the repository: lscatter-bench sweeps, the lscatter-served job
// manager and the lscatter-worker shards all submit jobs through one
// Executor interface and persist results through one content-addressed
// store (internal/store).
//
// An Executor turns a Job — a stable identifier plus a seed — into artifact
// bytes. Three implementations compose:
//
//   - Local runs the job's RunFunc in-process. It is the deterministic
//     leaf every other executor bottoms out in.
//   - Checkpointed wraps any executor with a durable store: completed
//     artifacts are recorded, and (in resume mode) artifacts already in the
//     store are returned without recompute, so a killed sweep restarted
//     over the same directory recomputes only what is missing.
//   - Sharded fans jobs out to stdlib HTTP worker processes
//     (cmd/lscatter-worker), hash-sharding job IDs so each worker computes
//     a disjoint subset, with re-dispatch to the surviving workers when one
//     dies mid-sweep.
//
// The fan-out helper All runs a batch of jobs on a bounded worker pool and
// returns artifacts in job order. Determinism is the package's contract:
// jobs carry their own seeds, RunFuncs are pure in (job, seed), and no
// executor or pool shape may change a single output byte — which is exactly
// the property that makes artifacts safe to checkpoint, share and shard.
// See docs/DISTRIBUTED.md.
package exec

import (
	"context"
	"runtime"
	"sync"
)

// Job is one unit of work: a stable artifact identifier plus the seed the
// runner must use verbatim. The pair fully determines the artifact bytes —
// every runner behind an Executor is pure — so a Job can be executed
// anywhere (in-process, another process, another machine) with identical
// results.
type Job struct {
	ID   string `json:"id"`
	Seed uint64 `json:"seed"`
}

// RunFunc computes one job's artifact bytes. It must be deterministic in
// the job (same ID and seed → same bytes) and honor ctx cancellation.
type RunFunc func(ctx context.Context, job Job) ([]byte, error)

// Executor turns a submitted job into its artifact bytes. Implementations
// must be safe for concurrent Submit calls.
type Executor interface {
	Submit(ctx context.Context, job Job) ([]byte, error)
}

// Local is the leaf executor: it runs the job's function in-process.
type Local struct {
	// Run computes an artifact; required.
	Run RunFunc
}

// Submit executes the job unless ctx is already cancelled.
func (l *Local) Submit(ctx context.Context, job Job) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.Run(ctx, job)
}

// workerCtxKey carries the pool slot All assigned to a Submit call, for
// metrics attribution only — it never influences artifact bytes.
type workerCtxKey struct{}

// WithWorker tags ctx with a pool slot index.
func WithWorker(ctx context.Context, worker int) context.Context {
	return context.WithValue(ctx, workerCtxKey{}, worker)
}

// Worker returns the pool slot tagged by WithWorker, or 0.
func Worker(ctx context.Context) int {
	if w, ok := ctx.Value(workerCtxKey{}).(int); ok {
		return w
	}
	return 0
}

// All submits every job through the executor on a pool of workers and
// returns the artifacts in job order. workers <= 0 selects NumCPU; the pool
// is never larger than the batch. Determinism is unconditional: each job
// carries its own seed and executors share no mutable state that reaches
// the output, so the returned bytes are identical at any worker count.
//
// If ctx is cancelled, All stops dispatching, waits for in-flight jobs and
// returns the partial results (unrun jobs are nil) alongside ctx.Err(). If
// a Submit fails, All stops dispatching and returns the partial results
// with the first error; that job's slot is nil.
func All(ctx context.Context, ex Executor, jobs []Job, workers int) ([][]byte, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	results := make([][]byte, len(jobs))
	feedCh := make(chan int)
	stop := make(chan struct{})
	var stopOnce sync.Once
	var mu sync.Mutex
	var firstErr error

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for idx := range feedCh {
				out, err := ex.Submit(WithWorker(ctx, worker), jobs[idx])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					stopOnce.Do(func() { close(stop) })
					continue
				}
				results[idx] = out
			}
		}(w)
	}

feed:
	for idx := range jobs {
		select {
		case feedCh <- idx:
		case <-ctx.Done():
			break feed
		case <-stop:
			break feed
		}
	}
	close(feedCh)
	wg.Wait()
	if firstErr != nil {
		return results, firstErr
	}
	return results, ctx.Err()
}
