package exec

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
)

// WorkerStats is a worker's /statsz snapshot. Served counts successful job
// round-trips; Computed/Restored split them by whether the worker's
// (checkpointed) executor actually ran the job or answered it from the
// shared artifact store — the numbers tools/distcheck sums to prove a
// sharded sweep computed every artifact exactly once.
type WorkerStats struct {
	Served   uint64 `json:"served"`
	Errors   uint64 `json:"errors"`
	Computed uint64 `json:"computed"`
	Restored uint64 `json:"restored"`
}

// statser is implemented by Checkpointed; a worker over a bare Local
// reports computed == served.
type statser interface {
	Stats() (computed, restored uint64)
}

// WorkerHandler is the HTTP skin of one lscatter-worker process: a thin
// job-execution endpoint over any Executor. The protocol (see
// docs/DISTRIBUTED.md):
//
//	POST /v1/jobs   {"id": "...", "seed": N} → 200 artifact bytes
//	GET  /healthz   liveness
//	GET  /statsz    WorkerStats
//
// Responses other than 200 carry a JSON {"error": "..."} body. The handler
// is stateless beyond counters; determinism and persistence live in the
// executor stack behind it.
type WorkerHandler struct {
	ex  Executor
	mux *http.ServeMux

	served, errors atomic.Uint64
}

// NewWorkerHandler builds the worker endpoint over an executor.
func NewWorkerHandler(ex Executor) *WorkerHandler {
	h := &WorkerHandler{ex: ex, mux: http.NewServeMux()}
	h.mux.HandleFunc("POST /v1/jobs", h.handleJob)
	h.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeWorkerJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	h.mux.HandleFunc("GET /statsz", func(w http.ResponseWriter, r *http.Request) {
		writeWorkerJSON(w, http.StatusOK, h.Stats())
	})
	return h
}

// ServeHTTP implements http.Handler.
func (h *WorkerHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// Stats snapshots the worker counters.
func (h *WorkerHandler) Stats() WorkerStats {
	st := WorkerStats{Served: h.served.Load(), Errors: h.errors.Load()}
	if s, ok := h.ex.(statser); ok {
		st.Computed, st.Restored = s.Stats()
	} else {
		st.Computed = st.Served
	}
	return st
}

func writeWorkerJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (h *WorkerHandler) handleJob(w http.ResponseWriter, r *http.Request) {
	var job Job
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&job); err != nil || job.ID == "" {
		h.errors.Add(1)
		writeWorkerJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad job: %v", err)})
		return
	}
	body, err := h.ex.Submit(r.Context(), job)
	if err != nil {
		h.errors.Add(1)
		writeWorkerJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	h.served.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}
