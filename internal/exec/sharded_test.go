package exec

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"lscatter/internal/store"
)

// newTestWorker spins up an in-process lscatter-worker: the real
// WorkerHandler over a checkpointed Local sharing dir with its siblings —
// the same stack cmd/lscatter-worker assembles.
func newTestWorker(t *testing.T, dir string) (*httptest.Server, *WorkerHandler) {
	t.Helper()
	st, err := store.Open(dir, 0, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	h := NewWorkerHandler(&Checkpointed{Inner: &Local{Run: pureRun}, Store: st, Resume: true})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, h
}

// TestShardedMatchesLocal is the refactor's conformance gate at the
// executor level: two HTTP workers sharing one artifact directory must
// produce byte-for-byte the artifacts a Local executor produces, with zero
// duplicate computes across the fleet. Run under -race by `make race`.
func TestShardedMatchesLocal(t *testing.T) {
	dir := t.TempDir()
	jobs := testJobs(23)
	s1, h1 := newTestWorker(t, dir)
	s2, h2 := newTestWorker(t, dir)

	sharded := NewSharded([]string{s1.URL, s2.URL}, nil)
	got, err := All(context.Background(), sharded, jobs, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := All(context.Background(), &Local{Run: pureRun}, jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("job %s: sharded %q vs local %q", jobs[i].ID, got[i], want[i])
		}
	}

	st1, st2 := h1.Stats(), h2.Stats()
	if total := st1.Computed + st2.Computed; total != uint64(len(jobs)) {
		t.Fatalf("computed %d+%d = %d, want exactly %d (duplicates or losses)",
			st1.Computed, st2.Computed, total, len(jobs))
	}
	if st1.Restored+st2.Restored != 0 {
		t.Fatalf("cold sweep restored artifacts: %+v %+v", st1, st2)
	}
	if st1.Computed == 0 || st2.Computed == 0 {
		t.Fatalf("sharding sent everything to one worker: %+v %+v", st1, st2)
	}
	if sharded.Redispatched() != 0 {
		t.Fatalf("healthy fleet redispatched %d jobs", sharded.Redispatched())
	}
}

// TestShardedRedispatchOnWorkerDeath kills one worker before the sweep: its
// shard must re-dispatch to the survivor and the results must still match
// Local byte for byte.
func TestShardedRedispatchOnWorkerDeath(t *testing.T) {
	dir := t.TempDir()
	jobs := testJobs(16)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from the first request on
	live, h := newTestWorker(t, dir)

	sharded := NewSharded([]string{dead.URL, live.URL}, nil)
	got, err := All(context.Background(), sharded, jobs, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := All(context.Background(), &Local{Run: pureRun}, jobs, 1)
	for i := range jobs {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("job %s differs after re-dispatch", jobs[i].ID)
		}
	}
	if h.Stats().Computed != uint64(len(jobs)) {
		t.Fatalf("survivor computed %d of %d", h.Stats().Computed, len(jobs))
	}
	if sharded.Redispatched() == 0 {
		t.Fatal("no re-dispatch recorded despite a dead worker")
	}
}

// TestShardedPropagatesJobErrors pins that a deterministic worker-side
// failure comes back as an error, not a retry storm.
func TestShardedPropagatesJobErrors(t *testing.T) {
	srv := httptest.NewServer(NewWorkerHandler(&Local{Run: func(ctx context.Context, job Job) ([]byte, error) {
		return nil, fmt.Errorf("deterministic failure for %s", job.ID)
	}}))
	defer srv.Close()
	sharded := NewSharded([]string{srv.URL}, nil)
	if _, err := sharded.Submit(context.Background(), Job{ID: "J00", Seed: 1}); err == nil {
		t.Fatal("worker error vanished")
	}
	if sharded.Redispatched() != 0 {
		t.Fatal("job error caused a re-dispatch")
	}
}

// TestWorkerHandlerRejectsBadJobs covers the protocol's reject path.
func TestWorkerHandlerRejectsBadJobs(t *testing.T) {
	srv := httptest.NewServer(NewWorkerHandler(&Local{Run: pureRun}))
	defer srv.Close()
	for _, body := range []string{``, `{`, `{"seed":1}`, `{"id":"x","seed":1,"extra":true}`} {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}
