//go:build unix

package exec

import (
	"bytes"
	"context"
	"os"
	osexec "os/exec"
	"strconv"
	"sync/atomic"
	"syscall"
	"testing"

	"lscatter/internal/store"
)

// TestResumeAfterSIGKILL is the crash half of the resume contract, with a
// real kill: a subprocess sweep is SIGKILLed after exactly K of N artifacts
// have been durably checkpointed, then the restarted (in-process) sweep
// with Resume must recompute exactly N−K and produce byte-identical
// artifacts. The subprocess is this test binary re-exec'd into
// TestKilledSweepHelper, the same harness shape tools/servedcheck uses for
// the server's crash story.
func TestResumeAfterSIGKILL(t *testing.T) {
	const n, k = 9, 4
	dir := t.TempDir()

	cmd := osexec.Command(os.Args[0], "-test.run=TestKilledSweepHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"LSCATTER_RESUME_HELPER=1",
		"LSCATTER_RESUME_DIR="+dir,
		"LSCATTER_RESUME_N="+strconv.Itoa(n),
		"LSCATTER_KILL_AFTER="+strconv.Itoa(k),
	)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("helper survived its own SIGKILL; output:\n%s", out)
	}
	ee, ok := err.(*osexec.ExitError)
	if !ok {
		t.Fatalf("helper failed to start: %v\n%s", err, out)
	}
	if ws, ok := ee.Sys().(syscall.WaitStatus); ok && (!ws.Signaled() || ws.Signal() != syscall.SIGKILL) {
		t.Fatalf("helper exited without SIGKILL: %v\n%s", ee, out)
	}

	// The store must hold exactly the K completed artifacts.
	st, err := store.Open(dir, 0, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Stats(); got.Entries != k || got.Quarantined != 0 {
		t.Fatalf("after kill: %+v, want %d clean entries", got, k)
	}

	// The restarted sweep: resume over the same directory.
	resumed := &Checkpointed{Inner: &Local{Run: pureRun}, Store: st, Resume: true}
	got, err := All(context.Background(), resumed, testJobs(n), 2)
	if err != nil {
		t.Fatal(err)
	}
	computed, restored := resumed.Stats()
	if computed != n-k || restored != k {
		t.Fatalf("resume recomputed %d and restored %d, want %d and %d", computed, restored, n-k, k)
	}
	want, err := All(context.Background(), &Local{Run: pureRun}, testJobs(n), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("job %d differs after crash resume:\n%q\nvs\n%q", i, got[i], want[i])
		}
	}
}

// TestKilledSweepHelper is the subprocess body of TestResumeAfterSIGKILL:
// it runs a sequential checkpointed sweep and SIGKILLs its own process the
// moment the (K+1)-th computation starts, so exactly K artifacts are on
// disk. It skips unless re-exec'd by the parent test.
func TestKilledSweepHelper(t *testing.T) {
	if os.Getenv("LSCATTER_RESUME_HELPER") != "1" {
		t.Skip("subprocess helper; driven by TestResumeAfterSIGKILL")
	}
	dir := os.Getenv("LSCATTER_RESUME_DIR")
	n, _ := strconv.Atoi(os.Getenv("LSCATTER_RESUME_N"))
	k, _ := strconv.Atoi(os.Getenv("LSCATTER_KILL_AFTER"))
	st, err := store.Open(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var started atomic.Int32
	killer := func(ctx context.Context, job Job) ([]byte, error) {
		if int(started.Add(1))-1 == k {
			// K computations have completed and checkpointed; die mid-sweep.
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {} // unreachable; SIGKILL is not catchable
		}
		return pureRun(ctx, job)
	}
	cp := &Checkpointed{Inner: &Local{Run: killer}, Store: st}
	_, _ = All(context.Background(), cp, testJobs(n), 1)
	t.Fatal("sweep finished; the kill never fired")
}
