package exec

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"lscatter/internal/store"
)

// pureRun is the synthetic deterministic runner the executor tests share:
// the artifact bytes depend only on (ID, seed), like every real runner in
// the repository.
func pureRun(ctx context.Context, job Job) ([]byte, error) {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|%d", job.ID, job.Seed)))
	return []byte(fmt.Sprintf("artifact %s seed %d digest %x\n", job.ID, job.Seed, sum[:8])), nil
}

func testJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{ID: fmt.Sprintf("J%02d", i), Seed: uint64(1000 + i)}
	}
	return jobs
}

// TestAllDeterministicAcrossWorkerCounts pins the pool's core contract:
// identical bytes in identical order at any worker count.
func TestAllDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := testJobs(17)
	want, err := All(context.Background(), &Local{Run: pureRun}, jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 17, 99} {
		got, err := All(context.Background(), &Local{Run: pureRun}, jobs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range jobs {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("workers=%d job %s: %q vs %q", workers, jobs[i].ID, got[i], want[i])
			}
		}
	}
}

func TestAllStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	run := func(ctx context.Context, job Job) ([]byte, error) {
		if ran.Add(1) == 3 {
			cancel()
		}
		return pureRun(ctx, job)
	}
	results, err := All(ctx, &Local{Run: run}, testJobs(64), 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	nils := 0
	for _, r := range results {
		if r == nil {
			nils++
		}
	}
	if nils == 0 {
		t.Fatal("cancelled run completed every job")
	}
}

func TestAllStopsOnSubmitError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	run := func(ctx context.Context, job Job) ([]byte, error) {
		if job.ID == "J03" {
			return nil, boom
		}
		ran.Add(1)
		return pureRun(ctx, job)
	}
	results, err := All(context.Background(), &Local{Run: run}, testJobs(64), 1)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if results[3] != nil {
		t.Fatal("failed job has a result")
	}
	if int(ran.Load()) >= 63 {
		t.Fatal("pool did not stop dispatching after the error")
	}
}

// TestCheckpointedResumesExactly is the in-process resume contract: a store
// holding K of N artifacts yields exactly N−K computes and byte-identical
// results.
func TestCheckpointedResumesExactly(t *testing.T) {
	const n, k = 12, 5
	jobs := testJobs(n)
	dir := t.TempDir()

	st, err := store.Open(dir, 0, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	cold := &Checkpointed{Inner: &Local{Run: pureRun}, Store: st}
	// First pass: only the first K jobs, checkpointed.
	if _, err := All(context.Background(), cold, jobs[:k], 1); err != nil {
		t.Fatal(err)
	}
	if computed, restored := cold.Stats(); computed != k || restored != 0 {
		t.Fatalf("cold stats: computed %d restored %d", computed, restored)
	}

	// The resumed sweep over the full batch, through a fresh store open.
	st2, err := store.Open(dir, 0, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	resumed := &Checkpointed{Inner: &Local{Run: pureRun}, Store: st2, Resume: true}
	got, err := All(context.Background(), resumed, jobs, 3)
	if err != nil {
		t.Fatal(err)
	}
	computed, restored := resumed.Stats()
	if computed != n-k || restored != k {
		t.Fatalf("resume stats: computed %d restored %d, want %d and %d", computed, restored, n-k, k)
	}
	want, err := All(context.Background(), &Local{Run: pureRun}, jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("resumed job %s differs: %q vs %q", jobs[i].ID, got[i], want[i])
		}
	}
}

// TestCheckpointedColdIgnoresStore pins that without Resume the store is
// write-only: a warm directory never short-circuits a cold sweep.
func TestCheckpointedColdIgnoresStore(t *testing.T) {
	jobs := testJobs(4)
	dir := t.TempDir()
	st, err := store.Open(dir, 0, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	warm := &Checkpointed{Inner: &Local{Run: pureRun}, Store: st}
	if _, err := All(context.Background(), warm, jobs, 1); err != nil {
		t.Fatal(err)
	}
	cold := &Checkpointed{Inner: &Local{Run: pureRun}, Store: st}
	if _, err := All(context.Background(), cold, jobs, 1); err != nil {
		t.Fatal(err)
	}
	if computed, restored := cold.Stats(); computed != uint64(len(jobs)) || restored != 0 {
		t.Fatalf("cold pass over warm store: computed %d restored %d", computed, restored)
	}
}

func TestDefaultKeyIsStoreSafe(t *testing.T) {
	k := DefaultKey(Job{ID: "F4c", Seed: 7})
	if len(k.SpecHash) != 64 {
		t.Fatalf("hash length %d, want 64", len(k.SpecHash))
	}
	for _, c := range k.SpecHash {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			t.Fatalf("non-hex key %q", k.SpecHash)
		}
	}
	if k != DefaultKey(Job{ID: "F4c", Seed: 7}) {
		t.Fatal("key not stable")
	}
	if k == DefaultKey(Job{ID: "F4d", Seed: 7}) {
		t.Fatal("distinct IDs collide")
	}
}
