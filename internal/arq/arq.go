// Package arq implements selective-repeat ARQ over the lossy LScatter frame
// channel: the link layer that turns the PHY's BER into reliable, in-order
// message delivery for applications. The paper stops at PHY goodput; any
// deployment (and both demo applications) needs exactly this layer on top.
//
// Frames ride the backscatter downlink...uplink asymmetrically: data frames
// flow tag -> UE over the backscatter link; acknowledgements return on the
// UE's side channel (in a real deployment, a downlink slot the tag's
// envelope detector can see). The simulation abstracts both as lossy
// unidirectional channels with per-frame delivery probability.
package arq

import (
	"fmt"

	"lscatter/internal/bits"
)

// SeqBits is the sequence-number width; the window must stay below half the
// sequence space for selective repeat to be sound.
const SeqBits = 8

const seqSpace = 1 << SeqBits

// MaxWindow is the largest permissible send window.
const MaxWindow = seqSpace / 2

// Frame is one link-layer data frame.
type Frame struct {
	// Seq is the sequence number (mod 256).
	Seq int
	// Payload is the application bits.
	Payload []byte
}

// Encode serializes a frame to bits: 8-bit sequence number, 16-bit length,
// payload, CRC-16 over everything.
func (f Frame) Encode() []byte {
	header := make([]byte, 0, SeqBits+16+len(f.Payload))
	for i := SeqBits - 1; i >= 0; i-- {
		header = append(header, byte(f.Seq>>i&1))
	}
	n := len(f.Payload)
	for i := 15; i >= 0; i-- {
		header = append(header, byte(n>>i&1))
	}
	header = append(header, f.Payload...)
	return bits.AttachCRC16(header)
}

// DecodeFrame parses bits produced by Encode. It returns false when the CRC
// fails or the structure is malformed.
func DecodeFrame(b []byte) (Frame, bool) {
	body, ok := bits.CheckCRC16(b)
	if !ok || len(body) < SeqBits+16 {
		return Frame{}, false
	}
	seq := 0
	for i := 0; i < SeqBits; i++ {
		seq = seq<<1 | int(body[i])
	}
	n := 0
	for i := SeqBits; i < SeqBits+16; i++ {
		n = n<<1 | int(body[i])
	}
	if len(body) != SeqBits+16+n {
		return Frame{}, false
	}
	return Frame{Seq: seq, Payload: body[SeqBits+16:]}, true
}

// inWindow reports whether seq lies within [base, base+size) mod seqSpace.
func inWindow(base, size, seq int) bool {
	d := (seq - base + seqSpace) % seqSpace
	return d < size
}

// Sender is the tag-side selective-repeat transmitter.
type Sender struct {
	window  int
	timeout int // slots before retransmission

	queue    [][]byte // unsent payloads
	base     int      // oldest unacked seq
	next     int      // next fresh seq
	inFlight map[int]*txState
	// stats
	Transmissions int
	Delivered     int
}

type txState struct {
	payload []byte
	age     int
	acked   bool
}

// NewSender builds a sender with the given window (frames) and
// retransmission timeout (slots).
func NewSender(window, timeout int) *Sender {
	if window < 1 || window > MaxWindow {
		panic(fmt.Sprintf("arq: window %d out of [1,%d]", window, MaxWindow))
	}
	if timeout < 1 {
		panic("arq: timeout must be at least one slot")
	}
	return &Sender{window: window, timeout: timeout, inFlight: map[int]*txState{}}
}

// Queue appends an application payload for transmission.
func (s *Sender) Queue(payload []byte) {
	s.queue = append(s.queue, append([]byte(nil), payload...))
}

// Pending returns the number of queued-but-unsent payloads.
func (s *Sender) Pending() int { return len(s.queue) }

// Unacked returns the number of in-flight frames.
func (s *Sender) Unacked() int {
	n := 0
	for _, st := range s.inFlight {
		if !st.acked {
			n++
		}
	}
	return n
}

// NextFrame returns the frame to transmit this slot, or nil if the sender
// has nothing to do: first any timed-out unacked frame (oldest first), then
// a fresh frame if the window allows.
func (s *Sender) NextFrame() *Frame {
	// Retransmissions first.
	bestSeq, bestAge := -1, -1
	for seq, st := range s.inFlight {
		if !st.acked && st.age >= s.timeout && st.age > bestAge {
			bestSeq, bestAge = seq, st.age
		}
	}
	if bestSeq >= 0 {
		st := s.inFlight[bestSeq]
		st.age = 0
		s.Transmissions++
		return &Frame{Seq: bestSeq, Payload: st.payload}
	}
	// Fresh frame if window open and data queued.
	if len(s.queue) > 0 && inWindow(s.base, s.window, s.next) {
		payload := s.queue[0]
		s.queue = s.queue[1:]
		seq := s.next
		s.next = (s.next + 1) % seqSpace
		s.inFlight[seq] = &txState{payload: payload}
		s.Transmissions++
		return &Frame{Seq: seq, Payload: payload}
	}
	return nil
}

// Tick advances all retransmission timers by one slot.
func (s *Sender) Tick() {
	for _, st := range s.inFlight {
		if !st.acked {
			st.age++
		}
	}
}

// Ack processes an acknowledgement for seq and slides the window.
func (s *Sender) Ack(seq int) {
	st, ok := s.inFlight[seq]
	if !ok || st.acked {
		return
	}
	st.acked = true
	s.Delivered++
	for {
		cur, ok := s.inFlight[s.base]
		if !ok || !cur.acked {
			break
		}
		delete(s.inFlight, s.base)
		s.base = (s.base + 1) % seqSpace
	}
}

// Receiver is the UE-side selective-repeat receiver delivering payloads in
// order.
type Receiver struct {
	window int
	base   int // next expected seq
	buf    map[int][]byte
	// Duplicates counts re-received frames (retransmissions that crossed
	// with lost acks).
	Duplicates int
}

// NewReceiver builds a receiver with the given window.
func NewReceiver(window int) *Receiver {
	if window < 1 || window > MaxWindow {
		panic(fmt.Sprintf("arq: window %d out of [1,%d]", window, MaxWindow))
	}
	return &Receiver{window: window, buf: map[int][]byte{}}
}

// Receive processes a frame. It returns the sequence number to acknowledge
// (always the frame's seq for in-window or recently delivered frames) and
// any payloads that became deliverable in order.
func (r *Receiver) Receive(f Frame) (ackSeq int, delivered [][]byte) {
	ackSeq = f.Seq
	if inWindow(r.base, r.window, f.Seq) {
		if _, dup := r.buf[f.Seq]; dup {
			r.Duplicates++
		}
		r.buf[f.Seq] = f.Payload
		for {
			p, ok := r.buf[r.base]
			if !ok {
				break
			}
			delivered = append(delivered, p)
			delete(r.buf, r.base)
			r.base = (r.base + 1) % seqSpace
		}
		return ackSeq, delivered
	}
	// Below the window: an old frame whose ack was lost — re-ack it.
	if inWindow((r.base-r.window+seqSpace)%seqSpace, r.window, f.Seq) {
		r.Duplicates++
		return ackSeq, nil
	}
	return -1, nil
}

// Stats summarizes a simulation run.
type Stats struct {
	// Slots consumed.
	Slots int
	// Transmissions (including retransmissions).
	Transmissions int
	// Delivered payloads, in order.
	Delivered int
	// Efficiency is delivered / transmissions.
	Efficiency float64
}

// Run simulates the protocol over lossy channels until every queued payload
// is delivered or maxSlots elapse: each slot the sender emits at most one
// frame (delivered with probability given by dataOK()), the receiver acks,
// and the ack arrives with probability ackOK().
func Run(s *Sender, r *Receiver, dataOK, ackOK func() bool, total, maxSlots int) (Stats, [][]byte) {
	var delivered [][]byte
	st := Stats{}
	for st.Slots = 0; st.Slots < maxSlots && len(delivered) < total; st.Slots++ {
		s.Tick()
		f := s.NextFrame()
		if f == nil {
			continue
		}
		if !dataOK() {
			continue
		}
		// Model the PHY: encode/decode round trip guards the structure.
		decoded, ok := DecodeFrame(f.Encode())
		if !ok {
			continue
		}
		ackSeq, out := r.Receive(decoded)
		delivered = append(delivered, out...)
		if ackSeq >= 0 && ackOK() {
			s.Ack(ackSeq)
		}
	}
	st.Transmissions = s.Transmissions
	st.Delivered = len(delivered)
	if st.Transmissions > 0 {
		st.Efficiency = float64(st.Delivered) / float64(st.Transmissions)
	}
	return st, delivered
}
