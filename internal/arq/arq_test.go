package arq

import (
	"fmt"
	"testing"
	"testing/quick"

	"lscatter/internal/rng"
)

func payloads(r *rng.Source, n, size int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = r.Bits(make([]byte, size))
	}
	return out
}

func TestFrameEncodeDecodeRoundTrip(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		f := Frame{Seq: r.Intn(256), Payload: r.Bits(make([]byte, r.Intn(100)))}
		got, ok := DecodeFrame(f.Encode())
		if !ok || got.Seq != f.Seq || len(got.Payload) != len(f.Payload) {
			return false
		}
		for i := range f.Payload {
			if got.Payload[i] != f.Payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameDecodeRejectsCorruption(t *testing.T) {
	f := Frame{Seq: 42, Payload: []byte{1, 0, 1, 1}}
	enc := f.Encode()
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 1
		if _, ok := DecodeFrame(bad); ok {
			t.Fatalf("corruption at bit %d accepted", i)
		}
	}
}

func TestLosslessDelivery(t *testing.T) {
	r := rng.New(1)
	want := payloads(r, 50, 32)
	s := NewSender(8, 4)
	rx := NewReceiver(8)
	for _, p := range want {
		s.Queue(p)
	}
	ok := func() bool { return true }
	st, got := Run(s, rx, ok, ok, len(want), 10000)
	if st.Delivered != len(want) {
		t.Fatalf("delivered %d of %d", st.Delivered, len(want))
	}
	if st.Transmissions != len(want) {
		t.Fatalf("lossless run used %d transmissions for %d frames", st.Transmissions, len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("payload %d corrupted", i)
			}
		}
	}
}

func TestInOrderDeliveryUnderHeavyLoss(t *testing.T) {
	r := rng.New(2)
	want := payloads(r, 200, 16)
	s := NewSender(16, 6)
	rx := NewReceiver(16)
	for _, p := range want {
		s.Queue(p)
	}
	loss := rng.New(3)
	dataOK := func() bool { return loss.Float64() > 0.3 }
	ackOK := func() bool { return loss.Float64() > 0.2 }
	st, got := Run(s, rx, dataOK, ackOK, len(want), 100000)
	if st.Delivered != len(want) {
		t.Fatalf("delivered %d of %d in %d slots", st.Delivered, len(want), st.Slots)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("payload %d corrupted or out of order", i)
			}
		}
	}
	if st.Efficiency < 0.3 || st.Efficiency > 0.75 {
		t.Fatalf("efficiency %v implausible for 30%%/20%% loss", st.Efficiency)
	}
}

func TestSequenceWraparound(t *testing.T) {
	// More payloads than the sequence space: the window must wrap cleanly.
	r := rng.New(4)
	want := payloads(r, 700, 8)
	s := NewSender(32, 5)
	rx := NewReceiver(32)
	for _, p := range want {
		s.Queue(p)
	}
	loss := rng.New(5)
	dataOK := func() bool { return loss.Float64() > 0.1 }
	st, got := Run(s, rx, dataOK, func() bool { return true }, len(want), 200000)
	if st.Delivered != len(want) {
		t.Fatalf("delivered %d of %d", st.Delivered, len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("payload %d wrong after wraparound", i)
			}
		}
	}
}

func TestLostAcksCauseDuplicatesNotCorruption(t *testing.T) {
	r := rng.New(6)
	want := payloads(r, 100, 8)
	s := NewSender(8, 3)
	rx := NewReceiver(8)
	for _, p := range want {
		s.Queue(p)
	}
	loss := rng.New(7)
	st, got := Run(s, rx,
		func() bool { return true },
		func() bool { return loss.Float64() > 0.5 }, // half the acks vanish
		len(want), 100000)
	if st.Delivered != len(want) {
		t.Fatalf("delivered %d of %d", st.Delivered, len(want))
	}
	if rx.Duplicates == 0 {
		t.Fatal("no duplicates despite 50% ack loss")
	}
	if len(got) != len(want) {
		t.Fatalf("duplicate deliveries reached the application: %d", len(got))
	}
}

func TestWindowStallsWithoutAcks(t *testing.T) {
	s := NewSender(4, 1000)
	for i := 0; i < 20; i++ {
		s.Queue([]byte{1})
	}
	sent := 0
	for i := 0; i < 100; i++ {
		s.Tick()
		if s.NextFrame() != nil {
			sent++
		}
	}
	if sent != 4 {
		t.Fatalf("sent %d fresh frames with window 4 and no acks", sent)
	}
}

func TestRetransmissionAfterTimeout(t *testing.T) {
	s := NewSender(4, 3)
	s.Queue([]byte{1, 0})
	f1 := s.NextFrame()
	if f1 == nil {
		t.Fatal("no first transmission")
	}
	for i := 0; i < 2; i++ {
		s.Tick()
		if s.NextFrame() != nil {
			t.Fatal("retransmitted before timeout")
		}
	}
	s.Tick()
	f2 := s.NextFrame()
	if f2 == nil || f2.Seq != f1.Seq {
		t.Fatal("no retransmission after timeout")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, tc := range []struct{ w, to int }{{0, 5}, {MaxWindow + 1, 5}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSender(%d,%d) did not panic", tc.w, tc.to)
				}
			}()
			NewSender(tc.w, tc.to)
		}()
	}
}

func TestEfficiencyImprovesWithLowerLoss(t *testing.T) {
	run := func(lossP float64) float64 {
		r := rng.New(11)
		s := NewSender(16, 6)
		rx := NewReceiver(16)
		for _, p := range payloads(r, 150, 8) {
			s.Queue(p)
		}
		loss := rng.New(13)
		st, _ := Run(s, rx, func() bool { return loss.Float64() > lossP }, func() bool { return true }, 150, 100000)
		return st.Efficiency
	}
	if e1, e2 := run(0.05), run(0.4); e1 <= e2 {
		t.Fatalf("efficiency at 5%% loss (%v) not above 40%% loss (%v)", e1, e2)
	}
}

func ExampleRun() {
	s := NewSender(8, 4)
	r := NewReceiver(8)
	for i := 0; i < 3; i++ {
		s.Queue([]byte{byte(i), 1})
	}
	st, delivered := Run(s, r, func() bool { return true }, func() bool { return true }, 3, 100)
	fmt.Println(st.Delivered, len(delivered), st.Efficiency)
	// Output: 3 3 1
}
