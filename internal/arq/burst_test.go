package arq

import (
	"math"
	"testing"

	"lscatter/internal/rng"
)

func TestGilbertElliottReproducible(t *testing.T) {
	cfg := GEConfig{PGoodToBad: 0.05, PBadToGood: 0.2, DeliverGood: 0.95, DeliverBad: 0.1}
	a := NewGilbertElliott(rng.New(7), cfg)
	b := NewGilbertElliott(rng.New(7), cfg)
	for i := 0; i < 5000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same-seed channels diverged at slot %d", i)
		}
	}
	if a.BadSlots != b.BadSlots {
		t.Fatal("same-seed channels disagree on burst occupancy")
	}
}

func TestGilbertElliottBurstOccupancy(t *testing.T) {
	// Stationary bad-state probability of the two-state chain is
	// pGB / (pGB + pBG); a long run must land near it.
	cfg := GEConfig{PGoodToBad: 0.02, PBadToGood: 0.1, DeliverGood: 1, DeliverBad: 0}
	g := NewGilbertElliott(rng.New(11), cfg)
	const n = 200000
	for i := 0; i < n; i++ {
		g.Next()
	}
	want := cfg.PGoodToBad / (cfg.PGoodToBad + cfg.PBadToGood)
	got := float64(g.BadSlots) / float64(g.Slots)
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("burst occupancy %v, want ~%v", got, want)
	}
}

func TestARQDeliversUnderBurstLoss(t *testing.T) {
	// Bursts long enough to blank a whole send window: selective repeat must
	// still deliver everything, in order, once the channel clears.
	r := rng.New(21)
	want := payloads(r, 150, 16)
	s := NewSender(16, 6)
	rx := NewReceiver(16)
	for _, p := range want {
		s.Queue(p)
	}
	data := NewGilbertElliott(rng.New(22), GEConfig{
		PGoodToBad: 0.01, PBadToGood: 0.04, DeliverGood: 0.98, DeliverBad: 0.05,
	})
	ack := NewGilbertElliott(rng.New(23), GEConfig{
		PGoodToBad: 0.005, PBadToGood: 0.1, DeliverGood: 0.99, DeliverBad: 0.2,
	})
	st, got := Run(s, rx, data.Next, ack.Next, len(want), 200000)
	if st.Delivered != len(want) {
		t.Fatalf("delivered %d of %d in %d slots", st.Delivered, len(want), st.Slots)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("payload %d corrupted or out of order", i)
			}
		}
	}
	if data.BadSlots == 0 {
		t.Fatal("run never entered a burst; test exercises nothing")
	}
	if st.Efficiency >= 1 {
		t.Fatalf("efficiency %v under burst loss implausible", st.Efficiency)
	}
}

func TestGilbertElliottValidation(t *testing.T) {
	bad := []GEConfig{
		{PGoodToBad: -0.1, PBadToGood: 0.5, DeliverGood: 1, DeliverBad: 0},
		{PGoodToBad: 0.1, PBadToGood: 1.5, DeliverGood: 1, DeliverBad: 0},
		{PGoodToBad: 0.1, PBadToGood: 0.5, DeliverGood: math.NaN(), DeliverBad: 0},
		{PGoodToBad: 0.1, PBadToGood: 0.5, DeliverGood: 1, DeliverBad: 2},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d accepted", i)
				}
			}()
			NewGilbertElliott(rng.New(1), cfg)
		}()
	}
}
