package arq

import (
	"fmt"

	"lscatter/internal/rng"
)

// GEConfig parameterizes a Gilbert-Elliott two-state burst-loss channel.
// All fields are probabilities in [0,1].
type GEConfig struct {
	// PGoodToBad is the per-slot probability of entering the bad (burst)
	// state from the good state.
	PGoodToBad float64
	// PBadToGood is the per-slot probability of leaving the bad state; the
	// mean burst length is 1/PBadToGood slots.
	PBadToGood float64
	// DeliverGood is the per-frame delivery probability in the good state.
	DeliverGood float64
	// DeliverBad is the per-frame delivery probability during a burst.
	DeliverBad float64
}

// GilbertElliott is a two-state Markov loss process modeling bursty frame
// loss — the link-layer shadow of a co-channel interference burst, which
// wipes out consecutive backscatter frames rather than independent ones.
// Selective-repeat ARQ behaves very differently under correlated loss (the
// whole window times out at once), which is what the resilience sweep
// measures.
//
// Next draws one slot: it first advances the channel state, then returns
// whether a frame sent in this slot is delivered, so it plugs directly into
// Run's dataOK/ackOK hooks.
type GilbertElliott struct {
	cfg GEConfig
	r   *rng.Source
	bad bool

	// Slots counts Next calls; BadSlots how many landed in the burst state.
	Slots    int
	BadSlots int
}

// NewGilbertElliott builds the channel in the good state, drawing from r.
func NewGilbertElliott(r *rng.Source, cfg GEConfig) *GilbertElliott {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"PGoodToBad", cfg.PGoodToBad},
		{"PBadToGood", cfg.PBadToGood},
		{"DeliverGood", cfg.DeliverGood},
		{"DeliverBad", cfg.DeliverBad},
	} {
		if !(p.v >= 0 && p.v <= 1) {
			panic(fmt.Sprintf("arq: GilbertElliott %s = %v out of [0,1]", p.name, p.v))
		}
	}
	return &GilbertElliott{cfg: cfg, r: r}
}

// InBurst reports whether the channel is currently in the bad state.
func (g *GilbertElliott) InBurst() bool { return g.bad }

// Next advances one slot and reports whether a frame sent now is delivered.
func (g *GilbertElliott) Next() bool {
	if g.bad {
		if g.r.Float64() < g.cfg.PBadToGood {
			g.bad = false
		}
	} else if g.r.Float64() < g.cfg.PGoodToBad {
		g.bad = true
	}
	g.Slots++
	p := g.cfg.DeliverGood
	if g.bad {
		g.BadSlots++
		p = g.cfg.DeliverBad
	}
	return g.r.Float64() < p
}
