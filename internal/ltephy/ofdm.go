package ltephy

import (
	"fmt"
	"math"

	"lscatter/internal/dsp"
)

// planForward and planInverse wrap the cached dsp plans.
func planForward(dst, src []complex128) { dsp.PlanFor(len(src)).Forward(dst, src) }
func planInverse(dst, src []complex128) { dsp.PlanFor(len(src)).Inverse(dst, src) }

// binOf maps grid subcarrier index k (0..K-1) to the FFT bin of an n-point
// spectrum, skipping the DC bin: the lower half of the grid goes to negative
// bins, the upper half to bins 1..K/2.
func binOf(k, gridK, n int) int {
	half := gridK / 2
	if k < half {
		return (k - half + n) % n
	}
	return k - half + 1
}

// Modulate converts a subframe grid to oversampled time-domain samples with
// normal cyclic prefix. The output has length
// Oversample * BW.SamplesPerSubframe() and is scaled so a unit-power
// constellation yields approximately unit average sample power over the
// occupied band.
func Modulate(g *Grid) []complex128 {
	p := g.Params
	n := p.BW.FFTSize() * p.Oversample
	k := g.K()
	out := make([]complex128, 0, p.Oversample*p.BW.SamplesPerSubframe())
	freqBuf, symBuf := dsp.AcquireBuf(n), dsp.AcquireBuf(n)
	defer dsp.ReleaseBuf(freqBuf)
	defer dsp.ReleaseBuf(symBuf)
	freq, sym := *freqBuf, *symBuf
	// Amplitude scale: inverse FFT normalizes by 1/n, so multiply by
	// n/sqrt(K) to make average time power ~= average constellation power.
	gain := complex(float64(n)/math.Sqrt(float64(k)), 0)
	for l := 0; l < SymbolsPerSubframe; l++ {
		for i := range freq {
			freq[i] = 0
		}
		for kk := 0; kk < k; kk++ {
			freq[binOf(kk, k, n)] = g.RE[l][kk] * gain
		}
		planInverse(sym, freq)
		cp := p.BW.CPLen(l%SymbolsPerSlot) * p.Oversample
		out = append(out, sym[n-cp:]...)
		out = append(out, sym...)
	}
	return out
}

// Demodulate recovers the subframe grid from oversampled time samples that
// begin exactly at the subframe boundary. It inverts Modulate: the returned
// grid contains the transmitted RE values (kinds are not reconstructed).
func Demodulate(p Params, samples []complex128, subframe int) (*Grid, error) {
	need := p.Oversample * p.BW.SamplesPerSubframe()
	if len(samples) < need {
		return nil, fmt.Errorf("ltephy: need %d samples for a subframe, have %d", need, len(samples))
	}
	n := p.BW.FFTSize() * p.Oversample
	k := p.BW.Subcarriers()
	g := NewGrid(p, subframe)
	freqBuf := dsp.AcquireBuf(n)
	defer dsp.ReleaseBuf(freqBuf)
	freq := *freqBuf
	gain := complex(math.Sqrt(float64(k))/float64(n), 0)
	pos := 0
	for l := 0; l < SymbolsPerSubframe; l++ {
		cp := p.BW.CPLen(l%SymbolsPerSlot) * p.Oversample
		pos += cp
		planForward(freq, samples[pos:pos+n])
		for kk := 0; kk < k; kk++ {
			g.RE[l][kk] = freq[binOf(kk, k, n)] * gain
		}
		pos += n
	}
	return g, nil
}

// SymbolStart returns the oversampled sample offset, within a subframe, of
// the start of OFDM symbol l (0..13), including its cyclic prefix.
func SymbolStart(p Params, l int) int {
	pos := 0
	for i := 0; i < l; i++ {
		pos += p.UnitsPerSymbol(i % SymbolsPerSlot)
	}
	return pos * p.Oversample
}

// UsefulStart returns the oversampled offset of the first useful (post-CP)
// sample of symbol l within a subframe.
func UsefulStart(p Params, l int) int {
	return SymbolStart(p, l) + p.BW.CPLen(l%SymbolsPerSlot)*p.Oversample
}
