package ltephy

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestPSSConstantAmplitude(t *testing.T) {
	for nid2 := 0; nid2 < 3; nid2++ {
		for i, v := range PSS(nid2) {
			if math.Abs(cmplx.Abs(v)-1) > 1e-12 {
				t.Fatalf("NID2 %d: |PSS[%d]| = %v, want 1 (CAZAC)", nid2, i, cmplx.Abs(v))
			}
		}
	}
}

func TestPSSLength(t *testing.T) {
	if len(PSS(0)) != 62 {
		t.Fatalf("PSS length %d, want 62", len(PSS(0)))
	}
}

func TestPSSRootsDistinct(t *testing.T) {
	// Cross-correlation between different roots must be low relative to the
	// autocorrelation peak (62).
	for a := 0; a < 3; a++ {
		for b := a + 1; b < 3; b++ {
			pa, pb := PSS(a), PSS(b)
			var acc complex128
			for i := range pa {
				acc += pa[i] * complex(real(pb[i]), -imag(pb[i]))
			}
			// Root pairs with gcd(|u1-u2|, 63) > 1 (25 vs 34) do not have the
			// flat sqrt(63) cross-correlation, so allow up to half the peak.
			if cmplx.Abs(acc) > 31 {
				t.Errorf("PSS roots %d,%d cross-correlation %v too high", a, b, cmplx.Abs(acc))
			}
		}
	}
}

func TestPSSInvalidRootPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PSS(3) did not panic")
		}
	}()
	PSS(3)
}

func TestSSSBipolarAndLength(t *testing.T) {
	d := SSS(5, 1, 0)
	if len(d) != 62 {
		t.Fatalf("SSS length %d, want 62", len(d))
	}
	for i, v := range d {
		if v != 1 && v != -1 {
			t.Fatalf("SSS[%d] = %v, want ±1", i, v)
		}
	}
}

func TestSSSSubframeDistinguishable(t *testing.T) {
	// The subframe-0 and subframe-5 sequences of the same cell must differ:
	// that is how a UE resolves 5 ms timing ambiguity.
	a := SSS(10, 2, 0)
	b := SSS(10, 2, 5)
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	if diff < 10 {
		t.Fatalf("SSS subframe sequences nearly identical (%d differing chips)", diff)
	}
}

func TestSSSCellsDistinguishable(t *testing.T) {
	seen := map[string]int{}
	for nid1 := 0; nid1 < 168; nid1 += 7 {
		d := SSS(nid1, 0, 0)
		key := ""
		for _, v := range d {
			if v > 0 {
				key += "1"
			} else {
				key += "0"
			}
		}
		if prev, dup := seen[key]; dup {
			t.Fatalf("NID1 %d and %d share an SSS sequence", prev, nid1)
		}
		seen[key] = nid1
	}
}

func TestSSSPanicsOnBadSubframe(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SSS in subframe 3 did not panic")
		}
	}()
	SSS(0, 0, 3)
}

func TestPSSTimeDomainUnitPower(t *testing.T) {
	p := DefaultParams(BW1_4)
	ref := PSSTimeDomain(p)
	if len(ref) != p.BW.FFTSize()*p.Oversample {
		t.Fatalf("PSS reference length %d", len(ref))
	}
	var e float64
	for _, v := range ref {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	if p := e / float64(len(ref)); math.Abs(p-1) > 1e-9 {
		t.Fatalf("PSS reference power = %v, want 1", p)
	}
}

func TestPSSTimeDomainGoodAutocorrelation(t *testing.T) {
	// The PSS is the UE's timing anchor: its aperiodic autocorrelation must
	// have a dominant peak at zero lag.
	p := DefaultParams(BW1_4)
	ref := PSSTimeDomain(p)
	n := len(ref)
	peak := 0.0
	var worst float64
	for lag := 0; lag < n/2; lag += 7 {
		var acc complex128
		for i := 0; i+lag < n; i++ {
			acc += ref[i+lag] * complex(real(ref[i]), -imag(ref[i]))
		}
		v := cmplx.Abs(acc)
		if lag == 0 {
			peak = v
		} else if v > worst {
			worst = v
		}
	}
	if worst > 0.35*peak {
		t.Fatalf("PSS sidelobe %v of peak %v too high", worst, peak)
	}
}

func TestPSSBandwidthConstant(t *testing.T) {
	// The paper leans on the PSS occupying the same 0.93 MHz regardless of
	// channel bandwidth.
	if math.Abs(PSSBandwidth-0.93e6) > 0.01e6 {
		t.Fatalf("PSS bandwidth = %v, want ~0.93 MHz", PSSBandwidth)
	}
}
