package ltephy

import (
	"math"
	"math/cmplx"
)

// pssRoots are the Zadoff-Chu root indices for NID2 = 0, 1, 2 (TS 36.211
// Table 6.11.1.1-1).
var pssRoots = [3]int{25, 29, 34}

// PSS returns the 62-element frequency-domain primary synchronization
// sequence for root index nid2 (0..2): the length-63 Zadoff-Chu sequence
// with the middle element punctured, per TS 36.211 §6.11.1.1.
func PSS(nid2 int) []complex128 {
	if nid2 < 0 || nid2 > 2 {
		panic("ltephy: NID2 out of [0,2]")
	}
	u := float64(pssRoots[nid2])
	d := make([]complex128, 62)
	for n := 0; n < 31; n++ {
		ph := -math.Pi * u * float64(n) * float64(n+1) / 63
		d[n] = cmplx.Exp(complex(0, ph))
	}
	for n := 31; n < 62; n++ {
		ph := -math.Pi * u * float64(n+1) * float64(n+2) / 63
		d[n] = cmplx.Exp(complex(0, ph))
	}
	return d
}

// sssShiftRegister generates the length-31 binary m-sequence for the given
// feedback taps (bit positions that XOR into the new bit), initial state
// x(0..4) = (0,0,0,0,1).
func sssShiftRegister(taps []int) []byte {
	x := make([]byte, 31)
	x[4] = 1
	for i := 0; i+5 < 31; i++ {
		var v byte
		for _, t := range taps {
			v ^= x[i+t]
		}
		x[i+5] = v
	}
	return x
}

// bipolar converts a binary sequence to ±1 values: 1 - 2x.
func bipolar(x []byte) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = 1 - 2*float64(v)
	}
	return out
}

// SSS returns the 62-element secondary synchronization sequence for the
// given cell identity group nid1 (0..167), PSS index nid2 (0..2) and
// subframe (0 or 5), per TS 36.211 §6.11.2.1.
func SSS(nid1, nid2, subframe int) []float64 {
	if nid1 < 0 || nid1 > 167 {
		panic("ltephy: NID1 out of [0,167]")
	}
	if nid2 < 0 || nid2 > 2 {
		panic("ltephy: NID2 out of [0,2]")
	}
	if subframe != 0 && subframe != 5 {
		panic("ltephy: SSS only transmitted in subframes 0 and 5")
	}
	// m0, m1 from NID1 (TS 36.211 Table 6.11.2.1-1 construction).
	qp := nid1 / 30
	q := (nid1 + qp*(qp+1)/2) / 30
	mPrime := nid1 + q*(q+1)/2
	m0 := mPrime % 31
	m1 := (m0 + mPrime/31 + 1) % 31

	sTilde := bipolar(sssShiftRegister([]int{2, 0}))       // x^5+x^3+1 (s)
	cTilde := bipolar(sssShiftRegister([]int{3, 0}))       // x^5+x^4+1 (c)
	zTilde := bipolar(sssShiftRegister([]int{4, 2, 1, 0})) // z

	s := func(m, n int) float64 { return sTilde[(n+m)%31] }
	c0 := func(n int) float64 { return cTilde[(n+nid2)%31] }
	c1 := func(n int) float64 { return cTilde[(n+nid2+3)%31] }
	z1 := func(m, n int) float64 { return zTilde[(n+m%8)%31] }

	a, b := m0, m1
	if subframe == 5 {
		a, b = m1, m0
	}
	d := make([]float64, 62)
	for n := 0; n < 31; n++ {
		d[2*n] = s(a, n) * c0(n)
		d[2*n+1] = s(b, n) * c1(n) * z1(a, n)
	}
	return d
}

// PSSTimeDomain returns one CP-free OFDM symbol of the PSS at the given
// oversampling factor, unit average power over the active samples. The UE's
// synchronizer correlates against this reference.
func PSSTimeDomain(p Params) []complex128 {
	n := p.BW.FFTSize() * p.Oversample
	freq := make([]complex128, n)
	seq := PSS(p.NID2())
	placeCentered(freq, seq, n)
	out := make([]complex128, n)
	planInverse(out, freq)
	// normalize to unit average power
	var e float64
	for _, v := range out {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	if e > 0 {
		g := complex(math.Sqrt(float64(n)/e), 0)
		for i := range out {
			out[i] *= g
		}
	}
	return out
}

// placeCentered maps a centered sequence of even length L onto FFT bins of an
// n-point spectrum: elements 0..L/2-1 to negative bins -L/2..-1 and elements
// L/2..L-1 to positive bins 1..L/2 (DC skipped), matching the LTE PSS/SSS
// mapping k = n - 31 around the carrier center.
func placeCentered(freq []complex128, seq []complex128, n int) {
	l := len(seq)
	half := l / 2
	for i := 0; i < half; i++ {
		bin := i - half // negative
		freq[(bin+n)%n] = seq[i]
	}
	for i := half; i < l; i++ {
		bin := i - half + 1 // positive, skipping DC
		freq[bin] = seq[i]
	}
}
