package ltephy

import (
	"math"
	"math/cmplx"
	"testing"

	"lscatter/internal/modem"
	"lscatter/internal/rng"
)

func TestCRSPositionsAndValues(t *testing.T) {
	p := DefaultParams(BW5)
	crs := CRSForSubframe(p, 3)
	// Port 0, normal CP: 2 symbols per slot, 2*NRB REs per symbol, 2 slots.
	want := 2 * 2 * 2 * p.BW.NRB()
	if len(crs) != want {
		t.Fatalf("CRS count = %d, want %d", len(crs), want)
	}
	vshift := p.CellID % 6
	for _, rs := range crs {
		if math.Abs(cmplx.Abs(rs.Value)-1) > 1e-12 {
			t.Fatalf("CRS value magnitude %v, want 1", cmplx.Abs(rs.Value))
		}
		l := rs.Symbol % SymbolsPerSlot
		if l != 0 && l != 4 {
			t.Fatalf("CRS in symbol %d of slot", l)
		}
		v := 0
		if l == 4 {
			v = 3
		}
		if (rs.Subcarrier-(v+vshift)%6)%6 != 0 {
			t.Fatalf("CRS subcarrier %d violates 6m+shift rule", rs.Subcarrier)
		}
	}
}

func TestCRSDeterministicAndSlotDependent(t *testing.T) {
	p := DefaultParams(BW1_4)
	a := CRSForSubframe(p, 2)
	b := CRSForSubframe(p, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("CRS not deterministic")
		}
	}
	c := CRSForSubframe(p, 3)
	diff := 0
	for i := range a {
		if a[i].Value != c[i].Value {
			diff++
		}
	}
	if diff < len(a)/4 {
		t.Fatalf("CRS barely changes across subframes (%d of %d)", diff, len(a))
	}
}

func TestGridSyncMapping(t *testing.T) {
	p := DefaultParams(BW10)
	g := NewGrid(p, 0)
	g.MapSyncAndRef()
	k := g.K()
	// PSS occupies the central 62 subcarriers of symbol 6.
	count := 0
	for kk := 0; kk < k; kk++ {
		if g.Kind[PSSSymbolIndex][kk] == REPSS {
			count++
			if kk < k/2-31 || kk >= k/2+31 {
				t.Fatalf("PSS RE outside central band at %d", kk)
			}
		}
	}
	if count != 62 {
		t.Fatalf("PSS RE count = %d, want 62", count)
	}
	// SSS likewise on symbol 5.
	count = 0
	for kk := 0; kk < k; kk++ {
		if g.Kind[SSSSymbolIndex][kk] == RESSS {
			count++
		}
	}
	if count != 62 {
		t.Fatalf("SSS RE count = %d, want 62", count)
	}
}

func TestGridNoSyncInOtherSubframes(t *testing.T) {
	p := DefaultParams(BW5)
	for _, sf := range []int{1, 2, 3, 4, 6, 9} {
		g := NewGrid(p, sf)
		g.MapSyncAndRef()
		for l := range g.Kind {
			for _, kind := range g.Kind[l] {
				if kind == REPSS || kind == RESSS {
					t.Fatalf("sync signal in subframe %d", sf)
				}
			}
		}
	}
}

func TestPSSBoostApplied(t *testing.T) {
	p := DefaultParams(BW5)
	p.PSSBoostDB = 6
	g := NewGrid(p, 0)
	g.MapSyncAndRef()
	var pssP, crsP float64
	var pssN, crsN int
	for l := range g.RE {
		for k := range g.RE[l] {
			v := g.RE[l][k]
			pw := real(v)*real(v) + imag(v)*imag(v)
			switch g.Kind[l][k] {
			case REPSS:
				pssP += pw
				pssN++
			case RECRS:
				crsP += pw
				crsN++
			}
		}
	}
	ratio := (pssP / float64(pssN)) / (crsP / float64(crsN))
	if math.Abs(10*math.Log10(ratio)-6) > 0.1 {
		t.Fatalf("PSS boost = %v dB, want 6", 10*math.Log10(ratio))
	}
}

func TestDataREsExcludeReserved(t *testing.T) {
	p := DefaultParams(BW5)
	g := NewGrid(p, 0)
	g.MapSyncAndRef()
	for _, re := range g.DataREs() {
		l, k := re[0], re[1]
		if l < controlSymbols {
			t.Fatalf("data RE in control region: symbol %d", l)
		}
		if g.Kind[l][k] != REEmpty {
			t.Fatalf("data RE overlaps kind %d at (%d,%d)", g.Kind[l][k], l, k)
		}
		if (l == PSSSymbolIndex || l == SSSSymbolIndex) && g.inSyncBand(k) {
			t.Fatalf("data RE inside sync band at (%d,%d)", l, k)
		}
	}
}

func TestMapDataFillsAndCounts(t *testing.T) {
	p := DefaultParams(BW1_4)
	g := NewGrid(p, 1)
	g.MapSyncAndRef()
	r := rng.New(3)
	capacity := g.DataCapacity()
	syms := modem.Map(modem.QPSK, r.Bits(make([]byte, 2*capacity)))
	placed := g.MapData(syms)
	if placed != capacity {
		t.Fatalf("placed %d, capacity %d", placed, capacity)
	}
	// Capacity is consumed: the REs are now REData, not REEmpty.
	if g.DataCapacity() != 0 {
		t.Fatalf("capacity after fill = %d, want 0", g.DataCapacity())
	}
	// Every data RE now carries a nonzero symbol.
	n := 0
	for l := range g.RE {
		for k := range g.RE[l] {
			if g.Kind[l][k] == REData {
				n++
				if g.RE[l][k] == 0 {
					t.Fatalf("zero data symbol at (%d,%d)", l, k)
				}
			}
		}
	}
	if n != placed {
		t.Fatalf("marked %d data REs, placed %d", n, placed)
	}
}

func TestMapControlAvoidsCRS(t *testing.T) {
	p := DefaultParams(BW1_4)
	g := NewGrid(p, 2)
	g.MapSyncAndRef()
	syms := make([]complex128, 1000)
	for i := range syms {
		syms[i] = 1
	}
	g.MapControl(syms)
	for l := 0; l < controlSymbols; l++ {
		for k := range g.RE[l] {
			if g.Kind[l][k] == RECRS && g.RE[l][k] == 1 {
				t.Fatalf("control symbol overwrote CRS at (%d,%d)", l, k)
			}
		}
	}
}

func TestDataCapacityGrowsWithBandwidth(t *testing.T) {
	prev := 0
	for _, bw := range Bandwidths {
		g := NewGrid(DefaultParams(bw), 1)
		g.MapSyncAndRef()
		c := g.DataCapacity()
		if c <= prev {
			t.Fatalf("%v capacity %d not greater than previous %d", bw, c, prev)
		}
		prev = c
	}
}

func TestNewGridRejectsBadSubframe(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("subframe 10 accepted")
		}
	}()
	NewGrid(DefaultParams(BW5), 10)
}
