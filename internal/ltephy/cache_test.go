package ltephy

import (
	"sync"
	"testing"
)

// testGrid builds a deterministic populated grid whose data region is seeded
// by variant, so distinct variants produce distinct cache keys.
func testGrid(t testing.TB, bw Bandwidth, subframe int, variant int) *Grid {
	t.Helper()
	g := NewGrid(DefaultParams(bw), subframe)
	g.MapSyncAndRef()
	ctrl := make([]complex128, 2*g.K())
	for i := range ctrl {
		ctrl[i] = complex(1, 0)
	}
	g.MapControl(ctrl)
	data := make([]complex128, g.DataCapacity())
	for i := range data {
		data[i] = complex(float64(variant+1), float64(i%7))
	}
	g.MapData(data)
	return g
}

func TestCacheModulateBitIdentical(t *testing.T) {
	c := NewWaveformCache(DefaultCacheBytes)
	g := testGrid(t, BW1_4, 3, 0)
	want := Modulate(g)
	miss := c.Modulate(g) // cold: runs the modulator, stores
	hit := c.Modulate(g)  // warm: served from the cache
	if len(miss) != len(want) || len(hit) != len(want) {
		t.Fatalf("lengths differ: %d / %d / %d", len(want), len(miss), len(hit))
	}
	for i := range want {
		if miss[i] != want[i] {
			t.Fatalf("miss path diverges at sample %d: %v vs %v", i, miss[i], want[i])
		}
		if hit[i] != want[i] {
			t.Fatalf("hit path diverges at sample %d: %v vs %v", i, hit[i], want[i])
		}
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", s)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", s.HitRate())
	}
}

func TestCacheHitRatePositiveOnRepeatedSubframes(t *testing.T) {
	c := NewWaveformCache(DefaultCacheBytes)
	// The same three subframes replayed ten times: exactly 3 misses.
	for rep := 0; rep < 10; rep++ {
		for sf := 0; sf < 3; sf++ {
			c.Modulate(testGrid(t, BW1_4, sf, 0))
		}
	}
	s := c.Stats()
	if s.HitRate() <= 0 {
		t.Fatal("hit rate not positive on repeated subframes")
	}
	if s.Misses != 3 || s.Hits != 27 {
		t.Fatalf("stats = %+v, want 27 hits / 3 misses", s)
	}
}

func TestCacheReturnsPrivateCopies(t *testing.T) {
	c := NewWaveformCache(DefaultCacheBytes)
	g := testGrid(t, BW1_4, 1, 0)
	a := c.Modulate(g)
	a[0] = complex(1e9, 1e9) // caller scales/mutates its copy
	b := c.Modulate(g)
	if b[0] == a[0] {
		t.Fatal("cache returned a shared slice; caller mutation leaked")
	}
}

func TestCacheEvictionBoundsMemory(t *testing.T) {
	g := testGrid(t, BW1_4, 1, 0)
	subframeBytes := int64(len(Modulate(g))) * 16
	c := NewWaveformCache(3 * subframeBytes)
	for v := 0; v < 20; v++ {
		c.Modulate(testGrid(t, BW1_4, 1, v))
	}
	s := c.Stats()
	if s.Bytes > 3*subframeBytes {
		t.Fatalf("cache holds %d bytes, bound is %d", s.Bytes, 3*subframeBytes)
	}
	if s.Entries > 3 {
		t.Fatalf("cache holds %d entries, bound admits 3", s.Entries)
	}
	if s.Evictions == 0 {
		t.Fatal("no evictions recorded despite overflow")
	}
	// The most recently inserted waveform must still be resident.
	if _, ok := c.Get(KeyForGrid(testGrid(t, BW1_4, 1, 19))); !ok {
		t.Fatal("most recent entry was evicted")
	}
}

func TestCacheOversizeEntryNotStored(t *testing.T) {
	c := NewWaveformCache(16) // one complex128
	g := testGrid(t, BW1_4, 1, 0)
	c.Modulate(g)
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("oversize waveform was stored: %+v", s)
	}
}

func TestCacheKeySeparatesParamsAndSubframe(t *testing.T) {
	a := KeyForGrid(testGrid(t, BW1_4, 1, 0))
	b := KeyForGrid(testGrid(t, BW1_4, 2, 0))
	if a == b {
		t.Fatal("different subframes share a key")
	}
	pa := DefaultParams(BW1_4)
	pb := pa
	pb.Oversample = 8
	ga, gb := NewGrid(pa, 3), NewGrid(pb, 3)
	if KeyForGrid(ga) == KeyForGrid(gb) {
		t.Fatal("different oversampling shares a key")
	}
}

func TestCacheNilIsTransparent(t *testing.T) {
	var c *WaveformCache
	g := testGrid(t, BW1_4, 4, 0)
	want := Modulate(g)
	got := c.Modulate(g)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nil cache diverges at %d", i)
		}
	}
	if s := c.Stats(); s != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", s)
	}
	c.Reset() // must not panic
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewWaveformCache(DefaultCacheBytes)
	grids := make([]*Grid, 4)
	for v := range grids {
		grids[v] = testGrid(t, BW1_4, v%SubframesPerFrame, v)
	}
	want := make([][]complex128, len(grids))
	for v, g := range grids {
		want[v] = Modulate(g)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				for v, g := range grids {
					got := c.Modulate(g)
					for i := range want[v] {
						if got[i] != want[v][i] {
							t.Errorf("variant %d diverges under concurrency", v)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	if s := c.Stats(); s.Hits == 0 {
		t.Fatalf("no hits under concurrent replay: %+v", s)
	}
}

func TestCacheStatsDelta(t *testing.T) {
	c := NewWaveformCache(DefaultCacheBytes)
	g := testGrid(t, BW1_4, 5, 0)
	c.Modulate(g)
	before := c.Stats()
	c.Modulate(g)
	c.Modulate(g)
	d := c.Stats().Delta(before)
	if d.Hits != 2 || d.Misses != 0 {
		t.Fatalf("delta = %+v, want 2 hits / 0 misses", d)
	}
}
