package ltephy

import (
	"fmt"
	"math"
)

// REKind classifies a resource element of the downlink grid.
type REKind byte

const (
	// REEmpty is an unused resource element (guard or unallocated).
	REEmpty REKind = iota
	// REPSS carries the primary synchronization signal.
	REPSS
	// RESSS carries the secondary synchronization signal.
	RESSS
	// RECRS carries a cell-specific reference signal.
	RECRS
	// REControl belongs to the PDCCH/PCFICH control region.
	REControl
	// REData carries PDSCH payload.
	REData
	// REPBCH carries the broadcast channel (subframe 0, symbols 7-10).
	REPBCH
)

// Grid is one subframe (14 OFDM symbols) of the downlink resource grid.
// RE[l][k] is the symbol value at OFDM symbol l, subcarrier k (k spans the
// occupied bandwidth; the DC bin is handled by the OFDM mapper).
type Grid struct {
	Params   Params
	Subframe int // 0..9 within the radio frame
	RE       [][]complex128
	Kind     [][]REKind

	// dataREs memoizes DataREs between Kind mutations (nil = stale). The
	// mapping methods invalidate it; code that writes Kind directly must not
	// rely on a previously fetched DataREs slice.
	dataREs [][2]int
}

// NewGrid allocates an empty subframe grid. The rows of RE and Kind share
// one backing array each, so a grid costs two allocations instead of 2*14.
func NewGrid(p Params, subframe int) *Grid {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if subframe < 0 || subframe >= SubframesPerFrame {
		panic(fmt.Sprintf("ltephy: subframe %d out of [0,10)", subframe))
	}
	k := p.BW.Subcarriers()
	g := &Grid{Params: p, Subframe: subframe}
	g.RE = make([][]complex128, SymbolsPerSubframe)
	g.Kind = make([][]REKind, SymbolsPerSubframe)
	reBack := make([]complex128, SymbolsPerSubframe*k)
	kindBack := make([]REKind, SymbolsPerSubframe*k)
	for l := range g.RE {
		g.RE[l] = reBack[l*k : (l+1)*k : (l+1)*k]
		g.Kind[l] = kindBack[l*k : (l+1)*k : (l+1)*k]
	}
	return g
}

// K returns the number of occupied subcarriers.
func (g *Grid) K() int { return g.Params.BW.Subcarriers() }

// controlSymbols is the size of the PDCCH control region at the head of
// every subframe (CFI). We use 2 symbols, a typical loaded-cell value.
const controlSymbols = 2

// PSSSymbolIndex is the OFDM symbol (within the subframe) carrying PSS in
// subframes 0 and 5 for FDD: the last symbol of the first slot.
const PSSSymbolIndex = SymbolsPerSlot - 1 // 6

// SSSSymbolIndex is the symbol carrying SSS: one before the PSS.
const SSSSymbolIndex = SymbolsPerSlot - 2 // 5

// HasSync reports whether this subframe carries PSS/SSS (subframes 0 and 5).
func (g *Grid) HasSync() bool { return g.Subframe == 0 || g.Subframe == 5 }

// MapSyncAndRef places PSS, SSS (when present) and port-0 CRS into the grid.
// The PSS/SSS REs are boosted by Params.PSSBoostDB.
func (g *Grid) MapSyncAndRef() {
	g.dataREs = nil
	k := g.K()
	boost := complex(math.Pow(10, g.Params.PSSBoostDB/20), 0)
	if g.HasSync() {
		pss := PSS(g.Params.NID2())
		g.placeCenter62(PSSSymbolIndex, pss, REPSS, boost)
		sssVals := SSS(g.Params.NID1(), g.Params.NID2(), g.Subframe)
		sssC := make([]complex128, len(sssVals))
		for i, v := range sssVals {
			sssC[i] = complex(v, 0)
		}
		// Only the PSS is boosted: the tag's envelope detector keys on the
		// PSS alone (§3.1), so the SSS must not pre-trigger the comparator.
		g.placeCenter62(SSSSymbolIndex, sssC, RESSS, 1)
	}
	for _, rs := range CRSForSubframe(g.Params, g.Subframe) {
		g.RE[rs.Symbol][rs.Subcarrier] = rs.Value
		g.Kind[rs.Symbol][rs.Subcarrier] = RECRS
	}
	_ = k
}

// placeCenter62 writes a 62-element centered sequence into symbol l with the
// guard structure of the sync signals (5 null subcarriers each side of the
// central 72).
func (g *Grid) placeCenter62(l int, seq []complex128, kind REKind, gain complex128) {
	k := g.K()
	base := k/2 - 31
	for i, v := range seq {
		idx := base + i
		g.RE[l][idx] = v * gain
		g.Kind[l][idx] = kind
	}
	// Mark the guard REs (5 on each side) as reserved-empty so PDSCH does
	// not use them, matching the standard's sync-symbol guards.
	for i := 1; i <= 5; i++ {
		if base-i >= 0 {
			g.Kind[l][base-i] = REEmpty
		}
		if base+62+i-1 < k {
			g.Kind[l][base+62+i-1] = REEmpty
		}
	}
}

// MapControl fills the control region (first controlSymbols symbols) with
// the provided symbols on every RE not already used by CRS. It returns the
// number of symbols consumed.
func (g *Grid) MapControl(symbols []complex128) int {
	g.dataREs = nil
	used := 0
	for l := 0; l < controlSymbols && l < SymbolsPerSubframe; l++ {
		for k := 0; k < g.K(); k++ {
			if g.Kind[l][k] != REEmpty {
				continue
			}
			if used >= len(symbols) {
				return used
			}
			g.RE[l][k] = symbols[used]
			g.Kind[l][k] = REControl
			used++
		}
	}
	return used
}

// DataREs returns the (symbol, subcarrier) coordinates available for PDSCH,
// in symbol-major order. Call after MapSyncAndRef (and MapControl). The
// result is memoized until the next mapping call (the receive path asks
// twice per subframe — capacity, then mapping) and is shared: callers must
// treat it as read-only.
func (g *Grid) DataREs() [][2]int {
	if g.dataREs != nil {
		return g.dataREs
	}
	// Two passes: count, then fill an exact-size slice — the append-growth
	// copies on a 20 MHz grid are measurable across a harness run.
	count := 0
	g.scanDataREs(func([2]int) { count++ })
	out := make([][2]int, 0, count)
	g.scanDataREs(func(re [2]int) { out = append(out, re) })
	g.dataREs = out
	return out
}

// scanDataREs visits the PDSCH-eligible coordinates in symbol-major order.
func (g *Grid) scanDataREs(visit func([2]int)) {
	for l := controlSymbols; l < SymbolsPerSubframe; l++ {
		if g.HasSync() && (l == PSSSymbolIndex || l == SSSSymbolIndex) {
			// Only the central 72 subcarriers are reserved in sync symbols;
			// the outer RBs still carry data.
			for k := 0; k < g.K(); k++ {
				if g.Kind[l][k] == REEmpty && !g.inSyncBand(k) {
					visit([2]int{l, k})
				}
			}
			continue
		}
		for k := 0; k < g.K(); k++ {
			if g.Kind[l][k] == REEmpty {
				visit([2]int{l, k})
			}
		}
	}
}

// inSyncBand reports whether subcarrier k lies in the central 72-subcarrier
// band reserved during sync symbols.
func (g *Grid) inSyncBand(k int) bool {
	lo := g.K()/2 - 36
	hi := g.K()/2 + 36
	return k >= lo && k < hi
}

// MapData writes PDSCH symbols onto the data REs and returns how many were
// placed.
func (g *Grid) MapData(symbols []complex128) int {
	res := g.DataREs()
	n := len(symbols)
	if n > len(res) {
		n = len(res)
	}
	for i := 0; i < n; i++ {
		l, k := res[i][0], res[i][1]
		g.RE[l][k] = symbols[i]
		g.Kind[l][k] = REData
	}
	g.dataREs = nil // the loop above consumed the memo, then changed Kind
	return n
}

// DataCapacity returns the number of PDSCH resource elements in this
// subframe.
func (g *Grid) DataCapacity() int { return len(g.DataREs()) }
