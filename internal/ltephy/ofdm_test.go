package ltephy

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"lscatter/internal/dsp"
	"lscatter/internal/modem"
	"lscatter/internal/rng"
)

// fullGrid builds a subframe grid with sync, reference and random QPSK data.
func fullGrid(t testing.TB, p Params, subframe int, seed uint64) *Grid {
	t.Helper()
	g := NewGrid(p, subframe)
	g.MapSyncAndRef()
	r := rng.New(seed)
	ctrl := modem.Map(modem.QPSK, r.Bits(make([]byte, 2*2*g.K())))
	g.MapControl(ctrl)
	data := modem.Map(modem.QPSK, r.Bits(make([]byte, 2*g.DataCapacity())))
	g.MapData(data)
	return g
}

func TestModulateLength(t *testing.T) {
	for _, bw := range []Bandwidth{BW1_4, BW5} {
		p := DefaultParams(bw)
		g := fullGrid(t, p, 0, 1)
		x := Modulate(g)
		want := p.Oversample * bw.SamplesPerSubframe()
		if len(x) != want {
			t.Fatalf("%v: modulated length %d, want %d", bw, len(x), want)
		}
	}
}

func TestOFDMRoundTrip(t *testing.T) {
	for _, bw := range []Bandwidth{BW1_4, BW3} {
		p := DefaultParams(bw)
		for _, sf := range []int{0, 1, 5} {
			g := fullGrid(t, p, sf, uint64(sf)+10)
			x := Modulate(g)
			got, err := Demodulate(p, x, sf)
			if err != nil {
				t.Fatal(err)
			}
			for l := range g.RE {
				for k := range g.RE[l] {
					if cmplx.Abs(got.RE[l][k]-g.RE[l][k]) > 1e-9 {
						t.Fatalf("%v sf%d: RE(%d,%d) = %v, want %v", bw, sf, l, k, got.RE[l][k], g.RE[l][k])
					}
				}
			}
		}
	}
}

func TestOFDMRoundTripProperty(t *testing.T) {
	check := func(seed uint64) bool {
		p := DefaultParams(BW1_4)
		sf := int(seed % 10)
		g := fullGrid(t, p, sf, seed)
		x := Modulate(g)
		got, err := Demodulate(p, x, sf)
		if err != nil {
			return false
		}
		for l := range g.RE {
			for k := range g.RE[l] {
				if cmplx.Abs(got.RE[l][k]-g.RE[l][k]) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestOFDMRoundTripOddOversample(t *testing.T) {
	p := DefaultParams(BW1_4)
	p.Oversample = 3
	g := fullGrid(t, p, 1, 77)
	x := Modulate(g)
	got, err := Demodulate(p, x, 1)
	if err != nil {
		t.Fatal(err)
	}
	for l := range g.RE {
		for k := range g.RE[l] {
			if cmplx.Abs(got.RE[l][k]-g.RE[l][k]) > 1e-8 {
				t.Fatalf("oversample 3 roundtrip failed at (%d,%d)", l, k)
			}
		}
	}
}

func TestCyclicPrefixIsCopyOfTail(t *testing.T) {
	p := DefaultParams(BW1_4)
	g := fullGrid(t, p, 2, 5)
	x := Modulate(g)
	n := p.BW.FFTSize() * p.Oversample
	for l := 0; l < SymbolsPerSubframe; l++ {
		start := SymbolStart(p, l)
		cp := p.BW.CPLen(l%SymbolsPerSlot) * p.Oversample
		for i := 0; i < cp; i++ {
			if cmplx.Abs(x[start+i]-x[start+cp+n-cp+i]) > 1e-12 {
				t.Fatalf("symbol %d: CP sample %d is not a copy of the tail", l, i)
			}
		}
	}
}

func TestModulatePowerNormalization(t *testing.T) {
	p := DefaultParams(BW5)
	p.PSSBoostDB = 0
	g := fullGrid(t, p, 1, 9)
	x := Modulate(g)
	pw := dsp.Power(x)
	// Data grids are mostly full QPSK, so average power should be near 1
	// (sparse CRS-only symbols pull it slightly below).
	if pw < 0.5 || pw > 1.5 {
		t.Fatalf("modulated power = %v, want ~1", pw)
	}
}

func TestModulatedSpectrumConfined(t *testing.T) {
	// Energy outside the occupied bandwidth must be negligible: this is what
	// lets the backscatter shift to fc + 1/Ts avoid the original signal.
	p := DefaultParams(BW1_4)
	g := fullGrid(t, p, 1, 4)
	x := Modulate(g)
	n := p.BW.FFTSize() * p.Oversample
	seg := append([]complex128(nil), x[p.Oversample*p.BW.CPLen(0):][:n]...)
	spec := dsp.FFT(seg)
	k := p.BW.Subcarriers()
	var inBand, outBand float64
	for bin := 0; bin < n; bin++ {
		f := bin
		if f > n/2 {
			f -= n
		}
		pw := real(spec[bin])*real(spec[bin]) + imag(spec[bin])*imag(spec[bin])
		if f >= -k/2 && f <= k/2 {
			inBand += pw
		} else {
			outBand += pw
		}
	}
	if outBand > 1e-15*inBand {
		t.Fatalf("out-of-band energy ratio %v, want ~0", outBand/inBand)
	}
}

func TestDemodulateShortInput(t *testing.T) {
	p := DefaultParams(BW1_4)
	if _, err := Demodulate(p, make([]complex128, 10), 0); err == nil {
		t.Fatal("Demodulate accepted short input")
	}
}

func TestSymbolStartConsistency(t *testing.T) {
	p := DefaultParams(BW20)
	if SymbolStart(p, 0) != 0 {
		t.Fatal("symbol 0 start != 0")
	}
	// Symbol starts are strictly increasing and end at the subframe length.
	prev := -1
	for l := 0; l < SymbolsPerSubframe; l++ {
		s := SymbolStart(p, l)
		if s <= prev {
			t.Fatalf("symbol %d start %d not increasing", l, s)
		}
		prev = s
	}
	total := SymbolStart(p, SymbolsPerSubframe-1) + p.UnitsPerSymbol(6)*p.Oversample
	if total != p.Oversample*p.BW.SamplesPerSubframe() {
		t.Fatalf("symbol starts don't tile the subframe: %d vs %d", total, p.Oversample*p.BW.SamplesPerSubframe())
	}
}

func TestUsefulStartSkipsCP(t *testing.T) {
	p := DefaultParams(BW20)
	if got, want := UsefulStart(p, 0), 160*p.Oversample; got != want {
		t.Fatalf("useful start of symbol 0 = %d, want %d", got, want)
	}
}

func TestPSSDetectableInModulatedSubframe(t *testing.T) {
	// Correlating the PSS time reference against a full modulated subframe 0
	// must peak at the PSS symbol's useful-part start.
	p := DefaultParams(BW1_4)
	g := fullGrid(t, p, 0, 21)
	x := Modulate(g)
	ref := PSSTimeDomain(p)
	lag, peak := dsp.NormalizedCorrPeak(x, ref)
	want := UsefulStart(p, PSSSymbolIndex)
	if lag != want {
		t.Fatalf("PSS correlation peak at %d, want %d (peak %v)", lag, want, peak)
	}
	if peak < 0.5 {
		t.Fatalf("PSS correlation peak %v too weak", peak)
	}
}

func TestMath(t *testing.T) {
	// Guard against accidental edits to binOf: it must be a bijection from
	// grid indices to non-DC bins symmetric around 0.
	k, n := 72, 512
	seen := map[int]bool{}
	for kk := 0; kk < k; kk++ {
		bin := binOf(kk, k, n)
		if bin == 0 {
			t.Fatal("grid index mapped to DC bin")
		}
		if seen[bin] {
			t.Fatalf("bin %d mapped twice", bin)
		}
		seen[bin] = true
		f := bin
		if f > n/2 {
			f -= n
		}
		if f < -k/2 || f > k/2 {
			t.Fatalf("bin %d (freq %d) outside ±%d", bin, f, k/2)
		}
	}
	if math.Abs(float64(len(seen)-k)) > 0 {
		t.Fatal("binOf not a bijection")
	}
}

func BenchmarkModulateSubframe5MHz(b *testing.B) {
	p := DefaultParams(BW5)
	g := fullGrid(b, p, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Modulate(g)
	}
}

func BenchmarkDemodulateSubframe5MHz(b *testing.B) {
	p := DefaultParams(BW5)
	g := fullGrid(b, p, 1, 1)
	x := Modulate(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Demodulate(p, x, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func TestOFDMRoundTrip15MHzBluestein(t *testing.T) {
	// 15 MHz is the only LTE bandwidth whose FFT size (1536) is not a power
	// of two: this exercises the Bluestein path through the whole
	// modulate/demodulate chain.
	if testing.Short() {
		t.Skip("bluestein roundtrip is slow")
	}
	p := DefaultParams(BW15)
	p.Oversample = 2
	g := fullGrid(t, p, 0, 15)
	x := Modulate(g)
	got, err := Demodulate(p, x, 0)
	if err != nil {
		t.Fatal(err)
	}
	var maxE float64
	for l := range g.RE {
		for k := range g.RE[l] {
			if e := cmplx.Abs(got.RE[l][k] - g.RE[l][k]); e > maxE {
				maxE = e
			}
		}
	}
	if maxE > 1e-7 {
		t.Fatalf("15 MHz roundtrip error %v", maxE)
	}
}
