package ltephy

import (
	"math"
	"sync"

	"lscatter/internal/bits"
)

// maxNRB is the largest downlink bandwidth in resource blocks; CRS sequence
// indexing is defined relative to it (TS 36.211 §6.10.1.1).
const maxNRB = 110

// CRSValue holds one cell-specific reference-signal resource element.
type CRSValue struct {
	// Subcarrier is the grid row (0..K-1).
	Subcarrier int
	// Symbol is the OFDM symbol within the subframe (0..13).
	Symbol int
	// Value is the QPSK reference value with unit power.
	Value complex128
}

// CRSSymbols lists the OFDM symbols within a slot that carry CRS on antenna
// port 0 with normal CP: l = 0 and l = 4.
var CRSSymbols = [2]int{0, 4}

// crsSequence returns the complex CRS sequence r_{l,ns}(m) for slot ns
// (0..19) and symbol l, per TS 36.211 §6.10.1.1 with normal CP.
func crsSequence(cellID, ns, l, nrb int) []complex128 {
	cinit := uint32(1024*(7*(ns+1)+l+1)*(2*cellID+1) + 2*cellID + 1)
	c := bits.GoldSequence(cinit, 4*maxNRB)
	out := make([]complex128, 2*nrb)
	inv := 1 / math.Sqrt2
	for m := range out {
		mp := m + maxNRB - nrb
		re := inv * (1 - 2*float64(c[2*mp]))
		im := inv * (1 - 2*float64(c[2*mp+1]))
		out[m] = complex(re, im)
	}
	return out
}

// crsKey identifies a cached CRS subframe layout. vshift and the sequence
// both derive from CellID, so (CellID, NRB, subframe) pins the result.
type crsKey struct {
	cellID, nrb, subframe int
}

var crsCache sync.Map // crsKey -> []CRSValue

// CRSForSubframe returns every port-0 CRS resource element of the given
// subframe (0..9) for the configured cell, in grid coordinates. The result
// is cached per (cell, bandwidth, subframe) and shared between callers, who
// must treat it as read-only.
func CRSForSubframe(p Params, subframe int) []CRSValue {
	key := crsKey{p.CellID, p.BW.NRB(), subframe}
	if v, ok := crsCache.Load(key); ok {
		return v.([]CRSValue)
	}
	out := buildCRSSubframe(p, subframe)
	v, _ := crsCache.LoadOrStore(key, out)
	return v.([]CRSValue)
}

func buildCRSSubframe(p Params, subframe int) []CRSValue {
	nrb := p.BW.NRB()
	vshift := p.CellID % 6
	out := make([]CRSValue, 0, SlotsPerSubframe*len(CRSSymbols)*2*nrb)
	for slotInSF := 0; slotInSF < SlotsPerSubframe; slotInSF++ {
		ns := 2*subframe + slotInSF
		for _, l := range CRSSymbols {
			v := 0
			if l == 4 {
				v = 3
			}
			seq := crsSequence(p.CellID, ns, l, nrb)
			for m := 0; m < 2*nrb; m++ {
				k := 6*m + (v+vshift)%6
				out = append(out, CRSValue{
					Subcarrier: k,
					Symbol:     slotInSF*SymbolsPerSlot + l,
					Value:      seq[m],
				})
			}
		}
	}
	return out
}
