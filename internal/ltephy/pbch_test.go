package ltephy

import (
	"testing"

	"lscatter/internal/rng"
)

func TestPBCHREsStructure(t *testing.T) {
	p := DefaultParams(BW5)
	res := PBCHREs(p)
	// 4 symbols x 72 subcarriers minus the reserved CRS pattern in the
	// slot's first symbol (72/6*2 = 24 REs).
	want := 4*72 - 24
	if len(res) != want {
		t.Fatalf("PBCH RE count = %d, want %d", len(res), want)
	}
	k := p.BW.Subcarriers()
	for _, re := range res {
		if re[0] < 7 || re[0] > 10 {
			t.Fatalf("PBCH RE in symbol %d", re[0])
		}
		if re[1] < k/2-36 || re[1] >= k/2+36 {
			t.Fatalf("PBCH RE outside the central 6 RB at %d", re[1])
		}
	}
}

func TestPBCHRoundTrip(t *testing.T) {
	for _, bw := range []Bandwidth{BW1_4, BW5, BW20} {
		p := DefaultParams(bw)
		for _, sfn := range []int{0, 1, 511, 1023} {
			mib := MIB{BW: bw, SFN: sfn}
			syms := EncodePBCH(p, mib)
			got, ok := DecodePBCH(p, syms, 0.05)
			if !ok {
				t.Fatalf("%v sfn %d: clean PBCH decode failed", bw, sfn)
			}
			if got != mib {
				t.Fatalf("%v: decoded %+v, want %+v", bw, got, mib)
			}
		}
	}
}

func TestPBCHSurvivesNoise(t *testing.T) {
	p := DefaultParams(BW1_4)
	mib := MIB{BW: BW1_4, SFN: 321}
	r := rng.New(5)
	ok := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		syms := EncodePBCH(p, mib)
		// 0 dB symbol SNR: the fourfold repetition plus rate-1/3 coding must
		// carry it.
		for j := range syms {
			syms[j] += r.Complex(1 / 1.41421356)
		}
		if got, k := DecodePBCH(p, syms, 1.0); k && got == mib {
			ok++
		}
	}
	if ok < trials*8/10 {
		t.Fatalf("PBCH decoded %d/%d at 0 dB", ok, trials)
	}
}

func TestPBCHScrambledPerCell(t *testing.T) {
	a := EncodePBCH(Params{BW: BW1_4, CellID: 1, Oversample: 2}, MIB{BW: BW1_4, SFN: 7})
	b := EncodePBCH(Params{BW: BW1_4, CellID: 2, Oversample: 2}, MIB{BW: BW1_4, SFN: 7})
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	if diff < len(a)/4 {
		t.Fatalf("PBCH barely differs across cells: %d/%d", diff, len(a))
	}
	// Wrong-cell descrambling must fail the CRC.
	if _, ok := DecodePBCH(Params{BW: BW1_4, CellID: 2, Oversample: 2}, a, 0.05); ok {
		t.Fatal("PBCH decoded with the wrong cell identity")
	}
}

func TestGridPBCHReservation(t *testing.T) {
	p := DefaultParams(BW5)
	g := NewGrid(p, 0)
	g.MapSyncAndRef()
	g.MapPBCH(EncodePBCH(p, MIB{BW: BW5, SFN: 3}))
	for _, re := range g.DataREs() {
		if g.Kind[re[0]][re[1]] == REPBCH {
			t.Fatal("data RE overlaps PBCH")
		}
	}
	// PBCH only exists in subframe 0.
	g1 := NewGrid(p, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("MapPBCH on subframe 1 did not panic")
		}
	}()
	g1.MapPBCH(EncodePBCH(p, MIB{}))
}
