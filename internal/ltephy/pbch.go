package ltephy

import (
	"lscatter/internal/bits"
	"lscatter/internal/modem"
)

// MIB is the master information block broadcast on the PBCH: the minimum a
// UE needs after PSS/SSS acquisition to configure reception — the downlink
// bandwidth and the system frame number.
type MIB struct {
	// BW is the cell's downlink bandwidth.
	BW Bandwidth
	// SFN is the system frame number modulo 1024.
	SFN int
}

// mibBits is the information size: 3 bandwidth bits + 10 SFN bits + 11
// spare, mirroring the standard's 24-bit MIB.
const mibBits = 24

// PBCH placement: the central six resource blocks of OFDM symbols 7..10 of
// subframe 0 (the first four symbols of slot 1), avoiding port-0 CRS.
const (
	pbchFirstSymbol = 7
	pbchSymbols     = 4
	pbchRBs         = 6
)

// PBCHREs returns the (symbol, subcarrier) coordinates of the PBCH resource
// elements in subframe 0, in mapping order.
func PBCHREs(p Params) [][2]int {
	k := p.BW.Subcarriers()
	base := k/2 - 12*pbchRBs/2 // central 72 subcarriers
	vshift := p.CellID % 6
	var out [][2]int
	for l := pbchFirstSymbol; l < pbchFirstSymbol+pbchSymbols; l++ {
		slotSym := l % SymbolsPerSlot
		for i := 0; i < 72; i++ {
			kk := base + i
			// Skip CRS positions (port 0 transmits CRS on l=0 of the slot,
			// i.e. subframe symbol 7; the paired shift is reserved too, as
			// the standard reserves the full four-port pattern).
			if slotSym == 0 {
				if (kk-(0+vshift)%6)%6 == 0 || (kk-(3+vshift)%6)%6 == 0 {
					continue
				}
			}
			out = append(out, [2]int{l, kk})
		}
	}
	return out
}

// mibToBits serializes a MIB.
func mibToBits(m MIB) []byte {
	out := make([]byte, mibBits)
	for i := 0; i < 3; i++ {
		out[i] = byte(int(m.BW) >> (2 - i) & 1)
	}
	for i := 0; i < 10; i++ {
		out[3+i] = byte(m.SFN >> (9 - i) & 1)
	}
	return out
}

// bitsToMIB inverts mibToBits.
func bitsToMIB(b []byte) MIB {
	bw := 0
	for i := 0; i < 3; i++ {
		bw = bw<<1 | int(b[i])
	}
	sfn := 0
	for i := 0; i < 10; i++ {
		sfn = sfn<<1 | int(b[3+i])
	}
	if bw > int(BW20) {
		bw = int(BW20)
	}
	return MIB{BW: Bandwidth(bw), SFN: sfn}
}

// pbchCodec is the rate-1/3 K=7 convolutional code (the standard uses the
// tail-biting variant of the same generators).
var pbchCodec = bits.NewConvCodeR13()

// EncodePBCH produces the QPSK symbols filling the PBCH resource elements:
// MIB + CRC16, rate-1/3 coding, cell-specific scrambling, and repetition to
// fill the available REs.
func EncodePBCH(p Params, m MIB) []complex128 {
	coded := pbchCodec.Encode(bits.AttachCRC16(mibToBits(m)))
	res := PBCHREs(p)
	need := 2 * len(res) // QPSK bits
	full := make([]byte, need)
	for i := range full {
		full[i] = coded[i%len(coded)]
	}
	scr := bits.GoldSequence(uint32(p.CellID)<<3|0x2, need)
	for i := range full {
		full[i] ^= scr[i]
	}
	return modem.Map(modem.QPSK, full)
}

// DecodePBCH inverts EncodePBCH from (equalized) PBCH symbols: descramble,
// combine the repetitions as soft values, Viterbi-decode, check the CRC.
func DecodePBCH(p Params, syms []complex128, noiseVar float64) (MIB, bool) {
	res := PBCHREs(p)
	if len(syms) != len(res) {
		return MIB{}, false
	}
	llr := modem.DemapSoft(modem.QPSK, syms, noiseVar)
	scr := bits.GoldSequence(uint32(p.CellID)<<3|0x2, len(llr))
	for i := range llr {
		if scr[i] == 1 {
			llr[i] = -llr[i]
		}
	}
	codedLen := pbchCodec.EncodedLen(mibBits + 16)
	combined := make([]float64, codedLen)
	for i, v := range llr {
		combined[i%codedLen] += v
	}
	dec := pbchCodec.DecodeSoft(combined)
	if dec == nil {
		return MIB{}, false
	}
	payload, ok := bits.CheckCRC16(dec)
	if !ok {
		return MIB{}, false
	}
	return bitsToMIB(payload), true
}

// MapPBCH places the PBCH symbols into a subframe-0 grid, marking the REs so
// PDSCH mapping skips them. It panics if called on another subframe.
func (g *Grid) MapPBCH(syms []complex128) {
	if g.Subframe != 0 {
		panic("ltephy: PBCH belongs to subframe 0")
	}
	res := PBCHREs(g.Params)
	if len(syms) != len(res) {
		panic("ltephy: PBCH symbol count mismatch")
	}
	g.dataREs = nil
	for i, re := range res {
		g.RE[re[0]][re[1]] = syms[i]
		g.Kind[re[0]][re[1]] = REPBCH
	}
}
