// Package ltephy implements the LTE FDD downlink physical layer used as the
// excitation-signal substrate for LScatter: the standard numerology for all
// six channel bandwidths, primary and secondary synchronization signals
// (Zadoff-Chu and m-sequences per 3GPP TS 36.211), cell-specific reference
// signals (Gold sequence), the per-subframe resource grid, and the OFDM
// modulator/demodulator with normal cyclic prefix.
//
// Waveforms are produced at an integer oversampling factor above the nominal
// LTE sample rate so the backscatter tag's square-wave modulation (one cycle
// per basic-timing unit) is representable; see Params.
package ltephy

import "fmt"

// Bandwidth enumerates the six LTE channel bandwidths.
type Bandwidth int

const (
	// BW1_4 is the 1.4 MHz channel (6 resource blocks).
	BW1_4 Bandwidth = iota
	// BW3 is the 3 MHz channel (15 resource blocks).
	BW3
	// BW5 is the 5 MHz channel (25 resource blocks).
	BW5
	// BW10 is the 10 MHz channel (50 resource blocks).
	BW10
	// BW15 is the 15 MHz channel (75 resource blocks).
	BW15
	// BW20 is the 20 MHz channel (100 resource blocks).
	BW20
)

// Bandwidths lists all supported bandwidths in ascending order.
var Bandwidths = []Bandwidth{BW1_4, BW3, BW5, BW10, BW15, BW20}

// numerology rows: resource blocks and FFT size per bandwidth.
var numerology = [...]struct {
	mhz  float64
	nrb  int
	fft  int
	name string
}{
	{1.4, 6, 128, "1.4MHz"},
	{3, 15, 256, "3MHz"},
	{5, 25, 512, "5MHz"},
	{10, 50, 1024, "10MHz"},
	{15, 75, 1536, "15MHz"},
	{20, 100, 2048, "20MHz"},
}

// String returns the bandwidth name, e.g. "20MHz".
func (b Bandwidth) String() string { return numerology[b].name }

// MHz returns the nominal channel bandwidth in MHz.
func (b Bandwidth) MHz() float64 { return numerology[b].mhz }

// NRB returns the number of downlink resource blocks.
func (b Bandwidth) NRB() int { return numerology[b].nrb }

// Subcarriers returns the number of occupied subcarriers (12 per RB).
func (b Bandwidth) Subcarriers() int { return 12 * numerology[b].nrb }

// FFTSize returns the nominal (non-oversampled) FFT size.
func (b Bandwidth) FFTSize() int { return numerology[b].fft }

// SampleRate returns the nominal baseband sample rate in Hz
// (15 kHz subcarrier spacing times the FFT size).
func (b Bandwidth) SampleRate() float64 { return 15e3 * float64(numerology[b].fft) }

// LTE frame constants (normal cyclic prefix).
const (
	// SubcarrierSpacing is the LTE subcarrier spacing in Hz.
	SubcarrierSpacing = 15e3
	// SymbolsPerSlot is the OFDM symbol count per slot with normal CP.
	SymbolsPerSlot = 7
	// SlotsPerSubframe is always 2.
	SlotsPerSubframe = 2
	// SymbolsPerSubframe = 14.
	SymbolsPerSubframe = SymbolsPerSlot * SlotsPerSubframe
	// SubframesPerFrame = 10 (1 ms each).
	SubframesPerFrame = 10
	// SubframeDuration in seconds.
	SubframeDuration = 1e-3
	// PSSPeriod is the primary synchronization signal period (5 ms).
	PSSPeriod = 5e-3
	// PSSBandwidth is the occupied PSS bandwidth in Hz (62 subcarriers):
	// the paper's "0.93 MHz, fixed for every channel bandwidth".
	PSSBandwidth = 62 * SubcarrierSpacing
)

// CPLen returns the cyclic-prefix length in nominal samples for symbol l
// (0..6) of a slot: 160*N/2048 for the first symbol, 144*N/2048 otherwise.
func (b Bandwidth) CPLen(l int) int {
	n := b.FFTSize()
	if l == 0 {
		return 160 * n / 2048
	}
	return 144 * n / 2048
}

// SamplesPerSlot returns the nominal sample count of one slot (0.5 ms).
func (b Bandwidth) SamplesPerSlot() int {
	n := b.FFTSize()
	total := 0
	for l := 0; l < SymbolsPerSlot; l++ {
		total += b.CPLen(l) + n
	}
	_ = total
	return total
}

// SamplesPerSubframe returns the nominal sample count of one subframe (1 ms).
func (b Bandwidth) SamplesPerSubframe() int { return 2 * b.SamplesPerSlot() }

// Params couples a bandwidth with a physical cell identity and the waveform
// oversampling factor. It is the configuration object shared by the eNodeB,
// tag, channel and UE.
type Params struct {
	// BW is the LTE channel bandwidth.
	BW Bandwidth
	// CellID is the physical cell identity (0..503); it selects the PSS
	// root, SSS sequences and CRS scrambling/shift.
	CellID int
	// Oversample is the integer waveform oversampling factor (>= 2). The
	// emitted sample rate is Oversample * BW.SampleRate(). The default used
	// throughout the repository is 4.
	Oversample int
	// PSSBoostDB is the power boost applied to PSS/SSS resource elements
	// relative to data REs, in dB. Real deployments commonly boost sync
	// signals; the tag's envelope-detector synchronization relies on the
	// PSS standing out within its narrow front-end band (see DESIGN.md).
	PSSBoostDB float64
}

// DefaultParams returns a ready-to-use configuration at the given bandwidth:
// cell ID 7, oversampling 4, PSS boost 6 dB.
func DefaultParams(bw Bandwidth) Params {
	return Params{BW: bw, CellID: 7, Oversample: 4, PSSBoostDB: 6}
}

// Validate checks the parameter ranges.
func (p Params) Validate() error {
	if p.BW < BW1_4 || p.BW > BW20 {
		return fmt.Errorf("ltephy: invalid bandwidth %d", p.BW)
	}
	if p.CellID < 0 || p.CellID > 503 {
		return fmt.Errorf("ltephy: cell ID %d out of [0,503]", p.CellID)
	}
	if p.Oversample < 2 {
		return fmt.Errorf("ltephy: oversample %d < 2", p.Oversample)
	}
	return nil
}

// NID2 returns the PSS root index (cell ID mod 3).
func (p Params) NID2() int { return p.CellID % 3 }

// NID1 returns the SSS group identity (cell ID / 3).
func (p Params) NID1() int { return p.CellID / 3 }

// SampleRate returns the oversampled waveform rate in Hz.
func (p Params) SampleRate() float64 {
	return float64(p.Oversample) * p.BW.SampleRate()
}

// UnitDuration returns the basic-timing-unit duration in seconds: one nominal
// sample period, Ts = 1/BW.SampleRate(). This is the paper's modulation
// granularity ("tens of ns": 32.55 ns at 20 MHz).
func (p Params) UnitDuration() float64 { return 1 / p.BW.SampleRate() }

// UnitsPerSymbol returns the number of basic-timing units in symbol l of a
// slot, CP included (2208 or 2192 at 20 MHz).
func (p Params) UnitsPerSymbol(l int) int { return p.BW.CPLen(l) + p.BW.FFTSize() }

// UsefulModulationUnits returns how many basic-timing units per symbol carry
// backscatter data: the paper sets it equal to the number of occupied
// subcarriers (1200 at 20 MHz, ~54.6% of a symbol).
func (p Params) UsefulModulationUnits() int { return p.BW.Subcarriers() }

// ShiftFrequency returns the backscatter carrier shift 1/Ts in Hz — equal to
// the nominal sample rate, which places the hybrid signal entirely outside
// the original LTE band.
func (p Params) ShiftFrequency() float64 { return p.BW.SampleRate() }
