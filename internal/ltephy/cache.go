package ltephy

import (
	"math"
	"sync"
	"sync/atomic"
)

// The OFDM modulator is the hot path of every bit-true simulation: one
// subframe costs 14 (oversampled) inverse FFTs, and the evaluation harness
// re-generates the same ambient downlink over and over — the eNodeB gain
// calibration modulates an identical reference frame per configuration, the
// ablations replay the same seeded stream per variant, and the UE regenerates
// a clean copy of every decoded subframe. WaveformCache memoizes Modulate
// keyed by the grid content so all of those become lookups.

// WaveformKey identifies one modulated subframe waveform. Two grids share a
// key exactly when they have the same numerology and the same resource
// elements, so a cached waveform is bit-identical to what Modulate would
// produce (FNV-1a collisions over the 64-bit content hash are the only
// theoretical exception and are negligible at cache scale).
type WaveformKey struct {
	// Params is the full numerology; it is comparable and part of the key,
	// so changing the oversampling or PSS boost never aliases entries.
	Params Params
	// Subframe is the subframe index within the radio frame.
	Subframe int
	// Content is the FNV-1a hash of every resource-element value.
	Content uint64
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvMix folds one 64-bit word into an FNV-1a style chain. The word is first
// diffused with the murmur3 finalizer: a plain xor-multiply chain never
// propagates high input bits downward, so words differing only in the float
// sign bit (every ±x constellation pair) would collide catastrophically —
// the right shifts are what make sign flips reach the low bits.
func fnvMix(h, v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	h ^= v
	h *= fnvPrime64
	return h
}

// KeyForGrid computes the cache key of a grid by hashing its RE values.
// Hashing is linear in the grid size and orders of magnitude cheaper than
// the 14 inverse FFTs it stands in for.
func KeyForGrid(g *Grid) WaveformKey {
	h := uint64(fnvOffset64)
	for _, row := range g.RE {
		for _, v := range row {
			h = fnvMix(h, math.Float64bits(real(v)))
			h = fnvMix(h, math.Float64bits(imag(v)))
		}
	}
	return WaveformKey{Params: g.Params, Subframe: g.Subframe, Content: h}
}

// CacheStats is a point-in-time snapshot of cache effectiveness counters.
type CacheStats struct {
	// Hits and Misses count Modulate calls served from / added to the cache.
	Hits, Misses uint64
	// Evictions counts entries dropped to respect the byte bound.
	Evictions uint64
	// Entries is the current number of cached waveforms.
	Entries int
	// Bytes is the current payload size of the cache (16 bytes per sample).
	Bytes int64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any traffic.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Delta returns the counter difference s - prev (entries/bytes are taken
// from s). It is how callers attribute cache traffic to a region of work.
func (s CacheStats) Delta(prev CacheStats) CacheStats {
	return CacheStats{
		Hits:      s.Hits - prev.Hits,
		Misses:    s.Misses - prev.Misses,
		Evictions: s.Evictions - prev.Evictions,
		Entries:   s.Entries,
		Bytes:     s.Bytes,
	}
}

// WaveformCache is a bounded, concurrency-safe memo of Modulate outputs.
// Lookups take a read lock; inserts take the write lock and evict in FIFO
// order until the configured byte bound holds. All methods are safe to call
// from concurrent experiment runners; a nil *WaveformCache is valid and
// degrades to plain Modulate.
type WaveformCache struct {
	mu       sync.RWMutex
	maxBytes int64
	bytes    int64
	entries  map[WaveformKey][]complex128
	order    []WaveformKey // insertion order, for FIFO eviction

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// DefaultCacheBytes bounds the shared cache: at 16 bytes per complex sample
// this holds ~2000 subframes at 1.4 MHz or ~130 at 20 MHz with 4x
// oversampling.
const DefaultCacheBytes = 256 << 20

// SharedCache is the process-wide waveform cache used by the eNodeB and the
// UE reference regenerator. Tests and benchmarks may Reset it or swap it for
// a differently sized one; setting it to nil disables caching globally.
var SharedCache = NewWaveformCache(DefaultCacheBytes)

// NewWaveformCache builds a cache bounded to approximately maxBytes of
// sample payload. maxBytes <= 0 yields a cache that stores nothing (every
// call is a miss), which is occasionally useful for A/B measurements.
func NewWaveformCache(maxBytes int64) *WaveformCache {
	return &WaveformCache{
		maxBytes: maxBytes,
		entries:  map[WaveformKey][]complex128{},
	}
}

// Get returns the cached waveform for the key. The returned slice is shared:
// callers must treat it as read-only (Modulate clones for them).
func (c *WaveformCache) Get(k WaveformKey) ([]complex128, bool) {
	c.mu.RLock()
	s, ok := c.entries[k]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return s, ok
}

// Put stores a waveform under the key, taking ownership of the slice. It
// evicts oldest-first until the byte bound holds; a single waveform larger
// than the whole bound is not stored.
func (c *WaveformCache) Put(k WaveformKey, samples []complex128) {
	size := int64(len(samples)) * 16
	if size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[k]; ok {
		return // raced with another producer of the identical waveform
	}
	for c.bytes+size > c.maxBytes && len(c.order) > 0 {
		old := c.order[0]
		c.order = c.order[1:]
		c.bytes -= int64(len(c.entries[old])) * 16
		delete(c.entries, old)
		c.evictions.Add(1)
	}
	c.entries[k] = samples
	c.order = append(c.order, k)
	c.bytes += size
}

// Modulate is the cached equivalent of the package-level Modulate: on a hit
// it returns a private copy of the memoized waveform, on a miss it runs the
// OFDM modulator and memoizes the result. The returned slice is always owned
// by the caller. A nil cache falls through to Modulate directly.
func (c *WaveformCache) Modulate(g *Grid) []complex128 {
	if c == nil {
		return Modulate(g)
	}
	k := KeyForGrid(g)
	if s, ok := c.Get(k); ok {
		out := make([]complex128, len(s))
		copy(out, s)
		return out
	}
	out := Modulate(g)
	stored := make([]complex128, len(out))
	copy(stored, out)
	c.Put(k, stored)
	return out
}

// Stats snapshots the cache counters.
func (c *WaveformCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.RLock()
	entries, bytes := len(c.entries), c.bytes
	c.mu.RUnlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
		Bytes:     bytes,
	}
}

// Reset drops every entry and zeroes the counters.
func (c *WaveformCache) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.entries = map[WaveformKey][]complex128{}
	c.order = nil
	c.bytes = 0
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
}

// SharedStats reports the shared cache's counters (zeroes when caching is
// globally disabled). It exists so packages that should not reach into the
// SharedCache variable directly — the experiment metrics, mostly — have a
// stable read-only view.
func SharedStats() CacheStats { return SharedCache.Stats() }
