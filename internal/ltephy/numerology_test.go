package ltephy

import (
	"math"
	"testing"
)

func TestNumerologyTable(t *testing.T) {
	cases := []struct {
		bw   Bandwidth
		nrb  int
		fft  int
		rate float64
	}{
		{BW1_4, 6, 128, 1.92e6},
		{BW3, 15, 256, 3.84e6},
		{BW5, 25, 512, 7.68e6},
		{BW10, 50, 1024, 15.36e6},
		{BW15, 75, 1536, 23.04e6},
		{BW20, 100, 2048, 30.72e6},
	}
	for _, c := range cases {
		if c.bw.NRB() != c.nrb {
			t.Errorf("%v NRB = %d, want %d", c.bw, c.bw.NRB(), c.nrb)
		}
		if c.bw.FFTSize() != c.fft {
			t.Errorf("%v FFT = %d, want %d", c.bw, c.bw.FFTSize(), c.fft)
		}
		if math.Abs(c.bw.SampleRate()-c.rate) > 1 {
			t.Errorf("%v rate = %v, want %v", c.bw, c.bw.SampleRate(), c.rate)
		}
		if c.bw.Subcarriers() != 12*c.nrb {
			t.Errorf("%v subcarriers = %d", c.bw, c.bw.Subcarriers())
		}
	}
}

func TestSlotSampleCounts(t *testing.T) {
	for _, bw := range Bandwidths {
		// A slot is exactly 0.5 ms at the nominal rate.
		want := int(0.5e-3 * bw.SampleRate())
		if got := bw.SamplesPerSlot(); got != want {
			t.Errorf("%v samples/slot = %d, want %d", bw, got, want)
		}
		if bw.SamplesPerSubframe() != 2*want {
			t.Errorf("%v samples/subframe mismatch", bw)
		}
	}
}

func TestCPLengths20MHz(t *testing.T) {
	if got := BW20.CPLen(0); got != 160 {
		t.Errorf("first CP = %d, want 160", got)
	}
	if got := BW20.CPLen(3); got != 144 {
		t.Errorf("normal CP = %d, want 144", got)
	}
}

func TestCPLengthsScaleWithFFT(t *testing.T) {
	for _, bw := range Bandwidths {
		n := bw.FFTSize()
		if got, want := bw.CPLen(0), 160*n/2048; got != want {
			t.Errorf("%v CP0 = %d, want %d", bw, got, want)
		}
		if 160*n%2048 != 0 || 144*n%2048 != 0 {
			t.Errorf("%v CP not integer", bw)
		}
	}
}

func TestUnitsPerSymbol20MHz(t *testing.T) {
	p := DefaultParams(BW20)
	// Paper §3.2.3 (corrected arithmetic): 2048 + 144 = 2192 units in a
	// normal symbol, 1200 of which carry backscatter data (~54.7%).
	if got := p.UnitsPerSymbol(1); got != 2192 {
		t.Errorf("units/symbol = %d, want 2192", got)
	}
	if got := p.UsefulModulationUnits(); got != 1200 {
		t.Errorf("useful units = %d, want 1200", got)
	}
	frac := float64(p.UsefulModulationUnits()) / float64(p.UnitsPerSymbol(1))
	if frac < 0.54 || frac > 0.56 {
		t.Errorf("useful-modulation fraction = %v, want ~0.547", frac)
	}
}

func TestUnitDuration20MHzIsTensOfNs(t *testing.T) {
	p := DefaultParams(BW20)
	ts := p.UnitDuration()
	if ts < 30e-9 || ts > 35e-9 {
		t.Fatalf("basic timing unit = %v s, want ~32.55 ns", ts)
	}
}

func TestShiftFrequencyOutsideBand(t *testing.T) {
	for _, bw := range Bandwidths {
		p := DefaultParams(bw)
		if p.ShiftFrequency() < bw.MHz()*1e6/2 {
			t.Errorf("%v: shift %v Hz inside the occupied half-band", bw, p.ShiftFrequency())
		}
	}
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams(BW5)
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := good
	bad.CellID = 504
	if bad.Validate() == nil {
		t.Fatal("cell ID 504 accepted")
	}
	bad = good
	bad.Oversample = 1
	if bad.Validate() == nil {
		t.Fatal("oversample 1 accepted")
	}
}

func TestNIDSplit(t *testing.T) {
	p := Params{BW: BW5, CellID: 301, Oversample: 2}
	if p.NID1() != 100 || p.NID2() != 1 {
		t.Fatalf("NID1/NID2 = %d/%d, want 100/1", p.NID1(), p.NID2())
	}
}

func TestBandwidthString(t *testing.T) {
	if BW20.String() != "20MHz" || BW1_4.String() != "1.4MHz" {
		t.Fatal("bandwidth names wrong")
	}
}
