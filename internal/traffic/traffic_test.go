package traffic

import (
	"testing"

	"lscatter/internal/rng"
	"lscatter/internal/stats"
)

func TestLTEOccupancyAlwaysFull(t *testing.T) {
	for _, v := range []Venue{Home, Office, Mall, Outdoor} {
		m := NewModel(LTE, v, 1)
		for _, s := range m.Series(24, 10) {
			if s != 1.0 {
				t.Fatalf("%v: LTE occupancy %v, want 1.0 (Observation 1)", v, s)
			}
		}
	}
}

func TestLoRaOccupancySparse(t *testing.T) {
	m := NewModel(LoRa, Home, 2)
	ser := m.WeekSeries(4)
	med := stats.Median(ser)
	if med < 0.005 || med > 0.05 {
		t.Fatalf("LoRa median occupancy = %v, want ~0.02", med)
	}
	if _, hi := stats.MinMax(ser); hi > 0.2 {
		t.Fatalf("LoRa max occupancy = %v, implausibly high", hi)
	}
}

func TestWiFiOfficeMatchesPaperCDF(t *testing.T) {
	// Fig 4c: office (heaviest site) occupancy < 0.5 for ~80% of the time
	// and < 0.7 for ~90% of the time.
	m := NewModel(WiFi, Office, 3)
	c := stats.NewCDF(m.WeekSeries(12))
	if p := c.At(0.5); p < 0.70 || p > 0.93 {
		t.Fatalf("P(occ<0.5) = %v, want ~0.8", p)
	}
	if p := c.At(0.7); p < 0.85 || p > 0.985 {
		t.Fatalf("P(occ<0.7) = %v, want ~0.9", p)
	}
}

func TestWiFiVenueOrdering(t *testing.T) {
	// Office is the heaviest of the three Fig 4c sites; home and classroom
	// are lighter; outdoor is lightest of all sites.
	mean := func(v Venue, seed uint64) float64 {
		return stats.Mean(NewModel(WiFi, v, seed).WeekSeries(8))
	}
	office := mean(Office, 4)
	home := mean(Home, 5)
	outdoor := mean(Outdoor, 6)
	if office <= home {
		t.Fatalf("office %v not heavier than home %v", office, home)
	}
	if home <= outdoor {
		t.Fatalf("home %v not heavier than outdoor %v", home, outdoor)
	}
}

func TestWiFiDiurnalShape(t *testing.T) {
	// Home traffic peaks in the evening (Fig 17: highest 4 pm - 9 pm) and
	// bottoms out before dawn.
	m := NewModel(WiFi, Home, 7)
	avgAt := func(hour float64) float64 {
		var s float64
		for i := 0; i < 300; i++ {
			s += m.Sample(hour)
		}
		return s / 300
	}
	evening := avgAt(19)
	dawn := avgAt(4)
	if evening < 2*dawn {
		t.Fatalf("evening %v vs dawn %v: diurnal contrast too weak", evening, dawn)
	}
}

func TestMallHoursShape(t *testing.T) {
	m := NewModel(WiFi, Mall, 8)
	avgAt := func(hour float64) float64 {
		var s float64
		for i := 0; i < 300; i++ {
			s += m.Sample(hour)
		}
		return s / 300
	}
	if open, closed := avgAt(20), avgAt(3); open < 3*closed {
		t.Fatalf("mall open %v vs closed %v", open, closed)
	}
}

func TestOccupancyBounds(t *testing.T) {
	for _, tech := range []Tech{LTE, WiFi, LoRa} {
		m := NewModel(tech, Office, 9)
		for _, s := range m.Series(48, 20) {
			if s < 0 || s > 1 {
				t.Fatalf("%v occupancy %v out of [0,1]", tech, s)
			}
		}
	}
}

func TestUsableFraction(t *testing.T) {
	m := NewModel(WiFi, Home, 10)
	if f := m.WiFiUsableFraction(); f <= 0.5 || f >= 1 {
		t.Fatalf("usable fraction %v", f)
	}
}

func TestWiFiBandIQBursty(t *testing.T) {
	x := WiFiBandIQ(1, 20e-3, 20e6)
	if len(x) != 400000 {
		t.Fatalf("snapshot length %d", len(x))
	}
	occ := MeasuredOccupancy(x, 20e6)
	if occ < 0.1 || occ > 0.9 {
		t.Fatalf("WiFi measured occupancy = %v, want bursty (0.1-0.9)", occ)
	}
}

func TestLoRaBandIQSparse(t *testing.T) {
	// Over 2 s the duty-cycled channel must be mostly idle.
	x := LoRaBandIQ(2, 2.0, 1e6)
	occ := MeasuredOccupancy(x, 1e6)
	if occ > 0.3 {
		t.Fatalf("LoRa measured occupancy = %v, want sparse", occ)
	}
}

func TestMeasuredOccupancyNoiseOnlyIsZero(t *testing.T) {
	r := rng.New(9)
	x := make([]complex128, 100000)
	for i := range x {
		x[i] = r.Complex(0.01)
	}
	if occ := MeasuredOccupancy(x, 1e6); occ != 0 {
		t.Fatalf("noise-only occupancy = %v, want 0", occ)
	}
}

func TestTechVenueStrings(t *testing.T) {
	if LTE.String() != "LTE" || Mall.String() != "mall" {
		t.Fatal("names wrong")
	}
}
