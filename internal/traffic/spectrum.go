package traffic

import (
	"math"

	"lscatter/internal/dsp"
	"lscatter/internal/rng"
)

// bandNoise produces a burst of band-limited complex noise: white Gaussian
// samples filtered to `bandwidth` around `centerOffset` Hz, normalized to
// the given power.
func bandNoise(r *rng.Source, n int, sampleRate, bandwidth, centerOffset, power float64) []complex128 {
	x := make([]complex128, n)
	sigma := 1 / math.Sqrt2
	for i := range x {
		x[i] = r.Complex(sigma)
	}
	fir := dsp.LowPassFIR(bandwidth/2, sampleRate, 63)
	x = fir.Process(x)
	if centerOffset != 0 {
		dsp.Mix(x, centerOffset, sampleRate, 0)
	}
	return dsp.ScaleTo(x, power)
}

// WiFiBandIQ synthesizes a 2.4 GHz channel snapshot for the Figure 4a
// spectrogram: CSMA WiFi bursts (16.6 MHz wide), narrowband ZigBee frames
// (2 MHz, offset), and idle gaps, at the given sample rate.
func WiFiBandIQ(seed uint64, duration, sampleRate float64) []complex128 {
	r := rng.New(seed)
	n := int(duration * sampleRate)
	out := make([]complex128, n)
	pos := 0
	for pos < n {
		// Idle gap: exponential with mean 0.8 ms.
		gap := int(r.ExpFloat64() * 0.8e-3 * sampleRate)
		pos += gap
		if pos >= n {
			break
		}
		// Burst: WiFi frame (0.2-1.5 ms) or ZigBee frame (2-5 ms, they are
		// slow) with probability ~0.25.
		if r.Float64() < 0.25 {
			durS := int((2e-3 + 3e-3*r.Float64()) * sampleRate)
			if pos+durS > n {
				durS = n - pos
			}
			offset := (r.Float64() - 0.5) * 12e6
			burst := bandNoise(r, durS, sampleRate, 2e6, offset, 0.3)
			copy(out[pos:pos+durS], burst)
			pos += durS
			continue
		}
		durS := int((0.2e-3 + 1.3e-3*r.Float64()) * sampleRate)
		if pos+durS > n {
			durS = n - pos
		}
		burst := bandNoise(r, durS, sampleRate, 16.6e6, 0, 1.0)
		copy(out[pos:pos+durS], burst)
		pos += durS
	}
	// Noise floor.
	for i := range out {
		out[i] += r.Complex(0.003)
	}
	return out
}

// LoRaBandIQ synthesizes a sparse LoRa channel snapshot: rare narrowband
// (125 kHz) chirp-length frames over a mostly idle band.
func LoRaBandIQ(seed uint64, duration, sampleRate float64) []complex128 {
	r := rng.New(seed)
	n := int(duration * sampleRate)
	out := make([]complex128, n)
	pos := 0
	for pos < n {
		gap := int(r.ExpFloat64() * 400e-3 * sampleRate) // mostly idle
		pos += gap
		if pos >= n {
			break
		}
		durS := int((20e-3 + 40e-3*r.Float64()) * sampleRate)
		if pos+durS > n {
			durS = n - pos
		}
		burst := bandNoise(r, durS, sampleRate, 125e3, (r.Float64()-0.5)*400e3, 0.5)
		copy(out[pos:pos+durS], burst)
		pos += durS
	}
	for i := range out {
		out[i] += r.Complex(0.003)
	}
	return out
}

// Spectrogram computes the Figure 4-style time-frequency map of an IQ
// snapshot.
func Spectrogram(x []complex128, sampleRate float64) *dsp.Spectrogram {
	return dsp.STFT(x, 256, 128, dsp.Hann, sampleRate)
}

// MeasuredOccupancy estimates the traffic occupancy ratio of an IQ snapshot:
// the fraction of STFT frames whose band occupancy exceeds 10% at a -30 dB
// threshold relative to the snapshot's own peak power (so absolute transmit
// scale does not matter).
func MeasuredOccupancy(x []complex128, sampleRate float64) float64 {
	s := Spectrogram(x, sampleRate)
	// Threshold relative to the strongest bin observed, so absolute scale
	// and duty cycle do not bias the measurement.
	maxDB := -300.0
	var sum float64
	var cnt int
	for _, row := range s.PowerDB {
		for _, p := range row {
			if p > maxDB {
				maxDB = p
			}
			sum += p
			cnt++
		}
	}
	// No signal at all: when the peak barely exceeds the average bin level
	// the snapshot is pure noise (a strong burst sits tens of dB above it).
	if cnt == 0 || maxDB-sum/float64(cnt) < 15 {
		return 0
	}
	occ := s.OccupiedFraction(maxDB - 30)
	busy := 0
	for _, o := range occ {
		if o > 0.1 {
			busy++
		}
	}
	if len(occ) == 0 {
		return 0
	}
	return float64(busy) / float64(len(occ))
}
