// Package traffic models the ambient-spectrum occupancy that motivates
// LScatter (the paper's Observation 1 and Figures 4/17/22/27): continuous
// LTE downlink traffic, bursty CSMA WiFi shared with heterogeneous ZigBee/BLE
// devices, and sparse LoRa duty-cycled uplinks, each with per-venue diurnal
// activity profiles calibrated to the paper's measurement CDFs.
package traffic

import (
	"fmt"
	"math"

	"lscatter/internal/rng"
)

// Tech identifies an ambient radio technology.
type Tech int

const (
	// LTE is the licensed downlink band (continuous OFDM).
	LTE Tech = iota
	// WiFi is a 2.4 GHz 20 MHz channel shared via CSMA.
	WiFi
	// LoRa is a 915 MHz LoRaWAN channel.
	LoRa
)

// String returns the technology name.
func (t Tech) String() string {
	switch t {
	case LTE:
		return "LTE"
	case WiFi:
		return "WiFi"
	case LoRa:
		return "LoRa"
	}
	return fmt.Sprintf("Tech(%d)", int(t))
}

// Venue identifies a measurement site from the paper's evaluation.
type Venue int

const (
	// Home is the two-bedroom apartment of §4.3.
	Home Venue = iota
	// Office is the office site of Fig 4c.
	Office
	// Classroom is the classroom site of Fig 4c.
	Classroom
	// Mall is the 103,500 sq ft shopping mall of §4.4.
	Mall
	// Outdoor is the street-level site of §4.5.
	Outdoor
)

// String returns the venue name.
func (v Venue) String() string {
	switch v {
	case Home:
		return "home"
	case Office:
		return "office"
	case Classroom:
		return "classroom"
	case Mall:
		return "mall"
	case Outdoor:
		return "outdoor"
	}
	return fmt.Sprintf("Venue(%d)", int(v))
}

// VenueActivity returns the venue's diurnal human-activity level (0..1) at
// the given hour of day — the shape behind the WiFi occupancy curves of
// Figures 17/22/27, and the demand profile the fleet engine uses for
// tag-message arrivals (tags are read when people are around).
func VenueActivity(v Venue, hour float64) float64 { return wifiActivity(v, hour) }

// wifiActivity returns the venue's WiFi activity level (0..1) at the given
// hour of day — the diurnal shape behind Figures 17/22/27.
func wifiActivity(v Venue, hour float64) float64 {
	h := math.Mod(hour, 24)
	bump := func(center, width, amp float64) float64 {
		d := h - center
		return amp * math.Exp(-d*d/(2*width*width))
	}
	switch v {
	case Home:
		// Evening-heavy: peak 4 pm - 9 pm, quiet before dawn.
		return 0.05 + bump(12.5, 2.0, 0.18) + bump(19, 2.6, 0.5)
	case Office:
		// Work hours; the heaviest of the three Fig 4c sites.
		return 0.06 + bump(11, 2.2, 0.38) + bump(15, 2.5, 0.34)
	case Classroom:
		return 0.04 + bump(10, 1.6, 0.4) + bump(14, 2.0, 0.35)
	case Mall:
		// Open 10 am - 9 pm; busiest in the evening (Fig 22 peaks ~8 pm).
		if h < 9.5 || h > 21.5 {
			return 0.03
		}
		return 0.12 + bump(13, 2.2, 0.25) + bump(19.5, 1.8, 0.42)
	case Outdoor:
		// Street level: weak coverage, light traffic (Fig 27).
		return 0.03 + bump(12, 3.0, 0.12) + bump(18, 3.0, 0.15)
	}
	return 0
}

// Model generates occupancy-ratio samples (fraction of a measurement window
// in which the band carries signal) for one technology at one venue.
type Model struct {
	Tech  Tech
	Venue Venue
	// HeteroFraction is the share of 2.4 GHz airtime occupied by
	// non-WiFi (ZigBee/BLE) devices — unusable by a WiFi backscatter tag.
	HeteroFraction float64
	r              *rng.Source
}

// NewModel builds an occupancy model with its own random stream.
func NewModel(tech Tech, venue Venue, seed uint64) *Model {
	return &Model{Tech: tech, Venue: venue, HeteroFraction: 0.2, r: rng.New(seed)}
}

// Sample draws one occupancy ratio for a measurement window at the given
// hour of day (fractional hours allowed).
func (m *Model) Sample(hour float64) float64 {
	switch m.Tech {
	case LTE:
		// Continuous downlink: PSS/CRS/PDCCH alone keep the band occupied;
		// the paper measures 100% at every site and hour.
		return 1.0
	case LoRa:
		// Duty-cycled sparse uplinks: ~0.02 nearly always (Fig 4c).
		base := 0.02
		if m.r.Float64() < 0.03 {
			base += 0.03 * m.r.Float64() // occasional downlink beacon window
		}
		return clamp01(base + 0.005*m.r.NormFloat64())
	case WiFi:
		a := wifiActivity(m.Venue, hour)
		// Bursty CSMA airtime: a gamma-like draw around the activity level,
		// heavy-tailed so short windows can spike (the outliers on the
		// paper's box plots).
		x := a * (0.65 + 0.7*m.r.ExpFloat64())
		return clamp01(x)
	}
	return 0
}

// WiFiUsableFraction returns the share of an occupancy sample a WiFi
// backscatter tag can actually ride: heterogeneous (ZigBee/BLE) airtime is
// excluded because piggybacked packets on those frames cannot be decoded by
// a WiFi receiver (§2.2).
func (m *Model) WiFiUsableFraction() float64 { return 1 - m.HeteroFraction }

// Series draws samplesPerHour occupancy samples for each hour in [0, hours).
func (m *Model) Series(hours int, samplesPerHour int) []float64 {
	out := make([]float64, 0, hours*samplesPerHour)
	for h := 0; h < hours; h++ {
		for s := 0; s < samplesPerHour; s++ {
			frac := float64(h) + float64(s)/float64(samplesPerHour)
			out = append(out, m.Sample(frac))
		}
	}
	return out
}

// WeekSeries draws a full week of hourly samples (the paper's Fig 4c data
// covers a week including weekdays and weekend).
func (m *Model) WeekSeries(samplesPerHour int) []float64 {
	return m.Series(24*7, samplesPerHour)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
