package impair

import (
	"math"
	"math/cmplx"
	"testing"

	"lscatter/internal/dsp"
	"lscatter/internal/rng"
)

// randomBlocks draws a stream of nBlocks blocks of blockLen complex samples.
func randomBlocks(seed uint64, nBlocks, blockLen int) [][]complex128 {
	r := rng.New(seed)
	out := make([][]complex128, nBlocks)
	for b := range out {
		blk := make([]complex128, blockLen)
		for i := range blk {
			blk[i] = r.Complex(1 / math.Sqrt2)
		}
		out[b] = blk
	}
	return out
}

// severe returns a configuration with every stage enabled at aggressive
// settings, used by the reproducibility and isolation properties.
func severe(seed uint64) Config {
	return Config{
		Seed:       seed,
		SampleRate: 1.92e6,
		Jitter:     JitterConfig{Enabled: true, RMSSamples: 3},
		SFO:        SFOConfig{Enabled: true, PPM: 40},
		CFO:        CFOConfig{Enabled: true, OffsetHz: 900, DriftHzPerSec: 300, PhaseNoiseRMSRad: 2e-3},
		Interference: InterferenceConfig{
			Enabled: true, ImpulsesPerSec: 2000, ImpulseSIRdB: -6,
			BurstsPerSec: 40, BurstDurationSec: 1e-3, BurstSIRdB: 0,
		},
		ADC: ADCConfig{Enabled: true, Bits: 6, ClipBackoffDB: 6},
	}
}

func processStream(p *Pipeline, blocks [][]complex128) [][]complex128 {
	out := make([][]complex128, len(blocks))
	for i, b := range blocks {
		out[i] = p.Process(b)
	}
	return out
}

func equalStreams(a, b [][]complex128) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestSameSeedReproducible: the determinism contract. Two pipelines built
// from the same Config produce bit-identical streams, across multiple seeds
// and blocks, at the full severe stage combination.
func TestSameSeedReproducible(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		blocks := randomBlocks(seed*31, 4, 2048)
		a := processStream(New(severe(seed)), blocks)
		b := processStream(New(severe(seed)), blocks)
		if !equalStreams(a, b) {
			t.Fatalf("seed %d: same-config pipelines diverged", seed)
		}
	}
}

// TestAnyStageOrderReproducible: a custom Order is itself reproducible, and
// every permutation of the stage order yields a deterministic (per-order)
// stream.
func TestAnyStageOrderReproducible(t *testing.T) {
	orders := [][]StageKind{
		{Jitter, SFO, CFO, Interference, ADC},
		{ADC, Interference, CFO, SFO, Jitter},
		{CFO, Jitter, ADC, SFO, Interference},
		{Interference, ADC, Jitter, CFO, SFO},
	}
	blocks := randomBlocks(99, 3, 2048)
	for _, order := range orders {
		cfg := severe(7)
		cfg.Order = order
		a := processStream(New(cfg), blocks)
		b := processStream(New(cfg), blocks)
		if !equalStreams(a, b) {
			t.Fatalf("order %v: pipelines with the same seed diverged", order)
		}
	}
}

// TestStageStreamsIndependent: disabling one stage must not change the
// randomness another stage draws. The interference pattern added on top of
// the input must be identical whether or not the jitter stage runs before it
// is disabled... concretely: run interference alone vs. interference with CFO
// at zero magnitude (identity but present) — the added noise is the same.
func TestStageStreamsIndependent(t *testing.T) {
	blocks := randomBlocks(5, 3, 2048)
	base := Config{
		Seed:       11,
		SampleRate: 1.92e6,
		Interference: InterferenceConfig{
			Enabled: true, ImpulsesPerSec: 5000, ImpulseSIRdB: -3,
			BurstsPerSec: 100, BurstDurationSec: 5e-4, BurstSIRdB: 0,
		},
	}
	withIdentityCFO := base
	withIdentityCFO.CFO = CFOConfig{Enabled: true} // zero magnitude: exact identity
	a := processStream(New(base), blocks)
	b := processStream(New(withIdentityCFO), blocks)
	if !equalStreams(a, b) {
		t.Fatal("enabling a zero-magnitude stage changed another stage's random stream")
	}
}

// TestZeroMagnitudeStagesAreExactIdentities: every randomized/parametric
// stage with zero-magnitude settings returns the input bit-for-bit.
func TestZeroMagnitudeStagesAreExactIdentities(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"jitter", Config{Seed: 3, Jitter: JitterConfig{Enabled: true, RMSSamples: 0}}},
		{"sfo", Config{Seed: 3, SFO: SFOConfig{Enabled: true, PPM: 0}}},
		{"cfo", Config{Seed: 3, SampleRate: 1e6, CFO: CFOConfig{Enabled: true}}},
		{"interference", Config{Seed: 3, SampleRate: 1e6, Interference: InterferenceConfig{Enabled: true}}},
	}
	blocks := randomBlocks(17, 3, 1024)
	for _, tc := range cases {
		p := New(tc.cfg)
		if !p.Active() {
			t.Fatalf("%s: stage not active", tc.name)
		}
		for bi, blk := range blocks {
			in := append([]complex128(nil), blk...)
			out := p.Process(blk)
			for i := range in {
				if out[i] != in[i] {
					t.Fatalf("%s: block %d sample %d changed: %v -> %v", tc.name, bi, i, in[i], out[i])
				}
			}
			// The input slice itself must stay untouched.
			for i := range in {
				if blk[i] != in[i] {
					t.Fatalf("%s: stage mutated its input", tc.name)
				}
			}
		}
	}
}

// TestPurePhaseStageConservesPower: the CFO stage only rotates, so per-sample
// magnitude — and hence block power — is conserved within floating-point
// tolerance at any offset/drift/phase-noise setting.
func TestPurePhaseStageConservesPower(t *testing.T) {
	cfg := Config{
		Seed:       21,
		SampleRate: 1.92e6,
		CFO:        CFOConfig{Enabled: true, OffsetHz: 1234.5, DriftHzPerSec: 777, PhaseNoiseRMSRad: 5e-3},
	}
	p := New(cfg)
	for _, blk := range randomBlocks(23, 4, 4096) {
		in := dsp.Power(blk)
		out := p.Process(blk)
		got := dsp.Power(out)
		if rel := math.Abs(got-in) / in; rel > 1e-12 {
			t.Fatalf("CFO stage changed power by %.3e relative", rel)
		}
		for i := range blk {
			if d := math.Abs(cmplx.Abs(out[i]) - cmplx.Abs(blk[i])); d > 1e-12 {
				t.Fatalf("sample %d magnitude changed by %v", i, d)
			}
		}
	}
}

// TestSFOConservesPowerApproximately: linear-interpolation resampling at a
// few ppm moves samples by fractions of a sample period; on a band-limited
// (oversampled) signal — which is what the chain feeds it — the block power
// can only change marginally. White noise would be the pathological case:
// adjacent samples are independent, so mid-sample interpolation averages
// power away by design.
func TestSFOConservesPowerApproximately(t *testing.T) {
	cfg := Config{Seed: 9, SFO: SFOConfig{Enabled: true, PPM: 20}}
	p := New(cfg)
	const n = 8192
	r := rng.New(29)
	for b := 0; b < 4; b++ {
		// Multitone occupying the lowest 1/16 of the band (16x oversampled).
		blk := make([]complex128, n)
		for tone := 0; tone < 16; tone++ {
			f := float64(r.Intn(n / 16))
			ph0 := 2 * math.Pi * r.Float64()
			for i := range blk {
				ph := 2*math.Pi*f*float64(i)/n + ph0
				blk[i] += complex(math.Cos(ph), math.Sin(ph))
			}
		}
		in := dsp.Power(blk)
		out := p.Process(blk)
		got := dsp.Power(out)
		if rel := math.Abs(got-in) / in; rel > 0.05 {
			t.Fatalf("SFO at 20 ppm changed power by %.3f relative", rel)
		}
	}
}

// TestResetRewindsExactly: Reset must reproduce the first run bit-for-bit.
func TestResetRewindsExactly(t *testing.T) {
	blocks := randomBlocks(41, 3, 2048)
	p := New(severe(13))
	a := processStream(p, blocks)
	p.Reset()
	b := processStream(p, blocks)
	if !equalStreams(a, b) {
		t.Fatal("Reset did not rewind the pipeline to its initial state")
	}
}

// TestInactivePipelinePassesThrough: with no stages enabled, Process returns
// the input slice itself — zero cost on the clean path.
func TestInactivePipelinePassesThrough(t *testing.T) {
	p := New(Config{Seed: 1})
	if p.Active() {
		t.Fatal("empty config produced an active pipeline")
	}
	x := make([]complex128, 64)
	if out := p.Process(x); &out[0] != &x[0] {
		t.Fatal("inactive pipeline did not pass the slice through")
	}
	var nilP *Pipeline
	if out := nilP.Process(x); &out[0] != &x[0] {
		t.Fatal("nil pipeline did not pass the slice through")
	}
	if nilP.Active() {
		t.Fatal("nil pipeline reports active")
	}
	if got := nilP.Describe(); got != "clean" {
		t.Fatalf("nil pipeline describes as %q", got)
	}
}

// TestADCQuantizesAndClips: a strong outlier is clipped to full scale and
// ordinary samples land on quantizer steps.
func TestADCQuantizesAndClips(t *testing.T) {
	cfg := Config{Seed: 1, ADC: ADCConfig{Enabled: true, Bits: 4, ClipBackoffDB: 6}}
	p := New(cfg)
	blk := make([]complex128, 1024)
	r := rng.New(77)
	for i := range blk {
		blk[i] = r.Complex(1 / math.Sqrt2)
	}
	blk[100] = complex(1e3, -1e3) // outlier far beyond full scale
	out := p.Process(blk)
	rms := math.Sqrt(dsp.Power(blk))
	full := rms * math.Pow(10, 6.0/20)
	if real(out[100]) > full+1e-9 || imag(out[100]) < -full-1e-9 {
		t.Fatalf("outlier not clipped: %v (full scale %v)", out[100], full)
	}
	// 4-bit quantizer: at most 15 distinct magnitudes per dimension.
	seen := map[float64]bool{}
	for _, v := range out {
		seen[math.Abs(real(v))] = true
		seen[math.Abs(imag(v))] = true
	}
	if len(seen) > 8+1 { // 2^(4-1)-1 levels + zero
		t.Fatalf("4-bit ADC produced %d distinct magnitudes", len(seen))
	}
}

// TestJitterShiftsStream: with a large RMS, at least one block comes back
// time-shifted relative to the input.
func TestJitterShiftsStream(t *testing.T) {
	cfg := Config{Seed: 31, Jitter: JitterConfig{Enabled: true, RMSSamples: 4}}
	p := New(cfg)
	blocks := randomBlocks(51, 6, 1024)
	shifted := false
	for _, blk := range blocks {
		out := p.Process(blk)
		for i := range blk {
			if out[i] != blk[i] {
				shifted = true
				break
			}
		}
	}
	if !shifted {
		t.Fatal("jitter with RMS 4 samples never re-timed a block")
	}
}

// TestCFOShiftsSpectrum: a pure tone through the CFO stage moves by the
// configured offset.
func TestCFOShiftsSpectrum(t *testing.T) {
	const n = 4096
	const fs = 1.92e6
	const binHz = fs / n
	cfg := Config{Seed: 61, SampleRate: fs, CFO: CFOConfig{Enabled: true, OffsetHz: 32 * binHz}}
	p := New(cfg)
	tone := make([]complex128, n)
	for i := range tone {
		ph := 2 * math.Pi * 100 * float64(i) / n
		tone[i] = complex(math.Cos(ph), math.Sin(ph))
	}
	out := p.Process(tone)
	spec := dsp.FFT(out)
	peak, _ := dsp.MaxAbsIndex(spec)
	if peak != 132 {
		t.Fatalf("tone at bin 100 with +32-bin CFO landed on bin %d, want 132", peak)
	}
}

// TestInterferenceAddsConfiguredPower: long-run added power approximates the
// configured burst SIR and duty cycle.
func TestInterferenceAddsConfiguredPower(t *testing.T) {
	const fs = 1e6
	cfg := Config{
		Seed:       71,
		SampleRate: fs,
		Interference: InterferenceConfig{
			Enabled:      true,
			BurstsPerSec: 50, BurstDurationSec: 2e-3, BurstSIRdB: 0,
		},
	}
	// Duty cycle 50*2e-3 = 0.1; burst power == signal power, so the mean
	// added power is ~0.1x the signal power.
	p := New(cfg)
	var addedE, sigE float64
	for _, blk := range randomBlocks(73, 40, 8192) {
		out := p.Process(blk)
		for i := range blk {
			d := out[i] - blk[i]
			addedE += real(d)*real(d) + imag(d)*imag(d)
			sigE += real(blk[i])*real(blk[i]) + imag(blk[i])*imag(blk[i])
		}
	}
	ratio := addedE / sigE
	if ratio < 0.03 || ratio > 0.3 {
		t.Fatalf("burst interference duty*power ratio %.3f outside [0.03, 0.3]", ratio)
	}
}

// TestUnknownOrderKindPanics guards the Config validation.
func TestUnknownOrderKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid Order kind did not panic")
		}
	}()
	cfg := Config{Seed: 1, Order: []StageKind{StageKind(99)}}
	New(cfg)
}

// TestDuplicateOrderKindPanics guards against listing a stage twice.
func TestDuplicateOrderKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Order kind did not panic")
		}
	}()
	cfg := Config{Seed: 1, Order: []StageKind{CFO, CFO}}
	New(cfg)
}

// TestDescribeNamesStages checks the chain rendering used by the binaries.
func TestDescribeNamesStages(t *testing.T) {
	cfg := Config{
		Seed:       1,
		SampleRate: 1e6,
		SFO:        SFOConfig{Enabled: true, PPM: 1},
		ADC:        ADCConfig{Enabled: true},
	}
	if got := New(cfg).Describe(); got != "sfo→adc" {
		t.Fatalf("Describe() = %q, want sfo→adc", got)
	}
}
