package impair

import (
	"fmt"
	"math"

	"lscatter/internal/dsp"
	"lscatter/internal/fxp"
	"lscatter/internal/rng"
)

// jitterStage re-times the stream by a fresh integer shift per block, drawn
// from N(0, RMS) and clamped to ±4 RMS. Positive shifts delay the stream
// (samples arrive late), reading back into a history buffer; negative shifts
// advance it, holding the final sample at the block tail.
type jitterStage struct {
	cfg     JitterConfig
	seed    uint64
	r       *rng.Source
	max     int          // clamp, in samples
	hist    []complex128 // last max samples of the previous block
	histFxp *fxp.Buf     // fixed-point-lane history (see fxp.go)
}

func newJitterStage(cfg JitterConfig, seed uint64) *jitterStage {
	if cfg.RMSSamples < 0 {
		panic(fmt.Sprintf("impair: jitter RMS %v must be >= 0", cfg.RMSSamples))
	}
	s := &jitterStage{cfg: cfg, seed: seed}
	s.Reset()
	return s
}

func (s *jitterStage) Kind() StageKind { return Jitter }

func (s *jitterStage) Reset() {
	s.r = newStageRNG(s.seed)
	s.max = int(math.Ceil(4 * s.cfg.RMSSamples))
	s.hist = make([]complex128, s.max)
	s.histFxp = nil
}

func (s *jitterStage) Process(x []complex128) []complex128 {
	shift := int(math.Round(s.r.NormFloat64() * s.cfg.RMSSamples))
	if shift > s.max {
		shift = s.max
	}
	if shift < -s.max {
		shift = -s.max
	}
	at := func(i int) complex128 {
		switch {
		case i < 0:
			if h := len(s.hist) + i; h >= 0 {
				return s.hist[h]
			}
			return 0
		case i >= len(x):
			return x[len(x)-1]
		}
		return x[i]
	}
	out := make([]complex128, len(x))
	for i := range out {
		out[i] = at(i - shift)
	}
	if s.max > 0 && len(x) >= s.max {
		copy(s.hist, x[len(x)-s.max:])
	}
	return out
}

// sfoStage resamples the stream at (1 + ppm*1e-6) of the nominal rate with
// linear interpolation. Only the fractional part of the accumulated drift is
// carried across blocks: a tracking receiver re-times integer sample slips,
// so the damage a fixed-length block chain sees is the residual intra-block
// drift and the wandering fractional phase — which is exactly what this stage
// models. With PPM = 0 the stage is an exact identity (copy).
type sfoStage struct {
	cfg  SFOConfig
	eps  float64 // rate error: ppm * 1e-6
	frac float64 // fractional source offset carried across blocks
	prev complex128
	have bool
}

func newSFOStage(cfg SFOConfig) *sfoStage {
	if math.IsNaN(cfg.PPM) || math.IsInf(cfg.PPM, 0) {
		panic(fmt.Sprintf("impair: SFO ppm %v must be finite", cfg.PPM))
	}
	s := &sfoStage{cfg: cfg}
	s.Reset()
	return s
}

func (s *sfoStage) Kind() StageKind { return SFO }

func (s *sfoStage) Reset() {
	s.eps = s.cfg.PPM * 1e-6
	s.frac = 0
	s.prev = 0
	s.have = false
}

func (s *sfoStage) Process(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	at := func(i int) complex128 {
		switch {
		case i < 0:
			if s.have {
				return s.prev
			}
			return 0
		case i >= len(x):
			return x[len(x)-1]
		}
		return x[i]
	}
	pos := s.frac
	for i := range out {
		idx := int(math.Floor(pos))
		f := pos - float64(idx)
		if f == 0 {
			out[i] = at(idx)
		} else {
			a, b := at(idx), at(idx+1)
			out[i] = a + complex(f, 0)*(b-a)
		}
		pos += 1 + s.eps
	}
	if len(x) > 0 {
		s.prev = x[len(x)-1]
		s.have = true
	}
	// Carry the fractional drift; the integer slip is absorbed by receiver
	// timing tracking (see the type comment).
	drift := pos - float64(len(x))
	s.frac = drift - math.Floor(drift)
	if s.eps == 0 {
		s.frac = 0
	}
	return out
}

// cfoStage rotates the stream by a time-varying carrier offset with a Wiener
// phase-noise component. Pure phase rotation: |out[i]| == |x[i]| up to
// rounding, and with all parameters zero the multiply is by exactly 1+0i.
type cfoStage struct {
	cfg   CFOConfig
	fs    float64
	seed  uint64
	r     *rng.Source
	phase float64 // accumulated phase, radians
	t     float64 // stream time, seconds
}

func newCFOStage(cfg CFOConfig, sampleRate float64, seed uint64) *cfoStage {
	if cfg.OffsetHz != 0 || cfg.DriftHzPerSec != 0 {
		if sampleRate <= 0 {
			panic("impair: CFO stage needs a positive Config.SampleRate")
		}
	}
	s := &cfoStage{cfg: cfg, fs: sampleRate, seed: seed}
	s.Reset()
	return s
}

func (s *cfoStage) Kind() StageKind { return CFO }

func (s *cfoStage) Reset() {
	s.r = newStageRNG(s.seed)
	s.phase = 0
	s.t = 0
}

func (s *cfoStage) Process(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	dt := 0.0
	if s.fs > 0 {
		dt = 1 / s.fs
	}
	for i, v := range x {
		f := s.cfg.OffsetHz + s.cfg.DriftHzPerSec*s.t
		s.phase += 2 * math.Pi * f * dt
		if s.cfg.PhaseNoiseRMSRad > 0 {
			s.phase += s.cfg.PhaseNoiseRMSRad * s.r.NormFloat64()
		}
		// Keep the accumulator bounded so million-sample streams do not
		// lose phase precision.
		if s.phase > math.Pi || s.phase < -math.Pi {
			s.phase = math.Mod(s.phase, 2*math.Pi)
		}
		out[i] = v * complex(math.Cos(s.phase), math.Sin(s.phase))
		s.t += dt
	}
	return out
}

// interferenceStage adds impulsive and bursty co-channel interference.
// Powers are relative to each block's measured signal power, so the stage
// expresses a signal-to-interference ratio independent of link geometry.
// The RNG consumption per block depends only on the block length and the
// stage's own state, never on the sample values, so the stream stays aligned
// across any input.
type interferenceStage struct {
	cfg       InterferenceConfig
	fs        float64
	seed      uint64
	r         *rng.Source
	burstLeft int // samples remaining in the current burst
}

func newInterferenceStage(cfg InterferenceConfig, sampleRate float64, seed uint64) *interferenceStage {
	if cfg.ImpulsesPerSec < 0 || cfg.BurstsPerSec < 0 || cfg.BurstDurationSec < 0 {
		panic("impair: interference rates must be >= 0")
	}
	if (cfg.ImpulsesPerSec > 0 || cfg.BurstsPerSec > 0) && sampleRate <= 0 {
		panic("impair: interference stage needs a positive Config.SampleRate")
	}
	s := &interferenceStage{cfg: cfg, fs: sampleRate, seed: seed}
	s.Reset()
	return s
}

func (s *interferenceStage) Kind() StageKind { return Interference }

func (s *interferenceStage) Reset() {
	s.r = newStageRNG(s.seed)
	s.burstLeft = 0
}

func (s *interferenceStage) Process(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	// Reference power from this block; a silent block collapses the
	// interference amplitudes to zero while the RNG advances on the same
	// schedule, so the stream stays reproducible mid-run.
	sigP := dsp.Power(x)
	pImp := 0.0
	if s.cfg.ImpulsesPerSec > 0 {
		pImp = s.cfg.ImpulsesPerSec / s.fs
	}
	pBurst := 0.0
	if s.cfg.BurstsPerSec > 0 {
		pBurst = s.cfg.BurstsPerSec / s.fs
	}
	impP := sigP * dsp.FromDB(-s.cfg.ImpulseSIRdB)
	burstSigma := math.Sqrt(sigP * dsp.FromDB(-s.cfg.BurstSIRdB) / 2)
	meanBurst := s.cfg.BurstDurationSec * s.fs
	for i := range out {
		if pImp > 0 && s.r.Float64() < pImp {
			// Single-sample impulse: exponential magnitude around the
			// configured peak power, uniform phase.
			mag := math.Sqrt(impP) * s.r.ExpFloat64()
			ph := 2 * math.Pi * s.r.Float64()
			out[i] += complex(mag*math.Cos(ph), mag*math.Sin(ph))
		}
		if s.burstLeft > 0 {
			out[i] += s.r.Complex(burstSigma)
			s.burstLeft--
		} else if pBurst > 0 && s.r.Float64() < pBurst {
			// New burst with an exponential duration.
			n := int(s.r.ExpFloat64() * meanBurst)
			if n < 1 {
				n = 1
			}
			s.burstLeft = n
			out[i] += s.r.Complex(burstSigma)
			s.burstLeft--
		}
	}
	return out
}

// adcStage clips each I/Q dimension at a full scale placed ClipBackoffDB
// above the block RMS and quantizes to Bits with a mid-tread uniform
// quantizer. It draws no randomness.
type adcStage struct {
	cfg ADCConfig
}

func newADCStage(cfg ADCConfig) *adcStage {
	if cfg.Bits == 0 {
		cfg.Bits = 12
	}
	if cfg.ClipBackoffDB == 0 {
		cfg.ClipBackoffDB = 12
	}
	if cfg.Bits < 1 || cfg.Bits > 32 {
		panic(fmt.Sprintf("impair: ADC bits %d out of [1,32]", cfg.Bits))
	}
	return &adcStage{cfg: cfg}
}

func (s *adcStage) Kind() StageKind { return ADC }

func (s *adcStage) Reset() {}

func (s *adcStage) Process(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	p := dsp.Power(x)
	if p == 0 {
		copy(out, x)
		return out
	}
	full := math.Sqrt(p) * math.Pow(10, s.cfg.ClipBackoffDB/20)
	levels := float64(int64(1)<<(s.cfg.Bits-1)) - 1
	q := func(v float64) float64 {
		if v > full {
			v = full
		} else if v < -full {
			v = -full
		}
		return math.Round(v/full*levels) / levels * full
	}
	for i, v := range x {
		out[i] = complex(q(real(v)), q(imag(v)))
	}
	return out
}
