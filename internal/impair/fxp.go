package impair

import (
	"math"

	"lscatter/internal/fxp"
)

// This file is the impairment pipeline's fixed-point lane. Stages whose
// math is naturally integer — the timing jitter (an index shift) and the
// ADC (clip + requantize) — implement fxpStage and process Q1.15 blocks
// natively. The remaining stages (SFO resampling, CFO rotation,
// interference synthesis) run their float reference path behind a
// convert/reconvert bridge: correctness and RNG parity first, speed where
// it is free. docs/PERFORMANCE.md's lane-selection guidance spells out the
// consequence: a chain with CFO or SFO enabled gains little from the fxp
// lane, a clean or jitter/ADC-only chain keeps the full win.
//
// A pipeline must be fed one lane consistently: the stateful stages keep
// per-lane stream state (the jitter history is mantissas in one lane and
// complex samples in the other), so interleaving lanes mid-stream would
// splice two different histories.

// fxpStage is implemented by stages with a native fixed-point path.
type fxpStage interface {
	ProcessFxp(x *fxp.Buf) *fxp.Buf
}

// ProcessFxp pushes one Q1.15 block through every stage in order: native
// fxp stages run in integer arithmetic, the rest bridge through the float
// reference path. With no active stages the input is returned unchanged.
// The RNG consumption matches Process draw for draw, so a fixed-point
// session stays stream-aligned with its float twin.
func (p *Pipeline) ProcessFxp(x *fxp.Buf) *fxp.Buf {
	if p == nil {
		return x
	}
	for _, s := range p.stages {
		if fs, ok := s.(fxpStage); ok {
			x = fs.ProcessFxp(x)
			continue
		}
		fl := s.Process(x.ToComplex(nil))
		nb := fxp.New(len(fl))
		nb.SetComplex(fl)
		x = nb
	}
	return x
}

// ProcessFxp re-times the block by the same shift draw the float path
// makes, moving mantissas instead of complex words. The history carries its
// own block scale; when scales differ across a block boundary the borrowed
// tail samples are requantized to the current block's scale.
func (s *jitterStage) ProcessFxp(x *fxp.Buf) *fxp.Buf {
	shift := int(math.Round(s.r.NormFloat64() * s.cfg.RMSSamples))
	if shift > s.max {
		shift = s.max
	}
	if shift < -s.max {
		shift = -s.max
	}
	out := fxp.New(x.Len())
	out.Scale = x.Scale
	histRatio := 0.0
	if s.histFxp != nil {
		histRatio = s.histFxp.Scale / x.Scale
	}
	at := func(i int) (int16, int16) {
		switch {
		case i < 0:
			if s.histFxp == nil {
				return 0, 0
			}
			h := s.histFxp.Len() + i
			if h < 0 {
				return 0, 0
			}
			if histRatio == 1 {
				return s.histFxp.I[h], s.histFxp.Q[h]
			}
			return requantMant(s.histFxp.I[h], histRatio), requantMant(s.histFxp.Q[h], histRatio)
		case i >= x.Len():
			return x.I[x.Len()-1], x.Q[x.Len()-1]
		}
		return x.I[i], x.Q[i]
	}
	for i := range out.I {
		out.I[i], out.Q[i] = at(i - shift)
	}
	if s.max > 0 && x.Len() >= s.max {
		if s.histFxp == nil {
			s.histFxp = fxp.New(s.max)
		}
		copy(s.histFxp.I, x.I[x.Len()-s.max:])
		copy(s.histFxp.Q, x.Q[x.Len()-s.max:])
		s.histFxp.Scale = x.Scale
	}
	return out
}

// requantMant rescales one mantissa by a positive ratio with
// round-to-nearest-even and the symmetric clamp.
func requantMant(m int16, ratio float64) int16 {
	return mantRound(float64(m) * ratio)
}

// mantRound rounds a mantissa-domain value to the nearest even integer and
// clamps to the symmetric rails.
func mantRound(v float64) int16 {
	r := math.RoundToEven(v)
	if r > fxp.MaxMant {
		return fxp.MaxMant
	}
	if r < -fxp.MaxMant {
		return -fxp.MaxMant
	}
	return int16(r)
}

// ProcessFxp clips and quantizes in the mantissa domain. The clip point is
// relative to the block RMS exactly as in the float path, so the block
// scale cancels out of the computation; the quantizer grid lands on the
// same levels, re-rounded to the nearest mantissa step.
func (s *adcStage) ProcessFxp(x *fxp.Buf) *fxp.Buf {
	out := fxp.New(x.Len())
	out.Scale = x.Scale
	var sum int64
	for i := range x.I {
		sum += int64(x.I[i])*int64(x.I[i]) + int64(x.Q[i])*int64(x.Q[i])
	}
	if sum == 0 {
		copy(out.I, x.I)
		copy(out.Q, x.Q)
		return out
	}
	p := float64(sum) / float64(x.Len())
	full := math.Sqrt(p) * math.Pow(10, s.cfg.ClipBackoffDB/20)
	levels := float64(int64(1)<<(s.cfg.Bits-1)) - 1
	q := func(m int16) int16 {
		v := float64(m)
		if v > full {
			v = full
		} else if v < -full {
			v = -full
		}
		return mantRound(math.Round(v/full*levels) / levels * full)
	}
	for i := range x.I {
		out.I[i] = q(x.I[i])
		out.Q[i] = q(x.Q[i])
	}
	return out
}
