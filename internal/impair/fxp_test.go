package impair

import (
	"math"
	"testing"

	"lscatter/internal/dsp"
	"lscatter/internal/fxp"
	"lscatter/internal/rng"
)

func randBlock(r *rng.Source, n int, sigma float64) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = r.Complex(sigma)
	}
	return x
}

// TestJitterProcessFxpMatchesFloat pins the jitter stage's native
// fixed-point path: same shift draws, mantissa moves instead of complex
// copies, history requantized across block-scale changes.
func TestJitterProcessFxpMatchesFloat(t *testing.T) {
	cfg := Config{Seed: 3, Jitter: JitterConfig{Enabled: true, RMSSamples: 2}}
	pf, px := New(cfg), New(cfg)
	r := rng.New(21)
	for blk := 0; blk < 4; blk++ {
		x := randBlock(r, 300, 0.2)
		if blk == 2 {
			// Force a block-scale change so the borrowed history tail takes
			// the requantization path.
			for i := range x {
				x[i] *= 4
			}
		}
		want := pf.Process(x)
		got := px.ProcessFxp(fxp.FromComplex(x))
		tol := 3 * got.Scale / 32768
		for s := range want {
			g := got.At(s)
			if math.Abs(real(g)-real(want[s])) > tol || math.Abs(imag(g)-imag(want[s])) > tol {
				t.Fatalf("block %d sample %d: fxp %v, float %v (tol %g)", blk, s, g, want[s], tol)
			}
		}
	}
}

// TestADCProcessFxpMatchesFloat pins the ADC stage's mantissa-domain
// clip-and-quantize against the float reference. The two lanes compute the
// block RMS from slightly different sample values, so codes adjacent to a
// decision boundary may differ by one converter step — the tolerance is one
// ADC LSB, far above the Q1.15 grid.
func TestADCProcessFxpMatchesFloat(t *testing.T) {
	cfg := Config{Seed: 4, ADC: ADCConfig{Enabled: true, Bits: 9}}
	pf, px := New(cfg), New(cfg)
	x := randBlock(rng.New(22), 512, 0.2)
	want := pf.Process(x)
	got := px.ProcessFxp(fxp.FromComplex(x))

	full := math.Sqrt(dsp.Power(x)) * math.Pow(10, 12.0/20) // default backoff
	lsb := full / (float64(int64(1)<<(9-1)) - 1)
	tol := 1.05 * lsb
	for s := range want {
		g := got.At(s)
		if math.Abs(real(g)-real(want[s])) > tol || math.Abs(imag(g)-imag(want[s])) > tol {
			t.Fatalf("sample %d: fxp %v, float %v (tol %g)", s, g, want[s], tol)
		}
	}
}

// TestCFOBridgeProcessFxp pins the convert-fallback for stages without a
// native fixed-point path: a CFO-only pipeline must produce the float
// result re-quantized, with stream state (the phase ramp) advancing
// identically across blocks.
func TestCFOBridgeProcessFxp(t *testing.T) {
	cfg := Config{
		Seed:       5,
		SampleRate: 1.92e6 * 4,
		CFO:        CFOConfig{Enabled: true, OffsetHz: 700, DriftHzPerSec: 100},
	}
	pf, px := New(cfg), New(cfg)
	r := rng.New(23)
	for blk := 0; blk < 3; blk++ {
		x := randBlock(r, 256, 0.2)
		want := pf.Process(x)
		got := px.ProcessFxp(fxp.FromComplex(x))
		tol := 2 * got.Scale / 32768
		for s := range want {
			g := got.At(s)
			if math.Abs(real(g)-real(want[s])) > tol || math.Abs(imag(g)-imag(want[s])) > tol {
				t.Fatalf("block %d sample %d: fxp %v, float %v (tol %g)", blk, s, g, want[s], tol)
			}
		}
	}
}
