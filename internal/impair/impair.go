// Package impair is a composable, seed-deterministic RF impairment pipeline:
// it wraps any complex-baseband sample stream with the non-idealities that
// dominate real ambient-backscatter links beyond path loss, fading and AWGN —
// sampling-frequency offset (resampling drift), time-varying carrier-frequency
// offset with oscillator phase noise, impulsive and bursty co-channel
// interference, ADC clipping/quantization, and tag-side timing jitter.
//
// Each impairment is an independent Stage with its own on/off switch and its
// own random stream derived from (Config.Seed, stage identity) — never from a
// shared generator — so enabling, disabling or reordering one stage cannot
// change another stage's randomness. A run with the same Config is therefore
// byte-reproducible at any stage combination, which is what lets the
// resilience sweep (experiments "R1", `lscatter-bench -impair`) attribute a
// BER change to exactly one knob.
//
// The models follow the impairments reported as dominant for LTE backscatter
// by Ruttik et al. ("Ambient backscatter communications using LTE cell
// specific reference signals") and Liao et al. ("Coded Backscattering
// Communication with LTE Pilots as Ambient Signal"); see docs/RESILIENCE.md
// for the grounding of each stage.
package impair

import (
	"fmt"
	"math"
	"strings"

	"lscatter/internal/rng"
)

// StageKind identifies one impairment stage.
type StageKind int

const (
	// Jitter is tag-side timing jitter: a per-block Gaussian re-timing of
	// the stream, modeling the residual error of the envelope-detector
	// synchronization circuit.
	Jitter StageKind = iota
	// SFO is sampling-frequency offset: linear-interpolation resampling at
	// (1 + ppm*1e-6) of the nominal rate, modeling the drift between the
	// eNodeB DAC clock and the UE ADC clock.
	SFO
	// CFO is time-varying carrier-frequency offset plus Wiener phase noise,
	// modeling the residual LO mismatch and its temperature drift.
	CFO
	// Interference is impulsive plus bursty co-channel interference.
	Interference
	// ADC is front-end clipping and uniform quantization.
	ADC

	numStageKinds = int(ADC) + 1
)

// String names the stage kind.
func (k StageKind) String() string {
	switch k {
	case Jitter:
		return "jitter"
	case SFO:
		return "sfo"
	case CFO:
		return "cfo"
	case Interference:
		return "interference"
	case ADC:
		return "adc"
	}
	return fmt.Sprintf("impair.StageKind(%d)", int(k))
}

// stageSalt decorrelates the per-stage RNG streams: each stage seeds its
// generator with Config.Seed XOR a fixed golden constant, so the stream a
// stage draws depends only on (seed, kind) — not on which other stages exist.
func stageSalt(k StageKind) uint64 {
	salts := [...]uint64{
		Jitter:       0x9e3779b97f4a7c15,
		SFO:          0xbf58476d1ce4e5b9,
		CFO:          0x94d049bb133111eb,
		Interference: 0xd1342543de82ef95,
		ADC:          0x2545f4914f6cdd1d,
	}
	return salts[k]
}

// DefaultOrder is the physical receive-chain order: the tag's timing jitter
// happens at the transmitter, sampling drift and LO offset corrupt the
// waveform in flight/at the mixer, interference adds in the air, and the ADC
// digitizes last.
var DefaultOrder = []StageKind{Jitter, SFO, CFO, Interference, ADC}

// SFOConfig parameterizes the sampling-frequency-offset stage.
type SFOConfig struct {
	// Enabled switches the stage on.
	Enabled bool
	// PPM is the clock offset in parts per million (UE sampling fast for
	// positive values). Consumer TCXOs sit at ±(0.5..25) ppm.
	PPM float64
}

// CFOConfig parameterizes the carrier-frequency-offset stage.
type CFOConfig struct {
	// Enabled switches the stage on.
	Enabled bool
	// OffsetHz is the initial LO offset.
	OffsetHz float64
	// DriftHzPerSec makes the offset ramp over time (thermal drift).
	DriftHzPerSec float64
	// PhaseNoiseRMSRad is the per-sample standard deviation of the Wiener
	// phase-noise random walk (radians). 0 disables phase noise.
	PhaseNoiseRMSRad float64
}

// InterferenceConfig parameterizes the co-channel interference stage. Powers
// are set relative to the signal power of each processed block, so one config
// expresses the same signal-to-interference ratio at every link distance.
type InterferenceConfig struct {
	// Enabled switches the stage on.
	Enabled bool
	// ImpulsesPerSec is the mean rate of single-sample impulses (ignition
	// noise, switching transients).
	ImpulsesPerSec float64
	// ImpulseSIRdB is the signal-to-impulse-peak power ratio in dB; lower
	// means stronger impulses. The per-impulse magnitude has an exponential
	// heavy tail around this mean.
	ImpulseSIRdB float64
	// BurstsPerSec is the mean arrival rate of interference bursts
	// (co-channel uplink, neighboring-cell activity).
	BurstsPerSec float64
	// BurstDurationSec is the mean burst length; actual lengths are
	// exponential.
	BurstDurationSec float64
	// BurstSIRdB is the signal-to-burst power ratio in dB during a burst.
	BurstSIRdB float64
}

// ADCConfig parameterizes the clipping/quantization stage. Zero values select
// the defaults (12-bit, 12 dB clip backoff), following the repository's
// zero-value-means-default convention.
type ADCConfig struct {
	// Enabled switches the stage on.
	Enabled bool
	// Bits is the quantizer resolution per I/Q dimension (default 12).
	Bits int
	// ClipBackoffDB places full scale this many dB above the block RMS
	// (default 12). Smaller backoff clips harder.
	ClipBackoffDB float64
}

// JitterConfig parameterizes the timing-jitter stage: each processed block is
// re-timed by an integer shift drawn from N(0, RMSSamples), modeling the
// subframe-to-subframe wander of the tag's envelope-detector timing estimate.
// The same RMS (expressed in basic-timing units) drives the tag-side
// modulator jitter when the pipeline is wired into the exact link chain.
type JitterConfig struct {
	// Enabled switches the stage on.
	Enabled bool
	// RMSSamples is the standard deviation of the per-block shift in
	// samples. Shifts are clamped to ±4 RMS.
	RMSSamples float64
}

// Config assembles the pipeline. SampleRate must be set by the owner (it
// converts the Hz- and per-second-denominated knobs); Seed drives every
// stage's derived random stream.
type Config struct {
	// Seed is the master seed; each stage forks an independent stream from
	// it via a fixed per-stage salt.
	Seed uint64
	// SampleRate of the wrapped stream in Hz. Required when any enabled
	// stage uses time-denominated parameters.
	SampleRate float64
	// Order optionally overrides DefaultOrder. Stages listed but not
	// enabled are skipped; enabled stages missing from the list are
	// appended in default order.
	Order []StageKind

	Jitter       JitterConfig
	SFO          SFOConfig
	CFO          CFOConfig
	Interference InterferenceConfig
	ADC          ADCConfig
}

// Active reports whether any stage is enabled.
func (c Config) Active() bool {
	return c.Jitter.Enabled || c.SFO.Enabled || c.CFO.Enabled ||
		c.Interference.Enabled || c.ADC.Enabled
}

// enabled reports whether the given stage kind is switched on.
func (c Config) enabled(k StageKind) bool {
	switch k {
	case Jitter:
		return c.Jitter.Enabled
	case SFO:
		return c.SFO.Enabled
	case CFO:
		return c.CFO.Enabled
	case Interference:
		return c.Interference.Enabled
	case ADC:
		return c.ADC.Enabled
	}
	return false
}

// Stage is one impairment applied to a sample stream. Stages are stateful
// across Process calls — consecutive blocks form one continuous stream — and
// must not modify their input slice.
type Stage interface {
	// Kind identifies the stage.
	Kind() StageKind
	// Process consumes the next block and returns the impaired block of the
	// same length in a fresh slice.
	Process(x []complex128) []complex128
	// Reset returns the stage to its initial state (stream position zero,
	// RNG stream rewound).
	Reset()
}

// Pipeline chains the enabled stages of a Config in order.
type Pipeline struct {
	stages []Stage
}

// New builds a pipeline with every enabled stage of cfg, in cfg.Order (or
// DefaultOrder). It panics on invalid configurations: a time-denominated
// stage enabled without a sample rate, or a duplicate kind in Order.
func New(cfg Config) *Pipeline {
	return NewFor(cfg, Jitter, SFO, CFO, Interference, ADC)
}

// NewFor builds a pipeline restricted to the given kinds: a stage runs only
// when it is both enabled in cfg and listed in kinds. The exact link chain
// uses this to apply the jitter impairment at the tag while the remaining
// stages wrap the receiver input.
func NewFor(cfg Config, kinds ...StageKind) *Pipeline {
	allow := make([]bool, numStageKinds)
	for _, k := range kinds {
		checkKind(k)
		allow[k] = true
	}
	order := cfg.Order
	if len(order) == 0 {
		order = DefaultOrder
	}
	seen := make([]bool, numStageKinds)
	var full []StageKind
	for _, k := range order {
		checkKind(k)
		if seen[k] {
			panic(fmt.Sprintf("impair: stage %v listed twice in Order", k))
		}
		seen[k] = true
		full = append(full, k)
	}
	for _, k := range DefaultOrder {
		if !seen[k] {
			full = append(full, k)
		}
	}
	p := &Pipeline{}
	for _, k := range full {
		if !allow[k] || !cfg.enabled(k) {
			continue
		}
		p.stages = append(p.stages, newStage(k, cfg))
	}
	return p
}

func checkKind(k StageKind) {
	if k < 0 || int(k) >= numStageKinds {
		panic(fmt.Sprintf("impair: unknown stage kind %d", int(k)))
	}
}

// newStage constructs one stage with its derived RNG stream.
func newStage(k StageKind, cfg Config) Stage {
	seed := cfg.Seed ^ stageSalt(k)
	switch k {
	case Jitter:
		return newJitterStage(cfg.Jitter, seed)
	case SFO:
		return newSFOStage(cfg.SFO)
	case CFO:
		return newCFOStage(cfg.CFO, cfg.SampleRate, seed)
	case Interference:
		return newInterferenceStage(cfg.Interference, cfg.SampleRate, seed)
	case ADC:
		return newADCStage(cfg.ADC)
	}
	panic("impair: unreachable")
}

// Active reports whether the pipeline holds at least one stage.
func (p *Pipeline) Active() bool { return p != nil && len(p.stages) > 0 }

// Stages lists the active stage names in processing order.
func (p *Pipeline) Stages() []string {
	if p == nil {
		return nil
	}
	out := make([]string, len(p.stages))
	for i, s := range p.stages {
		out[i] = s.Kind().String()
	}
	return out
}

// Describe renders the active stage chain, e.g. "sfo→cfo→adc" ("clean" when
// empty).
func (p *Pipeline) Describe() string {
	names := p.Stages()
	if len(names) == 0 {
		return "clean"
	}
	return strings.Join(names, "→")
}

// Process pushes one block through every stage in order and returns the
// impaired block. With no active stages the input is returned unchanged (the
// same slice: the clean path allocates and copies nothing). Blocks must be
// fed in stream order; stages keep state across calls.
func (p *Pipeline) Process(x []complex128) []complex128 {
	if p == nil {
		return x
	}
	for _, s := range p.stages {
		x = s.Process(x)
	}
	return x
}

// Reset rewinds every stage to stream position zero with a fresh copy of its
// derived RNG stream, so a reset pipeline reproduces its first run exactly.
func (p *Pipeline) Reset() {
	if p == nil {
		return
	}
	for _, s := range p.stages {
		s.Reset()
	}
}

// newStageRNG builds the RNG for a stage seed. Kept as a helper so stages
// can rebuild an identical stream on Reset.
func newStageRNG(seed uint64) *rng.Source { return rng.New(seed) }

// TimingJitter exposes the Jitter stage's draw sequence as plain integers,
// for chains that apply the tag's timing wander at the modulator (in
// basic-timing units) instead of re-timing a sample stream. It consumes the
// exact stream the jitterStage would — same seed derivation, same draw and
// clamp per block — so a tag-side and a stream-side application of the same
// Config are sample-for-sample comparable.
type TimingJitter struct {
	cfg  JitterConfig
	seed uint64
	r    *rng.Source
	max  int
}

// NewTimingJitter builds the draw stream for cfg's Jitter settings. It
// returns nil when the stage is disabled; Next on a nil TimingJitter
// returns 0, so callers need no enabled check.
func NewTimingJitter(cfg Config) *TimingJitter {
	if !cfg.Jitter.Enabled {
		return nil
	}
	if cfg.Jitter.RMSSamples < 0 {
		panic(fmt.Sprintf("impair: jitter RMS %v must be >= 0", cfg.Jitter.RMSSamples))
	}
	j := &TimingJitter{cfg: cfg.Jitter, seed: cfg.Seed ^ stageSalt(Jitter)}
	j.Reset()
	return j
}

// Next draws the timing error for the next block: round(N(0, RMS)) clamped
// to ±4 RMS, in the caller's unit (samples or basic-timing units).
func (j *TimingJitter) Next() int {
	if j == nil {
		return 0
	}
	shift := int(math.Round(j.r.NormFloat64() * j.cfg.RMSSamples))
	if shift > j.max {
		shift = j.max
	}
	if shift < -j.max {
		shift = -j.max
	}
	return shift
}

// Reset rewinds the draw stream to its start.
func (j *TimingJitter) Reset() {
	if j == nil {
		return
	}
	j.r = newStageRNG(j.seed)
	j.max = int(math.Ceil(4 * j.cfg.RMSSamples))
}
