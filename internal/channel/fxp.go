package channel

import (
	"fmt"
	"math"

	"lscatter/internal/fxp"
	"lscatter/internal/rng"
)

// This file is the channel package's fixed-point lane: every stage keeps
// its complex128 Apply as the conformance reference and gains an ApplyFxp
// counterpart operating on block-scaled Q1.15 buffers. The lanes draw from
// the same RNG streams in the same order, so a fixed-point session consumes
// byte-identical randomness to its float twin and the two stay directly
// comparable sample for sample (docs/PERFORMANCE.md derives the error
// budget).

// ApplyFxp propagates a Q1.15 block through the hop. The scalar gain and
// the hop's carrier phase fold into one complex rotation (magnitude into
// the block scale — free; the unit phasor per sample); fading convolves in
// integer arithmetic.
func (h *Hop) ApplyFxp(x *fxp.Buf) *fxp.Buf {
	out := fxp.New(x.Len())
	out.CopyFrom(x)
	g := math.Pow(10, h.PowerGainDB()/20)
	out.Rotate(complex(g, 0) * h.phase)
	if h.Fading != nil {
		out = h.Fading.ApplyFxp(out)
	}
	return out
}

// ApplyFxp convolves a Q1.15 block with the channel impulse response. Taps
// are quantized to Q1.15 under a per-filter power-of-two scale; the
// accumulation runs in 64-bit integers with one explicit headroom bit, so
// a unit-energy profile cannot saturate mid-sum.
func (m *Multipath) ApplyFxp(x *fxp.Buf) *fxp.Buf {
	// Quantize the taps at the filter's own block scale.
	maxAbs := 0.0
	for _, t := range m.taps {
		if a := math.Abs(real(t)); a > maxAbs {
			maxAbs = a
		}
		if a := math.Abs(imag(t)); a > maxAbs {
			maxAbs = a
		}
	}
	tapScale := 1.0
	if maxAbs > 0 {
		tapScale = math.Ldexp(1, int(math.Ceil(math.Log2(maxAbs))))
		for tapScale < maxAbs {
			tapScale *= 2
		}
	}
	type tapQ struct {
		d      int
		re, im int32
	}
	var taps []tapQ
	inv := 1 / tapScale
	for d, t := range m.taps {
		if t == 0 {
			continue
		}
		taps = append(taps, tapQ{
			d:  d,
			re: int32(fxp.QuantQ15(real(t) * inv)),
			im: int32(fxp.QuantQ15(imag(t) * inv)),
		})
	}
	out := fxp.New(x.Len())
	// One headroom bit on top of the Q15 shift: |sum of tap magnitudes| of
	// a unit-energy realization stays under 2 in practice; outliers clip at
	// the rails like any other saturating stage.
	const headroom = 1
	out.Scale = x.Scale * tapScale * (1 << headroom)
	for i := 0; i < x.Len(); i++ {
		var accI, accQ int64
		for _, t := range taps {
			j := i - t.d
			if j < 0 {
				continue
			}
			xi, xq := int64(x.I[j]), int64(x.Q[j])
			accI += xi*int64(t.re) - xq*int64(t.im)
			accQ += xi*int64(t.im) + xq*int64(t.re)
		}
		out.I[i] = satRNE64(accI, fxp.FracBits+headroom)
		out.Q[i] = satRNE64(accQ, fxp.FracBits+headroom)
	}
	return out
}

// satRNE64 shifts a 64-bit accumulator down by sh bits with
// round-to-nearest-even and saturates to the int16 rails.
func satRNE64(v int64, sh uint) int16 {
	r := v >> sh
	rem := v - r<<sh
	half := int64(1) << (sh - 1)
	if rem > half || (rem == half && r&1 != 0) {
		r++
	}
	if r > fxp.MaxMant {
		return fxp.MaxMant
	}
	if r < fxp.MinMant {
		return fxp.MinMant
	}
	return int16(r)
}

// ApplyFxp multiplies a Q1.15 block by the track's current gain, advancing
// the fading state exactly as the float lane does (same draw).
func (f *FadingTrack) ApplyFxp(x *fxp.Buf) *fxp.Buf {
	g := f.Next()
	out := fxp.New(x.Len())
	out.CopyFrom(x)
	if g == 0 {
		// A (measure-zero) dead fade: the output is silence at the input's
		// scale rather than a panic in Rotate.
		for i := range out.I {
			out.I[i], out.Q[i] = 0, 0
		}
		return out
	}
	out.Rotate(g)
	return out
}

// AWGNFxp adds complex white Gaussian noise of the given total power
// (watts) to x in place, drawing exactly the per-sample RNG stream AWGN
// draws, quantizing each draw at x's block scale and adding with
// saturation. Zero power is the noiseless fast path.
func AWGNFxp(r *rng.Source, x *fxp.Buf, noisePowerW float64) *fxp.Buf {
	if noisePowerW == 0 {
		return x
	}
	if noisePowerW < 0 || math.IsNaN(noisePowerW) || math.IsInf(noisePowerW, 0) {
		panic(fmt.Sprintf("channel: AWGN noise power %v W must be finite and >= 0", noisePowerW))
	}
	sigma := math.Sqrt(noisePowerW / 2)
	k := float64(fxp.One) / x.Scale
	for i := range x.I {
		n := r.Complex(sigma)
		x.I[i] = fxp.SatAdd(x.I[i], quantMant(real(n)*k))
		x.Q[i] = fxp.SatAdd(x.Q[i], quantMant(imag(n)*k))
	}
	return x
}

// quantMant rounds an already-scaled mantissa value with symmetric clamp.
func quantMant(v float64) int16 {
	r := math.RoundToEven(v)
	if r > fxp.MaxMant {
		return fxp.MaxMant
	}
	if r < -fxp.MaxMant {
		return -fxp.MaxMant
	}
	return int16(r)
}

// CombineFxp sums any number of equally long Q1.15 propagation products and
// adds receiver noise: the fixed-point lane of Combine. The output block
// scale is the coarsest input scale widened by ceil(log2(#paths)) headroom
// bits, so the sum itself cannot saturate; only the noise add can clip, at
// the same rails every saturating stage uses.
func CombineFxp(r *rng.Source, noisePowerW float64, paths ...*fxp.Buf) *fxp.Buf {
	if len(paths) == 0 {
		panic("channel: Combine needs at least one path")
	}
	n := paths[0].Len()
	maxScale := 0.0
	for _, p := range paths {
		if p.Len() != n {
			panic("channel: Combine length mismatch")
		}
		if p.Scale > maxScale {
			maxScale = p.Scale
		}
	}
	headroom := 0
	for 1<<headroom < len(paths) {
		headroom++
	}
	out := fxp.New(n)
	out.Scale = maxScale * float64(int(1)<<headroom)
	for _, p := range paths {
		fxp.AccumulateSat(out, p)
	}
	return AWGNFxp(r, out, noisePowerW)
}

// ReceiveFxp is the fixed-point lane of Receive: combine, noise, then the
// impairment pipeline's fxp path. The RNG consumption matches Receive
// draw for draw.
func (l *Link) ReceiveFxp(paths ...*fxp.Buf) *fxp.Buf {
	rx := CombineFxp(l.noise, l.NoisePowerW, paths...)
	return l.impair.ProcessFxp(rx)
}
