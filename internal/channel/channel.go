// Package channel simulates the wireless medium between the eNodeB, the
// LScatter tag and the UE: log-distance path loss with configurable exponent,
// Rayleigh multipath via tapped delay lines, additive white Gaussian noise at
// the thermal floor, and the two-hop backscatter link-budget geometry that
// drives every throughput/BER-vs-distance figure in the paper.
//
// Powers are tracked in watts: a waveform with mean |x|^2 = P carries P watts.
package channel

import (
	"fmt"
	"math"

	"lscatter/internal/dsp"
	"lscatter/internal/rng"
)

// Physical constants.
const (
	// SpeedOfLight in m/s.
	SpeedOfLight = 299792458.0
	// BoltzmannNoiseDBmHz is the thermal noise PSD at 290 K in dBm/Hz.
	BoltzmannNoiseDBmHz = -174.0
)

// FeetToMeters converts the paper's foot-denominated distances.
func FeetToMeters(ft float64) float64 { return ft * 0.3048 }

// DBmToWatts converts dBm to watts. It panics on NaN: a NaN power level is
// always an upstream bug (an uninitialized field, a 0/0 in a link budget),
// and letting it through silently corrupts every downstream SNR and BER.
// -Inf maps to 0 W and +Inf to +Inf W, the mathematically consistent limits.
func DBmToWatts(dbm float64) float64 {
	if math.IsNaN(dbm) {
		panic("channel: DBmToWatts(NaN)")
	}
	return math.Pow(10, (dbm-30)/10)
}

// WattsToDBm converts watts to dBm. Non-positive power maps to -Inf dBm
// (no power, or numerical underflow of a deep fade). It panics on NaN and on
// negative inputs beyond a tolerance: a power below -1e-15 W cannot come
// from rounding and indicates a broken link-budget computation upstream.
func WattsToDBm(w float64) float64 {
	if math.IsNaN(w) {
		panic("channel: WattsToDBm(NaN)")
	}
	if w < -1e-15 {
		panic(fmt.Sprintf("channel: WattsToDBm of negative power %v W", w))
	}
	if w <= 0 {
		return math.Inf(-1)
	}
	return 10*math.Log10(w) + 30
}

// PathLoss is a log-distance path-loss model anchored at the free-space loss
// of a 1 m reference distance:
//
//	PL(d) = FSPL(1m, f) + 10 * Exponent * log10(d / 1m)
type PathLoss struct {
	// FreqHz is the carrier frequency (the paper uses 680 MHz white space
	// for LTE and 2.437 GHz for the WiFi baseline).
	FreqHz float64
	// Exponent is the path-loss exponent: ~2.0 free space/outdoor LoS,
	// 2.2-2.5 open indoor, 2.8-3.5 cluttered NLoS.
	Exponent float64
}

// LossDB returns the positive path loss in dB at distance d meters.
// Distances below 0.1 m are clamped to avoid near-field singularities.
// NaN distances panic: they would otherwise propagate a NaN gain through
// every hop product and surface only as a mysteriously dead link.
func (pl PathLoss) LossDB(d float64) float64 {
	if pl.FreqHz <= 0 {
		panic("channel: PathLoss needs a positive frequency")
	}
	if math.IsNaN(d) {
		panic("channel: PathLoss distance is NaN")
	}
	if d < 0.1 {
		d = 0.1
	}
	fspl1m := 20 * math.Log10(4*math.Pi*pl.FreqHz/SpeedOfLight)
	return fspl1m + 10*pl.Exponent*math.Log10(d)
}

// Gain returns the linear amplitude gain (sqrt of power gain) at distance d.
func (pl PathLoss) Gain(d float64) float64 {
	return math.Pow(10, -pl.LossDB(d)/20)
}

// NoiseFloorW returns the thermal noise power in watts over the given
// bandwidth with the given receiver noise figure. It panics on a
// non-positive or non-finite bandwidth and on a NaN noise figure.
func NoiseFloorW(bandwidthHz, noiseFigureDB float64) float64 {
	if !(bandwidthHz > 0) || math.IsInf(bandwidthHz, 0) {
		panic(fmt.Sprintf("channel: NoiseFloorW bandwidth %v Hz must be positive and finite", bandwidthHz))
	}
	if math.IsNaN(noiseFigureDB) {
		panic("channel: NoiseFloorW noise figure is NaN")
	}
	dbm := BoltzmannNoiseDBmHz + 10*math.Log10(bandwidthHz) + noiseFigureDB
	return DBmToWatts(dbm)
}

// AWGN adds complex white Gaussian noise of the given total power (watts,
// i.e. variance per sample) to x in place and returns x. Zero power is the
// noiseless fast path; negative, NaN or Inf power panics — sqrt of a
// negative or NaN variance would silently fill the whole buffer with NaN.
func AWGN(r *rng.Source, x []complex128, noisePowerW float64) []complex128 {
	if noisePowerW == 0 {
		return x
	}
	if noisePowerW < 0 || math.IsNaN(noisePowerW) || math.IsInf(noisePowerW, 0) {
		panic(fmt.Sprintf("channel: AWGN noise power %v W must be finite and >= 0", noisePowerW))
	}
	sigma := math.Sqrt(noisePowerW / 2)
	for i := range x {
		x[i] += r.Complex(sigma)
	}
	return x
}

// Profile names a multipath delay profile.
type Profile int

const (
	// FlatProfile is a single-tap (no multipath) channel.
	FlatProfile Profile = iota
	// PedestrianProfile is an EPA-like short-delay profile (indoor LoS,
	// light multipath).
	PedestrianProfile
	// RichProfile is an EVA-like profile modeling the paper's
	// "multipath-rich" home and NLoS settings.
	RichProfile
)

// profileTaps returns (delays in ns, mean power in dB) pairs.
func profileTaps(p Profile) (delaysNs, powersDB []float64) {
	switch p {
	case FlatProfile:
		return []float64{0}, []float64{0}
	case PedestrianProfile:
		return []float64{0, 30, 70, 90, 110, 190, 410},
			[]float64{0, -1, -2, -3, -8, -17.2, -20.8}
	case RichProfile:
		return []float64{0, 30, 150, 310, 370, 710, 1090, 1730, 2510},
			[]float64{0, -1.5, -1.4, -3.6, -0.6, -9.1, -7, -12, -16.9}
	}
	panic(fmt.Sprintf("channel: unknown profile %d", p))
}

// Multipath is a static tapped-delay-line channel realization with unit
// average energy, applied by direct convolution.
type Multipath struct {
	taps []complex128 // tap gain at integer sample delays (sparse-dense)
}

// NewMultipath draws a Rayleigh realization of the given profile at the
// given sample rate. The realization is normalized to unit energy so path
// loss fully controls the link budget.
func NewMultipath(r *rng.Source, p Profile, sampleRate float64) *Multipath {
	delays, powers := profileTaps(p)
	maxDelay := 0
	for _, d := range delays {
		if s := int(math.Round(d * 1e-9 * sampleRate)); s > maxDelay {
			maxDelay = s
		}
	}
	taps := make([]complex128, maxDelay+1)
	for i, d := range delays {
		s := int(math.Round(d * 1e-9 * sampleRate))
		amp := math.Pow(10, powers[i]/20)
		if i == 0 && p != FlatProfile {
			// Ricean first tap: strong fixed component plus scatter, so LoS
			// links do not fade to zero.
			taps[s] += complex(amp, 0) + r.Complex(amp*0.3/math.Sqrt2)
			continue
		}
		if p == FlatProfile {
			taps[s] += complex(amp, 0)
			continue
		}
		taps[s] += r.Complex(amp / math.Sqrt2)
	}
	// Normalize to unit energy.
	var e float64
	for _, t := range taps {
		e += real(t)*real(t) + imag(t)*imag(t)
	}
	if e > 0 {
		g := complex(1/math.Sqrt(e), 0)
		for i := range taps {
			taps[i] *= g
		}
	}
	return &Multipath{taps: taps}
}

// NumTaps returns the delay-line length in samples.
func (m *Multipath) NumTaps() int { return len(m.taps) }

// Apply convolves x with the channel impulse response, returning len(x)
// output samples (the tail is truncated).
func (m *Multipath) Apply(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	for i := range x {
		var acc complex128
		for d, t := range m.taps {
			if t == 0 || i-d < 0 {
				continue
			}
			acc += x[i-d] * t
		}
		out[i] = acc
	}
	return out
}

// Hop is one radio propagation segment with its geometry and fading state.
type Hop struct {
	PL       PathLoss
	Distance float64 // meters
	// AntennaGainDB is the sum of both end antenna gains.
	AntennaGainDB float64
	// Fading is an optional multipath realization (nil = pure path loss).
	Fading *Multipath
	// ExtraLossDB models fixed implementation losses (e.g. tag reflection).
	ExtraLossDB float64
	// phase is the random carrier phase of the hop.
	phase complex128
}

// NewHop builds a hop with a random uniform carrier phase.
func NewHop(r *rng.Source, pl PathLoss, distanceM, antennaGainDB, extraLossDB float64, fading *Multipath) *Hop {
	ph := 2 * math.Pi * r.Float64()
	return &Hop{
		PL:            pl,
		Distance:      distanceM,
		AntennaGainDB: antennaGainDB,
		Fading:        fading,
		ExtraLossDB:   extraLossDB,
		phase:         complex(math.Cos(ph), math.Sin(ph)),
	}
}

// PowerGainDB returns the hop's mean power gain in dB (negative).
func (h *Hop) PowerGainDB() float64 {
	return -h.PL.LossDB(h.Distance) + h.AntennaGainDB - h.ExtraLossDB
}

// Gain returns the hop's complex amplitude coefficient: the linear amplitude
// gain times the hop's random carrier phase. For a fading-free hop, Apply is
// exactly a multiply by this coefficient, which is what lets a fleet-scale
// consumer collapse many parked-tag paths into one closed-form scalar.
func (h *Hop) Gain() complex128 {
	return complex(math.Pow(10, h.PowerGainDB()/20), 0) * h.phase
}

// Apply propagates x through the hop into a fresh slice.
func (h *Hop) Apply(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	gain := h.Gain()
	for i, v := range x {
		out[i] = v * gain
	}
	if h.Fading != nil {
		out = h.Fading.Apply(out)
	}
	return out
}

// FadingTrack models slow time variation of a link: a first-order
// autoregressive complex gain with unit mean power,
//
//	g[t+1] = rho * g[t] + sqrt(1-rho^2) * w,   w ~ CN(0,1)
//
// evaluated once per step (one subframe in the exact chain). rho near 1 is
// pedestrian-speed fading; smaller rho approaches block fading.
type FadingTrack struct {
	rho float64
	g   complex128
	r   *rng.Source
}

// NewFadingTrack builds a track with the given per-step correlation.
func NewFadingTrack(r *rng.Source, rho float64) *FadingTrack {
	if rho < 0 || rho >= 1 {
		panic("channel: fading correlation must be in [0,1)")
	}
	return &FadingTrack{rho: rho, g: r.Complex(1 / math.Sqrt2), r: r}
}

// Next advances one step and returns the current complex gain.
func (f *FadingTrack) Next() complex128 {
	f.g = complex(f.rho, 0)*f.g + f.r.Complex(math.Sqrt(1-f.rho*f.rho)/math.Sqrt2)
	return f.g
}

// Apply multiplies x by the current gain into a fresh slice (gain constant
// within the block: block fading at the step granularity).
func (f *FadingTrack) Apply(x []complex128) []complex128 {
	g := f.Next()
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = v * g
	}
	return out
}

// Combine sums any number of equally long propagation products (e.g. direct
// path plus backscatter path) and adds receiver noise.
func Combine(r *rng.Source, noisePowerW float64, paths ...[]complex128) []complex128 {
	if len(paths) == 0 {
		panic("channel: Combine needs at least one path")
	}
	n := len(paths[0])
	out := make([]complex128, n)
	for _, p := range paths {
		if len(p) != n {
			panic("channel: Combine length mismatch")
		}
		dsp.Add(out, p)
	}
	return AWGN(r, out, noisePowerW)
}

// SNRdB computes the mean SNR in dB of signal power sigP (watts) against
// noise power noiseP. NaN inputs panic (see WattsToDBm); zero or negative
// noise yields +Inf.
func SNRdB(sigP, noiseP float64) float64 {
	if math.IsNaN(sigP) || math.IsNaN(noiseP) {
		panic("channel: SNRdB with NaN power")
	}
	if noiseP <= 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(sigP/noiseP)
}
