package channel

import (
	"math"
	"testing"

	"lscatter/internal/impair"
	"lscatter/internal/rng"
)

// mustPanic runs f and reports whether it panicked.
func mustPanic(f func()) (panicked bool) {
	defer func() { panicked = recover() != nil }()
	f()
	return
}

func TestPowerConversionEdgeCases(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name  string
		f     func() float64
		want  float64 // ignored when panics
		panic bool
	}{
		{"DBmToWatts(0)", func() float64 { return DBmToWatts(0) }, 1e-3, false},
		{"DBmToWatts(-Inf)", func() float64 { return DBmToWatts(-inf) }, 0, false},
		{"DBmToWatts(+Inf)", func() float64 { return DBmToWatts(inf) }, inf, false},
		{"DBmToWatts(NaN)", func() float64 { return DBmToWatts(math.NaN()) }, 0, true},
		{"WattsToDBm(1e-3)", func() float64 { return WattsToDBm(1e-3) }, 0, false},
		{"WattsToDBm(0)", func() float64 { return WattsToDBm(0) }, -inf, false},
		{"WattsToDBm(-1e-18)", func() float64 { return WattsToDBm(-1e-18) }, -inf, false},
		{"WattsToDBm(+Inf)", func() float64 { return WattsToDBm(inf) }, inf, false},
		{"WattsToDBm(-1)", func() float64 { return WattsToDBm(-1) }, 0, true},
		{"WattsToDBm(NaN)", func() float64 { return WattsToDBm(math.NaN()) }, 0, true},
		{"SNRdB(NaN, 1)", func() float64 { return SNRdB(math.NaN(), 1) }, 0, true},
		{"SNRdB(1, NaN)", func() float64 { return SNRdB(1, math.NaN()) }, 0, true},
		{"SNRdB(1, 0)", func() float64 { return SNRdB(1, 0) }, inf, false},
		{"NoiseFloorW(0, 7)", func() float64 { return NoiseFloorW(0, 7) }, 0, true},
		{"NoiseFloorW(-1e6, 7)", func() float64 { return NoiseFloorW(-1e6, 7) }, 0, true},
		{"NoiseFloorW(+Inf, 7)", func() float64 { return NoiseFloorW(inf, 7) }, 0, true},
		{"NoiseFloorW(NaN, 7)", func() float64 { return NoiseFloorW(math.NaN(), 7) }, 0, true},
		{"NoiseFloorW(1e6, NaN)", func() float64 { return NoiseFloorW(1e6, math.NaN()) }, 0, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.panic {
				if !mustPanic(func() { tc.f() }) {
					t.Fatal("expected panic, got none")
				}
				return
			}
			got := tc.f()
			if math.IsInf(tc.want, 0) || tc.want == 0 {
				if got != tc.want {
					t.Fatalf("got %v, want %v", got, tc.want)
				}
				return
			}
			if math.Abs(got-tc.want) > 1e-12*math.Abs(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
		})
	}
}

func TestPathLossRejectsNaNDistance(t *testing.T) {
	pl := PathLoss{FreqHz: 680e6, Exponent: 2}
	if !mustPanic(func() { pl.LossDB(math.NaN()) }) {
		t.Fatal("NaN distance accepted")
	}
}

func TestAWGNRejectsInvalidPower(t *testing.T) {
	x := make([]complex128, 16)
	for _, p := range []float64{-1e-9, math.NaN(), math.Inf(1)} {
		if !mustPanic(func() { AWGN(rng.New(1), x, p) }) {
			t.Fatalf("noise power %v accepted", p)
		}
	}
}

func TestLinkWithoutImpairmentMatchesCombine(t *testing.T) {
	// A Link with no impairment must be Combine to the bit: same RNG draws,
	// same output, so wiring a Link into an existing chain is a no-op.
	r := rng.New(31)
	a := make([]complex128, 512)
	b := make([]complex128, 512)
	for i := range a {
		a[i] = r.Complex(1)
		b[i] = r.Complex(0.5)
	}
	want := Combine(rng.New(42), 1e-6, a, b)
	got := NewLink(rng.New(42), 1e-6).Receive(a, b)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("sample %d: link %v != combine %v", i, got[i], want[i])
		}
	}
	inert := NewLink(rng.New(42), 1e-6, WithImpairment(impair.New(impair.Config{}))).Receive(a, b)
	for i := range want {
		if want[i] != inert[i] {
			t.Fatalf("sample %d: inert-pipeline link diverged", i)
		}
	}
}

func TestLinkAppliesImpairment(t *testing.T) {
	r := rng.New(33)
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = r.Complex(1)
	}
	cfg := impair.Config{
		Seed:       5,
		SampleRate: 1.92e6,
		CFO:        impair.CFOConfig{Enabled: true, OffsetHz: 900},
	}
	l := NewLink(rng.New(42), 0, WithImpairment(impair.New(cfg)))
	got := l.Receive(x)
	if l.Impairment() == nil {
		t.Fatal("Impairment accessor lost the pipeline")
	}
	clean := Combine(rng.New(42), 0, x)
	same := 0
	for i := range got {
		if got[i] == clean[i] {
			same++
		}
	}
	if same > len(got)/10 {
		t.Fatalf("CFO-impaired link left %d/%d samples untouched", same, len(got))
	}
	// Determinism: a second identical link reproduces the stream.
	l2 := NewLink(rng.New(42), 0, WithImpairment(impair.New(cfg)))
	got2 := l2.Receive(x)
	for i := range got {
		if got[i] != got2[i] {
			t.Fatalf("sample %d not reproducible", i)
		}
	}
}
