package channel

import (
	"math"
	"testing"
	"testing/quick"

	"lscatter/internal/dsp"
	"lscatter/internal/rng"
)

func TestFeetToMeters(t *testing.T) {
	if m := FeetToMeters(10); math.Abs(m-3.048) > 1e-9 {
		t.Fatalf("10 ft = %v m", m)
	}
}

func TestDBmWattsRoundTrip(t *testing.T) {
	for _, dbm := range []float64{-100, -30, 0, 10, 40} {
		if got := WattsToDBm(DBmToWatts(dbm)); math.Abs(got-dbm) > 1e-9 {
			t.Fatalf("round trip %v -> %v", dbm, got)
		}
	}
	if !math.IsInf(WattsToDBm(0), -1) {
		t.Fatal("WattsToDBm(0) not -inf")
	}
}

func TestPathLossFreeSpaceKnownValue(t *testing.T) {
	// FSPL at 680 MHz, 100 m, exponent 2: 20log10(4*pi*100*f/c) ~ 69.1 dB.
	pl := PathLoss{FreqHz: 680e6, Exponent: 2}
	got := pl.LossDB(100)
	want := 20 * math.Log10(4*math.Pi*100*680e6/SpeedOfLight)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("loss = %v, want %v", got, want)
	}
}

func TestPathLossMonotoneInDistanceAndExponent(t *testing.T) {
	pl := PathLoss{FreqHz: 680e6, Exponent: 2.5}
	prev := -1.0
	for d := 1.0; d < 200; d *= 1.5 {
		l := pl.LossDB(d)
		if l <= prev {
			t.Fatalf("loss not increasing at %v m", d)
		}
		prev = l
	}
	steeper := PathLoss{FreqHz: 680e6, Exponent: 3.5}
	if steeper.LossDB(50) <= pl.LossDB(50) {
		t.Fatal("higher exponent did not increase loss")
	}
}

func TestPathLoss680MHzBeats2_4GHz(t *testing.T) {
	// The paper's Fig 23 crossover rests on the 680 MHz carrier having less
	// path loss than 2.4 GHz at the same distance.
	lte := PathLoss{FreqHz: 680e6, Exponent: 2}
	wifi := PathLoss{FreqHz: 2.437e9, Exponent: 2}
	d := 50.0
	gap := wifi.LossDB(d) - lte.LossDB(d)
	want := 20 * math.Log10(2.437e9/680e6) // ~11.1 dB
	if math.Abs(gap-want) > 0.01 {
		t.Fatalf("carrier advantage = %v dB, want %v", gap, want)
	}
}

func TestPathLossClampsNearField(t *testing.T) {
	pl := PathLoss{FreqHz: 1e9, Exponent: 2}
	if pl.LossDB(0) != pl.LossDB(0.05) {
		t.Fatal("near-field distances not clamped")
	}
}

func TestGainMatchesLossDB(t *testing.T) {
	pl := PathLoss{FreqHz: 680e6, Exponent: 2.8}
	g := pl.Gain(23)
	if math.Abs(20*math.Log10(g)+pl.LossDB(23)) > 1e-9 {
		t.Fatal("Gain inconsistent with LossDB")
	}
}

func TestNoiseFloor(t *testing.T) {
	// -174 + 10log10(18e6) + 7 ~ -94.4 dBm
	w := NoiseFloorW(18e6, 7)
	if dbm := WattsToDBm(w); math.Abs(dbm+94.45) > 0.2 {
		t.Fatalf("noise floor = %v dBm, want ~-94.4", dbm)
	}
}

func TestAWGNPowerAndZeroCase(t *testing.T) {
	r := rng.New(1)
	x := make([]complex128, 100000)
	AWGN(r, x, 0.25)
	if p := dsp.Power(x); math.Abs(p-0.25) > 0.01 {
		t.Fatalf("noise power = %v, want 0.25", p)
	}
	y := make([]complex128, 10)
	AWGN(r, y, 0)
	for _, v := range y {
		if v != 0 {
			t.Fatal("zero-power AWGN mutated signal")
		}
	}
}

func TestMultipathUnitEnergy(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		for _, p := range []Profile{FlatProfile, PedestrianProfile, RichProfile} {
			m := NewMultipath(r, p, 30.72e6)
			var e float64
			for _, tap := range m.taps {
				e += real(tap)*real(tap) + imag(tap)*imag(tap)
			}
			if math.Abs(e-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMultipathFlatIsIdentity(t *testing.T) {
	r := rng.New(2)
	m := NewMultipath(r, FlatProfile, 1e6)
	if m.NumTaps() != 1 {
		t.Fatalf("flat profile has %d taps", m.NumTaps())
	}
	x := []complex128{1, 2i, -3}
	y := m.Apply(x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("flat channel altered signal: %v -> %v", x[i], y[i])
		}
	}
}

func TestMultipathDelaySpread(t *testing.T) {
	r := rng.New(3)
	m := NewMultipath(r, RichProfile, 30.72e6)
	// 2510 ns at 30.72 MHz ~ 77 samples.
	if m.NumTaps() < 70 || m.NumTaps() > 85 {
		t.Fatalf("rich profile taps = %d, want ~78", m.NumTaps())
	}
	// The impulse response must actually be dispersive.
	impulse := make([]complex128, 100)
	impulse[0] = 1
	h := m.Apply(impulse)
	nonzero := 0
	for _, v := range h {
		if real(v) != 0 || imag(v) != 0 {
			nonzero++
		}
	}
	if nonzero < 5 {
		t.Fatalf("rich profile produced %d taps", nonzero)
	}
}

func TestMultipathEnergyPreservedOnAverage(t *testing.T) {
	r := rng.New(4)
	x := make([]complex128, 5000)
	for i := range x {
		x[i] = r.Complex(1 / math.Sqrt2)
	}
	var total float64
	const trials = 30
	for i := 0; i < trials; i++ {
		m := NewMultipath(r, RichProfile, 30.72e6)
		total += dsp.Power(m.Apply(x))
	}
	avg := total / trials
	if avg < 0.8 || avg > 1.2 {
		t.Fatalf("mean output power over fades = %v, want ~1", avg)
	}
}

func TestHopBudget(t *testing.T) {
	r := rng.New(5)
	pl := PathLoss{FreqHz: 680e6, Exponent: 2}
	h := NewHop(r, pl, 10, 5, 3, nil)
	want := -pl.LossDB(10) + 5 - 3
	if math.Abs(h.PowerGainDB()-want) > 1e-9 {
		t.Fatalf("hop gain = %v, want %v", h.PowerGainDB(), want)
	}
	x := make([]complex128, 1000)
	for i := range x {
		x[i] = 1
	}
	y := h.Apply(x)
	gotDB := 10 * math.Log10(dsp.Power(y)/dsp.Power(x))
	if math.Abs(gotDB-want) > 0.01 {
		t.Fatalf("applied gain = %v dB, want %v", gotDB, want)
	}
}

func TestTwoHopBackscatterWeakerThanDirect(t *testing.T) {
	// Physical sanity for every distance figure: the two-hop product path is
	// always weaker than the one-hop direct path over the same total span.
	r := rng.New(6)
	pl := PathLoss{FreqHz: 680e6, Exponent: 2}
	direct := NewHop(r, pl, 20, 0, 0, nil)
	hop1 := NewHop(r, pl, 10, 0, 0, nil)
	hop2 := NewHop(r, pl, 10, 0, 6, nil) // tag loss
	twoHop := hop1.PowerGainDB() + hop2.PowerGainDB()
	if twoHop >= direct.PowerGainDB() {
		t.Fatalf("two-hop gain %v >= direct %v", twoHop, direct.PowerGainDB())
	}
}

func TestCombineAddsPathsAndNoise(t *testing.T) {
	r := rng.New(7)
	a := []complex128{1, 1, 1, 1}
	b := []complex128{2i, 2i, 2i, 2i}
	out := Combine(r, 0, a, b)
	for _, v := range out {
		if v != complex(1, 2) {
			t.Fatalf("combined sample = %v, want 1+2i", v)
		}
	}
}

func TestCombineLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Combine(rng.New(1), 0, make([]complex128, 3), make([]complex128, 4))
}

func TestSNRdB(t *testing.T) {
	if s := SNRdB(1, 0.1); math.Abs(s-10) > 1e-9 {
		t.Fatalf("SNR = %v, want 10", s)
	}
	if !math.IsInf(SNRdB(1, 0), 1) {
		t.Fatal("zero-noise SNR not +inf")
	}
}

func TestFadingTrackStatistics(t *testing.T) {
	r := rng.New(21)
	f := NewFadingTrack(r, 0.95)
	var power float64
	const n = 200000
	for i := 0; i < n; i++ {
		g := f.Next()
		power += real(g)*real(g) + imag(g)*imag(g)
	}
	if p := power / n; p < 0.9 || p > 1.1 {
		t.Fatalf("fading mean power = %v, want ~1", p)
	}
}

func TestFadingTrackCorrelation(t *testing.T) {
	r := rng.New(22)
	slow := NewFadingTrack(r, 0.99)
	prev := slow.Next()
	var diff float64
	for i := 0; i < 1000; i++ {
		g := slow.Next()
		d := g - prev
		diff += real(d)*real(d) + imag(d)*imag(d)
		prev = g
	}
	slowStep := diff / 1000
	fast := NewFadingTrack(rng.New(23), 0.5)
	prev = fast.Next()
	diff = 0
	for i := 0; i < 1000; i++ {
		g := fast.Next()
		d := g - prev
		diff += real(d)*real(d) + imag(d)*imag(d)
		prev = g
	}
	fastStep := diff / 1000
	if slowStep >= fastStep/5 {
		t.Fatalf("slow fading steps (%v) not far below fast (%v)", slowStep, fastStep)
	}
}

func TestFadingTrackRejectsBadRho(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rho=1 accepted")
		}
	}()
	NewFadingTrack(rng.New(1), 1.0)
}

func TestFadingTrackApplyBlockConstant(t *testing.T) {
	f := NewFadingTrack(rng.New(24), 0.9)
	x := []complex128{1, 1, 1}
	y := f.Apply(x)
	if y[0] != y[1] || y[1] != y[2] {
		t.Fatal("gain varied within a block")
	}
}
