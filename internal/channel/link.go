package channel

import (
	"lscatter/internal/impair"
	"lscatter/internal/rng"
)

// Link is the receiver-side end of a simulated radio link: it combines the
// propagation paths arriving at the antenna, adds thermal noise, and then
// runs the result through an optional impairment pipeline (front-end
// non-idealities: SFO, CFO/phase noise, co-channel interference, ADC).
//
// With no impairment attached, Receive is exactly Combine — same RNG draws,
// same output bytes — so wiring a Link into an existing chain changes
// nothing until a stage is switched on.
type Link struct {
	// NoisePowerW is the AWGN power added per sample (watts).
	NoisePowerW float64

	noise  *rng.Source
	impair *impair.Pipeline
}

// LinkOption configures a Link at construction.
type LinkOption func(*Link)

// WithImpairment attaches an impairment pipeline that post-processes every
// received block. A nil or inactive pipeline is a no-op.
func WithImpairment(p *impair.Pipeline) LinkOption {
	return func(l *Link) { l.impair = p }
}

// NewLink builds a receiver link drawing its noise from r.
func NewLink(r *rng.Source, noisePowerW float64, opts ...LinkOption) *Link {
	l := &Link{NoisePowerW: noisePowerW, noise: r}
	for _, o := range opts {
		o(l)
	}
	return l
}

// Impairment returns the attached pipeline (nil when none).
func (l *Link) Impairment() *impair.Pipeline { return l.impair }

// Receive combines the arriving paths, adds the link's receiver noise, and
// applies the impairment pipeline. Consecutive calls form one continuous
// stream: impairment stages keep state across blocks.
func (l *Link) Receive(paths ...[]complex128) []complex128 {
	rx := Combine(l.noise, l.NoisePowerW, paths...)
	return l.impair.Process(rx)
}
