package channel

import (
	"math"
	"testing"

	"lscatter/internal/fxp"
	"lscatter/internal/impair"
	"lscatter/internal/rng"
)

func randBlock(r *rng.Source, n int, sigma float64) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = r.Complex(sigma)
	}
	return x
}

// checkClose compares a fixed-point block against its float reference with a
// tolerance in mantissa steps at the fixed-point block's scale.
func checkClose(t *testing.T, name string, got *fxp.Buf, want []complex128, steps float64) {
	t.Helper()
	if got.Len() != len(want) {
		t.Fatalf("%s: %d samples, want %d", name, got.Len(), len(want))
	}
	tol := steps * got.Scale / 32768
	for s := range want {
		g := got.At(s)
		if math.Abs(real(g)-real(want[s])) > tol || math.Abs(imag(g)-imag(want[s])) > tol {
			t.Fatalf("%s sample %d: fxp %v, float %v (tol %g)", name, s, g, want[s], tol)
		}
	}
}

// TestHopApplyFxpMatchesFloat pins the hop's fixed-point lane: the scalar
// gain and carrier phase fold into one rotation whose magnitude lives in the
// block scale, so only rotation rounding separates the lanes.
func TestHopApplyFxpMatchesFloat(t *testing.T) {
	h := NewHop(rng.New(2), PathLoss{FreqHz: 680e6, Exponent: 2}, 5, 0, 0, nil)
	x := randBlock(rng.New(12), 512, 0.2)
	want := h.Apply(x)
	got := h.ApplyFxp(fxp.FromComplex(x))
	checkClose(t, "hop", got, want, 4)
}

// TestMultipathApplyFxpMatchesFloat pins the integer convolution against the
// float filter: taps quantized at their own power-of-two scale, 64-bit
// accumulation, one headroom bit.
func TestMultipathApplyFxpMatchesFloat(t *testing.T) {
	m := NewMultipath(rng.New(3), PedestrianProfile, 1.92e6*4)
	x := randBlock(rng.New(13), 512, 0.2)
	want := m.Apply(x)
	got := m.ApplyFxp(fxp.FromComplex(x))
	checkClose(t, "multipath", got, want, 8)
}

// TestFadingTrackApplyFxpMatchesFloat pins the draw-parity contract: two
// identically seeded tracks, one per lane, must consume the same gain draws
// and stay aligned across successive blocks.
func TestFadingTrackApplyFxpMatchesFloat(t *testing.T) {
	ff := NewFadingTrack(rng.New(11), 0.8)
	fx := NewFadingTrack(rng.New(11), 0.8)
	r := rng.New(14)
	for blk := 0; blk < 3; blk++ {
		x := randBlock(r, 256, 0.2)
		want := ff.Apply(x)
		got := fx.ApplyFxp(fxp.FromComplex(x))
		checkClose(t, "fading", got, want, 4)
	}
	if ff.Next() != fx.Next() {
		t.Fatal("fading RNG streams diverged after three blocks — lane draw parity broken")
	}
}

// TestCombineFxpMatchesFloat pins the receiver combiner: path sum under
// headroom scaling plus noise drawn from the same stream the float lane
// draws, quantized at the output block scale.
func TestCombineFxpMatchesFloat(t *testing.T) {
	r := rng.New(15)
	a := randBlock(r, 384, 0.2)
	b := randBlock(r, 384, 0.002) // widely different block scales
	const noiseW = 1e-4
	want := Combine(rng.New(7), noiseW, a, b)
	got := CombineFxp(rng.New(7), noiseW, fxp.FromComplex(a), fxp.FromComplex(b))
	checkClose(t, "combine", got, want, 4)
}

// TestReceiveFxpMatchesFloat pins the full link receive in its fixed-point
// lane with a jitter impairment: the shift draws must match, so the lanes
// differ only by quantization.
func TestReceiveFxpMatchesFloat(t *testing.T) {
	cfg := impair.Config{
		Seed:   9,
		Jitter: impair.JitterConfig{Enabled: true, RMSSamples: 2},
	}
	const noiseW = 1e-5
	lf := NewLink(rng.New(5), noiseW, WithImpairment(impair.New(cfg)))
	lx := NewLink(rng.New(5), noiseW, WithImpairment(impair.New(cfg)))
	r := rng.New(16)
	for blk := 0; blk < 3; blk++ { // several blocks exercise the jitter history
		x := randBlock(r, 384, 0.2)
		want := lf.Receive(x)
		got := lx.ReceiveFxp(fxp.FromComplex(x))
		checkClose(t, "receive", got, want, 4)
	}
}
