package scatterframe

import (
	"bytes"
	"math"
	"testing"
)

// FuzzDecode throws arbitrary hard-decision bit streams at the frame
// decoder. The contract under fuzzing: never panic, never return ok for a
// frame whose CRC did not verify, and always round-trip a clean encode.
func FuzzDecode(f *testing.F) {
	c := NewCodec()
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add(bytes.Repeat([]byte{0}, 100))
	f.Add(bytes.Repeat([]byte{1, 0}, 73))
	f.Add(c.Encode([]byte{1, 0, 1, 1, 0, 0, 1, 0}))
	f.Add(c.Encode(bytes.Repeat([]byte{1}, 64)))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary bytes as hard decisions (any non-zero byte is a 1).
		hard := make([]byte, len(data))
		for i, b := range data {
			hard[i] = b & 1
		}
		if payload, ok := c.Decode(hard); ok && payload == nil {
			t.Fatal("ok decode returned nil payload")
		}

		// Clean round trip: the first bytes double as a payload.
		n := len(data)
		if n > 256 {
			n = 256
		}
		payload := make([]byte, n)
		for i := 0; i < n; i++ {
			payload[i] = data[i] & 1
		}
		dec, ok := c.Decode(c.Encode(payload))
		if !ok {
			t.Fatalf("clean encode of %d bits failed to decode", n)
		}
		if !bytes.Equal(dec, payload) {
			t.Fatalf("round trip mismatch for %d bits", n)
		}
	})
}

// FuzzDecodeSoft drives the soft-decision path with arbitrary LLRs,
// including the hostile ones a demodulator could emit on a dead channel:
// zeros, infinities and NaN. It must never panic.
func FuzzDecodeSoft(f *testing.F) {
	c := NewCodec()
	f.Add([]byte{})
	f.Add([]byte{0x7f, 0x80, 0x00, 0xff})
	f.Add(bytes.Repeat([]byte{0x40, 0xc0}, 50))
	f.Fuzz(func(t *testing.T, data []byte) {
		llr := make([]float64, len(data))
		for i, b := range data {
			switch b {
			case 0xff:
				llr[i] = math.Inf(1)
			case 0xfe:
				llr[i] = math.Inf(-1)
			case 0xfd:
				llr[i] = math.NaN()
			default:
				llr[i] = float64(int8(b)) / 16
			}
		}
		if payload, ok := c.DecodeSoft(llr); ok && payload == nil {
			t.Fatal("ok soft decode returned nil payload")
		}
	})
}
