package scatterframe

import (
	"testing"
	"testing/quick"

	"lscatter/internal/bits"
	"lscatter/internal/rng"
)

func TestRoundTripClean(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		c := NewCodec()
		payload := r.Bits(make([]byte, r.Intn(300)+1))
		got, ok := c.Decode(c.Encode(payload))
		return ok && bits.CountDiff(got, payload) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrectsRandomErrors(t *testing.T) {
	r := rng.New(2)
	c := NewCodec()
	payload := r.Bits(make([]byte, 240))
	coded := c.Encode(payload)
	// 1.5% random errors: hopeless uncoded (240-bit frame survives with
	// p=(1-0.015)^240 ~ 2.6%), routine for the rate-1/2 K=7 code.
	delivered := 0
	const trials = 40
	for i := 0; i < trials; i++ {
		noisy := append([]byte(nil), coded...)
		for j := range noisy {
			if r.Float64() < 0.015 {
				noisy[j] ^= 1
			}
		}
		if got, ok := c.Decode(noisy); ok && bits.CountDiff(got, payload) == 0 {
			delivered++
		}
	}
	if delivered < trials*8/10 {
		t.Fatalf("coded frames delivered %d/%d at 1.5%% BER", delivered, trials)
	}
}

func TestCorrectsBurstErrors(t *testing.T) {
	// Excitation nulls corrupt runs of adjacent units; the interleaver must
	// spread them for the Viterbi decoder.
	r := rng.New(3)
	c := NewCodec()
	payload := r.Bits(make([]byte, 240))
	coded := c.Encode(payload)
	noisy := append([]byte(nil), coded...)
	// Three bursts of 6 adjacent errors.
	for _, start := range []int{40, 200, 380} {
		for j := 0; j < 6; j++ {
			noisy[start+j] ^= 1
		}
	}
	got, ok := c.Decode(noisy)
	if !ok || bits.CountDiff(got, payload) != 0 {
		t.Fatal("burst errors not corrected")
	}
}

func TestCRCCatchesDecoderFailure(t *testing.T) {
	r := rng.New(4)
	c := NewCodec()
	payload := r.Bits(make([]byte, 240))
	coded := c.Encode(payload)
	falseOK := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		noisy := append([]byte(nil), coded...)
		for j := range noisy {
			if r.Float64() < 0.2 { // far beyond correction capability
				noisy[j] ^= 1
			}
		}
		if got, ok := c.Decode(noisy); ok && bits.CountDiff(got, payload) != 0 {
			falseOK++
		}
	}
	if falseOK > 0 {
		t.Fatalf("%d corrupted frames passed CRC", falseOK)
	}
}

func TestSoftDecodeBeatsHard(t *testing.T) {
	r := rng.New(5)
	c := NewCodec()
	payload := r.Bits(make([]byte, 240))
	coded := c.Encode(payload)
	sigma := 0.78 // ~2.2 dB: hard decisions carry ~10% errors
	hardOK, softOK := 0, 0
	const trials = 30
	for i := 0; i < trials; i++ {
		llr := make([]float64, len(coded))
		hard := make([]byte, len(coded))
		for j, b := range coded {
			v := 1.0
			if b == 1 {
				v = -1
			}
			noisy := v + sigma*r.NormFloat64()
			llr[j] = noisy
			if noisy < 0 {
				hard[j] = 1
			}
		}
		if got, ok := c.Decode(hard); ok && bits.CountDiff(got, payload) == 0 {
			hardOK++
		}
		if got, ok := c.DecodeSoft(llr); ok && bits.CountDiff(got, payload) == 0 {
			softOK++
		}
	}
	if softOK <= hardOK {
		t.Fatalf("soft %d/%d not better than hard %d/%d", softOK, trials, hardOK, trials)
	}
}

func TestRateAccounting(t *testing.T) {
	c := NewCodec()
	if r := c.Rate(1000); r < 0.47 || r > 0.5 {
		t.Fatalf("rate(1000) = %v, want ~0.49", r)
	}
	if c.EncodedLen(1000) != 2*(1000+16+6) {
		t.Fatalf("encoded length %d", c.EncodedLen(1000))
	}
}
