// Package scatterframe implements forward error correction for the
// backscatter link: the paper transmits raw bits and reports BER; a
// deployment wants frames that survive the per-unit fading of the
// excitation. Payloads are CRC-16 protected, convolutionally encoded
// (K=7, rate 1/2) and block-interleaved so the Viterbi decoder sees the
// burst errors of excitation nulls as scattered ones.
//
// The coded frame halves the link's raw rate and in exchange delivers
// error-free frames at raw BERs where uncoded frames are hopeless — the A5
// ablation quantifies the trade.
package scatterframe

import (
	"lscatter/internal/bits"
)

// Codec is the backscatter-link FEC codec. It is stateless and safe for
// concurrent use.
type Codec struct {
	conv  *bits.ConvCode
	inter *bits.BlockInterleaver
}

// NewCodec builds the standard rate-1/2 codec with a 48-column interleaver
// (spreading bursts across ~50 units).
func NewCodec() *Codec {
	return &Codec{conv: bits.NewConvCodeR12(), inter: bits.NewBlockInterleaver(48)}
}

// EncodedLen returns the coded length for n payload bits.
func (c *Codec) EncodedLen(n int) int { return c.conv.EncodedLen(n + 16) }

// Rate returns the code rate including CRC and tail overhead for n payload
// bits.
func (c *Codec) Rate(n int) float64 {
	return float64(n) / float64(c.EncodedLen(n))
}

// Encode protects payload bits: CRC-16, convolutional encoding,
// interleaving. The result is what the tag queues.
func (c *Codec) Encode(payload []byte) []byte {
	return c.inter.Interleave(c.conv.Encode(bits.AttachCRC16(payload)))
}

// Decode inverts Encode from the receiver's hard bit decisions. It returns
// the payload and whether the CRC verified.
func (c *Codec) Decode(coded []byte) ([]byte, bool) {
	dec := c.conv.Decode(c.inter.Deinterleave(coded))
	if dec == nil {
		return nil, false
	}
	return bits.CheckCRC16(dec)
}

// DecodeSoft decodes from log-likelihood ratios (positive = bit 0). Use it
// when the demodulator exposes per-unit confidence.
func (c *Codec) DecodeSoft(llr []float64) ([]byte, bool) {
	deint := make([]float64, len(llr))
	for i, src := range c.inter.Permutation(len(llr)) {
		deint[src] = llr[i]
	}
	dec := c.conv.DecodeSoft(deint)
	if dec == nil {
		return nil, false
	}
	return bits.CheckCRC16(dec)
}
