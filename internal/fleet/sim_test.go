package fleet

import (
	"testing"
)

func simBase() SimConfig {
	return SimConfig{
		Config:        Config{MAC: AlohaCapture, Seed: 11},
		Tags:          200,
		DurationSec:   30,
		MsgPerTagHour: 60,
		MsgBits:       96,
		NoiseW:        1e-12,
		RxPowerW:      func(tag int) float64 { return 1e-9 / float64(1+tag%10) },
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := Simulate(simBase())
	b := Simulate(simBase())
	if a != b {
		t.Fatalf("same config, different reports:\n%+v\n%+v", a, b)
	}
	if a.Arrivals == 0 || a.Delivered == 0 {
		t.Fatalf("degenerate run: %+v", a)
	}
}

func TestSimulateConservation(t *testing.T) {
	rep := Simulate(simBase())
	// Every offered message is delivered, dropped, or still queued.
	if rep.Delivered+rep.Dropped+rep.Backlog != rep.Arrivals {
		t.Fatalf("message conservation: %d delivered + %d dropped + %d backlog != %d arrivals",
			rep.Delivered, rep.Dropped, rep.Backlog, rep.Arrivals)
	}
	if rep.LatencyMsP50 <= 0 || rep.LatencyMsP99 < rep.LatencyMsP50 {
		t.Fatalf("latency percentiles out of order: %+v", rep)
	}
	if rep.GoodputBps <= 0 {
		t.Fatalf("no goodput: %+v", rep)
	}
}

func TestSimulateCaptureBeatsAloha(t *testing.T) {
	cfg := simBase()
	cfg.Tags = 500
	cfg.MsgPerTagHour = 2880 // ~2x slot capacity: overlaps are the norm
	aloha := cfg
	aloha.MAC = Aloha
	capture := cfg
	capture.MAC = AlohaCapture

	ra := Simulate(aloha)
	rc := Simulate(capture)
	if rc.CaptureWins == 0 {
		t.Fatalf("capture run never captured: %+v", rc)
	}
	if rc.Delivered <= ra.Delivered {
		t.Fatalf("capture should deliver more than plain ALOHA under load: capture %d <= aloha %d",
			rc.Delivered, ra.Delivered)
	}
	if rc.CollisionRate >= ra.CollisionRate {
		t.Fatalf("capture should lower the collision rate: capture %.3f >= aloha %.3f",
			rc.CollisionRate, ra.CollisionRate)
	}
}

func TestSimulateTDMALatencyScalesWithFleet(t *testing.T) {
	mk := func(tags int) Report {
		cfg := simBase()
		cfg.MAC = TDMA
		cfg.Tags = tags
		cfg.TotalMsgPerSec = 20
		cfg.MsgPerTagHour = 0
		return Simulate(cfg)
	}
	small := mk(100)
	big := mk(10000)
	// A TDMA turn is O(fleet size) slots away: the big fleet's median
	// latency must dwarf the small fleet's.
	if big.LatencyMsP50 < 4*small.LatencyMsP50 {
		t.Fatalf("TDMA latency should grow with fleet size: %v ms (100 tags) vs %v ms (10k tags)",
			small.LatencyMsP50, big.LatencyMsP50)
	}
}

func TestSimulateParkedHeavyEventCount(t *testing.T) {
	// Fixed total offered load: growing the fleet 10x parks 10x more tags
	// but must not grow the event count (the O(active) claim at the
	// bookkeeping level). Allow 2x slack for backoff pattern differences.
	mk := func(tags int) Report {
		cfg := simBase()
		cfg.Tags = tags
		cfg.TotalMsgPerSec = 50
		cfg.MsgPerTagHour = 0
		return Simulate(cfg)
	}
	small := mk(1000)
	big := mk(10000)
	if small.Events == 0 || big.Events == 0 {
		t.Fatalf("degenerate event counts: %d, %d", small.Events, big.Events)
	}
	if big.Events > 2*small.Events {
		t.Fatalf("event count grew with parked fleet size: %d (1k tags) -> %d (10k tags)",
			small.Events, big.Events)
	}
}

func TestSimulateDiurnalActivityShapesLoad(t *testing.T) {
	mk := func(hour float64) Report {
		cfg := simBase()
		cfg.Tags = 1000
		cfg.MsgPerTagHour = 30
		cfg.StartHour = hour
		cfg.DurationSec = 60
		cfg.Activity = func(h float64) float64 {
			// Daytime box: busy 9-17h, nearly idle otherwise.
			hh := h - 24*float64(int(h/24))
			if hh >= 9 && hh < 17 {
				return 1
			}
			return 0.02
		}
		return Simulate(cfg)
	}
	day := mk(12)
	night := mk(3)
	if day.Arrivals < 10*night.Arrivals {
		t.Fatalf("diurnal thinning: day %d arrivals vs night %d", day.Arrivals, night.Arrivals)
	}
}
