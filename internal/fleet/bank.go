package fleet

import (
	"fmt"
	"math"

	"lscatter/internal/rng"
	"lscatter/internal/simlink"
)

// BankConfig parameterizes an exact-mode fleet bank attached to a
// simlink.Session.
type BankConfig struct {
	// Config supplies the MAC parameters and seed.
	Config
	// Owner overrides the TDMA schedule (subframe count -> tag index).
	// Nil rotates ownership slot by slot. Ignored by the contention MACs.
	Owner func(n int) int
	// RxPowerW maps a tag index to its received backscatter signal power in
	// watts, for capture arbitration. Nil derives a power from the tag's
	// modulated reflection amplitude and the scalar gain of its path
	// (unit-gain for paths that do not reduce to a scalar).
	RxPowerW func(tag int) float64
	// NoiseW is the receiver noise floor used in capture SINR; 0 models an
	// interference-limited receiver.
	NoiseW float64
	// Threshold is the fleet size above which AutoBank installs the bank;
	// at or below it the session's built-in O(all tags) stage wins on
	// constant factors. Defaults to 64.
	Threshold int
	// Force makes AutoBank install the bank regardless of fleet size.
	Force bool
	// NoAggregate disables the closed-form parked aggregate: every parked
	// tag is full-simulated per sample (audit mode). Since the engine
	// assembles bank contributions in tag-index order, an audit-mode bank
	// reproduces the built-in TDMA stage bit for bit — the scheduling layer
	// alone, with the aggregation optimization out of the loop. O(all
	// tags) again; testing only.
	NoAggregate bool
}

// BankStats counts what the bank scheduled.
type BankStats struct {
	// Slots is the number of arbitration slots decided.
	Slots int64
	// ActiveSlots counts slots with at least one transmission attempt;
	// Deliveries the slots with a decodable owner; Collisions the
	// non-captured collisions (resolved analytically, no waveforms);
	// CaptureWins the deliveries that survived a collision via capture.
	ActiveSlots int64
	Deliveries  int64
	Collisions  int64
	CaptureWins int64
	// Events is the number of scheduler heap events processed.
	Events int64
}

// Bank is the exact-mode fleet scheduler: a simlink.TagBank that
// full-simulates only the tags transmitting in each slot and folds every
// parked tag with a scalar path into one closed-form aggregate-echo
// coefficient, maintained incrementally in O(transmitting) per slot.
//
// Contention MACs resolve non-captured collisions analytically: no waveform
// is synthesized for a collided slot, the colliders back off, and their
// echoes ride in the parked aggregate for that slot (a collided burst is
// never decoded, so its exact waveform is irrelevant to the sink; the
// approximation is that colliders contribute a parked-strength rather than
// modulated-strength echo to the noise floor).
type Bank struct {
	tags []*simlink.Tag
	cfg  BankConfig

	// Parked-echo bookkeeping: coeff[i] is tag i's closed-form parked
	// contribution (parked gain times the scalar path gain), total their
	// sum over scalar parked tags, parkFull the parked tags that need
	// per-sample simulation (non-scalar paths).
	coeff    []complex128
	scalar   []bool
	total    complex128
	parkFull []int

	sched *sched
	power func(int32) float64

	// Current slot's decision, held across its subframes.
	curSlot   int64
	curOwner  int
	curInterf []int

	started bool
	lastN   int
	scratch []int // per-subframe ParkFull scratch

	stats BankStats
}

// NewBank builds an exact-mode bank over the session's tags. The tag wiring
// (Path, Park) must not change after construction — the closed-form parked
// coefficients are computed once here.
func NewBank(tags []*simlink.Tag, cfg BankConfig) *Bank {
	cfg.Config = cfg.Config.withDefaults()
	if cfg.Threshold <= 0 {
		cfg.Threshold = 64
	}
	if len(tags) >= 1<<tagBits {
		panic(fmt.Sprintf("fleet: Bank supports up to %d tags, got %d", 1<<tagBits-1, len(tags)))
	}
	b := &Bank{
		tags:     tags,
		cfg:      cfg,
		coeff:    make([]complex128, len(tags)),
		scalar:   make([]bool, len(tags)),
		curOwner: -1,
		curSlot:  -1,
	}
	for i, t := range tags {
		g, ok := simlink.ScalarGain(t.Path)
		if cfg.NoAggregate {
			ok = false
		}
		b.scalar[i] = ok
		if ok {
			b.coeff[i] = complex(t.Mod.ParkedGain(), 0) * g
			if t.Park {
				b.total += b.coeff[i]
			}
		} else if t.Park {
			b.parkFull = append(b.parkFull, i)
		}
	}
	b.sched = newSched(len(tags), cfg.Config, rng.New(cfg.Seed).Fork(0x3ac5))
	b.power = func(tag int32) float64 {
		if cfg.RxPowerW != nil {
			return cfg.RxPowerW(int(tag))
		}
		// Modulated reflection amplitude is the parked amplitude with the
		// 10 dB parked attenuation restored, through the scalar path gain
		// (unit gain when the path does not reduce to a scalar).
		amp := b.tags[tag].Mod.ParkedGain()
		if b.scalar[tag] {
			amp = complexAbs(b.coeff[tag])
		}
		amp *= math.Sqrt(10)
		return amp * amp
	}
	return b
}

func complexAbs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }

// Attach builds a bank over the session's tags and installs it as the
// session's tag stage.
func Attach(s *simlink.Session, cfg BankConfig) *Bank {
	b := NewBank(s.Tags, cfg)
	s.Bank = b
	return b
}

// AutoBank installs a bank when the fleet is large enough to profit
// (len(Tags) > Threshold) or when cfg.Force is set, and returns it; small
// fleets keep the session's built-in tag stage and get nil back.
func AutoBank(s *simlink.Session, cfg BankConfig) *Bank {
	threshold := cfg.Threshold
	if threshold <= 0 {
		threshold = 64
	}
	if !cfg.Force && len(s.Tags) <= threshold {
		return nil
	}
	return Attach(s, cfg)
}

// Offer enqueues msgs pending messages for a tag, making it contend from the
// next slot on (contention MACs; the TDMA schedule ignores backlog). The
// payload bits themselves travel through the tag's Feed hook / bit queue as
// usual — Offer drives only the scheduler's notion of who wants the channel.
func (b *Bank) Offer(tag int, msgs int) {
	b.sched.offer(int32(tag), int32(msgs), b.curSlot)
}

// Stats returns the scheduling counters accumulated so far.
func (b *Bank) Stats() BankStats {
	st := b.stats
	st.Events = b.sched.events
	return st
}

// decideSlot arbitrates one contention slot.
func (b *Bank) decideSlot(slot int64) {
	b.curSlot = slot
	b.curOwner = -1
	b.curInterf = b.curInterf[:0]
	b.stats.Slots++

	if b.cfg.MAC == TDMA {
		if len(b.tags) > 0 {
			b.curOwner = int(slot % int64(len(b.tags)))
			b.stats.Deliveries++
			b.stats.ActiveSlots++
		}
		return
	}

	contenders := b.sched.collect(slot)
	if len(contenders) == 0 {
		return
	}
	out := b.sched.decide(slot, contenders, b.power, b.cfg.NoiseW)
	if out.winner < 0 && !out.collided {
		return
	}
	b.stats.ActiveSlots++
	if out.collided {
		// Semi-analytic collision fast path: nobody decodes, nothing is
		// synthesized. The colliders' state machines have already backed
		// off inside decide.
		b.stats.Collisions++
		return
	}
	b.curOwner = int(out.winner)
	b.stats.Deliveries++
	if len(out.losers) > 0 {
		b.stats.CaptureWins++
		for _, l := range out.losers {
			b.curInterf = append(b.curInterf, int(l))
		}
	}
}

// PlanSubframe implements simlink.TagBank: it advances the slot state
// machine at slot boundaries and assembles the subframe's plan — owner,
// capture-loser interferers, per-sample parked stragglers, and the
// closed-form aggregate for everyone else — in O(transmitting + |ParkFull|).
func (b *Bank) PlanSubframe(n int, burst bool) simlink.BankPlan {
	if !b.started || n%b.cfg.SlotSubframes == 0 {
		b.started = true
		b.decideSlot(int64(n / b.cfg.SlotSubframes))
	}
	b.lastN = n

	var pl simlink.BankPlan
	if b.cfg.MAC == TDMA && b.cfg.Owner != nil {
		// An explicit TDMA schedule is honored per subframe, exactly like
		// the session's built-in Owner hook.
		b.curOwner = b.cfg.Owner(n)
	}
	pl.Owner = b.curOwner
	pl.Interferers = b.curInterf

	// Aggregate parked echo: total minus the transmitting tags' parked
	// coefficients (they are full-simulated this subframe, not parked).
	scale := b.total
	sub := func(i int) {
		if i >= 0 && i < len(b.tags) && b.tags[i].Park && b.scalar[i] {
			scale -= b.coeff[i]
		}
	}
	sub(pl.Owner)
	for _, i := range pl.Interferers {
		sub(i)
	}
	pl.ParkScale = scale

	// Parked tags that need per-sample simulation, minus any that are
	// transmitting right now.
	if len(b.parkFull) > 0 {
		b.scratch = b.scratch[:0]
		for _, i := range b.parkFull {
			if i == pl.Owner || containsInt(pl.Interferers, i) {
				continue
			}
			b.scratch = append(b.scratch, i)
		}
		pl.ParkFull = b.scratch
	}
	return pl
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
