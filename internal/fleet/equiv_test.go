package fleet_test

// Exact-mode parity: for small fleets, a session driven by the event-driven
// Bank must reproduce the built-in per-sample TDMA tag stage's demodulated
// output — same decision bits, same per-tag ledgers — under every rung of
// the shared impairment ladder, in both lanes.
//
// The parity claim splits in two:
//
//   - Scheduling parity is bit-exact and is asserted exactly, everywhere:
//     with the closed-form aggregate disabled (audit mode) the bank's plans
//     drive the very same per-sample computations in the very same order as
//     the built-in stage, so any divergence is a scheduler/dispatch bug.
//   - The closed-form parked aggregate is mathematically identical but not
//     float-associative: ambient*(sum of coefficients) rounds differently
//     than summing per-tag applications, and the Q1.15 lane quantizes one
//     aggregate rotation instead of a rotation per hop. The waveforms agree
//     to ~1 ulp (float) / ~2^-15 (fxp), far below noise — but a decode
//     sitting exactly on a threshold can land either way, so at the
//     marginal rungs the demod output is compared statistically instead of
//     bit for bit.

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"lscatter/internal/channel"
	"lscatter/internal/enodeb"
	"lscatter/internal/experiments"
	"lscatter/internal/fleet"
	"lscatter/internal/impair"
	"lscatter/internal/ltephy"
	"lscatter/internal/modem"
	"lscatter/internal/rng"
	"lscatter/internal/simlink"
	"lscatter/internal/tag"
	"lscatter/internal/ue"
)

type bankMode int

const (
	modeBuiltin bankMode = iota // no bank: the built-in TDMA stage
	modeAudit                   // bank with the aggregate disabled
	modeBank                    // bank with closed-form aggregation
)

// equivSession builds the N-tag TDMA fixture: every tag parked when not
// owning, burst-aligned rotation, scalar two-hop paths — except the last
// tag, whose multipath path cannot fold into a scalar and must take the
// bank's per-sample ParkFull route.
func equivSession(n int, lane simlink.Lane, ic impair.Config, seed uint64, mode bankMode) (*simlink.Session, *simlink.DemodSink) {
	p := ltephy.DefaultParams(ltephy.BW1_4)
	sr := p.SampleRate()
	r := rng.New(seed)
	pl := channel.PathLoss{FreqHz: 680e6, Exponent: 2.0}

	enb := enodeb.New(enodeb.Config{Params: p, Scheme: modem.QPSK, TxPowerDBm: 30, Seed: seed})
	direct := channel.NewHop(r.Fork(1), pl, 12, 0, 0, nil)

	tags := make([]*simlink.Tag, n)
	for i := 0; i < n; i++ {
		mod := tag.NewModulator(tag.ModConfig{
			Params:           p,
			ReflectionLossDB: 6,
			TimingErrorUnits: int(r.NormFloat64() * 2),
			SampleOffset:     r.Intn(p.Oversample),
		})
		hop1 := channel.NewHop(r.Fork(uint64(10+2*i)), pl, 3, 6, 0, nil)
		var hop2 *channel.Hop
		if i == n-1 {
			// Non-scalar path: multipath forces the per-sample ParkFull
			// fallback in bank mode.
			mp := channel.NewMultipath(r.Fork(uint64(11+2*i)), channel.FlatProfile, sr)
			hop2 = channel.NewHop(r.Fork(uint64(400+i)), pl, 9, 6, 0, mp)
		} else {
			hop2 = channel.NewHop(r.Fork(uint64(400+i)), pl, 9, 6, 0, nil)
		}
		pay := r.Fork(uint64(600 + i))
		var jit *impair.TimingJitter
		if ic.Jitter.Enabled {
			jic := ic
			jic.Seed = seed ^ uint64(i)<<8
			jic.SampleRate = sr
			jit = impair.NewTimingJitter(jic)
		}
		m := mod
		tags[i] = &simlink.Tag{
			Mod:  m,
			Path: simlink.Chain(hop1, hop2),
			Feed: func(int, *tag.Modulator) {
				m.QueueBits(pay.Bits(make([]byte, 12*m.PerSymbolBits())))
			},
			Jitter: jit,
			Park:   true,
		}
	}

	occupied := float64(ltephy.BW1_4.Subcarriers()) * ltephy.SubcarrierSpacing
	noisePerSample := channel.NoiseFloorW(occupied, 7) * sr / occupied

	var pipe *impair.Pipeline
	var tracker *ue.CFOTracker
	if ic.Active() {
		lic := ic
		lic.Seed = seed ^ 0xa24baed4963ee407
		lic.SampleRate = sr
		pipe = impair.NewFor(lic, impair.SFO, impair.CFO, impair.Interference, impair.ADC)
		tracker = ue.NewCFOTracker(p, 0, ue.CFOTrackerConfig{})
	}

	owner := func(sfn int) int { return (sfn / 5) % n }
	sink := &simlink.DemodSink{
		LTE:            ue.NewLTEReceiver(p, modem.QPSK),
		Scatter:        ue.NewScatterDemod(ue.DefaultScatterConfig(p)),
		ResetEachBurst: true,
		CollectBits:    true,
	}
	sess := &simlink.Session{
		Source:  enb,
		Direct:  direct,
		Tags:    tags,
		Owner:   owner,
		Link:    channel.NewLink(r.Fork(7), noisePerSample, channel.WithImpairment(pipe)),
		Tracker: tracker,
		Sink:    sink,
		Lane:    lane,
	}
	if mode != modeBuiltin {
		fleet.Attach(sess, fleet.BankConfig{
			Config:      fleet.Config{MAC: fleet.TDMA, Seed: seed ^ 0xb},
			Owner:       owner,
			NoAggregate: mode == modeAudit,
		})
	}
	return sess, sink
}

var equivLanes = []struct {
	name string
	lane simlink.Lane
}{
	{"float", simlink.LaneFloat},
	{"fxp", simlink.LaneFixedPoint},
}

const equivSubframes = 40

func equivSeed(n int) uint64 { return uint64(0x5ca1e<<8) ^ uint64(n) }

// TestBankMatchesBuiltinTDMA asserts scheduling parity bit for bit: an
// audit-mode bank (aggregate off) against the built-in stage, for every
// fleet size, lane and impairment rung.
func TestBankMatchesBuiltinTDMA(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		for _, ln := range equivLanes {
			for _, lvl := range experiments.ImpairmentLevels() {
				t.Run(fmt.Sprintf("n%d/%s/%s", n, ln.name, lvl.Name), func(t *testing.T) {
					seed := equivSeed(n)
					ref, refSink := equivSession(n, ln.lane, lvl.Impair, seed, modeBuiltin)
					bnk, bnkSink := equivSession(n, ln.lane, lvl.Impair, seed, modeAudit)
					ref.Run(equivSubframes)
					bnk.Run(equivSubframes)

					if !bytes.Equal(refSink.Bits, bnkSink.Bits) {
						t.Fatalf("demodulated bits diverge: %d vs %d bits", len(refSink.Bits), len(bnkSink.Bits))
					}
					if len(bnkSink.Accounts) != len(refSink.Accounts) {
						t.Fatalf("account keys diverge: bank %d tags, builtin %d", len(bnkSink.Accounts), len(refSink.Accounts))
					}
					for i, want := range refSink.Accounts {
						got := bnkSink.Accounts[i]
						if got == nil || *got != *want {
							t.Fatalf("tag %d ledger diverges: bank %+v, builtin %+v", i, got, want)
						}
					}
					if refSink.Totals().Total == 0 {
						t.Fatal("fixture degenerate: no bits compared")
					}
				})
			}
		}
	}
}

// TestAggregateParity turns the closed-form aggregate on. At the healthy
// float rungs the demod output still matches bit for bit; at the marginal
// rungs (severe) and in the quantized lane the comparison is statistical —
// same sync, ledgers for every tag, and BER within noise of the reference.
func TestAggregateParity(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		for _, ln := range equivLanes {
			for _, lvl := range experiments.ImpairmentLevels() {
				exact := ln.lane == simlink.LaneFloat && lvl.Name != "severe"
				t.Run(fmt.Sprintf("n%d/%s/%s", n, ln.name, lvl.Name), func(t *testing.T) {
					seed := equivSeed(n)
					ref, refSink := equivSession(n, ln.lane, lvl.Impair, seed, modeBuiltin)
					bnk, bnkSink := equivSession(n, ln.lane, lvl.Impair, seed, modeBank)
					ref.Run(equivSubframes)
					bnk.Run(equivSubframes)

					if exact {
						if !bytes.Equal(refSink.Bits, bnkSink.Bits) {
							t.Fatalf("demodulated bits diverge: %d vs %d bits", len(refSink.Bits), len(bnkSink.Bits))
						}
						for i, want := range refSink.Accounts {
							got := bnkSink.Accounts[i]
							if got == nil || *got != *want {
								t.Fatalf("tag %d ledger diverges: bank %+v, builtin %+v", i, got, want)
							}
						}
						return
					}
					if bnkSink.Synced != refSink.Synced {
						t.Fatalf("sync diverges: bank %v, builtin %v", bnkSink.Synced, refSink.Synced)
					}
					rb, bb := refSink.Totals(), bnkSink.Totals()
					if rb.Total == 0 || bb.Total == 0 {
						t.Fatalf("degenerate totals: builtin %+v, bank %+v", rb, bb)
					}
					if d := math.Abs(rb.BER() - bb.BER()); d > 0.02 {
						t.Fatalf("BER diverges beyond noise: builtin %.4f, bank %.4f", rb.BER(), bb.BER())
					}
				})
			}
		}
	}
}
