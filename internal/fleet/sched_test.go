package fleet

import (
	"testing"

	"lscatter/internal/rng"
)

func TestEventHeapOrders(t *testing.T) {
	var h eventHeap
	in := []struct {
		slot int64
		tag  int32
	}{{9, 3}, {1, 7}, {4, 0}, {1, 2}, {4, 5}, {0, 1}, {9, 0}}
	for _, e := range in {
		h.push(packEvent(e.slot, e.tag))
	}
	var last uint64
	for i := range in {
		e := h.pop()
		if i > 0 && e < last {
			t.Fatalf("pop %d: %#x after %#x, heap order violated", i, e, last)
		}
		last = e
	}
	if len(h) != 0 {
		t.Fatalf("heap not drained: %d left", len(h))
	}
	// Spot-check the packing round trip.
	e := packEvent(12345, 678)
	if got := int64(e >> tagBits); got != 12345 {
		t.Fatalf("slot round trip: got %d", got)
	}
	if got := int32(e & eventTagMask); got != 678 {
		t.Fatalf("tag round trip: got %d", got)
	}
}

func TestSchedTDMATurns(t *testing.T) {
	s := newSched(5, Config{MAC: TDMA, Seed: 1}, rng.New(1))
	// Tag 3 arrives at slot 0: its first turn strictly after slot 0 is
	// slot 3.
	s.offer(3, 1, 0)
	slot, ok := s.nextEventSlot()
	if !ok || slot != 3 {
		t.Fatalf("tag 3 first turn: got slot %d ok=%v, want 3", slot, ok)
	}
	c := s.collect(3)
	if len(c) != 1 || c[0] != 3 {
		t.Fatalf("contenders at slot 3: %v", c)
	}
	out := s.decide(3, c, nil, 0)
	if out.winner != 3 || out.collided {
		t.Fatalf("TDMA decide: %+v", out)
	}
	if out.arrivedAt != 0 {
		t.Fatalf("arrivedAt: got %d want 0", out.arrivedAt)
	}
	// Tag 3 with a second queued message rides the next rotation: slot 8.
	s.offer(3, 1, 3)
	slot, ok = s.nextEventSlot()
	if !ok || slot != 8 {
		t.Fatalf("tag 3 second turn: got slot %d ok=%v, want 8", slot, ok)
	}
}

func TestSchedAlohaCollisionAndBackoff(t *testing.T) {
	s := newSched(4, Config{MAC: Aloha, Seed: 7, BackoffSlots: 2}, rng.New(7))
	s.offer(0, 1, 0)
	s.offer(2, 1, 0)
	c := s.collect(1)
	if len(c) != 2 {
		t.Fatalf("contenders: %v", c)
	}
	out := s.decide(1, c, nil, 0)
	if !out.collided || out.winner != -1 || len(out.losers) != 2 {
		t.Fatalf("plain ALOHA overlap must collide: %+v", out)
	}
	if s.boExp[0] != 1 || s.boExp[2] != 1 {
		t.Fatalf("backoff exponents after collision: %v %v", s.boExp[0], s.boExp[2])
	}
	// Both colliders must be rescheduled strictly after the collision slot.
	if !s.pending[0] || !s.pending[2] {
		t.Fatal("colliders not rescheduled")
	}
	slot, _ := s.nextEventSlot()
	if slot <= 1 {
		t.Fatalf("backoff landed at slot %d, want > 1", slot)
	}
	// Eventually both deliver (drain up to a generous horizon).
	delivered := 0
	for slot := int64(2); slot < 200 && delivered < 2; slot++ {
		out := s.decide(slot, s.collect(slot), nil, 0)
		if out.winner >= 0 {
			delivered++
		}
	}
	if delivered != 2 {
		t.Fatalf("backoff never separated the colliders: %d delivered", delivered)
	}
}

func TestSchedCapture(t *testing.T) {
	power := func(tag int32) float64 {
		if tag == 1 {
			return 100 // 20 dB above the other collider
		}
		return 1
	}
	s := newSched(3, Config{MAC: AlohaCapture, Seed: 9, CaptureDB: 6}, rng.New(9))
	s.offer(0, 1, 0)
	s.offer(1, 1, 0)
	out := s.decide(1, s.collect(1), power, 0)
	if out.winner != 1 {
		t.Fatalf("capture winner: %+v", out)
	}
	if len(out.losers) != 1 || out.losers[0] != 0 {
		t.Fatalf("capture losers: %+v", out)
	}
	if out.sinr < 99 || out.sinr > 101 {
		t.Fatalf("winner SINR: got %v want ~100", out.sinr)
	}

	// Equal powers: SINR ~= 1 (0 dB) < 6 dB threshold -> collision.
	s2 := newSched(3, Config{MAC: AlohaCapture, Seed: 9, CaptureDB: 6}, rng.New(9))
	s2.offer(0, 1, 0)
	s2.offer(1, 1, 0)
	out2 := s2.decide(1, s2.collect(1), func(int32) float64 { return 1 }, 0)
	if !out2.collided {
		t.Fatalf("equal-power overlap must fail capture: %+v", out2)
	}
}

func TestSchedQueueCapDrops(t *testing.T) {
	cfg := Config{MAC: Aloha, Seed: 3, MaxQueue: 2}
	s := newSched(1, cfg, rng.New(3))
	if got := s.offer(0, 5, 0); got != 2 {
		t.Fatalf("accepted %d, want 2 (queue cap)", got)
	}
	if s.dropped != 3 {
		t.Fatalf("dropped %d, want 3", s.dropped)
	}
	if s.queued[0] != 2 {
		t.Fatalf("queued %d, want 2", s.queued[0])
	}
}

func TestSchedFIFOLatency(t *testing.T) {
	// Three messages queued at distinct slots must deliver in arrival
	// order with matching arrivedAt stamps.
	s := newSched(1, Config{MAC: Aloha, Seed: 5}, rng.New(5))
	s.offer(0, 1, 0)
	s.offer(0, 1, 2)
	s.offer(0, 1, 4)
	var got []int64
	for slot := int64(1); slot < 50 && len(got) < 3; slot++ {
		out := s.decide(slot, s.collect(slot), nil, 0)
		if out.winner >= 0 {
			got = append(got, out.arrivedAt)
		}
	}
	want := []int64{0, 2, 4}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("arrival stamps: got %v want %v", got, want)
	}
}
