package fleet

import (
	"fmt"
	"math"

	"lscatter/internal/rng"
	"lscatter/internal/stats"
)

// SimConfig parameterizes a semi-analytic fleet run: no waveforms are
// synthesized, and delivery resolves through the link budget and
// stats.BERFromSNR. Arrivals are a nonhomogeneous Poisson process shaped by
// the venue's diurnal activity profile.
type SimConfig struct {
	// Config supplies the MAC parameters and seed.
	Config
	// Tags is the fleet size.
	Tags int
	// SlotSec is one contention slot in seconds. The default 0.005 matches
	// the 5 ms backscatter burst.
	SlotSec float64
	// DurationSec is the simulated horizon.
	DurationSec float64
	// StartHour is the hour of day at which the horizon opens (fractional
	// hours allowed); it phases the Activity profile.
	StartHour float64
	// MsgPerTagHour is each tag's mean offered load, in messages per hour,
	// at activity level 1. Ignored when TotalMsgPerSec is set.
	MsgPerTagHour float64
	// TotalMsgPerSec, when positive, fixes the fleet's aggregate offered
	// load (messages per second at activity 1) regardless of Tags — the
	// "same city demand spread over more parked tags" scaling used by the
	// parked-heavy benchmarks.
	TotalMsgPerSec float64
	// Activity maps hour-of-day to a demand level in [0, 1] (the diurnal
	// shape, e.g. traffic.VenueActivity). Nil means constant 1.
	Activity func(hour float64) float64
	// MsgBits is the payload carried by one delivered slot.
	MsgBits int
	// RxPowerW maps a tag index to its backscatter received signal power in
	// watts (deterministic; consulted lazily, only for tags that transmit).
	// Nil treats every tag as equal-power, which disables capture wins.
	RxPowerW func(tag int) float64
	// NoiseW is the receiver noise floor in watts.
	NoiseW float64
}

func (c SimConfig) withDefaults() SimConfig {
	c.Config = c.Config.withDefaults()
	if c.SlotSec <= 0 {
		c.SlotSec = 0.005
	}
	if c.MsgBits <= 0 {
		c.MsgBits = 96
	}
	return c
}

// Report summarizes one semi-analytic fleet run.
type Report struct {
	// Tags and Slots give the run's scale: fleet size and slot horizon.
	Tags  int
	Slots int64
	// Events counts heap events processed — the engine's actual work,
	// the O(N*samples) -> O(events) story in one number.
	Events int64
	// Arrivals, Delivered and Dropped count messages offered, decoded and
	// rejected by full queues. Backlog is what remained queued at the end.
	Arrivals  int64
	Delivered int64
	Dropped   int64
	Backlog   int64
	// ActiveSlots counts slots with at least one transmission; Collisions
	// counts the non-captured ones among them; CaptureWins counts slots
	// decoded only thanks to capture (>= 2 transmitters).
	ActiveSlots int64
	Collisions  int64
	CaptureWins int64
	// CollisionRate is Collisions / ActiveSlots (0 when nothing
	// transmitted).
	CollisionRate float64
	// GoodputBps is delivered payload bits per second after BER erasure.
	GoodputBps float64
	// MeanBER is the delivery-weighted mean bit error rate.
	MeanBER float64
	// LatencyMs holds arrival-to-delivery latency percentiles.
	LatencyMsP50 float64
	LatencyMsP90 float64
	LatencyMsP99 float64
}

// Sim is a reusable semi-analytic fleet engine: the million-entry per-tag
// arrays are allocated once and recycled across runs, so sweeping a fleet
// over several hour-windows (the city-scale artifact) costs one allocation,
// not one per window. Runs are deterministic for a given seed and call
// sequence — each Run forks fresh RNG streams from the engine's root.
type Sim struct {
	cfg  SimConfig
	root *rng.Source
	s    *sched
	lat  []float64 // latency scratch, recycled across runs
}

// NewSim allocates the engine for a fleet of cfg.Tags. The per-run horizon
// and phase are passed to Run; cfg.StartHour and cfg.DurationSec serve only
// as Simulate's single-run parameters.
func NewSim(cfg SimConfig) *Sim {
	cfg = cfg.withDefaults()
	if cfg.Tags <= 0 {
		panic("fleet: Sim needs at least one tag")
	}
	if cfg.Tags >= 1<<tagBits {
		panic(fmt.Sprintf("fleet: Sim supports up to %d tags, got %d", 1<<tagBits-1, cfg.Tags))
	}
	root := rng.New(cfg.Seed)
	return &Sim{cfg: cfg, root: root, s: newSched(cfg.Tags, cfg.Config, nil)}
}

// Simulate runs the event-driven fleet engine with no waveform synthesis:
// slots with no scheduled activity are skipped entirely (the engine jumps
// the clock to the next event), so the cost is O(events), independent of how
// many tags sit parked. Deterministic for a given config.
func Simulate(cfg SimConfig) Report {
	return NewSim(cfg).Run(cfg.StartHour, cfg.DurationSec)
}

// Run simulates one window: durationSec seconds starting at hour-of-day
// startHour. The scheduler state is reset (queues drained, backoff cleared)
// and fresh RNG streams are forked, so windows are independent; only the
// arrays are shared.
func (m *Sim) Run(startHour, durationSec float64) Report {
	cfg := m.cfg
	rArr := m.root.Fork(0xa221) // arrival process
	rMac := m.root.Fork(0x3ac5) // MAC draws (persistence, backoff)
	s := m.s
	s.reset(rMac)

	endSlot := int64(math.Ceil(durationSec / cfg.SlotSec))
	rep := Report{Tags: cfg.Tags, Slots: endSlot}

	// Aggregate arrival process: one exponential stream at the fleet's peak
	// rate, thinned by the diurnal activity level, each accepted arrival
	// assigned to a uniform tag. O(1) per arrival, nothing per tag.
	ratePerSec := cfg.TotalMsgPerSec
	if ratePerSec <= 0 {
		ratePerSec = float64(cfg.Tags) * cfg.MsgPerTagHour / 3600
	}
	activity := cfg.Activity
	peak := 1.0
	if activity != nil {
		peak = 0
		for h := 0; h < 24; h++ {
			if a := activity(float64(h) + 0.5); a > peak {
				peak = a
			}
		}
		if peak <= 0 {
			peak = 1
		}
	}
	peakRate := ratePerSec * peak
	hourAt := func(slot int64) float64 {
		return startHour + float64(slot)*cfg.SlotSec/3600
	}

	// nextArrival advances the thinned Poisson stream from the given time
	// (in seconds) and returns the next accepted arrival's slot.
	nextArrival := func(fromSec float64) (float64, int64, bool) {
		if peakRate <= 0 {
			return 0, 0, false
		}
		t := fromSec
		for {
			t += rArr.ExpFloat64() / peakRate
			slot := int64(t / cfg.SlotSec)
			if slot >= endSlot {
				return 0, 0, false
			}
			if activity == nil || rArr.Float64()*peak < activity(hourAt(slot)) {
				return t, slot, true
			}
		}
	}

	power := cfg.RxPowerW
	pw := func(tag int32) float64 {
		if power == nil {
			return 1
		}
		return power(int(tag))
	}

	lat := m.lat[:0]
	var berSum float64
	var bitsSum float64

	arrT, arrSlot, arrOK := nextArrival(0)
	for {
		// The clock jumps to the earliest pending activity: an arrival or
		// a scheduled contention event. Idle slots in between cost nothing.
		evSlot, evOK := s.nextEventSlot()
		if !evOK && !arrOK {
			break
		}
		slot := evSlot
		if !evOK || (arrOK && arrSlot < slot) {
			slot = arrSlot
		}
		if slot >= endSlot {
			break
		}

		// Deliver every arrival landing in this slot (eligible to contend
		// from the next slot on), then arbitrate the slot.
		for arrOK && arrSlot == slot {
			tag := int32(rArr.Intn(cfg.Tags))
			rep.Arrivals++
			s.offer(tag, 1, slot)
			arrT, arrSlot, arrOK = nextArrival(arrT)
		}

		contenders := s.collect(slot)
		if len(contenders) == 0 {
			continue
		}
		out := s.decide(slot, contenders, pw, cfg.NoiseW)
		if out.winner < 0 && !out.collided {
			continue
		}
		rep.ActiveSlots++
		if out.collided {
			rep.Collisions++
			continue
		}
		if len(out.losers) > 0 {
			rep.CaptureWins++
		}
		rep.Delivered++
		ber := stats.BERFromSNR(out.sinr)
		if math.IsInf(out.sinr, 1) {
			ber = 0
		}
		berSum += ber
		bitsSum += float64(cfg.MsgBits) * (1 - ber)
		lat = append(lat, float64(slot-out.arrivedAt+1)*cfg.SlotSec*1000)
	}

	rep.Events = s.events
	rep.Dropped = s.dropped
	// Only tags the run touched can hold backlog — O(touched), not O(fleet).
	for _, tag := range s.dirty {
		rep.Backlog += int64(s.queued[tag])
	}
	m.lat = lat // keep the grown scratch for the next run
	if rep.ActiveSlots > 0 {
		rep.CollisionRate = float64(rep.Collisions) / float64(rep.ActiveSlots)
	}
	if durationSec > 0 {
		rep.GoodputBps = bitsSum / durationSec
	}
	if rep.Delivered > 0 {
		rep.MeanBER = berSum / float64(rep.Delivered)
	}
	if len(lat) > 0 {
		rep.LatencyMsP50 = stats.Percentile(lat, 50)
		rep.LatencyMsP90 = stats.Percentile(lat, 90)
		rep.LatencyMsP99 = stats.Percentile(lat, 99)
	}
	return rep
}
