// Package fleet is the event-driven million-tag fleet engine: it schedules
// large tag populations in O(active) work per slot instead of O(all tags) per
// sample.
//
// The package has two faces over one scheduler core:
//
//   - Bank (exact mode) implements simlink.TagBank: it plugs into a
//     simlink.Session and full-simulates only the tags that transmit in a
//     slot, advancing every parked tag analytically through a closed-form
//     aggregate echo coefficient. The waveform cost of a subframe becomes
//     O(transmitting tags * samples) while the fleet bookkeeping is
//     O(events).
//   - Simulate (semi-analytic mode) runs the same MACs with no waveforms at
//     all: per-slot delivery resolves through the link budget and
//     stats.BERFromSNR. This is what makes a 10^6-tag city-scale run finish
//     on one machine.
//
// Both faces share the contention MACs (TDMA rotation, slotted ALOHA with
// and without capture-effect arbitration) and the packed event queue, so the
// exact and semi-analytic engines cannot drift apart on scheduling behavior.
// See docs/FLEET.md for the design.
package fleet

import "fmt"

// MAC selects the medium-access discipline arbitrating the shared
// backscatter channel.
type MAC int

const (
	// TDMA is round-robin ownership: each slot belongs to exactly one tag.
	// Collision-free, but a tag waits O(fleet size) slots for its turn.
	TDMA MAC = iota
	// Aloha is p-persistent slotted ALOHA: backlogged tags transmit in a
	// slot with probability AttemptProb; any overlap is a collision and
	// every collider backs off (binary exponential).
	Aloha
	// AlohaCapture is slotted ALOHA with capture-effect arbitration: when
	// transmissions overlap, the strongest one still decodes if its SINR
	// over the other colliders clears CaptureDB. Losers back off.
	AlohaCapture
)

// String returns the MAC name as used in flags and artifact metrics.
func (m MAC) String() string {
	switch m {
	case TDMA:
		return "tdma"
	case Aloha:
		return "aloha"
	case AlohaCapture:
		return "capture"
	}
	return fmt.Sprintf("MAC(%d)", int(m))
}

// ParseMAC parses a MAC name as printed by String.
func ParseMAC(s string) (MAC, error) {
	switch s {
	case "tdma":
		return TDMA, nil
	case "aloha":
		return Aloha, nil
	case "capture":
		return AlohaCapture, nil
	}
	return 0, fmt.Errorf("fleet: unknown MAC %q (want tdma, aloha or capture)", s)
}

// Config holds the scheduling parameters shared by the exact-mode Bank and
// the semi-analytic Simulate engine. The zero value selects TDMA with the
// defaults below.
type Config struct {
	// MAC is the access discipline.
	MAC MAC
	// SlotSubframes is the contention-slot length in subframes. The default
	// 5 matches one backscatter burst: the demodulator acquires each burst
	// on its opening PSS, so a transmission opportunity is the whole 5 ms
	// burst and arbitration happens at burst boundaries.
	SlotSubframes int
	// AttemptProb is the p-persistence of the ALOHA MACs: a backlogged tag
	// whose backoff has expired transmits in a slot with this probability.
	// Defaults to 1 (transmit as soon as eligible).
	AttemptProb float64
	// CaptureDB is the SINR threshold (dB) for capture-effect arbitration
	// under AlohaCapture. Defaults to 6 dB.
	CaptureDB float64
	// BackoffSlots is the initial binary-exponential backoff window in
	// slots; it doubles per consecutive collision. Defaults to 2.
	BackoffSlots int
	// BackoffMaxSlots caps the backoff window. Defaults to 1024.
	BackoffMaxSlots int
	// MaxQueue caps each tag's pending-message queue; arrivals beyond it
	// are counted as dropped. Defaults to 8.
	MaxQueue int
	// Seed seeds the scheduler's RNG streams.
	Seed uint64
}

// withDefaults fills unset fields with the documented defaults.
func (c Config) withDefaults() Config {
	if c.SlotSubframes <= 0 {
		c.SlotSubframes = 5
	}
	if c.AttemptProb <= 0 || c.AttemptProb > 1 {
		c.AttemptProb = 1
	}
	if c.CaptureDB == 0 {
		c.CaptureDB = 6
	}
	if c.BackoffSlots <= 0 {
		c.BackoffSlots = 2
	}
	if c.BackoffMaxSlots <= 0 {
		c.BackoffMaxSlots = 1024
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 8
	}
	return c
}
