package fleet

import (
	"math"

	"lscatter/internal/rng"
)

// The scheduler advances a fleet by events, not by tags: every future action
// — a contention attempt, a TDMA turn, a backoff expiry — is one entry in a
// min-heap of packed uint64 events, and a slot in which nothing is scheduled
// costs nothing. Per-tag state lives in flat arrays (structure-of-arrays) so
// a million-tag fleet is a few value slices, not a million objects.

// tagBits is the width of the tag-index field in a packed event. 2^21 tags
// (~2M) is comfortably above the million-tag design point; the remaining 43
// bits of slot index cover ~1,100 years of 5 ms slots.
const tagBits = 21

// eventTagMask extracts the tag index from a packed event.
const eventTagMask = 1<<tagBits - 1

// packEvent packs (slot, tag) so that uint64 ordering sorts by slot first,
// then tag index — the heap's comparison is a single integer compare.
func packEvent(slot int64, tag int32) uint64 {
	return uint64(slot)<<tagBits | uint64(tag)
}

// eventHeap is a hand-rolled binary min-heap of packed events. container/heap
// would cost an interface indirection per sift step on the engine's hottest
// queue.
type eventHeap []uint64

func (h *eventHeap) push(e uint64) {
	*h = append(*h, e)
	a := *h
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p] <= a[i] {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
}

func (h *eventHeap) pop() uint64 {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	*h = a[:n]
	a = a[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && a[l] < a[s] {
			s = l
		}
		if r < n && a[r] < a[s] {
			s = r
		}
		if s == i {
			break
		}
		a[i], a[s] = a[s], a[i]
		i = s
	}
	return top
}

// sched is the per-tag state machine core shared by the exact-mode Bank and
// the semi-analytic engine: message queues, backoff windows, and the event
// queue that decides which tags contend in which slot.
type sched struct {
	cfg  Config
	n    int32
	r    *rng.Source
	ev   eventHeap
	maxW int // largest backoff window, precomputed from cfg

	// Per-tag state, structure-of-arrays.
	queued  []int32 // pending messages
	pending []bool  // tag has a contention event in the heap
	boExp   []uint8 // consecutive-collision count (backoff exponent)
	headAt  []int64 // arrival slot of the head-of-queue message

	// overflowAt holds arrival slots beyond the head for the (few) tags
	// whose queue is deeper than one message.
	overflowAt map[int32][]int64

	// dirty lists the tags whose state has diverged from zero. offer is the
	// only way a tag acquires state (contenders, losers and reschedules all
	// descend from an offer), so marking there covers everything — and reset
	// becomes O(touched), not O(fleet).
	dirty   []int32
	isDirty []bool

	// contenders is the scratch list of tags eligible in the current slot.
	contenders []int32

	// Counters surfaced by both engines.
	events  int64 // heap events processed
	dropped int64 // arrivals rejected by a full queue
}

func newSched(tags int, cfg Config, r *rng.Source) *sched {
	cfg = cfg.withDefaults()
	maxExp := 0
	for w := cfg.BackoffSlots; w < cfg.BackoffMaxSlots; w <<= 1 {
		maxExp++
	}
	return &sched{
		cfg:        cfg,
		n:          int32(tags),
		r:          r,
		maxW:       cfg.BackoffSlots << maxExp,
		queued:     make([]int32, tags),
		pending:    make([]bool, tags),
		boExp:      make([]uint8, tags),
		headAt:     make([]int64, tags),
		overflowAt: make(map[int32][]int64),
		isDirty:    make([]bool, tags),
	}
}

// reset returns the scheduler to its post-construction state without
// releasing the per-tag arrays — the point of reusing a million-tag
// scheduler across runs.
func (s *sched) reset(r *rng.Source) {
	s.r = r
	s.ev = s.ev[:0]
	for _, tag := range s.dirty {
		s.queued[tag] = 0
		s.pending[tag] = false
		s.boExp[tag] = 0
		s.headAt[tag] = 0
		s.isDirty[tag] = false
	}
	s.dirty = s.dirty[:0]
	for k := range s.overflowAt {
		delete(s.overflowAt, k)
	}
	s.events = 0
	s.dropped = 0
}

// turnSlot returns the first slot strictly after `after` in which the TDMA
// rotation reaches the tag.
func (s *sched) turnSlot(tag int32, after int64) int64 {
	next := after + 1
	d := (int64(tag) - next) % int64(s.n)
	if d < 0 {
		d += int64(s.n)
	}
	return next + d
}

// schedule pushes a contention event for the tag at or after the given slot,
// respecting the MAC's notion of when the tag may next transmit. A tag has
// at most one contention event in the heap at a time.
func (s *sched) schedule(tag int32, slot int64) {
	if s.pending[tag] {
		return
	}
	if s.cfg.MAC == TDMA {
		slot = s.turnSlot(tag, slot-1)
	}
	s.pending[tag] = true
	s.ev.push(packEvent(slot, tag))
}

// offer enqueues messages for a tag arriving at the given slot. The tag's
// first contention opportunity is the following slot (the arrival lands
// mid-slot, after this slot's arbitration). Returns how many messages were
// accepted (the rest dropped by the queue cap).
func (s *sched) offer(tag int32, msgs int32, slot int64) int32 {
	if msgs <= 0 {
		return 0
	}
	room := int32(s.cfg.MaxQueue) - s.queued[tag]
	if msgs > room {
		s.dropped += int64(msgs - room)
		msgs = room
	}
	if msgs <= 0 {
		return 0
	}
	if !s.isDirty[tag] {
		s.isDirty[tag] = true
		s.dirty = append(s.dirty, tag)
	}
	if s.queued[tag] == 0 {
		s.headAt[tag] = slot
		if msgs > 1 {
			ov := s.overflowAt[tag]
			for i := int32(1); i < msgs; i++ {
				ov = append(ov, slot)
			}
			s.overflowAt[tag] = ov
		}
	} else {
		ov := s.overflowAt[tag]
		for i := int32(0); i < msgs; i++ {
			ov = append(ov, slot)
		}
		s.overflowAt[tag] = ov
	}
	s.queued[tag] += msgs
	s.schedule(tag, slot+1)
	return msgs
}

// nextEventSlot returns the slot of the earliest queued event, or false when
// the heap is empty.
func (s *sched) nextEventSlot() (int64, bool) {
	if len(s.ev) == 0 {
		return 0, false
	}
	return int64(s.ev[0] >> tagBits), true
}

// collect pops every event due at or before the slot and returns the list of
// tags contending in it, sorted by tag index (successive heap pops are
// non-decreasing in the packed key, so same-slot events emerge in tag
// order). Stale events (the tag's queue drained since the event was pushed)
// are discarded. The returned slice is scheduler scratch, valid until the
// next collect.
func (s *sched) collect(slot int64) []int32 {
	s.contenders = s.contenders[:0]
	for len(s.ev) > 0 && int64(s.ev[0]>>tagBits) <= slot {
		e := s.ev.pop()
		s.events++
		tag := int32(e & eventTagMask)
		s.pending[tag] = false
		if s.queued[tag] > 0 {
			s.contenders = append(s.contenders, tag)
		}
	}
	return s.contenders
}

// outcome is one slot's arbitration result.
type outcome struct {
	// winner is the tag that transmits and decodes this slot; -1 when the
	// slot is idle or a non-captured collision.
	winner int32
	// losers are tags that transmitted but lost arbitration (capture
	// losers, or every collider under plain ALOHA).
	losers []int32
	// collided reports a non-captured collision (>= 2 transmitters, no
	// decodable winner).
	collided bool
	// sinr is the winner's post-arbitration SINR (linear); 0 with no
	// winner.
	sinr float64
	// arrivedAt is the arrival slot of the winner's delivered message.
	arrivedAt int64
}

// decide arbitrates one slot among the collected contenders and advances the
// per-tag state machines: p-persistence draws, capture arbitration, queue
// pops for the winner, backoff for losers, and rescheduling. power maps a
// tag index to its received signal power in watts (only consulted when
// transmissions overlap under AlohaCapture); noiseW is the receiver noise
// floor in the same units. All RNG draws happen in sorted tag order, so the
// outcome is deterministic for a given call sequence.
func (s *sched) decide(slot int64, contenders []int32, power func(int32) float64, noiseW float64) outcome {
	out := outcome{winner: -1}
	if len(contenders) == 0 {
		return out
	}

	// p-persistence: contenders that hold off retry next slot.
	tx := contenders
	if s.cfg.MAC != TDMA && s.cfg.AttemptProb < 1 {
		tx = tx[:0]
		for _, tag := range contenders {
			if s.r.Float64() < s.cfg.AttemptProb {
				tx = append(tx, tag)
			} else {
				s.schedule(tag, slot+1)
			}
		}
	}
	if len(tx) == 0 {
		return out
	}

	switch {
	case len(tx) == 1:
		w := tx[0]
		out.winner = w
		if power != nil {
			p := power(w)
			if noiseW > 0 {
				out.sinr = p / noiseW
			} else {
				out.sinr = math.Inf(1)
			}
		}
	case s.cfg.MAC == AlohaCapture:
		// Capture: the strongest collider decodes if its SINR over the
		// others clears the threshold (ties break to the lowest index).
		var sum float64
		best, bestP := int32(-1), math.Inf(-1)
		for _, tag := range tx {
			p := 1.0
			if power != nil {
				p = power(tag)
			}
			sum += p
			if p > bestP {
				best, bestP = tag, p
			}
		}
		sinr := bestP / (sum - bestP + noiseW)
		if sinr >= math.Pow(10, s.cfg.CaptureDB/10) {
			out.winner = best
			out.sinr = sinr
			for _, tag := range tx {
				if tag != best {
					out.losers = append(out.losers, tag)
				}
			}
		} else {
			out.collided = true
			out.losers = tx
		}
	default:
		// Plain slotted ALOHA (and the degenerate TDMA double-booking,
		// which the turn rotation makes impossible): every overlap is a
		// collision.
		out.collided = true
		out.losers = tx
	}

	if w := out.winner; w >= 0 {
		out.arrivedAt = s.headAt[w]
		s.queued[w]--
		s.boExp[w] = 0
		if s.queued[w] > 0 {
			ov := s.overflowAt[w]
			s.headAt[w] = ov[0]
			if len(ov) > 1 {
				copy(ov, ov[1:])
				s.overflowAt[w] = ov[:len(ov)-1]
			} else {
				delete(s.overflowAt, w)
			}
			s.schedule(w, slot+1)
		}
	}
	for _, tag := range out.losers {
		if s.boExp[tag] < 63 {
			s.boExp[tag]++
		}
		w := s.cfg.BackoffSlots << (s.boExp[tag] - 1)
		if w > s.maxW {
			w = s.maxW
		}
		s.schedule(tag, slot+1+int64(s.r.Intn(w)))
	}
	return out
}
