// Package stats implements the descriptive statistics the evaluation harness
// reports: means, percentiles, box-plot summaries (the paper's per-hour
// throughput figures are box plots), and empirical CDFs (traffic occupancy,
// synchronization accuracy, LTE-impact figures).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or NaN for an empty slice.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the extrema of xs. It panics on an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. xs need not be sorted. It panics on an
// empty slice or p outside [0,100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic("stats: percentile out of [0,100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary holds the five-number summary plus moments for a sample. The JSON
// field names are part of the serving API's determinism contract (see
// internal/serve): two runs that produce the same sample values marshal to
// identical bytes.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"`
	Min    float64 `json:"min"`
	P25    float64 `json:"p25"`
	Median float64 `json:"median"`
	P75    float64 `json:"p75"`
	Max    float64 `json:"max"`
}

// Summarize computes a Summary of xs. It panics on an empty slice.
func Summarize(xs []float64) Summary {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	lo, hi := sorted[0], sorted[len(sorted)-1]
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    Std(xs),
		Min:    lo,
		P25:    percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		P75:    percentileSorted(sorted, 75),
		Max:    hi,
	}
}

// Aggregate accumulates samples one at a time for per-run metric
// aggregation: a consumer that sees values arrive out of order (a worker
// pool completing tags, a server folding per-job metrics) adds each sample
// as it lands and asks for the Summary at the end. The result depends only
// on the multiset of added values — never on arrival order — so concurrent
// producers that each feed their own Aggregate and Merge at the end get the
// same Summary as a single sequential pass.
type Aggregate struct {
	xs []float64
}

// Add folds one sample into the aggregate.
func (a *Aggregate) Add(x float64) { a.xs = append(a.xs, x) }

// AddAll folds a batch of samples into the aggregate.
func (a *Aggregate) AddAll(xs []float64) { a.xs = append(a.xs, xs...) }

// Merge folds another aggregate's samples into this one. The other
// aggregate is left untouched.
func (a *Aggregate) Merge(b *Aggregate) { a.xs = append(a.xs, b.xs...) }

// N returns the number of samples added so far.
func (a *Aggregate) N() int { return len(a.xs) }

// Sum returns the sum of the added samples, accumulated in sorted order so
// the floating-point result is bit-identical for any insertion order.
func (a *Aggregate) Sum() float64 {
	var s float64
	for _, x := range a.sorted() {
		s += x
	}
	return s
}

// Summary computes the five-number summary of the added samples. The
// computation runs over a sorted copy, so every field — including the
// order-sensitive floating-point Mean — is bit-identical for any insertion
// order. It panics when no samples have been added (matching Summarize).
func (a *Aggregate) Summary() Summary { return Summarize(a.sorted()) }

func (a *Aggregate) sorted() []float64 {
	xs := append([]float64(nil), a.xs...)
	sort.Float64s(xs)
	return xs
}

// Box is a Tukey box-plot summary: quartiles, whiskers at the last data point
// within 1.5 IQR of the box, and the points beyond the whiskers.
type Box struct {
	Q1, Median, Q3      float64
	WhiskLow, WhiskHigh float64
	Outliers            []float64
}

// BoxPlot computes a Tukey box plot of xs. It panics on an empty slice.
func BoxPlot(xs []float64) Box {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	b := Box{
		Q1:     percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		Q3:     percentileSorted(sorted, 75),
	}
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.WhiskLow, b.WhiskHigh = b.Q3, b.Q1
	for _, x := range sorted {
		if x < loFence || x > hiFence {
			b.Outliers = append(b.Outliers, x)
			continue
		}
		if x < b.WhiskLow {
			b.WhiskLow = x
		}
		if x > b.WhiskHigh {
			b.WhiskHigh = x
		}
	}
	// Whiskers extend outward from the box; with tiny samples the
	// interpolated quartile can overshoot the last in-fence data point, so
	// clamp the whiskers to the box edges.
	if b.WhiskLow > b.Q1 {
		b.WhiskLow = b.Q1
	}
	if b.WhiskHigh < b.Q3 {
		b.WhiskHigh = b.Q3
	}
	return b
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples. It panics on an empty slice.
func NewCDF(samples []float64) *CDF {
	if len(samples) == 0 {
		panic("stats: NewCDF of empty slice")
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	// sort.SearchFloat64s returns the first index with sorted[i] >= x; we want
	// the count of values <= x.
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the smallest sample value q with P(X <= q) >= p, p in (0,1].
func (c *CDF) Quantile(p float64) float64 {
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(math.Ceil(p*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i]
}

// N returns the number of samples behind the CDF.
func (c *CDF) N() int { return len(c.sorted) }

// Points returns (x, P(X<=x)) pairs suitable for plotting, thinned to at most
// maxPoints entries.
func (c *CDF) Points(maxPoints int) (xs, ps []float64) {
	n := len(c.sorted)
	step := 1
	if maxPoints > 0 && n > maxPoints {
		step = n / maxPoints
	}
	for i := 0; i < n; i += step {
		xs = append(xs, c.sorted[i])
		ps = append(ps, float64(i+1)/float64(n))
	}
	return xs, ps
}

// Histogram counts samples into nbins equal-width bins over [lo, hi].
// Samples outside the range are clamped to the first/last bin.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 {
		panic("stats: Histogram with non-positive bin count")
	}
	counts := make([]int, nbins)
	width := (hi - lo) / float64(nbins)
	for _, x := range xs {
		i := 0
		if width > 0 {
			i = int((x - lo) / width)
		}
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	return counts
}

// QFunc is the Gaussian tail probability Q(x) = P(N(0,1) > x). It is used to
// map post-equalization SNR to analytic BER in the semi-analytic link mode.
func QFunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// BERFromSNR returns the BPSK bit error probability at the given linear SNR
// (Eb/N0). The LScatter per-unit phase decision is binary, so BPSK applies.
func BERFromSNR(snr float64) float64 {
	if snr <= 0 {
		return 0.5
	}
	return QFunc(math.Sqrt(2 * snr))
}
