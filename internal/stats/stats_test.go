package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"lscatter/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanSimple(t *testing.T) {
	if m := Mean([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", m)
	}
}

func TestMeanEmptyIsNaN(t *testing.T) {
	if m := Mean(nil); !math.IsNaN(m) {
		t.Fatalf("Mean(nil) = %v, want NaN", m)
	}
}

func TestVarianceAndStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if v := Variance(xs); !almostEqual(v, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", v)
	}
	if s := Std(xs); !almostEqual(s, 2, 1e-12) {
		t.Fatalf("Std = %v, want 2", s)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = (%v, %v), want (-1, 7)", lo, hi)
	}
}

func TestPercentileKnownValues(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileUnsortedInputUnchanged(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	_ = Percentile(xs, 50)
	want := []float64{5, 1, 4, 2, 3}
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatal("Percentile mutated its input")
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	if s.N != 8 || s.Min != 1 || s.Max != 8 {
		t.Fatalf("Summary extrema wrong: %+v", s)
	}
	if !almostEqual(s.Median, 4.5, 1e-12) {
		t.Fatalf("Summary median = %v, want 4.5", s.Median)
	}
}

func TestBoxPlotDetectsOutliers(t *testing.T) {
	xs := []float64{10, 11, 12, 13, 14, 15, 16, 100}
	b := BoxPlot(xs)
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Fatalf("BoxPlot outliers = %v, want [100]", b.Outliers)
	}
	if b.WhiskHigh != 16 {
		t.Fatalf("upper whisker = %v, want 16", b.WhiskHigh)
	}
	if b.WhiskLow != 10 {
		t.Fatalf("lower whisker = %v, want 10", b.WhiskLow)
	}
}

func TestBoxPlotNoOutliers(t *testing.T) {
	b := BoxPlot([]float64{1, 2, 3, 4, 5})
	if len(b.Outliers) != 0 {
		t.Fatalf("unexpected outliers: %v", b.Outliers)
	}
	if b.WhiskLow != 1 || b.WhiskHigh != 5 {
		t.Fatalf("whiskers = (%v, %v), want (1, 5)", b.WhiskLow, b.WhiskHigh)
	}
}

func TestCDFMonotone(t *testing.T) {
	r := rng.New(5)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	c := NewCDF(xs)
	prev := -1.0
	for x := -4.0; x <= 4.0; x += 0.1 {
		p := c.At(x)
		if p < prev {
			t.Fatalf("CDF decreased at x=%v: %v < %v", x, p, prev)
		}
		if p < 0 || p > 1 {
			t.Fatalf("CDF out of [0,1]: %v", p)
		}
		prev = p
	}
	if c.At(math.Inf(1)) != 1 {
		t.Fatal("CDF at +inf != 1")
	}
	if c.At(math.Inf(-1)) != 0 {
		t.Fatal("CDF at -inf != 0")
	}
}

func TestCDFQuantileInverse(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	c := NewCDF(xs)
	for _, p := range []float64{0.1, 0.5, 0.9, 1.0} {
		q := c.Quantile(p)
		if got := c.At(q); got < p-1e-9 {
			t.Errorf("At(Quantile(%v)) = %v < %v", p, got, p)
		}
	}
}

func TestCDFPointsThinned(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	px, pp := NewCDF(xs).Points(100)
	if len(px) > 110 || len(px) != len(pp) {
		t.Fatalf("Points returned %d/%d entries, want <= ~100 matched pairs", len(px), len(pp))
	}
	if !sort.Float64sAreSorted(px) {
		t.Fatal("Points x-values not sorted")
	}
}

func TestHistogramTotals(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.5, 0.9, 1.5, -0.5}
	h := Histogram(xs, 0, 1, 4)
	total := 0
	for _, c := range h {
		total += c
	}
	if total != len(xs) {
		t.Fatalf("histogram total = %d, want %d (clamping must keep all samples)", total, len(xs))
	}
}

func TestQFuncKnownValues(t *testing.T) {
	// Q(0)=0.5, Q(1.96)~0.025, Q(-inf)=1
	if q := QFunc(0); !almostEqual(q, 0.5, 1e-12) {
		t.Fatalf("Q(0) = %v", q)
	}
	if q := QFunc(1.959964); !almostEqual(q, 0.025, 1e-4) {
		t.Fatalf("Q(1.96) = %v, want ~0.025", q)
	}
}

func TestBERFromSNRShape(t *testing.T) {
	if b := BERFromSNR(0); b != 0.5 {
		t.Fatalf("BER at zero SNR = %v, want 0.5", b)
	}
	// BPSK at 9.6 dB Eb/N0 has BER ~1e-5
	snr := math.Pow(10, 9.6/10)
	if b := BERFromSNR(snr); b > 2e-5 || b < 2e-6 {
		t.Fatalf("BER at 9.6 dB = %v, want ~1e-5", b)
	}
	// monotone decreasing
	prev := 1.0
	for s := 0.1; s < 100; s *= 2 {
		b := BERFromSNR(s)
		if b >= prev {
			t.Fatalf("BER not monotone at snr=%v", s)
		}
		prev = b
	}
}

func TestPercentileMatchesCDFQuantileProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(200) + 5
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		med := Median(xs)
		c := NewCDF(xs)
		// At least half the mass lies at or below the median.
		return c.At(med) >= 0.5-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBoxPlotQuartilesOrdered(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(100) + 4
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		b := BoxPlot(xs)
		return b.Q1 <= b.Median && b.Median <= b.Q3 &&
			b.WhiskLow <= b.Q1 && b.Q3 <= b.WhiskHigh
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateMatchesSummarize(t *testing.T) {
	r := rng.New(11)
	xs := make([]float64, 257)
	for i := range xs {
		xs[i] = r.NormFloat64() * 50
	}
	var a Aggregate
	for _, x := range xs {
		a.Add(x)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if got, want := a.Summary(), Summarize(sorted); got != want {
		t.Fatalf("Aggregate summary %+v != Summarize %+v", got, want)
	}
	if a.N() != len(xs) {
		t.Fatalf("N = %d, want %d", a.N(), len(xs))
	}
	if got, want := a.Sum(), Mean(xs)*float64(len(xs)); math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
}

func TestAggregateMergeOrderIndependent(t *testing.T) {
	r := rng.New(5)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	// Shard the samples across three aggregates in interleaved order, then
	// merge: must equal the sequential pass.
	var shards [3]Aggregate
	for i, x := range xs {
		shards[i%3].Add(x)
	}
	var sequential Aggregate
	sequential.AddAll(xs)
	var merged Aggregate
	merged.Merge(&shards[2])
	merged.Merge(&shards[0])
	merged.Merge(&shards[1])
	if got, want := merged.Summary(), sequential.Summary(); got != want {
		t.Fatalf("merged summary %+v != sequential %+v", got, want)
	}
	if got, want := merged.Sum(), sequential.Sum(); got != want {
		t.Fatalf("merged sum %v != sequential %v", got, want)
	}
}
