package ue

import (
	"errors"
	"math/cmplx"
	"sync"

	"lscatter/internal/dsp"
	"lscatter/internal/ltephy"
)

// pssBankKey identifies one cached PSS correlator bank. The three PSS roots
// depend only on the numerology (bandwidth and oversampling), not on the
// cell identity or boost, so every cell search over the same waveform shape
// shares one bank — the reference spectra are computed once per process.
type pssBankKey struct {
	bw         ltephy.Bandwidth
	oversample int
}

var pssBanks sync.Map // pssBankKey -> *dsp.CorrelatorBank

// pssBank returns the shared three-root PSS correlator bank for the given
// numerology, building it on first use.
func pssBank(bw ltephy.Bandwidth, oversample int) *dsp.CorrelatorBank {
	key := pssBankKey{bw: bw, oversample: oversample}
	if v, ok := pssBanks.Load(key); ok {
		return v.(*dsp.CorrelatorBank)
	}
	refs := make([][]complex128, 3)
	for nid2 := range refs {
		p := ltephy.Params{BW: bw, CellID: nid2, Oversample: oversample}
		refs[nid2] = ltephy.PSSTimeDomain(p)
	}
	bank := dsp.NewCorrelatorBank(refs)
	actual, _ := pssBanks.LoadOrStore(key, bank)
	return actual.(*dsp.CorrelatorBank)
}

// CellSearchResult is the outcome of blind cell acquisition.
type CellSearchResult struct {
	// CellID is the detected physical cell identity (0..503).
	CellID int
	// PSSSample is the stream index of the first useful sample of the
	// detected PSS symbol.
	PSSSample int
	// Subframe is 0 or 5: which half-frame the detected PSS opens (resolved
	// by the SSS).
	Subframe int
	// SubframeStart is the stream index of that subframe's first sample.
	SubframeStart int
	// PSSCorr is the normalized PSS correlation peak (0..1).
	PSSCorr float64
	// SSSMetric is the winning coherent SSS correlation, normalized by the
	// runner-up (>1 means unambiguous).
	SSSMetric float64
}

// CellSearch performs the standard LTE acquisition on a raw sample stream of
// unknown timing and cell identity: correlate the three PSS roots to find
// symbol timing and NID2, then coherently match the neighboring SSS symbol
// (using the PSS itself as the channel-phase reference) to recover NID1 and
// the half-frame position. The stream must contain at least one full PSS and
// the SSS symbol preceding it (~6 ms to be safe).
//
// bw and oversample describe the waveform; the cell identity fields of the
// result fill in the rest of a Params for the receive chain.
func CellSearch(bw ltephy.Bandwidth, oversample int, samples []complex128) (*CellSearchResult, error) {
	n := bw.FFTSize() * oversample
	if len(samples) < 2*n+ltephy.SymbolsPerSubframe*n {
		return nil, errors.New("ue: stream too short for cell search")
	}
	// Stage 1: PSS timing and NID2. The bank transforms each stream block
	// once and multiplies it against all three root spectra, so the sweep
	// costs one forward FFT pass over the stream instead of three.
	best := &CellSearchResult{PSSCorr: -1}
	for nid2, pk := range pssBank(bw, oversample).NormalizedPeaks(samples) {
		if pk.Peak > best.PSSCorr {
			best.PSSCorr = pk.Peak
			best.PSSSample = pk.Lag
			best.CellID = nid2 // provisional: NID2 only
		}
	}
	if best.PSSCorr < 0.2 {
		return nil, errors.New("ue: no PSS found")
	}
	nid2 := best.CellID

	// Stage 2: SSS. The SSS symbol's useful part ends one CP before the PSS
	// symbol starts: useful(SSS) = pssStart - cp(PSS) - N.
	pAny := ltephy.Params{BW: bw, CellID: nid2, Oversample: oversample}
	cpPss := bw.CPLen(ltephy.PSSSymbolIndex%ltephy.SymbolsPerSlot) * oversample
	sssStart := best.PSSSample - cpPss - n
	if sssStart < 0 {
		return nil, errors.New("ue: stream does not contain the SSS before the PSS")
	}
	// Demodulate the 62 central subcarriers of both symbols.
	central := func(start int) []complex128 {
		specBuf := dsp.AcquireBuf(n)
		defer dsp.ReleaseBuf(specBuf)
		spec := *specBuf
		dsp.PlanFor(n).Forward(spec, samples[start:start+n])
		out := make([]complex128, 62)
		k := bw.Subcarriers()
		for i := 0; i < 62; i++ {
			gridIdx := k/2 - 31 + i
			out[i] = spec[binOfLocal(gridIdx, k, n)]
		}
		return out
	}
	yPss := central(best.PSSSample)
	ySss := central(sssStart)
	// Channel phase reference from the PSS (known sequence).
	pssSeq := ltephy.PSS(nid2)
	h := make([]complex128, 62)
	for i := range h {
		h[i] = yPss[i] * cmplx.Conj(pssSeq[i])
	}
	// Coherent SSS hypothesis test over NID1 x {0,5}.
	bestVal, secondVal := -1.0, -1.0
	bestNID1, bestSF := 0, 0
	for nid1 := 0; nid1 < 168; nid1++ {
		for _, sf := range []int{0, 5} {
			seq := ltephy.SSS(nid1, nid2, sf)
			var acc complex128
			for i := range seq {
				acc += ySss[i] * cmplx.Conj(h[i]) * complex(seq[i], 0)
			}
			v := real(acc)
			if v > bestVal {
				secondVal = bestVal
				bestVal, bestNID1, bestSF = v, nid1, sf
			} else if v > secondVal {
				secondVal = v
			}
		}
	}
	if bestVal <= 0 {
		return nil, errors.New("ue: SSS hypothesis test failed")
	}
	best.CellID = 3*bestNID1 + nid2
	best.Subframe = bestSF
	if secondVal > 0 {
		best.SSSMetric = bestVal / secondVal
	} else {
		best.SSSMetric = bestVal
	}
	best.SubframeStart = best.PSSSample - ltephy.UsefulStart(pAny, ltephy.PSSSymbolIndex)
	return best, nil
}

// binOfLocal mirrors the grid-to-FFT-bin mapping of ltephy (subcarrier k of
// K occupied onto an n-point spectrum, DC skipped).
func binOfLocal(k, gridK, n int) int {
	half := gridK / 2
	if k < half {
		return (k - half + n) % n
	}
	return k - half + 1
}
