package ue

import (
	"testing"

	"lscatter/internal/bits"
	"lscatter/internal/channel"
	"lscatter/internal/dsp"
	"lscatter/internal/enodeb"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
	"lscatter/internal/tag"
)

// TestPreamblesDistinguishable checks the multi-tag preamble family has low
// pairwise correlation.
func TestPreamblesDistinguishable(t *testing.T) {
	const n = 1200
	for a := 0; a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			pa, pb := tag.PreambleFor(a, n), tag.PreambleFor(b, n)
			agree := n - bits.CountDiff(pa, pb)
			// Random sequences agree on ~n/2 positions.
			if agree < n*4/10 || agree > n*6/10 {
				t.Errorf("preambles %d,%d agree on %d/%d positions", a, b, agree, n)
			}
		}
	}
}

// TestTwoTagsTDMA runs two tags alternating 5 ms bursts: each burst the
// active tag modulates while the other parks; the UE identifies the sender
// by preamble and demodulates its data without cross-tag errors.
func TestTwoTagsTDMA(t *testing.T) {
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	enb := enodeb.New(cfg)
	p := cfg.Params

	mods := []*tag.Modulator{
		tag.NewModulator(tag.ModConfig{Params: p, ID: 1, TimingErrorUnits: 3, SampleOffset: 1}),
		tag.NewModulator(tag.ModConfig{Params: p, ID: 2, TimingErrorUnits: -5, SampleOffset: 2}),
	}
	r := rng.New(77)
	for _, m := range mods {
		m.QueueBits(r.Bits(make([]byte, 60*m.PerSymbolBits())))
	}

	lteRx := NewLTEReceiver(p, cfg.Scheme)
	scfg := DefaultScatterConfig(p)
	scfg.TagIDs = []int{1, 2}
	sc := NewScatterDemod(scfg)

	gains := []float64{-68, -72} // slightly different link budgets
	identified := map[int]int{}
	errsByTag := map[int]int{}
	totalByTag := map[int]int{}
	startSample := 0
	for sfIdx := 0; sfIdx < 10; sfIdx++ {
		sf := enb.NextSubframe()
		// Burst owner alternates every 5 ms (subframes 0-4 -> tag 1, 5-9 -> tag 2).
		owner := (sfIdx / 5) % 2
		burst := sf.Index == 0 || sf.Index == 5
		var paths [][]complex128
		paths = append(paths, applyGain(sf.Samples, -40)) // direct
		var recs []tag.SymbolRecord
		for i, m := range mods {
			if i == owner {
				var refl []complex128
				refl, recs = m.ModulateSubframe(sf.Samples, sf.Index, burst)
				paths = append(paths, applyGain(refl, gains[i]))
			} else {
				paths = append(paths, applyGain(m.ParkedSubframe(sf.Samples), gains[i]))
			}
		}
		rx := channel.Combine(r, 0, paths...)
		lte, err := lteRx.ReceiveSubframe(rx, sf.Index)
		if err != nil || !lte.OK {
			t.Fatalf("subframe %d: LTE decode failed", sfIdx)
		}
		var res *ScatterResult
		if burst {
			sc.Reset()
			res = sc.AcquireBurst(rx, lte.RefSamples, sf.Index, startSample)
			if !res.Synced {
				t.Fatalf("subframe %d: burst not acquired", sfIdx)
			}
			identified[res.TagID]++
			if res.TagID != owner+1 {
				t.Fatalf("subframe %d: identified tag %d, owner is %d", sfIdx, res.TagID, owner+1)
			}
			d := sc.DemodSubframe(rx, lte.RefSamples, sf.Index, startSample, true)
			res.Decisions = d.Decisions
		} else {
			res = sc.DemodSubframe(rx, lte.RefSamples, sf.Index, startSample, false)
		}
		byBits := map[int][]byte{}
		for _, rec := range recs {
			if rec.Bits != nil && !rec.IsPreamble {
				byBits[rec.Symbol] = rec.Bits
			}
		}
		for _, dec := range res.Decisions {
			want, ok := byBits[dec.Symbol]
			if !ok {
				continue
			}
			errsByTag[owner] += bits.CountDiff(dec.Bits, want)
			totalByTag[owner] += len(want)
		}
		startSample += len(rx)
	}
	for owner := 0; owner < 2; owner++ {
		if totalByTag[owner] == 0 {
			t.Fatalf("no bits compared for tag %d", owner+1)
		}
		if errsByTag[owner] != 0 {
			t.Fatalf("tag %d: %d/%d bit errors on a clean channel", owner+1, errsByTag[owner], totalByTag[owner])
		}
	}
	if identified[1] == 0 || identified[2] == 0 {
		t.Fatalf("tag identification counts: %v", identified)
	}
}

// TestParkedTagQuietInShiftedBand verifies a parked tag leaves the shifted
// backscatter band clean.
func TestParkedTagQuietInShiftedBand(t *testing.T) {
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	enb := enodeb.New(cfg)
	p := cfg.Params
	m := tag.NewModulator(tag.ModConfig{Params: p})
	sf := enb.NextSubframe()
	parked := m.ParkedSubframe(sf.Samples)
	n := p.BW.FFTSize() * p.Oversample
	start := ltephy.UsefulStart(p, 3)
	spec := dsp.FFT(append([]complex128(nil), parked[start:start+n]...))
	nn := p.BW.FFTSize()
	k := p.BW.Subcarriers()
	var shifted, inband float64
	for b, v := range spec {
		f := b
		if f > n/2 {
			f -= n
		}
		pw := real(v)*real(v) + imag(v)*imag(v)
		if f >= nn-k/2 && f <= nn+k/2 {
			shifted += pw
		}
		if f >= -k/2 && f <= k/2 {
			inband += pw
		}
	}
	if shifted > 1e-9*inband {
		t.Fatalf("parked tag leaks into the shifted band: %v vs %v", shifted, inband)
	}
}
