package ue

import (
	"math"
	"testing"

	"lscatter/internal/bits"
	"lscatter/internal/channel"
	"lscatter/internal/enodeb"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
	"lscatter/internal/tag"
)

// TestClosedLoopDeviceChain is the full-system test: the tag derives its
// frame timing from its own analog sync circuit (no injected offsets), parks
// until locked, then modulates; the UE demodulates against the true frame
// lattice. This exercises §3.1's central claim — the coarse, cheap analog
// synchronization plus the §3.2.3 slack and §3.3.2 offset search suffice for
// error-free demodulation.
func TestClosedLoopDeviceChain(t *testing.T) {
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	enb := enodeb.New(cfg)
	p := cfg.Params
	dev := tag.NewDevice(p, tag.SyncConfig{}, tag.ModConfig{})
	payload := rng.New(3).Bits(make([]byte, 400*12*72))
	dev.QueueBits(payload)

	const subframes = 35
	sfLen := p.Oversample * p.BW.SamplesPerSubframe()
	ambient := make([]complex128, 0, subframes*sfLen)
	for i := 0; i < subframes; i++ {
		ambient = append(ambient, enb.NextSubframe().Samples...)
	}
	// Drive the device in awkward chunk sizes to exercise its buffering.
	var reflected []complex128
	for pos := 0; pos < len(ambient); {
		end := pos + 7777
		if end > len(ambient) {
			end = len(ambient)
		}
		reflected = append(reflected, dev.Process(ambient[pos:end])...)
		pos = end
	}
	if !dev.Synced() {
		t.Fatal("device never synchronized")
	}
	records := dev.Records()
	if len(records) == 0 {
		t.Fatal("device modulated nothing")
	}
	// Index the device's modulated bits by true subframe index.
	bySF := map[int]map[int][]byte{}
	firstModSF := subframes
	for _, rec := range records {
		trueSF := int(math.Round(float64(rec.SubframeStart) / float64(sfLen)))
		if rec.Bits == nil || rec.IsPreamble {
			continue
		}
		if bySF[trueSF] == nil {
			bySF[trueSF] = map[int][]byte{}
		}
		bySF[trueSF][rec.Symbol] = rec.Bits
		if trueSF < firstModSF {
			firstModSF = trueSF
		}
	}

	// Receive everything the device modulated.
	lteRx := NewLTEReceiver(p, cfg.Scheme)
	scfg := DefaultScatterConfig(p)
	scfg.OffsetSearch = 60
	sc := NewScatterDemod(scfg)
	r := rng.New(9)
	errs, total := 0, 0
	bursts := 0
	for sf := firstModSF; sf < subframes && (sf+1)*sfLen <= len(reflected); sf++ {
		sfIdx := sf % ltephy.SubframesPerFrame
		rx := channel.Combine(r, 0,
			applyGain(ambient[sf*sfLen:(sf+1)*sfLen], -40),
			applyGain(reflected[sf*sfLen:(sf+1)*sfLen], -68))
		lte, err := lteRx.ReceiveSubframe(rx, sfIdx)
		if err != nil || !lte.OK {
			t.Fatalf("subframe %d: LTE decode failed", sf)
		}
		burst := sfIdx == 0 || sfIdx == 5
		var res *ScatterResult
		if burst {
			res = sc.AcquireBurst(rx, lte.RefSamples, sfIdx, sf*sfLen)
			if res.Synced {
				bursts++
				d := sc.DemodSubframe(rx, lte.RefSamples, sfIdx, sf*sfLen, true)
				res.Decisions = d.Decisions
			}
		} else {
			res = sc.DemodSubframe(rx, lte.RefSamples, sfIdx, sf*sfLen, false)
		}
		for _, dec := range res.Decisions {
			if want, ok := bySF[sf][dec.Symbol]; ok && len(want) == len(dec.Bits) {
				errs += bits.CountDiff(dec.Bits, want)
				total += len(want)
			}
		}
	}
	if bursts == 0 {
		t.Fatal("no burst acquired from the self-synchronized device")
	}
	if total < 5000 {
		t.Fatalf("only %d bits compared", total)
	}
	if ber := float64(errs) / float64(total); ber > 1e-3 {
		t.Fatalf("closed-loop BER = %v (%d/%d)", ber, errs, total)
	}
	t.Logf("closed loop: %d bursts, %d bits, %d errors", bursts, total, errs)
}

// TestDeviceParksUntilSynced verifies the pre-lock behavior: the reflection
// before the first PSS lock must be the weak parked echo, with nothing in
// the shifted band.
func TestDeviceParksUntilSynced(t *testing.T) {
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	enb := enodeb.New(cfg)
	p := cfg.Params
	dev := tag.NewDevice(p, tag.SyncConfig{}, tag.ModConfig{})
	sf := enb.NextSubframe()
	out := dev.Process(sf.Samples)
	if dev.Synced() {
		t.Fatal("device claims sync after 1 ms")
	}
	if len(out) != len(sf.Samples) {
		t.Fatalf("parked output %d samples for %d input", len(out), len(sf.Samples))
	}
	// Parked reflection is 10 dB below the modulator's nominal level
	// (default 6 dB reflection loss + 10 dB parked RCS reduction).
	ratioDB := 10 * math.Log10(power(out)/power(sf.Samples))
	if ratioDB > -15 || ratioDB < -17 {
		t.Fatalf("parked reflection at %v dB, want ~-16", ratioDB)
	}
}

func power(x []complex128) float64 {
	var p float64
	for _, v := range x {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	return p / float64(len(x))
}
