package ue

import (
	"math"
	"testing"

	"lscatter/internal/channel"
	"lscatter/internal/dsp"
	"lscatter/internal/enodeb"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
	"lscatter/internal/tag"
)

func cfoSubframe(t *testing.T, cfoHz float64, noiseW float64) ([]complex128, ltephy.Params, *enodeb.ENodeB) {
	t.Helper()
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	enb := enodeb.New(cfg)
	sf := enb.NextSubframe()
	buf := append([]complex128(nil), sf.Samples...)
	if cfoHz != 0 {
		dsp.Mix(buf, cfoHz, cfg.Params.SampleRate(), 0)
	}
	if noiseW > 0 {
		channel.AWGN(rng.New(5), buf, noiseW)
	}
	return buf, cfg.Params, enb
}

func TestEstimateCFOAccuracy(t *testing.T) {
	for _, cfo := range []float64{0, 150, -800, 2500, -6000} {
		buf, p, _ := cfoSubframe(t, cfo, 0)
		got := EstimateCFO(p, buf)
		if math.Abs(got-cfo) > 20 {
			t.Errorf("CFO %v Hz estimated as %v", cfo, got)
		}
	}
}

func TestEstimateCFOUnderNoise(t *testing.T) {
	buf, p, _ := cfoSubframe(t, 1200, 0.001) // 10 dB SNR
	got := EstimateCFO(p, buf)
	if math.Abs(got-1200) > 120 {
		t.Fatalf("noisy CFO estimate %v, want ~1200", got)
	}
}

func TestCorrectCFORestoresDecode(t *testing.T) {
	// 2 kHz CFO (13% of the subcarrier spacing) wrecks the LTE decode;
	// estimate+correct must restore it.
	const cfo = 2000.0
	buf, p, _ := cfoSubframe(t, cfo, 0)
	direct := applyGain(buf, -40)
	lteRx := NewLTEReceiver(p, enodeb.DefaultConfig(ltephy.BW1_4).Scheme)
	res, err := lteRx.ReceiveSubframe(direct, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Log("decode survived raw 2 kHz CFO (soft decoder is strong); continuing")
	}
	est := EstimateCFO(p, direct)
	corrected := CorrectCFO(p, append([]complex128(nil), direct...), est, 0)
	res2, err := lteRx.ReceiveSubframe(corrected, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.OK {
		t.Fatal("decode failed after CFO correction")
	}
	if res.OK && res2.EVM > res.EVM {
		t.Fatalf("correction worsened EVM: %v -> %v", res.EVM, res2.EVM)
	}
}

func TestCorrectCFOPhaseContinuity(t *testing.T) {
	// Correcting two consecutive blocks with the right startSample must be
	// identical to correcting the concatenation.
	p := ltephy.DefaultParams(ltephy.BW1_4)
	r := rng.New(9)
	x := make([]complex128, 4000)
	for i := range x {
		x[i] = r.Complex(1)
	}
	whole := CorrectCFO(p, append([]complex128(nil), x...), 700, 0)
	a := CorrectCFO(p, append([]complex128(nil), x[:1500]...), 700, 0)
	b := CorrectCFO(p, append([]complex128(nil), x[1500:]...), 700, 1500)
	for i := range a {
		if d := whole[i] - a[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
			t.Fatal("first block mismatch")
		}
	}
	for i := range b {
		if d := whole[1500+i] - b[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-16 {
			t.Fatalf("second block mismatch at %d", i)
		}
	}
}

// trackerFeed mixes subframes from a fresh eNodeB with a per-subframe
// frequency offset given by f(i) and runs them through the tracker,
// returning the tracker and the last applied offset.
func trackerFeed(t *testing.T, tr *CFOTracker, n int, f func(i int) float64) float64 {
	t.Helper()
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	enb := enodeb.New(cfg)
	p := cfg.Params
	start := 0
	last := 0.0
	for i := 0; i < n; i++ {
		sf := enb.NextSubframe()
		buf := append([]complex128(nil), sf.Samples...)
		last = f(i)
		dsp.Mix(buf, last, p.SampleRate(), 0)
		tr.Process(buf, start)
		start += len(buf)
	}
	return last
}

func TestCFOTrackerTracksDrift(t *testing.T) {
	// 100 Hz of additional offset per subframe (an aggressive thermal ramp).
	// A first-order loop with gain 0.25 lags by step/gain ≈ 400 Hz — inside
	// the outlier threshold, so the loop must follow without re-acquiring.
	p := ltephy.DefaultParams(ltephy.BW1_4)
	tr := NewCFOTracker(p, 0, CFOTrackerConfig{})
	last := trackerFeed(t, tr, 40, func(i int) float64 { return 600 + 100*float64(i) })
	if got := tr.Reacquisitions(); got != 0 {
		t.Fatalf("drift tracking re-acquired %d times, want 0", got)
	}
	if err := math.Abs(tr.EstimateHz() - last); err > 600 {
		t.Fatalf("tracker lags true CFO %v Hz by %v Hz", last, err)
	}
}

func TestCFOTrackerReacquiresAfterJump(t *testing.T) {
	// A 5 kHz step is far beyond what the loop can slew through: it must
	// fall back to re-acquisition (graceful degradation) and then re-lock.
	p := ltephy.DefaultParams(ltephy.BW1_4)
	tr := NewCFOTracker(p, 0, CFOTrackerConfig{})
	last := trackerFeed(t, tr, 20, func(i int) float64 {
		if i < 8 {
			return 500
		}
		return 5500
	})
	if got := tr.Reacquisitions(); got < 1 {
		t.Fatal("tracker never re-acquired after a 5 kHz jump")
	}
	if err := math.Abs(tr.EstimateHz() - last); err > 100 {
		t.Fatalf("tracker did not re-lock: estimate %v, want ~%v", tr.EstimateHz(), last)
	}
}

func TestCFOTrackerHoldsThroughSingleOutlier(t *testing.T) {
	// One corrupt subframe (an interference burst pushing the apparent offset
	// far off) must not reset a healthy loop: the estimate is held and no
	// re-acquisition fires.
	p := ltephy.DefaultParams(ltephy.BW1_4)
	tr := NewCFOTracker(p, 0, CFOTrackerConfig{})
	trackerFeed(t, tr, 12, func(i int) float64 {
		if i == 6 {
			return 5000
		}
		return 400
	})
	if got := tr.Reacquisitions(); got != 0 {
		t.Fatalf("single outlier triggered %d re-acquisitions, want 0", got)
	}
	if err := math.Abs(tr.EstimateHz() - 400); err > 60 {
		t.Fatalf("estimate drifted to %v after outlier, want ~400", tr.EstimateHz())
	}
}

func TestCFOTrackerReset(t *testing.T) {
	p := ltephy.DefaultParams(ltephy.BW1_4)
	tr := NewCFOTracker(p, 0, CFOTrackerConfig{})
	trackerFeed(t, tr, 20, func(i int) float64 {
		if i < 5 {
			return 300
		}
		return 6300
	})
	if tr.Reacquisitions() == 0 || tr.EstimateHz() == 0 {
		t.Fatal("setup did not exercise the tracker")
	}
	tr.Reset(0)
	if tr.EstimateHz() != 0 || tr.Reacquisitions() != 0 {
		t.Fatal("Reset did not clear tracker state")
	}
}

func TestEndToEndWithCFO(t *testing.T) {
	// Full chain with a 1.5 kHz UE oscillator offset: the receiver first
	// estimates and removes the CFO, then everything — LTE decode, preamble
	// acquisition, backscatter demod — must work as before.
	const cfo = 1500.0
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	enb := enodeb.New(cfg)
	p := cfg.Params
	mod := tag.NewModulator(tag.ModConfig{Params: p, TimingErrorUnits: 2, SampleOffset: 1})
	mod.QueueBits(rng.New(3).Bits(make([]byte, 40*mod.PerSymbolBits())))
	lteRx := NewLTEReceiver(p, cfg.Scheme)
	sc := NewScatterDemod(DefaultScatterConfig(p))
	errs, total := 0, 0
	startSample := 0
	for i := 0; i < 2; i++ {
		sf := enb.NextSubframe()
		burst := sf.Index == 0 || sf.Index == 5
		reflected, recs := mod.ModulateSubframe(sf.Samples, sf.Index, burst)
		rx := make([]complex128, len(sf.Samples))
		for j := range rx {
			rx[j] = sf.Samples[j]*complex(1e-2, 0) + reflected[j]*complex(3e-4, 0)
		}
		// The UE's LO offset rotates the whole received stream.
		dsp.Mix(rx, cfo, p.SampleRate(), 2*math.Pi*cfo*float64(startSample)/p.SampleRate())
		// Receiver front end: estimate and remove.
		est := EstimateCFO(p, rx)
		if math.Abs(est-cfo) > 60 {
			t.Fatalf("CFO estimate %v, want ~%v", est, cfo)
		}
		CorrectCFO(p, rx, est, startSample)

		lte, err := lteRx.ReceiveSubframe(rx, sf.Index)
		if err != nil || !lte.OK {
			t.Fatalf("subframe %d: LTE decode failed under corrected CFO", i)
		}
		var res *ScatterResult
		if burst {
			res = sc.AcquireBurst(rx, lte.RefSamples, sf.Index, startSample)
			if !res.Synced {
				t.Fatal("no preamble sync under corrected CFO")
			}
			d := sc.DemodSubframe(rx, lte.RefSamples, sf.Index, startSample, true)
			res.Decisions = d.Decisions
		} else {
			res = sc.DemodSubframe(rx, lte.RefSamples, sf.Index, startSample, false)
		}
		byBits := map[int][]byte{}
		for _, rec := range recs {
			if rec.Bits != nil && !rec.IsPreamble {
				byBits[rec.Symbol] = rec.Bits
			}
		}
		for _, dec := range res.Decisions {
			if want, ok := byBits[dec.Symbol]; ok {
				for k := range want {
					if want[k] != dec.Bits[k] {
						errs++
					}
					total++
				}
			}
		}
		startSample += len(rx)
	}
	if total == 0 {
		t.Fatal("no bits compared")
	}
	// The residual CFO estimate error (a few Hz) leaves a slow phase drift
	// across the burst; allow a small error rate.
	if ber := float64(errs) / float64(total); ber > 0.02 {
		t.Fatalf("BER under corrected CFO = %v (%d/%d)", ber, errs, total)
	}
}
