package ue

import (
	"testing"

	"lscatter/internal/bits"
	"lscatter/internal/channel"
	"lscatter/internal/enodeb"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
	"lscatter/internal/tag"
)

// runFadingChain pushes subframes through a chain whose backscatter path
// gain evolves per subframe (AR(1) fading). When reacquire is set, every
// burst subframe re-runs preamble acquisition (re-estimating the channel);
// otherwise only the first burst is used and later subframes ride the stale
// estimate.
func runFadingChain(t *testing.T, rho float64, subframes int, reacquire bool) float64 {
	t.Helper()
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	enb := enodeb.New(cfg)
	p := cfg.Params
	mod := tag.NewModulator(tag.ModConfig{Params: p, TimingErrorUnits: 2, SampleOffset: 1})
	mod.QueueBits(rng.New(3).Bits(make([]byte, subframes*12*mod.PerSymbolBits())))
	lteRx := NewLTEReceiver(p, cfg.Scheme)
	sc := NewScatterDemod(DefaultScatterConfig(p))
	fade := channel.NewFadingTrack(rng.New(44), rho)
	r := rng.New(45)
	errs, total := 0, 0
	acquired := false
	startSample := 0
	for i := 0; i < subframes; i++ {
		sf := enb.NextSubframe()
		burst := sf.Index == 0 || sf.Index == 5
		reflected, recs := mod.ModulateSubframe(sf.Samples, sf.Index, burst)
		scat := fade.Apply(applyGain(reflected, -68))
		rx := channel.Combine(r, 0, applyGain(sf.Samples, -40), scat)
		lte, err := lteRx.ReceiveSubframe(rx, sf.Index)
		if err != nil || !lte.OK {
			startSample += len(rx)
			continue
		}
		var res *ScatterResult
		if burst && (reacquire || !acquired) {
			res = sc.AcquireBurst(rx, lte.RefSamples, sf.Index, startSample)
			if res.Synced {
				acquired = true
				d := sc.DemodSubframe(rx, lte.RefSamples, sf.Index, startSample, true)
				res.Decisions = d.Decisions
			}
		} else {
			res = sc.DemodSubframe(rx, lte.RefSamples, sf.Index, startSample, burst)
		}
		startSample += len(rx)
		byBits := map[int][]byte{}
		for _, rec := range recs {
			if rec.Bits != nil && !rec.IsPreamble {
				byBits[rec.Symbol] = rec.Bits
			}
		}
		for _, dec := range res.Decisions {
			if want, ok := byBits[dec.Symbol]; ok && len(want) == len(dec.Bits) {
				errs += bits.CountDiff(dec.Bits, want)
				total += len(want)
			}
		}
	}
	if total == 0 {
		t.Fatal("no bits compared")
	}
	return float64(errs) / float64(total)
}

func TestPerBurstReacquisitionTracksFading(t *testing.T) {
	// With pedestrian-speed fading (rho 0.99 per ms), the per-burst channel
	// re-estimation keeps BER low.
	ber := runFadingChain(t, 0.99, 20, true)
	if ber > 0.005 {
		t.Fatalf("BER with re-acquisition = %v", ber)
	}
}

func TestStaleChannelEstimateFails(t *testing.T) {
	// The same fading with a single acquisition at t=0: the stale phase
	// reference must visibly degrade decisions — this is why the tag opens
	// every 5 ms burst with a preamble.
	stale := runFadingChain(t, 0.99, 20, false)
	fresh := runFadingChain(t, 0.99, 20, true)
	if stale < 3*fresh {
		t.Fatalf("stale estimate BER %v not clearly worse than fresh %v", stale, fresh)
	}
}

func TestSlowFadingIsForgiving(t *testing.T) {
	// Near-static channels barely drift within a burst interval: even the
	// stale estimate survives for a while.
	ber := runFadingChain(t, 0.999, 10, false)
	if ber > 0.05 {
		t.Fatalf("BER under near-static fading with stale estimate = %v", ber)
	}
}
