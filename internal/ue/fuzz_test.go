package ue

import (
	"encoding/binary"
	"math"
	"testing"

	"lscatter/internal/enodeb"
	"lscatter/internal/ltephy"
)

// fuzzSamples reinterprets raw bytes as an int16-quantized IQ stream — the
// natural adversarial surface: this is exactly what an SDR front end hands
// the receiver. The length is capped so a single exec stays fast.
func fuzzSamples(data []byte) []complex128 {
	const maxSamples = 8192
	n := len(data) / 4
	if n > maxSamples {
		n = maxSamples
	}
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		re := int16(binary.LittleEndian.Uint16(data[4*i:]))
		im := int16(binary.LittleEndian.Uint16(data[4*i+2:]))
		out[i] = complex(float64(re)/32768, float64(im)/32768)
	}
	return out
}

// fuzzWaveformSeed emits two real subframes (sync + data) as int16 IQ bytes
// so the corpus starts from a decodable stream and the fuzzer mutates from
// there instead of never leaving the too-short error path.
func fuzzWaveformSeed() []byte {
	p := ltephy.Params{BW: ltephy.BW1_4, CellID: 7, Oversample: 2}
	e := enodeb.New(enodeb.Config{Params: p})
	var buf []byte
	for _, sf := range e.Stream(2) {
		for _, s := range sf.Samples {
			var b [4]byte
			binary.LittleEndian.PutUint16(b[0:2], uint16(int16(real(s)*8192)))
			binary.LittleEndian.PutUint16(b[2:4], uint16(int16(imag(s)*8192)))
			buf = append(buf, b[:]...)
		}
	}
	return buf
}

// FuzzCellSearch feeds arbitrary IQ streams to the blind cell-acquisition
// path. The contract: CellSearch never panics — any input either yields a
// structurally valid result or an error. Valid results must carry a cell ID
// in 0..503, a subframe of 0 or 5, and in-bounds sample indices.
func FuzzCellSearch(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 64))
	f.Add(make([]byte, 4*4096))
	f.Add(fuzzWaveformSeed())
	f.Fuzz(func(t *testing.T, data []byte) {
		samples := fuzzSamples(data)
		res, err := CellSearch(ltephy.BW1_4, 2, samples)
		if err != nil {
			return
		}
		if res.CellID < 0 || res.CellID > 503 {
			t.Fatalf("cell ID %d out of range", res.CellID)
		}
		if res.Subframe != 0 && res.Subframe != 5 {
			t.Fatalf("subframe %d, want 0 or 5", res.Subframe)
		}
		if res.PSSSample < 0 || res.PSSSample >= len(samples) {
			t.Fatalf("PSS sample %d outside stream of %d", res.PSSSample, len(samples))
		}
		if math.IsNaN(res.PSSCorr) || math.IsNaN(res.SSSMetric) {
			t.Fatalf("NaN metric: PSS %v SSS %v", res.PSSCorr, res.SSSMetric)
		}
	})
}

// FuzzEstimateCFO covers the open-loop CP correlator the tracking loop
// leans on: arbitrary IQ in, a finite (or zero) frequency out, no panics.
func FuzzEstimateCFO(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 4*3840))
	f.Add(fuzzWaveformSeed())
	f.Fuzz(func(t *testing.T, data []byte) {
		p := ltephy.Params{BW: ltephy.BW1_4, CellID: 7, Oversample: 2}
		est := EstimateCFO(p, fuzzSamples(data))
		if math.IsInf(est, 0) {
			t.Fatalf("infinite CFO estimate %v", est)
		}
	})
}
