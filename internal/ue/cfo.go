package ue

import (
	"math"
	"math/cmplx"

	"lscatter/internal/dsp"
	"lscatter/internal/ltephy"
)

// EstimateCFO estimates the carrier-frequency offset between the receiver's
// local oscillator and the eNodeB, in Hz, from one subframe of samples
// aligned to the subframe boundary. It uses the classic cyclic-prefix
// correlation: each CP is a copy of the symbol tail N samples later, so the
// phase of sum(cp * conj(tail)) advances by 2*pi*f*N/fs.
//
// The unambiguous range is ±fs/(2N) = ±7.5 kHz — half the subcarrier
// spacing, ample for the residual offset of any real LTE UE after cell
// search.
//
// Only the second half of each CP enters the correlation: the head of a CP
// carries inter-symbol interference from the previous symbol's multipath
// tail, which biases the phase estimate by tens of Hz on dispersive
// channels — enough to matter when a tracking loop corrects by the result.
func EstimateCFO(p ltephy.Params, samples []complex128) float64 {
	n := p.BW.FFTSize() * p.Oversample
	var acc complex128
	for l := 0; l < ltephy.SymbolsPerSubframe; l++ {
		start := ltephy.SymbolStart(p, l)
		cpLen := p.BW.CPLen(l%ltephy.SymbolsPerSlot) * p.Oversample
		if start+cpLen+n > len(samples) {
			break
		}
		// Correlate the ISI-free part of the CP against the tail it copies.
		for i := cpLen / 2; i < cpLen; i++ {
			acc += cmplx.Conj(samples[start+i]) * samples[start+i+n]
		}
	}
	if acc == 0 {
		return 0
	}
	angle := cmplx.Phase(acc)
	return angle * p.SampleRate() / (2 * math.Pi * float64(n))
}

// CFOTrackerConfig parameterizes the closed-loop CFO tracker. Zero values
// select the defaults.
type CFOTrackerConfig struct {
	// LoopGain is the first-order loop's innovation weight: each subframe the
	// estimate moves by LoopGain times the measured residual (default 0.25 —
	// settles in a few subframes yet averages down per-subframe estimator
	// noise).
	LoopGain float64
	// ReacquireThresholdHz flags a subframe as an outlier when the residual
	// after correction exceeds this magnitude (default 1500 Hz: a locked loop
	// tracking realistic drift keeps residuals well under the 15 kHz
	// subcarrier spacing's tenth).
	ReacquireThresholdHz float64
	// ReacquireAfter is the number of consecutive outlier subframes that
	// triggers re-acquisition (default 3). One corrupt subframe — an
	// interference burst — must not reset a healthy loop.
	ReacquireAfter int
}

func (c CFOTrackerConfig) withDefaults() CFOTrackerConfig {
	if c.LoopGain == 0 {
		c.LoopGain = 0.25
	}
	if c.ReacquireThresholdHz == 0 {
		c.ReacquireThresholdHz = 1500
	}
	if c.ReacquireAfter == 0 {
		c.ReacquireAfter = 3
	}
	return c
}

// CFOTracker is a per-subframe closed carrier-recovery loop: it corrects
// each subframe with its current estimate, measures the residual offset via
// CP correlation on the corrected samples, and nudges the estimate by a
// loop-gain fraction of the residual. Slow drift (oscillator temperature
// ramp) is tracked transparently.
//
// Degradation is graceful rather than a hard failure: when the residual
// stays above the outlier threshold for several consecutive subframes the
// loop has lost lock (a frequency jump, or corruption faster than the loop
// bandwidth), and the tracker re-acquires by snapping the full residual into
// the estimate. The caller learns about it from Process's reacquired flag —
// the cue to reset decision-feedback state (e.g. ScatterDemod.Reset) — and
// from the Reacquisitions counter that the resilience sweep reports.
type CFOTracker struct {
	p        ltephy.Params
	cfg      CFOTrackerConfig
	est      float64
	acquired bool // first-subframe acquisition snap done
	streak   int  // consecutive outlier subframes
	reacqs   int
}

// NewCFOTracker builds a tracker starting from an initial estimate of
// initialHz (e.g. a one-shot EstimateCFO during cell search; 0 when the
// search assumes a perfect oscillator).
func NewCFOTracker(p ltephy.Params, initialHz float64, cfg CFOTrackerConfig) *CFOTracker {
	return &CFOTracker{p: p, cfg: cfg.withDefaults(), est: initialHz}
}

// EstimateHz returns the current offset estimate.
func (t *CFOTracker) EstimateHz() float64 { return t.est }

// Reacquisitions returns how many times the loop lost lock and re-acquired.
func (t *CFOTracker) Reacquisitions() int { return t.reacqs }

// Reset returns the tracker to its initial state with estimate initialHz,
// clearing the outlier streak, the re-acquisition count and the acquisition
// snap.
func (t *CFOTracker) Reset(initialHz float64) {
	t.est = initialHz
	t.acquired = false
	t.streak = 0
	t.reacqs = 0
}

// Process corrects one subframe in place with the current estimate (anchored
// at absolute stream position startSample for phase continuity), measures
// the residual offset, and updates the loop. It returns the corrected
// samples and whether this subframe triggered a re-acquisition.
func (t *CFOTracker) Process(samples []complex128, startSample int) ([]complex128, bool) {
	out := CorrectCFO(t.p, samples, t.est, startSample)
	residual := EstimateCFO(t.p, out)
	if !t.acquired {
		// Initial acquisition: snap the full first measurement instead of
		// slewing toward it over many subframes — the loop gain exists to
		// reject estimator noise while tracking, not to slow lock-up. The
		// buffered acquisition subframe is corrected again with the snapped
		// residual so it decodes as cleanly as the tracked ones.
		t.acquired = true
		t.est += residual
		out = CorrectCFO(t.p, out, residual, startSample)
		return out, false
	}
	if math.Abs(residual) > t.cfg.ReacquireThresholdHz {
		t.streak++
		if t.streak >= t.cfg.ReacquireAfter {
			// Lost lock: snap the whole residual (the CP estimator is
			// unambiguous to ±7.5 kHz, so one snap recenters the loop) and
			// start over.
			t.est += residual
			t.streak = 0
			t.reacqs++
			return out, true
		}
		// Outlier: hold the estimate; do not chase a corrupt measurement.
		return out, false
	}
	t.streak = 0
	t.est += t.cfg.LoopGain * residual
	return out, false
}

// CorrectCFO removes a frequency offset from samples in place (mixing by
// -cfoHz), anchored at the absolute stream position startSample so that
// consecutive subframes stay phase-continuous. It returns the samples.
func CorrectCFO(p ltephy.Params, samples []complex128, cfoHz float64, startSample int) []complex128 {
	if cfoHz == 0 {
		return samples
	}
	fs := p.SampleRate()
	phase0 := -2 * math.Pi * cfoHz * float64(startSample) / fs
	return dsp.Mix(samples, -cfoHz, fs, phase0)
}
