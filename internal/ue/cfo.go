package ue

import (
	"math"
	"math/cmplx"

	"lscatter/internal/dsp"
	"lscatter/internal/ltephy"
)

// EstimateCFO estimates the carrier-frequency offset between the receiver's
// local oscillator and the eNodeB, in Hz, from one subframe of samples
// aligned to the subframe boundary. It uses the classic cyclic-prefix
// correlation: each CP is a copy of the symbol tail N samples later, so the
// phase of sum(cp * conj(tail)) advances by 2*pi*f*N/fs.
//
// The unambiguous range is ±fs/(2N) = ±7.5 kHz — half the subcarrier
// spacing, ample for the residual offset of any real LTE UE after cell
// search.
func EstimateCFO(p ltephy.Params, samples []complex128) float64 {
	n := p.BW.FFTSize() * p.Oversample
	var acc complex128
	for l := 0; l < ltephy.SymbolsPerSubframe; l++ {
		start := ltephy.SymbolStart(p, l)
		cpLen := p.BW.CPLen(l%ltephy.SymbolsPerSlot) * p.Oversample
		if start+cpLen+n > len(samples) {
			break
		}
		// Correlate CP against the tail it copies.
		for i := 0; i < cpLen; i++ {
			acc += cmplx.Conj(samples[start+i]) * samples[start+i+n]
		}
	}
	if acc == 0 {
		return 0
	}
	angle := cmplx.Phase(acc)
	return angle * p.SampleRate() / (2 * math.Pi * float64(n))
}

// CorrectCFO removes a frequency offset from samples in place (mixing by
// -cfoHz), anchored at the absolute stream position startSample so that
// consecutive subframes stay phase-continuous. It returns the samples.
func CorrectCFO(p ltephy.Params, samples []complex128, cfoHz float64, startSample int) []complex128 {
	if cfoHz == 0 {
		return samples
	}
	fs := p.SampleRate()
	phase0 := -2 * math.Pi * cfoHz * float64(startSample) / fs
	return dsp.Mix(samples, -cfoHz, fs, phase0)
}
