// Package ue implements the receiver side of LScatter: PSS-based timing
// acquisition, direct-path LTE reception (CRS channel estimation, per-RE
// equalization, transport-block decoding), regeneration of the clean
// excitation waveform, and the backscatter demodulator of §3.3 — extraction
// of the frequency-shifted hybrid band, preamble-based modulation-offset
// search and backscatter-channel estimation, and parallel per-unit phase
// demodulation against the regenerated reference.
package ue

import (
	"math"
	"math/cmplx"
	"sort"

	"lscatter/internal/enodeb"
	"lscatter/internal/ltephy"
	"lscatter/internal/modem"
)

// LTEResult reports one subframe of direct-path LTE reception.
type LTEResult struct {
	// OK is true when the transport-block CRC passed.
	OK bool
	// Payload is the decoded transport block (valid when OK).
	Payload []byte
	// EVM is the post-equalization data-RE error-vector magnitude,
	// measurable only against the re-encoded reference when OK.
	EVM float64
	// NoiseVar is the noise variance estimated from CRS residuals.
	NoiseVar float64
	// MIB is the decoded master information block (subframe 0 only).
	MIB *ltephy.MIB
	// Grid is the reconstructed clean resource grid (nil unless OK):
	// sync + CRS + PBCH + re-encoded PDSCH, control region zeroed.
	Grid *ltephy.Grid
	// RefSamples is the regenerated clean excitation waveform for the
	// subframe (nil unless OK), at the configured oversampling, unit scale.
	RefSamples []complex128
}

// LTEReceiver decodes the direct-path LTE downlink.
type LTEReceiver struct {
	Params ltephy.Params
	Scheme modem.Scheme
	codec  *enodeb.Codec
}

// NewLTEReceiver builds a receiver matched to the eNodeB configuration.
func NewLTEReceiver(p ltephy.Params, scheme modem.Scheme) *LTEReceiver {
	return &LTEReceiver{Params: p, Scheme: scheme, codec: enodeb.NewCodec(p, scheme)}
}

// estimateChannel performs CRS-based channel estimation: per CRS-bearing
// symbol, least-squares estimates at pilot positions linearly interpolated
// across subcarriers; data symbols use the nearest CRS symbol. Returns
// H[l][k] and the CRS-residual noise variance estimate.
func (rx *LTEReceiver) estimateChannel(g *ltephy.Grid, subframe int) ([][]complex128, float64) {
	k := g.K()
	crs := ltephy.CRSForSubframe(rx.Params, subframe)
	// Least-squares pilot estimates, grouped by OFDM symbol. CRS values have
	// unit magnitude, so H = Y * conj(ref).
	bySym := map[int]pilotSlice{}
	for _, rs := range crs {
		y := g.RE[rs.Symbol][rs.Subcarrier]
		bySym[rs.Symbol] = append(bySym[rs.Symbol], pilotEst{k: rs.Subcarrier, h: y * cmplx.Conj(rs.Value)})
	}
	// Linear interpolation across subcarriers per CRS symbol. The symbols
	// are processed in index order: map iteration order would randomize
	// both the float summation of the noise residual below and the
	// nearest-CRS tie-break, breaking the simulator's determinism contract
	// at marginal operating points.
	hBy := map[int][]complex128{}
	crsSyms := make([]int, 0, len(bySym))
	for l := range bySym {
		crsSyms = append(crsSyms, l)
	}
	sort.Ints(crsSyms)
	for _, l := range crsSyms {
		ps := bySym[l]
		sortPilots(ps)
		row := make([]complex128, k)
		for kk := 0; kk < k; kk++ {
			row[kk] = interpPilot(ps, kk)
		}
		hBy[l] = row
	}
	// Noise estimate from half-differences of adjacent pilots (the channel
	// is smooth across one pilot spacing, so the difference is mostly noise;
	// each estimate carries one noise sample, the half-difference has
	// variance noiseVar/2 per pilot pair).
	var resid float64
	var n int
	for _, l := range crsSyms {
		ps := bySym[l]
		for i := 0; i+1 < len(ps); i++ {
			d := (ps[i].h - ps[i+1].h) / 2
			resid += real(d)*real(d) + imag(d)*imag(d)
			n++
		}
	}
	noiseVar := 1e-12
	if n > 0 {
		noiseVar = 2 * resid / float64(n)
	}
	// Fill every symbol with the nearest CRS symbol's estimate.
	h := make([][]complex128, ltephy.SymbolsPerSubframe)
	for l := 0; l < ltephy.SymbolsPerSubframe; l++ {
		best, bestDist := -1, 1<<30
		for _, cl := range crsSyms {
			d := l - cl
			if d < 0 {
				d = -d
			}
			if d < bestDist {
				best, bestDist = cl, d
			}
		}
		h[l] = hBy[best]
	}
	return h, noiseVar
}

// pilotEst is one least-squares channel estimate at a CRS position.
type pilotEst struct {
	k int
	h complex128
}

type pilotSlice = []pilotEst

func sortPilots(ps pilotSlice) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].k < ps[j-1].k; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func interpPilot(ps pilotSlice, k int) complex128 {
	if len(ps) == 0 {
		return 1
	}
	if k <= ps[0].k {
		return ps[0].h
	}
	if k >= ps[len(ps)-1].k {
		return ps[len(ps)-1].h
	}
	for i := 0; i+1 < len(ps); i++ {
		if k >= ps[i].k && k <= ps[i+1].k {
			span := float64(ps[i+1].k - ps[i].k)
			frac := float64(k-ps[i].k) / span
			return ps[i].h*complex(1-frac, 0) + ps[i+1].h*complex(frac, 0)
		}
	}
	return ps[len(ps)-1].h
}

// dataREsEq equalizes the given resource elements with the channel estimate.
func dataREsEq(res [][2]int, g *ltephy.Grid, h [][]complex128) []complex128 {
	out := make([]complex128, len(res))
	for i, re := range res {
		l, k := re[0], re[1]
		hv := h[l][k]
		if hv == 0 {
			hv = 1e-12
		}
		out[i] = g.RE[l][k] / hv
	}
	return out
}

// ReceiveSubframe decodes one subframe of received samples (aligned to the
// subframe boundary) and, on success, regenerates the clean excitation.
func (rx *LTEReceiver) ReceiveSubframe(samples []complex128, subframe int) (*LTEResult, error) {
	g, err := ltephy.Demodulate(rx.Params, samples, subframe)
	if err != nil {
		return nil, err
	}
	h, noiseVar := rx.estimateChannel(g, subframe)

	// Rebuild the reference grid structure to locate PDSCH REs (the PBCH
	// region of subframe 0 is reserved now and filled after MIB decode).
	ref := ltephy.NewGrid(rx.Params, subframe)
	ref.MapSyncAndRef()
	var pbchREs [][2]int
	if subframe == 0 {
		pbchREs = ltephy.PBCHREs(rx.Params)
		ref.MapPBCH(make([]complex128, len(pbchREs)))
	}
	ref.MapControl(make([]complex128, 2*ref.K()))
	dataREs := ref.DataREs()

	// Equalize the PDSCH REs.
	eq := make([]complex128, len(dataREs))
	for i, re := range dataREs {
		l, k := re[0], re[1]
		hv := h[l][k]
		if hv == 0 {
			hv = 1e-12
		}
		eq[i] = g.RE[l][k] / hv
	}
	// Scale noise variance to the equalized domain using mean |H|^2.
	var hp float64
	for _, re := range dataREs {
		hv := h[re[0]][re[1]]
		hp += real(hv)*real(hv) + imag(hv)*imag(hv)
	}
	hp /= float64(len(dataREs))
	eqNoise := noiseVar / math.Max(hp, 1e-18)

	payload, ok := rx.codec.Decode(subframe, eq, eqNoise)
	res := &LTEResult{OK: ok, Payload: payload, NoiseVar: eqNoise}
	if !ok {
		return res, nil
	}
	// Subframe 0 also carries the PBCH: decode the MIB and regenerate the
	// broadcast REs so the excitation reference covers them too.
	if subframe == 0 {
		eqPBCH := make([]complex128, len(pbchREs))
		for i, re := range dataREsEq(pbchREs, g, h) {
			eqPBCH[i] = re
		}
		mib, mibOK := ltephy.DecodePBCH(rx.Params, eqPBCH, eqNoise)
		if !mibOK {
			res.OK = false
			return res, nil
		}
		res.MIB = &mib
		ref.MapPBCH(ltephy.EncodePBCH(rx.Params, mib))
	}
	// Regenerate clean excitation: re-encode and re-map.
	syms, err := rx.codec.Encode(subframe, payload, len(dataREs))
	if err != nil {
		return nil, err
	}
	ref.MapData(syms)
	res.Grid = ref
	// The regenerated reference is identical every time the same downlink
	// subframe is decoded, so route it through the shared waveform cache:
	// replaying a seeded stream (ablations, sweeps, repeated runs) turns
	// the regeneration IFFTs into lookups.
	res.RefSamples = ltephy.SharedCache.Modulate(ref)
	res.EVM = modem.EVM(eq, syms)
	return res, nil
}
