package ue

import (
	"fmt"
	"math"
	"math/cmplx"

	"lscatter/internal/dsp"
	"lscatter/internal/ltephy"
	"lscatter/internal/tag"
)

// ScatterConfig parameterizes the backscatter demodulator.
type ScatterConfig struct {
	// Params must match the waveform.
	Params ltephy.Params
	// Mode must match the tag's switching topology.
	Mode tag.Mode
	// OffsetSearch is the half-range, in basic-timing units, of the
	// modulation-offset search around the nominal window position
	// (§3.3.2). It must cover the tag's worst-case residual timing error.
	OffsetSearch int
	// SmoothBins is the smoothing window (in FFT bins) for the backscatter
	// channel estimate from the preamble. 0 selects the default 15.
	SmoothBins int
	// RefineIters is the number of Eq. 7 refinement passes: each pass
	// reconstructs the band-limited hybrid from the current bit decisions,
	// cancels the inter-unit interference the band-limiting introduces, and
	// re-slices. 0 selects the default 2; set negative to disable.
	RefineIters int
	// TagIDs lists the tag identities this receiver listens for; burst
	// acquisition reports which tag's preamble matched. Empty means the
	// single default tag (ID 0).
	TagIDs []int
}

// DefaultScatterConfig returns the demodulator configuration used in the
// evaluation.
func DefaultScatterConfig(p ltephy.Params) ScatterConfig {
	return ScatterConfig{Params: p, Mode: tag.DSB, OffsetSearch: 64, SmoothBins: 15, RefineIters: 2}
}

// SymbolDecision is the demodulated content of one OFDM symbol.
type SymbolDecision struct {
	// Symbol is the OFDM symbol index within the subframe.
	Symbol int
	// Bits are the sliced backscatter bits.
	Bits []byte
	// Quality is the mean absolute decision metric (higher = cleaner).
	Quality float64
}

// ScatterResult is the demodulation outcome for one subframe.
type ScatterResult struct {
	// Synced reports whether a preamble was found (burst subframes only).
	Synced bool
	// OffsetUnits is the detected modulation offset in basic-timing units
	// relative to the nominal window start.
	OffsetUnits int
	// TagID identifies which configured tag's preamble matched.
	TagID int
	// PreambleCorr is the normalized preamble correlation (0..1).
	PreambleCorr float64
	// Decisions holds per-symbol sliced bits, excluding the preamble symbol.
	Decisions []SymbolDecision
}

// ScatterDemod demodulates the LScatter hybrid band. It holds burst state:
// the modulation offset and backscatter channel estimated from the most
// recent preamble are applied to subsequent subframes. A ScatterDemod
// processes one stream and is not safe for concurrent use — besides the
// burst state it owns per-call scratch buffers, so the steady-state receive
// path allocates only what it returns.
type ScatterDemod struct {
	cfg  ScatterConfig
	n    int // oversampled FFT size (M * N)
	nNom int // nominal FFT size N
	k    int // occupied subcarriers
	plan *dsp.Plan
	// burst state
	haveSync bool
	offset   int          // modulation offset in basic-timing units
	subOff   int          // sub-unit offset in oversampled samples [0, Oversample)
	chanEst  []complex128 // per-bin equalizer over clean bins (length n)
	cleanBin []bool       // usable hybrid observation bins
	// precomputed state (read-only after construction)
	wave    []complex128         // downshifted phase-0 switch waveform per unit
	kTime   []complex128         // IFFT of the clean-bin indicator (projection kernel)
	preBank *dsp.CorrelatorBank  // preamble sign sequences, one per configured tag
	tagIDs  []int                // resolved tag list (defaults to {0})
	// scratch (reused across calls; never escapes)
	scrZ       []complex128 // downshifted subframe
	scrHyb     []complex128
	scrSpec    []complex128
	scrRef     []complex128
	scrExpect  []complex128
	scrResid   []complex128
	scrMetrics []complex128
	scrCorr    [][]complex128
	scrAbsM    []float64
	scrTU      []float64
	scrAlpha   []float64
}

// NewScatterDemod builds the demodulator.
func NewScatterDemod(cfg ScatterConfig) *ScatterDemod {
	if cfg.SmoothBins == 0 {
		cfg.SmoothBins = 15
	}
	if cfg.OffsetSearch == 0 {
		cfg.OffsetSearch = 64
	}
	if cfg.RefineIters == 0 {
		cfg.RefineIters = 2
	} else if cfg.RefineIters < 0 {
		cfg.RefineIters = 0
	}
	p := cfg.Params
	n := p.BW.FFTSize() * p.Oversample
	d := &ScatterDemod{
		cfg:  cfg,
		n:    n,
		nNom: p.BW.FFTSize(),
		k:    p.BW.Subcarriers(),
		plan: dsp.PlanFor(n),
	}
	d.cleanBin = d.computeCleanBins()
	d.wave = d.refWaveUnit()
	// The clean-bin projection kernel only depends on the bin mask, so the
	// refinement stage reuses one IFFT forever.
	kernel := make([]complex128, d.n)
	for b := range kernel {
		if d.cleanBin[b] {
			kernel[b] = 1
		}
	}
	d.kTime = make([]complex128, d.n)
	d.plan.Inverse(d.kTime, kernel)
	// Preamble matched filters: the offset search is a cross-correlation of
	// the per-unit metric stream against each tag's ±1 sign sequence, served
	// by the batch engine with spectra precomputed here.
	d.tagIDs = cfg.TagIDs
	if len(d.tagIDs) == 0 {
		d.tagIDs = []int{0}
	}
	nBits := p.UsefulModulationUnits()
	refs := make([][]complex128, len(d.tagIDs))
	for t, id := range d.tagIDs {
		signs := make([]complex128, nBits)
		for i, b := range tag.PreambleFor(id, nBits) {
			if b == 0 {
				signs[i] = -1 // bit 0 -> phase pi
			} else {
				signs[i] = 1
			}
		}
		refs[t] = signs
	}
	d.preBank = dsp.NewCorrelatorBank(refs)
	// Scratch sized once: every per-subframe buffer below is reused.
	d.scrZ = make([]complex128, p.Oversample*p.BW.SamplesPerSubframe())
	d.scrHyb = make([]complex128, d.n)
	d.scrSpec = make([]complex128, d.n)
	d.scrRef = make([]complex128, d.n)
	d.scrExpect = make([]complex128, d.n)
	d.scrResid = make([]complex128, d.n)
	d.scrMetrics = make([]complex128, d.nNom)
	d.scrCorr = make([][]complex128, len(d.tagIDs))
	d.scrAbsM = make([]float64, d.nNom)
	d.scrTU = make([]float64, d.nNom)
	d.scrAlpha = make([]float64, d.nNom)
	return d
}

// computeCleanBins marks the FFT bins (after downshift by +1/Ts) that carry
// only hybrid energy. Contaminated regions: the direct LTE path (shifted to
// -N), the DSB image (around ±2N after downshift) and the aliased third
// harmonic (lands on -N at 4x oversampling, already excluded).
func (d *ScatterDemod) computeCleanBins() []bool {
	n, nn, k := d.n, d.nNom, d.k
	guard := k/8 + 8
	clean := make([]bool, n)
	for b := 0; b < n; b++ {
		f := b
		if f > n/2 {
			f -= n
		}
		// Hybrid content concentrates within ±(k/2 + nn/2); beyond that
		// only noise — keep bins there too, they are harmless after
		// channel-estimate masking, but excluding them improves SNR.
		if f < -(k/2+nn/2) || f > k/2+nn/2 {
			continue
		}
		// Direct path after downshift sits around -nn.
		if f >= -nn-k/2-guard && f <= -nn+k/2+guard {
			continue
		}
		// DSB image region around ±2*nn (only inside range when Oversample
		// is small).
		if f >= 2*nn-k/2-guard || f <= -2*nn+k/2+guard {
			continue
		}
		clean[b] = true
	}
	return clean
}

// CleanBinCount returns how many observation bins the demodulator uses.
func (d *ScatterDemod) CleanBinCount() int {
	c := 0
	for _, b := range d.cleanBin {
		if b {
			c++
		}
	}
	return c
}

// Reset clears burst state (sync and channel estimate).
func (d *ScatterDemod) Reset() { d.haveSync = false; d.chanEst = nil }

// checkInputs validates buffer lengths and the subframe index so API misuse
// fails with a message instead of an index panic deep in the DSP.
func (d *ScatterDemod) checkInputs(rx, refSamples []complex128, subframe int) {
	p := d.cfg.Params
	need := p.Oversample * p.BW.SamplesPerSubframe()
	if len(rx) != need {
		panic(fmt.Sprintf("ue: rx holds %d samples, a %s subframe needs %d", len(rx), p.BW, need))
	}
	if len(refSamples) != need {
		panic(fmt.Sprintf("ue: reference holds %d samples, want %d", len(refSamples), need))
	}
	if subframe < 0 || subframe >= ltephy.SubframesPerFrame {
		panic(fmt.Sprintf("ue: subframe %d out of [0,10)", subframe))
	}
}

// downshift fills the z scratch with x multiplied by
// exp(-j*2*pi*n/Oversample): it moves the upper backscatter sideband at
// +1/Ts to baseband. startSample anchors the mixer phase to the absolute
// stream position.
func (d *ScatterDemod) downshift(x []complex128, startSample int) []complex128 {
	ov := d.cfg.Params.Oversample
	out := d.scrZ[:len(x)]
	for i := range x {
		ph := -2 * math.Pi * float64((startSample+i)%ov) / float64(ov)
		out[i] = x[i] * cmplx.Exp(complex(0, ph))
	}
	return out
}

// symbolSpectrum FFTs the useful window of symbol l from the downshifted
// subframe into dst (length n) and returns it.
func (d *ScatterDemod) symbolSpectrum(dst, z []complex128, l int) []complex128 {
	start := ltephy.UsefulStart(d.cfg.Params, l)
	d.plan.Forward(dst, z[start:start+d.n])
	return dst
}

// refWaveUnit computes the downshifted phase-0 switch waveform over one
// unit: wave[m][0] * exp(-j*2*pi*m/ov). It runs once at construction; the
// hot paths read the cached d.wave.
func (d *ScatterDemod) refWaveUnit() []complex128 {
	ov := d.cfg.Params.Oversample
	w := make([]complex128, ov)
	for m := 0; m < ov; m++ {
		var base complex128
		switch d.cfg.Mode {
		case tag.DSB:
			if m < ov/2 {
				base = 1
			} else {
				base = -1
			}
		case tag.SSB:
			a := 2 * math.Pi * float64(m) / float64(ov)
			base = complex(math.Cos(a), math.Sin(a))
		}
		ph := -2 * math.Pi * float64(m) / float64(ov)
		w[m] = base * cmplx.Exp(complex(0, ph))
	}
	return w
}

// hybridTime reconstructs the time-domain hybrid estimate for symbol l into
// dst (length n): FFT -> keep clean bins -> optional equalization -> IFFT.
// The result approximates g * x_ref[n] * s[n] over the useful window.
func (d *ScatterDemod) hybridTime(dst, z []complex128, l int, equalize bool) []complex128 {
	spec := d.symbolSpectrum(d.scrSpec, z, l)
	for b := range spec {
		if !d.cleanBin[b] {
			spec[b] = 0
			continue
		}
		if equalize && d.chanEst != nil {
			g := d.chanEst[b]
			if g != 0 {
				spec[b] /= g
			} else {
				spec[b] = 0
			}
		}
	}
	d.plan.Inverse(dst, spec)
	return dst
}

// unitMetrics computes the per-unit complex decision metrics for symbol l at
// the given sub-unit sample offset: metric[u] = sum over the unit's samples
// [u*ov+sub, u*ov+sub+ov) of hybrid * conj(x_ref * wave). A positive real
// part means phase 0 (bit '1' in the paper's convention), negative means
// phase pi (bit '0').
func (d *ScatterDemod) unitMetrics(hyb, refSamples []complex128, l, sub int) []complex128 {
	p := d.cfg.Params
	ov := p.Oversample
	refStart := ltephy.UsefulStart(p, l)
	wave := d.wave
	units := d.nNom
	out := d.scrMetrics[:units]
	for u := 0; u < units; u++ {
		var acc complex128
		for m := 0; m < ov; m++ {
			i := u*ov + sub + m
			if i >= d.n {
				break
			}
			ref := refSamples[refStart+i] * wave[m]
			acc += hyb[i] * cmplx.Conj(ref)
		}
		out[u] = acc
	}
	return out
}

// windowStartUnitInSymbol mirrors the tag's nominal window placement: the
// useful-modulation window centered in the useful symbol. Expressed in units
// from the start of the useful part.
func (d *ScatterDemod) windowStartUnitInSymbol() int {
	return (d.nNom - d.cfg.Params.UsefulModulationUnits()) / 2
}

// AcquireBurst processes a burst-opening subframe: it locates the preamble
// in the first modulated symbol, estimates the modulation offset and the
// per-bin backscatter channel, and stores both for subsequent subframes.
// rx must hold one subframe of received samples aligned to the boundary;
// refSamples is the regenerated clean excitation from the LTE receiver.
func (d *ScatterDemod) AcquireBurst(rx, refSamples []complex128, subframe, startSample int) *ScatterResult {
	d.checkInputs(rx, refSamples, subframe)
	return d.acquireBurstZ(d.downshift(rx, startSample), refSamples, subframe)
}

// acquireBurstZ is the lane-independent core of AcquireBurst, operating on
// the already-downshifted subframe z (both the float and fixed-point entry
// points land here).
func (d *ScatterDemod) acquireBurstZ(z, refSamples []complex128, subframe int) *ScatterResult {
	p := d.cfg.Params
	syms := modulatedSymbols(subframe)
	preSym := syms[0]
	hyb := d.hybridTime(d.scrHyb, z, preSym, false)

	// Offset search at sample granularity: the tag's clock may sit anywhere
	// within a basic-timing unit, so the search sweeps the configured tag
	// identities, the unit offset (§3.3.2's modulation offset) and the
	// sub-unit sample offset. The common phase is unknown at this point, so
	// correlate on the complex metric and take the magnitude. The sweep over
	// unit offsets against every tag's ±1 sign sequence is exactly a batch
	// cross-correlation, served by the precomputed preamble bank; the
	// normalization sum of |metric| reuses magnitudes computed once per
	// sub-unit offset instead of once per candidate window.
	nBits := d.preBank.RefLen()
	tagIDs := d.tagIDs
	nominal := d.windowStartUnitInSymbol()
	lo := nominal - d.cfg.OffsetSearch
	if lo < 0 {
		lo = 0
	}
	hi := nominal + d.cfg.OffsetSearch
	if max := d.nNom - nBits; hi > max {
		hi = max
	}
	bestOff, bestSub, bestID, bestVal := 0, 0, tagIDs[0], -1.0
	for sub := 0; sub < p.Oversample && lo <= hi; sub++ {
		metrics := d.unitMetrics(hyb, refSamples, preSym, sub)
		absM := d.scrAbsM[:len(metrics)]
		for i, m := range metrics {
			absM[i] = cmplx.Abs(m)
		}
		corrs := d.preBank.CorrelateAll(d.scrCorr, metrics[lo:hi+nBits])
		d.scrCorr = corrs
		for w0 := lo; w0 <= hi; w0++ {
			var norm float64
			for i := 0; i < nBits; i++ {
				norm += absM[w0+i]
			}
			if norm == 0 {
				continue
			}
			for t := range tagIDs {
				if v := cmplx.Abs(corrs[t][w0-lo]) / norm; v > bestVal {
					bestVal, bestOff, bestSub, bestID = v, w0-nominal, sub, tagIDs[t]
				}
			}
		}
	}
	res := &ScatterResult{OffsetUnits: bestOff, TagID: bestID, PreambleCorr: bestVal}
	if bestVal < 0.5 {
		d.haveSync = false
		return res
	}
	res.Synced = true
	d.haveSync = true
	d.offset = bestOff
	d.subOff = bestSub

	// Channel estimation over clean bins: G(b) = Y(b) / X_pre(b), where
	// X_pre is the spectrum of the known preamble-modulated reference,
	// smoothed across bins.
	d.chanEst = d.estimateChannel(z, refSamples, preSym, tag.PreambleFor(bestID, nBits))
	return res
}

// buildExpect fills expect with the model hybrid x_ref * wave * s over the
// useful window of symbol l, honoring the burst's unit and sub-unit offsets.
// sign(u) returns the switch sign of window-relative unit u.
func (d *ScatterDemod) buildExpect(expect, refSamples []complex128, l int, sign func(u int) float64) {
	p := d.cfg.Params
	ov := p.Oversample
	refStart := ltephy.UsefulStart(p, l)
	wave := d.wave
	for rel := 0; rel < d.n; rel++ {
		local := rel - d.subOff
		u := local / ov
		m := local % ov
		if m < 0 {
			m += ov
			u--
		}
		expect[rel] = refSamples[refStart+rel] * wave[m] * complex(sign(u), 0)
	}
}

// estimateChannel builds the per-bin backscatter channel estimate from the
// preamble symbol.
func (d *ScatterDemod) estimateChannel(z, refSamples []complex128, preSym int, pre []byte) []complex128 {
	// Build the expected downshifted hybrid: ref * wave * s(preamble, offset).
	// The offset search is over by now, so its hyb scratch is free to hold
	// the received spectrum.
	expect := d.scrExpect
	w0 := d.windowStartUnitInSymbol() + d.offset
	d.buildExpect(expect, refSamples, preSym, func(u int) float64 {
		if idx := u - w0; idx >= 0 && idx < len(pre) && pre[idx] == 0 {
			return -1
		}
		return 1
	})
	expSpec := d.scrSpec
	d.plan.Forward(expSpec, expect)
	got := d.symbolSpectrum(d.scrHyb, z, preSym)
	// Energy-weighted local least squares (maximum-ratio style): bins where
	// the expected spectrum is strong dominate the estimate, so spectral
	// nulls of the excitation do not inject noise.
	sm := d.cfg.SmoothBins
	out := make([]complex128, d.n)
	for b := range out {
		if !d.cleanBin[b] {
			continue
		}
		var num complex128
		var den float64
		for j := -sm; j <= sm; j++ {
			bb := (b + j + d.n) % d.n
			if !d.cleanBin[bb] {
				continue
			}
			e := expSpec[bb]
			num += got[bb] * cmplx.Conj(e)
			den += real(e)*real(e) + imag(e)*imag(e)
		}
		if den > 0 {
			out[b] = num / complex(den, 0)
		}
	}
	return out
}

// modulatedSymbols mirrors the tag's schedule.
func modulatedSymbols(subframe int) []int { return tag.DataSymbols(subframe) }

// DemodSubframe demodulates all data symbols of a subframe using the burst
// state from the last AcquireBurst. skipFirst drops the first modulated
// symbol (the preamble) — set it on burst-opening subframes.
func (d *ScatterDemod) DemodSubframe(rx, refSamples []complex128, subframe, startSample int, skipFirst bool) *ScatterResult {
	if !d.haveSync {
		return &ScatterResult{Synced: false, OffsetUnits: d.offset}
	}
	d.checkInputs(rx, refSamples, subframe)
	return d.demodSubframeZ(d.downshift(rx, startSample), refSamples, subframe, skipFirst)
}

// demodSubframeZ is the lane-independent core of DemodSubframe (the caller
// has checked sync and inputs and performed the downshift).
func (d *ScatterDemod) demodSubframeZ(z, refSamples []complex128, subframe int, skipFirst bool) *ScatterResult {
	res := &ScatterResult{Synced: d.haveSync, OffsetUnits: d.offset}
	p := d.cfg.Params
	nBits := p.UsefulModulationUnits()
	w0 := d.windowStartUnitInSymbol() + d.offset
	syms := modulatedSymbols(subframe)
	if skipFirst {
		syms = syms[1:]
	}
	for _, l := range syms {
		hyb := d.hybridTime(d.scrHyb, z, l, true)
		metrics := d.unitMetrics(hyb, refSamples, l, d.subOff)
		bitsOut := make([]byte, nBits)
		for i := 0; i < nBits; i++ {
			if real(metrics[w0+i]) >= 0 {
				bitsOut[i] = 1 // phase 0 -> data '1'
			} else {
				bitsOut[i] = 0
			}
		}
		q := d.refine(hyb, refSamples, l, w0, bitsOut)
		res.Decisions = append(res.Decisions, SymbolDecision{
			Symbol:  l,
			Bits:    bitsOut,
			Quality: q,
		})
	}
	return res
}

// refine runs the Eq. 7 least-squares minimization: given initial bit
// decisions it reconstructs the band-limited hybrid F^-1(mask * F(x*w*s)),
// subtracts it to expose the inter-unit interference created by the clean-bin
// band limitation, and re-slices each unit with its own contribution restored
// (the band-limiter's time-domain diagonal is cleanBins/n exactly). Bits are
// updated in place; the mean normalized decision margin is returned.
func (d *ScatterDemod) refine(hyb, refSamples []complex128, l, w0 int, bitsOut []byte) float64 {
	p := d.cfg.Params
	ov := p.Oversample
	refStart := ltephy.UsefulStart(p, l)
	wave := d.wave
	sub := d.subOff
	// Reference r[rel] = x_ref * wave over the useful window at the burst's
	// sub-unit alignment, and per-unit energies T_u over the unit's samples
	// [u*ov+sub, u*ov+sub+ov).
	ref := d.scrRef
	for rel := 0; rel < d.n; rel++ {
		local := rel - sub
		m := local % ov
		if m < 0 {
			m += ov
		}
		ref[rel] = refSamples[refStart+rel] * wave[m]
	}
	sampleOf := func(u, m int) int { return u*ov + sub + m }
	tU := d.scrTU[:d.nNom]
	for u := 0; u < d.nNom; u++ {
		var e float64
		for m := 0; m < ov; m++ {
			i := sampleOf(u, m)
			if i >= d.n {
				break
			}
			v := ref[i]
			e += real(v)*real(v) + imag(v)*imag(v)
		}
		tU[u] = e
	}
	// Exact own-unit retained energy under the clean-bin projection B:
	// alpha_u = sum_{m,m' in u} kappa[m-m'] ref[m'] conj(ref[m]), with
	// kappa = IFFT of the clean-bin indicator (the projection's kernel,
	// precomputed at construction).
	kTime := d.kTime
	alpha := d.scrAlpha[:d.nNom]
	for u := 0; u < d.nNom; u++ {
		var acc complex128
		for m := 0; m < ov; m++ {
			for mp := 0; mp < ov; mp++ {
				im, imp := sampleOf(u, m), sampleOf(u, mp)
				if im >= d.n || imp >= d.n {
					continue
				}
				kv := kTime[((m-mp)%d.n+d.n)%d.n]
				acc += kv * ref[imp] * cmplx.Conj(ref[im])
			}
		}
		alpha[u] = real(acc)
	}
	kappa0 := float64(d.CleanBinCount()) / float64(d.n)
	// Initial residual e = hyb - B(ref * s) with the starting decisions
	// (idle units carry s = +1).
	expect := d.scrExpect
	spec := d.scrSpec
	d.buildExpect(expect, refSamples, l, func(u int) float64 {
		if i := u - w0; i >= 0 && i < len(bitsOut) && bitsOut[i] == 0 {
			return -1
		}
		return 1
	})
	d.plan.Forward(spec, expect)
	for b := range spec {
		if !d.cleanBin[b] {
			spec[b] = 0
		}
	}
	d.plan.Inverse(expect, spec)
	e := d.scrResid
	for i := range e {
		e[i] = hyb[i] - expect[i]
	}
	// corrOf is Re<e, a_u> for the unit's band-limited contribution a_u
	// (e lies in the projection subspace, so <e, B a_u> = <e, a_u>).
	corrOf := func(u int) float64 {
		var acc complex128
		for m := 0; m < ov; m++ {
			idx := sampleOf(u, m)
			if idx >= d.n {
				break
			}
			acc += e[idx] * cmplx.Conj(ref[idx])
		}
		return real(acc)
	}
	signOf := func(i int) float64 {
		if bitsOut[i] == 0 {
			return -1
		}
		return 1
	}
	// applyFlip updates bits and the residual for a sign change of unit
	// w0+i: expect changes by -2*sOld*B(a_u), so e gains +2*sOld*B(a_u).
	applyFlip := func(i int) {
		u := w0 + i
		sOld := signOf(i)
		if bitsOut[i] == 0 {
			bitsOut[i] = 1
		} else {
			bitsOut[i] = 0
		}
		for m := 0; m < ov; m++ {
			src := sampleOf(u, m)
			if src >= d.n {
				break
			}
			v := complex(2*sOld, 0) * ref[src]
			for rel := 0; rel < d.n; rel++ {
				e[rel] += kTime[((rel-src)%d.n+d.n)%d.n] * v
			}
		}
	}
	// beta is the cross term Re<B a_i, B a_j> between two units.
	beta := func(ui, uj int) float64 {
		var acc complex128
		for m := 0; m < ov; m++ {
			im := sampleOf(ui, m)
			if im >= d.n {
				break
			}
			for mp := 0; mp < ov; mp++ {
				imp := sampleOf(uj, mp)
				if imp >= d.n {
					break
				}
				acc += cmplx.Conj(ref[im]) * kTime[((im-imp)%d.n+d.n)%d.n] * ref[imp]
			}
		}
		return real(acc)
	}
	// Coordinate descent on the Eq. 7 objective, with exact adjacent-pair
	// moves to escape the pairwise local minima that single flips cannot
	// leave (two neighboring low-energy units interfering through the
	// band-limiting kernel). Every accepted move strictly decreases the
	// residual energy, so the sweeps cannot oscillate.
	var quality float64
	for it := 0; it < maxIntOf(d.cfg.RefineIters, 1); it++ {
		quality = 0
		flips := 0
		for i := range bitsOut {
			u := w0 + i
			mu := corrOf(u) + signOf(i)*alpha[u]
			if d.cfg.RefineIters > 0 {
				want := byte(0)
				if mu >= 0 {
					want = 1
				}
				if want != bitsOut[i] {
					applyFlip(i)
					flips++
				}
			}
			if t := kappa0 * tU[u]; t > 0 {
				quality += math.Abs(mu) / t
			}
		}
		quality /= float64(len(bitsOut))
		if d.cfg.RefineIters == 0 {
			break
		}
		// Adjacent-pair pass: for each pair evaluate the exact energy change
		// of the three alternative sign combinations via the quadratic form
		// dE = -2 di Re<e,a_i> - 2 dj Re<e,a_j> + di^2 alpha_i + dj^2 alpha_j
		//      + 2 di dj beta_ij, with di = sNew - sCur in {0, ±2}.
		for i := 0; i+1 < len(bitsOut); i++ {
			ui, uj := w0+i, w0+i+1
			ci, cj := corrOf(ui), corrOf(uj)
			b := beta(ui, uj)
			si, sj := signOf(i), signOf(i+1)
			bestDE, bestMove := -1e-9*(tU[ui]+tU[uj]+1e-30), -1
			for move := 1; move < 4; move++ {
				di, dj := 0.0, 0.0
				if move&1 != 0 {
					di = -2 * si
				}
				if move&2 != 0 {
					dj = -2 * sj
				}
				dE := -2*di*ci - 2*dj*cj + di*di*alpha[ui] + dj*dj*alpha[uj] + 2*di*dj*b
				if dE < bestDE {
					bestDE, bestMove = dE, move
				}
			}
			if bestMove > 0 {
				if bestMove&1 != 0 {
					applyFlip(i)
				}
				if bestMove&2 != 0 {
					applyFlip(i + 1)
				}
				flips++
			}
		}
		if flips == 0 {
			break
		}
	}
	return quality
}

func maxIntOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}
