package ue

import (
	"testing"

	"lscatter/internal/bits"
	"lscatter/internal/channel"
	"lscatter/internal/enodeb"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
	"lscatter/internal/tag"
)

// stream produces a raw sample stream from a cell, with a random-ish prefix
// of noise so timing is unknown, starting at subframe startSF.
func searchStream(t *testing.T, cellID, prefix, subframes int, noiseW float64, seed uint64) ([]complex128, ltephy.Params) {
	t.Helper()
	p := ltephy.DefaultParams(ltephy.BW1_4)
	p.CellID = cellID
	cfg := enodeb.Config{Params: p, Scheme: enodeb.DefaultConfig(ltephy.BW1_4).Scheme, TxPowerDBm: 10, Seed: seed}
	enb := enodeb.New(cfg)
	r := rng.New(seed + 1)
	out := make([]complex128, prefix)
	channel.AWGN(r, out, 1e-6)
	for i := 0; i < subframes; i++ {
		out = append(out, enb.NextSubframe().Samples...)
	}
	if noiseW > 0 {
		channel.AWGN(r, out, noiseW)
	}
	return out, p
}

func TestCellSearchFindsIdentityAndTiming(t *testing.T) {
	for _, cellID := range []int{0, 7, 151, 503} {
		prefix := 1000 + int(cellID)*13
		stream, p := searchStream(t, cellID, prefix, 12, 0, uint64(cellID)+5)
		res, err := CellSearch(p.BW, p.Oversample, stream)
		if err != nil {
			t.Fatalf("cell %d: %v", cellID, err)
		}
		if res.CellID != cellID {
			t.Fatalf("cell %d detected as %d", cellID, res.CellID)
		}
		// Any PSS of the stream is acceptable (they repeat every half
		// frame); timing must land exactly on one, with a consistent
		// half-frame resolution and subframe boundary.
		firstPSS := prefix + ltephy.UsefulStart(p, ltephy.PSSSymbolIndex)
		halfFrame := 5 * p.Oversample * p.BW.SamplesPerSubframe()
		diff := res.PSSSample - firstPSS
		if diff < 0 || diff%halfFrame != 0 {
			t.Fatalf("cell %d: PSS at %d not on the PSS lattice (first %d, period %d)",
				cellID, res.PSSSample, firstPSS, halfFrame)
		}
		wantSF := 0
		if (diff/halfFrame)%2 == 1 {
			wantSF = 5
		}
		if res.Subframe != wantSF {
			t.Fatalf("cell %d: half-frame resolved as subframe %d, want %d", cellID, res.Subframe, wantSF)
		}
		if res.SubframeStart != res.PSSSample-ltephy.UsefulStart(p, ltephy.PSSSymbolIndex) {
			t.Fatalf("cell %d: inconsistent subframe boundary", cellID)
		}
	}
}

func TestCellSearchResolvesHalfFrame(t *testing.T) {
	// Stream starting at subframe 5: the first PSS belongs to subframe 5
	// and the SSS must say so.
	p := ltephy.DefaultParams(ltephy.BW1_4)
	p.CellID = 77
	cfg := enodeb.Config{Params: p, Scheme: enodeb.DefaultConfig(ltephy.BW1_4).Scheme, TxPowerDBm: 10, Seed: 9}
	enb := enodeb.New(cfg)
	// Skip subframes 0..4 so the stream opens at subframe 5.
	for i := 0; i < 5; i++ {
		enb.NextSubframe()
	}
	var stream []complex128
	for i := 0; i < 7; i++ {
		stream = append(stream, enb.NextSubframe().Samples...)
	}
	res, err := CellSearch(p.BW, p.Oversample, stream)
	if err != nil {
		t.Fatal(err)
	}
	if res.CellID != 77 {
		t.Fatalf("cell detected as %d", res.CellID)
	}
	if res.Subframe != 5 {
		t.Fatalf("half-frame resolved as %d, want 5", res.Subframe)
	}
}

func TestCellSearchUnderNoise(t *testing.T) {
	stream, p := searchStream(t, 301, 2000, 12, 0.001, 11) // 10 dB SNR
	res, err := CellSearch(p.BW, p.Oversample, stream)
	if err != nil {
		t.Fatal(err)
	}
	if res.CellID != 301 {
		t.Fatalf("noisy search found cell %d, want 301", res.CellID)
	}
	if res.SSSMetric < 1.2 {
		t.Fatalf("SSS decision margin %v too small", res.SSSMetric)
	}
}

func TestCellSearchRejectsNoiseOnly(t *testing.T) {
	r := rng.New(13)
	stream := make([]complex128, 100000)
	channel.AWGN(r, stream, 0.01)
	p := ltephy.DefaultParams(ltephy.BW1_4)
	if res, err := CellSearch(p.BW, p.Oversample, stream); err == nil {
		t.Fatalf("cell search 'found' cell %d in pure noise (corr %v)", res.CellID, res.PSSCorr)
	}
}

func TestCellSearchTooShort(t *testing.T) {
	p := ltephy.DefaultParams(ltephy.BW1_4)
	if _, err := CellSearch(p.BW, p.Oversample, make([]complex128, 100)); err == nil {
		t.Fatal("short stream accepted")
	}
}

// TestBlindAcquisitionToBackscatter is the full cold-start story: the UE
// knows only the bandwidth, finds the cell and frame timing blind, then
// receives LTE and demodulates the tag.
func TestBlindAcquisitionToBackscatter(t *testing.T) {
	p := ltephy.DefaultParams(ltephy.BW1_4)
	p.CellID = 123
	cfg := enodeb.Config{Params: p, Scheme: enodeb.DefaultConfig(ltephy.BW1_4).Scheme, TxPowerDBm: 10, Seed: 21}
	enb := enodeb.New(cfg)
	mod := tag.NewModulator(tag.ModConfig{Params: p, TimingErrorUnits: 2, SampleOffset: 1})
	mod.QueueBits(rng.New(3).Bits(make([]byte, 60*mod.PerSymbolBits())))

	// Build a composite stream with an unknown prefix.
	r := rng.New(22)
	prefix := 3777
	stream := make([]complex128, prefix)
	channel.AWGN(r, stream, 1e-9)
	type sfInfo struct {
		index int
		recs  []tag.SymbolRecord
	}
	var infos []sfInfo
	for i := 0; i < 3; i++ {
		sf := enb.NextSubframe()
		burst := sf.Index == 0 || sf.Index == 5
		reflected, recs := mod.ModulateSubframe(sf.Samples, sf.Index, burst)
		composite := make([]complex128, len(sf.Samples))
		for j := range composite {
			composite[j] = sf.Samples[j]*1e-2 + reflected[j]*3e-4
		}
		stream = append(stream, composite...)
		infos = append(infos, sfInfo{index: sf.Index, recs: recs})
	}

	// Blind acquisition.
	res, err := CellSearch(p.BW, p.Oversample, stream)
	if err != nil {
		t.Fatal(err)
	}
	if res.CellID != 123 || res.SubframeStart != prefix || res.Subframe != 0 {
		t.Fatalf("acquisition wrong: %+v (want cell 123 at %d)", res, prefix)
	}

	// Receive from the found boundary with the found identity.
	rxP := p
	rxP.CellID = res.CellID
	lteRx := NewLTEReceiver(rxP, cfg.Scheme)
	sc := NewScatterDemod(DefaultScatterConfig(rxP))
	sfLen := p.Oversample * p.BW.SamplesPerSubframe()
	errs, total := 0, 0
	for i, info := range infos {
		start := res.SubframeStart + i*sfLen
		buf := stream[start : start+sfLen]
		lte, err := lteRx.ReceiveSubframe(buf, info.index)
		if err != nil || !lte.OK {
			t.Fatalf("subframe %d: LTE decode failed after blind acquisition", i)
		}
		var sres *ScatterResult
		if info.index == 0 || info.index == 5 {
			sres = sc.AcquireBurst(buf, lte.RefSamples, info.index, start)
			if !sres.Synced {
				t.Fatal("no preamble after blind acquisition")
			}
			d := sc.DemodSubframe(buf, lte.RefSamples, info.index, start, true)
			sres.Decisions = d.Decisions
		} else {
			sres = sc.DemodSubframe(buf, lte.RefSamples, info.index, start, false)
		}
		byBits := map[int][]byte{}
		for _, rec := range info.recs {
			if rec.Bits != nil && !rec.IsPreamble {
				byBits[rec.Symbol] = rec.Bits
			}
		}
		for _, dec := range sres.Decisions {
			if want, ok := byBits[dec.Symbol]; ok {
				errs += bits.CountDiff(dec.Bits, want)
				total += len(want)
			}
		}
	}
	if total == 0 {
		t.Fatal("no bits compared")
	}
	if errs != 0 {
		t.Fatalf("%d/%d errors after blind acquisition", errs, total)
	}
}
