package ue

import (
	"math"
	"testing"

	"lscatter/internal/bits"
	"lscatter/internal/channel"
	"lscatter/internal/dsp"
	"lscatter/internal/enodeb"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
	"lscatter/internal/tag"
)

// chain wires eNodeB -> tag -> two-hop channel -> UE for tests.
type chain struct {
	enb     *enodeb.ENodeB
	mod     *tag.Modulator
	lteRx   *LTEReceiver
	scatter *ScatterDemod
	r       *rng.Source

	directGainDB  float64
	scatterGainDB float64
	noiseW        float64
	directMP      *channel.Multipath
	scatterMP     *channel.Multipath
	startSample   int
}

func newChain(t testing.TB, bw ltephy.Bandwidth, timingErr, sampleOff int) *chain {
	t.Helper()
	cfg := enodeb.DefaultConfig(bw)
	c := &chain{
		enb: enodeb.New(cfg),
		mod: tag.NewModulator(tag.ModConfig{
			Params:           cfg.Params,
			TimingErrorUnits: timingErr,
			SampleOffset:     sampleOff,
		}),
		lteRx:         NewLTEReceiver(cfg.Params, cfg.Scheme),
		scatter:       NewScatterDemod(DefaultScatterConfig(cfg.Params)),
		r:             rng.New(99),
		directGainDB:  -40,
		scatterGainDB: -70,
	}
	return c
}

// step runs one subframe through the chain and returns the tag records, the
// LTE result and the scatter result.
func (c *chain) step(t testing.TB, burst bool) ([]tag.SymbolRecord, *LTEResult, *ScatterResult) {
	t.Helper()
	sf := c.enb.NextSubframe()
	reflected, recs := c.mod.ModulateSubframe(sf.Samples, sf.Index, burst)

	direct := applyGain(sf.Samples, c.directGainDB)
	if c.directMP != nil {
		direct = c.directMP.Apply(direct)
	}
	scat := applyGain(reflected, c.scatterGainDB)
	if c.scatterMP != nil {
		scat = c.scatterMP.Apply(scat)
	}
	rx := channel.Combine(c.r, c.noiseW, direct, scat)

	lte, err := c.lteRx.ReceiveSubframe(rx, sf.Index)
	if err != nil {
		t.Fatal(err)
	}
	var sres *ScatterResult
	if lte.OK {
		if burst {
			sres = c.scatter.AcquireBurst(rx, lte.RefSamples, sf.Index, c.startSample)
			if sres.Synced {
				d := c.scatter.DemodSubframe(rx, lte.RefSamples, sf.Index, c.startSample, true)
				sres.Decisions = d.Decisions
			}
		} else {
			sres = c.scatter.DemodSubframe(rx, lte.RefSamples, sf.Index, c.startSample, false)
		}
	}
	c.startSample += len(sf.Samples)
	// Verify the LTE payload while we are here.
	if lte.OK && bits.CountDiff(lte.Payload, sf.Payload) != 0 {
		t.Fatal("LTE decode OK but payload differs")
	}
	return recs, lte, sres
}

func applyGain(x []complex128, db float64) []complex128 {
	g := complex(math.Pow(10, db/20), 0)
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = v * g
	}
	return out
}

// countErrors compares demodulated decisions against the tag's records.
func countErrors(t testing.TB, recs []tag.SymbolRecord, res *ScatterResult) (errs, total int) {
	t.Helper()
	byBits := map[int][]byte{}
	for _, r := range recs {
		if r.Bits != nil && !r.IsPreamble {
			byBits[r.Symbol] = r.Bits
		}
	}
	for _, d := range res.Decisions {
		want, okSym := byBits[d.Symbol]
		if !okSym {
			continue // symbol carried no payload (idle '1's)
		}
		if len(want) != len(d.Bits) {
			t.Fatalf("symbol %d: %d decided bits vs %d sent", d.Symbol, len(d.Bits), len(want))
		}
		errs += bits.CountDiff(d.Bits, want)
		total += len(want)
	}
	return errs, total
}

func TestLTEReceiverCleanDecode(t *testing.T) {
	c := newChain(t, ltephy.BW1_4, 0, 0)
	_, lte, _ := c.step(t, false)
	if !lte.OK {
		t.Fatal("clean LTE decode failed")
	}
	if lte.RefSamples == nil || lte.Grid == nil {
		t.Fatal("no excitation regenerated")
	}
	if lte.EVM > 0.05 {
		t.Fatalf("clean EVM = %v", lte.EVM)
	}
}

func TestLTEReceiverWithMultipath(t *testing.T) {
	c := newChain(t, ltephy.BW1_4, 0, 0)
	c.directMP = channel.NewMultipath(rng.New(5), channel.PedestrianProfile, c.enb.Config().Params.SampleRate())
	_, lte, _ := c.step(t, false)
	if !lte.OK {
		t.Fatal("LTE decode through multipath failed")
	}
}

func TestLTEReceiverNoiseEstimate(t *testing.T) {
	c := newChain(t, ltephy.BW1_4, 0, 0)
	c.noiseW = dsp.FromDB(-40) * dsp.FromDB(c.directGainDB) * 0.01 // ~20 dB below direct
	_, lte, _ := c.step(t, false)
	if !lte.OK {
		t.Fatal("decode at high SNR failed")
	}
	if lte.NoiseVar <= 0 {
		t.Fatal("noise estimate not positive")
	}
}

func TestEndToEndBackscatterNoiseless(t *testing.T) {
	// The core correctness test: perfect-channel BER must be exactly zero,
	// including tag timing error and sub-unit sample offset (phase offset).
	for _, tc := range []struct{ timing, sample int }{{0, 0}, {5, 1}, {-7, 3}} {
		c := newChain(t, ltephy.BW1_4, tc.timing, tc.sample)
		payload := rng.New(3).Bits(make([]byte, 40*c.mod.PerSymbolBits()))
		c.mod.QueueBits(payload)
		recs0, _, s0 := c.step(t, true) // subframe 0: burst with preamble
		if s0 == nil || !s0.Synced {
			t.Fatalf("timing %+d/%d: preamble not acquired", tc.timing, tc.sample)
		}
		if s0.OffsetUnits != tc.timing {
			t.Fatalf("offset estimate %d, want %d", s0.OffsetUnits, tc.timing)
		}
		errs, total := countErrors(t, recs0, s0)
		recs1, _, s1 := c.step(t, false)
		e1, t1 := countErrors(t, recs1, s1)
		errs, total = errs+e1, total+t1
		if total == 0 {
			t.Fatal("no bits compared")
		}
		if errs != 0 {
			t.Fatalf("timing %+d/%d: %d/%d bit errors on a clean channel", tc.timing, tc.sample, errs, total)
		}
	}
}

func TestEndToEndBackscatterWithNoise(t *testing.T) {
	c := newChain(t, ltephy.BW1_4, 3, 2)
	// Noise 25 dB below the backscatter signal power.
	scatP := dsp.FromDB(c.scatterGainDB) * 0.01 // tx 10 dBm, -6 dB tag loss folded in signal
	c.noiseW = scatP * dsp.FromDB(-25)
	c.mod.QueueBits(rng.New(4).Bits(make([]byte, 40*c.mod.PerSymbolBits())))
	recs0, _, s0 := c.step(t, true)
	if !s0.Synced {
		t.Fatal("preamble not acquired under noise")
	}
	errs, total := countErrors(t, recs0, s0)
	recs1, _, s1 := c.step(t, false)
	e1, t1 := countErrors(t, recs1, s1)
	errs, total = errs+e1, total+t1
	ber := float64(errs) / float64(total)
	if ber > 0.01 {
		t.Fatalf("BER at 25 dB scatter SNR = %v (%d/%d)", ber, errs, total)
	}
}

func TestEndToEndBackscatterMultipath(t *testing.T) {
	c := newChain(t, ltephy.BW1_4, 2, 1)
	sr := c.enb.Config().Params.SampleRate()
	c.directMP = channel.NewMultipath(rng.New(6), channel.PedestrianProfile, sr)
	c.scatterMP = channel.NewMultipath(rng.New(7), channel.PedestrianProfile, sr)
	c.mod.QueueBits(rng.New(8).Bits(make([]byte, 40*c.mod.PerSymbolBits())))
	recs0, _, s0 := c.step(t, true)
	if !s0.Synced {
		t.Fatal("preamble not acquired through multipath")
	}
	errs, total := countErrors(t, recs0, s0)
	recs1, _, s1 := c.step(t, false)
	e1, t1 := countErrors(t, recs1, s1)
	errs, total = errs+e1, total+t1
	ber := float64(errs) / float64(total)
	if ber > 0.02 {
		t.Fatalf("BER through multipath = %v (%d/%d)", ber, errs, total)
	}
}

func TestScatterNoFalseSyncWithoutTag(t *testing.T) {
	// Without any backscatter, acquisition must not report sync.
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	enb := enodeb.New(cfg)
	lteRx := NewLTEReceiver(cfg.Params, cfg.Scheme)
	sc := NewScatterDemod(DefaultScatterConfig(cfg.Params))
	sf := enb.NextSubframe()
	r := rng.New(11)
	rx := channel.Combine(r, 1e-9, applyGain(sf.Samples, -40))
	lte, err := lteRx.ReceiveSubframe(rx, sf.Index)
	if err != nil || !lte.OK {
		t.Fatal("LTE decode failed")
	}
	res := sc.AcquireBurst(rx, lte.RefSamples, sf.Index, 0)
	if res.Synced {
		t.Fatalf("false preamble sync without a tag (corr %v)", res.PreambleCorr)
	}
}

func TestScatterDemodWithoutSyncReturnsNothing(t *testing.T) {
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	sc := NewScatterDemod(DefaultScatterConfig(cfg.Params))
	n := cfg.Params.Oversample * cfg.Params.BW.SamplesPerSubframe()
	res := sc.DemodSubframe(make([]complex128, n), make([]complex128, n), 1, 0, false)
	if res.Synced || len(res.Decisions) != 0 {
		t.Fatal("demod produced decisions without sync")
	}
}

func TestCleanBinsExcludeDirectPath(t *testing.T) {
	cfg := ltephy.DefaultParams(ltephy.BW1_4)
	sc := NewScatterDemod(DefaultScatterConfig(cfg))
	n := cfg.BW.FFTSize() * cfg.Oversample
	nn := cfg.BW.FFTSize()
	k := cfg.BW.Subcarriers()
	for b := 0; b < n; b++ {
		f := b
		if f > n/2 {
			f -= n
		}
		if f >= -nn-k/2 && f <= -nn+k/2 && sc.cleanBin[b] {
			t.Fatalf("clean bin %d inside direct-path region", b)
		}
	}
	if sc.CleanBinCount() < nn/2 {
		t.Fatalf("only %d clean bins", sc.CleanBinCount())
	}
}

func TestThroughputAccountingPerSubframe(t *testing.T) {
	// 1.4 MHz: 72 bits/symbol, 12 data symbols in a plain subframe.
	c := newChain(t, ltephy.BW1_4, 0, 0)
	c.mod.QueueBits(make([]byte, 1000*72))
	c.step(t, true) // sf 0: 10 data symbols, 1 preamble -> 9 payload symbols
	if got := c.mod.SentBits(); got != 9*72 {
		t.Fatalf("burst subframe sent %d bits, want %d", got, 9*72)
	}
	c.step(t, false) // sf 1: 12 payload symbols
	if got := c.mod.SentBits(); got != (9+12)*72 {
		t.Fatalf("after sf1 sent %d bits, want %d", got, (9+12)*72)
	}
}

func TestScatterDemodValidatesInputs(t *testing.T) {
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	sc := NewScatterDemod(DefaultScatterConfig(cfg.Params))
	n := cfg.Params.Oversample * cfg.Params.BW.SamplesPerSubframe()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("short rx", func() {
		sc.AcquireBurst(make([]complex128, 10), make([]complex128, n), 0, 0)
	})
	mustPanic("short ref", func() {
		sc.AcquireBurst(make([]complex128, n), make([]complex128, 10), 0, 0)
	})
	mustPanic("bad subframe", func() {
		sc.AcquireBurst(make([]complex128, n), make([]complex128, n), 10, 0)
	})
}

func TestMIBDecodedAndTracked(t *testing.T) {
	// The UE must recover the MIB (bandwidth + SFN) from subframe 0 of each
	// frame and see the SFN advance.
	c := newChain(t, ltephy.BW1_4, 0, 0)
	var sfns []int
	for i := 0; i < 12; i++ {
		_, lte, _ := c.step(t, c.enb.SubframeCount()%10 == 1 || c.enb.SubframeCount()%10 == 6)
		if !lte.OK {
			t.Fatalf("subframe %d: LTE decode failed", i)
		}
		if i%10 == 0 {
			if lte.MIB == nil {
				t.Fatalf("frame %d: no MIB decoded", i/10)
			}
			if lte.MIB.BW != ltephy.BW1_4 {
				t.Fatalf("MIB bandwidth %v", lte.MIB.BW)
			}
			sfns = append(sfns, lte.MIB.SFN)
		} else if lte.MIB != nil {
			t.Fatalf("subframe %d reported a MIB", i)
		}
	}
	if len(sfns) != 2 || sfns[1] != sfns[0]+1 {
		t.Fatalf("SFN sequence %v, want consecutive", sfns)
	}
}
