package ue

import (
	"fmt"
	"math"
	"math/cmplx"

	"lscatter/internal/fxp"
	"lscatter/internal/ltephy"
)

// This file is the backscatter demodulator's fixed-point front end. The
// demodulator's heavy math (FFTs, channel estimation, Eq. 7 refinement) is
// float and stays float — it runs per symbol, not per sample, and is where
// the numerical headroom matters. What the fixed-point lane buys here is
// the one per-sample pass the receiver makes over the raw block: the
// downshift that moves the backscatter sideband to baseband. The fxp entry
// points fuse Q1.15 conversion and mixing into a single table-driven pass
// (the mixer phasor has only Oversample distinct values per block scale),
// so a fixed-point session never materializes an intermediate complex128
// copy of the receive buffer.

// checkInputsFxp mirrors checkInputs for a Q1.15 receive block.
func (d *ScatterDemod) checkInputsFxp(rx *fxp.Buf, refSamples []complex128, subframe int) {
	p := d.cfg.Params
	need := p.Oversample * p.BW.SamplesPerSubframe()
	if rx.Len() != need {
		panic(fmt.Sprintf("ue: rx holds %d samples, a %s subframe needs %d", rx.Len(), p.BW, need))
	}
	if len(refSamples) != need {
		panic(fmt.Sprintf("ue: reference holds %d samples, want %d", len(refSamples), need))
	}
	if subframe < 0 || subframe >= ltephy.SubframesPerFrame {
		panic(fmt.Sprintf("ue: subframe %d out of [0,10)", subframe))
	}
}

// downshiftFxp fills the z scratch from a Q1.15 block, fusing the
// mantissa-to-float conversion with the +1/Ts downshift. The mixer phasor
// exp(-j*2*pi*m/ov) takes only ov values, so the block scale and the phasor
// collapse into one ov-entry table; each sample costs one table lookup and
// one real 2x2 rotation.
func (d *ScatterDemod) downshiftFxp(x *fxp.Buf, startSample int) []complex128 {
	ov := d.cfg.Params.Oversample
	out := d.scrZ[:x.Len()]
	k := x.Scale / float64(fxp.One)
	tab := make([]complex128, ov)
	for m := 0; m < ov; m++ {
		ph := -2 * math.Pi * float64(m) / float64(ov)
		tab[m] = complex(k, 0) * cmplx.Exp(complex(0, ph))
	}
	xi, xq := x.I, x.Q
	for i := range xi {
		c := tab[(startSample+i)%ov]
		a, b := float64(xi[i]), float64(xq[i])
		out[i] = complex(a*real(c)-b*imag(c), a*imag(c)+b*real(c))
	}
	return out
}

// AcquireBurstFxp is the fixed-point lane of AcquireBurst: identical burst
// acquisition on a Q1.15 receive block.
func (d *ScatterDemod) AcquireBurstFxp(rx *fxp.Buf, refSamples []complex128, subframe, startSample int) *ScatterResult {
	d.checkInputsFxp(rx, refSamples, subframe)
	return d.acquireBurstZ(d.downshiftFxp(rx, startSample), refSamples, subframe)
}

// DemodSubframeFxp is the fixed-point lane of DemodSubframe: identical
// demodulation on a Q1.15 receive block.
func (d *ScatterDemod) DemodSubframeFxp(rx *fxp.Buf, refSamples []complex128, subframe, startSample int, skipFirst bool) *ScatterResult {
	if !d.haveSync {
		return &ScatterResult{Synced: false, OffsetUnits: d.offset}
	}
	d.checkInputsFxp(rx, refSamples, subframe)
	return d.demodSubframeZ(d.downshiftFxp(rx, startSample), refSamples, subframe, skipFirst)
}
