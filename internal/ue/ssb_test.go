package ue

import (
	"testing"

	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
	"lscatter/internal/tag"
)

// newSSBChain mirrors newChain but with quadrature (single-sideband)
// switching on both ends.
func newSSBChain(t testing.TB, timingErr, sampleOff int) *chain {
	t.Helper()
	c := newChain(t, ltephy.BW1_4, timingErr, sampleOff)
	p := c.enb.Config().Params
	c.mod = tag.NewModulator(tag.ModConfig{
		Params:           p,
		Mode:             tag.SSB,
		TimingErrorUnits: timingErr,
		SampleOffset:     sampleOff,
	})
	scfg := DefaultScatterConfig(p)
	scfg.Mode = tag.SSB
	c.scatter = NewScatterDemod(scfg)
	return c
}

func TestEndToEndSSBNoiseless(t *testing.T) {
	c := newSSBChain(t, 4, 1)
	c.mod.QueueBits(rng.New(3).Bits(make([]byte, 40*c.mod.PerSymbolBits())))
	recs0, _, s0 := c.step(t, true)
	if !s0.Synced {
		t.Fatal("SSB preamble not acquired")
	}
	errs, total := countErrors(t, recs0, s0)
	recs1, _, s1 := c.step(t, false)
	e1, t1 := countErrors(t, recs1, s1)
	errs, total = errs+e1, total+t1
	if total == 0 {
		t.Fatal("no bits compared")
	}
	if errs != 0 {
		t.Fatalf("SSB chain: %d/%d errors on a clean channel", errs, total)
	}
}

func TestSSBBeatsDSBAtLowSNR(t *testing.T) {
	// SSB concentrates the reflected first-harmonic power in one sideband
	// (~3.9 dB), so at the same noise level its BER must not be worse.
	run := func(ssb bool) float64 {
		var c *chain
		if ssb {
			c = newSSBChain(t, 2, 1)
		} else {
			c = newChain(t, ltephy.BW1_4, 2, 1)
		}
		scatP := 0.01 * 1e-7 // tx power x scatter gain
		c.noiseW = scatP * 0.01 * 3
		c.mod.QueueBits(rng.New(4).Bits(make([]byte, 40*c.mod.PerSymbolBits())))
		recs0, _, s0 := c.step(t, true)
		if !s0.Synced {
			return 0.5
		}
		errs, total := countErrors(t, recs0, s0)
		recs1, _, s1 := c.step(t, false)
		e1, t1 := countErrors(t, recs1, s1)
		errs, total = errs+e1, total+t1
		if total == 0 {
			return 0.5
		}
		return float64(errs) / float64(total)
	}
	dsb, ssb := run(false), run(true)
	if ssb > dsb+0.005 {
		t.Fatalf("SSB BER %v worse than DSB %v", ssb, dsb)
	}
}
