package baseline

import (
	"testing"

	"lscatter/internal/channel"
	"lscatter/internal/ltephy"
)

func TestWiFiThroughputScalesWithOccupancy(t *testing.T) {
	w := DefaultWiFiBackscatter()
	lo := w.Evaluate(0.1, 0.8).ThroughputBps
	hi := w.Evaluate(0.6, 0.8).ThroughputBps
	if hi <= lo || lo <= 0 {
		t.Fatalf("occupancy scaling broken: %v -> %v", lo, hi)
	}
	// Busy-hour goodput lands in the tens of kbps (paper's Fig 16a/21a).
	if hi < 20e3 || hi > 120e3 {
		t.Fatalf("busy-hour WiFi backscatter = %v bps, want tens of kbps", hi)
	}
}

func TestWiFiZeroOccupancyZeroThroughput(t *testing.T) {
	w := DefaultWiFiBackscatter()
	if tp := w.Evaluate(0, 0.8).ThroughputBps; tp != 0 {
		t.Fatalf("throughput %v with no ambient traffic", tp)
	}
}

func TestWiFiHeterogeneousTrafficHurts(t *testing.T) {
	w := DefaultWiFiBackscatter()
	all := w.Evaluate(0.5, 1.0).ThroughputBps
	shared := w.Evaluate(0.5, 0.7).ThroughputBps
	if shared >= all {
		t.Fatal("ZigBee/BLE airtime did not reduce WiFi backscatter goodput")
	}
}

func TestWiFiDiesWithDistance(t *testing.T) {
	w := DefaultWiFiBackscatter()
	w.TagToRxM = channel.FeetToMeters(400)
	w.APToRxM = channel.FeetToMeters(403)
	rep := w.Evaluate(0.6, 0.8)
	if rep.ThroughputBps > 1e3 {
		t.Fatalf("WiFi backscatter alive at 400 ft: %v bps", rep.ThroughputBps)
	}
}

func TestWiFiBERMonotoneWithDistance(t *testing.T) {
	var last float64
	for _, ft := range []float64{5, 40, 120, 250} {
		w := DefaultWiFiBackscatter()
		w.TagToRxM = channel.FeetToMeters(ft)
		w.APToRxM = channel.FeetToMeters(ft + 3)
		rep := w.Evaluate(0.5, 0.8)
		if rep.BER < last-1e-12 {
			t.Fatalf("WiFi BER decreased at %v ft", ft)
		}
		last = rep.BER
	}
}

func TestSymbolLevelRateIsThreeOrdersBelowLScatter(t *testing.T) {
	s := DefaultSymbolLevelLTE()
	rep := s.Evaluate()
	if rep.ThroughputBps < 5e3 || rep.ThroughputBps > 8e3 {
		t.Fatalf("symbol-level LTE rate = %v, want ~7 kbps", rep.ThroughputBps)
	}
	ratio := LScatterRawRate(ltephy.BW20) / rep.ThroughputBps
	if ratio < 1000 || ratio > 3000 {
		t.Fatalf("LScatter/symbol-level ratio = %v, want ~2000 (3 orders)", ratio)
	}
}

func TestSymbolLevelOutrangesWiFi(t *testing.T) {
	// Fig 23's crossover: beyond ~80 ft the 680 MHz symbol-level link still
	// delivers its 7 kbps while WiFi backscatter collapses.
	s := DefaultSymbolLevelLTE()
	s.TagToUEM = channel.FeetToMeters(160)
	s.ENodeBToUEM = channel.FeetToMeters(163)
	w := DefaultWiFiBackscatter()
	w.TagToRxM = channel.FeetToMeters(160)
	w.APToRxM = channel.FeetToMeters(163)
	st := s.Evaluate().ThroughputBps
	wt := w.Evaluate(0.5, 0.8).ThroughputBps
	if st <= wt {
		t.Fatalf("at 160 ft symbol-level LTE %v <= WiFi %v", st, wt)
	}
}

func TestLoRaEffectivelyZero(t *testing.T) {
	l := DefaultLoRaBackscatter()
	rep := l.Evaluate(0.02)
	if rep.ThroughputBps > 50 {
		t.Fatalf("LoRa backscatter = %v bps, paper reports ~0", rep.ThroughputBps)
	}
}

func TestReportsDeterministic(t *testing.T) {
	w := DefaultWiFiBackscatter()
	if w.Evaluate(0.4, 0.8) != w.Evaluate(0.4, 0.8) {
		t.Fatal("WiFi baseline not deterministic")
	}
	s := DefaultSymbolLevelLTE()
	if s.Evaluate() != s.Evaluate() {
		t.Fatal("symbol-level baseline not deterministic")
	}
}
