// Package baseline implements the three comparison systems of the paper's
// evaluation: a FreeRider-style ambient WiFi backscatter (symbol-level
// codeword translation on bursty 2.4 GHz traffic), a PLoRa-style ambient
// LoRa backscatter (gated on sparse LoRa duty cycles), and a symbol-level
// LTE backscatter (the paper's own strawman: LScatter's link with one bit
// embedded per two LTE symbols).
//
// All three share the channel package's link-budget machinery so that the
// distance figures compare systems over identical geometry, differing only
// in carrier frequency, excitation availability and modulation granularity.
package baseline

import (
	"math"

	"lscatter/internal/channel"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
	"lscatter/internal/stats"
)

// Report is the outcome of one baseline evaluation.
type Report struct {
	// Linked is true when the excitation was detectable and the receiver
	// could operate.
	Linked bool
	// BER is the backscatter bit error rate while transmitting.
	BER float64
	// ThroughputBps is the goodput including excitation availability.
	ThroughputBps float64
}

// fadePower draws a unit-mean power fade (Ricean K=7 dB when los).
func fadePower(r *rng.Source, los bool) float64 {
	if los {
		k := math.Pow(10, 0.7)
		s := math.Sqrt(k / (k + 1))
		sigma := math.Sqrt(1 / (2 * (k + 1)))
		re := s + sigma*r.NormFloat64()
		im := sigma * r.NormFloat64()
		return re*re + im*im
	}
	re := r.NormFloat64() / math.Sqrt2
	im := r.NormFloat64() / math.Sqrt2
	return re*re + im*im
}

// riceanBER Monte-Carlos the BPSK BER at mean Eb/N0 gamma under link fading.
func riceanBER(r *rng.Source, gamma float64, los bool, trials int) float64 {
	var sum float64
	for i := 0; i < trials; i++ {
		sum += stats.BERFromSNR(gamma * fadePower(r, los))
	}
	return sum / float64(trials)
}

// WiFiBackscatter models the enhanced FreeRider comparison system of §4.1:
// symbol-level codeword translation on ambient 802.11g traffic, with a
// USRP-assisted detector that perfectly locates usable WiFi frames (the
// paper grants the baseline this advantage; a realistic envelope detector
// would do strictly worse).
type WiFiBackscatter struct {
	// Geometry in meters.
	APToTagM, TagToRxM, APToRxM float64
	// TxPowerDBm of the WiFi AP (typically 20 dBm).
	TxPowerDBm float64
	// Exponent is the path-loss exponent of the venue.
	Exponent float64
	// LoS selects the fading statistics.
	LoS bool
	// TagLossDB is the reflection/conversion loss.
	TagLossDB float64
	// NoiseFigureDB of the receiver.
	NoiseFigureDB float64
	// Seed for the fading Monte-Carlo.
	Seed uint64
}

// DefaultWiFiBackscatter returns the smart-home WiFi baseline geometry.
func DefaultWiFiBackscatter() WiFiBackscatter {
	return WiFiBackscatter{
		APToTagM:      channel.FeetToMeters(3),
		TagToRxM:      channel.FeetToMeters(3),
		APToRxM:       channel.FeetToMeters(5),
		TxPowerDBm:    20,
		Exponent:      2.2,
		LoS:           true,
		TagLossDB:     4,
		NoiseFigureDB: 7,
		Seed:          1,
	}
}

// WiFi 802.11g OFDM constants.
const (
	wifiSymbolDur = 4e-6
	// FreeRider embeds one bit per two OFDM symbols.
	wifiBitDur = 2 * wifiSymbolDur
	// wifiRawRate is the instantaneous backscatter bit rate while a usable
	// WiFi frame is on the air.
	wifiRawRate = 1 / wifiBitDur // 125 kbps
	// wifiFrameEff is the fraction of frame airtime usable for piggyback
	// bits (preamble, SIG and ACK overhead excluded).
	wifiFrameEff = 0.85
	// wifiImplLossDB is the implementation loss of codeword-translation
	// detection against the strong direct path (CSI-perturbation decisions
	// are far from matched-filter optimal).
	wifiImplLossDB = 15
	// frameBits is the backscatter packet size: errors are counted at the
	// packet level because codeword translation delivers whole frames
	// guarded by a checksum.
	frameBits = 96
)

// packetSuccess returns (1-BER)^frameBits, the delivery rate of checksummed
// backscatter frames.
func packetSuccess(ber float64) float64 {
	return math.Pow(1-ber, frameBits)
}

// Evaluate computes the baseline's performance for one measurement window
// with the given 2.4 GHz occupancy and the fraction of that airtime carried
// by actual WiFi (vs ZigBee/BLE, unusable for codeword translation).
func (w WiFiBackscatter) Evaluate(occupancy, usableFrac float64) Report {
	r := rng.New(w.Seed)
	pl := channel.PathLoss{FreqHz: 2.437e9, Exponent: w.Exponent}
	scatDBm := w.TxPowerDBm - pl.LossDB(w.APToTagM) - w.TagLossDB - pl.LossDB(w.TagToRxM) - 3.92
	n0 := channel.NoiseFloorW(1, w.NoiseFigureDB) // per-Hz
	eb := channel.DBmToWatts(scatDBm) * wifiBitDur
	gamma := eb / n0 / math.Pow(10, wifiImplLossDB/10)

	// The receiver must also decode the WiFi frame itself.
	directSNR := channel.DBmToWatts(w.TxPowerDBm-pl.LossDB(w.APToRxM)) / channel.NoiseFloorW(16.6e6, w.NoiseFigureDB)
	rep := Report{Linked: directSNR > math.Pow(10, 0.5)} // ~5 dB for base-rate OFDM
	if !rep.Linked {
		rep.BER = 0.5
		return rep
	}
	rep.BER = riceanBER(r, gamma, w.LoS, 2000)
	rep.ThroughputBps = occupancy * usableFrac * wifiRawRate * wifiFrameEff * packetSuccess(rep.BER)
	return rep
}

// SymbolLevelLTE models the paper's strawman comparison: identical LTE
// excitation and geometry to LScatter, but modulating one bit per two LTE
// symbols (the WiFi-backscatter technique transplanted). Its raw rate is
// three orders of magnitude below LScatter's; its per-bit energy is much
// higher, which is why it overtakes WiFi backscatter beyond ~80 ft (Fig 23).
type SymbolLevelLTE struct {
	// Geometry in meters.
	ENodeBToTagM, TagToUEM, ENodeBToUEM float64
	// TxPowerDBm of the eNodeB.
	TxPowerDBm float64
	// CarrierHz (680 MHz white space).
	CarrierHz float64
	// Exponent is the venue path-loss exponent.
	Exponent float64
	// LoS selects fading statistics.
	LoS bool
	// TagLossDB, NoiseFigureDB as in core.
	TagLossDB, NoiseFigureDB float64
	// Antenna gains.
	ENodeBAntennaDB, TagAntennaDB, UEAntennaDB float64
	// Seed for the fading Monte-Carlo.
	Seed uint64
}

// DefaultSymbolLevelLTE mirrors core.DefaultLinkConfig geometry.
func DefaultSymbolLevelLTE() SymbolLevelLTE {
	return SymbolLevelLTE{
		ENodeBToTagM:    channel.FeetToMeters(3),
		TagToUEM:        channel.FeetToMeters(3),
		ENodeBToUEM:     channel.FeetToMeters(5),
		TxPowerDBm:      10,
		CarrierHz:       680e6,
		Exponent:        2.2,
		LoS:             true,
		TagLossDB:       4,
		NoiseFigureDB:   7,
		ENodeBAntennaDB: 6,
		TagAntennaDB:    2,
		UEAntennaDB:     2,
		Seed:            1,
	}
}

// symbolLevelRate is one bit per two LTE symbols (71.4 us each).
const symbolLevelRate = 1 / (2 * 71.4e-6) // ~7 kbps

// Evaluate computes the strawman's BER and throughput. LTE excitation is
// continuous, so occupancy is always 1.
func (s SymbolLevelLTE) Evaluate() Report {
	r := rng.New(s.Seed)
	pl := channel.PathLoss{FreqHz: s.CarrierHz, Exponent: s.Exponent}
	scatDBm := s.TxPowerDBm - pl.LossDB(s.ENodeBToTagM) + s.ENodeBAntennaDB + s.TagAntennaDB -
		s.TagLossDB - pl.LossDB(s.TagToUEM) + s.TagAntennaDB + s.UEAntennaDB - 3.92
	n0 := channel.NoiseFloorW(1, s.NoiseFigureDB)
	// A bit integrates two full symbols of scatter energy, coherently
	// combined across the whole band: no per-unit fading, only link fading.
	eb := channel.DBmToWatts(scatDBm) * 2 * 71.4e-6
	gamma := eb / n0

	occupied := 18e6
	directSNR := channel.DBmToWatts(s.TxPowerDBm-pl.LossDB(s.ENodeBToUEM)+s.ENodeBAntennaDB+s.UEAntennaDB) /
		channel.NoiseFloorW(occupied, s.NoiseFigureDB)
	rep := Report{Linked: directSNR > math.Pow(10, 0.5)}
	if !rep.Linked {
		rep.BER = 0.5
		return rep
	}
	rep.BER = riceanBER(r, gamma, s.LoS, 2000)
	rep.ThroughputBps = symbolLevelRate * packetSuccess(rep.BER)
	return rep
}

// LoRaBackscatter models PLoRa: chirp-shift backscatter on ambient LoRa
// uplinks. Its raw rate is low and, decisively, the excitation is almost
// never on the air (occupancy ~0.02), which is why the paper reports zero
// LoRa-backscatter throughput at every site.
type LoRaBackscatter struct {
	// GatewayToTagM, TagToRxM in meters.
	GatewayToTagM, TagToRxM float64
	// TxPowerDBm of the LoRa transmitter (14 dBm typical).
	TxPowerDBm float64
	// Exponent is the venue path-loss exponent.
	Exponent float64
	// Seed for fading.
	Seed uint64
}

// DefaultLoRaBackscatter returns the smart-home LoRa baseline.
func DefaultLoRaBackscatter() LoRaBackscatter {
	return LoRaBackscatter{
		GatewayToTagM: channel.FeetToMeters(3),
		TagToRxM:      channel.FeetToMeters(3),
		TxPowerDBm:    14,
		Exponent:      2.2,
		Seed:          1,
	}
}

// loraRawRate is PLoRa's in-frame backscatter rate.
const loraRawRate = 1e3 // ~1 kbps

// Evaluate computes the LoRa baseline for a window with the given LoRa
// occupancy. The detection duty cycle multiplies straight into goodput; in
// the paper's sites the result rounds to zero.
func (l LoRaBackscatter) Evaluate(occupancy float64) Report {
	r := rng.New(l.Seed)
	pl := channel.PathLoss{FreqHz: 915e6, Exponent: l.Exponent}
	scatDBm := l.TxPowerDBm - pl.LossDB(l.GatewayToTagM) - 4 - pl.LossDB(l.TagToRxM) - 3.92
	n0 := channel.NoiseFloorW(1, 7)
	eb := channel.DBmToWatts(scatDBm) * 1e-3 // 1 ms per bit (chirp spreading)
	gamma := eb / n0
	rep := Report{Linked: true}
	rep.BER = riceanBER(r, gamma, true, 1000)
	rep.ThroughputBps = occupancy * loraRawRate * (1 - rep.BER)
	return rep
}

// LScatterRawRate re-exports the LScatter raw rate for side-by-side tables.
func LScatterRawRate(bw ltephy.Bandwidth) float64 {
	perSym := float64(bw.Subcarriers())
	symbols := 10.0*12 - 4 - 2
	return perSym * symbols / (ltephy.SubframesPerFrame * ltephy.SubframeDuration)
}
