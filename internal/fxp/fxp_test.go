package fxp

import (
	"math"
	"math/cmplx"
	"testing"

	"lscatter/internal/rng"
)

// TestSaturationAtFullScale pins the rail behavior of the scalar primitives
// at ±full scale.
func TestSaturationAtFullScale(t *testing.T) {
	cases := []struct {
		a, b, want int16
	}{
		{MaxMant, 1, MaxMant},
		{MaxMant, MaxMant, MaxMant},
		{MinMant, -1, MinMant},
		{MinMant, MinMant, MinMant},
		{20000, 20000, MaxMant},
		{-20000, -20000, MinMant},
		{MaxMant, MinMant, -1},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := SatAdd(c.a, c.b); got != c.want {
			t.Errorf("SatAdd(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if got := SatSub(MinMant, 1); got != MinMant {
		t.Errorf("SatSub(%d, 1) = %d, want %d", MinMant, got, MinMant)
	}
	if got := SatSub(MaxMant, -1); got != MaxMant {
		t.Errorf("SatSub(%d, -1) = %d, want %d", MaxMant, got, MaxMant)
	}
	// The one overflowing Q15 product: (-1.0)·(-1.0) saturates to +0.99997.
	if got := MulQ15(MinMant, MinMant); got != MaxMant {
		t.Errorf("MulQ15(-32768, -32768) = %d, want %d", got, MaxMant)
	}
}

// TestMulQ15RoundToNearestEven pins the tie-breaking of the Q1.15 multiply:
// a remainder of exactly half a step rounds to the even neighbor.
func TestMulQ15RoundToNearestEven(t *testing.T) {
	half := int16(One / 2) // 16384: a·half leaves remainder a/2 steps
	cases := []struct {
		a, want int16
	}{
		{1, 0},  // 0.5 -> 0 (even)
		{2, 1},  // 1.0 exact
		{3, 2},  // 1.5 -> 2 (even)
		{4, 2},  // 2.0 exact
		{5, 2},  // 2.5 -> 2 (even)
		{7, 4},  // 3.5 -> 4 (even)
		{-1, 0}, // -0.5 -> 0 (even)
		{-3, -2},
		{-5, -2},
	}
	for _, c := range cases {
		if got := MulQ15(c.a, half); got != c.want {
			t.Errorf("MulQ15(%d, %d) = %d, want %d", c.a, half, got, c.want)
		}
	}
	// Non-tie remainders round to nearest as usual.
	if got := MulQ15(100, 20000); got != 61 { // 100*20000/32768 = 61.035...
		t.Errorf("MulQ15(100, 20000) = %d, want 61", got)
	}
}

// TestQuantQ15 pins the conversion quantizer: symmetric clamp and
// round-to-nearest-even.
func TestQuantQ15(t *testing.T) {
	cases := []struct {
		x    float64
		want int16
	}{
		{0, 0},
		{0.5, 16384},
		{-0.5, -16384},
		{1.0, MaxMant},   // clamp: +1.0 is not representable
		{-1.0, -MaxMant}, // symmetric clamp: negation-safe
		{2.0, MaxMant},
		{-2.0, -MaxMant},
		{1.5 / One, 2},  // tie -> even
		{2.5 / One, 2},  // tie -> even
		{-1.5 / One, -2},
	}
	for _, c := range cases {
		if got := QuantQ15(c.x); got != c.want {
			t.Errorf("QuantQ15(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

// roundTripErr returns the largest per-component conversion error of a
// block, in absolute units.
func roundTripErr(x []complex128, b *Buf) float64 {
	worst := 0.0
	for i, v := range x {
		got := b.At(i)
		if e := math.Abs(real(got) - real(v)); e > worst {
			worst = e
		}
		if e := math.Abs(imag(got) - imag(v)); e > worst {
			worst = e
		}
	}
	return worst
}

// TestBlockScaleRoundTrip covers the conversion error bound across scales,
// including denormal-adjacent magnitudes where a naive 1/scale overflows.
func TestBlockScaleRoundTrip(t *testing.T) {
	blocks := [][]complex128{
		{complex(0.7, -0.3), complex(-1e-4, 2e-3)},
		{complex(1e6, -2.5e6), complex(3.1e6, 0)},
		{complex(1e-300, 0), complex(0, -3e-301)},
		{complex(math.SmallestNonzeroFloat64, 0), complex(0, -math.SmallestNonzeroFloat64)},
		{complex(0x1p-1022, -0x1p-1040), complex(0x1p-1074, 0)},
		{complex(0, 0), complex(0, 0)},
	}
	for _, x := range blocks {
		b := FromComplex(x)
		if !(b.Scale > 0) || math.IsInf(1/b.Scale, 0) {
			t.Fatalf("block %v got uninvertible scale %v", x, b.Scale)
		}
		bound := b.Scale / 65536 * (1 + 1e-12)
		if err := roundTripErr(x, b); err > bound {
			t.Errorf("block %v: round-trip error %g exceeds Scale/65536 = %g", x, err, bound)
		}
		// Re-quantizing the quantized block at the same scale is an identity.
		y := b.ToComplex(nil)
		b2 := New(len(y))
		b2.SetComplexAt(y, b.Scale)
		for i := range b.I {
			if b.I[i] != b2.I[i] || b.Q[i] != b2.Q[i] {
				t.Fatalf("re-quantization not idempotent at %d: (%d,%d) -> (%d,%d)",
					i, b.I[i], b.Q[i], b2.I[i], b2.Q[i])
			}
		}
	}
}

// TestScaleByAndRotate checks the O(1) gain path and the Q15 rotation
// against float arithmetic.
func TestScaleByAndRotate(t *testing.T) {
	r := rng.New(7)
	x := make([]complex128, 257)
	for i := range x {
		x[i] = r.Complex(0.3)
	}
	b := FromComplex(x)
	iBefore := append([]int16(nil), b.I...)
	b.ScaleBy(1e-3)
	for i := range b.I {
		if b.I[i] != iBefore[i] {
			t.Fatal("ScaleBy touched a mantissa")
		}
	}
	for i := range x {
		x[i] *= 1e-3
	}
	if err := roundTripErr(x, b); err > b.Scale/65536*(1+1e-12) {
		t.Errorf("ScaleBy error %g beyond bound", err)
	}

	// Rotation by a complex gain: magnitude into the scale, phase per
	// sample. The Q15 phasor and per-sample rounding each cost at most one
	// step, so allow a few steps of slack.
	g := 2.5 * cmplx.Exp(complex(0, 1.1))
	b.Rotate(g)
	for i := range x {
		x[i] *= g
	}
	if err := roundTripErr(x, b); err > 4*b.Scale/32768 {
		t.Errorf("Rotate error %g beyond 4 steps (%g)", err, 4*b.Scale/32768)
	}
}

// TestAccumulateSat checks cross-scale accumulation and saturation against
// a float reference.
func TestAccumulateSat(t *testing.T) {
	r := rng.New(11)
	n := 123
	xa := make([]complex128, n)
	xb := make([]complex128, n)
	for i := range xa {
		xa[i] = r.Complex(0.2)
		xb[i] = r.Complex(0.002) // two decades down: exercises alignment
	}
	a, bb := FromComplex(xa), FromComplex(xb)
	AccumulateSat(a, bb)
	for i := range xa {
		want := xa[i] + xb[i]
		got := a.At(i)
		if e := cmplx.Abs(got - want); e > 3*a.Scale/32768 {
			t.Fatalf("AccumulateSat sample %d: |%v - %v| = %g beyond 3 steps", i, got, want, e)
		}
	}

	// Same-scale saturating path: rails must clip, not wrap.
	s1, s2 := New(8), New(8)
	for i := 0; i < 8; i++ {
		s1.I[i], s1.Q[i] = 30000, -30000
		s2.I[i], s2.Q[i] = 30000, -30000
	}
	AccumulateSat(s1, s2)
	for i := 0; i < 8; i++ {
		if s1.I[i] != MaxMant || s1.Q[i] != MinMant {
			t.Fatalf("saturating add sample %d: got (%d,%d)", i, s1.I[i], s1.Q[i])
		}
	}
}

// TestAddSatWordsMatchesScalar drives the SWAR adder against the scalar
// primitive over random lanes, including rail-adjacent values.
func TestAddSatWordsMatchesScalar(t *testing.T) {
	r := rng.New(13)
	n := 4096
	a, b := New(n), New(n)
	want := make([]int16, n)
	for i := 0; i < n; i++ {
		av := int16(r.Uint64())
		bv := int16(r.Uint64())
		switch i % 7 { // sprinkle rail-adjacent operands
		case 0:
			av = MaxMant
		case 3:
			av = MinMant
		case 5:
			bv = MinMant
		}
		a.I[i], b.I[i] = av, bv
		want[i] = SatAdd(av, bv)
	}
	addSatWords(a.IWords(), b.IWords())
	for i := 0; i < n; i++ {
		if a.I[i] != want[i] {
			t.Fatalf("lane %d: SWAR %d != scalar %d", i, a.I[i], want[i])
		}
	}
}

// TestLaneOrder pins the words view: lane l of word w is sample 4w+l.
func TestLaneOrder(t *testing.T) {
	b := New(8)
	for i := range b.I {
		b.I[i] = int16(i + 1)
	}
	w := b.IWords()
	for i := 0; i < 8; i++ {
		got := int16(w[i/4] >> (16 * (i % 4)))
		if got != int16(i+1) {
			t.Fatalf("sample %d read back as %d through the word view", i, got)
		}
	}
}

// TestStreamSelectAdd checks the fused streamer kernel against a scalar
// model: biased select-and-add must reproduce C(sel) + noise exactly.
func TestStreamSelectAdd(t *testing.T) {
	r := rng.New(17)
	const units = 300
	const noiseMax = 2000
	c0m := make([]int16, units*lanes)
	c1m := make([]int16, units*lanes)
	for i := range c0m {
		c0m[i] = int16(int(r.Uint64()%(2*(MaxMant-noiseMax)+1)) - (MaxMant - noiseMax))
		c1m[i] = int16(int(r.Uint64()%(2*(MaxMant-noiseMax)+1)) - (MaxMant - noiseMax))
	}
	words := units // words per component
	c0 := make([]uint64, 2*words)
	c1 := make([]uint64, 2*words)
	// Interleave I and Q words per unit: for the test both components carry
	// the same mantissa streams offset by one unit, which is enough to catch
	// index mistakes.
	tmp0 := make([]uint64, words)
	tmp1 := make([]uint64, words)
	PackBiased(tmp0, c0m, noiseMax)
	PackBiased(tmp1, c1m, noiseMax)
	for u := 0; u < units; u++ {
		c0[2*u], c0[2*u+1] = tmp0[u], tmp0[(u+1)%units]
		c1[2*u], c1[2*u+1] = tmp1[u], tmp1[(u+1)%units]
	}
	d := make([]uint64, 2*words)
	for k := range d {
		d[k] = c0[k] ^ c1[k]
	}
	phase := make([]uint64, (units+63)/64)
	for u := 0; u < units; u++ {
		if r.Uint64()&1 == 1 {
			phase[u/64] |= 1 << (u % 64)
		}
	}
	noise := NewNoiseTable(rng.New(23), 64, 300, noiseMax)

	out := make([]uint64, 2*words)
	np := StreamSelectAdd(out, c0, d, phase, noise, 0)
	if np != 2*units {
		t.Fatalf("ring position advanced %d, want %d", np, 2*units)
	}
	// StreamSelectAdd fuses the unbias into its store: out already holds
	// two's-complement mantissas.

	// Scalar model.
	noiseLane := func(p int) int {
		w := noise[(p/lanes)&(len(noise)-1)]
		return int(uint16(w>>(16*(p%lanes)))) - noiseMax
	}
	pos := 0
	for u := 0; u < units; u++ {
		sel := phase[u/64]>>(u%64)&1 == 1
		for comp := 0; comp < 2; comp++ {
			srcW := tmp0[(u+comp)%units]
			if sel {
				srcW = tmp1[(u+comp)%units]
			}
			for l := 0; l < lanes; l++ {
				c := int(uint16(srcW>>(16*l))) - (One - noiseMax) // unbias the packed composite (lanes are offset-binary, not two's complement)
				want := c + noiseLane(pos*lanes+l)
				got := int(int16(uint16(out[2*u+comp] >> (16 * l))))
				if got != want {
					t.Fatalf("unit %d comp %d lane %d: got %d want %d", u, comp, l, got, want)
				}
			}
			pos++
		}
	}
}

// TestPackBiasedContract verifies the headroom contract is enforced.
func TestPackBiasedContract(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PackBiased accepted a mantissa violating the headroom contract")
		}
	}()
	dst := make([]uint64, 1)
	PackBiased(dst, []int16{32000}, 1000)
}

// FuzzFxpRoundTrip fuzzes the block-scale conversion: for any finite
// 2-sample block the round-trip error stays within Scale/65536 per
// component, and re-quantizing the quantized block is an identity.
func FuzzFxpRoundTrip(f *testing.F) {
	f.Add(0.5, -0.25, 1e-9, 3e6)
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64, 0x1p-1022, 0x1p-1040)
	f.Add(1e308, -1e308, 1e-308, 0.0)
	f.Fuzz(func(t *testing.T, re1, im1, re2, im2 float64) {
		vals := []float64{re1, im1, re2, im2}
		maxAbs := 0.0
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip("non-finite input")
			}
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		x := []complex128{complex(re1, im1), complex(re2, im2)}
		b := FromComplex(x)
		if !(b.Scale > 0) || math.IsInf(1/b.Scale, 0) || math.IsNaN(b.Scale) {
			t.Fatalf("bad scale %v", b.Scale)
		}
		if maxAbs <= b.Scale { // beyond maxScale the conversion saturates by contract
			bound := b.Scale / 65536 * (1 + 1e-12)
			if err := roundTripErr(x, b); err > bound {
				t.Fatalf("round-trip error %g exceeds %g (scale %g)", err, bound, b.Scale)
			}
		}
		y := b.ToComplex(nil)
		b2 := New(len(y))
		b2.SetComplexAt(y, b.Scale)
		for i := range b.I {
			if b.I[i] != b2.I[i] || b.Q[i] != b2.Q[i] {
				t.Fatalf("re-quantization not idempotent at sample %d", i)
			}
		}
	})
}
