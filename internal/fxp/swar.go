package fxp

import (
	"fmt"
	"math"
	"unsafe"

	"lscatter/internal/rng"
)

// lanes is the number of int16 mantissas packed per 64-bit word.
const lanes = 4

// signMask selects every lane's sign bit.
const signMask = 0x8000_8000_8000_8000

// wordsToInt16 views a word slice as its packed int16 lanes. Lane order is
// the host's native int16 layout; every producer and consumer in this
// package goes through this same view, so no code depends on a particular
// endianness — except that lane l of word w is sample 4w+l, which holds on
// the little-endian targets this repository runs on and is asserted by the
// package tests.
func wordsToInt16(w []uint64) []int16 {
	if len(w) == 0 {
		return nil
	}
	return unsafe.Slice((*int16)(unsafe.Pointer(&w[0])), len(w)*lanes)
}

// addSatWords adds src into dst lane-wise with per-lane saturation: the
// carry between lanes is suppressed by masking the sign bits out of the
// adder, and overflowing lanes are replaced branchlessly-per-word with the
// rail matching dst's lane sign.
func addSatWords(dst, src []uint64) {
	if len(dst) != len(src) {
		panic("fxp: addSatWords length mismatch")
	}
	for k := range dst {
		a, b := dst[k], src[k]
		sum := ((a &^ signMask) + (b &^ signMask)) ^ ((a ^ b) & signMask)
		// A lane overflowed iff both operands share a sign that the sum
		// does not.
		if ovf := (^(a ^ b) & (a ^ sum)) & signMask; ovf != 0 {
			// Per overflowing lane: 0x7FFF when a was positive, 0x8000 when
			// negative. All shifts stay inside their 16-bit lane.
			sat := (ovf - ovf>>15) + (a&ovf)>>15
			m := (ovf >> 15) * 0xFFFF
			sum = (sum &^ m) | (sat & m)
		}
		dst[k] = sum
	}
}

// PackBiased packs mantissas into 4-lane words in the offset-binary form the
// streamer's carry-free adder needs: stored lane = mant + 32768 - noiseMax,
// a non-negative value with noiseMax steps of headroom reserved below the
// lane ceiling. Adding a noise lane shifted by +noiseMax (see NewNoiseTable)
// then yields mant_total + 32768 with no carry ever crossing a lane
// boundary, so composite-plus-noise is a single machine add per four
// samples. It panics when a mantissa violates the headroom contract
// |mant| + noiseMax <= 32767. Tail lanes beyond len(mant) hold the bias of
// a zero mantissa. dst must hold ceil(len(mant)/4) words.
func PackBiased(dst []uint64, mant []int16, noiseMax int) {
	if noiseMax < 0 || noiseMax > MaxMant {
		panic(fmt.Sprintf("fxp: PackBiased noiseMax %d out of [0,32767]", noiseMax))
	}
	if need := (len(mant) + lanes - 1) / lanes; len(dst) < need {
		panic(fmt.Sprintf("fxp: PackBiased needs %d words, got %d", need, len(dst)))
	}
	bias := One - noiseMax
	for w := range dst {
		var word uint64
		for l := 0; l < lanes; l++ {
			k := w*lanes + l
			m := 0
			if k < len(mant) {
				m = int(mant[k])
			}
			if m > MaxMant-noiseMax || m < -(MaxMant-noiseMax) {
				panic(fmt.Sprintf("fxp: PackBiased mantissa %d breaks the |m|+%d <= 32767 headroom contract", m, noiseMax))
			}
			word |= uint64(uint16(m+bias)) << (16 * l)
		}
		dst[w] = word
	}
}

// UnbiasWords converts offset-binary lanes (value + 32768) back to two's
// complement mantissas in place: one XOR of the sign mask per word.
func UnbiasWords(w []uint64) {
	for k := range w {
		w[k] ^= signMask
	}
}

// NewNoiseTable builds a power-of-two ring of packed Gaussian noise lanes
// for the streamer: each lane is round(N(0, sigmaMant)) clamped to
// ±clampMant, stored shifted by +clampMant so every lane is non-negative
// (the counterpart of PackBiased's reserved headroom). sigmaMant and
// clampMant are in mantissa steps; sigmaMant 0 yields an all-zero-noise
// table (clampMant must then be 0). The ring is deliberately small enough
// to stay cache-resident and is reused cyclically — the streamer's
// documented statistical shortcut (docs/PERFORMANCE.md).
func NewNoiseTable(r *rng.Source, words int, sigmaMant float64, clampMant int) []uint64 {
	if words <= 0 || words&(words-1) != 0 {
		panic(fmt.Sprintf("fxp: noise table length %d must be a power of two", words))
	}
	if sigmaMant < 0 || math.IsNaN(sigmaMant) || math.IsInf(sigmaMant, 0) {
		panic(fmt.Sprintf("fxp: noise sigma %v must be finite and >= 0", sigmaMant))
	}
	if sigmaMant == 0 && clampMant != 0 {
		panic("fxp: zero-sigma noise table needs clampMant 0")
	}
	if clampMant < 0 || clampMant > MaxMant {
		panic(fmt.Sprintf("fxp: noise clamp %d out of [0,32767]", clampMant))
	}
	out := make([]uint64, words)
	if sigmaMant == 0 {
		return out
	}
	for w := range out {
		var word uint64
		for l := 0; l < lanes; l++ {
			n := int(math.Round(r.NormFloat64() * sigmaMant))
			if n > clampMant {
				n = clampMant
			} else if n < -clampMant {
				n = -clampMant
			}
			word |= uint64(uint16(n+clampMant)) << (16 * l)
		}
		out[w] = word
	}
	return out
}

// StreamSelectAdd is the streamer's fused per-subframe hot loop: for each
// basic-timing unit u (one packed I word and one packed Q word, interleaved
// I,Q per unit), it selects between the precomputed phase-0 composite c0 and
// its phase-pi counterpart via the XOR difference d = c0 ^ c1 under the
// unit's packed phase bit, adds the next ring lanes of noise, and stores the
// result. All inputs are in the PackBiased offset-binary form with a shared
// headroom contract, so the noise add is a plain uint64 add with no carry
// between lanes. The unbias back to two's complement (the UnbiasWords XOR)
// is fused into the store — out comes back holding plain Q1.15 mantissas,
// saving a second full pass over the subframe. phase holds one bit per unit,
// bit u of word u/64; noise must be a power-of-two-length ring from
// NewNoiseTable. np is the running ring position; the advanced position is
// returned.
func StreamSelectAdd(out, c0, d, phase, noise []uint64, np int) int {
	units := len(out) / 2
	nm := len(noise) - 1
	for blk := 0; blk*64 < units; blk++ {
		w := phase[blk]
		end := units - blk*64
		if end > 64 {
			end = 64
		}
		// Reslice the block's words to a shared symbolic length so the
		// compiler can prove every index below in bounds (no per-word
		// checks), and hoist the ring wrap test out of the inner loop: a
		// block touches 2*end <= 128 consecutive ring words, so all but the
		// wrapping block take the mask-free fast path.
		n2 := 2 * end
		base := blk * 128
		o := out[base : base+n2]
		a := c0[base : base+n2]
		b := d[base : base+n2]
		a = a[:len(o)]
		b = b[:len(o)]
		if p := np & nm; p+n2 <= len(noise) {
			ns := noise[p : p+n2]
			ns = ns[:len(o)]
			for k := 0; k < len(o)-1; k += 2 {
				sel := -(w & 1)
				w >>= 1
				o[k] = ((a[k] ^ (b[k] & sel)) + ns[k]) ^ signMask
				o[k+1] = ((a[k+1] ^ (b[k+1] & sel)) + ns[k+1]) ^ signMask
			}
		} else {
			for k := 0; k < len(o)-1; k += 2 {
				sel := -(w & 1)
				w >>= 1
				o[k] = ((a[k] ^ (b[k] & sel)) + noise[(p+k)&nm]) ^ signMask
				o[k+1] = ((a[k+1] ^ (b[k+1] & sel)) + noise[(p+k+1)&nm]) ^ signMask
			}
		}
		np += n2
	}
	return np
}
