// Package fxp is the fixed-point IQ lane: Q1.15 complex samples in
// structure-of-arrays buffers, the scalar saturating arithmetic they need,
// and the packed-word (SWAR) kernels that let the hot transport loops
// process four samples per integer operation on a plain 64-bit core.
//
// Representation. A Buf holds one waveform segment as two int16 slices —
// all I mantissas, then all Q mantissas — plus a single block scale:
//
//	sample[k] = Scale/32768 * (I[k] + j·Q[k])
//
// Mantissas are Q1.15 two's complement. Conversions from complex128 pick a
// power-of-two Scale that puts the block's largest component magnitude in
// the upper half of the mantissa range, then round each component to the
// nearest representable value, so the per-component quantization error is
// bounded by Scale/65536 (half a least-significant step). The block scale
// makes pure amplitude gains free: scaling a Buf multiplies Scale and
// touches no samples.
//
// Arithmetic. SatAdd and MulQ15 are the conventional Q1.15 primitives:
// addition saturates at the int16 rails, multiplication is a 32-bit product
// arithmetically shifted down 15 with round-to-nearest-even and saturation
// (so MulQ15(-32768, -32768) = 32767, not the wrapped -32768). Buffer-level
// operations (AccumulateSat, Rotate, the channel and impairment stages that
// build on them) align block scales by Q15-scaling the smaller-scale
// operand and reserve explicit headroom bits where sums can grow, so
// saturation is an engineered corner case, not a silent steady state; the
// resulting error budget is derived in docs/PERFORMANCE.md.
//
// The float lane (complex128 throughout) remains this repository's
// conformance reference: every fxp consumer keeps its float path, and the
// dual-lane differential tests pin the fixed-point results within the
// documented budget of it.
package fxp

import (
	"fmt"
	"math"
)

// FracBits is the Q1.15 fraction width: mantissa full scale is 1<<FracBits.
const FracBits = 15

// One is the mantissa value representing 1.0 before saturation (1<<15).
// The largest representable mantissa is One-1.
const One = 1 << FracBits

// MaxMant and MinMant are the int16 mantissa rails.
const (
	MaxMant = math.MaxInt16
	MinMant = math.MinInt16
)

// Sat32 clamps a 32-bit value to the int16 rails.
func Sat32(v int32) int16 {
	if v > MaxMant {
		return MaxMant
	}
	if v < MinMant {
		return MinMant
	}
	return int16(v)
}

// SatAdd returns a+b with saturation at the int16 rails.
func SatAdd(a, b int16) int16 { return Sat32(int32(a) + int32(b)) }

// SatSub returns a-b with saturation at the int16 rails.
func SatSub(a, b int16) int16 { return Sat32(int32(a) - int32(b)) }

// MulQ15 multiplies two Q1.15 values: the 32-bit product shifted down
// FracBits with round-to-nearest-even, saturated at the rails. The lone
// overflow case is (-32768)·(-32768), which saturates to 32767.
func MulQ15(a, b int16) int16 {
	p := int32(a) * int32(b)
	return Sat32(rne15(p))
}

// rne15 arithmetically shifts a 32-bit product down 15 bits with
// round-to-nearest, ties to even.
func rne15(p int32) int32 {
	r := p >> FracBits
	rem := p - r<<FracBits // in [0, 32768)
	if rem > One/2 || (rem == One/2 && r&1 != 0) {
		r++
	}
	return r
}

// QuantQ15 rounds x (in [-1, 1]) to the nearest Q1.15 mantissa, clamped to
// ±MaxMant. The clamp is symmetric — QuantQ15 never returns -32768 — so a
// quantized block can be negated without re-saturation. Non-finite input
// panics: a NaN mantissa would silently corrupt every downstream sum.
func QuantQ15(x float64) int16 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		panic(fmt.Sprintf("fxp: QuantQ15(%v)", x))
	}
	v := math.RoundToEven(x * One)
	if v > MaxMant {
		return MaxMant
	}
	if v < -MaxMant {
		return -MaxMant
	}
	return int16(v)
}

// Block scales are clamped to powers of two whose reciprocal is still a
// finite normal float64, so denormal-adjacent inputs quantize (to zero,
// within the ordinary error bound) instead of overflowing the conversion.
const (
	minScale = 0x1p-1021
	maxScale = 0x1p1023
)

// pow2Ceil returns the smallest power of two >= x for positive finite x,
// clamped to [minScale, maxScale].
func pow2Ceil(x float64) float64 {
	e := math.Ceil(math.Log2(x))
	p := math.Ldexp(1, int(e))
	// Near the float64 ceiling Ldexp overflows to +Inf; the clamp contract
	// resolves that to maxScale (larger components saturate at the rails).
	if math.IsInf(p, 0) || p > maxScale {
		return maxScale
	}
	// Guard the log2 rounding at exact powers of two.
	for p < x && p < maxScale {
		p *= 2
	}
	for p/2 >= x && p/2 >= minScale {
		p /= 2
	}
	if p < minScale {
		p = minScale
	}
	if p > maxScale {
		p = maxScale
	}
	return p
}

// Buf is one waveform segment in block-scaled Q1.15 SoA form. I and Q alias
// a single word-aligned backing store, so the SWAR kernels can view either
// component as packed uint64 words.
type Buf struct {
	// I and Q hold the component mantissas.
	I, Q []int16
	// Scale is the block scale: sample k = Scale/32768 * (I[k] + j·Q[k]).
	// Always positive; conversions keep it a power of two.
	Scale float64

	words []uint64 // backing store: I words, then Q words
}

// New allocates a Buf of n samples with Scale 1.
func New(n int) *Buf {
	b := &Buf{Scale: 1}
	b.Resize(n)
	return b
}

// Len returns the sample count.
func (b *Buf) Len() int { return len(b.I) }

// Resize re-dimensions the buffer to n samples, reallocating only when the
// backing store is too small. Newly exposed samples are zeroed.
func (b *Buf) Resize(n int) {
	w := (n + lanes - 1) / lanes // words per component
	if cap(b.words) < 2*w {
		b.words = make([]uint64, 2*w)
	}
	b.words = b.words[:2*w]
	iw := wordsToInt16(b.words[:w])
	qw := wordsToInt16(b.words[w:])
	b.I = iw[:n]
	b.Q = qw[:n]
}

// IWords and QWords expose the component mantissas as packed 4-lane words
// (little-endian lane order: lane l of word w is sample 4w+l). The final
// word's tail lanes beyond Len() are part of the padding and may hold
// anything; kernels that write whole words may clobber them.
func (b *Buf) IWords() []uint64 { return b.words[:len(b.words)/2] }

// QWords is the Q-component counterpart of IWords.
func (b *Buf) QWords() []uint64 { return b.words[len(b.words)/2:] }

// FromComplex converts x into a fresh Buf with an automatic power-of-two
// block scale.
func FromComplex(x []complex128) *Buf {
	b := New(len(x))
	b.SetComplex(x)
	return b
}

// SetComplex fills b from x, picking the block scale automatically: the
// smallest power of two bounding the largest component magnitude (so
// mantissa utilization is at least half scale and quantization error at most
// Scale/65536 per component). An all-zero block gets Scale 1.
func (b *Buf) SetComplex(x []complex128) {
	maxAbs := 0.0
	for _, v := range x {
		if a := math.Abs(real(v)); a > maxAbs {
			maxAbs = a
		}
		if a := math.Abs(imag(v)); a > maxAbs {
			maxAbs = a
		}
	}
	scale := 1.0
	if maxAbs > 0 {
		scale = pow2Ceil(maxAbs)
	}
	b.SetComplexAt(x, scale)
}

// SetComplexAt fills b from x at a caller-chosen scale. Components beyond
// ±scale saturate at the symmetric rails.
func (b *Buf) SetComplexAt(x []complex128, scale float64) {
	if !(scale > 0) || math.IsInf(scale, 0) || math.IsNaN(scale) || math.IsInf(1/scale, 0) {
		panic(fmt.Sprintf("fxp: block scale %v must be positive, finite and invertible", scale))
	}
	b.Resize(len(x))
	b.Scale = scale
	inv := 1 / scale
	for i, v := range x {
		b.I[i] = QuantQ15(real(v) * inv)
		b.Q[i] = QuantQ15(imag(v) * inv)
	}
}

// ToComplex materializes the buffer into dst (allocated when nil or short)
// and returns it.
func (b *Buf) ToComplex(dst []complex128) []complex128 {
	if len(dst) < len(b.I) {
		dst = make([]complex128, len(b.I))
	}
	dst = dst[:len(b.I)]
	k := b.Scale / One
	for i := range dst {
		dst[i] = complex(float64(b.I[i])*k, float64(b.Q[i])*k)
	}
	return dst
}

// At returns sample i as a complex128.
func (b *Buf) At(i int) complex128 {
	k := b.Scale / One
	return complex(float64(b.I[i])*k, float64(b.Q[i])*k)
}

// CopyFrom makes b a copy of src (sharing no storage).
func (b *Buf) CopyFrom(src *Buf) {
	b.Resize(src.Len())
	copy(b.I, src.I)
	copy(b.Q, src.Q)
	b.Scale = src.Scale
}

// ScaleBy applies a pure positive amplitude gain: Scale is multiplied, no
// sample is touched. This is the block-scale representation's free lunch —
// fixed gains and path losses cost O(1).
func (b *Buf) ScaleBy(g float64) {
	if !(g > 0) || math.IsInf(g, 0) || math.IsNaN(g) {
		panic(fmt.Sprintf("fxp: ScaleBy(%v) needs a positive finite gain", g))
	}
	b.Scale *= g
}

// Rotate multiplies every sample by the complex gain c: the magnitude folds
// into the block scale (free), the residual unit phasor is applied as a
// Q1.15 complex rotation per sample. c must be nonzero and finite.
func (b *Buf) Rotate(c complex128) {
	mag := math.Hypot(real(c), imag(c))
	if !(mag > 0) || math.IsInf(mag, 0) || math.IsNaN(mag) {
		panic(fmt.Sprintf("fxp: Rotate(%v) needs a nonzero finite gain", c))
	}
	b.Scale *= mag
	cr, ci := real(c)/mag, imag(c)/mag
	if ci == 0 && cr > 0 {
		return // pure positive real gain: fully absorbed by Scale
	}
	qr, qi := QuantQ15(cr), QuantQ15(ci)
	for k := range b.I {
		i, q := int32(b.I[k]), int32(b.Q[k])
		b.I[k] = Sat32(rne15(i*int32(qr) - q*int32(qi)))
		b.Q[k] = Sat32(rne15(i*int32(qi) + q*int32(qr)))
	}
}

// RotateSample rotates one IQ pair by the Q1.15 phasor (cr, ci) with
// round-to-nearest-even and saturation: the scalar core of Buf.Rotate,
// exported for stages that apply a per-sample-varying phasor (the SSB
// switch waveform, the fxp demod front end).
func RotateSample(i, q, cr, ci int16) (int16, int16) {
	return Sat32(rne15(int32(i)*int32(cr) - int32(q)*int32(ci))),
		Sat32(rne15(int32(i)*int32(ci) + int32(q)*int32(cr)))
}

// ScaledView returns a shallow view of b sharing its sample storage with
// the block scale multiplied by g (positive finite). The view must be
// treated as read-only — writes through either alias corrupt the other.
// It is the zero-cost form of a pure gain on a buffer the caller may not
// mutate (e.g. a parked tag's echo of the shared ambient block).
func (b *Buf) ScaledView(g float64) *Buf {
	if !(g > 0) || math.IsInf(g, 0) || math.IsNaN(g) {
		panic(fmt.Sprintf("fxp: ScaledView(%v) needs a positive finite gain", g))
	}
	nb := *b
	nb.Scale = b.Scale * g
	return &nb
}

// MulQ15Gain scales every mantissa by the Q1.15 factor m (round-to-nearest-
// even). The block scale is untouched: this is the alignment primitive for
// cross-scale sums.
func (b *Buf) MulQ15Gain(m int16) {
	for k := range b.I {
		b.I[k] = MulQ15(b.I[k], m)
		b.Q[k] = MulQ15(b.Q[k], m)
	}
}

// alignTo requantizes b in place to the target scale >= b.Scale.
func (b *Buf) alignTo(scale float64) {
	if scale == b.Scale {
		return
	}
	if scale < b.Scale {
		panic("fxp: alignTo can only coarsen a block scale")
	}
	ratio := b.Scale / scale
	b.MulQ15Gain(QuantQ15(ratio))
	b.Scale = scale
}

// AccumulateSat adds src into dst sample-wise with saturation. Block scales
// are aligned first: dst is coarsened to src's scale when needed (never the
// reverse — src is read-only). Lengths must match.
func AccumulateSat(dst, src *Buf) {
	if dst.Len() != src.Len() {
		panic(fmt.Sprintf("fxp: AccumulateSat length mismatch %d != %d", dst.Len(), src.Len()))
	}
	if src.Scale > dst.Scale {
		dst.alignTo(src.Scale)
	}
	if src.Scale == dst.Scale {
		addSatWords(dst.IWords(), src.IWords())
		addSatWords(dst.QWords(), src.QWords())
		return
	}
	// src is finer: fold the ratio into each added mantissa.
	m := int32(QuantQ15(src.Scale / dst.Scale))
	for k := range dst.I {
		dst.I[k] = Sat32(int32(dst.I[k]) + rne15(int32(src.I[k])*m))
		dst.Q[k] = Sat32(int32(dst.Q[k]) + rne15(int32(src.Q[k])*m))
	}
}

// MaxAbsMant returns the largest absolute mantissa across both components
// (the block's headroom indicator).
func (b *Buf) MaxAbsMant() int {
	m := 0
	for _, v := range b.I {
		if a := int(v); a > m {
			m = a
		} else if -a > m {
			m = -a
		}
	}
	for _, v := range b.Q {
		if a := int(v); a > m {
			m = a
		} else if -a > m {
			m = -a
		}
	}
	return m
}
