package experiments

import (
	"strconv"
	"testing"

	"lscatter/internal/core"
	"lscatter/internal/ltephy"
)

// TestResilienceOffRowMatchesCleanChain pins the regression anchor: the "off"
// rung runs the exact chain with no impairment config at all, so its BER and
// throughput columns must equal a direct core.Run of the same scenario.
func TestResilienceOffRowMatchesCleanChain(t *testing.T) {
	res := ResilienceSweep(1)
	cfg := core.DefaultLinkConfig(ltephy.BW1_4)
	cfg.Mode = core.Exact
	cfg.Subframes = 6
	cfg.Seed = 1
	clean := core.Run(cfg)

	off := res.Rows[0]
	if off[0] != "off" || off[1] != "clean" {
		t.Fatalf("first row = %v, want the clean 'off' rung", off)
	}
	if got, want := off[2], fber(clean.BER); got != want {
		t.Errorf("off BER column = %s, clean chain = %s", got, want)
	}
	if got, want := off[3], fbps(clean.ThroughputBps); got != want {
		t.Errorf("off throughput column = %s, clean chain = %s", got, want)
	}
	if off[5] != "0" {
		t.Errorf("off reacq column = %s, want 0", off[5])
	}
}

// TestResilienceLadderDegrades checks the sweep's shape: every rung is
// present in order, and the severe rung is strictly the worst of the ladder
// in both PHY BER and ARQ efficiency.
func TestResilienceLadderDegrades(t *testing.T) {
	res := ResilienceSweep(1)
	levels := ImpairmentLevels()
	if len(res.Rows) != len(levels) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(levels))
	}
	ber := make([]float64, len(res.Rows))
	eff := make([]float64, len(res.Rows))
	for i, row := range res.Rows {
		if row[0] != levels[i].Name {
			t.Fatalf("row %d level = %s, want %s", i, row[0], levels[i].Name)
		}
		b, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("row %d BER %q: %v", i, row[2], err)
		}
		e, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			t.Fatalf("row %d ARQ eff %q: %v", i, row[6], err)
		}
		ber[i], eff[i] = b, e
	}
	last := len(res.Rows) - 1
	for i := 0; i < last; i++ {
		if ber[last] <= ber[i] {
			t.Errorf("severe BER %g not worse than %s BER %g", ber[last], res.Rows[i][0], ber[i])
		}
		if eff[last] >= eff[i] {
			t.Errorf("severe ARQ eff %g not worse than %s eff %g", eff[last], res.Rows[i][0], eff[i])
		}
	}
	if eff[0] != 1 {
		t.Errorf("off ARQ efficiency = %g, want 1 (lossless channel)", eff[0])
	}
}

// TestResilienceSweepReproducible locks the whole artifact: same seed, same
// rendered table, byte for byte.
func TestResilienceSweepReproducible(t *testing.T) {
	a := ResilienceSweep(7).Render()
	b := ResilienceSweep(7).Render()
	if a != b {
		t.Fatalf("sweep not reproducible:\n%s\nvs\n%s", a, b)
	}
}
