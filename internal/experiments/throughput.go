package experiments

import (
	"fmt"

	"lscatter/internal/channel"
	"lscatter/internal/core"
	"lscatter/internal/ltephy"
	"lscatter/internal/stats"
	"lscatter/internal/traffic"
)

func init() {
	register("F16", Fig16SmartHomeDay)
	register("F17", Fig17HomeOccupancy)
	register("F18", Fig18Bandwidth)
	register("F19", Fig19DistanceMatrix)
	register("F21", Fig21MallDay)
	register("F22", Fig22MallOccupancy)
	register("F26", Fig26OutdoorDay)
	register("F27", Fig27OutdoorOccupancy)
}

// hourlyComparison runs the WiFi-backscatter and LScatter throughput
// distributions per hour for a venue (Figures 16, 21, 26).
func hourlyComparison(id, title string, venue traffic.Venue, hours []int, seed uint64) *Result {
	occ := traffic.NewModel(traffic.WiFi, venue, seed)
	res := &Result{
		ID:     id,
		Title:  title,
		Header: []string{"hour", "WiFiBS q1", "WiFiBS med", "WiFiBS q3", "LScatter q1", "LScatter med", "LScatter q3"},
	}
	const perHour = 24
	var wifiAll, lsAll []float64
	for _, h := range hours {
		var wifi []float64
		for i := 0; i < perHour; i++ {
			w := wifiBaselineAt(venue, 3, seed+uint64(h*100+i))
			sample := occ.Sample(float64(h) + float64(i)/perHour)
			wifi = append(wifi, w.Evaluate(sample, occ.WiFiUsableFraction()).ThroughputBps)
		}
		var link core.LinkConfig
		switch venue {
		case traffic.Mall:
			link = mallLink(seed+uint64(h), 30)
		case traffic.Outdoor:
			link = outdoorLink(seed+uint64(h), 30)
		default:
			link = homeLink(seed + uint64(h))
		}
		ls := core.Samples(link, perHour)
		wifiAll = append(wifiAll, wifi...)
		lsAll = append(lsAll, ls...)
		wb, lb := stats.BoxPlot(wifi), stats.BoxPlot(ls)
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", h),
			fbps(wb.Q1), fbps(wb.Median), fbps(wb.Q3),
			fbps(lb.Q1), fbps(lb.Median), fbps(lb.Q3),
		})
	}
	wm, lm := stats.Mean(wifiAll), stats.Mean(lsAll)
	ratio := 0.0
	if wm > 0 {
		ratio = lm / wm
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("averages: WiFi backscatter %s, LScatter %s — %.0fx", fbps(wm), fbps(lm), ratio),
		"paper: LScatter averages 13.63 Mbps, 368x the WiFi backscatter (§4.3.1); LScatter is stable hour to hour")
	return res
}

// Fig16SmartHomeDay regenerates Fig 16a/16b: 24-hour throughput in the home.
func Fig16SmartHomeDay(seed uint64) *Result {
	hours := make([]int, 24)
	for i := range hours {
		hours[i] = i
	}
	return hourlyComparison("F16", "Smart home: throughput over 24 hours (WiFi backscatter vs LScatter)",
		traffic.Home, hours, seed)
}

// Fig21MallDay regenerates Fig 21a/21b: mall throughput 10am-9pm.
func Fig21MallDay(seed uint64) *Result {
	var hours []int
	for h := 10; h <= 21; h++ {
		hours = append(hours, h)
	}
	return hourlyComparison("F21", "Shopping mall: throughput 10am-9pm (WiFi backscatter vs LScatter)",
		traffic.Mall, hours, seed)
}

// Fig26OutdoorDay regenerates Fig 26a/26b: outdoor 24-hour throughput.
func Fig26OutdoorDay(seed uint64) *Result {
	hours := make([]int, 24)
	for i := range hours {
		hours[i] = i
	}
	return hourlyComparison("F26", "Outdoor: throughput over 24 hours (WiFi backscatter vs LScatter)",
		traffic.Outdoor, hours, seed)
}

// occupancyByHour renders the WiFi-vs-LTE occupancy comparison for a venue
// (Figures 17, 22, 27).
func occupancyByHour(id, title string, venue traffic.Venue, hours []int, seed uint64) *Result {
	wifi := traffic.NewModel(traffic.WiFi, venue, seed)
	lte := traffic.NewModel(traffic.LTE, venue, seed+1)
	res := &Result{
		ID:     id,
		Title:  title,
		Header: []string{"hour", "WiFi occupancy", "LTE occupancy"},
	}
	for _, h := range hours {
		var w, l float64
		const n = 40
		for i := 0; i < n; i++ {
			w += wifi.Sample(float64(h) + float64(i)/n)
			l += lte.Sample(float64(h) + float64(i)/n)
		}
		res.Rows = append(res.Rows, []string{fmt.Sprintf("%d", h), f3(w / n), f3(l / n)})
	}
	res.Notes = append(res.Notes, "LTE holds 1.0 at every hour; WiFi follows the venue's activity (paper Figs 17/22/27)")
	return res
}

// Fig17HomeOccupancy regenerates Fig 17.
func Fig17HomeOccupancy(seed uint64) *Result {
	hours := make([]int, 24)
	for i := range hours {
		hours[i] = i
	}
	return occupancyByHour("F17", "Smart home: traffic occupancy ratio over 24 hours", traffic.Home, hours, seed)
}

// Fig22MallOccupancy regenerates Fig 22.
func Fig22MallOccupancy(seed uint64) *Result {
	var hours []int
	for h := 10; h <= 21; h++ {
		hours = append(hours, h)
	}
	return occupancyByHour("F22", "Shopping mall: traffic occupancy ratio 10am-9pm", traffic.Mall, hours, seed)
}

// Fig27OutdoorOccupancy regenerates Fig 27.
func Fig27OutdoorOccupancy(seed uint64) *Result {
	hours := make([]int, 24)
	for i := range hours {
		hours[i] = i
	}
	return occupancyByHour("F27", "Outdoor: traffic occupancy ratio over 24 hours", traffic.Outdoor, hours, seed)
}

// Fig18Bandwidth regenerates Fig 18a/18b: LScatter throughput at all six LTE
// bandwidths, LoS and NLoS.
func Fig18Bandwidth(seed uint64) *Result {
	res := &Result{
		ID:     "F18",
		Title:  "LScatter throughput vs LTE bandwidth (LoS and NLoS)",
		Header: []string{"bandwidth", "LoS", "NLoS", "NLoS drop"},
	}
	for _, bw := range ltephy.Bandwidths {
		los := core.DefaultLinkConfig(bw)
		los.Seed = seed
		nlos := los
		nlos.LoS = false
		nlos.PathLossExponent = 2.8
		tl := core.Run(los).ThroughputBps
		tn := core.Run(nlos).ThroughputBps
		drop := "-"
		if tl > 0 {
			drop = fmt.Sprintf("%.1f%%", 100*(tl-tn)/tl)
		}
		res.Rows = append(res.Rows, []string{bw.String(), fbps(tl), fbps(tn), drop})
	}
	res.Notes = append(res.Notes,
		"throughput is proportional to bandwidth; NLoS costs <10% (paper Fig 18)",
		"paper: 13.63 Mbps at 20 MHz, ~800 Kbps at 1.4 MHz")
	return res
}

// Fig19DistanceMatrix regenerates the home-setup throughput matrix over
// eNodeB-to-tag x tag-to-UE distances.
func Fig19DistanceMatrix(seed uint64) *Result {
	dists := []float64{1, 5, 10, 15, 20, 25}
	res := &Result{
		ID:    "F19",
		Title: "Throughput (Mbps) vs eNodeB-to-tag (rows) x tag-to-UE (cols) distance, 10 dBm",
	}
	res.Header = []string{"eNB-tag \\ tag-UE (ft)"}
	for _, d := range dists {
		res.Header = append(res.Header, fmt.Sprintf("%.0f", d))
	}
	for _, d1 := range dists {
		row := []string{fmt.Sprintf("%.0f", d1)}
		for _, d2 := range dists {
			cfg := homeLink(seed)
			cfg.ENodeBToTagM = channel.FeetToMeters(d1)
			cfg.TagToUEM = channel.FeetToMeters(d2)
			cfg.ENodeBToUEM = channel.FeetToMeters(d1 + d2)
			row = append(row, fmt.Sprintf("%.1f", core.Run(cfg).ThroughputBps/1e6))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"paper Fig 19: 4-13 Mbps whenever the tag is within ~15 ft of either end; decays with the product of the two hops")
	return res
}
