// Package experiments regenerates every table and figure of the paper's
// evaluation (§2 and §4) from the simulated LScatter system: each runner
// returns a Result holding the same rows/series the paper reports, rendered
// as aligned text tables.
//
// The registry can be driven one artifact at a time (Lookup, RunOne),
// sequentially (All), or by the concurrent worker pool (RunAll); the pool is
// deterministic — per-artifact seeds derive from the master seed via
// DeriveSeed, so the same seed yields byte-identical Rows at any worker
// count. Each run carries RunMetrics (wall time, allocations, waveform-cache
// hit rate), and BuildReport/Report.WriteJSON serialize a whole harness run
// for performance tracking. cmd/lscatter-bench drives the registry;
// bench_test.go wraps each runner in a testing.B benchmark.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// Result is one regenerated table or figure of the paper's evaluation.
// Everything the artifact reports lives in Header/Rows/Notes as formatted
// strings: equality of Rows is the repository's determinism criterion, and
// Render is the only consumer.
type Result struct {
	// ID is the paper artifact identifier ("T1", "F4c", "F16", ...).
	ID string
	// Title describes the artifact.
	Title string
	// Header names the columns.
	Header []string
	// Rows hold the data, already formatted.
	Rows [][]string
	// Notes carry comparisons against the paper's reported values.
	Notes []string
	// Metrics is the harness-side cost of producing this result. It is
	// populated by All/RunAll/RunOne — not by the runners themselves — and
	// never influences Rows, so two runs with the same seed compare equal
	// row-wise even when their timings differ.
	Metrics *RunMetrics
}

// Render formats the result as an aligned text table.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner produces a Result for a given seed. Runners are pure: the Result
// depends only on the seed (every random element forks from it), no state is
// shared across runners, and the same seed reproduces the same Rows — which
// is what lets RunAll execute them on concurrent workers without changing
// any output.
type Runner func(seed uint64) *Result

// registry maps artifact IDs to runners.
var registry = map[string]Runner{}

func register(id string, r Runner) {
	registry[id] = r
}

// IDs returns the registered artifact identifiers in sorted order. The
// order is the canonical result order of All and RunAll.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the raw runner for an artifact ID. The runner receives
// whatever seed it is called with verbatim; use RunOne to also collect
// RunMetrics, or All/RunAll for the whole registry with derived seeds.
func Lookup(id string) (Runner, bool) {
	r, ok := registry[id]
	return r, ok
}

// All regenerates every registered experiment in ID order. It is the
// sequential wrapper over RunAll: artifact id runs with DeriveSeed(seed, id)
// on a single worker, so its results — including every formatted row — are
// byte-identical to RunAll(ctx, seed, n) for any n.
func All(seed uint64) []*Result {
	out, _ := RunAll(context.Background(), seed, 1)
	return out
}

// Formatting helpers shared by the runners.

func fbps(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2f Mbps", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1f Kbps", v/1e3)
	default:
		return fmt.Sprintf("%.0f bps", v)
	}
}

func fber(v float64) string {
	if v <= 0 {
		return "<1e-6"
	}
	if v < 1e-6 {
		return "<1e-6"
	}
	return fmt.Sprintf("%.2e", v)
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
