package experiments

import (
	"context"
	"reflect"
	"testing"

	"lscatter/internal/core"
	"lscatter/internal/ltephy"
	"lscatter/internal/traffic"
)

func tinyDeployment() DeploymentConfig {
	return DeploymentConfig{
		Venue:        traffic.Home,
		BW:           ltephy.BW20,
		Tags:         9,
		MinTagToUEFt: 3,
		MaxTagToUEFt: 15,
		Traffic:      traffic.LTE,
		Hour:         12,
		Mode:         core.SemiAnalytic,
		TxPowerDBm:   core.Auto,
		TagLossDB:    core.Auto,
		Seed:         42,
	}
}

func TestDeploymentDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := tinyDeployment()
	base, err := RunDeployment(context.Background(), cfg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		got, err := RunDeployment(context.Background(), cfg, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d result differs from sequential:\n%+v\nvs\n%+v", workers, got, base)
		}
	}
}

func TestDeploymentPerTagSeedsDecorrelated(t *testing.T) {
	cfg := tinyDeployment()
	res, err := RunDeployment(context.Background(), cfg, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tags != cfg.Tags || len(res.PerTag) != cfg.Tags {
		t.Fatalf("fleet size mismatch: %d tags, %d reports", res.Tags, len(res.PerTag))
	}
	seeds := map[uint64]bool{}
	for i, r := range res.PerTag {
		if r.Tag != i {
			t.Fatalf("report %d carries tag index %d", i, r.Tag)
		}
		if seeds[r.Seed] {
			t.Fatalf("duplicate per-tag seed %d", r.Seed)
		}
		seeds[r.Seed] = true
	}
	// The distance ramp is monotone from Min to Max.
	if got := res.PerTag[0].TagToUEFt; got != cfg.MinTagToUEFt {
		t.Fatalf("first tag at %g ft, want %g", got, cfg.MinTagToUEFt)
	}
	if got := res.PerTag[cfg.Tags-1].TagToUEFt; got != cfg.MaxTagToUEFt {
		t.Fatalf("last tag at %g ft, want %g", got, cfg.MaxTagToUEFt)
	}
}

func TestDeploymentProgressMonotone(t *testing.T) {
	cfg := tinyDeployment()
	var calls []int
	tags := map[int]bool{}
	_, err := RunDeployment(context.Background(), cfg, 4, func(done, total int, tag TagReport) {
		if total != cfg.Tags {
			t.Errorf("progress total = %d, want %d", total, cfg.Tags)
		}
		calls = append(calls, done)
		if tags[tag.Tag] {
			t.Errorf("tag %d reported finished twice", tag.Tag)
		}
		tags[tag.Tag] = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != cfg.Tags {
		t.Fatalf("%d progress calls, want %d", len(calls), cfg.Tags)
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress done sequence %v not strictly increasing by 1", calls)
		}
	}
	// Every tag report arrives exactly once across the callback stream.
	for i := 0; i < cfg.Tags; i++ {
		if !tags[i] {
			t.Fatalf("tag %d never reported via progress", i)
		}
	}
}

func TestDeploymentCancellation(t *testing.T) {
	cfg := tinyDeployment()
	cfg.Tags = 64
	ctx, cancel := context.WithCancel(context.Background())
	_, err := RunDeployment(ctx, cfg, 2, func(done, total int, tag TagReport) {
		if done == 2 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDeploymentValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*DeploymentConfig)
		ok     bool
	}{
		{"valid", func(c *DeploymentConfig) {}, true},
		{"zero tags", func(c *DeploymentConfig) { c.Tags = 0 }, false},
		{"zero min distance", func(c *DeploymentConfig) { c.MinTagToUEFt = 0 }, false},
		{"max below min", func(c *DeploymentConfig) { c.MaxTagToUEFt = 1 }, false},
		{"bad bandwidth", func(c *DeploymentConfig) { c.BW = ltephy.Bandwidth(99) }, false},
		{"bad impairment", func(c *DeploymentConfig) { c.Impair = "apocalyptic" }, false},
		{"known impairment", func(c *DeploymentConfig) { c.Impair = "mild" }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tinyDeployment()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("expected validation error, got nil")
			}
		})
	}
}

func TestDeploymentExactModeRuns(t *testing.T) {
	cfg := tinyDeployment()
	cfg.BW = ltephy.BW1_4
	cfg.Tags = 2
	cfg.MaxTagToUEFt = 6
	cfg.Mode = core.Exact
	cfg.Subframes = 2
	res, err := RunDeployment(context.Background(), cfg, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.SyncedTags == 0 {
		t.Fatal("no tag synced in the exact smart-home close-range scenario")
	}
	for _, r := range res.PerTag {
		if r.ThroughputBps <= 0 {
			t.Fatalf("tag %d throughput %v, want > 0", r.Tag, r.ThroughputBps)
		}
	}
}
