package experiments

import (
	"context"

	"lscatter/internal/exec"
)

// DeriveSeed maps the harness master seed to the per-artifact seed used by
// All and RunAll: the master seed XORed with an FNV-1a hash of the artifact
// ID. Every artifact therefore draws from a decorrelated random stream that
// depends only on (master seed, ID) — never on which worker ran it, in what
// order, or alongside what else — which is what makes RunAll's output
// bit-identical to the sequential path at any worker count, and artifact
// bytes safe to checkpoint and shard across processes.
func DeriveSeed(seed uint64, id string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return seed ^ h
}

// RunAll regenerates every registered artifact using a pool of workers and
// returns the results in ID order, each with RunMetrics attached. It is the
// thin adapter over the shared execution layer: a Local executor running
// ExecRunner through RunAllOn — the same stack `lscatter-bench` extends
// with checkpointing (-artifact-dir/-resume) and sharding (-shard-workers).
//
// workers <= 0 selects runtime.NumCPU(); the pool is never larger than the
// registry. Determinism is unconditional: for any worker count and any
// executor, artifact id runs with DeriveSeed(seed, id) and runners share no
// mutable state, so Result.Rows are byte-identical to All(seed). If ctx is
// cancelled, RunAll stops dispatching, waits for in-flight runners, and
// returns the partial results (unrun artifacts are nil) alongside ctx.Err().
func RunAll(ctx context.Context, seed uint64, workers int) ([]*Result, error) {
	return RunAllOn(ctx, &exec.Local{Run: ExecRunner()}, seed, workers)
}

// RunOne regenerates a single artifact with the seed taken verbatim (no
// DeriveSeed, matching the historical `lscatter-bench -id` behavior) and
// attaches RunMetrics. The second return is false for an unknown ID.
func RunOne(id string, seed uint64) (*Result, bool) {
	r, ok := registry[id]
	if !ok {
		return nil, false
	}
	return runInstrumented(id, r, seed, 0), true
}
