package experiments

import (
	"fmt"
	"math"

	"lscatter/internal/channel"
	"lscatter/internal/core"
	"lscatter/internal/fleet"
	"lscatter/internal/ltephy"
	"lscatter/internal/traffic"
)

func init() { register("C1", RunCityScale) }

// cityVenue is one venue cluster of the million-tag city fleet: a tag
// population sharing a venue's link budget and diurnal demand shape, spread
// over a range of tag-to-UE distances.
type cityVenue struct {
	venue traffic.Venue
	link  core.LinkConfig
	tags  int
	// Tag-to-UE distance range in feet; tags are spread deterministically
	// across it.
	minFt, maxFt float64
	// msgPerTagHour is each tag's mean offered load at activity 1.
	msgPerTagHour float64
}

// cityVenues splits the 10^6-tag fleet across the paper's three deployment
// venues (§4.3-§4.5), with per-venue demand calibrated so the busiest venue
// saturates its shared channel at peak hour while the others stay below the
// ALOHA knee — the regime where capture arbitration earns its keep.
func cityVenues(seed uint64) []cityVenue {
	return []cityVenue{
		{traffic.Home, homeLink(seed), 500_000, 3, 20, 0.6},
		{traffic.Mall, mallLink(seed, 30), 300_000, 10, 100, 2.0},
		{traffic.Outdoor, outdoorLink(seed, 60), 200_000, 20, 200, 0.9},
	}
}

// cityHours are the representative hours-of-day sampled by the artifact:
// night trough, morning ramp, afternoon peak, evening shoulder.
var cityHours = []float64{3, 10, 15, 20}

// citySimConfig translates a venue cluster into a fleet engine config: the
// backscatter link budget collapses to a per-tag received power (the
// semi-analytic scatDBm of core, as a closed form over distance), the venue's
// WiFi diurnal profile shapes arrivals, and one 5 ms slot carries one
// backscatter burst.
func citySimConfig(v cityVenue, seed uint64) fleet.SimConfig {
	cfg := v.link
	pl := channel.PathLoss{FreqHz: cfg.CarrierHz, Exponent: cfg.PathLossExponent}
	incidentDBm := cfg.TxPowerDBm - pl.LossDB(cfg.ENodeBToTagM) + cfg.ENodeBAntennaDB + cfg.TagAntennaDB
	// Backscatter power at 1 m tag-to-UE distance; the per-tag power scales
	// it by d^-exponent without re-deriving the budget per call.
	at1mDBm := incidentDBm - cfg.TagLossDB - pl.LossDB(1) +
		cfg.TagAntennaDB + cfg.UEAntennaDB - core.DSBHarmonicLossDB - core.CleanBinLossDB
	w1 := channel.DBmToWatts(at1mDBm)
	minM, maxM := channel.FeetToMeters(v.minFt), channel.FeetToMeters(v.maxFt)
	exp := cfg.PathLossExponent

	occupied := float64(cfg.BW.Subcarriers()) * ltephy.SubcarrierSpacing
	slotSec := 0.005
	venue := v.venue

	return fleet.SimConfig{
		Config: fleet.Config{
			MAC:  fleet.AlohaCapture,
			Seed: DeriveSeed(seed, "cityscale-"+venue.String()),
		},
		Tags:          v.tags,
		SlotSec:       slotSec,
		MsgPerTagHour: v.msgPerTagHour,
		Activity:      func(hour float64) float64 { return traffic.VenueActivity(venue, hour) },
		MsgBits:       int(core.RawBackscatterRate(cfg.BW) * slotSec),
		RxPowerW: func(tag int) float64 {
			// Deterministic distance ramp across the venue's range: the tag
			// index picks a position, so capture always has a power spread.
			d := minM + (maxM-minM)*float64(tag%4096)/4096
			return w1 * math.Pow(d, -exp)
		},
		NoiseW: channel.NoiseFloorW(occupied, cfg.NoiseFigureDB),
	}
}

// RunCityScale regenerates artifact C1: a million-tag city — the three paper
// venues as shared-channel clusters — swept over four representative hours of
// the diurnal cycle by the event-driven fleet engine. No waveforms are
// synthesized; delivery resolves through each venue's link budget and
// capture-threshold arbitration, and the engine's cost is O(events), not
// O(tags x slots).
func RunCityScale(seed uint64) *Result {
	res := &Result{
		ID:    "C1",
		Title: "City-scale fleet: 10^6 tags, 3 venues, diurnal demand (event-driven engine)",
		Header: []string{"venue", "tags", "hour", "offered", "delivered", "dropped",
			"coll%", "capture", "goodput", "lat p50", "lat p99", "events"},
	}

	venues := cityVenues(seed)
	const windowSec = 60

	var totTags int
	var tot fleet.Report
	var slotTagProduct float64
	for _, v := range venues {
		sim := fleet.NewSim(citySimConfig(v, seed))
		totTags += v.tags
		for _, hour := range cityHours {
			rep := sim.Run(hour, windowSec)
			res.Rows = append(res.Rows, []string{
				v.venue.String(),
				fmt.Sprintf("%d", v.tags),
				fmt.Sprintf("%02.0f:00", hour),
				fmt.Sprintf("%d", rep.Arrivals),
				fmt.Sprintf("%d", rep.Delivered),
				fmt.Sprintf("%d", rep.Dropped),
				f1(rep.CollisionRate * 100),
				fmt.Sprintf("%d", rep.CaptureWins),
				fbps(rep.GoodputBps),
				f1(rep.LatencyMsP50) + " ms",
				f1(rep.LatencyMsP99) + " ms",
				fmt.Sprintf("%d", rep.Events),
			})
			tot.Arrivals += rep.Arrivals
			tot.Delivered += rep.Delivered
			tot.Dropped += rep.Dropped
			tot.Collisions += rep.Collisions
			tot.ActiveSlots += rep.ActiveSlots
			tot.CaptureWins += rep.CaptureWins
			tot.GoodputBps += rep.GoodputBps
			tot.Events += rep.Events
			slotTagProduct += float64(rep.Slots) * float64(v.tags)
		}
	}
	collPct := 0.0
	if tot.ActiveSlots > 0 {
		collPct = float64(tot.Collisions) / float64(tot.ActiveSlots) * 100
	}
	res.Rows = append(res.Rows, []string{
		"city", fmt.Sprintf("%d", totTags), "all",
		fmt.Sprintf("%d", tot.Arrivals),
		fmt.Sprintf("%d", tot.Delivered),
		fmt.Sprintf("%d", tot.Dropped),
		f1(collPct),
		fmt.Sprintf("%d", tot.CaptureWins),
		fbps(tot.GoodputBps / float64(len(cityHours))),
		"-", "-",
		fmt.Sprintf("%d", tot.Events),
	})

	// The ALOHA-vs-capture ablation at the busiest cell: same mall fleet at
	// the evening peak, capture arbitration disabled.
	mall := venues[1]
	capRep := fleet.Simulate(func() fleet.SimConfig {
		c := citySimConfig(mall, seed)
		c.StartHour, c.DurationSec = 20, windowSec
		return c
	}())
	alohaRep := fleet.Simulate(func() fleet.SimConfig {
		c := citySimConfig(mall, seed)
		c.MAC = fleet.Aloha
		c.StartHour, c.DurationSec = 20, windowSec
		return c
	}())

	res.Notes = append(res.Notes,
		fmt.Sprintf("event-driven engine processed %d heap events for a %.1e slot-tag product (%.0fx below per-slot-per-tag work)",
			tot.Events, slotTagProduct, slotTagProduct/float64(maxInt64(tot.Events, 1))),
		fmt.Sprintf("capture arbitration at the mall evening peak: %d delivered vs %d under plain slotted ALOHA (%.1fx)",
			capRep.Delivered, alohaRep.Delivered, float64(capRep.Delivered)/float64(maxInt64(alohaRep.Delivered, 1))),
		fmt.Sprintf("city goodput averages %s across the sampled hours on three shared 20 MHz channels", fbps(tot.GoodputBps/float64(len(cityHours)))),
	)
	return res
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
