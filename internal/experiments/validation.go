package experiments

import (
	"fmt"
	"math"

	"lscatter/internal/core"
	"lscatter/internal/dsp"
	"lscatter/internal/ltephy"
	"lscatter/internal/tag"
)

func init() {
	register("V1", ValidationModelVsChain)
}

// ValidationModelVsChain cross-validates the semi-analytic BER model (used
// by every distance/bandwidth sweep) against the bit-true waveform chain at
// matched per-unit SNR. The model folds the per-unit exponential excitation
// energy into the Rayleigh BPSK closed form
//
//	BER = 0.5 * (1 - sqrt(g/(1+g))),  g = mean per-unit matched-filter SNR
//
// with g = Oversample * 10^((-4.62 - rel)/10), where rel is the chain's
// per-sample noise level relative to the scatter power and -4.62 dB is the
// DSB first-harmonic sideband loss (-3.92) plus the clean-bin loss (-0.7).
func ValidationModelVsChain(seed uint64) *Result {
	res := &Result{
		ID:     "V1",
		Title:  "Validation: semi-analytic BER model vs bit-true chain (1.4 MHz)",
		Header: []string{"noise rel (dB)", "model g (dB)", "model BER", "chain BER", "ratio"},
	}
	p := ltephy.DefaultParams(ltephy.BW1_4)
	for _, rel := range []float64{-26, -22, -18, -14, -11} {
		g := float64(p.Oversample) * dsp.FromDB(-core.DSBHarmonicLossDB-core.CleanBinLossDB-rel)
		model := 0.5 * (1 - math.Sqrt(g/(1+g)))
		chain, _ := chainBER(ltephy.BW1_4, p.Oversample, tag.DSB, 2, rel, 6, seed)
		ratio := "-"
		if model > 0 && chain > 0 {
			ratio = fmt.Sprintf("%.2f", chain/model)
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%+.0f", rel),
			f1(10 * math.Log10(g)),
			fber(model), fber(chain), ratio,
		})
	}
	res.Notes = append(res.Notes,
		"the closed form used by Figures 18/19/23/24/28/29/30 tracks the waveform-level chain within a small factor across the operating range",
		"residual gap comes from refinement gains and preamble-estimation noise the closed form ignores")
	return res
}
