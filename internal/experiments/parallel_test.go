package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

func TestDeriveSeedDecorrelatesArtifacts(t *testing.T) {
	seen := map[uint64]string{}
	for _, id := range IDs() {
		s := DeriveSeed(1, id)
		if prev, dup := seen[s]; dup {
			t.Fatalf("artifacts %s and %s derive the same seed %d", prev, id, s)
		}
		seen[s] = id
	}
	if DeriveSeed(1, "F23") == DeriveSeed(2, "F23") {
		t.Fatal("master seed does not influence the derived seed")
	}
	if DeriveSeed(7, "F23") != DeriveSeed(7, "F23") {
		t.Fatal("derivation is not deterministic")
	}
}

// TestRunAllMatchesSequential is the harness determinism guarantee: a
// concurrent pool must reproduce the sequential path byte for byte, for
// every artifact.
func TestRunAllMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every artifact twice")
	}
	seq := All(5)
	par, err := RunAll(context.Background(), 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	ids := IDs()
	if len(seq) != len(ids) || len(par) != len(ids) {
		t.Fatalf("result counts: sequential %d, parallel %d, want %d", len(seq), len(par), len(ids))
	}
	for i, id := range ids {
		s, p := seq[i], par[i]
		if s.ID != id || p.ID != id {
			t.Fatalf("position %d: IDs %s / %s, want %s", i, s.ID, p.ID, id)
		}
		if !reflect.DeepEqual(s.Header, p.Header) {
			t.Errorf("%s: headers differ", id)
		}
		if !reflect.DeepEqual(s.Rows, p.Rows) {
			t.Errorf("%s: rows differ between sequential and 8-worker runs", id)
		}
		if !reflect.DeepEqual(s.Notes, p.Notes) {
			t.Errorf("%s: notes differ", id)
		}
	}
}

func TestRunAllAttachesMetrics(t *testing.T) {
	results, err := RunAll(context.Background(), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		m := res.Metrics
		if m == nil {
			t.Fatalf("%s: no metrics attached", res.ID)
		}
		if m.ID != res.ID || m.Rows != len(res.Rows) {
			t.Fatalf("%s: metrics mismatch: %+v", res.ID, m)
		}
		if m.Seed != DeriveSeed(3, res.ID) {
			t.Fatalf("%s: ran with seed %d, want derived seed", res.ID, m.Seed)
		}
		if m.WallSeconds < 0 {
			t.Fatalf("%s: negative wall time", res.ID)
		}
	}
}

func TestRunAllCancelledContextStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := RunAll(ctx, 1, 2)
	if err == nil {
		t.Fatal("cancelled run reported no error")
	}
	ran := 0
	for _, r := range results {
		if r != nil {
			ran++
		}
	}
	if ran != 0 {
		t.Fatalf("%d artifacts ran despite pre-cancelled context", ran)
	}
}

func TestRunOneUsesSeedVerbatim(t *testing.T) {
	res, ok := RunOne("T1", 9)
	if !ok {
		t.Fatal("T1 not found")
	}
	if res.Metrics == nil || res.Metrics.Seed != 9 {
		t.Fatalf("RunOne metrics = %+v, want verbatim seed 9", res.Metrics)
	}
	if _, ok := RunOne("nope", 1); ok {
		t.Fatal("unknown artifact reported success")
	}
}

func TestBuildReportRoundTripsJSON(t *testing.T) {
	results, err := RunAll(context.Background(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildReport(2, 2, 1500*time.Millisecond, results)
	if rep.Seed != 2 || rep.Workers != 2 || rep.WallSeconds != 1.5 {
		t.Fatalf("report header: %+v", rep)
	}
	if len(rep.Artifacts) != len(IDs()) {
		t.Fatalf("report has %d artifacts, want %d", len(rep.Artifacts), len(IDs()))
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(back.Artifacts) != len(rep.Artifacts) || back.Artifacts[0].ID != IDs()[0] {
		t.Fatalf("round trip lost artifacts: %+v", back.Artifacts[:1])
	}
	if back.Cache.Hits+back.Cache.Misses == 0 {
		t.Fatal("report records no waveform-cache traffic")
	}
}
