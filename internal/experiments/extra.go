package experiments

import (
	"fmt"
	"math"

	"lscatter/internal/channel"
	"lscatter/internal/core"
	"lscatter/internal/dsp"
	"lscatter/internal/enodeb"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
	"lscatter/internal/simlink"
	"lscatter/internal/tag"
)

func init() {
	register("F3", Fig3Coverage)
	register("I1", InterferencePSD)
	register("M1", MultiTagScaling)
}

// Fig3Coverage reproduces the spirit of the paper's Figure 3 (LoRaWAN vs LTE
// coverage maps) with a synthetic deployment model: base stations dropped
// over a metropolitan area at each technology's real-world site density, a
// point covered when its strongest site clears the link budget.
func Fig3Coverage(seed uint64) *Result {
	r := rng.New(seed)
	const areaKm = 30.0 // 30 x 30 km metro
	type tech struct {
		name     string
		sites    int     // deployed sites in the area
		txDBm    float64 // site EIRP
		freqHz   float64
		sensDBm  float64 // receiver sensitivity
		exponent float64
	}
	techs := []tech{
		// Cellular macro grid: ~1 site / 1.5 km^2 in metro areas, planned
		// for contiguous coverage (urban exponent, indoor margin).
		{"LTE", 600, 46, 700e6, -100, 3.5},
		// LoRaWAN gateways: a handful of community/commercial deployments
		// clustered where their operators live.
		{"LoRaWAN", 12, 27, 915e6, -120, 3.5},
	}
	res := &Result{
		ID:     "F3",
		Title:  "Coverage comparison (synthetic metro deployment, cf. paper Fig 3 vendor maps)",
		Header: []string{"technology", "sites", "area covered"},
	}
	const probes = 4000
	for _, tc := range techs {
		// Drop sites uniformly.
		sx := make([]float64, tc.sites)
		sy := make([]float64, tc.sites)
		for i := range sx {
			if tc.name == "LoRaWAN" {
				// Clustered in a few pockets, not planned citywide.
				cx := float64(i%3)*areaKm/3 + areaKm/8
				cy := float64(i%2)*areaKm/2 + areaKm/8
				sx[i] = cx + (r.Float64()-0.5)*areaKm/8
				sy[i] = cy + (r.Float64()-0.5)*areaKm/8
				continue
			}
			sx[i] = r.Float64() * areaKm
			sy[i] = r.Float64() * areaKm
		}
		pl := channel.PathLoss{FreqHz: tc.freqHz, Exponent: tc.exponent}
		covered := 0
		for p := 0; p < probes; p++ {
			px, py := r.Float64()*areaKm, r.Float64()*areaKm
			best := math.Inf(-1)
			for i := range sx {
				d := math.Hypot(px-sx[i], py-sy[i]) * 1000
				if rxp := tc.txDBm - pl.LossDB(d); rxp > best {
					best = rxp
				}
			}
			if best >= tc.sensDBm {
				covered++
			}
		}
		res.Rows = append(res.Rows, []string{
			tc.name, fmt.Sprintf("%d", tc.sites),
			fmt.Sprintf("%.0f%%", 100*float64(covered)/probes),
		})
	}
	res.Notes = append(res.Notes,
		"paper Fig 3: AT&T's LTE map covers most places while LoRaWAN covers only scattered dots — site density, not link budget, decides ubiquity")
	return res
}

// InterferencePSD quantifies §6's interference-minimization claims at the
// waveform level: the band-by-band power of a tag's reflection relative to
// the original LTE transmission.
func InterferencePSD(seed uint64) *Result {
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	cfg.Seed = seed
	enb := enodeb.New(cfg)
	p := cfg.Params
	mod := tag.NewModulator(tag.ModConfig{Params: p, ReflectionLossDB: 0})
	r := rng.New(seed + 3)
	mod.QueueBits(r.Bits(make([]byte, 24*mod.PerSymbolBits())))
	// Taps-only session: no Link or Sink, just the ambient and raw-reflection
	// waveform taps accumulated over two subframes.
	var ambient, hybrid []complex128
	sess := &simlink.Session{
		Source: enb,
		Tags:   []*simlink.Tag{{Mod: mod}},
		Taps: simlink.Taps{
			Ambient:   func(_ *simlink.Frame, x []complex128) { ambient = append(ambient, x...) },
			Reflected: func(_ *simlink.Frame, _ int, x []complex128) { hybrid = append(hybrid, x...) },
		},
	}
	sess.Run(2)
	// Band powers via FFT over the whole capture.
	n := len(hybrid)
	plan := dsp.PlanFor(n)
	spec := make([]complex128, n)
	plan.Forward(spec, hybrid)
	ambSpec := make([]complex128, n)
	plan.Forward(ambSpec, ambient)
	fs := p.SampleRate()
	bandPower := func(s []complex128, loHz, hiHz float64) float64 {
		var acc float64
		for b := range s {
			f := float64(b) / float64(n) * fs
			if f > fs/2 {
				f -= fs
			}
			if f >= loHz && f < hiHz {
				acc += real(s[b])*real(s[b]) + imag(s[b])*imag(s[b])
			}
		}
		return acc
	}
	bw := p.BW.MHz() * 1e6
	shift := p.ShiftFrequency()
	ambIn := bandPower(ambSpec, -bw/2, bw/2)
	res := &Result{
		ID:     "I1",
		Title:  "Interference analysis: tag reflection power by band (0 dB reflection, worst case)",
		Header: []string{"band", "power vs ambient in-band"},
	}
	row := func(name string, pw float64) {
		res.Rows = append(res.Rows, []string{name, fmt.Sprintf("%+.1f dB", dsp.DB(pw/ambIn))})
	}
	row("original LTE band", bandPower(spec, -bw/2, bw/2))
	row("upper sideband (white space, used)", bandPower(spec, shift-bw/2, shift+bw/2))
	row("lower sideband (image)", bandPower(spec, -shift-bw/2, -shift+bw/2))
	row("guard between bands", bandPower(spec, bw/2, shift-bw/2))
	res.Notes = append(res.Notes,
		"the fundamental moves the reflection out of band (Eq. 4); the residual in-band edge splatter (phase-transition spectrum) sits ~20 dB below the reflection itself",
		"a real tag adds 30-60 dB of backscatter path loss on top, burying the residue under the direct signal — which is exactly what the bit-true F32 measurement confirms (+0.00% LTE impact)",
		"the SSB switching mode (A2) suppresses the lower-sideband image as well")
	return res
}

// MultiTagScaling evaluates the §6 spectrum-sharing extension: N tags TDMA
// over the excitation, each taking every Nth burst.
func MultiTagScaling(seed uint64) *Result {
	res := &Result{
		ID:     "M1",
		Title:  "Multi-tag TDMA scaling (smart-home link)",
		Header: []string{"tags", "per-tag throughput", "aggregate", "vs 1 WiFi BS deployment"},
	}
	link := core.DefaultLinkConfig(ltephy.BW20)
	link.Seed = seed
	rep := core.Run(link)
	wifiRef := 30e3 // busy-hour WiFi backscatter goodput
	for _, n := range []int{1, 2, 4, 8, 16} {
		per := rep.ThroughputBps / float64(n)
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", n), fbps(per), fbps(rep.ThroughputBps),
			fmt.Sprintf("%.0fx", per/wifiRef),
		})
	}
	res.Notes = append(res.Notes,
		"the aggregate stays at the full LScatter rate: the excitation never idles, so TDMA splits it without waste",
		"even 16 tags each beat a whole busy-hour WiFi backscatter deployment")
	return res
}
