package experiments

import (
	"fmt"
	"math"

	"lscatter/internal/channel"
	"lscatter/internal/enodeb"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
	"lscatter/internal/simlink"
	"lscatter/internal/stats"
	"lscatter/internal/tag"
)

func init() {
	register("F8", Fig8SyncCircuit)
	register("F12", Fig12PhaseOffset)
	register("F31", Fig31SyncAccuracy)
}

// Fig8SyncCircuit regenerates the per-stage outputs of the synchronization
// circuit over 20 ms: RC-filter envelope, averaging reference, comparator.
func Fig8SyncCircuit(seed uint64) *Result {
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	cfg.Seed = seed
	e := enodeb.New(cfg)
	sc := tag.NewSyncCircuit(cfg.Params, tag.SyncConfig{Trace: true})
	// Tag-side monitor session: no Link, the frame aliases the raw downlink.
	sess := &simlink.Session{Source: e, Sink: simlink.SinkFunc(func(f *simlink.Frame) bool {
		sc.Process(f.RX)
		return true
	})}
	// Warm the averaging network, then record 20 ms.
	sess.Run(12)
	pre := len(sc.Trace().Envelope)
	sess.Run(20)
	tr := sc.Trace()
	res := &Result{
		ID:     "F8",
		Title:  "Outputs of each stage of the sync circuit (20 ms)",
		Header: []string{"t (ms)", "RC filter", "average ref", "comparator"},
	}
	// Normalize the envelope like the paper's figure.
	seg := tr.Envelope[pre:]
	_, peak := stats.MinMax(seg)
	step := len(seg) / 100
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(seg); i += step {
		t := float64(i) / tr.SampleRate * 1e3
		// Max-pool each display cell so the narrow comparator pulses and
		// envelope peaks survive the subsampling.
		env, comp := 0.0, "0"
		for j := i; j < i+step && j < len(seg); j++ {
			if seg[j] > env {
				env = seg[j]
			}
			if tr.Comparator[pre+j] == 1 {
				comp = "1"
			}
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%.2f", t),
			f3(env / peak),
			f3(tr.Average[pre+i] / peak),
			comp,
		})
	}
	res.Notes = append(res.Notes,
		"PSS peaks stand out every 5 ms; the comparator fires once per peak (paper Fig 8)")
	return res
}

// Fig12PhaseOffset regenerates the constellation-rotation illustration: the
// demodulated backscatter constellation without and with the common phase
// offset caused by tag/channel delay.
func Fig12PhaseOffset(seed uint64) *Result {
	r := rng.New(seed)
	// The backscatter alphabet is binary phase {0, pi}; the composite
	// constellation observed on subcarriers is QPSK-like after mixing with
	// the LTE payload. Show a QPSK cloud rotated by the measured phi.
	p := ltephy.DefaultParams(ltephy.BW20)
	sampleOffset := 1
	phi := 2 * math.Pi * float64(sampleOffset) / float64(p.Oversample)
	res := &Result{
		ID:     "F12",
		Title:  "Constellation rotation caused by the phase offset",
		Header: []string{"ideal I", "ideal Q", "rotated I", "rotated Q"},
	}
	rot := complex(math.Cos(phi), math.Sin(phi))
	for i := 0; i < 16; i++ {
		ideal := complex(sign(r.NormFloat64()), sign(r.NormFloat64())) / complex(math.Sqrt2, 0)
		noisy := ideal + r.Complex(0.03)
		rotated := noisy * rot
		res.Rows = append(res.Rows, []string{
			f3(real(noisy)), f3(imag(noisy)), f3(real(rotated)), f3(imag(rotated)),
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("phase offset phi = %.1f deg for a %d/%d-unit switch delay; eliminated via reference-signal conjugation (Eq. 6)",
			phi*180/math.Pi, sampleOffset, p.Oversample))
	return res
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// Fig31SyncAccuracy regenerates the synchronization-error CDF: detection
// latency of the analog circuit against an LTE receiver's PSS timing, over
// many noisy detections.
func Fig31SyncAccuracy(seed uint64) *Result {
	cfg := enodeb.DefaultConfig(ltephy.BW1_4)
	cfg.Seed = seed
	e := enodeb.New(cfg)
	sc := tag.NewSyncCircuit(cfg.Params, tag.SyncConfig{})
	r := rng.New(seed + 1)
	// 8 dB in-band SNR noise plus slow fading: each PSS arrives at a
	// different incident level, so the comparator crossing walks along the
	// envelope ramp — the jitter the paper's Fig 31 measures.
	noiseW := 0.01 * 0.16
	var errsUs []float64
	groupDelay := sc.NominalDelay() - 7e-6 - 12e-6 // filters only
	const nSubframes = 400
	fade := 1.0
	// The slow block fade is a PathStage on the direct path: a new mild fade
	// per PSS period (±~1.5 dB) — enough to walk the comparator crossing
	// along the envelope ramp without losing detections. AWGN rides on the
	// Link, drawing from the same stream right after each fade draw, so the
	// per-subframe draw order matches the original hand-rolled loop.
	fadeStage := simlink.PathFunc(func(x []complex128) []complex128 {
		out := make([]complex128, len(x))
		for j, v := range x {
			out[j] = v * complex(fade, 0)
		}
		return out
	})
	sess := &simlink.Session{
		Source: e,
		Direct: fadeStage,
		Link:   channel.NewLink(r, noiseW),
		Sink: simlink.SinkFunc(func(f *simlink.Frame) bool {
			for _, d := range sc.Process(f.RX) {
				// Reference: the LTE receiver's PSS timing (start of the PSS
				// symbol it reports), with filter group delay excluded — the
				// residual is the circuit's crossing latency + jitter. Match to
				// the nearest PSS; detections further than half a period from
				// any PSS are misses, not timing errors.
				off := float64(ltephy.UsefulStart(cfg.Params, ltephy.PSSSymbolIndex)) / cfg.Params.SampleRate()
				est := d.Time - groupDelay
				k := math.Round((est - off) / ltephy.PSSPeriod)
				e := est - (k*ltephy.PSSPeriod + off)
				if math.Abs(e) < ltephy.PSSPeriod/4 {
					errsUs = append(errsUs, e*1e6)
				}
			}
			return true
		}),
	}
	for i := 0; i < nSubframes; i++ {
		if i%5 == 0 {
			fade = 0.85 + 0.32*r.Float64()
		}
		sess.Step()
	}
	res := &Result{
		ID:     "F31",
		Title:  "Synchronization accuracy (error vs LTE receiver PSS timing)",
		Header: []string{"error (us)", "CDF"},
	}
	if len(errsUs) == 0 {
		res.Notes = append(res.Notes, "no detections — check circuit configuration")
		return res
	}
	c := stats.NewCDF(errsUs)
	for _, x := range []float64{10, 20, 25, 30, 35, 40, 45, 50, 60} {
		res.Rows = append(res.Rows, []string{f1(x), f3(c.At(x))})
	}
	s := stats.Summarize(errsUs)
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d detections, mean %.1f us, std %.1f us", s.N, s.Mean, s.Std),
		"paper Fig 31: ~90% of errors within 30-40 us; ms-level tolerance is all the design needs (§3.1)")
	return res
}
