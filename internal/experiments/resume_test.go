package experiments

import (
	"context"
	"testing"

	"lscatter/internal/exec"
	"lscatter/internal/store"
)

// TestRunAllOnCheckpointResume pins the registry-level resume contract the
// refactor rides on: a sweep checkpointed into a durable store and then
// resumed from a fresh store open restores every artifact (zero recomputes)
// and renders byte-identically — Render output is the repository's
// determinism criterion, so equality here is equality of `-all` stdout.
func TestRunAllOnCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep")
	}
	const seed = 1
	dir := t.TempDir()
	st, err := store.Open(dir, 0, t.Logf)
	if err != nil {
		t.Fatal(err)
	}

	cold := &exec.Checkpointed{Inner: &exec.Local{Run: ExecRunner()}, Store: st, Key: ArtifactKey}
	first, err := RunAllOn(context.Background(), cold, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(len(IDs()))
	if computed, restored := cold.Stats(); computed != n || restored != 0 {
		t.Fatalf("cold sweep: computed %d restored %d, want %d and 0", computed, restored, n)
	}

	// The restart: fresh store open over the same directory, resume on.
	st2, err := store.Open(dir, 0, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	resumed := &exec.Checkpointed{Inner: &exec.Local{Run: ExecRunner()}, Store: st2, Resume: true, Key: ArtifactKey}
	second, err := RunAllOn(context.Background(), resumed, seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	if computed, restored := resumed.Stats(); computed != 0 || restored != n {
		t.Fatalf("resumed sweep: computed %d restored %d, want 0 and %d", computed, restored, n)
	}
	if len(first) != len(second) {
		t.Fatalf("result counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].Render() != second[i].Render() {
			t.Fatalf("artifact %s renders differently after resume", first[i].ID)
		}
	}
}
