package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"lscatter/internal/exec"
	"lscatter/internal/store"
)

// This file is the bridge between the experiment registry and the shared
// execution layer (internal/exec): artifacts become exec.Jobs, runners
// become an exec.RunFunc, and Results round-trip through artifact bytes so
// any executor — in-process, checkpointed to a durable store, or sharded
// across lscatter-worker processes — regenerates the registry with
// byte-identical output. See docs/DISTRIBUTED.md.

// EncodeResult serializes a Result to artifact bytes. The encoding is JSON:
// every field that reaches Render is a string slice, so the round-trip
// through DecodeResult is exact and rendered tables are byte-identical to
// the in-process path no matter which executor carried the bytes.
func EncodeResult(res *Result) ([]byte, error) {
	return json.Marshal(res)
}

// DecodeResult parses artifact bytes produced by EncodeResult.
func DecodeResult(data []byte) (*Result, error) {
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("experiments: decode artifact: %w", err)
	}
	return &res, nil
}

// ExecJobs lists the registry as executor jobs in canonical ID order, each
// carrying its derived per-artifact seed — the same DeriveSeed contract
// RunAll has always had, so jobs are order- and worker-independent.
func ExecJobs(seed uint64) []exec.Job {
	ids := IDs()
	jobs := make([]exec.Job, len(ids))
	for i, id := range ids {
		jobs[i] = exec.Job{ID: id, Seed: DeriveSeed(seed, id)}
	}
	return jobs
}

// ExecRunner adapts the registry to an exec.RunFunc: look up the artifact,
// run it instrumented with the job's seed verbatim, and encode the Result.
// This is the one compute path every executor shares — lscatter-bench's
// local pool, the checkpointed resume path and the lscatter-worker shards
// all bottom out here.
func ExecRunner() exec.RunFunc {
	return func(ctx context.Context, job exec.Job) ([]byte, error) {
		r, ok := registry[job.ID]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown artifact %q", job.ID)
		}
		res := runInstrumented(job.ID, r, job.Seed, exec.Worker(ctx))
		return EncodeResult(res)
	}
}

// ArtifactKey maps a registry job to its content-addressed store key: a
// namespaced SHA-256 of the artifact ID plus the derived seed. Workers and
// resumed sweeps sharing one artifact directory agree on keys by
// construction, with no coordination.
func ArtifactKey(job exec.Job) store.Key {
	sum := sha256.Sum256([]byte("lscatter-bench-artifact:" + job.ID))
	return store.Key{SpecHash: hex.EncodeToString(sum[:]), Seed: job.Seed}
}

// RunAllOn regenerates every registered artifact through an arbitrary
// executor and returns the results in ID order. It is the generalized
// RunAll: the executor decides where and whether each job computes (local
// pool, checkpoint restore, HTTP shard), while seed derivation, ordering
// and decoding stay here — which is why the rendered output is
// byte-identical across executors.
//
// On cancellation the partial results are returned (unrun artifacts nil)
// alongside ctx.Err(); on an executor failure the first error is returned
// with whatever completed.
func RunAllOn(ctx context.Context, ex exec.Executor, seed uint64, workers int) ([]*Result, error) {
	jobs := ExecJobs(seed)
	blobs, runErr := exec.All(ctx, ex, jobs, workers)
	results := make([]*Result, len(jobs))
	for i, blob := range blobs {
		if blob == nil {
			continue
		}
		res, err := DecodeResult(blob)
		if err != nil {
			return results, fmt.Errorf("artifact %s: %w", jobs[i].ID, err)
		}
		results[i] = res
	}
	return results, runErr
}
