package experiments

import (
	"fmt"

	"lscatter/internal/app/auth"
	"lscatter/internal/channel"
	"lscatter/internal/enodeb"
	"lscatter/internal/ltephy"
	"lscatter/internal/modem"
	"lscatter/internal/power"
	"lscatter/internal/rng"
	"lscatter/internal/simlink"
	"lscatter/internal/stats"
	"lscatter/internal/tag"
	"lscatter/internal/ue"
)

func init() {
	register("F32", Fig32LTEImpact)
	register("F33b", Fig33bAuthUpdateRate)
	register("P48", PowerBudget)
}

// lteImpactSamples runs the bit-true chain and returns per-subframe LTE
// goodput samples (delivered transport-block bits per millisecond, scaled to
// bits/s), with or without an active LScatter tag.
func lteImpactSamples(bw ltephy.Bandwidth, withTag bool, subframes int, seed uint64) []float64 {
	p := ltephy.DefaultParams(bw)
	enb := enodeb.New(enodeb.Config{Params: p, Scheme: modem.QAM64, TxPowerDBm: 10, Seed: seed})
	r := rng.New(seed + 99)
	pl := channel.PathLoss{FreqHz: 680e6, Exponent: 2.2}
	sr := p.SampleRate()
	direct := channel.NewHop(r.Fork(1), pl, channel.FeetToMeters(5), 8, 0,
		channel.NewMultipath(r.Fork(2), channel.PedestrianProfile, sr))
	hop1 := channel.NewHop(r.Fork(3), pl, channel.FeetToMeters(3), 8, 0, nil)
	hop2 := channel.NewHop(r.Fork(4), pl, channel.FeetToMeters(3), 4, 0, nil)
	occupied := float64(bw.Subcarriers()) * ltephy.SubcarrierSpacing
	noisePerSample := channel.NoiseFloorW(occupied, 7) * sr / occupied
	noiseRng := r.Fork(5)
	payload := r.Fork(6)
	var tags []*simlink.Tag
	if withTag {
		mod := tag.NewModulator(tag.ModConfig{Params: p, ReflectionLossDB: 4})
		tags = append(tags, &simlink.Tag{
			Mod:  mod,
			Path: simlink.Chain(hop1, hop2),
			Feed: func(int, *tag.Modulator) {
				mod.QueueBits(payload.Bits(make([]byte, 12*mod.PerSymbolBits())))
			},
		})
	}
	sink := &simlink.LTESink{LTE: ue.NewLTEReceiver(p, modem.QAM64)}
	sess := &simlink.Session{
		Source: enb,
		Direct: direct,
		Tags:   tags,
		Link:   channel.NewLink(noiseRng, noisePerSample),
		Sink:   sink,
	}
	sess.Run(subframes)
	return sink.PerSubframe
}

// Fig32LTEImpact regenerates Fig 32: the CDF of LTE's own throughput with
// and without an active backscatter tag, at three bandwidths. The chain is
// bit-true: the tag's shifted hybrid signal is physically present in the
// received waveform.
func Fig32LTEImpact(seed uint64) *Result {
	res := &Result{
		ID:     "F32",
		Title:  "Impact on existing LTE: per-subframe LTE throughput with/without backscatter (64-QAM)",
		Header: []string{"bandwidth", "median w/o tag", "median w/ tag", "mean w/o", "mean w/", "delta"},
	}
	const subframes = 10
	for _, bw := range []ltephy.Bandwidth{ltephy.BW1_4, ltephy.BW5, ltephy.BW20} {
		without := lteImpactSamples(bw, false, subframes, seed)
		with := lteImpactSamples(bw, true, subframes, seed)
		mw, mt := stats.Mean(without), stats.Mean(with)
		delta := "-"
		if mw > 0 {
			delta = fmt.Sprintf("%+.2f%%", 100*(mt-mw)/mw)
		}
		res.Rows = append(res.Rows, []string{
			bw.String(),
			fbps(stats.Median(without)), fbps(stats.Median(with)),
			fbps(mw), fbps(mt), delta,
		})
	}
	res.Notes = append(res.Notes,
		"paper Fig 32: the backscattered signal is shifted out of the LTE band and is far weaker than the direct path, so the curves overlap")
	return res
}

// Fig33bAuthUpdateRate regenerates Fig 33b: continuous-authentication update
// rate vs tag-to-source distance.
func Fig33bAuthUpdateRate(seed uint64) *Result {
	cfg := auth.DefaultConfig()
	cfg.Link.Seed = seed
	res := &Result{
		ID:     "F33b",
		Title:  "Continuous authentication: update rate vs tag-to-source distance",
		Header: []string{"distance (ft)", "updates/s"},
	}
	for _, ft := range []float64{2, 8, 16, 24, 32, 40} {
		rate := auth.UpdateRate(cfg, channel.FeetToMeters(ft))
		res.Rows = append(res.Rows, []string{fmt.Sprintf("%.0f", ft), f1(rate)})
	}
	res.Notes = append(res.Notes,
		"paper Fig 33b: 136 samples/s at 2 ft, ~5 samples/s at 40 ft — still five authentications per second")
	return res
}

// PowerBudget regenerates the §4.8 power accounting.
func PowerBudget(uint64) *Result {
	res := &Result{
		ID:     "P48",
		Title:  "Tag power consumption (§4.8)",
		Header: []string{"bandwidth", "clock", "comparator", "RF switch", "baseband", "clock pwr", "total"},
	}
	uw := func(w float64) string { return fmt.Sprintf("%.1f uW", w*1e6) }
	for _, bw := range []ltephy.Bandwidth{ltephy.BW1_4, ltephy.BW5, ltephy.BW20} {
		for _, cs := range []power.ClockSource{power.CrystalOscillator, power.RingOscillator} {
			name := "crystal"
			if cs == power.RingOscillator {
				name = "ring-osc"
			}
			b := power.TagBudget(bw, cs)
			res.Rows = append(res.Rows, []string{
				bw.String(), name,
				uw(b.SyncComparator), uw(b.RFSwitch), uw(b.Baseband), uw(b.Clock), uw(b.Total()),
			})
		}
	}
	res.Notes = append(res.Notes,
		"paper §4.8: comparator ~10 uW, switch ~57 uW at 20 MHz, baseband ~82 uW, 30.72 MHz crystal 4.5 mW or ring oscillator ~4 uW",
		"active radios draw 18-210 mW — 2-4 orders of magnitude more (§5)")
	return res
}
