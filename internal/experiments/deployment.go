package experiments

import (
	"context"
	"fmt"
	"sync"

	"lscatter/internal/channel"
	"lscatter/internal/core"
	"lscatter/internal/ltephy"
	"lscatter/internal/simlink"
	"lscatter/internal/stats"
	"lscatter/internal/traffic"
)

// DeploymentConfig describes one fleet-scale deployment simulation: a venue,
// an ambient-carrier occupancy model, and a fleet of tags spread across a
// range of tag-to-UE distances, each evaluated as an independent LScatter
// link. It is the job-shaped entry point the serving layer
// (internal/serve) submits work through, but it is usable directly too.
//
// Determinism contract: every random element derives from Seed alone —
// per-tag link seeds via DeriveSeed(Seed, "deploy-tag-<i>"), the occupancy
// sample via DeriveSeed(Seed, "deploy-occupancy") — so the same config
// yields an identical DeploymentResult at any worker count and in any
// execution order.
type DeploymentConfig struct {
	// Venue selects the paper scenario (home §4.3, mall §4.4, outdoor §4.5);
	// it fixes the path-loss exponent and antenna setup.
	Venue traffic.Venue
	// BW is the ambient LTE channel bandwidth.
	BW ltephy.Bandwidth
	// Tags is the fleet size. Tag i sits at a tag-to-UE distance linearly
	// interpolated across [MinTagToUEFt, MaxTagToUEFt].
	Tags int
	// MinTagToUEFt and MaxTagToUEFt bound the fleet's tag-to-UE distances
	// in feet. With a single tag, MinTagToUEFt is used.
	MinTagToUEFt, MaxTagToUEFt float64
	// Traffic is the ambient-carrier occupancy model (traffic.LTE is the
	// paper's always-on downlink; traffic.WiFi/LoRa model duty-cycled
	// carriers whose occupancy scales the achievable goodput).
	Traffic traffic.Tech
	// Hour is the time of day (fractional hours) the occupancy model is
	// sampled at.
	Hour float64
	// Mode selects core.SemiAnalytic (closed-form, cheap enough for large
	// fleets) or core.Exact (bit-true waveform chain per tag).
	Mode core.Mode
	// Lane selects the exact chain's sample representation (see simlink.Lane);
	// ignored in semi-analytic mode.
	Lane simlink.Lane
	// Subframes is the exact-mode simulated length per tag in ms.
	Subframes int
	// Impair optionally names a rung of the resilience ladder
	// (ImpairmentLevels: "off", "mild", "moderate", "severe") applied to the
	// exact chain of every tag. Empty means "off".
	Impair string
	// TxPowerDBm and TagLossDB follow the core.LinkConfig sentinel rules:
	// explicit 0 is honored, core.Auto requests the documented default.
	TxPowerDBm, TagLossDB float64
	// Seed drives every random element (see the determinism contract above).
	Seed uint64
}

// Validate reports the first structural problem with the config, or nil.
func (c *DeploymentConfig) Validate() error {
	if c.Tags < 1 {
		return fmt.Errorf("deployment: Tags = %d, need at least 1", c.Tags)
	}
	if c.BW < ltephy.BW1_4 || c.BW > ltephy.BW20 {
		return fmt.Errorf("deployment: unknown bandwidth %d", int(c.BW))
	}
	if c.MinTagToUEFt <= 0 {
		return fmt.Errorf("deployment: MinTagToUEFt = %g, need > 0", c.MinTagToUEFt)
	}
	if c.MaxTagToUEFt < c.MinTagToUEFt {
		return fmt.Errorf("deployment: MaxTagToUEFt = %g < MinTagToUEFt = %g",
			c.MaxTagToUEFt, c.MinTagToUEFt)
	}
	if c.Impair != "" && impairmentLevel(c.Impair) == nil {
		return fmt.Errorf("deployment: unknown impairment level %q", c.Impair)
	}
	return nil
}

// impairmentLevel resolves a ladder rung by name, nil when unknown.
func impairmentLevel(name string) *ImpairmentLevel {
	for _, lvl := range ImpairmentLevels() {
		if lvl.Name == name {
			return &lvl
		}
	}
	return nil
}

// TagReport is the per-tag slice of a DeploymentResult.
type TagReport struct {
	// Tag is the fleet index.
	Tag int `json:"tag"`
	// TagToUEFt is the tag's distance to its UE receiver in feet.
	TagToUEFt float64 `json:"tag_to_ue_ft"`
	// Seed is the derived per-tag seed the link evaluation ran with.
	Seed uint64 `json:"seed"`
	// ThroughputBps is the tag's goodput, already scaled by the ambient
	// carrier's occupancy fraction.
	ThroughputBps float64 `json:"throughput_bps"`
	// BER is the backscatter bit error rate.
	BER float64 `json:"ber"`
	// Synced reports preamble acquisition.
	Synced bool `json:"synced"`
	// ScatterSNRdB is the post-matched-filter SNR (exact mode reports 0;
	// the bit-true chain does not expose it).
	ScatterSNRdB float64 `json:"scatter_snr_db"`
	// Reacquisitions counts carrier-loop re-acquisitions (exact mode with
	// impairments only).
	Reacquisitions int `json:"reacquisitions"`
}

// DeploymentResult aggregates a fleet evaluation. Field order — and the
// stats.Summary field order inside — is the byte layout of the serving
// layer's cached result bodies, so treat changes as API changes.
type DeploymentResult struct {
	// Venue, Bandwidth and Traffic echo the config in human-readable form.
	Venue     string `json:"venue"`
	Bandwidth string `json:"bandwidth"`
	Traffic   string `json:"traffic"`
	// Occupancy is the ambient carrier's sampled occupancy fraction; every
	// per-tag throughput is already scaled by it.
	Occupancy float64 `json:"occupancy"`
	// Tags is the fleet size.
	Tags int `json:"tags"`
	// SyncedTags counts tags whose UE acquired the preamble.
	SyncedTags int `json:"synced_tags"`
	// Throughput and BER summarize the per-tag distributions.
	Throughput stats.Summary `json:"throughput"`
	BER        stats.Summary `json:"ber"`
	// FleetGoodputBps is the TDMA view of the fleet: tags share the channel
	// one at a time, so the fleet's long-run goodput is the mean per-tag
	// goodput, not the sum.
	FleetGoodputBps float64 `json:"fleet_goodput_bps"`
	// PerTag holds the per-tag reports in fleet order.
	PerTag []TagReport `json:"per_tag"`
}

// RunDeployment evaluates a deployment config on a pool of workers and
// returns the aggregated result. workers <= 0 selects a single worker.
//
// progress, when non-nil, is called with (done, total, tag) after each tag
// completes, where tag is the finished tag's full report — the serving
// layer streams these as per-tag rows. Calls are serialized and done is
// strictly increasing, but which tag finishes at which call is unspecified
// under a concurrent pool. The result does not depend on the worker count:
// per-tag seeds derive from (Seed, tag index) and the per-tag reports are
// assembled in fleet order.
//
// Cancelling ctx stops dispatching new tags, waits for in-flight ones, and
// returns (nil, ctx.Err()).
func RunDeployment(ctx context.Context, cfg DeploymentConfig, workers int, progress func(done, total int, tag TagReport)) (*DeploymentResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > cfg.Tags {
		workers = cfg.Tags
	}

	// One occupancy sample per run: the fleet shares one ambient carrier.
	occ := traffic.NewModel(cfg.Traffic, cfg.Venue, DeriveSeed(cfg.Seed, "deploy-occupancy"))
	frac := occ.Sample(cfg.Hour)

	reports := make([]TagReport, cfg.Tags)
	jobs := make(chan int)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				reports[i] = cfg.runTag(i, frac)
				mu.Lock()
				done++
				if progress != nil {
					progress(done, cfg.Tags, reports[i])
				}
				mu.Unlock()
			}
		}()
	}

feed:
	for i := 0; i < cfg.Tags; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &DeploymentResult{
		Venue:     cfg.Venue.String(),
		Bandwidth: cfg.BW.String(),
		Traffic:   cfg.Traffic.String(),
		Occupancy: frac,
		Tags:      cfg.Tags,
		PerTag:    reports,
	}
	var thr, ber stats.Aggregate
	for _, r := range reports {
		thr.Add(r.ThroughputBps)
		ber.Add(r.BER)
		if r.Synced {
			res.SyncedTags++
		}
	}
	res.Throughput = thr.Summary()
	res.BER = ber.Summary()
	res.FleetGoodputBps = res.Throughput.Mean
	return res, nil
}

// tagDistanceFt places tag i on the fleet's distance ramp.
func (c *DeploymentConfig) tagDistanceFt(i int) float64 {
	if c.Tags <= 1 {
		return c.MinTagToUEFt
	}
	step := (c.MaxTagToUEFt - c.MinTagToUEFt) / float64(c.Tags-1)
	return c.MinTagToUEFt + step*float64(i)
}

// runTag evaluates one tag's link with its derived seed.
func (c *DeploymentConfig) runTag(i int, occupancy float64) TagReport {
	seed := DeriveSeed(c.Seed, fmt.Sprintf("deploy-tag-%d", i))
	d := c.tagDistanceFt(i)

	var link core.LinkConfig
	switch c.Venue {
	case traffic.Mall:
		link = mallLink(seed, d)
	case traffic.Outdoor:
		link = outdoorLink(seed, d)
	default:
		link = homeLink(seed)
		link.TagToUEM = channel.FeetToMeters(d)
		link.ENodeBToUEM = channel.FeetToMeters(d + 3)
	}
	link.BW = c.BW
	link.Mode = c.Mode
	link.Lane = c.Lane
	link.TxPowerDBm = c.TxPowerDBm
	link.TagLossDB = c.TagLossDB
	if c.Subframes > 0 {
		link.Subframes = c.Subframes
	}
	if lvl := impairmentLevel(c.Impair); lvl != nil && lvl.Impair.Active() {
		ic := lvl.Impair
		ic.Seed = seed ^ 0xa24baed4963ee407
		link.Impair = &ic
	}

	rep := core.Run(link)
	return TagReport{
		Tag:            i,
		TagToUEFt:      d,
		Seed:           seed,
		ThroughputBps:  rep.ThroughputBps * occupancy,
		BER:            rep.BER,
		Synced:         rep.Synced,
		ScatterSNRdB:   rep.ScatterSNRdB,
		Reacquisitions: rep.Reacquisitions,
	}
}
