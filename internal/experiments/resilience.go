package experiments

import (
	"fmt"

	"lscatter/internal/arq"
	"lscatter/internal/core"
	"lscatter/internal/impair"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
)

func init() {
	register("R1", ResilienceSweep)
}

// ImpairmentLevel is one rung of the resilience ladder: a named impairment
// configuration plus the matching link-layer burst-loss channel.
type ImpairmentLevel struct {
	// Name labels the level in tables and flags.
	Name string
	// Impair is the PHY fault-injection config (Seed/SampleRate filled in by
	// the consumer).
	Impair impair.Config
	// GE is the link-layer burst-loss channel the level maps to for the ARQ
	// columns.
	GE arq.GEConfig
}

// ImpairmentLevels is the canonical off/mild/moderate/severe ladder used by
// the R1 sweep and `lscatter-bench -impair`. The mild rung is a healthy
// commercial deployment (TCXO-grade clocks, occasional co-channel activity);
// severe approaches the worst conditions the paper's §4.4 robustness
// discussion contemplates.
func ImpairmentLevels() []ImpairmentLevel {
	return []ImpairmentLevel{
		{
			Name:   "off",
			Impair: impair.Config{},
			GE:     arq.GEConfig{PBadToGood: 1, DeliverGood: 1, DeliverBad: 1},
		},
		{
			Name: "mild",
			Impair: impair.Config{
				CFO:    impair.CFOConfig{Enabled: true, OffsetHz: 200, DriftHzPerSec: 50, PhaseNoiseRMSRad: 5e-5},
				SFO:    impair.SFOConfig{Enabled: true, PPM: 0.5},
				ADC:    impair.ADCConfig{Enabled: true, Bits: 12},
				Jitter: impair.JitterConfig{Enabled: true, RMSSamples: 0.5},
			},
			GE: arq.GEConfig{PGoodToBad: 0.002, PBadToGood: 0.2, DeliverGood: 0.99, DeliverBad: 0.5},
		},
		{
			Name: "moderate",
			Impair: impair.Config{
				CFO:    impair.CFOConfig{Enabled: true, OffsetHz: 600, DriftHzPerSec: 200, PhaseNoiseRMSRad: 2e-4},
				SFO:    impair.SFOConfig{Enabled: true, PPM: 2},
				ADC:    impair.ADCConfig{Enabled: true, Bits: 10},
				Jitter: impair.JitterConfig{Enabled: true, RMSSamples: 1},
				Interference: impair.InterferenceConfig{
					Enabled: true, ImpulsesPerSec: 2000, ImpulseSIRdB: 3,
				},
			},
			GE: arq.GEConfig{PGoodToBad: 0.01, PBadToGood: 0.1, DeliverGood: 0.97, DeliverBad: 0.3},
		},
		{
			Name: "severe",
			Impair: impair.Config{
				CFO:    impair.CFOConfig{Enabled: true, OffsetHz: 1200, DriftHzPerSec: 500, PhaseNoiseRMSRad: 5e-4},
				SFO:    impair.SFOConfig{Enabled: true, PPM: 10},
				ADC:    impair.ADCConfig{Enabled: true, Bits: 8, ClipBackoffDB: 9},
				Jitter: impair.JitterConfig{Enabled: true, RMSSamples: 2},
				Interference: impair.InterferenceConfig{
					Enabled: true, ImpulsesPerSec: 10000, ImpulseSIRdB: 0,
					BurstsPerSec: 300, BurstDurationSec: 1e-3, BurstSIRdB: -3,
				},
			},
			GE: arq.GEConfig{PGoodToBad: 0.03, PBadToGood: 0.06, DeliverGood: 0.9, DeliverBad: 0.05},
		},
	}
}

// ResilienceSweep (R1) runs the bit-true chain through the impairment
// ladder and reports, per level: backscatter BER, goodput, the carrier
// loop's re-acquisition count, and selective-repeat ARQ efficiency over the
// matching burst-loss channel. The "off" row doubles as a regression anchor:
// it must match the clean chain bit for bit.
func ResilienceSweep(seed uint64) *Result {
	res := &Result{
		ID:     "R1",
		Title:  "Link resilience vs injected impairments (1.4 MHz exact chain)",
		Header: []string{"level", "stages", "BER", "throughput", "synced", "reacq", "ARQ eff", "ARQ slots"},
	}
	for _, lvl := range ImpairmentLevels() {
		cfg := core.DefaultLinkConfig(ltephy.BW1_4)
		cfg.Mode = core.Exact
		cfg.Subframes = 6
		cfg.Seed = seed
		ic := lvl.Impair
		ic.Seed = seed ^ 0xa24baed4963ee407
		describe := impair.New(impair.Config{
			Jitter: ic.Jitter, SFO: ic.SFO, CFO: impair.CFOConfig{Enabled: ic.CFO.Enabled},
			Interference: impair.InterferenceConfig{Enabled: ic.Interference.Enabled},
			ADC:          ic.ADC, SampleRate: 1,
		}).Describe()
		if ic.Active() {
			cfg.Impair = &ic
		}
		rep := core.Run(cfg)

		// Link layer: 60 frames over the level's burst-loss channel.
		s := arq.NewSender(16, 6)
		r := arq.NewReceiver(16)
		pay := rng.New(seed ^ 0x5851f42d4c957f2d)
		const frames = 60
		for i := 0; i < frames; i++ {
			s.Queue(pay.Bits(make([]byte, 64)))
		}
		data := arq.NewGilbertElliott(rng.New(seed^0x14057b7ef767814f), lvl.GE)
		ackGE := lvl.GE
		st, _ := arq.Run(s, r, data.Next, arq.NewGilbertElliott(rng.New(seed^0x27bb2ee687b0b0fd), ackGE).Next, frames, 100000)

		res.Rows = append(res.Rows, []string{
			lvl.Name,
			describe,
			fber(rep.BER),
			fbps(rep.ThroughputBps),
			fmt.Sprintf("%v", rep.Synced),
			fmt.Sprintf("%d", rep.Reacquisitions),
			fmt.Sprintf("%.2f", st.Efficiency),
			fmt.Sprintf("%d", st.Slots),
		})
	}
	res.Notes = append(res.Notes,
		"the 'off' row is the clean-chain regression anchor: identical RNG path, zero impairment draws",
		"CFO/SFO follow Ruttik et al. and Liao et al. on clock error dominating LTE backscatter BER; see docs/RESILIENCE.md",
		"ARQ columns run selective repeat over a Gilbert-Elliott burst channel matched to each level")
	return res
}
