package experiments

import (
	"fmt"

	"lscatter/internal/channel"
	"lscatter/internal/enodeb"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
	"lscatter/internal/scatterframe"
	"lscatter/internal/simlink"
	"lscatter/internal/tag"
	"lscatter/internal/ue"
)

func init() {
	register("A1", AblationRefinement)
	register("A2", AblationSideband)
	register("A3", AblationPSSBoost)
	register("A4", AblationOversampling)
	register("A5", AblationCoding)
}

// chainBER runs the bit-true chain for a few subframes and returns the
// measured backscatter BER. It parameterizes the design knobs the ablations
// sweep.
func chainBER(bw ltephy.Bandwidth, oversample int, mode tag.Mode, refineIters int, noiseRelDB float64, subframes int, seed uint64) (ber float64, synced bool) {
	p := ltephy.DefaultParams(bw)
	p.Oversample = oversample
	ecfg := enodeb.Config{Params: p, Scheme: enodeb.DefaultConfig(bw).Scheme, TxPowerDBm: 10, Seed: seed}
	enb := enodeb.New(ecfg)
	r := rng.New(seed + 7)
	mod := tag.NewModulator(tag.ModConfig{
		Params:           p,
		Mode:             mode,
		TimingErrorUnits: 3,
		SampleOffset:     1,
	})
	mod.QueueBits(r.Bits(make([]byte, subframes*12*mod.PerSymbolBits())))
	lteRx := ue.NewLTEReceiver(p, ecfg.Scheme)
	scfg := ue.DefaultScatterConfig(p)
	scfg.Mode = mode
	if refineIters == 0 {
		scfg.RefineIters = -1 // explicit disable
	} else {
		scfg.RefineIters = refineIters
	}
	sc := ue.NewScatterDemod(scfg)

	const directGainDB = -40
	const scatterGainDB = -70
	scatP := 0.01 * channelFromDB(scatterGainDB)
	noiseW := scatP * channelFromDB(noiseRelDB)
	sink := &simlink.DemodSink{LTE: lteRx, Scatter: sc}
	sess := &simlink.Session{
		Source: enb,
		Direct: simlink.GainDB(directGainDB),
		Tags:   []*simlink.Tag{{Mod: mod, Path: simlink.GainDB(scatterGainDB)}},
		Link:   channel.NewLink(r.Fork(1), noiseW),
		Sink:   sink,
	}
	sess.Run(subframes)
	return sink.Totals().BER(), sink.Synced
}

func channelFromDB(db float64) float64 { return channel.DBmToWatts(db + 30) }

// chainErrorPattern runs the bit-true chain and returns the per-bit error
// indicators in transmit order (true = flipped). The error process does not
// depend on payload content, so codec ablations can replay it over coded
// and uncoded framings of the same link.
func chainErrorPattern(bw ltephy.Bandwidth, noiseRelDB float64, subframes int, seed uint64) []bool {
	p := ltephy.DefaultParams(bw)
	ecfg := enodeb.Config{Params: p, Scheme: enodeb.DefaultConfig(bw).Scheme, TxPowerDBm: 10, Seed: seed}
	enb := enodeb.New(ecfg)
	r := rng.New(seed + 7)
	mod := tag.NewModulator(tag.ModConfig{Params: p, TimingErrorUnits: 2, SampleOffset: 1})
	mod.QueueBits(r.Bits(make([]byte, subframes*12*mod.PerSymbolBits())))
	lteRx := ue.NewLTEReceiver(p, ecfg.Scheme)
	sc := ue.NewScatterDemod(ue.DefaultScatterConfig(p))
	scatP := 0.01 * channelFromDB(-70)
	noiseW := scatP * channelFromDB(noiseRelDB)
	sink := &simlink.DemodSink{LTE: lteRx, Scatter: sc, RecordPattern: true}
	sess := &simlink.Session{
		Source: enb,
		Direct: simlink.GainDB(-40),
		Tags:   []*simlink.Tag{{Mod: mod, Path: simlink.GainDB(-70)}},
		Link:   channel.NewLink(r.Fork(1), noiseW),
		Sink:   sink,
	}
	sess.Run(subframes)
	return sink.Pattern
}

// AblationCoding compares uncoded 240-bit frames against rate-1/2 coded
// frames over the same measured error pattern of the bit-true chain.
func AblationCoding(seed uint64) *Result {
	res := &Result{
		ID:     "A5",
		Title:  "Ablation: link-layer FEC (rate-1/2 K=7 + interleaving) on the backscatter link",
		Header: []string{"chain SNR", "raw BER", "uncoded frames OK", "coded frames OK", "coded goodput factor"},
	}
	codec := scatterframe.NewCodec()
	const payloadBits = 240
	for _, rel := range []float64{-22, -17, -14} {
		pattern := chainErrorPattern(ltephy.BW1_4, rel, 6, seed)
		errs := 0
		for _, e := range pattern {
			if e {
				errs++
			}
		}
		rawBER := float64(errs) / float64(len(pattern))
		// Uncoded framing.
		unOK, unTot := 0, 0
		for i := 0; i+payloadBits <= len(pattern); i += payloadBits {
			ok := true
			for _, e := range pattern[i : i+payloadBits] {
				if e {
					ok = false
					break
				}
			}
			unTot++
			if ok {
				unOK++
			}
		}
		// Coded framing over the same pattern.
		r := rng.New(seed + 5)
		codedLen := codec.EncodedLen(payloadBits)
		cdOK, cdTot := 0, 0
		for i := 0; i+codedLen <= len(pattern); i += codedLen {
			payload := r.Bits(make([]byte, payloadBits))
			coded := codec.Encode(payload)
			for j, e := range pattern[i : i+codedLen] {
				if e {
					coded[j] ^= 1
				}
			}
			got, ok := codec.Decode(coded)
			cdTot++
			if ok && bitsEqual(got, payload) {
				cdOK++
			}
		}
		unRate := frac(unOK, unTot)
		cdRate := frac(cdOK, cdTot)
		factor := "-"
		if unRate > 0 {
			// goodput = frames/s x payload; coded sends half the frames.
			factor = fmt.Sprintf("%.2f", cdRate*0.5/unRate)
		} else if cdRate > 0 {
			factor = "inf"
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%+.0f dB", -rel), f3(rawBER),
			fmt.Sprintf("%.2f", unRate), fmt.Sprintf("%.2f", cdRate), factor,
		})
	}
	res.Notes = append(res.Notes,
		"at raw BERs of a few percent, uncoded frames all die while rate-1/2 coding keeps the link alive at half the raw rate",
		"the paper reports uncoded BER only; this quantifies the natural deployment extension")
	return res
}

func bitsEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// AblationRefinement sweeps the Eq. 7 refinement iteration count and reports
// BER at two noise levels: the refinement is what removes the clean-bin
// band-limiting floor.
func AblationRefinement(seed uint64) *Result {
	res := &Result{
		ID:     "A1",
		Title:  "Ablation: Eq. 7 refinement passes vs BER (1.4 MHz chain)",
		Header: []string{"refine iters", "BER clean", "BER @18dB"},
	}
	for _, iters := range []int{0, 1, 2, 4} {
		clean, _ := chainBER(ltephy.BW1_4, 4, tag.DSB, iters, -80, 3, seed)
		noisy, _ := chainBER(ltephy.BW1_4, 4, tag.DSB, iters, -18, 3, seed)
		res.Rows = append(res.Rows, []string{fmt.Sprintf("%d", iters), fber(clean), fber(noisy)})
	}
	res.Notes = append(res.Notes,
		"iteration 0 = plain matched-filter slicing: a residual inter-unit-interference floor remains",
		"two passes suffice; this is the tractable closed form of the paper's Eq. 7 argmin (DESIGN.md)")
	return res
}

// AblationSideband compares DSB square-wave switching against quadrature
// SSB (HitchHike-style image rejection) at matched noise.
func AblationSideband(seed uint64) *Result {
	res := &Result{
		ID:     "A2",
		Title:  "Ablation: DSB vs SSB switching (1.4 MHz chain)",
		Header: []string{"mode", "BER @20dB", "BER @14dB"},
	}
	for _, m := range []struct {
		name string
		mode tag.Mode
	}{{"DSB", tag.DSB}, {"SSB", tag.SSB}} {
		hi, _ := chainBER(ltephy.BW1_4, 4, m.mode, 2, -20, 3, seed)
		lo, _ := chainBER(ltephy.BW1_4, 4, m.mode, 2, -14, 3, seed)
		res.Rows = append(res.Rows, []string{m.name, fber(hi), fber(lo)})
	}
	res.Notes = append(res.Notes,
		"SSB concentrates the reflected first harmonic in the used sideband (~3.9 dB) at the cost of a quadrature switching network (§3.2.2)")
	return res
}

// AblationPSSBoost sweeps the PSS power boost and reports the sync circuit's
// detection performance: the envelope detector needs the PSS to stand out.
func AblationPSSBoost(seed uint64) *Result {
	res := &Result{
		ID:     "A3",
		Title:  "Ablation: PSS power boost vs analog sync detection",
		Header: []string{"boost (dB)", "detections/40 PSS", "false/extra"},
	}
	for _, boost := range []float64{0, 3, 6, 9} {
		cfg := enodeb.DefaultConfig(ltephy.BW1_4)
		cfg.Seed = seed
		cfg.Params.PSSBoostDB = boost
		enb := enodeb.New(cfg)
		sc := tag.NewSyncCircuit(cfg.Params, tag.SyncConfig{})
		dets := 0
		// Tag-side monitor: no Link, so the frame aliases the raw downlink.
		sess := &simlink.Session{Source: enb, Sink: simlink.SinkFunc(func(f *simlink.Frame) bool {
			dets += len(sc.Process(f.RX))
			return true
		})}
		sess.Run(200) // 200 ms = 40 PSS occurrences
		// With the 10 ms warmup ~38 detectable PSS remain.
		extra := 0
		if dets > 38 {
			extra = dets - 38
		}
		res.Rows = append(res.Rows, []string{f1(boost), fmt.Sprintf("%d", dets), fmt.Sprintf("%d", extra)})
	}
	res.Notes = append(res.Notes,
		"without a boost the PSS envelope is indistinguishable from PDSCH in the narrowband front end; +6 dB (the default) detects essentially every PSS")
	return res
}

// AblationOversampling compares waveform oversampling factors: 4x (default)
// vs 8x (captures the switch's third harmonic in-band).
func AblationOversampling(seed uint64) *Result {
	res := &Result{
		ID:     "A4",
		Title:  "Ablation: waveform oversampling factor (1.4 MHz chain)",
		Header: []string{"oversample", "BER clean", "BER @18dB", "synced"},
	}
	for _, ov := range []int{4, 8} {
		clean, s1 := chainBER(ltephy.BW1_4, ov, tag.DSB, 2, -80, 3, seed)
		noisy, _ := chainBER(ltephy.BW1_4, ov, tag.DSB, 2, -18, 3, seed)
		res.Rows = append(res.Rows, []string{fmt.Sprintf("%dx", ov), fber(clean), fber(noisy), fmt.Sprintf("%v", s1)})
	}
	res.Notes = append(res.Notes,
		"4x suffices: the square wave's first harmonic is fully represented; 8x adds the third harmonic (and cost) without changing the decisions",
		"2x is excluded by construction — at Nyquist the DSB image aliases onto the hybrid band")
	return res
}
