package experiments

import (
	"bytes"
	"encoding/json"
	"io"
	"runtime"
	"time"

	"lscatter/internal/ltephy"
	"lscatter/internal/store"
)

// RunMetrics records what one artifact regeneration cost the harness. All
// and RunAll attach it to Result.Metrics; `lscatter-bench -metrics out.json`
// serializes the collection so successive PRs accumulate a performance
// trajectory.
//
// Wall time is always exact. The allocation and cache counters are sampled
// from process-global state (runtime.ReadMemStats and the shared waveform
// cache), so with a single worker they attribute exactly, while under a
// concurrent pool the deltas of overlapping runners blur into each other —
// totals across the whole run remain meaningful either way.
type RunMetrics struct {
	// ID and Title identify the artifact.
	ID    string `json:"id"`
	Title string `json:"title"`
	// Seed is the derived per-artifact seed the runner actually received.
	Seed uint64 `json:"seed"`
	// Worker is the pool slot that ran the artifact (0 when sequential).
	Worker int `json:"worker"`
	// WallSeconds is the artifact's elapsed regeneration time.
	WallSeconds float64 `json:"wall_seconds"`
	// AllocBytes and Mallocs are heap-allocation deltas over the run.
	AllocBytes uint64 `json:"alloc_bytes"`
	Mallocs    uint64 `json:"mallocs"`
	// CacheHits/CacheMisses are waveform-cache deltas over the run; the
	// hit rate is their ratio.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// Rows is the number of table rows the artifact produced.
	Rows int `json:"rows"`
}

// CacheHitRate returns the artifact's waveform-cache hit rate in [0, 1].
func (m *RunMetrics) CacheHitRate() float64 {
	total := m.CacheHits + m.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(m.CacheHits) / float64(total)
}

// runInstrumented executes one runner and attaches RunMetrics to its Result.
func runInstrumented(id string, run Runner, seed uint64, worker int) *Result {
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	cacheBefore := ltephy.SharedStats()
	start := time.Now()

	res := run(seed)

	wall := time.Since(start)
	cacheDelta := ltephy.SharedStats().Delta(cacheBefore)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	res.Metrics = &RunMetrics{
		ID:          id,
		Title:       res.Title,
		Seed:        seed,
		Worker:      worker,
		WallSeconds: wall.Seconds(),
		AllocBytes:  msAfter.TotalAlloc - msBefore.TotalAlloc,
		Mallocs:     msAfter.Mallocs - msBefore.Mallocs,
		CacheHits:   cacheDelta.Hits,
		CacheMisses: cacheDelta.Misses,
		Rows:        len(res.Rows),
	}
	return res
}

// CacheReport summarizes the shared waveform cache over a whole run.
type CacheReport struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	Entries   int     `json:"entries"`
	Bytes     int64   `json:"bytes"`
	HitRate   float64 `json:"hit_rate"`
}

// Report is the JSON document behind `lscatter-bench -metrics out.json`: the
// run configuration, end-to-end wall time, final cache state, and one
// RunMetrics entry per regenerated artifact in ID order.
type Report struct {
	// Seed is the master seed (per-artifact seeds derive from it).
	Seed uint64 `json:"seed"`
	// Workers is the pool size used (1 = sequential).
	Workers int `json:"workers"`
	// GoMaxProcs records the scheduler width the run had available.
	GoMaxProcs int `json:"gomaxprocs"`
	// WallSeconds is the end-to-end harness time, overlap included — under
	// a pool it is less than the sum of the per-artifact wall times.
	WallSeconds float64 `json:"wall_seconds"`
	// Cache is the shared waveform-cache state at the end of the run.
	Cache CacheReport `json:"cache"`
	// Artifacts holds the per-artifact metrics (skipped artifacts omitted).
	Artifacts []RunMetrics `json:"artifacts"`
	// RTF, when the run included `-rtf`, is the real-time-factor measurement
	// (see rtf.go and docs/PERFORMANCE.md).
	RTF *RTFReport `json:"rtf,omitempty"`
}

// BuildReport assembles a Report from instrumented results, typically the
// return value of RunAll. Results without metrics (or nil results from a
// cancelled run) are skipped.
func BuildReport(seed uint64, workers int, wall time.Duration, results []*Result) *Report {
	s := ltephy.SharedStats()
	rep := &Report{
		Seed:        seed,
		Workers:     workers,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		WallSeconds: wall.Seconds(),
		Cache: CacheReport{
			Hits:      s.Hits,
			Misses:    s.Misses,
			Evictions: s.Evictions,
			Entries:   s.Entries,
			Bytes:     s.Bytes,
			HitRate:   s.HitRate(),
		},
	}
	for _, r := range results {
		if r != nil && r.Metrics != nil {
			rep.Artifacts = append(rep.Artifacts, *r.Metrics)
		}
	}
	return rep
}

// WriteJSON serializes the report, indented for human diffing.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile atomically serializes the report to path (temp file, fsync,
// rename — the same helper the artifact store uses), so a crash mid-write
// can never leave a torn `-metrics` report: the file is either the previous
// complete report or the new one.
func (r *Report) WriteFile(path string) error {
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		return err
	}
	return store.WriteAtomic(path, buf.Bytes())
}
