package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func parseBps(s string) float64 {
	fields := strings.Fields(s)
	if len(fields) != 2 {
		return 0
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0
	}
	switch fields[1] {
	case "Mbps":
		return v * 1e6
	case "Kbps":
		return v * 1e3
	}
	return v
}

func parseBER(s string) float64 {
	if strings.HasPrefix(s, "<") {
		return 0
	}
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"T1", "F4a", "F4b", "F4c", "F8", "F12", "F16", "F17", "F18",
		"F19", "F21", "F22", "F23", "F24", "F26", "F27", "F28", "F29", "F30",
		"F31", "F32", "F33b", "P48", "A1", "A2", "A3", "A4", "A5", "V1",
		"F3", "I1", "M1", "R1", "C1"}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("artifact %s not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d entries, want %d: %v", len(IDs()), len(want), IDs())
	}
}

func TestTable1OnlyLScatterComplete(t *testing.T) {
	res := Table1(0)
	complete := 0
	for _, row := range res.Rows {
		if row[1] == "yes" && row[2] == "yes" && row[3] == "yes" {
			complete++
			if row[0] != "LScatter" {
				t.Errorf("%s claims all three properties", row[0])
			}
		}
	}
	if complete != 1 {
		t.Fatalf("%d systems satisfy all properties, want 1", complete)
	}
	if len(res.Rows) != 16 {
		t.Fatalf("%d rows, want 16", len(res.Rows))
	}
}

func TestFig4SpectrogramsContrast(t *testing.T) {
	wifi := Fig4aWiFiSpectrogram(1)
	lte := Fig4bLTESpectrogram(1)
	// WiFi spectrogram rows include near-empty (idle) lines; LTE has none.
	emptyish := func(res *Result) int {
		n := 0
		for _, row := range res.Rows {
			filled := 0
			for _, ch := range row[0] {
				if ch != ' ' && ch != '.' {
					filled++
				}
			}
			if filled < len(row[0])/10 {
				n++
			}
		}
		return n
	}
	if emptyish(wifi) == 0 {
		t.Error("WiFi spectrogram shows no idle periods (should be bursty)")
	}
	if emptyish(lte) != 0 {
		t.Error("LTE spectrogram shows idle periods (should be continuous)")
	}
}

func TestFig4cOccupancyCDFShape(t *testing.T) {
	res := Fig4cOccupancyCDF(2)
	// The last row (occupancy ~1.0) must show LTE CDF reaching 1 only there,
	// while LoRa reaches 1 almost immediately.
	first := res.Rows[0] // occupancy 0.02
	lteCol := 1
	if v, _ := strconv.ParseFloat(first[lteCol], 64); v != 0 {
		t.Errorf("LTE CDF at 0.02 = %v, want 0 (occupancy is always 1.0)", v)
	}
	// LoRa columns are the last three: CDF at 0.1 should be ~1.
	second := res.Rows[1]
	for c := len(second) - 3; c < len(second); c++ {
		if v, _ := strconv.ParseFloat(second[c], 64); v < 0.9 {
			t.Errorf("LoRa CDF at 0.1 = %v, want ~1", v)
		}
	}
}

func TestFig8ComparatorFires(t *testing.T) {
	res := Fig8SyncCircuit(3)
	fires := 0
	for _, row := range res.Rows {
		if row[3] == "1" {
			fires++
		}
	}
	if fires == 0 {
		t.Fatal("comparator never fired in the Fig 8 trace")
	}
	if fires > len(res.Rows)/2 {
		t.Fatalf("comparator high %d/%d of the time — should be brief pulses", fires, len(res.Rows))
	}
}

func TestFig16LScatterStableAndFarAboveWiFi(t *testing.T) {
	res := Fig16SmartHomeDay(4)
	if len(res.Rows) != 24 {
		t.Fatalf("%d rows, want 24", len(res.Rows))
	}
	var lsMeds, wfMeds []float64
	for _, row := range res.Rows {
		wfMeds = append(wfMeds, parseBps(row[2]))
		lsMeds = append(lsMeds, parseBps(row[5]))
	}
	// LScatter: every hourly median near 13.6 Mbps.
	for i, v := range lsMeds {
		if v < 12e6 || v > 14.5e6 {
			t.Errorf("hour %d: LScatter median %v, want ~13.6 Mbps", i, v)
		}
	}
	// WiFi: fluctuates (max/min ratio > 2) and stays below 150 kbps.
	lo, hi := wfMeds[0], wfMeds[0]
	for _, v := range wfMeds {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > 150e3 {
		t.Errorf("WiFi backscatter median %v too high", hi)
	}
	if lo > 0 && hi/lo < 2 {
		t.Errorf("WiFi medians too stable: %v..%v", lo, hi)
	}
	// Orders of magnitude apart.
	if lsMeds[0] < 50*hi {
		t.Errorf("LScatter %v not orders above WiFi %v", lsMeds[0], hi)
	}
}

func TestFig18ProportionalAndNLoSMild(t *testing.T) {
	res := Fig18Bandwidth(5)
	prev := 0.0
	for _, row := range res.Rows {
		los := parseBps(row[1])
		nlos := parseBps(row[2])
		if los <= prev {
			t.Errorf("%s: LoS throughput %v not increasing", row[0], los)
		}
		prev = los
		if nlos > los || (los-nlos)/los > 0.12 {
			t.Errorf("%s: NLoS drop too large: %v vs %v", row[0], nlos, los)
		}
	}
}

func TestFig19MatrixShape(t *testing.T) {
	res := Fig19DistanceMatrix(6)
	// Corner (1,1) strong; corner (25,25) weakest.
	first, _ := strconv.ParseFloat(res.Rows[0][1], 64)
	last, _ := strconv.ParseFloat(res.Rows[len(res.Rows)-1][len(res.Rows[0])-1], 64)
	if first < 10 {
		t.Errorf("near-corner throughput %v Mbps, want >10", first)
	}
	if last >= first {
		t.Errorf("far corner %v not below near corner %v", last, first)
	}
}

func TestFig23CrossoverAndOrdering(t *testing.T) {
	res := Fig23MallDistance(7)
	// Near: WiFi > symbol-level. Far: symbol-level > WiFi. LScatter always highest.
	firstRow, lastRow := res.Rows[0], res.Rows[len(res.Rows)-1]
	if parseBps(firstRow[1]) <= parseBps(firstRow[2]) {
		t.Errorf("at %s ft WiFi %v not above symbol-level %v", firstRow[0], firstRow[1], firstRow[2])
	}
	if parseBps(lastRow[2]) <= parseBps(lastRow[1]) {
		t.Errorf("at %s ft symbol-level %v not above WiFi %v", lastRow[0], lastRow[2], lastRow[1])
	}
	for _, row := range res.Rows {
		ls := parseBps(row[3])
		if ls <= parseBps(row[1]) || ls <= parseBps(row[2]) {
			t.Errorf("at %s ft LScatter %v not leading", row[0], row[3])
		}
	}
}

func TestFig24BERTargets(t *testing.T) {
	res := Fig24MallBER(8)
	for _, row := range res.Rows {
		d, _ := strconv.ParseFloat(row[0], 64)
		ls := parseBER(row[3])
		if d <= 40 && ls > 1e-3 {
			t.Errorf("LScatter BER at %v ft = %v, want <0.1%%", d, ls)
		}
		if d <= 150 && ls > 1e-2 {
			t.Errorf("LScatter BER at %v ft = %v, want <1%%", d, ls)
		}
	}
}

func TestFig29WiFiSpikesLTEHolds(t *testing.T) {
	res := Fig29OutdoorBER(9)
	var wifiAt120, wifiAt320, lsAt200 float64
	for _, row := range res.Rows {
		d, _ := strconv.ParseFloat(row[0], 64)
		switch d {
		case 120:
			wifiAt120 = parseBER(row[1])
		case 320:
			wifiAt320 = parseBER(row[1])
		case 200:
			lsAt200 = parseBER(row[3])
		}
	}
	if wifiAt320 < 5*wifiAt120 {
		t.Errorf("WiFi BER did not spike: %v at 120 ft vs %v at 320 ft", wifiAt120, wifiAt320)
	}
	if lsAt200 > 1e-2 {
		t.Errorf("LScatter BER at 200 ft = %v, want <1%%", lsAt200)
	}
}

func TestFig30FrontierMonotone(t *testing.T) {
	res := Fig30RangeFrontier(10)
	prev := 1e18
	for _, row := range res.Rows {
		v, _ := strconv.ParseFloat(row[1], 64)
		if v > prev {
			t.Errorf("frontier not monotone at eNB-tag %s ft", row[0])
		}
		prev = v
	}
	first, _ := strconv.ParseFloat(res.Rows[0][1], 64)
	last, _ := strconv.ParseFloat(res.Rows[len(res.Rows)-1][1], 64)
	if first < 150 {
		t.Errorf("max range at 2 ft = %v ft, want hundreds (paper: 320)", first)
	}
	if last < 40 || last >= first {
		t.Errorf("range at 40 ft = %v ft vs %v", last, first)
	}
}

func TestFig31ErrorsInTensOfMicroseconds(t *testing.T) {
	res := Fig31SyncAccuracy(11)
	if len(res.Rows) == 0 {
		t.Fatal("no sync-error rows")
	}
	// CDF at 50 us should be nearly 1.
	var at50 float64
	for _, row := range res.Rows {
		if row[0] == "50.0" {
			at50, _ = strconv.ParseFloat(row[1], 64)
		}
	}
	if at50 < 0.85 {
		t.Errorf("CDF at 50 us = %v, want ~>0.9", at50)
	}
}

func TestFig33bDecay(t *testing.T) {
	res := Fig33bAuthUpdateRate(12)
	first, _ := strconv.ParseFloat(res.Rows[0][1], 64)
	last, _ := strconv.ParseFloat(res.Rows[len(res.Rows)-1][1], 64)
	if first < 110 || first > 137 {
		t.Errorf("update rate at 2 ft = %v, want ~136", first)
	}
	if last < 0.5 || last > 40 {
		t.Errorf("update rate at 40 ft = %v, want a few", last)
	}
}

func TestPowerBudgetTotals(t *testing.T) {
	res := PowerBudget(0)
	if len(res.Rows) != 6 {
		t.Fatalf("%d power rows", len(res.Rows))
	}
	// Every ring-oscillator total must be far below every crystal total at
	// the same bandwidth.
	for i := 0; i < len(res.Rows); i += 2 {
		crystal := res.Rows[i][6]
		ring := res.Rows[i+1][6]
		cv, _ := strconv.ParseFloat(strings.Fields(crystal)[0], 64)
		rv, _ := strconv.ParseFloat(strings.Fields(ring)[0], 64)
		if rv >= cv {
			t.Errorf("ring %v not below crystal %v", rv, cv)
		}
	}
}

func TestAblationRefinementRemovesFloor(t *testing.T) {
	res := AblationRefinement(21)
	// Row 0 (no refinement) has a clean-channel error floor; row 2 (the
	// default two passes) must be error-free on a clean channel.
	if parseBER(res.Rows[0][1]) < 1e-4 {
		t.Fatalf("matched filter alone shows no floor: %v", res.Rows[0][1])
	}
	if parseBER(res.Rows[2][1]) != 0 {
		t.Fatalf("two refinement passes left clean-channel errors: %v", res.Rows[2][1])
	}
}

func TestAblationSidebandSSBNotWorse(t *testing.T) {
	res := AblationSideband(22)
	dsb, ssb := parseBER(res.Rows[0][2]), parseBER(res.Rows[1][2])
	if ssb > dsb {
		t.Fatalf("SSB BER %v worse than DSB %v", ssb, dsb)
	}
}

func TestAblationPSSBoostRequired(t *testing.T) {
	res := AblationPSSBoost(23)
	noBoost, _ := strconv.Atoi(res.Rows[0][1])
	withBoost, _ := strconv.Atoi(res.Rows[2][1])
	if noBoost > withBoost/4 {
		t.Fatalf("sync works without PSS boost (%d vs %d detections)", noBoost, withBoost)
	}
	if withBoost < 30 {
		t.Fatalf("only %d detections with the default boost", withBoost)
	}
}

func TestAblationOversamplingEquivalent(t *testing.T) {
	res := AblationOversampling(24)
	if parseBER(res.Rows[0][1]) != 0 || parseBER(res.Rows[1][1]) != 0 {
		t.Fatalf("clean-channel errors at some oversampling: %v / %v", res.Rows[0][1], res.Rows[1][1])
	}
}

func TestAblationCodingWinsAtHighBER(t *testing.T) {
	res := AblationCoding(25)
	// At the noisiest operating point, coded frame delivery must beat
	// uncoded delivery decisively.
	last := res.Rows[len(res.Rows)-1]
	uncoded, _ := strconv.ParseFloat(last[2], 64)
	coded, _ := strconv.ParseFloat(last[3], 64)
	if coded < uncoded+0.3 {
		t.Fatalf("coded %v vs uncoded %v at the noisy point", coded, uncoded)
	}
}

func TestValidationModelTracksChain(t *testing.T) {
	res := ValidationModelVsChain(26)
	for _, row := range res.Rows {
		model, chain := parseBER(row[2]), parseBER(row[3])
		if model == 0 || chain == 0 {
			continue
		}
		ratio := chain / model
		if ratio < 0.2 || ratio > 6 {
			t.Fatalf("model/chain diverge at %s: model %v chain %v", row[0], model, chain)
		}
	}
}

func TestFig3CoverageContrast(t *testing.T) {
	res := Fig3Coverage(31)
	lte, _ := strconv.ParseFloat(strings.TrimSuffix(res.Rows[0][2], "%"), 64)
	lora, _ := strconv.ParseFloat(strings.TrimSuffix(res.Rows[1][2], "%"), 64)
	if lte < 90 {
		t.Fatalf("LTE coverage %v%%, want near-total", lte)
	}
	if lora > 40 {
		t.Fatalf("LoRaWAN coverage %v%%, want scattered", lora)
	}
}

func TestInterferenceInBandResidueSmall(t *testing.T) {
	res := InterferencePSD(32)
	var inBand, upper float64
	for _, row := range res.Rows {
		v, _ := strconv.ParseFloat(strings.Fields(row[1])[0], 64)
		switch row[0] {
		case "original LTE band":
			inBand = v
		case "upper sideband (white space, used)":
			upper = v
		}
	}
	if inBand > upper-8 {
		t.Fatalf("in-band residue %v dB not well below the used sideband %v dB", inBand, upper)
	}
	if inBand > -15 {
		t.Fatalf("in-band residue %v dB too strong", inBand)
	}
}

func TestMultiTagAggregateConstant(t *testing.T) {
	res := MultiTagScaling(33)
	agg := res.Rows[0][2]
	for _, row := range res.Rows[1:] {
		if row[2] != agg {
			t.Fatalf("aggregate changed with tag count: %v vs %v", row[2], agg)
		}
	}
	if parseBps(res.Rows[0][1]) != 16*parseBps(res.Rows[len(res.Rows)-1][1]) {
		t.Fatal("per-tag throughput does not split 16-fold at 16 tags")
	}
}

func TestRenderProducesTable(t *testing.T) {
	res := Table1(0)
	s := res.Render()
	if !strings.Contains(s, "LScatter") || !strings.Contains(s, "Technology") {
		t.Fatal("render missing content")
	}
	lines := strings.Split(s, "\n")
	if len(lines) < 18 {
		t.Fatalf("rendered %d lines", len(lines))
	}
}
