package experiments

import (
	"fmt"

	"lscatter/internal/dsp"
	"lscatter/internal/enodeb"
	"lscatter/internal/ltephy"
	"lscatter/internal/simlink"
	"lscatter/internal/stats"
	"lscatter/internal/traffic"
)

func init() {
	register("T1", Table1)
	register("F4a", Fig4aWiFiSpectrogram)
	register("F4b", Fig4bLTESpectrogram)
	register("F4c", Fig4cOccupancyCDF)
}

// Table1 reproduces the paper's Table 1: which excitation-signal properties
// each existing backscatter system satisfies.
func Table1(uint64) *Result {
	yes, no := "yes", ""
	rows := [][]string{
		{"NICScatter", yes, no, no},
		{"ReMix", no, no, no},
		{"PLoRa", yes, no, no},
		{"LoRa backscatter", no, yes, no},
		{"Netscatter", no, yes, no},
		{"FlipTracer", no, no, no},
		{"FS-Backscatter", yes, no, no},
		{"WiFi backscatter", yes, no, no},
		{"MOXcatter", yes, no, no},
		{"X-Tandem", yes, no, no},
		{"FreeRider", yes, no, no},
		{"HitchHike", yes, no, no},
		{"BackFi", yes, no, no},
		{"Passive WiFi", no, yes, no},
		{"Interscatter", no, yes, no},
		{"LScatter", yes, yes, yes},
	}
	return &Result{
		ID:     "T1",
		Title:  "Features of existing backscatters' excitation signal",
		Header: []string{"Technology", "Ambient", "Continuous", "Ubiquitous"},
		Rows:   rows,
		Notes:  []string{"only LScatter satisfies all three requirements (paper Table 1)"},
	}
}

// asciiHeat renders a spectrogram as rows of density characters, thinned to
// at most rows x cols cells.
func asciiHeat(s *dsp.Spectrogram, rows, cols int) []string {
	if len(s.PowerDB) == 0 {
		return nil
	}
	tStep := len(s.PowerDB) / rows
	if tStep < 1 {
		tStep = 1
	}
	fStep := len(s.PowerDB[0]) / cols
	if fStep < 1 {
		fStep = 1
	}
	chars := []byte(" .:-=+*#%@")
	var out []string
	for t := 0; t < len(s.PowerDB); t += tStep {
		line := make([]byte, 0, cols)
		for f := 0; f+fStep <= len(s.PowerDB[t]); f += fStep {
			// max pooling over the cell
			maxDB := -200.0
			for tt := t; tt < t+tStep && tt < len(s.PowerDB); tt++ {
				for ff := f; ff < f+fStep; ff++ {
					if s.PowerDB[tt][ff] > maxDB {
						maxDB = s.PowerDB[tt][ff]
					}
				}
			}
			idx := int((maxDB + 60) / 60 * float64(len(chars)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(chars) {
				idx = len(chars) - 1
			}
			line = append(line, chars[idx])
		}
		out = append(out, string(line))
	}
	return out
}

// Fig4aWiFiSpectrogram regenerates the bursty 2.4 GHz spectrogram of Fig 4a.
func Fig4aWiFiSpectrogram(seed uint64) *Result {
	const fs = 20e6
	x := traffic.WiFiBandIQ(seed, 20e-3, fs)
	spec := traffic.Spectrogram(x, fs)
	occ := traffic.MeasuredOccupancy(x, fs)
	res := &Result{
		ID:     "F4a",
		Title:  "Spectrogram of WiFi (20 ms, 20 MHz around 2.437 GHz)",
		Header: []string{"time -> freq map"},
		Notes: []string{
			fmt.Sprintf("measured frame occupancy: %.2f (bursty and intermittent)", occ),
			"each row ~1 ms; darker = stronger; note idle gaps and narrowband ZigBee frames",
		},
	}
	for _, line := range asciiHeat(spec, 20, 64) {
		res.Rows = append(res.Rows, []string{line})
	}
	return res
}

// Fig4bLTESpectrogram regenerates the continuous LTE spectrogram of Fig 4b,
// including the periodic PSS.
func Fig4bLTESpectrogram(seed uint64) *Result {
	cfg := enodeb.DefaultConfig(ltephy.BW10)
	cfg.Seed = seed
	cfg.Params.Oversample = 2
	e := enodeb.New(cfg)
	// Link-less monitor session: each frame aliases the raw downlink.
	var x []complex128
	sess := &simlink.Session{Source: e, Sink: simlink.SinkFunc(func(f *simlink.Frame) bool {
		x = append(x, f.RX...)
		return true
	})}
	sess.Run(20) // 20 ms
	fs := cfg.Params.SampleRate()
	spec := traffic.Spectrogram(x, fs)
	occ := traffic.MeasuredOccupancy(x, fs)
	res := &Result{
		ID:     "F4b",
		Title:  "Spectrogram of LTE (20 ms, 10 MHz; PSS every 5 ms)",
		Header: []string{"time -> freq map"},
		Notes: []string{
			fmt.Sprintf("measured frame occupancy: %.2f (continuous)", occ),
			"the boosted central band every 5 ms is the PSS the tag synchronizes on",
		},
	}
	for _, line := range asciiHeat(spec, 20, 64) {
		res.Rows = append(res.Rows, []string{line})
	}
	return res
}

// Fig4cOccupancyCDF regenerates the week-long traffic-occupancy CDFs of
// Fig 4c: LTE vs WiFi vs LoRa across venues.
func Fig4cOccupancyCDF(seed uint64) *Result {
	type curve struct {
		name string
		cdf  *stats.CDF
	}
	var curves []curve
	curves = append(curves, curve{"LTE", stats.NewCDF(traffic.NewModel(traffic.LTE, traffic.Home, seed).WeekSeries(4))})
	for i, v := range []traffic.Venue{traffic.Office, traffic.Classroom, traffic.Home} {
		curves = append(curves, curve{"WiFi " + v.String(),
			stats.NewCDF(traffic.NewModel(traffic.WiFi, v, seed+uint64(i)+1).WeekSeries(4))})
	}
	for i, v := range []traffic.Venue{traffic.Office, traffic.Classroom, traffic.Home} {
		curves = append(curves, curve{"LoRa " + v.String(),
			stats.NewCDF(traffic.NewModel(traffic.LoRa, v, seed+uint64(i)+10).WeekSeries(4))})
	}
	res := &Result{
		ID:    "F4c",
		Title: "CDF of traffic occupancy ratio (1 week, 3 venues)",
	}
	res.Header = []string{"occupancy"}
	for _, c := range curves {
		res.Header = append(res.Header, c.name)
	}
	for _, x := range []float64{0.02, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 0.999} {
		row := []string{f3(x)}
		for _, c := range curves {
			row = append(row, f3(c.cdf.At(x)))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"LTE occupancy is 1.0 at every venue and hour (CDF steps at 1.0)",
		"LoRa sits near 0.02; WiFi office stays below 0.5 for ~80% and 0.7 for ~90% of the week (paper Fig 4c)")
	return res
}
