package experiments

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"lscatter/internal/channel"
	"lscatter/internal/enodeb"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
	"lscatter/internal/simlink"
	"lscatter/internal/tag"
)

// Real-time-factor (RTF) measurement: simulated seconds produced per
// wall-clock second, on one goroutine. The headline number is the
// fixed-point transport pipeline (simlink.Streamer) at the configured
// bandwidth — the chain the Q1.15 lane was built to accelerate — with the
// full float and fixed-point Sessions over the same stage graph reported as
// secondary context. docs/PERFORMANCE.md defines the methodology and the
// recorded targets; tools/rtfcheck gates regressions against the baseline
// in BENCH_R2.json.

// RTFConfig parameterizes an RTF run.
type RTFConfig struct {
	// BW is the measured bandwidth (default 20 MHz — the headline).
	BW ltephy.Bandwidth
	// Subframes is the timed streamer length in ms (default 2000).
	Subframes int
	// SessionSubframes is the timed length of the secondary full-Session
	// measurements (default 10; they are orders of magnitude slower).
	SessionSubframes int
	// Seed drives payload and noise.
	Seed uint64
}

// RTFReport is the JSON-facing result of one RTF run.
type RTFReport struct {
	// BW names the measured bandwidth.
	BW string `json:"bw"`
	// SampleRateHz is the oversampled simulation rate.
	SampleRateHz float64 `json:"sample_rate_hz"`
	// Subframes is the timed streamer subframe count.
	Subframes int `json:"subframes"`
	// WallSeconds is the streamer's timed-loop wall time.
	WallSeconds float64 `json:"wall_seconds"`
	// RTF is the headline: simulated seconds per wall-clock second for the
	// fixed-point transport pipeline on one goroutine.
	RTF float64 `json:"rtf"`
	// SessionFxpRTF is the full fixed-point Session (source generation,
	// modulation, paths, combine, noise) over the same stage graph.
	SessionFxpRTF float64 `json:"session_fxp_rtf"`
	// SessionFloatRTF is the float-lane counterpart of SessionFxpRTF.
	SessionFloatRTF float64 `json:"session_float_rtf"`
	// GoVersion and CPU record the machine the numbers were taken on.
	GoVersion string `json:"go_version"`
	CPU       string `json:"cpu,omitempty"`
	// Checksum witnesses that the timed loop really produced the stream.
	Checksum uint64 `json:"checksum"`
}

// Render formats the report for the terminal.
func (r *RTFReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "RTF @ %s (%.2f MS/s, one goroutine)\n", r.BW, r.SampleRateHz/1e6)
	fmt.Fprintf(&b, "  transport (fxp streamer): %7.2fx real time  (%d subframes in %.3f s)\n",
		r.RTF, r.Subframes, r.WallSeconds)
	fmt.Fprintf(&b, "  session   (fxp lane):     %7.2fx real time\n", r.SessionFxpRTF)
	fmt.Fprintf(&b, "  session   (float lane):   %7.2fx real time\n", r.SessionFloatRTF)
	fmt.Fprintf(&b, "  %s, %s", r.GoVersion, r.CPU)
	return b.String()
}

// cpuModel best-effort reads the CPU model name (linux); empty elsewhere.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

// rtfStreamConfig is the canonical RTF scenario: a 10 dBm eNodeB, the
// default 6 dB reflection loss, plausible fixed path budgets and a noise
// floor that keeps the noise add in the hot loop.
func rtfStreamConfig(bw ltephy.Bandwidth, seed uint64) simlink.StreamConfig {
	p := ltephy.DefaultParams(bw)
	occupied := float64(bw.Subcarriers()) * ltephy.SubcarrierSpacing
	noise := channel.NoiseFloorW(occupied, 7) * p.SampleRate() / occupied
	return simlink.StreamConfig{
		ENodeB:       enodeb.DefaultConfig(bw),
		Tag:          tag.ModConfig{Params: p, Mode: tag.DSB, ReflectionLossDB: 6},
		DirectGainDB: -50,
		TagGainDB:    -70,
		NoisePowerW:  noise,
		Seed:         seed,
	}
}

// rtfSession builds the Session twin of rtfStreamConfig in the given lane
// (no sink: the measurement is the transport chain itself).
func rtfSession(bw ltephy.Bandwidth, seed uint64, lane simlink.Lane) *simlink.Session {
	p := ltephy.DefaultParams(bw)
	sc := rtfStreamConfig(bw, seed)
	mod := tag.NewModulator(sc.Tag)
	payload := make([]byte, 14*p.UsefulModulationUnits())
	return &simlink.Session{
		Source: enodeb.New(sc.ENodeB),
		Direct: simlink.GainDB(sc.DirectGainDB),
		Tags: []*simlink.Tag{{
			Mod:  mod,
			Path: simlink.GainDB(sc.TagGainDB),
			Feed: func(int, *tag.Modulator) { mod.QueueBits(payload) },
		}},
		Link: channel.NewLink(rng.New(seed).Fork(1), sc.NoisePowerW),
		Lane: lane,
	}
}

// RunRTF measures the real-time factors of the transport pipeline. All
// loops run on the calling goroutine.
func RunRTF(cfg RTFConfig) *RTFReport {
	if cfg.BW == 0 {
		cfg.BW = ltephy.BW20
	}
	if cfg.Subframes == 0 {
		cfg.Subframes = 2000
	}
	if cfg.SessionSubframes == 0 {
		cfg.SessionSubframes = 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	p := ltephy.DefaultParams(cfg.BW)
	rep := &RTFReport{
		BW:           cfg.BW.String(),
		SampleRateHz: p.SampleRate(),
		Subframes:    cfg.Subframes,
		GoVersion:    runtime.Version(),
		CPU:          cpuModel(),
	}
	simPerSubframe := ltephy.SubframeDuration

	// Headline: the fixed-point streamer. Construction (ambient frame,
	// composite packing) is excluded — it is O(1) per stream, the steady
	// state is what real-time operation pays per millisecond.
	st := simlink.NewStreamer(rtfStreamConfig(cfg.BW, cfg.Seed))
	for i := 0; i < 50; i++ { // warm caches and branch predictors
		st.Next()
	}
	start := time.Now()
	for i := 0; i < cfg.Subframes; i++ {
		st.Next()
	}
	rep.WallSeconds = time.Since(start).Seconds()
	rep.Checksum = st.Checksum()
	rep.RTF = float64(cfg.Subframes) * simPerSubframe / rep.WallSeconds

	// Secondary: the full Session in both lanes (includes live source
	// generation and per-sample modulation — the general engine, not the
	// precomputed transport core).
	for _, lane := range []simlink.Lane{simlink.LaneFixedPoint, simlink.LaneFloat} {
		sess := rtfSession(cfg.BW, cfg.Seed, lane)
		sess.Run(1) // warm the waveform cache path
		start = time.Now()
		sess.Run(cfg.SessionSubframes)
		wall := time.Since(start).Seconds()
		rtf := float64(cfg.SessionSubframes) * simPerSubframe / wall
		if lane == simlink.LaneFixedPoint {
			rep.SessionFxpRTF = rtf
		} else {
			rep.SessionFloatRTF = rtf
		}
	}
	return rep
}
