package experiments

import (
	"fmt"

	"lscatter/internal/channel"
	"lscatter/internal/core"
	"lscatter/internal/traffic"
)

func init() {
	register("F23", Fig23MallDistance)
	register("F24", Fig24MallBER)
	register("F28", Fig28OutdoorDistance)
	register("F29", Fig29OutdoorBER)
	register("F30", Fig30RangeFrontier)
}

// distanceSweep runs the three systems over tag-to-receiver distances and
// reports either throughput or BER.
func distanceSweep(id, title string, venue traffic.Venue, dists []float64, ber bool, seed uint64) *Result {
	res := &Result{ID: id, Title: title}
	if ber {
		res.Header = []string{"distance (ft)", "WiFi BS BER", "symbol-LTE BER", "LScatter BER"}
	} else {
		res.Header = []string{"distance (ft)", "WiFi BS", "symbol-LTE BS", "LScatter"}
	}
	// Busy-hour WiFi occupancy for the venue.
	occ := traffic.NewModel(traffic.WiFi, venue, seed)
	hour := 19.0
	if venue == traffic.Mall {
		hour = 20
	}
	var occSum float64
	const occN = 50
	for i := 0; i < occN; i++ {
		occSum += occ.Sample(hour)
	}
	occupancy := occSum / occN

	for _, d := range dists {
		w := wifiBaselineAt(venue, d, seed)
		wRep := w.Evaluate(occupancy, occ.WiFiUsableFraction())
		s := symbolBaselineAt(venue, d, seed)
		sRep := s.Evaluate()
		var link core.LinkConfig
		if venue == traffic.Mall {
			link = mallLink(seed, d)
		} else {
			link = outdoorLink(seed, d)
		}
		lRep := core.Run(link)
		if ber {
			res.Rows = append(res.Rows, []string{
				fmt.Sprintf("%.0f", d), fber(wRep.BER), fber(sRep.BER), fber(lRep.BER),
			})
		} else {
			res.Rows = append(res.Rows, []string{
				fmt.Sprintf("%.0f", d), fbps(wRep.ThroughputBps), fbps(sRep.ThroughputBps), fbps(lRep.ThroughputBps),
			})
		}
	}
	return res
}

// Fig23MallDistance regenerates Fig 23: mall throughput vs distance for the
// three systems.
func Fig23MallDistance(seed uint64) *Result {
	res := distanceSweep("F23", "Shopping mall: throughput vs distance (log scale in the paper)",
		traffic.Mall, []float64{10, 20, 40, 60, 80, 100, 120, 140, 160, 180}, false, seed)
	res.Notes = append(res.Notes,
		"paper Fig 23: WiFi BS beats symbol-level LTE BS below ~80 ft; beyond it the 680 MHz carrier wins; LScatter leads everywhere by ~2 orders")
	return res
}

// Fig24MallBER regenerates Fig 24: mall BER vs distance.
func Fig24MallBER(seed uint64) *Result {
	res := distanceSweep("F24", "Shopping mall: BER vs distance",
		traffic.Mall, []float64{10, 20, 40, 60, 80, 100, 120, 140, 160, 180}, true, seed)
	res.Notes = append(res.Notes,
		"paper Fig 24: LScatter BER < 0.1% within 40 ft and < 1% within 150 ft")
	return res
}

// Fig28OutdoorDistance regenerates Fig 28: outdoor throughput vs distance.
func Fig28OutdoorDistance(seed uint64) *Result {
	res := distanceSweep("F28", "Outdoor: throughput vs distance (10 dBm)",
		traffic.Outdoor, []float64{20, 40, 80, 120, 160, 200, 240, 280, 320}, false, seed)
	res.Notes = append(res.Notes,
		"paper Fig 28: open space suffers less multipath, so every system reaches further than indoors")
	return res
}

// Fig29OutdoorBER regenerates Fig 29: outdoor BER vs distance.
func Fig29OutdoorBER(seed uint64) *Result {
	res := distanceSweep("F29", "Outdoor: BER vs distance (10 dBm)",
		traffic.Outdoor, []float64{20, 40, 80, 120, 160, 200, 240, 280, 320}, true, seed)
	res.Notes = append(res.Notes,
		"paper Fig 29: WiFi backscatter BER spikes beyond ~120 ft; the LTE systems stay under 1% to ~200 ft")
	return res
}

// Fig30RangeFrontier regenerates Fig 30: with the 40 dBm amplifier, the
// maximum tag-to-UE distance for each eNodeB-to-tag distance (feasibility =
// BER <= 1%).
func Fig30RangeFrontier(seed uint64) *Result {
	res := &Result{
		ID:     "F30",
		Title:  "eNodeB-to-tag vs max tag-to-UE distance at 40 dBm (BER <= 1%)",
		Header: []string{"eNB-to-tag (ft)", "max tag-to-UE (ft)"},
	}
	feasible := func(d1, d2 float64) bool {
		cfg := outdoorLink(seed, d2)
		cfg.TxPowerDBm = 40
		cfg.ENodeBToTagM = channel.FeetToMeters(d1)
		cfg.ENodeBToUEM = channel.FeetToMeters(d1 + d2)
		rep := core.Run(cfg)
		return rep.Synced && rep.BER <= 0.01
	}
	for _, d1 := range []float64{2, 8, 16, 24, 32, 40} {
		lo, hi := 1.0, 2000.0
		if !feasible(d1, lo) {
			res.Rows = append(res.Rows, []string{fmt.Sprintf("%.0f", d1), "0"})
			continue
		}
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if feasible(d1, mid) {
				lo = mid
			} else {
				hi = mid
			}
		}
		res.Rows = append(res.Rows, []string{fmt.Sprintf("%.0f", d1), fmt.Sprintf("%.0f", lo)})
	}
	res.Notes = append(res.Notes,
		"paper Fig 30: 320 ft of tag-to-UE range at 2 ft eNodeB-to-tag; ~160 ft at 24 ft")
	return res
}
