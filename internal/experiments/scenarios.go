package experiments

import (
	"lscatter/internal/baseline"
	"lscatter/internal/channel"
	"lscatter/internal/core"
	"lscatter/internal/ltephy"
	"lscatter/internal/traffic"
)

// The three deployment scenarios of §4.2, with the calibration constants
// recorded in DESIGN.md: indoor home (multipath-rich, exponent 2.2), mall
// (corridor waveguiding, exponent 1.8), and outdoor street (free-space-like,
// exponent 2.0).

// homeLink is the §4.3 smart-home scenario: ~3 ft spacings.
func homeLink(seed uint64) core.LinkConfig {
	cfg := core.DefaultLinkConfig(ltephy.BW20)
	cfg.Seed = seed
	return cfg
}

// mallLink is the §4.4 shopping-mall scenario at a given tag-to-UE distance.
func mallLink(seed uint64, tagToUEFt float64) core.LinkConfig {
	cfg := core.DefaultLinkConfig(ltephy.BW20)
	cfg.PathLossExponent = 1.8
	cfg.ENodeBToTagM = channel.FeetToMeters(3)
	cfg.TagToUEM = channel.FeetToMeters(tagToUEFt)
	cfg.ENodeBToUEM = channel.FeetToMeters(tagToUEFt + 3)
	cfg.Seed = seed
	return cfg
}

// outdoorLink is the §4.5 street scenario at a given tag-to-UE distance.
// Street canyons waveguide slightly below free space at these ranges, which
// is what carries the paper's sub-GHz link past 200 ft.
func outdoorLink(seed uint64, tagToUEFt float64) core.LinkConfig {
	cfg := core.DefaultLinkConfig(ltephy.BW20)
	cfg.PathLossExponent = 1.9
	cfg.ENodeBAntennaDB = 8 // elevated outdoor antenna
	cfg.Indoor = false
	cfg.ENodeBToTagM = channel.FeetToMeters(3)
	cfg.TagToUEM = channel.FeetToMeters(tagToUEFt)
	cfg.ENodeBToUEM = channel.FeetToMeters(tagToUEFt + 3)
	cfg.Seed = seed
	return cfg
}

// wifiBaselineAt returns the WiFi backscatter comparison system at a venue
// and distance.
func wifiBaselineAt(venue traffic.Venue, tagToRxFt float64, seed uint64) baseline.WiFiBackscatter {
	w := baseline.DefaultWiFiBackscatter()
	w.TagToRxM = channel.FeetToMeters(tagToRxFt)
	w.APToRxM = channel.FeetToMeters(tagToRxFt + 3)
	w.Seed = seed
	switch venue {
	case traffic.Mall:
		w.Exponent = 2.1
	case traffic.Outdoor:
		w.Exponent = 2.0
		w.LoS = true
	default:
		w.Exponent = 2.2
	}
	return w
}

// symbolBaselineAt returns the symbol-level LTE strawman at a venue/distance.
func symbolBaselineAt(venue traffic.Venue, tagToUEFt float64, seed uint64) baseline.SymbolLevelLTE {
	s := baseline.DefaultSymbolLevelLTE()
	s.TagToUEM = channel.FeetToMeters(tagToUEFt)
	s.ENodeBToUEM = channel.FeetToMeters(tagToUEFt + 3)
	s.Seed = seed
	switch venue {
	case traffic.Mall:
		s.Exponent = 1.8
	case traffic.Outdoor:
		s.Exponent = 2.0
	default:
		s.Exponent = 2.2
	}
	return s
}
