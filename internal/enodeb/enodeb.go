package enodeb

import (
	"math"

	"lscatter/internal/dsp"
	"lscatter/internal/ltephy"
	"lscatter/internal/modem"
	"lscatter/internal/rng"
)

// Config parameterizes the simulated base station.
type Config struct {
	// Params carries bandwidth, cell identity and oversampling.
	Params ltephy.Params
	// Scheme is the PDSCH modulation (QPSK by default; Fig 32 uses up to
	// 64-QAM to measure LTE's own throughput).
	Scheme modem.Scheme
	// TxPowerDBm is the transmit power (10 dBm for the USRP testbed,
	// 40 dBm with the paper's RF5110 amplifier).
	TxPowerDBm float64
	// Seed drives the payload generator.
	Seed uint64
	// NoCache bypasses ltephy.SharedCache for this eNodeB. The cache is
	// bit-transparent (a hit returns exactly what the modulator would
	// produce), so this exists only for A/B measurements and tests.
	NoCache bool
}

// DefaultConfig returns a 10 dBm QPSK eNodeB at the given bandwidth.
func DefaultConfig(bw ltephy.Bandwidth) Config {
	return Config{
		Params:     ltephy.DefaultParams(bw),
		Scheme:     modem.QPSK,
		TxPowerDBm: 10,
		Seed:       1,
	}
}

// Subframe is one millisecond of downlink output.
type Subframe struct {
	// Index is the subframe number within the radio frame (0..9).
	Index int
	// Grid is the populated resource grid.
	Grid *ltephy.Grid
	// Samples is the oversampled IQ waveform scaled to the transmit power
	// (mean |x|^2 = TxPower in watts).
	Samples []complex128
	// Payload is the PDSCH transport-block information bits.
	Payload []byte
	// DataREs is the PDSCH resource-element count of this subframe.
	DataREs int
}

// ENodeB generates a continuous downlink subframe stream. A single ENodeB is
// not safe for concurrent use, but distinct instances may run on concurrent
// goroutines: the only state they share is ltephy.SharedCache, which is
// concurrency-safe.
type ENodeB struct {
	cfg   Config
	codec *Codec
	rnd   *rng.Source
	sfn   int     // absolute subframe counter
	gain  float64 // deterministic amplitude scale to reach TxPowerDBm
}

// modulate runs the OFDM modulator through the shared waveform cache unless
// this eNodeB opted out. The returned slice is owned by the caller.
func (e *ENodeB) modulate(g *ltephy.Grid) []complex128 {
	if e.cfg.NoCache {
		return ltephy.Modulate(g)
	}
	return ltephy.SharedCache.Modulate(g)
}

// New builds an eNodeB. It panics on invalid parameters.
func New(cfg Config) *ENodeB {
	if err := cfg.Params.Validate(); err != nil {
		panic(err)
	}
	e := &ENodeB{
		cfg:   cfg,
		codec: NewCodec(cfg.Params, cfg.Scheme),
		rnd:   rng.New(cfg.Seed),
	}
	// Calibrate the transmit gain once against a reference waveform: a
	// frame of grids with unit-magnitude symbols on every control/data RE
	// (sync and CRS mapped normally, including the PSS boost). The gain is
	// then a single constant for the whole stream, so a backscatter channel
	// estimate from one subframe holds for all.
	// The reference frame depends only on Params, so the per-subframe
	// waveforms hit ltephy.SharedCache for every eNodeB after the first
	// with the same numerology — New drops from 10 IFFT subframes to 10
	// lookups, which matters because the sweep experiments construct a
	// fresh eNodeB per evaluated point.
	var p float64
	for sf := 0; sf < ltephy.SubframesPerFrame; sf++ {
		g := ltephy.NewGrid(cfg.Params, sf)
		g.MapSyncAndRef()
		ones := make([]complex128, 2*g.K())
		for i := range ones {
			ones[i] = 1
		}
		g.MapControl(ones)
		data := make([]complex128, g.DataCapacity())
		for i := range data {
			data[i] = 1
		}
		g.MapData(data)
		p += dsp.Power(e.modulate(g))
	}
	p /= ltephy.SubframesPerFrame
	targetW := math.Pow(10, (cfg.TxPowerDBm-30)/10)
	e.gain = math.Sqrt(targetW / p)
	return e
}

// Codec exposes the PDSCH codec so the UE can decode and regenerate the
// downlink.
func (e *ENodeB) Codec() *Codec { return e.codec }

// Config returns the eNodeB configuration.
func (e *ENodeB) Config() Config { return e.cfg }

// SubframeCount returns how many subframes have been generated.
func (e *ENodeB) SubframeCount() int { return e.sfn }

// NextSubframe produces the next millisecond of the continuous downlink:
// LTE traffic occupies every subframe (the paper's Observation 1 — this is
// exactly what distinguishes LTE from bursty WiFi as an excitation source).
func (e *ENodeB) NextSubframe() *Subframe {
	idx := e.sfn % ltephy.SubframesPerFrame
	frame := e.sfn / ltephy.SubframesPerFrame
	e.sfn++
	g := ltephy.NewGrid(e.cfg.Params, idx)
	g.MapSyncAndRef()
	if idx == 0 {
		// Broadcast channel: bandwidth + system frame number.
		g.MapPBCH(ltephy.EncodePBCH(e.cfg.Params, ltephy.MIB{BW: e.cfg.Params.BW, SFN: frame % 1024}))
	}
	// Control region: scrambler-driven QPSK, as PDCCH content is opaque to
	// the backscatter system.
	ctrlCap := 2 * g.K() // upper bound; MapControl stops at the region size
	ctrl := modem.Map(modem.QPSK, e.rnd.Bits(make([]byte, 2*ctrlCap)))
	g.MapControl(ctrl)

	dataREs := g.DataCapacity()
	payload := e.rnd.Bits(make([]byte, e.codec.TransportBlockSize(dataREs)))
	syms, err := e.codec.Encode(idx, payload, dataREs)
	if err != nil {
		panic(err) // sizes are derived from each other; cannot happen
	}
	g.MapData(syms)

	samples := e.modulate(g)
	dsp.Scale(samples, e.gain)
	return &Subframe{
		Index:   idx,
		Grid:    g,
		Samples: samples,
		Payload: payload,
		DataREs: dataREs,
	}
}

// Stream produces n consecutive subframes.
func (e *ENodeB) Stream(n int) []*Subframe {
	out := make([]*Subframe, n)
	for i := range out {
		out[i] = e.NextSubframe()
	}
	return out
}

// InfoBitRate returns the nominal LTE information bit rate in bits/s for the
// configured bandwidth and scheme (averaged over a 10-subframe frame).
func (e *ENodeB) InfoBitRate() float64 {
	total := 0
	for sf := 0; sf < ltephy.SubframesPerFrame; sf++ {
		g := ltephy.NewGrid(e.cfg.Params, sf)
		g.MapSyncAndRef()
		if sf == 0 {
			g.MapPBCH(make([]complex128, len(ltephy.PBCHREs(e.cfg.Params))))
		}
		g.MapControl(make([]complex128, 2*g.K()))
		total += e.codec.TransportBlockSize(g.DataCapacity())
	}
	return float64(total) / (ltephy.SubframesPerFrame * ltephy.SubframeDuration)
}
