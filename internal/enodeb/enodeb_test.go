package enodeb

import (
	"math"
	"testing"

	"lscatter/internal/bits"
	"lscatter/internal/dsp"
	"lscatter/internal/ltephy"
	"lscatter/internal/modem"
	"lscatter/internal/rng"
)

func TestCodecRoundTripClean(t *testing.T) {
	p := ltephy.DefaultParams(ltephy.BW1_4)
	for _, scheme := range []modem.Scheme{modem.QPSK, modem.QAM16, modem.QAM64} {
		c := NewCodec(p, scheme)
		r := rng.New(42)
		dataREs := 800
		payload := r.Bits(make([]byte, c.TransportBlockSize(dataREs)))
		syms, err := c.Encode(3, payload, dataREs)
		if err != nil {
			t.Fatal(err)
		}
		if len(syms) != dataREs {
			t.Fatalf("%v: %d symbols for %d REs", scheme, len(syms), dataREs)
		}
		got, ok := c.Decode(3, syms, 0.1)
		if !ok {
			t.Fatalf("%v: clean decode failed CRC", scheme)
		}
		if bits.CountDiff(got, payload) != 0 {
			t.Fatalf("%v: clean decode corrupted payload", scheme)
		}
	}
}

func TestCodecRoundTripNoisy(t *testing.T) {
	p := ltephy.DefaultParams(ltephy.BW1_4)
	c := NewCodec(p, modem.QPSK)
	r := rng.New(43)
	dataREs := 1000
	payload := r.Bits(make([]byte, c.TransportBlockSize(dataREs)))
	syms, _ := c.Encode(1, payload, dataREs)
	// 7 dB SNR: raw QPSK BER ~1e-2; rate-1/2 K=7 Viterbi must clean it up.
	noiseVar := dsp.FromDB(-7)
	sigma := math.Sqrt(noiseVar / 2)
	for i := range syms {
		syms[i] += r.Complex(sigma)
	}
	got, ok := c.Decode(1, syms, noiseVar)
	if !ok {
		t.Fatal("decode at 7 dB SNR failed CRC")
	}
	if bits.CountDiff(got, payload) != 0 {
		t.Fatal("decode at 7 dB SNR corrupted payload")
	}
}

func TestCodecFailsAtVeryLowSNR(t *testing.T) {
	p := ltephy.DefaultParams(ltephy.BW1_4)
	c := NewCodec(p, modem.QAM64)
	r := rng.New(44)
	dataREs := 1000
	payload := r.Bits(make([]byte, c.TransportBlockSize(dataREs)))
	syms, _ := c.Encode(1, payload, dataREs)
	for i := range syms {
		syms[i] += r.Complex(1.0) // ~-3 dB SNR on 64-QAM: hopeless
	}
	if _, ok := c.Decode(1, syms, 2.0); ok {
		t.Fatal("CRC passed on a hopeless channel (undetected corruption)")
	}
}

func TestCodecRejectsWrongPayloadSize(t *testing.T) {
	p := ltephy.DefaultParams(ltephy.BW1_4)
	c := NewCodec(p, modem.QPSK)
	if _, err := c.Encode(0, make([]byte, 10), 1000); err == nil {
		t.Fatal("Encode accepted wrong payload size")
	}
}

func TestTransportBlockSizeScalesWithScheme(t *testing.T) {
	p := ltephy.DefaultParams(ltephy.BW5)
	qpsk := NewCodec(p, modem.QPSK).TransportBlockSize(1000)
	qam64 := NewCodec(p, modem.QAM64).TransportBlockSize(1000)
	if qam64 <= 2*qpsk {
		t.Fatalf("64QAM TBS %d not ~3x QPSK TBS %d", qam64, qpsk)
	}
}

func TestScramblingDiffersAcrossSubframes(t *testing.T) {
	p := ltephy.DefaultParams(ltephy.BW1_4)
	c := NewCodec(p, modem.QPSK)
	payload := make([]byte, c.TransportBlockSize(500))
	a, _ := c.Encode(0, payload, 500)
	b, _ := c.Encode(1, payload, 500)
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	if diff < len(a)/4 {
		t.Fatalf("same payload nearly identical across subframes (%d of %d differ)", diff, len(a))
	}
}

func TestENodeBStreamStructure(t *testing.T) {
	e := New(DefaultConfig(ltephy.BW1_4))
	sfs := e.Stream(12)
	if len(sfs) != 12 {
		t.Fatalf("stream length %d", len(sfs))
	}
	for i, sf := range sfs {
		if sf.Index != i%10 {
			t.Fatalf("subframe %d has index %d", i, sf.Index)
		}
		want := e.Config().Params.Oversample * e.Config().Params.BW.SamplesPerSubframe()
		if len(sf.Samples) != want {
			t.Fatalf("subframe sample count %d, want %d", len(sf.Samples), want)
		}
	}
	// PSS present exactly in subframes 0 and 5.
	for i, sf := range sfs[:10] {
		has := false
		for _, kind := range sf.Grid.Kind[ltephy.PSSSymbolIndex] {
			if kind == ltephy.REPSS {
				has = true
			}
		}
		if has != (i == 0 || i == 5) {
			t.Fatalf("subframe %d PSS presence = %v", i, has)
		}
	}
}

func TestENodeBTxPowerScaling(t *testing.T) {
	cfg := DefaultConfig(ltephy.BW1_4)
	cfg.TxPowerDBm = 10 // 10 mW
	e := New(cfg)
	sf := e.NextSubframe()
	if p := dsp.Power(sf.Samples); math.Abs(p-0.01) > 0.003 {
		t.Fatalf("subframe power = %v W, want ~0.01", p)
	}
}

func TestENodeBContinuousTraffic(t *testing.T) {
	// Observation 1: LTE occupies 100% of subframes. Every subframe must
	// carry non-trivial energy in every symbol.
	e := New(DefaultConfig(ltephy.BW1_4))
	sf := e.NextSubframe()
	p := e.Config().Params
	n := p.BW.FFTSize() * p.Oversample
	mean := dsp.Power(sf.Samples)
	for l := 0; l < ltephy.SymbolsPerSubframe; l++ {
		start := ltephy.UsefulStart(p, l)
		symP := dsp.Power(sf.Samples[start : start+n])
		if symP < mean/10 {
			t.Fatalf("symbol %d nearly silent: %v vs mean %v", l, symP, mean)
		}
	}
}

func TestENodeBPayloadsVary(t *testing.T) {
	e := New(DefaultConfig(ltephy.BW1_4))
	a := e.NextSubframe()
	b := e.NextSubframe()
	if bits.CountDiff(a.Payload[:100], b.Payload[:100]) == 0 {
		t.Fatal("consecutive subframes carry identical payloads")
	}
}

func TestInfoBitRateReasonable(t *testing.T) {
	// 20 MHz QPSK rate-1/2 should land in the 10-17 Mbps range; 64-QAM
	// triples it. These bound the Fig 32 LTE-throughput axis.
	cfg := DefaultConfig(ltephy.BW20)
	qpsk := New(cfg).InfoBitRate()
	if qpsk < 10e6 || qpsk > 17e6 {
		t.Fatalf("20 MHz QPSK info rate = %v, want 10-17 Mbps", qpsk)
	}
	cfg.Scheme = modem.QAM64
	qam := New(cfg).InfoBitRate()
	if qam < 2.5*qpsk || qam > 3.5*qpsk {
		t.Fatalf("64QAM rate %v not ~3x QPSK %v", qam, qpsk)
	}
}

func TestInfoBitRateGrowsWithBandwidth(t *testing.T) {
	prev := 0.0
	for _, bw := range ltephy.Bandwidths {
		r := New(DefaultConfig(bw)).InfoBitRate()
		if r <= prev {
			t.Fatalf("%v info rate %v not above previous %v", bw, r, prev)
		}
		prev = r
	}
}

func BenchmarkNextSubframe1_4MHz(b *testing.B) {
	e := New(DefaultConfig(ltephy.BW1_4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.NextSubframe()
	}
}

func BenchmarkCodecDecode5MHzQPSK(b *testing.B) {
	p := ltephy.DefaultParams(ltephy.BW5)
	c := NewCodec(p, modem.QPSK)
	r := rng.New(1)
	dataREs := 3000
	payload := r.Bits(make([]byte, c.TransportBlockSize(dataREs)))
	syms, _ := c.Encode(1, payload, dataREs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Decode(1, syms, 0.1); !ok {
			b.Fatal("decode failed")
		}
	}
}

func TestCacheTransparentAndHitsOnReplay(t *testing.T) {
	cfg := DefaultConfig(ltephy.BW1_4)
	cfg.Seed = 42

	uncached := cfg
	uncached.NoCache = true
	plain := New(uncached).Stream(12)

	// First cached eNodeB populates the shared cache, the second replays the
	// identical stream from it; both must be bit-identical to the uncached
	// reference.
	for pass := 0; pass < 2; pass++ {
		before := ltephy.SharedCache.Stats()
		got := New(cfg).Stream(12)
		d := ltephy.SharedCache.Stats().Delta(before)
		if pass == 1 && d.Hits == 0 {
			t.Fatalf("replaying an identical stream produced no cache hits: %+v", d)
		}
		for i, sf := range got {
			if len(sf.Samples) != len(plain[i].Samples) {
				t.Fatalf("pass %d subframe %d: length %d vs %d", pass, i, len(sf.Samples), len(plain[i].Samples))
			}
			for j := range sf.Samples {
				if sf.Samples[j] != plain[i].Samples[j] {
					t.Fatalf("pass %d subframe %d: cached stream diverges at sample %d", pass, i, j)
				}
			}
		}
	}
}
