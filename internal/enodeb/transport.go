// Package enodeb simulates an LTE base station (Evolved NodeB) producing the
// continuous downlink waveform LScatter rides on: every subframe carries
// sync/reference signals plus a PDSCH transport block protected by CRC-16,
// a K=7 rate-1/2 convolutional code, block interleaving and cell-specific
// Gold scrambling. The transport codec is exported so the UE can both decode
// the direct-path LTE data and regenerate the clean excitation waveform used
// as the backscatter demodulation reference.
package enodeb

import (
	"fmt"
	"sync"

	"lscatter/internal/bits"
	"lscatter/internal/ltephy"
	"lscatter/internal/modem"
)

// crcBits is the CRC-16 length attached to every transport block.
const crcBits = 16

// tailBits is the convolutional termination overhead (K-1).
const tailBits = 6

// Codec bundles the PDSCH coding chain for one cell and modulation scheme.
type Codec struct {
	Params ltephy.Params
	Scheme modem.Scheme
	conv   *bits.ConvCode
	inter  *bits.BlockInterleaver

	// scrambles memoizes scrambleSeq per (subframe, n): ten subframes times a
	// handful of lengths, regenerated every subframe otherwise.
	scrambles sync.Map // scrambleKey -> []byte
}

// scrambleKey identifies one cached scrambling sequence.
type scrambleKey struct {
	subframe, n int
}

// NewCodec builds the PDSCH codec (rate-1/2 convolutional, 32-column block
// interleaver).
func NewCodec(p ltephy.Params, scheme modem.Scheme) *Codec {
	return &Codec{
		Params: p,
		Scheme: scheme,
		conv:   bits.NewConvCodeR12(),
		inter:  bits.NewBlockInterleaver(32),
	}
}

// TransportBlockSize returns the number of information bits (excluding CRC)
// that fit in a subframe with the given PDSCH RE capacity.
func (c *Codec) TransportBlockSize(dataREs int) int {
	_, kept := c.conv.Rate()
	availCoded := dataREs * c.Scheme.BitsPerSymbol()
	n := availCoded/kept - crcBits - tailBits
	if n < 0 {
		n = 0
	}
	return n
}

// scrambleSeq returns the per-subframe scrambling sequence. The slice is
// cached and shared between calls; callers must treat it as read-only.
func (c *Codec) scrambleSeq(subframe, n int) []byte {
	key := scrambleKey{subframe, n}
	if v, ok := c.scrambles.Load(key); ok {
		return v.([]byte)
	}
	cinit := uint32(c.Params.CellID<<9 | subframe<<4 | 0x5)
	seq := bits.GoldSequence(cinit, n)
	v, _ := c.scrambles.LoadOrStore(key, seq)
	return v.([]byte)
}

// Encode turns payload bits into PDSCH symbols filling dataREs resource
// elements. The payload length must equal TransportBlockSize(dataREs).
// Leftover modulation positions beyond the codeword are filled with
// scrambler bits so every RE carries a valid constellation point.
func (c *Codec) Encode(subframe int, payload []byte, dataREs int) ([]complex128, error) {
	want := c.TransportBlockSize(dataREs)
	if len(payload) != want {
		return nil, fmt.Errorf("enodeb: payload %d bits, want %d for %d REs", len(payload), want, dataREs)
	}
	coded := c.conv.Encode(bits.AttachCRC16(payload))
	coded = c.inter.Interleave(coded)
	avail := dataREs * c.Scheme.BitsPerSymbol()
	full := make([]byte, avail)
	copy(full, coded)
	filler := c.scrambleSeq(subframe+100, avail-len(coded))
	copy(full[len(coded):], filler)
	scr := c.scrambleSeq(subframe, avail)
	for i := range full {
		full[i] ^= scr[i]
	}
	return modem.Map(c.Scheme, full), nil
}

// Decode inverts Encode from per-RE soft symbols: it soft-demaps, descrambles
// and deinterleaves the codeword portion, Viterbi-decodes and checks the CRC.
// noiseVar scales the demapper LLRs. It returns the payload bits and whether
// the CRC passed.
func (c *Codec) Decode(subframe int, symbols []complex128, noiseVar float64) (payload []byte, ok bool) {
	dataREs := len(symbols)
	n := c.TransportBlockSize(dataREs)
	if n == 0 {
		return nil, false
	}
	llr := modem.DemapSoft(c.Scheme, symbols, noiseVar)
	scr := c.scrambleSeq(subframe, len(llr))
	for i := range llr {
		if scr[i] == 1 {
			llr[i] = -llr[i]
		}
	}
	codedLen := c.conv.EncodedLen(n + crcBits)
	if codedLen > len(llr) {
		return nil, false
	}
	// Deinterleave the codeword LLRs (interleaving was applied to the
	// codeword only).
	deint := make([]float64, codedLen)
	for i, src := range c.inter.Permutation(codedLen) {
		deint[src] = llr[i]
	}
	dec := c.conv.DecodeSoft(deint)
	if dec == nil {
		return nil, false
	}
	return bits.CheckCRC16(dec)
}
