package store

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// The on-disk artifact format: one file per key, a fixed binary header
// followed by the stored body. The header carries the key, the body length
// and a SHA-256 of the body, so a truncated, bit-flipped or zero-length file
// is detected on read instead of being served. The layout (all integers
// little-endian):
//
//	magic    [8]byte  "LSCATART"
//	version  uint32   1
//	hashLen  uint32   length of the spec-hash string (lowercase hex)
//	hash     [hashLen]byte
//	seed     uint64
//	bodyLen  uint64
//	checksum [32]byte SHA-256 of the body
//	body     [bodyLen]byte
//
// decodeArtifact is strict — any deviation (wrong magic, trailing bytes,
// checksum mismatch) is an error — so encode(decode(b)) == b for every
// accepted b; FuzzArtifactDecode pins that round-trip.
const (
	artifactMagic   = "LSCATART"
	artifactVersion = 1
	artifactExt     = ".art"
	indexFileName   = "index.json"
	quarantineDir   = "quarantine"
	maxHashLen      = 64
)

// artifactHeaderSize is the fixed part of the header, before the
// variable-length hash: magic + version + hashLen.
const artifactHeaderSize = 8 + 4 + 4

// encodeArtifact serializes one artifact to its on-disk byte form.
func encodeArtifact(k Key, body []byte) []byte {
	sum := sha256.Sum256(body)
	buf := make([]byte, 0, artifactHeaderSize+len(k.SpecHash)+8+8+32+len(body))
	buf = append(buf, artifactMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, artifactVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(k.SpecHash)))
	buf = append(buf, k.SpecHash...)
	buf = binary.LittleEndian.AppendUint64(buf, k.Seed)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(body)))
	buf = append(buf, sum[:]...)
	buf = append(buf, body...)
	return buf
}

// errCorruptArtifact wraps every decode failure so callers can treat
// "quarantine this file" as one condition.
var errCorruptArtifact = errors.New("corrupt artifact")

// decodeArtifact parses and fully verifies one on-disk artifact. It never
// panics on arbitrary input and accepts exactly the bytes encodeArtifact
// produces: any truncation, extension, field corruption or checksum mismatch
// returns an error.
func decodeArtifact(data []byte) (Key, []byte, error) {
	fail := func(format string, args ...any) (Key, []byte, error) {
		return Key{}, nil, fmt.Errorf("%w: %s", errCorruptArtifact, fmt.Sprintf(format, args...))
	}
	if len(data) < artifactHeaderSize {
		return fail("short header (%d bytes)", len(data))
	}
	if string(data[:8]) != artifactMagic {
		return fail("bad magic")
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != artifactVersion {
		return fail("unknown version %d", v)
	}
	hashLen := binary.LittleEndian.Uint32(data[12:16])
	if hashLen == 0 || hashLen > maxHashLen {
		return fail("hash length %d out of range", hashLen)
	}
	rest := data[artifactHeaderSize:]
	if uint64(len(rest)) < uint64(hashLen)+8+8+32 {
		return fail("truncated header")
	}
	hash := string(rest[:hashLen])
	for _, c := range hash {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return fail("non-hex spec hash")
		}
	}
	rest = rest[hashLen:]
	seed := binary.LittleEndian.Uint64(rest[:8])
	bodyLen := binary.LittleEndian.Uint64(rest[8:16])
	sum := rest[16:48]
	body := rest[48:]
	if uint64(len(body)) != bodyLen {
		return fail("body length %d does not match header claim %d", len(body), bodyLen)
	}
	got := sha256.Sum256(body)
	if !bytes.Equal(got[:], sum) {
		return fail("body checksum mismatch")
	}
	return Key{SpecHash: hash, Seed: seed}, body, nil
}

// indexDoc is the persisted store index: the keys on disk in LRU order (most
// recently used first). It is an accelerator and an audit trail, not the
// source of truth — Open rebuilds it from a directory scan, using the
// persisted order only to keep eviction recency warm across restarts. A
// stale entry (file gone or resized) is dropped with one log line.
type indexDoc struct {
	Version int          `json:"version"`
	Entries []indexEntry `json:"entries"`
}

type indexEntry struct {
	SpecHash string `json:"spec_hash"`
	Seed     uint64 `json:"seed"`
	File     string `json:"file"`
	Size     int64  `json:"size"`
}

// decodeIndex parses an index file. Like decodeArtifact it must never panic
// on arbitrary bytes; a structurally invalid index is an error and the
// caller falls back to scan order.
func decodeIndex(data []byte) (*indexDoc, error) {
	var doc indexDoc
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	if doc.Version != artifactVersion {
		return nil, fmt.Errorf("index: unknown version %d", doc.Version)
	}
	for _, e := range doc.Entries {
		if e.File == "" || e.File != filepath.Base(e.File) || !strings.HasSuffix(e.File, artifactExt) {
			return nil, fmt.Errorf("index: invalid file name %q", e.File)
		}
		if e.Size < 0 {
			return nil, fmt.Errorf("index: negative size for %q", e.File)
		}
	}
	return &doc, nil
}

// DiskStore is the durable content-addressed artifact store: artifacts are
// written through on Put and verified against their checksums on Get, so a
// process restart pointed at the same directory keeps the cache warm. Total
// size is bounded by maxBytes with LRU eviction. Corrupt files are
// quarantined (moved into quarantine/), never served.
//
// The store is multi-process safe: mutations hold an advisory exclusive lock
// on dir/.lock for their duration (never at rest, so several open stores —
// including several in one process — interleave freely), every write is an
// atomic temp+fsync+rename, and a Get that misses the in-memory index probes
// the canonical file name so artifacts Put by a sibling process are adopted
// instead of recomputed. The index file is advisory recency; concurrent
// writers may overwrite each other's index, and the startup scan rebuilds it
// from the artifact files either way.
type DiskStore struct {
	mu       sync.Mutex
	dir      string
	maxBytes int64
	entries  map[Key]*list.Element
	order    *list.List // front = most recently used
	bytes    int64
	logf     func(format string, args ...any)
	flock    *fileLock

	hits, misses, puts, evictions uint64
	quarantined, staleDropped     uint64
	adopted                       uint64
}

type diskEntry struct {
	key  Key
	file string
	size int64
}

// DiskStats is the disk store's observability snapshot.
type DiskStats struct {
	Entries     int    `json:"entries"`
	Bytes       int64  `json:"bytes"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Puts        uint64 `json:"puts"`
	Evictions   uint64 `json:"evictions"`
	Quarantined uint64 `json:"quarantined"`
	StaleIndex  uint64 `json:"stale_index_dropped"`
	// Adopted counts artifacts discovered on disk after open — written there
	// by a sibling process sharing the directory — and served as hits.
	Adopted uint64 `json:"adopted"`
}

// FileName is the canonical file name for a key. The spec hash is validated
// hex and the seed is fixed-width, so names are filesystem-safe and unique
// per key — which is also what lets sibling processes find each other's
// artifacts without coordination.
func FileName(k Key) string {
	return fmt.Sprintf("%s-%016x%s", k.SpecHash, k.Seed, artifactExt)
}

// Open opens (creating if needed) a durable artifact store rooted at dir.
// maxBytes <= 0 selects a 256 MiB default. Startup rebuilds the in-memory
// index by scanning the directory: every *.art file's header is verified
// (magic, version, key-matches-name, length claim vs file size) and failures
// are quarantined; the persisted index.json only contributes the LRU recency
// order. logf receives one line per quarantined file or dropped stale index
// entry (nil = drop logs).
func Open(dir string, maxBytes int64, logf func(string, ...any)) (*DiskStore, error) {
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	d := &DiskStore{
		dir:      dir,
		maxBytes: maxBytes,
		entries:  make(map[Key]*list.Element),
		order:    list.New(),
		logf:     logf,
	}
	fl, err := openFileLock(filepath.Join(dir, ".lock"))
	if err != nil {
		// The lock is an accelerator for multi-process sharing; a filesystem
		// that cannot host it degrades to single-process semantics.
		d.logf("store: advisory lock unavailable: %v", err)
	}
	d.flock = fl
	d.lock()
	err = d.load()
	d.unlock()
	if err != nil {
		return nil, err
	}
	return d, nil
}

// lock/unlock bracket a mutation with the cross-process advisory lock. They
// are no-ops when the lock file could not be opened. The in-process mutex is
// always held first, so lock ordering is consistent.
func (d *DiskStore) lock()   { d.flock.Lock() }
func (d *DiskStore) unlock() { d.flock.Unlock() }

// load scans dir, validates headers, applies the persisted recency order and
// rewrites the index.
func (d *DiskStore) load() error {
	dirents, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Scan: every *.art file with a valid header is a candidate entry.
	scanned := map[string]diskEntry{}
	quarantinedNow := map[string]bool{}
	var scanOrder []string // directory order, the fallback recency
	for _, de := range dirents {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, artifactExt) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		key, err := d.verifyHeader(name, info.Size())
		if err != nil {
			d.quarantine(name, err)
			quarantinedNow[name] = true
			continue
		}
		scanned[name] = diskEntry{key: key, file: name, size: info.Size()}
		scanOrder = append(scanOrder, name)
	}

	// The persisted index contributes recency only: entries naming files the
	// scan accepted are replayed in order; stale ones are dropped loudly.
	var recency []string
	if raw, err := os.ReadFile(filepath.Join(d.dir, indexFileName)); err == nil {
		if idx, err := decodeIndex(raw); err != nil {
			d.logf("store: ignoring unreadable index: %v", err)
		} else {
			for _, e := range idx.Entries {
				se, ok := scanned[e.File]
				if !ok || se.size != e.Size || se.key.SpecHash != e.SpecHash || se.key.Seed != e.Seed {
					// A file the scan just quarantined already got its one log
					// line; its index entry is a casualty, not separate news.
					if !quarantinedNow[e.File] {
						d.staleDropped++
						d.logf("store: dropping stale index entry %s (file missing or changed)", e.File)
					}
					continue
				}
				recency = append(recency, e.File)
			}
		}
	}
	inRecency := map[string]bool{}
	for _, f := range recency {
		inRecency[f] = true
	}
	// Files the index did not order come after the ordered ones (treated as
	// least recently used among the known, but still present).
	for _, f := range scanOrder {
		if !inRecency[f] {
			recency = append(recency, f)
		}
	}
	for _, f := range recency {
		e := scanned[f]
		d.entries[e.key] = d.order.PushBack(&e)
		d.bytes += e.size
	}
	d.evictOverLocked()
	d.writeIndexLocked()
	return nil
}

// verifyHeader reads just the header of an artifact file and checks it
// against the file name and size. Body checksums are verified lazily at Get;
// truncation and zero-length files are caught here.
func (d *DiskStore) verifyHeader(name string, size int64) (Key, error) {
	f, err := os.Open(filepath.Join(d.dir, name))
	if err != nil {
		return Key{}, fmt.Errorf("%w: %v", errCorruptArtifact, err)
	}
	defer f.Close()
	head := make([]byte, artifactHeaderSize+maxHashLen+8+8+32)
	n, _ := f.Read(head)
	head = head[:n]
	if n < artifactHeaderSize {
		return Key{}, fmt.Errorf("%w: short file (%d bytes)", errCorruptArtifact, n)
	}
	if string(head[:8]) != artifactMagic {
		return Key{}, fmt.Errorf("%w: bad magic", errCorruptArtifact)
	}
	if v := binary.LittleEndian.Uint32(head[8:12]); v != artifactVersion {
		return Key{}, fmt.Errorf("%w: unknown version %d", errCorruptArtifact, v)
	}
	hashLen := binary.LittleEndian.Uint32(head[12:16])
	if hashLen == 0 || hashLen > maxHashLen {
		return Key{}, fmt.Errorf("%w: hash length %d out of range", errCorruptArtifact, hashLen)
	}
	if uint32(len(head)) < artifactHeaderSize+hashLen+8+8 {
		return Key{}, fmt.Errorf("%w: truncated header", errCorruptArtifact)
	}
	rest := head[artifactHeaderSize:]
	key := Key{
		SpecHash: string(rest[:hashLen]),
		Seed:     binary.LittleEndian.Uint64(rest[hashLen : hashLen+8]),
	}
	bodyLen := binary.LittleEndian.Uint64(rest[hashLen+8 : hashLen+16])
	wantSize := int64(artifactHeaderSize) + int64(hashLen) + 8 + 8 + 32 + int64(bodyLen)
	if size != wantSize {
		return Key{}, fmt.Errorf("%w: file size %d does not match header claim %d", errCorruptArtifact, size, wantSize)
	}
	if FileName(key) != name {
		return Key{}, fmt.Errorf("%w: header key %v does not match file name", errCorruptArtifact, key)
	}
	return key, nil
}

// quarantine moves a bad file aside (never deletes evidence) and logs once.
func (d *DiskStore) quarantine(name string, reason error) {
	d.quarantined++
	dst := filepath.Join(d.dir, quarantineDir, name)
	if err := os.Rename(filepath.Join(d.dir, name), dst); err != nil {
		// Rename across the same directory tree should not fail; fall back to
		// removal so the bad body can never be served.
		_ = os.Remove(filepath.Join(d.dir, name))
	}
	d.logf("store: quarantined %s: %v", name, reason)
}

// Get returns the stored body for the key, fully verified against its
// checksum. A file that fails verification is quarantined and reported as a
// miss, so a corrupt body is never served. A key absent from the in-memory
// index is probed once on disk under its canonical name, adopting artifacts
// a sibling process stored since this store opened.
func (d *DiskStore) Get(k Key) ([]byte, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	el, ok := d.entries[k]
	if !ok {
		return d.adoptLocked(k)
	}
	e := el.Value.(*diskEntry)
	data, err := os.ReadFile(filepath.Join(d.dir, e.file))
	if err == nil {
		var key Key
		var body []byte
		key, body, err = decodeArtifact(data)
		if err == nil && key != k {
			err = fmt.Errorf("%w: header key %v does not match %v", errCorruptArtifact, key, k)
		}
		if err == nil {
			d.hits++
			d.order.MoveToFront(el)
			return body, true
		}
	}
	// Unreadable or corrupt: drop the entry, quarantine the file, miss.
	d.order.Remove(el)
	delete(d.entries, k)
	d.bytes -= e.size
	d.lock()
	d.quarantine(e.file, err)
	d.writeIndexLocked()
	d.unlock()
	d.misses++
	return nil, false
}

// adoptLocked probes the canonical file for a key the in-memory index does
// not know — the cross-process read path. A valid artifact is adopted into
// the index and served; a corrupt one is quarantined; an absent one is a
// plain miss.
func (d *DiskStore) adoptLocked(k Key) ([]byte, bool) {
	name := FileName(k)
	data, err := os.ReadFile(filepath.Join(d.dir, name))
	if err != nil {
		d.misses++
		return nil, false
	}
	key, body, err := decodeArtifact(data)
	if err == nil && key != k {
		err = fmt.Errorf("%w: header key %v does not match %v", errCorruptArtifact, key, k)
	}
	if err != nil {
		d.lock()
		d.quarantine(name, err)
		d.writeIndexLocked()
		d.unlock()
		d.misses++
		return nil, false
	}
	e := &diskEntry{key: k, file: name, size: int64(len(data))}
	d.entries[k] = d.order.PushFront(e)
	d.bytes += e.size
	d.hits++
	d.adopted++
	d.lock()
	d.evictOverLocked()
	d.writeIndexLocked()
	d.unlock()
	return body, true
}

// Put durably stores a body under the key. The write is atomic — temp file,
// sync, rename — so a crash mid-write leaves either the old state or the new
// file, never a half-written artifact under the canonical name. Errors are
// logged, not returned: the disk layer is an accelerator, and the caller
// still holds the body.
func (d *DiskStore) Put(k Key, body []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if el, ok := d.entries[k]; ok {
		// Identical by the determinism contract; refresh recency only.
		d.order.MoveToFront(el)
		return
	}
	data := encodeArtifact(k, body)
	name := FileName(k)
	d.lock()
	defer d.unlock()
	if err := WriteAtomic(filepath.Join(d.dir, name), data); err != nil {
		d.logf("store: write %s: %v", name, err)
		return
	}
	e := &diskEntry{key: k, file: name, size: int64(len(data))}
	d.entries[k] = d.order.PushFront(e)
	d.bytes += e.size
	d.puts++
	d.evictOverLocked()
	d.writeIndexLocked()
}

// evictOverLocked removes least-recently-used artifacts until the byte
// budget holds.
func (d *DiskStore) evictOverLocked() {
	for d.bytes > d.maxBytes && d.order.Len() > 0 {
		el := d.order.Back()
		e := el.Value.(*diskEntry)
		d.order.Remove(el)
		delete(d.entries, e.key)
		d.bytes -= e.size
		d.evictions++
		_ = os.Remove(filepath.Join(d.dir, e.file))
	}
}

// writeIndexLocked persists the current LRU order. Best-effort: the index is
// rebuilt from a scan on the next startup anyway.
func (d *DiskStore) writeIndexLocked() {
	doc := indexDoc{Version: artifactVersion}
	for el := d.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*diskEntry)
		doc.Entries = append(doc.Entries, indexEntry{
			SpecHash: e.key.SpecHash,
			Seed:     e.key.Seed,
			File:     e.file,
			Size:     e.size,
		})
	}
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return
	}
	if err := WriteAtomic(filepath.Join(d.dir, indexFileName), append(data, '\n')); err != nil {
		d.logf("store: write index: %v", err)
	}
}

// Stats returns a consistent snapshot of the disk-store counters.
func (d *DiskStore) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DiskStats{
		Entries:     len(d.entries),
		Bytes:       d.bytes,
		Hits:        d.hits,
		Misses:      d.misses,
		Puts:        d.puts,
		Evictions:   d.evictions,
		Quarantined: d.quarantined,
		StaleIndex:  d.staleDropped,
		Adopted:     d.adopted,
	}
}
