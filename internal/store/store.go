// Package store is the shared content-addressed artifact store under every
// execution surface: the serve.Manager result cache, the checkpointed
// lscatter-bench sweeps and the lscatter-worker shards all persist finished
// artifact bodies here, keyed by (content hash, seed).
//
// The package has two layers. Memory is a bounded in-process LRU over result
// bodies. DiskStore is the durable layer: one self-describing LSCATART file
// per artifact (fixed header carrying the key, the body length and a SHA-256
// of the body), atomic temp+fsync+rename writes, quarantine-on-corruption
// and byte-budget LRU eviction. An advisory file lock (lock_unix.go)
// serializes mutations so several processes — a server plus a sweep, or a
// fleet of lscatter-worker shards — can share one artifact directory; a Get
// that misses the in-memory index probes the canonical file name on disk and
// adopts artifacts written by sibling processes.
//
// Identical keys denote identical computations — every runner in this
// repository is deterministic in (content, seed) — so a stored body can be
// served for any later request with the same key without recompute, byte for
// byte. That determinism contract is what makes the store safe to share.
package store

import (
	"container/list"
	"os"
	"path/filepath"
	"sync"
)

// Key addresses one artifact: the content hash of the computation's
// normalized input plus the seed. The hash is lowercase hex, at most 64
// characters (a SHA-256).
type Key struct {
	SpecHash string `json:"spec_hash"`
	Seed     uint64 `json:"seed"`
}

// Memory is the bounded in-memory content-addressed artifact store. Values
// are finished result bodies exactly as they are served to clients. Eviction
// is LRU by access so a hot key survives a sweep of one-off requests.
type Memory struct {
	mu      sync.Mutex
	max     int
	entries map[Key]*list.Element
	order   *list.List // front = most recently used

	hits, misses, evictions uint64
	bytes                   int64
}

type memoryEntry struct {
	key  Key
	body []byte
}

// NewMemory builds a store bounded to max entries; max <= 0 selects a
// default of 256.
func NewMemory(max int) *Memory {
	if max <= 0 {
		max = 256
	}
	return &Memory{
		max:     max,
		entries: make(map[Key]*list.Element),
		order:   list.New(),
	}
}

// Get returns the stored body for the key, or (nil, false). The returned
// slice is shared — callers must not mutate it.
func (s *Memory) Get(k Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[k]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.order.MoveToFront(el)
	return el.Value.(*memoryEntry).body, true
}

// Put stores a body under the key. A concurrent duplicate computation may
// Put the same key twice; the bodies are identical by the determinism
// contract, so the second write just refreshes recency.
func (s *Memory) Put(k Key, body []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok {
		s.order.MoveToFront(el)
		return
	}
	s.entries[k] = s.order.PushFront(&memoryEntry{key: k, body: body})
	s.bytes += int64(len(body))
	for len(s.entries) > s.max {
		el := s.order.Back()
		e := el.Value.(*memoryEntry)
		s.order.Remove(el)
		delete(s.entries, e.key)
		s.bytes -= int64(len(e.body))
		s.evictions++
	}
}

// MemoryStats is the memory store's observability snapshot.
type MemoryStats struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// Stats returns a consistent snapshot of the store counters.
func (s *Memory) Stats() MemoryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return MemoryStats{
		Entries:   len(s.entries),
		Bytes:     s.bytes,
		Hits:      s.hits,
		Misses:    s.misses,
		Evictions: s.evictions,
	}
}

// WriteAtomic durably writes data to path: a temp file in the same
// directory, fsync, then rename over the destination. A crash at any point
// leaves either the old file or the new one, never a torn mix — the property
// the artifact store relies on for its LSCATART files and the metrics
// reports rely on for `-metrics` output.
func WriteAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
