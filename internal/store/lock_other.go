//go:build !unix

package store

// fileLock degrades to a no-op on platforms without flock(2): the store
// keeps its single-process guarantees (atomic renames, checksummed reads)
// and loses only the cross-process mutation serialization.
type fileLock struct{}

func openFileLock(path string) (*fileLock, error) { return nil, nil }

func (l *fileLock) Lock()   {}
func (l *fileLock) Unlock() {}
