package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// The tests in this file pin the durable artifact store's crash/corruption
// story: artifacts survive process boundaries byte-identically, and
// truncated, bit-flipped, zero-length or stale-indexed files are quarantined
// and recomputed — never served. The multi-store tests pin the sharing
// story: a store adopts artifacts a sibling wrote into the same directory.

func testKey(seed uint64) Key {
	return Key{SpecHash: "0123456789abcdef", Seed: seed}
}

func openDisk(t *testing.T, dir string) *DiskStore {
	t.Helper()
	d, err := Open(dir, 0, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiskStoreRoundTripAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	body := []byte(`{"result":"the quick brown fox"}` + "\n")
	k := testKey(7)

	d1 := openDisk(t, dir)
	d1.Put(k, body)
	if got, ok := d1.Get(k); !ok || !bytes.Equal(got, body) {
		t.Fatalf("same-open Get = %q, %v", got, ok)
	}

	// A second open over the same directory — the restart — must serve the
	// identical bytes from the scanned file.
	d2 := openDisk(t, dir)
	got, ok := d2.Get(k)
	if !ok {
		t.Fatal("restart lost the artifact")
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("restart served different bytes: %q vs %q", got, body)
	}
	if st := d2.Stats(); st.Hits != 1 || st.Entries != 1 || st.Quarantined != 0 {
		t.Fatalf("restart stats: %+v", st)
	}
}

func TestDiskStoreMissIsAMiss(t *testing.T) {
	d := openDisk(t, t.TempDir())
	if _, ok := d.Get(testKey(1)); ok {
		t.Fatal("empty store reported a hit")
	}
	if st := d.Stats(); st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestDiskStoreAdoptsSiblingWrites is the multi-process sharing contract:
// an artifact Put through one open store is visible to another store already
// open over the same directory, without a reopen, and counts as an adopted
// hit.
func TestDiskStoreAdoptsSiblingWrites(t *testing.T) {
	dir := t.TempDir()
	a := openDisk(t, dir)
	b := openDisk(t, dir)

	body := []byte("written by sibling a\n")
	k := testKey(42)
	a.Put(k, body)

	got, ok := b.Get(k)
	if !ok {
		t.Fatal("sibling store did not adopt the artifact")
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("adopted different bytes: %q vs %q", got, body)
	}
	st := b.Stats()
	if st.Adopted != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("adoption stats: %+v", st)
	}
	// A second Get serves from the adopted index entry, not another probe.
	if _, ok := b.Get(k); !ok {
		t.Fatal("adopted entry lost")
	}
	if st := b.Stats(); st.Adopted != 1 || st.Hits != 2 {
		t.Fatalf("post-adoption stats: %+v", st)
	}
}

// TestDiskStoreConcurrentSiblings drives several stores over one directory
// from concurrent goroutines — the in-process proxy for the multi-process
// deployment — and requires every body read back intact. Run under -race by
// `make race`.
func TestDiskStoreConcurrentSiblings(t *testing.T) {
	dir := t.TempDir()
	const stores, keys = 3, 16
	var wg sync.WaitGroup
	for s := 0; s < stores; s++ {
		d := openDisk(t, dir)
		wg.Add(1)
		go func(s int, d *DiskStore) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				k := Key{SpecHash: "abcdef0123456789", Seed: uint64(i)}
				body := []byte(fmt.Sprintf("body-%d\n", i))
				d.Put(k, body)
				got, ok := d.Get(k)
				if !ok || !bytes.Equal(got, body) {
					t.Errorf("store %d key %d: got %q, %v", s, i, got, ok)
					return
				}
			}
		}(s, d)
	}
	wg.Wait()
	// A fresh open sees every key exactly once, uncorrupted.
	d := openDisk(t, dir)
	if st := d.Stats(); st.Entries != keys || st.Quarantined != 0 {
		t.Fatalf("final scan: %+v", st)
	}
}

// corruptCase mutates one stored artifact file on disk between opens.
type corruptCase struct {
	name   string
	mutate func(t *testing.T, path string)
	// atStartup is true when the startup scan itself must quarantine the
	// file (size/header damage); false when the lazy checksum at Get does
	// (content damage invisible to the header).
	atStartup bool
}

func TestDiskStoreCorruptionRecovery(t *testing.T) {
	cases := []corruptCase{
		{"truncated", func(t *testing.T, path string) {
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, info.Size()/2); err != nil {
				t.Fatal(err)
			}
		}, true},
		{"zero-length", func(t *testing.T, path string) {
			if err := os.Truncate(path, 0); err != nil {
				t.Fatal(err)
			}
		}, true},
		{"bit-flip-body", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-3] ^= 0x40 // flip one bit inside the body
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}, false},
		{"bit-flip-header", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[2] ^= 0x01 // damage the magic
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}, true},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			k := testKey(9)
			body := []byte(strings.Repeat("x", 256) + "\n")

			d1 := openDisk(t, dir)
			d1.Put(k, body)
			path := filepath.Join(dir, FileName(k))
			tc.mutate(t, path)

			var logged []string
			d2, err := Open(dir, 0, func(format string, args ...any) {
				logged = append(logged, format)
			})
			if err != nil {
				t.Fatalf("server must start over a corrupt store: %v", err)
			}
			if got, ok := d2.Get(k); ok {
				t.Fatalf("served a corrupt body: %q", got)
			}
			st := d2.Stats()
			if st.Quarantined != 1 {
				t.Fatalf("quarantined %d files, want 1 (stats %+v)", st.Quarantined, st)
			}
			if tc.atStartup && st.Entries != 0 {
				t.Fatalf("startup scan kept the corrupt entry: %+v", st)
			}
			if len(logged) != 1 {
				t.Fatalf("logged %d lines, want exactly 1: %v", len(logged), logged)
			}
			// The evidence moved into quarantine/ and the canonical path is
			// free for a recompute.
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt file still at canonical path: %v", err)
			}
			q, err := os.ReadDir(filepath.Join(dir, quarantineDir))
			if err != nil || len(q) != 1 {
				t.Fatalf("quarantine dir: %v entries, err %v", len(q), err)
			}
			// Recompute on demand: a fresh Put under the same key works and
			// round-trips.
			d2.Put(k, body)
			if got, ok := d2.Get(k); !ok || !bytes.Equal(got, body) {
				t.Fatalf("store unusable after quarantine: %q, %v", got, ok)
			}
		})
	}
}

func TestDiskStoreStaleIndexEntry(t *testing.T) {
	dir := t.TempDir()
	d1 := openDisk(t, dir)
	d1.Put(testKey(1), []byte("one\n"))

	// Corrupt the index by hand: add an entry for a file that does not
	// exist, mimicking a crash between index write and artifact loss.
	raw, err := os.ReadFile(filepath.Join(dir, indexFileName))
	if err != nil {
		t.Fatal(err)
	}
	var idx indexDoc
	if err := json.Unmarshal(raw, &idx); err != nil {
		t.Fatal(err)
	}
	idx.Entries = append(idx.Entries, indexEntry{
		SpecHash: "feedfacefeedface",
		Seed:     99,
		File:     "feedfacefeedface-0000000000000063.art",
		Size:     1234,
	})
	out, _ := json.Marshal(&idx)
	if err := os.WriteFile(filepath.Join(dir, indexFileName), out, 0o644); err != nil {
		t.Fatal(err)
	}

	var logged []string
	d2, err := Open(dir, 0, func(format string, args ...any) {
		logged = append(logged, format)
	})
	if err != nil {
		t.Fatalf("server must start over a stale index: %v", err)
	}
	st := d2.Stats()
	if st.StaleIndex != 1 {
		t.Fatalf("stale dropped %d, want 1: %+v", st.StaleIndex, st)
	}
	if len(logged) != 1 {
		t.Fatalf("logged %d lines, want exactly 1: %v", len(logged), logged)
	}
	// The real artifact survives the stale neighbor.
	if got, ok := d2.Get(testKey(1)); !ok || !bytes.Equal(got, []byte("one\n")) {
		t.Fatalf("live artifact lost: %q, %v", got, ok)
	}
	// Missing key recomputes on demand (a miss, not an error).
	if _, ok := d2.Get(Key{SpecHash: "feedfacefeedface", Seed: 99}); ok {
		t.Fatal("stale index entry served a body")
	}
}

func TestDiskStoreUnreadableIndexFallsBackToScan(t *testing.T) {
	dir := t.TempDir()
	d1 := openDisk(t, dir)
	d1.Put(testKey(5), []byte("five\n"))
	if err := os.WriteFile(filepath.Join(dir, indexFileName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2 := openDisk(t, dir)
	if got, ok := d2.Get(testKey(5)); !ok || !bytes.Equal(got, []byte("five\n")) {
		t.Fatalf("scan fallback lost the artifact: %q, %v", got, ok)
	}
}

func TestDiskStoreByteBoundEviction(t *testing.T) {
	dir := t.TempDir()
	body := bytes.Repeat([]byte("a"), 1024)
	// Budget for roughly three artifacts (header ≈ 80 bytes each).
	d, err := Open(dir, 3*1200, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 6; seed++ {
		d.Put(testKey(seed), body)
	}
	st := d.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a byte budget: %+v", st)
	}
	if st.Bytes > 3*1200 {
		t.Fatalf("bytes %d exceed the budget: %+v", st.Bytes, st)
	}
	// Oldest evicted, newest retained.
	if _, ok := d.Get(testKey(0)); ok {
		t.Fatal("oldest artifact survived past the budget")
	}
	if _, ok := d.Get(testKey(5)); !ok {
		t.Fatal("newest artifact was evicted")
	}
	// Evicted files are really gone from disk.
	ents, _ := os.ReadDir(dir)
	arts := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), artifactExt) {
			arts++
		}
	}
	if arts != st.Entries {
		t.Fatalf("%d files on disk, %d entries in store", arts, st.Entries)
	}
}

// TestWriteAtomicReplaces pins the helper the metrics reports and the
// artifact files share: the destination is either absent, the old content,
// or the complete new content — and a successful call leaves no temp files.
func TestWriteAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	if err := WriteAtomic(path, []byte("old\n")); err != nil {
		t.Fatal(err)
	}
	if err := WriteAtomic(path, []byte("new and longer\n")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "new and longer\n" {
		t.Fatalf("read back %q, %v", got, err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("directory not clean after WriteAtomic: %d entries", len(ents))
	}
}

// FuzzArtifactDecode holds the never-panic line on the on-disk artifact
// header and index formats — the surface a crashed or hostile writer can
// hand the startup scan. Accepted artifacts must round-trip byte-exactly
// (decode is strict, encode is canonical); accepted indexes must re-encode
// cleanly.
func FuzzArtifactDecode(f *testing.F) {
	valid := encodeArtifact(testKey(3), []byte(`{"ok":true}`))
	f.Add(valid)
	f.Add(valid[:len(valid)-1])           // truncated body
	f.Add(valid[:artifactHeaderSize])     // header only
	f.Add([]byte{})                       // zero-length
	f.Add([]byte("LSCATART"))             // bare magic
	f.Add(bytes.Repeat([]byte{0xff}, 64)) // junk
	flip := append([]byte(nil), valid...)
	flip[len(flip)-2] ^= 0x01
	f.Add(flip) // checksum mismatch
	f.Add([]byte(`{"version":1,"entries":[{"spec_hash":"0123456789abcdef","seed":3,"file":"0123456789abcdef-0000000000000003.art","size":95}]}`))
	f.Add([]byte(`{"version":99,"entries":[]}`))
	f.Add([]byte(`{"version":1,"entries":[{"file":"../../etc/passwd.art"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		k, body, err := decodeArtifact(data)
		if err == nil {
			re := encodeArtifact(k, body)
			if !bytes.Equal(re, data) {
				t.Fatalf("artifact round-trip not canonical:\n%x\nvs\n%x", re, data)
			}
		}
		idx, err := decodeIndex(data)
		if err == nil {
			for _, e := range idx.Entries {
				if e.File != filepath.Base(e.File) {
					t.Fatalf("accepted index entry escapes the store dir: %q", e.File)
				}
			}
		}
	})
}
