//go:build unix

package store

import (
	"os"
	"syscall"
)

// fileLock is the advisory cross-process lock on the artifact directory:
// flock(2) on a dedicated .lock file. It is held only for the duration of a
// mutation, never at rest, so any number of stores — in one process or many
// — interleave without deadlock. flock is advisory: it serializes stores
// that opt in, which every DiskStore does, and costs nothing else.
type fileLock struct{ f *os.File }

func openFileLock(path string) (*fileLock, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return &fileLock{f: f}, nil
}

// Lock takes the exclusive lock, blocking until sibling processes release
// it. A nil lock (filesystem without flock support) degrades to a no-op.
func (l *fileLock) Lock() {
	if l == nil || l.f == nil {
		return
	}
	_ = syscall.Flock(int(l.f.Fd()), syscall.LOCK_EX)
}

// Unlock releases the exclusive lock.
func (l *fileLock) Unlock() {
	if l == nil || l.f == nil {
		return
	}
	_ = syscall.Flock(int(l.f.Fd()), syscall.LOCK_UN)
}
