package serve

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzSpecDecode feeds arbitrary bytes through the deployment-spec
// decode/normalize path. The server exposes this surface to untrusted
// clients, so the contract is reject-don't-crash: hostile payloads must
// come back as errors, never as panics — and any payload that survives
// Normalize must normalize to a stable canonical form (same hash on a
// second pass), or the artifact cache would fragment or alias.
func FuzzSpecDecode(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`null`,
		`{"venue":"home"}`,
		`{"venue":"mall","tags":6,"seed":12345}`,
		`{"venue":"outdoor","bandwidth":"20MHz","tags":100,"traffic":"wifi","hour":18.5}`,
		`{"mode":"exact","bandwidth":"1.4MHz","tags":2,"subframes":2,"impairment":"mild","lane":"fxp"}`,
		`{"tx_power_dbm":0,"tag_loss_db":0,"hour":0,"seed":0}`,
		`{"min_tag_to_ue_ft":3,"max_tag_to_ue_ft":120}`,
		`{"tags":-1}`,
		`{"tags":1e9}`,
		`{"hour":1e308}`,
		`{"venue":"home","venue":"mall"}`,
		`{"unknown_field":true}`,
		`{"venue":"home"} trailing`,
		`[{"venue":"home"}]`,
		`{"seed":18446744073709551615}`,
		`{"tags":9007199254740993}`,
		`{"min_tag_to_ue_ft":null}`,
		`{"venue":"HOME","mode":"Semi-Analytic"}`,
		strings.Repeat(`{"venue":`, 100),
		`{"venue":"` + strings.Repeat("a", 4096) + `"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeSpec(bytes.NewReader(data))
		if err != nil {
			return // rejected, as designed
		}
		n, err := spec.Normalize()
		if err != nil {
			return
		}
		// Accepted specs must be stable: normalizing the normalized form
		// changes nothing, and the content hash is reproducible.
		c1 := n.Canonical()
		again, err := n.Normalize()
		if err != nil {
			t.Fatalf("normalized spec failed re-normalize: %v\nspec: %s", err, c1)
		}
		if c2 := again.Canonical(); !bytes.Equal(c1, c2) {
			t.Fatalf("normalize not idempotent:\n%s\nvs\n%s", c1, c2)
		}
		if n.Hash() != again.Hash() {
			t.Fatalf("hash not reproducible for %s", c1)
		}
		// The experiments layer must agree that a normalized spec is
		// runnable: a spec the API would accept but the runner rejects
		// would surface as a 500 instead of a 400.
		cfg := n.Deployment()
		if err := cfg.Validate(); err != nil {
			t.Fatalf("accepted spec fails deployment validation: %v\nspec: %s", err, c1)
		}
	})
}
