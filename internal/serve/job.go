package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"lscatter/internal/experiments"
)

// State is a job's lifecycle position.
type State string

// Job lifecycle: Queued -> Running -> one of Done/Failed/Canceled. A
// cache-hit submission is born Done.
const (
	Queued   State = "queued"
	Running  State = "running"
	Done     State = "done"
	Failed   State = "failed"
	Canceled State = "canceled"
)

// Errors Submit returns when the service cannot take the job. Handlers map
// them to 503 and 429 respectively.
var (
	ErrShuttingDown = errors.New("serve: shutting down")
	ErrQueueFull    = errors.New("serve: job queue full")
)

// Job is one submitted deployment run. All mutable fields are guarded by
// mu; handlers read through Status and Results.
type Job struct {
	mu sync.Mutex

	id       string
	spec     *Spec // normalized
	key      Key
	state    State
	cacheHit bool
	done     int
	total    int
	err      string
	body     []byte

	ctx      context.Context
	cancel   context.CancelFunc
	finished chan struct{}
}

// JobStatus is the wire snapshot of a job, served at GET /v1/runs/{id}.
type JobStatus struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	SpecHash string `json:"spec_hash"`
	Seed     uint64 `json:"seed"`
	CacheHit bool   `json:"cache_hit"`
	Done     int    `json:"progress_done"`
	Total    int    `json:"progress_total"`
	Error    string `json:"error,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:       j.id,
		State:    j.state,
		SpecHash: j.key.SpecHash,
		Seed:     j.key.Seed,
		CacheHit: j.cacheHit,
		Done:     j.done,
		Total:    j.total,
		Error:    j.err,
	}
}

// Results returns the finished result body, or false while the job has not
// completed successfully.
func (j *Job) Results() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != Done {
		return nil, false
	}
	return j.body, true
}

// Finished returns a channel closed when the job reaches a terminal state.
func (j *Job) Finished() <-chan struct{} { return j.finished }

func (j *Job) setProgress(done, total int) {
	j.mu.Lock()
	j.done, j.total = done, total
	j.mu.Unlock()
}

// finish moves the job to a terminal state exactly once, reporting whether
// this call made the transition (so lifecycle counters count once even when
// a cancel races the worker).
func (j *Job) finish(state State, body []byte, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == Done || j.state == Failed || j.state == Canceled {
		return false
	}
	j.state = state
	j.body = body
	j.err = errMsg
	close(j.finished)
	return true
}

// Counters is the manager's observability snapshot, served at /metricsz.
// CacheHits counts submissions answered from the artifact store; Computed
// counts deployments that actually ran to completion — the e2e harness pins
// the caching contract on the difference.
type Counters struct {
	Submitted uint64 `json:"submitted"`
	CacheHits uint64 `json:"cache_hits"`
	Started   uint64 `json:"started"`
	Computed  uint64 `json:"computed"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
}

// Options configures a Manager.
type Options struct {
	// Workers is the number of concurrent jobs (default 2).
	Workers int
	// QueueDepth bounds the backlog of queued jobs (default 64); beyond it
	// Submit returns ErrQueueFull.
	QueueDepth int
	// StoreEntries bounds the artifact store (default 256).
	StoreEntries int
	// JobWorkers is the per-job tag-evaluation parallelism (default 4). It
	// never affects results: the deployment runner is deterministic at any
	// worker count.
	JobWorkers int
}

// Manager owns the job queue, the worker pool and the artifact store. It is
// the service's only stateful component; handlers are a thin HTTP skin over
// it.
type Manager struct {
	opts  Options
	store *Store

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	nextID   uint64
	counters Counters
	closed   bool

	queue chan *Job
	wg    sync.WaitGroup
}

// NewManager starts a manager with its worker pool.
func NewManager(opts Options) *Manager {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.JobWorkers <= 0 {
		opts.JobWorkers = 4
	}
	m := &Manager{
		opts:  opts,
		store: NewStore(opts.StoreEntries),
		jobs:  make(map[string]*Job),
		queue: make(chan *Job, opts.QueueDepth),
	}
	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Store exposes the artifact store (read-only use: stats, tests).
func (m *Manager) Store() *Store { return m.store }

// Counters snapshots the manager counters.
func (m *Manager) Counters() Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters
}

// Submit validates nothing — the caller passes a normalized spec — and
// either answers from the artifact store (a Done job born with the cached
// body) or enqueues a new run. The job is registered either way, so the
// lifecycle endpoints work identically for hits and misses.
//
// The whole operation runs under the manager lock: the enqueue attempt is
// non-blocking, and serializing it against Shutdown's queue close is what
// keeps the two from racing.
func (m *Manager) Submit(normalized *Spec) (*Job, error) {
	key := Key{SpecHash: normalized.Hash(), Seed: normalized.Seed}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrShuttingDown
	}
	job := &Job{
		id:       fmt.Sprintf("run-%06d", m.nextID+1),
		spec:     normalized,
		key:      key,
		state:    Queued,
		total:    normalized.Tags,
		finished: make(chan struct{}),
	}

	if body, ok := m.store.Get(key); ok {
		job.cacheHit = true
		job.done = job.total
		job.state = Done
		job.body = body
		close(job.finished)
		m.nextID++
		m.jobs[job.id] = job
		m.order = append(m.order, job.id)
		m.counters.Submitted++
		m.counters.CacheHits++
		return job, nil
	}

	job.ctx, job.cancel = context.WithCancel(context.Background())
	select {
	case m.queue <- job:
		m.nextID++
		m.jobs[job.id] = job
		m.order = append(m.order, job.id)
		m.counters.Submitted++
		return job, nil
	default:
		job.cancel()
		return nil, ErrQueueFull
	}
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs lists job statuses in submission order.
func (m *Manager) Jobs() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Cancel requests cancellation of a job. Queued jobs are canceled before
// they start; running jobs stop at the next per-tag boundary. Returns false
// for unknown IDs, true otherwise (including jobs already terminal).
func (m *Manager) Cancel(id string) bool {
	j, ok := m.Get(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	cancel := j.cancel
	state := j.state
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if state == Queued {
		// A queued job with no worker attention yet terminates here so
		// clients see the state immediately; if the worker picked it up in
		// the meantime, finish is a no-op and the worker's own
		// context-canceled path does the accounting instead.
		if j.finish(Canceled, nil, "canceled before start") {
			m.countCancel()
		}
	}
	return true
}

func (m *Manager) countCancel() {
	m.mu.Lock()
	m.counters.Canceled++
	m.mu.Unlock()
}

// Shutdown stops accepting jobs, waits for the backlog to drain and the
// in-flight jobs to finish. If ctx expires first, running jobs are canceled
// and Shutdown waits for the workers to observe it.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.queue) // under the lock, serialized against Submit's enqueue
	m.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		// Hurry the pool: cancel everything still alive, then wait for the
		// workers — per-tag boundaries are milliseconds, so this converges.
		m.mu.Lock()
		for _, j := range m.jobs {
			j.mu.Lock()
			cancel := j.cancel
			j.mu.Unlock()
			if cancel != nil {
				cancel()
			}
		}
		m.mu.Unlock()
		<-drained
		return ctx.Err()
	}
}

// worker drains the queue until Shutdown closes it.
func (m *Manager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		m.runJob(job)
	}
}

// runJob executes one deployment and stores its result body.
func (m *Manager) runJob(job *Job) {
	job.mu.Lock()
	if job.state != Queued { // canceled while waiting in the queue
		job.mu.Unlock()
		return
	}
	job.state = Running
	spec := job.spec
	ctx := job.ctx
	job.mu.Unlock()

	m.mu.Lock()
	m.counters.Started++
	m.mu.Unlock()

	res, err := experiments.RunDeployment(ctx, spec.Deployment(), m.opts.JobWorkers, job.setProgress)
	switch {
	case err == nil:
		body := buildResultBody(job.key, spec, res)
		m.store.Put(job.key, body)
		if job.finish(Done, body, "") {
			m.mu.Lock()
			m.counters.Computed++
			m.mu.Unlock()
		}
	case errors.Is(err, context.Canceled):
		if job.finish(Canceled, nil, "canceled") {
			m.countCancel()
		}
	default:
		if job.finish(Failed, nil, err.Error()) {
			m.mu.Lock()
			m.counters.Failed++
			m.mu.Unlock()
		}
	}
}

// ResultDoc is the served result body: the content address, the normalized
// spec it answers, and the aggregated deployment result. Struct field order
// fixes the byte layout; it is marshaled once per computation and stored
// verbatim, which is what makes the "byte-identical results" contract
// trivially auditable.
type ResultDoc struct {
	Key    Key                           `json:"key"`
	Spec   *Spec                         `json:"spec"`
	Result *experiments.DeploymentResult `json:"result"`
}

func buildResultBody(key Key, spec *Spec, res *experiments.DeploymentResult) []byte {
	b, err := json.MarshalIndent(&ResultDoc{Key: key, Spec: spec, Result: res}, "", "  ")
	if err != nil {
		// The document is a tree of plain structs and scalars.
		panic(fmt.Sprintf("serve: result marshal: %v", err))
	}
	return append(b, '\n')
}
