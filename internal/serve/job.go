package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"sync"

	"lscatter/internal/exec"
	"lscatter/internal/experiments"
	"lscatter/internal/store"
)

// State is a job's lifecycle position.
type State string

// Job lifecycle: Queued -> Running -> one of Done/Failed/Canceled. A
// cache-hit submission is born Done; a coalesced submission is born attached
// to the in-flight run and follows its state.
const (
	Queued   State = "queued"
	Running  State = "running"
	Done     State = "done"
	Failed   State = "failed"
	Canceled State = "canceled"
)

// Errors Submit returns when the service cannot take the job. Handlers map
// them to 503 and 429 respectively.
var (
	ErrShuttingDown = errors.New("serve: shutting down")
	ErrQueueFull    = errors.New("serve: job queue full")
)

// Job is one submitted deployment run from one client's point of view.
// Several jobs may share a single underlying computation (a flight) when
// identical specs are submitted concurrently. All mutable fields are guarded
// by mu; handlers read through Status, Results and EventsSince.
type Job struct {
	mu sync.Mutex

	id        string
	key       Key
	state     State
	cacheHit  bool
	coalesced bool
	done      int
	total     int
	err       string
	body      []byte
	events    eventLog

	fl       *flight // nil for born-done (cache/disk hit) jobs
	finished chan struct{}
}

// flight is one underlying deployment computation. The first submission of
// a key creates it; concurrent identical submissions attach to it instead of
// enqueueing duplicates (request coalescing, the singleflight pattern). The
// computation is canceled only when every attached job has been canceled.
// Guarded by the Manager's mu.
type flight struct {
	key      Key
	spec     *Spec
	jobs     []*Job // attached, in attach order; jobs[0] created the flight
	waiters  int    // attached jobs not yet individually canceled
	running  bool
	done     bool
	canceled bool
	ctx      context.Context
	cancel   context.CancelFunc
}

// JobStatus is the wire snapshot of a job, served at GET /v1/runs/{id}.
type JobStatus struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	SpecHash string `json:"spec_hash"`
	Seed     uint64 `json:"seed"`
	// CacheHit marks a submission answered from the artifact store (memory
	// or disk) without any computation.
	CacheHit bool `json:"cache_hit"`
	// Coalesced marks a submission that attached to an identical in-flight
	// run instead of starting its own.
	Coalesced bool   `json:"coalesced"`
	Done      int    `json:"progress_done"`
	Total     int    `json:"progress_total"`
	Error     string `json:"error,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:        j.id,
		State:     j.state,
		SpecHash:  j.key.SpecHash,
		Seed:      j.key.Seed,
		CacheHit:  j.cacheHit,
		Coalesced: j.coalesced,
		Done:      j.done,
		Total:     j.total,
		Error:     j.err,
	}
}

// Results returns the finished result body, or false while the job has not
// completed successfully.
func (j *Job) Results() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != Done {
		return nil, false
	}
	return j.body, true
}

// Finished returns a channel closed when the job reaches a terminal state.
func (j *Job) Finished() <-chan struct{} { return j.finished }

// ETag is the strong validator served with the result body and carried by
// the stream's end event.
func (j *Job) ETag() string { return fmt.Sprintf("%q", j.key.SpecHash) }

func (j *Job) setProgress(done, total int, tag *experiments.TagReport) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == Done || j.state == Failed || j.state == Canceled {
		// An individually-canceled coalesced job already streamed its end
		// event; late rows from the still-running flight stay off its log.
		return
	}
	j.done, j.total = done, total
	j.events.appendLocked(Event{
		Type: "progress",
		Data: marshalEvent(progressEvent{Done: done, Total: total, Tag: tag}),
	})
}

func (j *Job) setRunning() {
	j.mu.Lock()
	if j.state == Queued {
		j.state = Running
	}
	j.mu.Unlock()
}

// finish moves the job to a terminal state exactly once, reporting whether
// this call made the transition (so lifecycle counters count once even when
// a cancel races the worker). It appends the stream's end event.
func (j *Job) finish(state State, body []byte, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == Done || j.state == Failed || j.state == Canceled {
		return false
	}
	j.state = state
	j.body = body
	j.err = errMsg
	end := endEvent{State: state, Error: errMsg}
	if state == Done {
		j.done = j.total
		end.ETag = fmt.Sprintf("%q", j.key.SpecHash)
	}
	j.events.appendLocked(Event{Type: "end", Data: marshalEvent(end)})
	j.events.terminal = true
	close(j.finished)
	return true
}

// bornDone completes a job at submission time from a stored body (memory or
// disk hit).
func (j *Job) bornDone(body []byte) {
	j.mu.Lock()
	j.cacheHit = true
	j.state = Done
	j.body = body
	j.done = j.total
	j.events.appendLocked(Event{Type: "end", Data: marshalEvent(endEvent{
		State: Done,
		ETag:  fmt.Sprintf("%q", j.key.SpecHash),
	})})
	j.events.terminal = true
	close(j.finished)
	j.mu.Unlock()
}

// Counters is the manager's observability snapshot, served at /metricsz.
//
// Every accepted submission is classified exactly once: CacheHits (answered
// from the memory store), DiskHits (answered from the durable store),
// Coalesced (attached to an identical in-flight run) or Runs (created a new
// computation). The submit-side ledger
//
//	Submitted == CacheHits + DiskHits + Coalesced + Runs
//
// holds at every instant; the race harness asserts it under contention.
// Started/Computed/Failed count flights (actual computations); Canceled
// counts jobs that ended canceled, whether individually or with their
// flight.
type Counters struct {
	Submitted uint64 `json:"submitted"`
	CacheHits uint64 `json:"cache_hits"`
	DiskHits  uint64 `json:"disk_hits"`
	Coalesced uint64 `json:"coalesced"`
	Runs      uint64 `json:"runs"`
	Started   uint64 `json:"started"`
	Computed  uint64 `json:"computed"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
}

// Options configures a Manager.
type Options struct {
	// Workers is the number of concurrent jobs (default 2).
	Workers int
	// QueueDepth bounds the backlog of queued jobs (default 64); beyond it
	// Submit returns ErrQueueFull.
	QueueDepth int
	// StoreEntries bounds the in-memory artifact store (default 256).
	StoreEntries int
	// JobWorkers is the per-job tag-evaluation parallelism (default 4). It
	// never affects results: the deployment runner is deterministic at any
	// worker count.
	JobWorkers int
	// ArtifactDir, when non-empty, enables the durable on-disk artifact
	// store: results are written through on completion and promoted back
	// into the memory LRU on demand, so restarts keep the cache warm.
	ArtifactDir string
	// DiskMaxBytes bounds the on-disk store (default 256 MiB). Ignored
	// without ArtifactDir.
	DiskMaxBytes int64
	// Logf receives operational log lines (quarantined artifacts, stale
	// index entries, disk write failures). Defaults to log.Printf.
	Logf func(format string, args ...any)
}

// Manager owns the job queue, the worker pool and the artifact stores. It is
// the service's only stateful component; handlers are a thin HTTP skin over
// it.
type Manager struct {
	opts  Options
	store *Store
	disk  *DiskStore // nil when no ArtifactDir is configured
	// executor is the shared compute-and-persist stack (internal/exec): a
	// Local executor bottoming out in RunDeployment, wrapped — when a
	// durable store is configured — in a Checkpointed executor that records
	// finished bodies and restores artifacts a sibling process sharing the
	// directory computed first.
	executor exec.Executor

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	inflight map[Key]*flight
	nextID   uint64
	counters Counters
	closed   bool

	queue chan *flight
	wg    sync.WaitGroup
}

// NewManager starts a manager with its worker pool, opening the durable
// store when Options.ArtifactDir is set.
func NewManager(opts Options) (*Manager, error) {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.JobWorkers <= 0 {
		opts.JobWorkers = 4
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	m := &Manager{
		opts:     opts,
		store:    NewStore(opts.StoreEntries),
		jobs:     make(map[string]*Job),
		inflight: make(map[Key]*flight),
		queue:    make(chan *flight, opts.QueueDepth),
	}
	if opts.ArtifactDir != "" {
		disk, err := OpenDiskStore(opts.ArtifactDir, opts.DiskMaxBytes, opts.Logf)
		if err != nil {
			return nil, err
		}
		m.disk = disk
	}
	local := &exec.Local{Run: m.runJob}
	if m.disk != nil {
		// The job ID is the spec hash, so the checkpoint key reproduces the
		// exact artifact file names the serve layer has always written —
		// directories persisted by earlier versions resume seamlessly.
		m.executor = &exec.Checkpointed{
			Inner:  local,
			Store:  m.disk,
			Resume: true,
			Key: func(j exec.Job) store.Key {
				return store.Key{SpecHash: j.ID, Seed: j.Seed}
			},
		}
	} else {
		m.executor = local
	}
	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Store exposes the in-memory artifact store (read-only use: stats, tests).
func (m *Manager) Store() *Store { return m.store }

// Disk exposes the durable artifact store, nil when not configured.
func (m *Manager) Disk() *DiskStore { return m.disk }

// Counters snapshots the manager counters.
func (m *Manager) Counters() Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters
}

// newJobLocked builds an unregistered job; registerLocked admits it.
func (m *Manager) newJobLocked(key Key, total int) *Job {
	return &Job{
		id:       fmt.Sprintf("run-%06d", m.nextID+1),
		key:      key,
		state:    Queued,
		total:    total,
		events:   newEventLog(),
		finished: make(chan struct{}),
	}
}

func (m *Manager) registerLocked(job *Job) {
	m.nextID++
	m.jobs[job.id] = job
	m.order = append(m.order, job.id)
	m.counters.Submitted++
}

// Submit validates nothing — the caller passes a normalized spec — and
// resolves the request through the cache hierarchy: the in-memory store, the
// in-flight table (request coalescing: a concurrent identical submission
// attaches to the one running computation and receives the same
// byte-identical body), the durable on-disk store (lazy promotion into the
// memory LRU), and finally a new computation on the queue. The job is
// registered in every case, so the lifecycle endpoints work identically for
// hits, joins and misses.
//
// The in-memory checks and the enqueue run under the manager lock — the
// enqueue attempt is non-blocking, and serializing it against Shutdown's
// queue close is what keeps the two from racing. The disk probe reads and
// checksums a file, so it runs between lock holds; the second hold re-checks
// the memory store and the in-flight table before falling through to a new
// flight.
func (m *Manager) Submit(normalized *Spec) (*Job, error) {
	key := Key{SpecHash: normalized.Hash(), Seed: normalized.Seed}
	diskProbed := false
	for {
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return nil, ErrShuttingDown
		}
		job := m.newJobLocked(key, normalized.Tags)

		if body, ok := m.store.Get(key); ok {
			m.registerLocked(job)
			m.counters.CacheHits++
			m.mu.Unlock()
			job.bornDone(body)
			return job, nil
		}
		if fl, ok := m.inflight[key]; ok && !fl.canceled {
			job.coalesced = true
			job.fl = fl
			if fl.running {
				job.state = Running
			}
			fl.jobs = append(fl.jobs, job)
			fl.waiters++
			m.registerLocked(job)
			m.counters.Coalesced++
			m.mu.Unlock()
			return job, nil
		}
		if m.disk != nil && !diskProbed {
			m.mu.Unlock()
			// Disk I/O plus checksum verification happens outside the lock;
			// the loop re-checks the fast paths afterwards.
			body, ok := m.disk.Get(key)
			diskProbed = true
			if ok {
				m.mu.Lock()
				if m.closed {
					m.mu.Unlock()
					return nil, ErrShuttingDown
				}
				m.store.Put(key, body)
				job := m.newJobLocked(key, normalized.Tags)
				m.registerLocked(job)
				m.counters.DiskHits++
				m.mu.Unlock()
				job.bornDone(body)
				return job, nil
			}
			continue
		}

		fl := &flight{key: key, spec: normalized, jobs: []*Job{job}, waiters: 1}
		fl.ctx, fl.cancel = context.WithCancel(context.Background())
		job.fl = fl
		select {
		case m.queue <- fl:
			m.registerLocked(job)
			m.inflight[key] = fl
			m.counters.Runs++
			m.mu.Unlock()
			return job, nil
		default:
			m.mu.Unlock()
			fl.cancel()
			return nil, ErrQueueFull
		}
	}
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs lists job statuses in submission order.
func (m *Manager) Jobs() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Cancel requests cancellation of a job. Cancelling one job detaches it from
// its flight; the underlying computation is canceled only when no attached
// job still wants the result, so cancelling one of N coalesced submissions
// never disturbs the other N-1. Returns false for unknown IDs, true
// otherwise (including jobs already terminal).
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return false
	}
	if !j.finish(Canceled, nil, "canceled") {
		return true // already terminal
	}
	m.mu.Lock()
	m.counters.Canceled++
	var cancelFn context.CancelFunc
	if fl := j.fl; fl != nil && !fl.done {
		fl.waiters--
		if fl.waiters == 0 {
			// Last interested client gone: abort the computation. The worker
			// does the flight-level cleanup and accounting.
			fl.canceled = true
			cancelFn = fl.cancel
		}
	}
	m.mu.Unlock()
	if cancelFn != nil {
		cancelFn()
	}
	return true
}

// Shutdown stops accepting jobs, waits for the backlog to drain and the
// in-flight jobs to finish. If ctx expires first, running flights are
// canceled and Shutdown waits for the workers to observe it.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.queue) // under the lock, serialized against Submit's enqueue
	m.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		// Hurry the pool: cancel every live flight, then wait for the
		// workers — per-tag boundaries are milliseconds, so this converges.
		m.mu.Lock()
		var cancels []context.CancelFunc
		for _, fl := range m.inflight {
			cancels = append(cancels, fl.cancel)
		}
		m.mu.Unlock()
		for _, c := range cancels {
			c()
		}
		<-drained
		return ctx.Err()
	}
}

// worker drains the queue until Shutdown closes it.
func (m *Manager) worker() {
	defer m.wg.Done()
	for fl := range m.queue {
		m.runFlight(fl)
	}
}

// finishFlight retires a flight: removes it from the in-flight table (unless
// a successor already replaced it), snapshots the attached jobs and marks it
// done. Must complete before jobs are finished so no Submit can join a
// flight whose completion pass already ran.
func (m *Manager) finishFlight(fl *flight) []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	fl.done = true
	if m.inflight[fl.key] == fl {
		delete(m.inflight, fl.key)
	}
	return append([]*Job(nil), fl.jobs...)
}

// runFlight executes one deployment and completes every attached job with
// the same stored body.
func (m *Manager) runFlight(fl *flight) {
	m.mu.Lock()
	if fl.canceled || fl.ctx.Err() != nil {
		// Every waiter canceled while the flight sat in the queue; the
		// per-job accounting already happened in Cancel.
		m.mu.Unlock()
		for _, j := range m.finishFlight(fl) {
			if j.finish(Canceled, nil, "canceled before start") {
				m.countCancel()
			}
		}
		return
	}
	fl.running = true
	m.counters.Started++
	jobs := append([]*Job(nil), fl.jobs...)
	ctx := fl.ctx
	m.mu.Unlock()
	for _, j := range jobs {
		j.setRunning()
	}

	// The compute-and-persist step is the shared executor stack: exec.Local
	// bottoms out in runJob below, and when a durable store is configured
	// exec.Checkpointed records the body (and restores one a sibling process
	// sharing the directory finished first). The flight rides the context so
	// the generic Job — an (ID, Seed) pair — stays serializable.
	body, err := m.executor.Submit(context.WithValue(ctx, flightCtxKey{}, fl), exec.Job{ID: fl.key.SpecHash, Seed: fl.key.Seed})
	switch {
	case err == nil:
		// Store before retiring the flight: a Submit that misses the
		// in-flight table afterwards must hit the store.
		m.store.Put(fl.key, body)
		for _, j := range m.finishFlight(fl) {
			j.finish(Done, body, "")
		}
		m.mu.Lock()
		m.counters.Computed++
		m.mu.Unlock()
	case errors.Is(err, context.Canceled):
		for _, j := range m.finishFlight(fl) {
			if j.finish(Canceled, nil, "canceled") {
				m.countCancel()
			}
		}
	default:
		for _, j := range m.finishFlight(fl) {
			j.finish(Failed, nil, err.Error())
		}
		m.mu.Lock()
		m.counters.Failed++
		m.mu.Unlock()
	}
}

// flightCtxKey carries the flight through the executor stack into runJob.
type flightCtxKey struct{}

// runJob is the exec.RunFunc the manager's Local executor bottoms out in: it
// recovers the flight from the context, runs the deployment with progress
// fanned out to every attached job, and returns the canonical result body —
// the bytes the stores persist and every coalesced client receives.
func (m *Manager) runJob(ctx context.Context, job exec.Job) ([]byte, error) {
	fl, ok := ctx.Value(flightCtxKey{}).(*flight)
	if !ok {
		return nil, errors.New("serve: job submitted without a flight")
	}
	progress := func(done, total int, tag experiments.TagReport) {
		m.mu.Lock()
		attached := append([]*Job(nil), fl.jobs...)
		m.mu.Unlock()
		for _, j := range attached {
			j.setProgress(done, total, &tag)
		}
	}
	res, err := experiments.RunDeployment(ctx, fl.spec.Deployment(), m.opts.JobWorkers, progress)
	if err != nil {
		return nil, err
	}
	return buildResultBody(fl.key, fl.spec, res), nil
}

func (m *Manager) countCancel() {
	m.mu.Lock()
	m.counters.Canceled++
	m.mu.Unlock()
}

// ResultDoc is the served result body: the content address, the normalized
// spec it answers, and the aggregated deployment result. Struct field order
// fixes the byte layout; it is marshaled once per computation and stored
// verbatim, which is what makes the "byte-identical results" contract
// trivially auditable.
type ResultDoc struct {
	Key    Key                           `json:"key"`
	Spec   *Spec                         `json:"spec"`
	Result *experiments.DeploymentResult `json:"result"`
}

func buildResultBody(key Key, spec *Spec, res *experiments.DeploymentResult) []byte {
	b, err := json.MarshalIndent(&ResultDoc{Key: key, Spec: spec, Result: res}, "", "  ")
	if err != nil {
		// The document is a tree of plain structs and scalars.
		panic(fmt.Sprintf("serve: result marshal: %v", err))
	}
	return append(b, '\n')
}
