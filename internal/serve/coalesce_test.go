package serve

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"
)

// The tests in this file pin the request-coalescing contract under the race
// detector (make ci runs the suite with -race): concurrent identical
// submissions execute exactly one deployment run, every waiter receives the
// same byte-identical body, cancelling one waiter never disturbs the others,
// and shutdown mid-coalesce completes every attached job.

// coalesceSpec is big enough that the run is still in flight while the
// other submissions land (a submission burst takes microseconds; 3000 tags
// take seconds), so they attach instead of cache-hitting — yet small enough
// that a graceful shutdown drains it inside the test timeouts even under the
// race detector's slowdown.
func coalesceSpec(t testing.TB) *Spec { return normalized(t, 3000, 4242) }

func TestCoalesceConcurrentIdenticalSubmissions(t *testing.T) {
	m := newManager(t, Options{Workers: 4, QueueDepth: 64, JobWorkers: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
	}()

	const clients = 8
	jobs := make([]*Job, clients)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			j, err := m.Submit(coalesceSpec(t))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			jobs[i] = j
		}(i)
	}
	close(start)
	wg.Wait()

	var bodies [][]byte
	for i, j := range jobs {
		if j == nil {
			t.Fatal("a submission failed")
		}
		<-j.Finished()
		st := j.Status()
		if st.State != Done {
			t.Fatalf("job %d ended %s: %s", i, st.State, st.Error)
		}
		body, ok := j.Results()
		if !ok {
			t.Fatalf("job %d done without a body", i)
		}
		bodies = append(bodies, body)
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("waiter %d received different bytes than waiter 0", i)
		}
	}

	ctr := m.Counters()
	// The acceptance bar: exactly one deployment ran for the 8 identical
	// submissions. All 20000-tag, the run far outlives the submission burst,
	// so every later submission attached to the first's flight.
	if ctr.Runs != 1 || ctr.Computed != 1 {
		t.Fatalf("want exactly one run/computation, got %+v", ctr)
	}
	if ctr.Coalesced != clients-1 {
		t.Fatalf("coalesced %d joins, want %d: %+v", ctr.Coalesced, clients-1, ctr)
	}
	if ctr.CacheHits+ctr.DiskHits+ctr.Coalesced+ctr.Runs != ctr.Submitted {
		t.Fatalf("ledger unbalanced: %+v", ctr)
	}
	// Exactly one job is the flight lead; the rest report coalesced.
	leads := 0
	for _, j := range jobs {
		if !j.Status().Coalesced {
			leads++
		}
	}
	if leads != 1 {
		t.Fatalf("%d flight leads among %d jobs, want 1", leads, clients)
	}
}

func TestCoalesceCancelOneOfN(t *testing.T) {
	m := newManager(t, Options{Workers: 2, QueueDepth: 64, JobWorkers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
	}()

	const clients = 6
	var jobs []*Job
	for i := 0; i < clients; i++ {
		j, err := m.Submit(coalesceSpec(t))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	// Cancel one attached waiter (not the lead) while the run is in flight.
	victim := jobs[2]
	if !m.Cancel(victim.Status().ID) {
		t.Fatal("cancel reported unknown job")
	}
	<-victim.Finished()
	if st := victim.Status(); st.State != Canceled {
		t.Fatalf("victim ended %s, want canceled", st.State)
	}

	// The computation survives: every other waiter completes with the body.
	var want []byte
	for i, j := range jobs {
		if j == victim {
			continue
		}
		<-j.Finished()
		st := j.Status()
		if st.State != Done {
			t.Fatalf("waiter %d ended %s: %s", i, st.State, st.Error)
		}
		body, _ := j.Results()
		if want == nil {
			want = body
		} else if !bytes.Equal(want, body) {
			t.Fatalf("waiter %d body differs", i)
		}
	}

	ctr := m.Counters()
	if ctr.Runs != 1 || ctr.Computed != 1 {
		t.Fatalf("want exactly one computation despite the cancel, got %+v", ctr)
	}
	if ctr.Canceled != 1 {
		t.Fatalf("canceled %d jobs, want exactly the victim: %+v", ctr.Canceled, ctr)
	}
	if ctr.CacheHits+ctr.DiskHits+ctr.Coalesced+ctr.Runs != ctr.Submitted {
		t.Fatalf("ledger unbalanced: %+v", ctr)
	}

	// A canceled waiter must not have received the body.
	if _, ok := victim.Results(); ok {
		t.Fatal("canceled waiter still exposes a result body")
	}
}

func TestCoalesceCancelAllWaitersAbortsRun(t *testing.T) {
	m := newManager(t, Options{Workers: 1, QueueDepth: 16, JobWorkers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
	}()

	var jobs []*Job
	for i := 0; i < 3; i++ {
		j, err := m.Submit(coalesceSpec(t))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	// Cancel every waiter: the computation loses its last interested client
	// and must abort instead of running to completion.
	for _, j := range jobs {
		m.Cancel(j.Status().ID)
	}
	for i, j := range jobs {
		<-j.Finished()
		if st := j.Status(); st.State != Canceled {
			t.Fatalf("job %d ended %s, want canceled", i, st.State)
		}
	}
	ctr := m.Counters()
	if ctr.Computed != 0 {
		t.Fatalf("run completed despite all waiters canceling: %+v", ctr)
	}
	if ctr.Canceled != 3 {
		t.Fatalf("canceled %d, want 3: %+v", ctr.Canceled, ctr)
	}

	// The key is free again: a fresh submission starts a fresh run.
	j, err := m.Submit(coalesceSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	<-j.Finished()
	if st := j.Status(); st.State != Done {
		t.Fatalf("post-abort resubmission ended %s: %s", st.State, st.Error)
	}
}

func TestCoalesceShutdownMidCoalesce(t *testing.T) {
	m := newManager(t, Options{Workers: 2, QueueDepth: 64, JobWorkers: 2})

	const clients = 5
	var jobs []*Job
	for i := 0; i < clients; i++ {
		j, err := m.Submit(coalesceSpec(t))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}

	// Graceful shutdown while the coalesced flight is in the air: the run
	// drains and every attached job finishes Done with the same body.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	var want []byte
	for i, j := range jobs {
		select {
		case <-j.Finished():
		default:
			t.Fatalf("job %d not finished after graceful shutdown", i)
		}
		st := j.Status()
		if st.State != Done {
			t.Fatalf("job %d ended %s: %s", i, st.State, st.Error)
		}
		body, _ := j.Results()
		if want == nil {
			want = body
		} else if !bytes.Equal(want, body) {
			t.Fatalf("job %d body differs after shutdown", i)
		}
	}
	ctr := m.Counters()
	if ctr.Runs != 1 || ctr.Computed != 1 {
		t.Fatalf("want one computation through shutdown, got %+v", ctr)
	}
}

func TestCoalesceHurriedShutdownCancelsFlight(t *testing.T) {
	m := newManager(t, Options{Workers: 1, QueueDepth: 16, JobWorkers: 1})

	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, err := m.Submit(normalized(t, 100000, 999))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	// A context that expires immediately forces the hurry path: the flight
	// is canceled and every attached job must still reach a terminal state.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	err := m.Shutdown(ctx)
	for i, j := range jobs {
		<-j.Finished()
		st := j.Status()
		if st.State == Queued || st.State == Running {
			t.Fatalf("job %d left %s after hurried shutdown", i, st.State)
		}
	}
	// err is nil if the run won the race, ctx.Err() otherwise — both fine;
	// the invariant is no stuck jobs either way.
	_ = err
}
